//===- examples/dihedral.cpp - The Gromacs case study ---------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 7's third case study: the dihedral angle between the planes
// spanned by four atoms. For near-colinear configurations (triple-bonded
// organics), the cross products nearly vanish and the determinant-style
// combination cancels catastrophically. The computation deliberately spans
// a "vector library" function boundary through thread state, so the
// symbolic expression Herbgrind reports gathers slivers of computation
// from both sides -- the property that made this bug diagnosable in the
// multi-language Gromacs source.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

namespace {

const int64_t SlotA = 0;   // operand vector 1 (3 doubles)
const int64_t SlotB = 24;  // operand vector 2
const int64_t SlotR = 48;  // result vector

/// Emits a "library" function computing SlotR = SlotA x SlotB.
void emitCross(ProgramBuilder &B, ProgramBuilder::Label Entry) {
  B.bind(Entry);
  B.setLoc(SourceLoc("vec.f", 112, "crossprod"));
  auto Ax = B.get(SlotA + 0, ValueType::F64);
  auto Ay = B.get(SlotA + 8, ValueType::F64);
  auto Az = B.get(SlotA + 16, ValueType::F64);
  auto Bx = B.get(SlotB + 0, ValueType::F64);
  auto By = B.get(SlotB + 8, ValueType::F64);
  auto Bz = B.get(SlotB + 16, ValueType::F64);
  B.put(SlotR + 0, B.op(Opcode::SubF64, B.op(Opcode::MulF64, Ay, Bz),
                        B.op(Opcode::MulF64, Az, By)));
  B.put(SlotR + 8, B.op(Opcode::SubF64, B.op(Opcode::MulF64, Az, Bx),
                        B.op(Opcode::MulF64, Ax, Bz)));
  B.put(SlotR + 16, B.op(Opcode::SubF64, B.op(Opcode::MulF64, Ax, By),
                         B.op(Opcode::MulF64, Ay, Bx)));
  B.ret();
}

Program buildKernel() {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  auto Cross = B.newLabel();
  auto Main = B.newLabel();
  B.jump(Main);
  emitCross(B, Cross);

  B.bind(Main);
  B.setLoc(SourceLoc("dihedral.c", 77, "dih_angle"));
  // Bond vectors between the four atoms come in as inputs.
  T B1x = B.input(0), B1y = B.input(1), B1z = B.input(2);
  T B2x = B.input(3), B2y = B.input(4), B2z = B.input(5);
  T B3x = B.input(6), B3y = B.input(7), B3z = B.input(8);

  // m = b1 x b2 (through the vector library).
  B.put(SlotA + 0, B1x);
  B.put(SlotA + 8, B1y);
  B.put(SlotA + 16, B1z);
  B.put(SlotB + 0, B2x);
  B.put(SlotB + 8, B2y);
  B.put(SlotB + 16, B2z);
  B.call(Cross);
  T Mx = B.get(SlotR + 0, ValueType::F64);
  T My = B.get(SlotR + 8, ValueType::F64);
  T Mz = B.get(SlotR + 16, ValueType::F64);

  // n = b2 x b3.
  B.put(SlotA + 0, B2x);
  B.put(SlotA + 8, B2y);
  B.put(SlotA + 16, B2z);
  B.put(SlotB + 0, B3x);
  B.put(SlotB + 8, B3y);
  B.put(SlotB + 16, B3z);
  B.call(Cross);
  T Nx = B.get(SlotR + 0, ValueType::F64);
  T Ny = B.get(SlotR + 8, ValueType::F64);
  T Nz = B.get(SlotR + 16, ValueType::F64);

  // cos-term: m . n; sin-term: |b2| * (b1 . n).
  B.setLoc(SourceLoc("dihedral.c", 84, "dih_angle"));
  auto Dot3 = [&](T X1, T Y1, T Z1, T X2, T Y2, T Z2) {
    return B.op(Opcode::AddF64,
                B.op(Opcode::AddF64, B.op(Opcode::MulF64, X1, X2),
                     B.op(Opcode::MulF64, Y1, Y2)),
                B.op(Opcode::MulF64, Z1, Z2));
  };
  T MdotN = Dot3(Mx, My, Mz, Nx, Ny, Nz);
  T B2Len = B.op(Opcode::SqrtF64, Dot3(B2x, B2y, B2z, B2x, B2y, B2z));
  T B1dotN = Dot3(B1x, B1y, B1z, Nx, Ny, Nz);
  T SinTerm = B.op(Opcode::MulF64, B2Len, B1dotN);
  B.setLoc(SourceLoc("dihedral.c", 89, "dih_angle"));
  T Phi = B.op(Opcode::Atan2F64, SinTerm, MdotN);
  B.out(Phi);
  B.halt();
  return B.finish();
}

} // namespace

int main() {
  Program P = buildKernel();
  Herbgrind HG(P);

  // Ordinary configurations: clean.
  HG.runOnInput({1, 0, 0, 0.3, 1, 0, 0, 0.2, 1});
  HG.runOnInput({1, 0.5, 0, -0.3, 1, 0.2, 0.1, -0.2, 1});
  std::printf("ordinary dihedral angles analyzed fine\n");

  // Near-colinear chains (alkyne-like): bond vectors nearly parallel with
  // all components nonzero, so every cross-product component is a
  // difference of two nearly-equal O(1) products -- the determinant
  // cancellation the Gromacs report describes.
  for (double Eps : {1e-9, 3e-10, 1e-10}) {
    HG.runOnInput({1, 0.5, 0.25,
                   1 + Eps, 0.5 - 2 * Eps, 0.25 + Eps,
                   1 - 2 * Eps, 0.5 + Eps, 0.25 - Eps});
    std::printf("near-colinear (eps=%g): phi = %g\n", Eps,
                HG.lastOutputs()[0].asF64());
  }

  std::printf("\n--- Herbgrind report ---\n%s",
              buildReport(HG).render().c_str());
  std::printf("Note how the reported expressions combine multiplications "
              "from crossprod (vec.f) with the additions of dih_angle "
              "(dihedral.c): the trace crossed the call boundary and the "
              "register-file traffic, as in the C/Fortran Gromacs.\n");
  return 0;
}
