//===- examples/triangle_compensated.cpp - The Triangle case study --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 8.3: expert-written geometric code uses *compensating terms*
// (two-sum / two-product residuals) to recover the rounding error of a
// fast computation, exactly as Shewchuk's Triangle does in its adaptive
// orient2d predicate. Each compensating term is computed by an add or
// subtract with enormous local error -- but its real value is exactly
// zero, so a naive error analysis drowns the user in false positives.
// Herbgrind detects the compensation pattern (Section 5.3) and refuses to
// propagate influence from the compensating terms.
//
// This example computes an orient2d determinant on nearly-degenerate
// triangles, both the fast (cancelling) way and the compensated way, and
// shows that: (a) the fast path's subtraction is reported, and (b) the
// compensated path's machinery is not.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

namespace {

/// orient2d with a compensated determinant: the two products are split
/// with FMA-based two-products and combined with a two-diff, then the
/// residuals are folded back in (a condensed version of Shewchuk's
/// expansion arithmetic).
Program buildOrient2d(bool Compensated) {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  B.setLoc(SourceLoc("predicates.c", 735, "orient2d"));
  T Ax = B.input(0), Ay = B.input(1);
  T Bx = B.input(2), By = B.input(3);
  T Cx = B.input(4), Cy = B.input(5);

  T Acx = B.op(Opcode::SubF64, Ax, Cx);
  T Bcx = B.op(Opcode::SubF64, Bx, Cx);
  T Acy = B.op(Opcode::SubF64, Ay, Cy);
  T Bcy = B.op(Opcode::SubF64, By, Cy);
  T DetLeft = B.op(Opcode::MulF64, Acx, Bcy);
  T DetRight = B.op(Opcode::MulF64, Acy, Bcx);
  B.setLoc(SourceLoc("predicates.c", 741, "orient2d"));
  T Det = B.op(Opcode::SubF64, DetLeft, DetRight);

  if (!Compensated) {
    B.out(Det);
    B.halt();
    return B.finish();
  }

  // Two-product residuals via FMA: err = fma(a, b, -(a*b)); real value 0.
  B.setLoc(SourceLoc("predicates.c", 812, "orient2dadapt"));
  T ErrLeft = B.op(Opcode::FmaF64, Acx, Bcy, B.op(Opcode::NegF64, DetLeft));
  T ErrRight = B.op(Opcode::FmaF64, Acy, Bcx,
                    B.op(Opcode::NegF64, DetRight));
  // Two-diff residual of the subtraction: real value 0.
  T BVirt = B.op(Opcode::SubF64, DetLeft, Det);
  T ARound = B.op(Opcode::SubF64, DetLeft, B.op(Opcode::AddF64, Det, BVirt));
  T BRound = B.op(Opcode::SubF64, BVirt, DetRight);
  T DiffErr = B.op(Opcode::AddF64, ARound, BRound);
  // Fold the residuals back in (compensated result).
  B.setLoc(SourceLoc("predicates.c", 828, "orient2dadapt"));
  T Correction =
      B.op(Opcode::AddF64, DiffErr, B.op(Opcode::SubF64, ErrLeft, ErrRight));
  T Exact = B.op(Opcode::AddF64, Det, Correction);
  // Triangle's adaptivity: if the correction is large relative to the
  // fast determinant, take the exact path. This comparison is where
  // compensation detection cannot help: the real execution computes the
  // correction as exactly zero, so the branch "goes the wrong way" under
  // the shadow (the paper's 14-of-225 missed cases).
  B.setLoc(SourceLoc("predicates.c", 834, "orient2dadapt"));
  T ErrBound = B.op(Opcode::MulF64, B.constF64(1e-15),
                    B.op(Opcode::AbsF64, Det));
  T TakeExact = B.op(Opcode::CmpGEF64, B.op(Opcode::AbsF64, Correction),
                     ErrBound);
  auto ExactPath = B.newLabel();
  B.branchIf(TakeExact, ExactPath);
  B.out(Det);
  B.halt();
  B.bind(ExactPath);
  B.out(Exact);
  B.halt();
  return B.finish();
}

void analyze(const char *Label, bool Compensated, bool Detect) {
  Program P = buildOrient2d(Compensated);
  AnalysisConfig Cfg;
  Cfg.DetectCompensation = Detect;
  Herbgrind HG(P, Cfg);
  // Nearly-degenerate triangles: c almost on segment ab.
  for (double Eps : {1e-12, 3e-13, -4.7e-13, 8e-14, -1e-14}) {
    HG.runOnInput({0.0, 0.0, 12.0, 12.0, 5.0, 5.0 + Eps});
  }
  uint64_t Compensations = 0;
  for (const auto &[PC, Rec] : HG.opRecords())
    Compensations += Rec.CompensationsDetected;
  uint64_t Divergences = 0;
  for (const auto &[PC, Spot] : HG.spotRecords())
    if (Spot.Kind == SpotKind::Comparison)
      Divergences += Spot.Erroneous;
  std::printf("=== %s (compensation detection %s) ===\n", Label,
              Detect ? "on" : "off");
  std::printf("compensating operations detected: %llu\n",
              static_cast<unsigned long long>(Compensations));
  std::printf("adaptive-branch divergences (undetectable cases): %llu\n",
              static_cast<unsigned long long>(Divergences));
  std::printf("reported root causes: %zu\n",
              HG.reportedRootCauses().size());
  Report R = buildReport(HG);
  for (const RootCauseReport &RC : R.allRootCauses())
    std::printf("  cause @ %s: %s\n", RC.Loc.str().c_str(),
                RC.Body.substr(0, 60).c_str());
  std::printf("\n");
}

} // namespace

int main() {
  analyze("fast orient2d", /*Compensated=*/false, /*Detect=*/true);
  analyze("compensated orient2d", /*Compensated=*/true, /*Detect=*/true);
  analyze("compensated orient2d", /*Compensated=*/true, /*Detect=*/false);
  std::printf(
      "With detection on, the compensated predicate reports nothing: the\n"
      "two-product/two-diff residuals pass through cleanly. With detection\n"
      "off, their high-local-error subtractions flood the report -- the\n"
      "false positives Section 8.3 measures on Triangle.\n");
  return 0;
}
