//===- examples/complex_plotter.cpp - The Section 3 case study ------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The paper's running example: a complex function plotter whose picture
// speckles because the textbook complex square root
//
//   sqrt(x + iy) = ( sqrt(sqrt(x^2+y^2) + x) + i sqrt(sqrt(x^2+y^2) - x) )
//                  / sqrt(2)
//
// cancels catastrophically in sqrt(x^2+y^2) - x when y is tiny and x > 0.
// The plotter colors each pixel by arg(sqrt(z)) over the strip
// R = [0, 1/4] x [-3e-9, 3e-9] around the real axis (the slice of the
// paper's region where the bug bites). The per-pixel kernel runs under
// Herbgrind for every pixel; the report recovers exactly the Section 3
// root cause
//
//   (FPCore (x y) :pre ... (- (sqrt (+ (* x x) (* y y))) x))
//
// and applying the Herbie-style rewrite y^2/(sqrt(x^2+y^2)+x) fixes the
// picture.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

namespace {

const int Width = 250;
const int Height = 120;
const double X0 = 0.0, X1 = 0.25;
const double Y0 = -3e-9, Y1 = 3e-9;

/// The per-pixel kernel: color = arg(csqrt(x + iy)).
Program buildKernel(bool Fixed) {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  B.setLoc(SourceLoc("main.cpp", 21, "run(int, int)"));
  T X = B.input(0);
  T Y = B.input(1);
  T Half = B.constF64(0.5);

  T Mag = B.op(Opcode::SqrtF64,
               B.op(Opcode::AddF64, B.op(Opcode::MulF64, X, X),
                    B.op(Opcode::MulF64, Y, Y)));
  T RePart = B.op(Opcode::SqrtF64,
                  B.op(Opcode::MulF64, B.op(Opcode::AddF64, Mag, X), Half));
  B.setLoc(SourceLoc("main.cpp", 24, "run(int, int)"));
  T ImMagSquared = B.op(Opcode::SubF64, Mag, X); // the root cause
  T ImPart;
  if (!Fixed) {
    ImPart = B.op(Opcode::SqrtF64, B.op(Opcode::MulF64, ImMagSquared, Half));
  } else {
    // Herbie's rewrite for x > 0: (mag - x) == y^2 / (mag + x).
    T Rationalized = B.op(Opcode::DivF64, B.op(Opcode::MulF64, Y, Y),
                          B.op(Opcode::AddF64, Mag, X));
    ImPart = B.op(Opcode::SqrtF64, B.op(Opcode::MulF64, Rationalized, Half));
  }
  T SignedIm = B.op(Opcode::CopySignF64, ImPart, Y);
  B.setLoc(SourceLoc("main.cpp", 31, "run(int, int)"));
  B.out(B.op(Opcode::Atan2F64, SignedIm, RePart));
  B.halt();
  return B.finish();
}

void runPlotter(const char *Label, bool Fixed) {
  Program P = buildKernel(Fixed);
  Herbgrind HG(P);
  for (int J = 0; J < Height; ++J) {
    for (int I = 0; I < Width; ++I) {
      double X = X0 + (I + 0.5) * (X1 - X0) / Width;
      double Y = Y0 + (J + 0.5) * (Y1 - Y0) / Height;
      HG.runOnInput({X, Y});
    }
  }

  uint64_t Pixels = 0, Bad = 0;
  for (const auto &[PC, Spot] : HG.spotRecords()) {
    if (Spot.Kind != SpotKind::Output)
      continue;
    Pixels += Spot.Executions;
    Bad += Spot.Erroneous;
  }
  std::printf("=== %s plotter ===\n", Label);
  std::printf("%llu incorrect pixel values of %llu\n",
              static_cast<unsigned long long>(Bad),
              static_cast<unsigned long long>(Pixels));
  Report R = buildReport(HG);
  if (R.Spots.empty())
    std::printf("No erroneous spots: the picture is clean.\n\n");
  else
    std::printf("%s\n", R.render().c_str());
}

} // namespace

int main() {
  runPlotter("buggy", /*Fixed=*/false);
  runPlotter("fixed", /*Fixed=*/true);
  return 0;
}
