//===- examples/gram_schmidt.cpp - The Polybench case study ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 7's first case study: Gram-Schmidt orthonormalization fed a
// rank-deficient basis. The projection subtraction cancels the second
// vector to (real) zero, normalization divides 0/0, and Herbgrind reports
// the resulting NaN as maximal (64-bit) error -- with the near-zero vector
// as the example problematic input, linking the output error to the
// violated precondition rather than to the procedure itself.
//
// This version uses the native instrumentation frontend: the kernel below
// is ordinary C++ -- change Real back to double and it still compiles --
// analyzed by swapping the scalar type and marking inputs/outputs. (The
// original hand-built ProgramBuilder IR version of this example predates
// src/native/; quickstart.cpp remains the IR walkthrough.)
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;
using native::Real;

namespace {

const int Dim = 3;

Real dot(native::Context &C, const Real *X, const Real *Y) {
  HG_LOC(C);
  Real Acc = 0.0;
  for (int I = 0; I < Dim; ++I)
    Acc += X[I] * Y[I];
  return Acc;
}

/// The second orthonormal basis vector: q = w / ||w|| for the projection
/// residual w = b - ((b.a)/(a.a)) a. Plain C++ on the drop-in type.
void kernelGramSchmidt(native::Context &C, const double *In) {
  Real A[Dim], B[Dim], Q[Dim];
  for (int I = 0; I < Dim; ++I) {
    A[I] = C.input(static_cast<size_t>(I), In[I]);
    B[I] = C.input(static_cast<size_t>(I + Dim), In[I + Dim]);
  }
  // dot() stamps its own line, so re-stamp after each call: an HG_LOC
  // placed *before* a helper that also uses HG_LOC would be overridden.
  Real BdotA = dot(C, B, A);
  Real AdotA = dot(C, A, A);
  HG_LOC(C);
  Real R = BdotA / AdotA;
  for (int I = 0; I < Dim; ++I) {
    HG_LOC(C);
    Q[I] = B[I] - R * A[I];
  }
  Real QdotQ = dot(C, Q, Q);
  HG_LOC(C);
  Real Norm = sqrt(QdotQ);
  for (int I = 0; I < Dim; ++I) {
    HG_LOC(C);
    C.output(Q[I] / Norm);
  }
}

} // namespace

int main() {
  AnalysisConfig Cfg;
  Cfg.MaxExprDepth = 5; // keep reported fragments human-sized
  native::Context C(Cfg);

  // Healthy bases first: no report expected.
  double Healthy1[] = {0.3, 0.7, -0.2, 1.0, 0.1, 0.8};
  double Healthy2[] = {1.5, -0.4, 0.9, -0.2, 2.0, 0.3};
  kernelGramSchmidt(C, Healthy1);
  kernelGramSchmidt(C, Healthy2);

  // The rank-deficient case the Polybench generator produced: b is an
  // exact multiple of a, so the projection residual w is a zero vector --
  // an invalid input to normalization -- and q becomes 0/0.
  double Degenerate[] = {0.3, 0.7, -0.2, 0.6, 1.4, -0.4};
  kernelGramSchmidt(C, Degenerate);

  std::printf("--- Herbgrind report (native frontend) ---\n%s",
              buildReport(C).render().c_str());
  std::printf("The maximal (64-bit) error marks the NaN the real execution "
              "produces when normalizing a vector that is exactly zero in "
              "the reals: the Gram-Schmidt precondition was violated by its "
              "caller, exactly as in the Polybench 3.2.1 bug.\n");
  return 0;
}
