//===- examples/gram_schmidt.cpp - The Polybench case study ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 7's first case study: Gram-Schmidt orthonormalization fed a
// rank-deficient basis. The projection subtraction cancels the second
// vector to (real) zero, normalization divides 0/0, and Herbgrind reports
// the resulting NaN as maximal (64-bit) error -- with the near-zero vector
// as the example problematic input, linking the output error to the
// violated precondition rather than to the procedure itself.
//
// The kernel runs through heap memory (vectors live in arrays, like the
// Polybench C code), so the root-cause traces also demonstrate tracking
// through loads and stores.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

namespace {

const int Dim = 3;
const uint64_t VecA = 0x1000; // first input vector
const uint64_t VecB = 0x2000; // second input vector (nearly dependent)
const uint64_t OutQ = 0x3000; // normalized second basis vector

/// dot = sum_i mem[A + 8i] * mem[B + 8i], unrolled.
ProgramBuilder::Temp dot(ProgramBuilder &B, uint64_t A, uint64_t C) {
  ProgramBuilder::Temp Acc = B.constF64(0.0);
  for (int I = 0; I < Dim; ++I) {
    auto Ai = B.load(B.constI64(static_cast<int64_t>(A)), 8 * I,
                     ValueType::F64);
    auto Ci = B.load(B.constI64(static_cast<int64_t>(C)), 8 * I,
                     ValueType::F64);
    Acc = B.op(Opcode::AddF64, Acc, B.op(Opcode::MulF64, Ai, Ci));
  }
  return Acc;
}

Program buildKernel() {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  B.setLoc(SourceLoc("gramschmidt.c", 41, "kernel_gramschmidt"));

  // Store the basis: a = inputs 0-2, b = inputs 3-5.
  for (int I = 0; I < Dim; ++I)
    B.store(B.constI64(VecA), 8 * I, B.input(static_cast<unsigned>(I)));
  for (int I = 0; I < Dim; ++I)
    B.store(B.constI64(VecB), 8 * I, B.input(static_cast<unsigned>(I + 3)));

  // r = (b . a) / (a . a); w = b - r*a; q = w / ||w||.
  B.setLoc(SourceLoc("gramschmidt.c", 54, "kernel_gramschmidt"));
  T R = B.op(Opcode::DivF64, dot(B, VecB, VecA), dot(B, VecA, VecA));
  for (int I = 0; I < Dim; ++I) {
    auto Ai = B.load(B.constI64(VecA), 8 * I, ValueType::F64);
    auto Bi = B.load(B.constI64(VecB), 8 * I, ValueType::F64);
    B.setLoc(SourceLoc("gramschmidt.c", 58, "kernel_gramschmidt"));
    B.store(B.constI64(OutQ), 8 * I,
            B.op(Opcode::SubF64, Bi, B.op(Opcode::MulF64, R, Ai)));
  }
  B.setLoc(SourceLoc("gramschmidt.c", 61, "kernel_gramschmidt"));
  T Norm = B.op(Opcode::SqrtF64, dot(B, OutQ, OutQ));
  for (int I = 0; I < Dim; ++I) {
    auto Wi = B.load(B.constI64(OutQ), 8 * I, ValueType::F64);
    B.setLoc(SourceLoc("gramschmidt.c", 64, "kernel_gramschmidt"));
    B.out(B.op(Opcode::DivF64, Wi, Norm));
  }
  B.halt();
  return B.finish();
}

} // namespace

int main() {
  Program P = buildKernel();
  AnalysisConfig Cfg;
  Cfg.MaxExprDepth = 5; // keep reported fragments human-sized
  Herbgrind HG(P, Cfg);

  // Healthy bases first: no report expected.
  HG.runOnInput({0.3, 0.7, -0.2, 1.0, 0.1, 0.8});
  HG.runOnInput({1.5, -0.4, 0.9, -0.2, 2.0, 0.3});
  std::printf("Healthy runs produced q = (%g, %g, %g)\n",
              HG.lastOutputs()[0].asF64(), HG.lastOutputs()[1].asF64(),
              HG.lastOutputs()[2].asF64());

  // The rank-deficient case the Polybench generator produced: b is an
  // exact multiple of a, so the projection residual w is a zero vector --
  // an invalid input to normalization -- and q becomes 0/0.
  HG.runOnInput({0.3, 0.7, -0.2, 0.6, 1.4, -0.4});
  std::printf("Degenerate run produced q = (%g, %g, %g)\n",
              HG.lastOutputs()[0].asF64(), HG.lastOutputs()[1].asF64(),
              HG.lastOutputs()[2].asF64());

  std::printf("\n--- Herbgrind report ---\n%s",
              buildReport(HG).render().c_str());
  std::printf("The maximal (64-bit) error marks the NaN the real execution "
              "produces when normalizing a vector that is exactly zero in "
              "the reals: the Gram-Schmidt precondition was violated by its "
              "caller, exactly as in the Polybench 3.2.1 bug.\n");
  return 0;
}
