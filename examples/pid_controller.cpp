//===- examples/pid_controller.cpp - The PID / Patriot case study ---------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 7's second case study: a PID controller loop that runs "for N
// seconds" by testing (t < N) with t incremented by 0.2 each step. Since
// 0.2 is not representable, the accumulated t drifts below its real value
// and the loop runs one extra iteration for some bounds (the Patriot bug's
// mechanism). Herbgrind marks every comparison as a spot; the real-shadow
// execution diverges at the loop bound, and the report links the divergent
// compare to the inaccurate increment.
//
// This version uses the native instrumentation frontend: the controller is
// an ordinary C++ while-loop over the drop-in Real type (the original
// hand-built ProgramBuilder IR version predates src/native/), so the loop
// that the paper instruments at the binary level is here a *real* loop.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;
using native::Real;

namespace {

int IncrementLine = 0; ///< Source line of the drifting t += dt.

/// The controller: drives measure toward the setpoint with a P+I loop,
/// counting iterations; returns the iteration count.
double controller(native::Context &C, double Bound) {
  Real Setpoint = 5.0, Kp = 0.8, Ki = 0.05, Dt = 0.2;
  Real M = C.input(0, 0.0);
  Real Integral = 0.0, Time = 0.0, Count = 0.0;
  // The for-header idiom stamps the loop condition's site each trip.
  for (HG_LOC(C); Time < Real(Bound); HG_LOC(C)) {
    HG_LOC(C);
    Real E = Setpoint - M;
    HG_LOC(C);
    Integral += E * Dt;
    HG_LOC(C);
    M += 0.01 * (Kp * E + Ki * Integral);
    IncrementLine = __LINE__; HG_LOC(C); Time += Dt;
    HG_LOC(C);
    Count += 1.0;
  }
  HG_LOC(C);
  C.output(M);
  HG_LOC(C); // outputs are spots keyed by location: one line each
  return C.output(Count);
}

} // namespace

int main() {
  // The paper: with bound 10.0 the loop runs 51 times, not 50, because
  // fifty additions of 0.2 land 3.5e-15 below 10.
  for (double Bound : {8.0, 10.0, 12.0}) {
    AnalysisConfig Cfg;
    // A control system is a critical application: lower the local error
    // threshold to track even sub-bit error sources (Section 8.2's
    // discussion of threshold choice).
    Cfg.LocalErrorThreshold = 0.01;
    native::Context C(Cfg);
    double Iters = controller(C, Bound);
    double Expected = Bound / 0.2;
    std::printf("bound %.1f: %g iterations (exact arithmetic: %g)%s\n",
                Bound, Iters, Expected,
                Iters != Expected ? "   <-- EXTRA ITERATION" : "");

    for (const auto &[PC, Spot] : C.spotRecords()) {
      if (Spot.Kind != SpotKind::Comparison || Spot.Erroneous == 0)
        continue;
      std::printf("  divergent loop condition @ %s "
                  "(%llu of %llu evaluations)\n",
                  Spot.Loc.str().c_str(),
                  static_cast<unsigned long long>(Spot.Erroneous),
                  static_cast<unsigned long long>(Spot.Executions));
      for (uint32_t OpPC : Spot.InfluencingOps) {
        const OpRecord &Rec = C.opRecords().at(OpPC);
        if (Rec.Loc.Line == IncrementLine)
          std::printf("  influenced by the increment at %s: %s\n",
                      Rec.Loc.str().c_str(),
                      Rec.Expr->fpcoreBody().c_str());
      }
    }
  }
  std::printf("\nThe fix the upstream authors deployed: count iterations in "
              "an integer (t = i * 0.2), testing (i * 0.2 < N).\n");
  return 0;
}
