//===- examples/pid_controller.cpp - The PID / Patriot case study ---------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Section 7's second case study: a PID controller loop that runs "for N
// seconds" by testing (t < N) with t incremented by 0.2 each step. Since
// 0.2 is not representable, the accumulated t drifts below its real value
// and the loop runs one extra iteration for some bounds (the Patriot bug's
// mechanism). Herbgrind marks every comparison as a spot; the real-shadow
// execution diverges at the loop bound, and the report links the divergent
// compare to the inaccurate increment.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

namespace {

/// The controller: drives measure toward the setpoint with a P+I loop,
/// counting iterations; outputs the final measure and iteration count.
Program buildController(double Bound) {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  T Setpoint = B.constF64(5.0);
  T Kp = B.constF64(0.8);
  T Ki = B.constF64(0.05);
  T Dt = B.constF64(0.2);
  T M = B.newTemp();
  B.copyTo(M, B.input(0));
  T Integral = B.newTemp();
  B.copyTo(Integral, B.constF64(0.0));
  T Time = B.newTemp();
  B.copyTo(Time, B.constF64(0.0));
  T Count = B.newTemp();
  B.copyTo(Count, B.constF64(0.0));
  T One = B.constF64(1.0);
  T BoundT = B.constF64(Bound);

  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.setLoc(SourceLoc("pid.c", 17, "main"));
  B.branchIf(B.op(Opcode::CmpGEF64, Time, BoundT), Done);
  // e = setpoint - m; integral += e*dt; m += 0.01*(kp*e + ki*integral).
  T E = B.op(Opcode::SubF64, Setpoint, M);
  B.copyTo(Integral,
           B.op(Opcode::AddF64, Integral, B.op(Opcode::MulF64, E, Dt)));
  T Control = B.op(Opcode::AddF64, B.op(Opcode::MulF64, Kp, E),
                   B.op(Opcode::MulF64, Ki, Integral));
  B.copyTo(M, B.op(Opcode::AddF64, M,
                   B.op(Opcode::MulF64, B.constF64(0.01), Control)));
  B.setLoc(SourceLoc("pid.c", 24, "main"));
  B.copyTo(Time, B.op(Opcode::AddF64, Time, Dt));
  B.copyTo(Count, B.op(Opcode::AddF64, Count, One));
  B.jump(Head);
  B.bind(Done);
  B.out(M);
  B.out(Count);
  B.halt();
  return B.finish();
}

} // namespace

int main() {
  // The paper: with bound 10.0 the loop runs 51 times, not 50, because
  // fifty additions of 0.2 land 3.5e-15 below 10.
  for (double Bound : {8.0, 10.0, 12.0}) {
    Program P = buildController(Bound);
    AnalysisConfig Cfg;
    // A control system is a critical application: lower the local error
    // threshold to track even sub-bit error sources (Section 8.2's
    // discussion of threshold choice).
    Cfg.LocalErrorThreshold = 0.01;
    Herbgrind HG(P, Cfg);
    HG.runOnInput({0.0});
    double Iters = HG.lastOutputs()[1].asF64();
    double Expected = Bound / 0.2;
    std::printf("bound %.1f: %g iterations (exact arithmetic: %g)%s\n",
                Bound, Iters, Expected,
                Iters != Expected ? "   <-- EXTRA ITERATION" : "");

    for (const auto &[PC, Spot] : HG.spotRecords()) {
      if (Spot.Kind != SpotKind::Comparison || Spot.Erroneous == 0)
        continue;
      std::printf("  divergent loop condition @ %s "
                  "(%llu of %llu evaluations)\n",
                  Spot.Loc.str().c_str(),
                  static_cast<unsigned long long>(Spot.Erroneous),
                  static_cast<unsigned long long>(Spot.Executions));
      for (uint32_t OpPC : Spot.InfluencingOps) {
        const OpRecord &Rec = HG.opRecords().at(OpPC);
        if (Rec.Loc.Line == 24)
          std::printf("  influenced by the increment at %s: %s\n",
                      Rec.Loc.str().c_str(),
                      Rec.Expr->fpcoreBody().c_str());
      }
    }
  }
  std::printf("\nThe fix the upstream authors deployed: count iterations in "
              "an integer (t = i * 0.2), testing (i * 0.2 < N).\n");
  return 0;
}
