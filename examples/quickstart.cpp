//===- examples/quickstart.cpp - Hello, Herbgrind -------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The smallest end-to-end use of the public API: build a program with the
// canonical cancellation bug (x + 1) - x, run it under the analysis, and
// print the paper-style report identifying the root cause.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;

int main() {
  // Client program: reads x, computes (x + 1) - x, prints the result.
  ProgramBuilder B;
  B.setLoc(SourceLoc("quickstart.c", 3, "main"));
  ProgramBuilder::Temp X = B.input(0);
  ProgramBuilder::Temp Sum = B.op(Opcode::AddF64, X, B.constF64(1.0));
  B.setLoc(SourceLoc("quickstart.c", 4, "main"));
  ProgramBuilder::Temp Diff = B.op(Opcode::SubF64, Sum, X);
  B.out(Diff);
  B.halt();
  Program P = B.finish();

  std::printf("Client program:\n%s\n", P.print().c_str());

  // Run it under Herbgrind on a few inputs, benign and catastrophic.
  Herbgrind HG(P);
  for (double V : {2.0, 1e8, 1e15, 1e16, 4e16}) {
    HG.runOnInput({V});
    std::printf("f(%g) = %g\n", V, HG.lastOutputs()[0].asF64());
  }

  std::printf("\n--- Herbgrind report ---\n%s",
              buildReport(HG).render().c_str());
  return 0;
}
