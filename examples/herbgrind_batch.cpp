//===- examples/herbgrind_batch.cpp - Parallel corpus analysis CLI --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The batch engine as a command-line tool: analyze many FPCore benchmarks
// (the bundled corpus by default) sharded across worker threads, and emit
// per-benchmark root-cause reports as text or JSON. Output is byte-
// identical at any --jobs value; timing goes to stderr so it never
// perturbs comparisons.
//
// Usage:
//   herbgrind_batch [--jobs N] [--samples N] [--shard N] [--seed S]
//                   [--name BENCH]... [file.fpcore]... [--json] [--out F]
//   herbgrind_batch --list
//   herbgrind_batch --selftest [engine options]   # jobs-invariance check
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "fpcore/Corpus.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::engine;
using namespace herbgrind::fpcore;

static int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] [file.fpcore]...\n"
      "  --jobs N      worker threads (default: hardware concurrency)\n"
      "  --samples N   sampled inputs per benchmark (default 64)\n"
      "  --shard N     inputs per shard (default 16)\n"
      "  --seed S      base sampling seed (default 0xcafe)\n"
      "  --name BENCH  analyze one corpus benchmark (repeatable)\n"
      "  --json        emit a JSON report instead of text\n"
      "  --out FILE    write the report to FILE instead of stdout\n"
      "  --list        list corpus benchmark names\n"
      "  --selftest    verify --jobs N output matches --jobs 1, then exit\n"
      "With no files and no --name, the whole bundled corpus is analyzed.\n",
      Prog);
  return 2;
}

int main(int Argc, char **Argv) {
  EngineConfig Cfg;
  bool Json = false, SelfTest = false;
  std::string OutFile;
  std::vector<Core> Cores;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (std::strcmp(Arg, "--list") == 0) {
      for (const Core &C : corpus())
        std::printf("%s\n", C.Name.c_str());
      return 0;
    } else if (std::strcmp(Arg, "--jobs") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      int Jobs = std::atoi(V);
      if (Jobs < 0) {
        std::fprintf(stderr, "error: --jobs must be >= 0 (0 = auto)\n");
        return 2;
      }
      Cfg.Jobs = static_cast<unsigned>(Jobs);
    } else if (std::strcmp(Arg, "--samples") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.SamplesPerBenchmark = std::atoi(V);
    } else if (std::strcmp(Arg, "--shard") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.ShardSize = std::atoi(V);
    } else if (std::strcmp(Arg, "--seed") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.Seed = std::strtoull(V, nullptr, 0);
    } else if (std::strcmp(Arg, "--name") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      bool Found = false;
      for (const Core &C : corpus())
        if (C.Name == V) {
          Cores.push_back(C.clone());
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: no corpus benchmark named '%s' "
                             "(try --list)\n",
                     V);
        return 1;
      }
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Arg, "--selftest") == 0) {
      SelfTest = true;
    } else if (std::strcmp(Arg, "--out") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      OutFile = V;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Arg);
        return 1;
      }
      std::stringstream Buf;
      Buf << In.rdbuf();
      ParseResult R = parse(Buf.str());
      if (!R.Ok) {
        std::fprintf(stderr, "error: %s: parse failed: %s\n", Arg,
                     R.Error.c_str());
        return 1;
      }
      std::string WhyNot;
      if (!isCompilable(R.Value, &WhyNot)) {
        std::fprintf(stderr, "error: %s: %s\n", Arg, WhyNot.c_str());
        return 1;
      }
      Cores.push_back(std::move(R.Value));
    }
  }

  Engine Eng(Cfg);
  bool WholeCorpus = Cores.empty();

  if (SelfTest) {
    // The headline determinism property: a multi-worker run must be
    // byte-identical to a single-worker run of the same configuration.
    BatchResult Multi = WholeCorpus ? Eng.runCorpus() : Eng.run(Cores);
    EngineConfig OneCfg = Eng.config();
    OneCfg.Jobs = 1;
    Engine One(OneCfg);
    BatchResult Single = WholeCorpus ? One.runCorpus() : One.run(Cores);
    if (Multi.renderJson() != Single.renderJson()) {
      std::fprintf(stderr,
                   "FAIL: --jobs %u report differs from --jobs 1 report\n",
                   Eng.config().Jobs);
      return 1;
    }
    std::fprintf(stderr,
                 "OK: %llu benchmarks, %llu shards, %llu runs; --jobs %u "
                 "output identical to --jobs 1\n",
                 static_cast<unsigned long long>(Multi.Stats.Benchmarks),
                 static_cast<unsigned long long>(Multi.Stats.Shards),
                 static_cast<unsigned long long>(Multi.Stats.Runs),
                 Eng.config().Jobs);
    return 0;
  }

  BatchResult Result = WholeCorpus ? Eng.runCorpus() : Eng.run(Cores);

  std::string Rendered;
  if (Json) {
    Rendered = Result.renderJson();
    Rendered += "\n";
  } else {
    for (const BenchmarkResult &BR : Result.Benchmarks) {
      Rendered += "=== " + BR.Name + " ===\n";
      Rendered += BR.Rep.render();
      Rendered += "\n";
    }
  }

  if (OutFile.empty()) {
    std::fputs(Rendered.c_str(), stdout);
  } else {
    std::ofstream Out(OutFile, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
      return 1;
    }
    Out << Rendered;
  }

  std::fprintf(stderr,
               "analyzed %llu benchmarks (%llu shards, %llu runs) with "
               "--jobs %u in %.2fs; program cache: %llu hits, %llu misses\n",
               static_cast<unsigned long long>(Result.Stats.Benchmarks),
               static_cast<unsigned long long>(Result.Stats.Shards),
               static_cast<unsigned long long>(Result.Stats.Runs),
               Eng.config().Jobs, Result.Stats.WallSeconds,
               static_cast<unsigned long long>(Result.Stats.CacheHits),
               static_cast<unsigned long long>(Result.Stats.CacheMisses));
  return 0;
}
