//===- examples/herbgrind_batch.cpp - Parallel corpus analysis CLI --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The batch engine as a command-line tool: analyze many FPCore benchmarks
// (the bundled corpus by default) sharded across worker threads, and emit
// per-benchmark root-cause reports as text or JSON. Output is byte-
// identical at any --jobs value; timing goes to stderr so it never
// perturbs comparisons.
//
// Persistence and distribution (REPORT_SCHEMA.md documents the formats):
//   --cache-dir DIR     reuse shard results across runs; a repeated sweep
//                       analyzes only new or invalidated shards
//   --emit-shard DIR    also write every shard result as a wire document
//   --shard-range LO:HI run only per-benchmark shard indices [LO, HI)
//   --merge-shards      fold shard documents (files or directories of
//                       them) into the report a single full sweep of the
//                       same configuration would have produced
//   --improve           run the batch improver over every merged root
//                       cause (works after a sweep and on merged shard
//                       documents; outcomes land in the report's
//                       "improvements" section and in the result cache)
//
// Usage:
//   herbgrind_batch [--jobs N] [--samples N] [--shard N] [--seed S]
//                   [--cache-dir D] [--emit-shard D] [--shard-range LO:HI]
//                   [--wire-format json|binary]
//                   [--improve] [--improve-samples N]
//                   [--name BENCH]... [file.fpcore]... [--json] [--out F]
//   herbgrind_batch --merge-shards [--improve] [--json] [--out F] PATH...
//   herbgrind_batch hgb2json FILE [--out F]   # HGB document -> exact JSON
//   herbgrind_batch json2hgb FILE [--out F]   # JSON document -> HGB
//   herbgrind_batch --list
//   herbgrind_batch --selftest [engine options]   # jobs-invariance check
//
//===----------------------------------------------------------------------===//

#include "analysis/OpProfile.h"
#include "engine/Engine.h"
#include "engine/ResultCache.h"
#include "engine/RunLedger.h"
#include "fpcore/Corpus.h"
#include "improve/BatchImprove.h"
#include "native/Kernel.h"
#include "support/Events.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "support/WireBinary.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::engine;
using namespace herbgrind::fpcore;

static int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] [file.fpcore]...\n"
      "  --jobs N          worker threads (default: hardware concurrency)\n"
      "  --samples N       sampled inputs per benchmark (default 64)\n"
      "  --shard N         inputs per shard (default 16)\n"
      "  --batch N         sample points per batched analyzer call (the\n"
      "                    SoA hot path; default 1 = scalar point-at-a-\n"
      "                    time; report bytes are identical at every value)\n"
      "  --seed S          base sampling seed (default 0xcafe)\n"
      "  --tier MODE       shadowing tier: full (default; every run under\n"
      "                    the 256-bit shadow), confirm (tier-0 error\n"
      "                    predicates sweep first, suspect benchmarks\n"
      "                    replay in full -- report bytes identical to\n"
      "                    full), fast (per-run escalation; root causes a\n"
      "                    subset of full's, counters differ)\n"
      "  --name BENCH      analyze one corpus benchmark (repeatable)\n"
      "  --native          also sweep the bundled native-frontend demo\n"
      "                    kernels (real C++ code instrumented through\n"
      "                    native::Real); alone, sweep only those\n"
      "  --cache-dir DIR   persistent shard-result cache: repeated sweeps\n"
      "                    analyze only new or invalidated shards\n"
      "  --cache-max-bytes N  prune the cache to N bytes after the sweep\n"
      "                    (LRU by mtime; 0 = unbounded, the default)\n"
      "  --cache-gc        GC mode: prune --cache-dir to an explicitly\n"
      "                    given --cache-max-bytes and exit (no analysis;\n"
      "                    an explicit 0 empties the cache)\n"
      "  --emit-shard DIR  also write each shard result as a wire-format\n"
      "                    document (for --merge-shards on another machine)\n"
      "  --wire-format F   encoding for documents this sweep writes (cache\n"
      "                    entries, emitted shards): json (default) or\n"
      "                    binary (HGB, the compact format). Readers sniff,\n"
      "                    so either setting consumes either format\n"
      "  --shard-range LO:HI  run only per-benchmark shard indices\n"
      "                    [LO, HI) of the full layout\n"
      "  --merge-shards    merge mode: remaining paths are shard documents\n"
      "                    (or directories of *.json) to fold into a report\n"
      "  --improve         run the batch improver over every merged root\n"
      "                    cause; outcomes are appended to the report (and\n"
      "                    cached in --cache-dir when one is configured)\n"
      "  --improve-samples N  sampled points per improver run (default "
      "256)\n"
      "  --json            emit a JSON report instead of text\n"
      "  --out FILE        write the report to FILE instead of stdout\n"
      "  --report-out FILE same as --out (service-shaped callers)\n"
      "  --metrics-out FILE  write the sweep's telemetry document (merged\n"
      "                    metrics + hot-op profile) as versioned JSON;\n"
      "                    never affects report bytes (docs/TELEMETRY.md)\n"
      "  --trace-out FILE  write spans as Chrome trace-event JSON (load in\n"
      "                    Perfetto / chrome://tracing)\n"
      "  --profile-ops     attribute shadow-op wall time and limb traffic\n"
      "                    to (site, opcode) identities; prints a ranked\n"
      "                    cost table to stderr\n"
      "  --profile-period N  measure every Nth shadow op (default 1)\n"
      "  --progress        print a heartbeat line to stderr during sweeps\n"
      "  --progress-every S  heartbeat interval in seconds (implies\n"
      "                    --progress; fractional values allowed)\n"
      "  --events-out FILE stream lifecycle events (sweep begin/end, shard\n"
      "                    queued/cache-hit/analyzed/escalated/reduced,\n"
      "                    improve records) as NDJSON; '-' = stdout\n"
      "  --ledger-dir DIR  append one run-ledger entry (config hash, stats,\n"
      "                    merged metrics) after the sweep; browse with the\n"
      "                    ledger subcommand\n"
      "  --list            list corpus benchmark names\n"
      "  --selftest        verify --jobs N output matches --jobs 1, then "
      "exit\n"
      "Subcommands (first argument):\n"
      "  hgb2json FILE [--out F]  rewrite an HGB document (any family) as\n"
      "                    the exact JSON bytes the JSON backend emits\n"
      "  json2hgb FILE [--out F]  rewrite a JSON document as HGB\n"
      "  telemetry-merge PATH... [--out F] [--wire-format json|binary]\n"
      "                    fold telemetry documents (files, or directories\n"
      "                    of telemetry-*.json/.hgb sidecars) into one;\n"
      "                    counters sum, timers fold, profiles re-rank\n"
      "  ledger list DIR   print every ledger entry, oldest first\n"
      "  ledger show DIR N print entry N (chronological index) as JSON\n"
      "  ledger compare DIR [BASE CUR] [--wall-frac F] [--cache-hit-drop F]\n"
      "                    [--escalation-rise F] [--heap-frac F]\n"
      "                    [--heap-slack N]  judge entry CUR against BASE\n"
      "                    (default: latest against previous); exits 1 when\n"
      "                    a regression threshold is crossed\n"
      "With no files and no --name, the whole bundled corpus is analyzed.\n",
      Prog);
  return 2;
}

/// Writes the rendered report to --out (or stdout); shared by the run and
/// merge modes.
static int emitRendered(const std::string &Rendered,
                        const std::string &OutFile) {
  if (OutFile.empty()) {
    std::fputs(Rendered.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutFile, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
    return 1;
  }
  Out << Rendered;
  return 0;
}

/// The `--progress` heartbeat: a helper thread that samples the metrics
/// registry every interval (default one second, `--progress-every` to
/// change) and prints sweep progress to stderr. The report stream is
/// untouched, so heartbeats never perturb comparisons. Every line is
/// rendered to a buffer and written with ONE stdio call, so a heartbeat
/// racing the main thread's diagnostics never interleaves mid-line; and
/// stop() -- run on every exit path, errors included -- joins the thread
/// first and then prints one final line, so the last thing `--progress`
/// reports is always the completed state.
class ProgressHeartbeat {
public:
  /// Must be called before start(). Fractional seconds are honored.
  void setInterval(double Seconds) {
    IntervalMs = std::max<int64_t>(1, static_cast<int64_t>(Seconds * 1000.0));
  }

  void start() {
    Started = true;
    T = std::thread([this] {
      std::unique_lock<std::mutex> Lock(M);
      while (!CV.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                          [this] { return Stop; }))
        printLine(/*Final=*/false);
    });
  }

  /// Joins the heartbeat thread and prints the final line. Idempotent;
  /// also run by the destructor so early error returns stay covered.
  void stop() {
    if (T.joinable()) {
      {
        std::lock_guard<std::mutex> Lock(M);
        Stop = true;
      }
      CV.notify_all();
      T.join();
    }
    if (Started) {
      Started = false;
      printLine(/*Final=*/true);
    }
  }

  ~ProgressHeartbeat() { stop(); }

private:
  static void printLine(bool Final) {
    metrics::Snapshot S = metrics::snapshot();
    const metrics::GaugeSample *Total = S.findGauge("engine.shards_total");
    std::string Line = format(
        "progress: %llu/%lld shards (%llu analyzed, %llu cached), "
        "%llu improver records%s\n",
        static_cast<unsigned long long>(S.counterValue("engine.shards_done")),
        static_cast<long long>(Total ? Total->Value : 0),
        static_cast<unsigned long long>(
            S.counterValue("engine.shards_analyzed")),
        static_cast<unsigned long long>(S.counterValue("engine.shards_cached")),
        static_cast<unsigned long long>(
            S.counterValue("improve.records_analyzed") +
            S.counterValue("improve.records_cached")),
        Final ? " -- done" : "");
    std::fwrite(Line.data(), 1, Line.size(), stderr);
  }

  std::thread T;
  std::mutex M;
  std::condition_variable CV;
  bool Stop = false;
  bool Started = false;
  int64_t IntervalMs = 1000;
};

/// Writes \p Text to \p Path; diagnoses (but does not abort on) failure.
static int writeTextFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (Out)
    Out << Text;
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return 1;
  }
  return 0;
}

/// Assembles this process's telemetry document: the current metrics
/// snapshot plus the op profile accumulated in \p Result's records (when
/// a sweep result is at hand).
static TelemetryDoc buildTelemetryDoc(const BatchResult *Result) {
  TelemetryDoc Doc;
  Doc.Metrics = metrics::snapshot();
  if (Result)
    for (const BenchmarkResult &BR : Result->Benchmarks)
      opprof::accumulateOpProfile(BR.Records.Ops, Doc.Profile);
  opprof::finalizeOpProfile(Doc.Profile);
  Doc.ProfileTotalNanos = Doc.Metrics.counterValue("profile.shadow_ns");
  return Doc;
}

/// Stamps provenance meta (hostname, wall-clock timestamp) onto a
/// telemetry document this process is about to write. Merge tools
/// deliberately do NOT stamp -- their output stays byte-deterministic --
/// so stamping is the writer's last step.
static void stampTelemetryMeta(TelemetryDoc &Doc) {
  Doc.HasMeta = true;
  Doc.Meta.Host = hostName();
  Doc.Meta.Timestamp = isoTimestampUtc(wallClockNanos() / 1000000000ull);
  if (Doc.Meta.MergedDocs == 0)
    Doc.Meta.MergedDocs = 1;
}

/// Emits the post-run telemetry outputs: stops tracing and writes the
/// Chrome trace (--trace-out), assembles the telemetry document
/// (--metrics-out), and prints the ranked hot-op table (--profile-ops).
/// When \p SidecarPaths is given (merge mode), those telemetry sidecars
/// are folded into this process's document first, so the written doc
/// reproduces the emitting sweeps' totals. Returns nonzero if any
/// requested file failed to write or any sidecar failed to parse.
static int emitTelemetry(const std::string &MetricsOut,
                         const std::string &TraceOut, bool ProfileOps,
                         const BatchResult *Result,
                         const std::vector<std::string> *SidecarPaths =
                             nullptr) {
  int Rc = 0;
  if (!TraceOut.empty()) {
    trace::stop();
    Rc |= writeTextFile(TraceOut, trace::renderChromeTrace());
  }
  if (MetricsOut.empty() && !ProfileOps)
    return Rc;
  TelemetryDoc Doc = buildTelemetryDoc(Result);
  if (SidecarPaths)
    for (const std::string &Path : *SidecarPaths) {
      std::string Text, Err;
      TelemetryDoc SDoc;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        Rc = 1;
        continue;
      }
      if (!parseTelemetry(Text, SDoc, Err)) {
        std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
        Rc = 1;
        continue;
      }
      Doc.mergeFrom(SDoc);
    }
  stampTelemetryMeta(Doc);
  if (!MetricsOut.empty())
    Rc |= writeTextFile(MetricsOut, renderTelemetryJson(Doc) + "\n");
  if (ProfileOps)
    std::fputs(
        opprof::renderOpProfileTable(Doc.Profile, 10, Doc.ProfileTotalNanos)
            .c_str(),
        stderr);
  return Rc;
}

/// The per-shard-slice telemetry sidecar: when a sweep emits shard
/// documents for another machine to merge, it also drops its telemetry
/// document next to them (named by the slice so two machines sharing an
/// output directory never collide), and `--merge-shards` /
/// `telemetry-merge` fold the sidecars back into the single-machine
/// totals. Written after the sweep (and improve pass), so the sidecar
/// covers everything this process did.
static int writeTelemetrySidecar(const EngineConfig &Cfg,
                                 const BatchResult &Result) {
  if (Cfg.EmitShardDir.empty())
    return 0;
  TelemetryDoc Doc = buildTelemetryDoc(&Result);
  stampTelemetryMeta(Doc);
  const bool Bin = Cfg.WireFormat == WireEncoding::Binary;
  std::string RangeEnd =
      Cfg.ShardEnd == std::numeric_limits<size_t>::max()
          ? std::string("end")
          : format("%zu", Cfg.ShardEnd);
  std::string Path =
      Cfg.EmitShardDir +
      format("/telemetry-r%zu-%s.%s", Cfg.ShardBegin, RangeEnd.c_str(),
             Bin ? "hgb" : "json");
  std::string Data =
      Bin ? renderTelemetryBinary(Doc) : renderTelemetryJson(Doc) + "\n";
  if (!writeFileAtomic(Path, Data)) {
    std::fprintf(stderr, "error: cannot write telemetry sidecar %s\n",
                 Path.c_str());
    return 1;
  }
  return 0;
}

/// Re-enforces a configured --cache-max-bytes after an improve pass
/// stored fresh entries (any engine-side GC ran before they existed): a
/// capped directory never ends an --improve run over its bound. Folds GC
/// statistics into \p Stats when given, otherwise warns on failure.
static void enforceCacheCap(ResultCache *Cache, uint64_t MaxBytes,
                            EngineStats *Stats) {
  if (!Cache || MaxBytes == 0)
    return;
  CacheGcStats Gc;
  std::string GcErr;
  if (Cache->gc(MaxBytes, Gc, GcErr)) {
    if (Stats) {
      Stats->CachePrunedEntries += Gc.PrunedEntries;
      Stats->CachePrunedBytes += Gc.PrunedBytes;
    }
  } else if (Stats && Stats->CacheGcError.empty()) {
    Stats->CacheGcError = std::move(GcErr);
  } else if (!Stats) {
    std::fprintf(stderr, "warning: cache GC failed (cap not enforced): %s\n",
                 GcErr.c_str());
  }
}

/// Runs the batch improver over a sweep's (or merge's) result, attaching
/// outcomes to the per-benchmark reports. Statistics go to stderr so the
/// report stream stays byte-comparable.
static void runImprovePass(BatchResult &Result,
                           const improve::BatchImproveConfig &BCfg,
                           ResultCache *Cache) {
  improve::BatchImproveStats S = improve::batchImprove(Result, BCfg, Cache);
  std::fprintf(stderr,
               "improver: %llu root causes across %llu benchmarks "
               "(%llu significant, %llu improved) in %.2fs "
               "(%llu analyzed, %llu cached)\n",
               static_cast<unsigned long long>(S.Candidates),
               static_cast<unsigned long long>(S.Benchmarks),
               static_cast<unsigned long long>(S.Significant),
               static_cast<unsigned long long>(S.Improved), S.WallSeconds,
               static_cast<unsigned long long>(S.AnalyzedRecords),
               static_cast<unsigned long long>(S.CachedRecords));
}

static std::string renderText(const BatchResult &Result) {
  std::string Rendered;
  for (const BenchmarkResult &BR : Result.Benchmarks) {
    Rendered += "=== " + BR.Name + " ===\n";
    Rendered += BR.Rep.render();
    Rendered += "\n";
  }
  return Rendered;
}

/// Whether a path names a telemetry sidecar (by basename convention:
/// writeTelemetrySidecar emits "telemetry-r<lo>-<hi>.<ext>").
static bool isTelemetrySidecarName(const std::string &Path) {
  std::string Name = std::filesystem::path(Path).filename().string();
  return Name.rfind("telemetry", 0) == 0;
}

/// Collects shard-document paths: each argument is a file, or a directory
/// whose *.json / *.hgb entries (sorted, for reproducible error messages)
/// are taken. Telemetry sidecars living next to emitted shards are routed
/// to \p TelemetryPaths (when given; otherwise skipped in directories) so
/// they never reach the shard parser. Iteration uses the error_code API
/// throughout -- a directory that turns unreadable mid-walk is a
/// diagnostic, not a terminate().
static bool collectShardPaths(const std::vector<std::string> &Args,
                              std::vector<std::string> &Paths,
                              std::vector<std::string> *TelemetryPaths =
                                  nullptr) {
  namespace fs = std::filesystem;
  for (const std::string &Arg : Args) {
    std::error_code Ec;
    if (fs::is_directory(Arg, Ec)) {
      std::vector<std::string> Entries, Sidecars;
      fs::directory_iterator It(Arg, Ec), End;
      for (; !Ec && It != End; It.increment(Ec)) {
        const fs::path &P = It->path();
        if (P.extension() != ".json" && P.extension() != ".hgb")
          continue;
        if (isTelemetrySidecarName(P.string()))
          Sidecars.push_back(P.string());
        else
          Entries.push_back(P.string());
      }
      if (Ec) {
        std::fprintf(stderr, "error: cannot read directory %s: %s\n",
                     Arg.c_str(), Ec.message().c_str());
        return false;
      }
      std::sort(Entries.begin(), Entries.end());
      Paths.insert(Paths.end(), Entries.begin(), Entries.end());
      if (TelemetryPaths) {
        std::sort(Sidecars.begin(), Sidecars.end());
        TelemetryPaths->insert(TelemetryPaths->end(), Sidecars.begin(),
                               Sidecars.end());
      }
    } else {
      Paths.push_back(Arg);
    }
  }
  return true;
}

static int runMergeShards(const std::vector<std::string> &Args, bool Json,
                          const std::string &OutFile, bool Improve,
                          const improve::BatchImproveConfig &BCfg,
                          const std::string &CacheDir, uint64_t CacheMaxBytes,
                          WireEncoding WireFormat,
                          std::vector<std::string> &SidecarPaths) {
  if (Args.empty()) {
    std::fprintf(stderr,
                 "error: --merge-shards needs shard files or directories\n");
    return 2;
  }
  std::vector<std::string> Paths;
  if (!collectShardPaths(Args, Paths, &SidecarPaths))
    return 1;

  std::vector<ShardDoc> Docs;
  for (const std::string &Path : Paths) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    ShardDoc Doc;
    std::string Err;
    // parseShard sniffs the encoding, so one merge can fold shards
    // emitted as JSON on one machine and HGB on another.
    if (!parseShard(Text, Doc, Err)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
    Docs.push_back(std::move(Doc));
  }
  // The documents carry the producing sweep's config hash; a cache opened
  // with it shares improver entries with that sweep's own --improve runs.
  std::string DocsHash = Docs.empty() ? std::string() : Docs.front().ConfigHash;

  BatchResult Result;
  std::string Err, Warnings;
  if (!mergeShards(std::move(Docs), Result, Err, &Warnings)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Warnings.empty())
    std::fprintf(stderr, "warning: %s", Warnings.c_str());

  if (Improve) {
    std::unique_ptr<ResultCache> Cache;
    if (!CacheDir.empty()) {
      Cache = std::make_unique<ResultCache>(CacheDir, DocsHash);
      Cache->setTouchOnHit(CacheMaxBytes > 0);
      Cache->setWireEncoding(WireFormat);
    }
    runImprovePass(Result, BCfg, Cache.get());
    enforceCacheCap(Cache.get(), CacheMaxBytes, nullptr);
  }

  std::string Rendered =
      Json ? Result.renderJson() + "\n" : renderText(Result);
  int Rc = emitRendered(Rendered, OutFile);
  if (Rc == 0)
    std::fprintf(stderr,
                 "merged %llu shards (%llu runs) across %llu benchmarks\n",
                 static_cast<unsigned long long>(Result.Stats.Shards),
                 static_cast<unsigned long long>(Result.Stats.Runs),
                 static_cast<unsigned long long>(Result.Stats.Benchmarks));
  return Rc;
}

/// Writes conversion output; stdout goes through fwrite because HGB
/// documents contain NUL bytes.
static int emitConverted(const std::string &Data, const std::string &OutFile) {
  if (OutFile.empty()) {
    if (std::fwrite(Data.data(), 1, Data.size(), stdout) != Data.size()) {
      std::fprintf(stderr, "error: cannot write to stdout\n");
      return 1;
    }
    return 0;
  }
  return writeTextFile(OutFile, Data);
}

/// The `hgb2json` / `json2hgb` subcommands: rewrite one wire document in
/// the other encoding, any family. Family detection is the same rule the
/// sniffing parsers use -- the HGB header carries a family tag; a JSON
/// document carries its family in the envelope's "format" key (a bare
/// {"spots":...} object is a presentation-level report). Conversion is
/// lossless both ways: hgb2json emits the exact bytes the JSON backend
/// would have, so hgb2json(json2hgb(doc)) == doc.
static int runConvert(bool ToJson, const std::string &InFile,
                      const std::string &OutFile) {
  const char *Cmd = ToJson ? "hgb2json" : "json2hgb";
  std::string Text;
  if (!readFile(InFile, Text)) {
    std::fprintf(stderr, "error: cannot open %s\n", InFile.c_str());
    return 1;
  }
  if (wire::isBinary(Text) != ToJson) {
    std::fprintf(stderr, "error: %s: %s expects %s input\n", InFile.c_str(),
                 Cmd, ToJson ? "an HGB" : "a JSON");
    return 1;
  }

  // Determine the family without fully decoding the document.
  wire::Family Fam;
  if (ToJson) {
    int Major, Minor;
    if (!wire::sniffBinary(Text, Fam, Major, Minor)) {
      std::fprintf(stderr, "error: %s: malformed HGB header\n",
                   InFile.c_str());
      return 1;
    }
  } else {
    JsonParseResult R = parseJson(Text);
    if (!R.Ok) {
      std::fprintf(stderr, "error: %s: JSON parse error at offset %zu: %s\n",
                   InFile.c_str(), R.ErrorOffset, R.Error.c_str());
      return 1;
    }
    const JsonValue *Format = R.Value.field("format");
    std::string Tag = Format && Format->isString() ? Format->Str : "";
    if (Tag == "herbgrind-shard")
      Fam = wire::Family::Shard;
    else if (Tag == "herbgrind-improve")
      Fam = wire::Family::Improve;
    else if (Tag == "herbgrind-report")
      Fam = wire::Family::BatchReport;
    else if (Tag == "herbgrind-telemetry")
      Fam = wire::Family::Telemetry;
    else if (Tag == "herbgrind-ledger")
      Fam = wire::Family::Ledger;
    else if (Tag.empty() && R.Value.field("spots"))
      Fam = wire::Family::Report;
    else {
      std::fprintf(stderr,
                   "error: %s: not a herbgrind wire document "
                   "(unrecognized \"format\": \"%s\")\n",
                   InFile.c_str(), Tag.c_str());
      return 1;
    }
  }

  // Decode with the family's sniffing parser, re-render in the target
  // encoding. Trailing newlines mirror what the CLI itself writes: report
  // and telemetry documents end with one, cache/shard documents do not.
  std::string Out, Err;
  switch (Fam) {
  case wire::Family::Shard: {
    ShardDoc Doc;
    if (!parseShard(Text, Doc, Err))
      break;
    Out = renderShard(Doc, ToJson ? WireEncoding::Json : WireEncoding::Binary);
    break;
  }
  case wire::Family::Improve: {
    ImproveDoc Doc;
    if (!parseImproveDoc(Text, Doc, Err))
      break;
    Out = renderImproveDoc(Doc,
                           ToJson ? WireEncoding::Json : WireEncoding::Binary);
    break;
  }
  case wire::Family::Report: {
    Report R;
    if (!parseReportDoc(Text, R, Err))
      break;
    Out = ToJson ? R.renderJson() + "\n" : renderReportBinary(R);
    break;
  }
  case wire::Family::BatchReport: {
    BatchReportDoc Doc;
    if (!parseBatchReport(Text, Doc, Err))
      break;
    Out = ToJson ? renderBatchReportJson(Doc) + "\n"
                 : renderBatchReportBinary(Doc);
    break;
  }
  case wire::Family::Telemetry: {
    TelemetryDoc Doc;
    if (!parseTelemetry(Text, Doc, Err))
      break;
    Out = ToJson ? renderTelemetryJson(Doc) + "\n"
                 : renderTelemetryBinary(Doc);
    break;
  }
  case wire::Family::Ledger: {
    LedgerEntry E;
    if (!parseLedgerEntry(Text, E, Err))
      break;
    Out = ToJson ? renderLedgerEntryJson(E) + "\n" : renderLedgerEntryBinary(E);
    break;
  }
  }
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", InFile.c_str(), Err.c_str());
    return 1;
  }
  return emitConverted(Out, OutFile);
}

/// Parses the argument tail of a conversion subcommand: one input file
/// plus an optional --out.
static int convertMain(bool ToJson, int Argc, char **Argv) {
  std::string InFile, OutFile;
  for (int I = 2; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--out") == 0 && I + 1 < Argc) {
      OutFile = Argv[++I];
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else if (InFile.empty()) {
      InFile = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (InFile.empty()) {
    std::fprintf(stderr, "error: %s needs an input file\n", Argv[1]);
    return 2;
  }
  return runConvert(ToJson, InFile, OutFile);
}

/// The `telemetry-merge` subcommand: fold telemetry documents -- files in
/// either encoding, or directories scanned for telemetry sidecars -- into
/// one document. The output is byte-deterministic (no host/timestamp
/// stamp; mergeTelemetry clears provenance), so merging the same inputs
/// anywhere yields identical bytes, and a JSON-sidecar merge equals the
/// same shards' HGB-sidecar merge exactly.
static int telemetryMergeMain(int Argc, char **Argv) {
  std::vector<std::string> Args;
  std::string OutFile;
  WireEncoding Enc = WireEncoding::Json;
  for (int I = 2; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--out") == 0 && I + 1 < Argc) {
      OutFile = Argv[++I];
    } else if (std::strcmp(Arg, "--wire-format") == 0 && I + 1 < Argc) {
      const char *V = Argv[++I];
      if (std::strcmp(V, "json") == 0)
        Enc = WireEncoding::Json;
      else if (std::strcmp(V, "binary") == 0)
        Enc = WireEncoding::Binary;
      else {
        std::fprintf(stderr,
                     "error: --wire-format wants json or binary; got '%s'\n",
                     V);
        return 2;
      }
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Args.push_back(Arg);
    }
  }
  if (Args.empty()) {
    std::fprintf(stderr,
                 "error: telemetry-merge needs telemetry files or "
                 "directories\n");
    return 2;
  }
  // Expand directories to their telemetry sidecars; explicit file
  // arguments are taken as-is.
  std::vector<std::string> Paths;
  for (const std::string &Arg : Args) {
    std::error_code Ec;
    if (std::filesystem::is_directory(Arg, Ec)) {
      std::vector<std::string> Ignored, Sidecars;
      if (!collectShardPaths({Arg}, Ignored, &Sidecars))
        return 1;
      if (Sidecars.empty()) {
        std::fprintf(stderr, "error: no telemetry sidecars in %s\n",
                     Arg.c_str());
        return 1;
      }
      Paths.insert(Paths.end(), Sidecars.begin(), Sidecars.end());
    } else {
      Paths.push_back(Arg);
    }
  }
  std::vector<std::string> Texts(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I)
    if (!readFile(Paths[I], Texts[I])) {
      std::fprintf(stderr, "error: cannot open %s\n", Paths[I].c_str());
      return 1;
    }
  TelemetryDoc Merged;
  std::string Err;
  if (!mergeTelemetry(Texts, Merged, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::string Out = Enc == WireEncoding::Binary
                        ? renderTelemetryBinary(Merged)
                        : renderTelemetryJson(Merged) + "\n";
  int Rc = emitConverted(Out, OutFile);
  if (Rc == 0)
    std::fprintf(stderr, "merged %llu telemetry documents\n",
                 static_cast<unsigned long long>(Merged.Meta.MergedDocs));
  return Rc;
}

/// Renders one ledger list row.
static void printLedgerRow(size_t Index, const LedgerEntry &E) {
  std::printf("%3zu  %s  %-12s  %-8s  %4s/%-7s  %6llu shards  %8llu runs  "
              "%8.2fs  %.12s\n",
              Index, E.Timestamp.c_str(), E.Host.c_str(), E.Label.c_str(),
              E.WireFormat.c_str(), E.Tier.c_str(),
              static_cast<unsigned long long>(E.Shards),
              static_cast<unsigned long long>(E.Runs), E.WallSeconds,
              E.ConfigHash.c_str());
}

/// The `ledger` subcommand: list | show | compare over a --ledger-dir
/// directory. Entries are addressed by their chronological index as
/// printed by `ledger list`.
static int ledgerMain(int Argc, char **Argv) {
  if (Argc < 4)
    return usage(Argv[0]);
  std::string Verb = Argv[2];
  std::string Dir = Argv[3];
  LedgerThresholds Thresholds;
  std::vector<size_t> Indices;
  for (int I = 4; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextDouble = [&](double &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::atof(Argv[++I]);
      return true;
    };
    if (std::strcmp(Arg, "--wall-frac") == 0) {
      if (!NextDouble(Thresholds.WallFrac))
        return usage(Argv[0]);
    } else if (std::strcmp(Arg, "--cache-hit-drop") == 0) {
      if (!NextDouble(Thresholds.CacheHitDrop))
        return usage(Argv[0]);
    } else if (std::strcmp(Arg, "--escalation-rise") == 0) {
      if (!NextDouble(Thresholds.EscalationRise))
        return usage(Argv[0]);
    } else if (std::strcmp(Arg, "--heap-frac") == 0) {
      if (!NextDouble(Thresholds.HeapFrac))
        return usage(Argv[0]);
    } else if (std::strcmp(Arg, "--heap-slack") == 0) {
      if (I + 1 >= Argc)
        return usage(Argv[0]);
      Thresholds.HeapSlack = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::isdigit(static_cast<unsigned char>(Arg[0]))) {
      Indices.push_back(static_cast<size_t>(std::strtoull(Arg, nullptr, 10)));
    } else {
      return usage(Argv[0]);
    }
  }

  std::vector<LedgerEntry> Entries;
  std::vector<std::string> EntryPaths;
  std::string Err;
  if (!ledgerList(Dir, Entries, EntryPaths, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  if (Verb == "list") {
    for (size_t I = 0; I < Entries.size(); ++I)
      printLedgerRow(I, Entries[I]);
    std::fprintf(stderr, "%zu ledger entries in %s\n", Entries.size(),
                 Dir.c_str());
    return 0;
  }
  auto CheckIndex = [&](size_t Idx) {
    if (Idx < Entries.size())
      return true;
    std::fprintf(stderr, "error: ledger index %zu out of range (%zu entries)\n",
                 Idx, Entries.size());
    return false;
  };
  if (Verb == "show") {
    if (Indices.size() != 1) {
      std::fprintf(stderr, "error: ledger show wants exactly one index\n");
      return 2;
    }
    if (!CheckIndex(Indices[0]))
      return 1;
    std::printf("%s\n", renderLedgerEntryJson(Entries[Indices[0]]).c_str());
    return 0;
  }
  if (Verb == "compare") {
    // Default: the latest entry against its predecessor.
    if (Indices.empty() && Entries.size() >= 2)
      Indices = {Entries.size() - 2, Entries.size() - 1};
    if (Indices.size() != 2) {
      std::fprintf(stderr,
                   "error: ledger compare wants two indices (or a ledger "
                   "with at least two entries)\n");
      return 2;
    }
    if (!CheckIndex(Indices[0]) || !CheckIndex(Indices[1]))
      return 1;
    const LedgerEntry &Base = Entries[Indices[0]];
    const LedgerEntry &Cur = Entries[Indices[1]];
    if (Base.ConfigHash != Cur.ConfigHash)
      std::fprintf(stderr,
                   "warning: comparing different configurations "
                   "(%.12s vs %.12s)\n",
                   Base.ConfigHash.c_str(), Cur.ConfigHash.c_str());
    std::vector<LedgerRegression> Regressions =
        ledgerCompare(Base, Cur, Thresholds);
    std::fprintf(stderr,
                 "compare: baseline #%zu (%s, %.2fs) vs current #%zu "
                 "(%s, %.2fs)\n",
                 Indices[0], Base.Timestamp.c_str(), Base.WallSeconds,
                 Indices[1], Cur.Timestamp.c_str(), Cur.WallSeconds);
    for (const LedgerRegression &R : Regressions)
      std::fprintf(stderr,
                   "REGRESSION: %s: baseline %.6g -> current %.6g "
                   "(limit %.6g)\n",
                   R.Metric.c_str(), R.Baseline, R.Current, R.Limit);
    if (Regressions.empty()) {
      std::fprintf(stderr, "no regressions\n");
      return 0;
    }
    return 1;
  }
  std::fprintf(stderr, "error: unknown ledger verb '%s' (want list, show, "
                       "or compare)\n",
               Verb.c_str());
  return 2;
}

/// `--cache-gc`: a standalone LRU pruning pass over a cache directory.
/// The cap must be explicit: in sweep mode an absent --cache-max-bytes
/// means "unbounded", and silently turning that default into "delete
/// everything" here would be a trap.
static int runCacheGc(const std::string &CacheDir, uint64_t MaxBytes,
                      bool MaxBytesSet) {
  if (CacheDir.empty()) {
    std::fprintf(stderr, "error: --cache-gc needs --cache-dir\n");
    return 2;
  }
  if (!MaxBytesSet) {
    std::fprintf(stderr,
                 "error: --cache-gc needs an explicit --cache-max-bytes "
                 "(0 empties the cache)\n");
    return 2;
  }
  CacheGcStats Stats;
  std::string Err;
  if (!gcCacheDir(CacheDir, MaxBytes, Stats, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "cache %s: %llu entries (%llu bytes); pruned %llu entries "
               "(%llu bytes) to fit %llu bytes\n",
               CacheDir.c_str(),
               static_cast<unsigned long long>(Stats.Entries),
               static_cast<unsigned long long>(Stats.Bytes),
               static_cast<unsigned long long>(Stats.PrunedEntries),
               static_cast<unsigned long long>(Stats.PrunedBytes),
               static_cast<unsigned long long>(MaxBytes));
  return 0;
}

int main(int Argc, char **Argv) {
  // Conversion subcommands dispatch on the first argument so their
  // argument tails never collide with sweep options.
  if (Argc > 1 && std::strcmp(Argv[1], "hgb2json") == 0)
    return convertMain(/*ToJson=*/true, Argc, Argv);
  if (Argc > 1 && std::strcmp(Argv[1], "json2hgb") == 0)
    return convertMain(/*ToJson=*/false, Argc, Argv);
  if (Argc > 1 && std::strcmp(Argv[1], "telemetry-merge") == 0)
    return telemetryMergeMain(Argc, Argv);
  if (Argc > 1 && std::strcmp(Argv[1], "ledger") == 0)
    return ledgerMain(Argc, Argv);

  EngineConfig Cfg;
  bool Json = false, SelfTest = false, MergeShards = false, CacheGc = false;
  bool CacheMaxSet = false, Improve = false, Native = false;
  bool ProfileOps = false, Progress = false;
  double ProgressEvery = 1.0;
  uint32_t ProfilePeriod = 1;
  improve::BatchImproveConfig BCfg;
  std::string OutFile, MetricsOut, TraceOut, EventsOut, LedgerDir;
  std::vector<Core> Cores;
  std::vector<std::string> MergeArgs;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (std::strcmp(Arg, "--list") == 0) {
      for (const Core &C : corpus())
        std::printf("%s\n", C.Name.c_str());
      return 0;
    } else if (std::strcmp(Arg, "--jobs") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      int Jobs = std::atoi(V);
      if (Jobs < 0) {
        std::fprintf(stderr, "error: --jobs must be >= 0 (0 = auto)\n");
        return 2;
      }
      Cfg.Jobs = static_cast<unsigned>(Jobs);
    } else if (std::strcmp(Arg, "--samples") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.SamplesPerBenchmark = std::atoi(V);
    } else if (std::strcmp(Arg, "--shard") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.ShardSize = std::atoi(V);
    } else if (std::strcmp(Arg, "--batch") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      int Lanes = std::atoi(V);
      if (Lanes < 1) {
        std::fprintf(stderr, "error: --batch must be >= 1\n");
        return 2;
      }
      Cfg.BatchLanes = static_cast<unsigned>(Lanes);
    } else if (std::strcmp(Arg, "--seed") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.Seed = std::strtoull(V, nullptr, 0);
    } else if (std::strcmp(Arg, "--tier") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      if (std::strcmp(V, "full") == 0)
        Cfg.Tier = TierMode::Full;
      else if (std::strcmp(V, "confirm") == 0)
        Cfg.Tier = TierMode::Confirm;
      else if (std::strcmp(V, "fast") == 0)
        Cfg.Tier = TierMode::Fast;
      else {
        std::fprintf(stderr,
                     "error: --tier wants full, confirm, or fast; got '%s'\n",
                     V);
        return 2;
      }
    } else if (std::strcmp(Arg, "--cache-dir") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.CacheDir = V;
    } else if (std::strcmp(Arg, "--cache-max-bytes") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      char *End = nullptr;
      errno = 0;
      Cfg.CacheMaxBytes = std::strtoull(V, &End, 10);
      // A partially-consumed value ("1G", "abc") must not silently become
      // a tiny cap that the GC then prunes everything to, a negative one
      // must not wrap to an effectively unbounded cap, base 10 keeps
      // "010" meaning ten (not octal eight), and an out-of-range value
      // must not saturate to an unbounded cap.
      if (*V == 0 || !std::isdigit(static_cast<unsigned char>(*V)) ||
          End == nullptr || *End != 0 || errno == ERANGE) {
        std::fprintf(stderr,
                     "error: --cache-max-bytes wants a plain byte count, "
                     "got '%s'\n",
                     V);
        return 2;
      }
      CacheMaxSet = true;
    } else if (std::strcmp(Arg, "--cache-gc") == 0) {
      CacheGc = true;
    } else if (std::strcmp(Arg, "--emit-shard") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      Cfg.EmitShardDir = V;
    } else if (std::strcmp(Arg, "--shard-range") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      unsigned long long Lo = 0, Hi = 0;
      if (std::sscanf(V, "%llu:%llu", &Lo, &Hi) != 2 || Hi < Lo) {
        std::fprintf(stderr,
                     "error: --shard-range wants LO:HI with LO <= HI\n");
        return 2;
      }
      Cfg.ShardBegin = static_cast<size_t>(Lo);
      Cfg.ShardEnd = static_cast<size_t>(Hi);
    } else if (std::strcmp(Arg, "--wire-format") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      if (std::strcmp(V, "json") == 0)
        Cfg.WireFormat = WireEncoding::Json;
      else if (std::strcmp(V, "binary") == 0)
        Cfg.WireFormat = WireEncoding::Binary;
      else {
        std::fprintf(stderr,
                     "error: --wire-format wants json or binary; got '%s'\n",
                     V);
        return 2;
      }
    } else if (std::strcmp(Arg, "--merge-shards") == 0) {
      MergeShards = true;
    } else if (std::strcmp(Arg, "--improve") == 0) {
      Improve = true;
    } else if (std::strcmp(Arg, "--improve-samples") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      BCfg.Improve.SampleCount = std::atoi(V);
      if (BCfg.Improve.SampleCount < 1) {
        std::fprintf(stderr, "error: --improve-samples must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(Arg, "--name") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      bool Found = false;
      for (const Core &C : corpus())
        if (C.Name == V) {
          Cores.push_back(C.clone());
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: no corpus benchmark named '%s' "
                             "(try --list)\n",
                     V);
        return 1;
      }
    } else if (std::strcmp(Arg, "--native") == 0) {
      Native = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Arg, "--selftest") == 0) {
      SelfTest = true;
    } else if (std::strcmp(Arg, "--out") == 0 ||
               std::strcmp(Arg, "--report-out") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      OutFile = V;
    } else if (std::strcmp(Arg, "--metrics-out") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      MetricsOut = V;
    } else if (std::strcmp(Arg, "--trace-out") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      TraceOut = V;
    } else if (std::strcmp(Arg, "--profile-ops") == 0) {
      ProfileOps = true;
    } else if (std::strcmp(Arg, "--profile-period") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      int P = std::atoi(V);
      if (P < 1) {
        std::fprintf(stderr, "error: --profile-period must be >= 1\n");
        return 2;
      }
      ProfilePeriod = static_cast<uint32_t>(P);
    } else if (std::strcmp(Arg, "--progress") == 0) {
      Progress = true;
    } else if (std::strcmp(Arg, "--progress-every") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      ProgressEvery = std::atof(V);
      if (!(ProgressEvery > 0.0)) {
        std::fprintf(stderr, "error: --progress-every must be > 0 seconds\n");
        return 2;
      }
      Progress = true;
    } else if (std::strcmp(Arg, "--events-out") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      EventsOut = V;
    } else if (std::strcmp(Arg, "--ledger-dir") == 0) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      LedgerDir = V;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else if (MergeShards) {
      MergeArgs.push_back(Arg);
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Arg);
        return 1;
      }
      std::stringstream Buf;
      Buf << In.rdbuf();
      ParseResult R = parse(Buf.str());
      if (!R.Ok) {
        std::fprintf(stderr, "error: %s: parse failed: %s\n", Arg,
                     R.Error.c_str());
        return 1;
      }
      std::string WhyNot;
      if (!isCompilable(R.Value, &WhyNot)) {
        std::fprintf(stderr, "error: %s: %s\n", Arg, WhyNot.c_str());
        return 1;
      }
      Cores.push_back(std::move(R.Value));
    }
  }

  BCfg.Jobs = Cfg.Jobs;

  if (CacheGc)
    return runCacheGc(Cfg.CacheDir, Cfg.CacheMaxBytes, CacheMaxSet);

  // Arm telemetry before any work runs. All of it observes from the side:
  // the report stream is byte-identical with every flag on or off.
  if (!TraceOut.empty())
    trace::start();
  if (ProfileOps)
    opprof::enable(ProfilePeriod);
  if (!EventsOut.empty()) {
    std::string Err;
    if (!events::start(EventsOut, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }
  // Close the event stream on every exit path, so the last line a
  // consumer sees is a complete one.
  struct EventsCloser {
    ~EventsCloser() { events::stop(); }
  } CloseEvents;
  ProgressHeartbeat Heartbeat;
  Heartbeat.setInterval(ProgressEvery);
  if (Progress)
    Heartbeat.start();

  if (MergeShards) {
    std::vector<std::string> Sidecars;
    int Rc = runMergeShards(MergeArgs, Json, OutFile, Improve, BCfg,
                            Cfg.CacheDir, Cfg.CacheMaxBytes, Cfg.WireFormat,
                            Sidecars);
    // Merged shard documents carry no profiler fields (nothing executed
    // here), so the telemetry covers the merge/improve work itself --
    // plus any telemetry sidecars found next to the shards, folded in so
    // --metrics-out reproduces the emitting sweeps' totals.
    int TRc = emitTelemetry(MetricsOut, TraceOut, ProfileOps, nullptr,
                            &Sidecars);
    return Rc != 0 ? Rc : TRc;
  }

  // --native adds the demo kernels; with no other selection it sweeps
  // only those. Otherwise an empty selection means the whole corpus.
  std::vector<herbgrind::native::Kernel> Kernels;
  if (Native)
    Kernels = herbgrind::native::demoKernels();
  if (Cores.empty() && !Native)
    Cores = compilableCorpus();

  Engine Eng(Cfg);

  if (SelfTest) {
    // The headline determinism property: a multi-worker run must be
    // byte-identical to a single-worker run of the same configuration
    // (and, when a cache directory is shared, to a warm-cache rerun).
    BatchResult Multi = Eng.run(Cores, Kernels);
    EngineConfig OneCfg = Eng.config();
    OneCfg.Jobs = 1;
    Engine One(OneCfg);
    BatchResult Single = One.run(Cores, Kernels);
    // Batching is part of the same contract: the lane count must never
    // change report bytes. The extra leg flips --batch (scalar when the
    // main legs ran batched, 8 lanes otherwise) and bypasses the cache
    // so it genuinely re-executes rather than reading back stored shards.
    EngineConfig BatchCfg = OneCfg;
    BatchCfg.BatchLanes = Cfg.BatchLanes > 1 ? 1 : 8;
    BatchCfg.CacheDir.clear();
    Engine Batched(BatchCfg);
    if (Batched.run(Cores, Kernels).renderJson() != Single.renderJson()) {
      std::fprintf(stderr,
                   "FAIL: --batch %u report differs from --batch %u report\n",
                   BatchCfg.BatchLanes, Eng.config().BatchLanes);
      return 1;
    }
    if (Improve) {
      // The improver is part of the determinism contract too: its
      // outcomes must not depend on the worker count either. The
      // single-worker leg deliberately bypasses the cache -- otherwise
      // it would read back the entries the multi-worker leg just
      // stored and compare the cache with itself.
      runImprovePass(Multi, BCfg, Eng.resultCache());
      enforceCacheCap(Eng.resultCache(), Cfg.CacheMaxBytes, nullptr);
      improve::BatchImproveConfig OneBCfg = BCfg;
      OneBCfg.Jobs = 1;
      runImprovePass(Single, OneBCfg, nullptr);
    }
    if (Multi.renderJson() != Single.renderJson()) {
      std::fprintf(stderr,
                   "FAIL: --jobs %u report differs from --jobs 1 report\n",
                   Eng.config().Jobs);
      return 1;
    }
    std::fprintf(stderr,
                 "OK: %llu benchmarks, %llu shards, %llu runs; --jobs %u "
                 "output identical to --jobs 1, batched output identical "
                 "to scalar (%llu analyzed, %llu from "
                 "cache)\n",
                 static_cast<unsigned long long>(Multi.Stats.Benchmarks),
                 static_cast<unsigned long long>(Multi.Stats.Shards),
                 static_cast<unsigned long long>(Multi.Stats.Runs),
                 Eng.config().Jobs,
                 static_cast<unsigned long long>(Multi.Stats.AnalyzedShards),
                 static_cast<unsigned long long>(Multi.Stats.CachedShards));
    return emitTelemetry(MetricsOut, TraceOut, ProfileOps, &Multi);
  }

  BatchResult Result = Eng.run(Cores, Kernels);
  if (Improve) {
    runImprovePass(Result, BCfg, Eng.resultCache());
    enforceCacheCap(Eng.resultCache(), Cfg.CacheMaxBytes, &Result.Stats);
  }
  if (!Result.Stats.CacheGcError.empty())
    std::fprintf(stderr, "warning: cache GC failed (cap not enforced): %s\n",
                 Result.Stats.CacheGcError.c_str());
  if (Result.Stats.EmitFailures > 0) {
    std::fprintf(stderr,
                 "error: failed to write %llu shard document(s) to %s; "
                 "the emitted set is incomplete\n",
                 static_cast<unsigned long long>(Result.Stats.EmitFailures),
                 Cfg.EmitShardDir.c_str());
    return 1;
  }
  // The work is done: join the heartbeat now so its final line lands
  // before the summary statistics.
  Heartbeat.stop();
  if (writeTelemetrySidecar(Cfg, Result) != 0)
    return 1;
  if (!LedgerDir.empty()) {
    LedgerEntry Entry = makeLedgerEntry(Eng.config(), Result.Stats, "sweep");
    std::string LedgerPath, LedgerErr;
    if (!ledgerAppend(LedgerDir, Entry, Cfg.WireFormat, LedgerPath,
                      LedgerErr)) {
      std::fprintf(stderr, "error: %s\n", LedgerErr.c_str());
      return 1;
    }
    std::fprintf(stderr, "ledger: appended %s\n", LedgerPath.c_str());
  }

  std::string Rendered =
      Json ? Result.renderJson() + "\n" : renderText(Result);
  int Rc = emitRendered(Rendered, OutFile);
  if (Rc != 0)
    return Rc;

  std::fprintf(stderr,
               "analyzed %llu benchmarks (%llu shards: %llu analyzed, %llu "
               "cached; %llu runs) with --jobs %u in %.2fs; program cache: "
               "%llu hits, %llu misses\n",
               static_cast<unsigned long long>(Result.Stats.Benchmarks),
               static_cast<unsigned long long>(Result.Stats.Shards),
               static_cast<unsigned long long>(Result.Stats.AnalyzedShards),
               static_cast<unsigned long long>(Result.Stats.CachedShards),
               static_cast<unsigned long long>(Result.Stats.Runs),
               Eng.config().Jobs, Result.Stats.WallSeconds,
               static_cast<unsigned long long>(Result.Stats.CacheHits),
               static_cast<unsigned long long>(Result.Stats.CacheMisses));
  std::fprintf(
      stderr,
      "limb alloc: %llu heap, %llu cached; result cache: %llu hits, %llu "
      "misses, %llu store failures; pool: %llu tasks, %llu steals, max "
      "queue %llu\n",
      static_cast<unsigned long long>(Result.Stats.LimbHeapAllocs),
      static_cast<unsigned long long>(Result.Stats.LimbCacheHits),
      static_cast<unsigned long long>(Result.Stats.ResultCacheHits),
      static_cast<unsigned long long>(Result.Stats.ResultCacheMisses),
      static_cast<unsigned long long>(Result.Stats.ResultCacheStoreFailures),
      static_cast<unsigned long long>(Result.Stats.PoolTasks),
      static_cast<unsigned long long>(Result.Stats.PoolSteals),
      static_cast<unsigned long long>(Result.Stats.PoolMaxQueueDepth));
  if (Cfg.Tier != TierMode::Full)
    std::fprintf(
        stderr,
        "tier: %s; %llu tier-0 runs (%llu ops), %llu escalated runs, "
        "%llu/%llu benchmarks confirmed\n",
        Cfg.Tier == TierMode::Confirm ? "confirm" : "fast",
        static_cast<unsigned long long>(Result.Stats.Tier0Runs),
        static_cast<unsigned long long>(Result.Stats.Tier0Ops),
        static_cast<unsigned long long>(Result.Stats.EscalatedRuns),
        static_cast<unsigned long long>(Result.Stats.ConfirmedBenchmarks),
        static_cast<unsigned long long>(Result.Stats.Benchmarks));
  return emitTelemetry(MetricsOut, TraceOut, ProfileOps, &Result);
}
