//===- examples/accsum.cpp - Tiered shadowing on accurate summation -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The classic accurate-summation pair under the tiered shadow: a naive
// running sum absorbs a thousand unit-sized addends into a 1e16-sized
// base and silently drops them (hundreds of ulps of output error), while
// Kahan's compensated loop recovers every dropped residual and stays
// within an ulp or two. Both are plain C++ on the drop-in native::Real.
//
// The point of running them here is what tier 0 does with each: the
// cheap per-value error bound is enough to *clear* the Kahan kernel
// without ever touching the 256-bit shadow, while the naive kernel trips
// the output predicate and escalates to the full analysis, which then
// pins the blame on the += line. test_accsum.cpp asserts exactly this
// split through the batch engine's confirm and fast tiers.
//
//===----------------------------------------------------------------------===//

#include "herbgrind/Herbgrind.h"

#include <cstdio>

using namespace herbgrind;
using native::Real;

namespace {

const int Addends = 1000;

/// sum = base; for each addend: sum += x. At base ~1e16 each x ~1 is
/// below half an ulp, so every += rounds back to where it started.
void kernelNaiveSum(native::Context &C, const double *, size_t) {
  Real Sum = C.input(0);
  Real X = C.input(1);
  for (int I = 0; I < Addends; ++I) {
    HG_LOC(C);
    Sum += X;
  }
  HG_LOC(C);
  C.output(Sum);
}

/// Kahan: the two-step dance keeps the dropped low-order part of every
/// addition in a compensation term and feeds it back into the next one.
void kernelKahanSum(native::Context &C, const double *, size_t) {
  Real Sum = C.input(0);
  Real X = C.input(1);
  Real Comp = 0.0;
  for (int I = 0; I < Addends; ++I) {
    HG_LOC(C);
    Real Y = X - Comp;
    Real T = Sum + Y;
    Comp = (T - Sum) - Y;
    Sum = T;
  }
  HG_LOC(C);
  C.output(Sum);
}

native::Kernel makeKernel(const char *Name, const char *Tag,
                          void (*Fn)(native::Context &, const double *,
                                     size_t)) {
  native::Kernel K;
  K.Name = Name;
  K.Identity = std::string("accsum|v1|") + Tag;
  K.Inputs.push_back({1e15, 1e16}); // the big base
  K.Inputs.push_back({0.5, 1.5});   // the small addend
  K.Fn = Fn;
  return K;
}

} // namespace

int main() {
  native::Kernel Naive = makeKernel("naive summation", "naive",
                                    kernelNaiveSum);
  native::Kernel Kahan = makeKernel("Kahan summation", "kahan",
                                    kernelKahanSum);
  const std::vector<double> In = {1e16, 1.0};

  // Tier 0: the cheap predicate pass on native doubles. One verdict per
  // kernel -- suspect (must escalate) or cleared (provably cannot have
  // crossed any reporting threshold).
  AnalysisConfig PredCfg;
  PredCfg.PredicateOnly = true;
  std::printf("--- tier-0 predicate pass ---\n");
  for (const native::Kernel *K : {&Naive, &Kahan}) {
    native::Context C(PredCfg);
    C.run(*K, In);
    std::printf("%-16s tier-0 verdict: %s\n", K->Name.c_str(),
                C.lastRunSuspect() ? "suspect -> escalate to BigFloat"
                                   : "cleared -> full shadow skipped");
  }

  // The full 256-bit shadow, i.e. what escalation buys the suspect
  // kernel: a report naming the += accumulation as the root cause.
  std::printf("\n--- full shadow on the escalated kernel ---\n");
  native::Context Full((AnalysisConfig()));
  Full.run(Naive, In);
  Full.run(Kahan, In);
  std::printf("%s", buildReport(Full).render().c_str());

  std::printf(
      "Only the naive loop escalates: its output is hundreds of ulps from\n"
      "the real sum, which the tier-0 bound cannot rule out. Kahan's\n"
      "compensated loop -- despite individual subtractions with enormous\n"
      "local error -- keeps the running bound tight enough that tier 0\n"
      "clears it without a single BigFloat operation.\n");
  return 0;
}
