//===- examples/herbgrind_cli.cpp - End-to-end command-line driver --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The full pipeline as a command-line tool: read an FPCore program (from a
// file, or a named corpus benchmark), sample inputs from its :pre ranges,
// run the Herbgrind analysis, print the paper-style report, and feed the
// top root cause to the mini-Herbie improver for a suggested rewrite.
//
// Usage:
//   herbgrind_cli <file.fpcore> [samples]
//   herbgrind_cli --name "NMSE example 3.1" [samples]
//   herbgrind_cli --list
//
//===----------------------------------------------------------------------===//

#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "improve/Improve.h"
#include "support/Rng.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace herbgrind;
using namespace herbgrind::fpcore;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <file.fpcore> [samples]\n"
               "       %s --name <corpus benchmark name> [samples]\n"
               "       %s --list\n",
               Prog, Prog, Prog);
  return 2;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  if (std::strcmp(Argv[1], "--list") == 0) {
    for (const Core &C : corpus())
      std::printf("%s\n", C.Name.c_str());
    return 0;
  }

  Core Target;
  int SampleArg = 2;
  if (std::strcmp(Argv[1], "--name") == 0) {
    if (Argc < 3)
      return usage(Argv[0]);
    bool Found = false;
    for (const Core &C : corpus())
      if (C.Name == Argv[2]) {
        Target = C.clone();
        Found = true;
      }
    if (!Found) {
      std::fprintf(stderr, "error: no corpus benchmark named '%s' "
                           "(try --list)\n",
                   Argv[2]);
      return 1;
    }
    SampleArg = 3;
  } else {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    ParseResult R = parse(Buf.str());
    if (!R.Ok) {
      std::fprintf(stderr, "error: parse failed: %s\n", R.Error.c_str());
      return 1;
    }
    Target = std::move(R.Value);
  }
  int Samples = Argc > SampleArg ? std::atoi(Argv[SampleArg]) : 64;

  std::string WhyNot;
  if (!isCompilable(Target, &WhyNot)) {
    std::fprintf(stderr, "error: %s\n", WhyNot.c_str());
    return 1;
  }

  std::printf("Analyzing %s on %d sampled inputs...\n\n",
              Target.Name.empty() ? "<anonymous>" : Target.Name.c_str(),
              Samples);
  Program P = compile(Target);
  Herbgrind HG(P);
  Rng R(0xcafe);
  std::vector<VarRange> Ranges = sampleRanges(Target);
  for (int I = 0; I < Samples; ++I) {
    std::vector<double> Inputs;
    for (const VarRange &VR : Ranges)
      Inputs.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    HG.runOnInput(Inputs);
  }

  Report Rep = buildReport(HG);
  std::printf("%s", Rep.render().c_str());
  if (Rep.Spots.empty())
    return 0;

  // Feed the top root cause to the improver.
  std::vector<RootCauseReport> Causes = Rep.allRootCauses();
  if (Causes.empty())
    return 0;
  const OpRecord &Rec = HG.opRecords().at(Causes[0].PC);
  fpcore::ExprPtr Frag = improve::fromSymExpr(*Rec.Expr);
  uint32_t NumVars = Rec.Expr->numVars();
  std::vector<std::string> Params;
  for (uint32_t V = 0; V < NumVars; ++V)
    Params.push_back(SymExpr::varName(V));
  // Sample from the problematic-input characteristics when Herbgrind
  // recorded any (Section 4.4): that is what focuses the improver on the
  // regime that actually misbehaves.
  const InputCharacteristics &Chars = Rec.ProblematicInputs.Vars.empty()
                                          ? Rec.TotalInputs
                                          : Rec.ProblematicInputs;
  improve::ImproveResult Fix = improve::improveExpr(
      *Frag, Params,
      improve::specsFromCharacteristics(Chars, NumVars,
                                        HG.config().Ranges));
  std::printf("--- improver suggestion for the top root cause ---\n");
  std::printf("original:  %s   (%.1f bits mean error)\n",
              Frag->print().c_str(), Fix.ErrorBefore);
  if (Fix.Improved)
    std::printf("rewritten: %s   (%.1f bits mean error)\n",
                Fix.Best->print().c_str(), Fix.ErrorAfter);
  else
    std::printf("no accuracy-improving rewrite found in the database\n");
  return 0;
}
