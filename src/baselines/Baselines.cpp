//===- baselines/Baselines.cpp - FpDebug / Verrou / BZ baselines ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "analysis/RealOps.h"
#include "support/FloatBits.h"
#include "support/Rng.h"

#include <cmath>
#include <unordered_map>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// FpDebug mode
//===----------------------------------------------------------------------===//

std::vector<uint32_t>
FpDebugResult::erroneousOps(double ThresholdBits) const {
  std::vector<uint32_t> Out;
  for (const auto &[PC, Rep] : Ops)
    if (Rep.ErrorBits.max() > ThresholdBits)
      Out.push_back(PC);
  return Out;
}

FpDebugResult herbgrind::runFpDebug(
    const Program &P, const std::vector<std::vector<double>> &InputSets,
    size_t PrecBits) {
  FpDebugResult Result;
  for (const std::vector<double> &Inputs : InputSets) {
    MachineState State(P, Inputs);
    // Shadow reals per temp / thread-state offset / memory address. Unlike
    // Herbgrind there is no overlap handling, no laziness discipline, no
    // traces: this mirrors FpDebug's per-VEX-block shadow model.
    std::vector<BigFloat> TempShadow(P.numTemps());
    std::vector<bool> TempHas(P.numTemps(), false);
    std::unordered_map<int64_t, BigFloat> TSShadow;
    std::unordered_map<uint64_t, BigFloat> MemShadow;

    auto ShadowOf = [&](uint32_t Temp, const Value &Concrete) -> BigFloat {
      if (TempHas[Temp])
        return TempShadow[Temp];
      if (Concrete.Ty == ValueType::F32)
        return BigFloat::fromFloat(Concrete.F32, PrecBits);
      return BigFloat::fromDouble(Concrete.F64, PrecBits);
    };

    bool Running = true;
    while (Running) {
      uint32_t PC = State.PC;
      const Statement &S = P.stmt(PC);
      Value Args[3];
      for (unsigned I = 0; I < S.NumArgs; ++I)
        Args[I] = State.Temps[S.Args[I]];
      Running = stepConcrete(P, State);

      switch (S.Kind) {
      case StmtKind::Op: {
        const OpInfo &Info = opInfo(S.Op);
        if (!Info.IsFloatOp || Info.IsSIMD ||
            Info.ResultTy == ValueType::V2F64) {
          if (S.hasDst())
            TempHas[S.Dst] = false;
          break;
        }
        if (S.Op == Opcode::I64toF64 || S.Op == Opcode::I64BitsToF64) {
          TempHas[S.Dst] = false;
          break;
        }
        BigFloat Reals[3];
        for (unsigned I = 0; I < S.NumArgs; ++I)
          Reals[I] = ShadowOf(S.Args[I], Args[I]);
        BigFloat RealResult = evalRealOp(S.Op, Reals, S.NumArgs);
        const Value &Concrete = State.Temps[S.Dst];
        double Err = Concrete.Ty == ValueType::F32
                         ? bitsOfErrorFloat(Concrete.F32,
                                            RealResult.toFloat())
                         : bitsOfErrorDouble(Concrete.F64,
                                             RealResult.toDouble());
        FpDebugOpReport &Rep = Result.Ops[PC];
        if (Rep.ErrorBits.count() == 0) {
          Rep.Op = S.Op;
          Rep.Loc = S.Loc;
        }
        Rep.ErrorBits.add(Err);
        TempShadow[S.Dst] = std::move(RealResult);
        TempHas[S.Dst] = true;
        break;
      }
      case StmtKind::Copy:
        TempShadow[S.Dst] = TempShadow[S.Args[0]];
        TempHas[S.Dst] = TempHas[S.Args[0]];
        break;
      case StmtKind::Const:
      case StmtKind::Input:
        TempHas[S.Dst] = false;
        break;
      case StmtKind::Put:
        if (TempHas[S.Args[0]])
          TSShadow[S.Disp] = TempShadow[S.Args[0]];
        else
          TSShadow.erase(S.Disp);
        break;
      case StmtKind::Get: {
        auto It = TSShadow.find(S.Disp);
        TempHas[S.Dst] = It != TSShadow.end();
        if (It != TSShadow.end())
          TempShadow[S.Dst] = It->second;
        break;
      }
      case StmtKind::Store: {
        uint64_t Addr = static_cast<uint64_t>(Args[0].asI64()) +
                        static_cast<uint64_t>(S.Disp);
        if (TempHas[S.Args[1]])
          MemShadow[Addr] = TempShadow[S.Args[1]];
        else
          MemShadow.erase(Addr);
        break;
      }
      case StmtKind::Load: {
        uint64_t Addr = static_cast<uint64_t>(Args[0].asI64()) +
                        static_cast<uint64_t>(S.Disp);
        auto It = MemShadow.find(Addr);
        TempHas[S.Dst] = It != MemShadow.end();
        if (It != MemShadow.end())
          TempShadow[S.Dst] = It->second;
        break;
      }
      default:
        break;
      }
    }
    Result.Steps += State.Steps;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Verrou mode
//===----------------------------------------------------------------------===//

VerrouResult herbgrind::runVerrou(const Program &P,
                                  const std::vector<double> &Inputs,
                                  int Trials, uint64_t Seed) {
  VerrouResult Result;
  std::vector<std::vector<double>> OutputsPerTrial;
  for (int T = 0; T < Trials; ++T) {
    Rng R(Seed + static_cast<uint64_t>(T) * 0x9e3779b9);
    MachineState State(P, Inputs);
    bool Running = true;
    while (Running) {
      const Statement &S = P.stmt(State.PC);
      Running = stepConcrete(P, State);
      // Random rounding: perturb every scalar float op result by one ulp
      // in a random direction half the time (trial 0 runs unperturbed as
      // the nearest-rounding reference, like Verrou's "random" mode).
      if (T > 0 && S.Kind == StmtKind::Op && opInfo(S.Op).IsFloatOp) {
        Value &Dst = State.Temps[S.Dst];
        if (Dst.Ty == ValueType::F64 && std::isfinite(Dst.F64)) {
          if (R.chance(1, 2))
            Dst.F64 = R.chance(1, 2) ? nextDouble(Dst.F64)
                                     : prevDouble(Dst.F64);
        } else if (Dst.Ty == ValueType::V2F64) {
          for (double &Lane : Dst.V2F64)
            if (std::isfinite(Lane) && R.chance(1, 2))
              Lane = R.chance(1, 2) ? nextDouble(Lane) : prevDouble(Lane);
        }
      }
    }
    Result.Steps += State.Steps;
    std::vector<double> Outs;
    for (const Value &V : State.Outputs)
      Outs.push_back(V.Ty == ValueType::F32 ? V.F32 : V.F64);
    OutputsPerTrial.push_back(std::move(Outs));
  }

  if (OutputsPerTrial.empty())
    return Result;
  size_t NumOutputs = OutputsPerTrial[0].size();
  for (size_t O = 0; O < NumOutputs; ++O) {
    VerrouOutputStat St;
    double Sum = 0.0;
    bool First = true;
    for (const std::vector<double> &Trial : OutputsPerTrial) {
      double V = Trial[O];
      if (std::isnan(V)) {
        St.SawNaN = true;
        continue;
      }
      if (First) {
        St.Min = St.Max = V;
        First = false;
      } else {
        St.Min = std::min(St.Min, V);
        St.Max = std::max(St.Max, V);
      }
      Sum += V;
    }
    St.Mean = Sum / static_cast<double>(OutputsPerTrial.size());
    if (St.SawNaN) {
      St.StableBits = 0.0;
    } else {
      double Spread = ulpsBetweenDoubles(St.Min, St.Max);
      St.StableBits = std::max(0.0, 53.0 - std::log2(Spread + 1.0));
    }
    Result.Outputs.push_back(St);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// BZ mode
//===----------------------------------------------------------------------===//

/// Unbiased exponent of a double (0 for zeros/subnormals' purposes).
static int expOf(double X) {
  int E = 0;
  if (X != 0.0 && std::isfinite(X))
    std::frexp(X, &E);
  return E;
}

BZResult herbgrind::runBZ(const Program &P,
                          const std::vector<std::vector<double>> &InputSets,
                          int CancelBitsThreshold) {
  BZResult Result;
  for (const std::vector<double> &Inputs : InputSets) {
    MachineState State(P, Inputs);
    // One taint bit per temp: "some suspicious cancellation happened
    // upstream". No shadows, no magnitudes -- the whole point is the low
    // overhead and the resulting false positives.
    std::vector<bool> Tainted(P.numTemps(), false);
    bool Running = true;
    while (Running) {
      uint32_t PC = State.PC;
      const Statement &S = P.stmt(PC);
      Value Args[3];
      for (unsigned I = 0; I < S.NumArgs; ++I)
        Args[I] = State.Temps[S.Args[I]];
      Running = stepConcrete(P, State);

      if (S.Kind == StmtKind::Copy) {
        Tainted[S.Dst] = Tainted[S.Args[0]];
        continue;
      }
      if (S.Kind != StmtKind::Op)
        continue;
      const OpInfo &Info = opInfo(S.Op);
      if (Info.IsComparison) {
        // Discrete factor heuristic: a comparison is unstable if its
        // operands are relatively close or either is tainted.
        if (Args[0].Ty == ValueType::F64) {
          double A = Args[0].F64;
          double B = Args[1].F64;
          bool Close = std::isfinite(A) && std::isfinite(B) &&
                       ulpsBetweenDoubles(A, B) < (1ULL << 12);
          if (Close || Tainted[S.Args[0]] || Tainted[S.Args[1]])
            ++Result.DiscreteFactorEvents;
        }
        continue;
      }
      if (!Info.IsFloatOp || !S.hasDst())
        continue;
      bool Taint = false;
      for (unsigned I = 0; I < S.NumArgs; ++I)
        Taint |= Tainted[S.Args[I]];
      bool IsAddSub = S.Op == Opcode::AddF64 || S.Op == Opcode::SubF64;
      if (IsAddSub && State.Temps[S.Dst].Ty == ValueType::F64) {
        int EA = expOf(Args[0].F64);
        int EB = expOf(Args[1].F64);
        int ER = expOf(State.Temps[S.Dst].F64);
        if (std::max(EA, EB) - ER > CancelBitsThreshold) {
          Result.SuspectOps.insert(PC);
          ++Result.SuspectEvents;
          Taint = true;
        }
      }
      Tainted[S.Dst] = Taint;
    }
    Result.Steps += State.Steps;
  }
  return Result;
}
