//===- baselines/Baselines.h - FpDebug / Verrou / BZ baselines --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementations of the three comparison tools of Table 1, built on
/// the same abstract-machine substrate so the feature and overhead
/// comparison is apples-to-apples:
///
///  * FpDebug mode: MPFR-style shadow reals for every value, per-opcode
///    error statistics, reports *opcode addresses* -- no influence
///    tracking, no symbolic expressions, no input characteristics.
///  * Verrou mode: no shadows at all; random-rounding (Monte-Carlo
///    arithmetic) perturbation of every float op, repeated across trials;
///    reports how many result bits stay stable.
///  * BZ (Bao & Zhang) mode: cheap bit-pattern heuristics -- flags
///    suspicious cancellations (result exponent far below operand
///    exponents) and "discrete factor" sites (comparisons and float->int
///    conversions) that a suspect value reaches. High false-positive rate
///    by design; the Table 1 bench quantifies it against Herbgrind's
///    ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_BASELINES_BASELINES_H
#define HERBGRIND_BASELINES_BASELINES_H

#include "ir/Interpreter.h"
#include "real/BigFloat.h"
#include "support/RunningStat.h"

#include <map>
#include <set>

namespace herbgrind {

//===----------------------------------------------------------------------===//
// FpDebug mode
//===----------------------------------------------------------------------===//

struct FpDebugOpReport {
  Opcode Op = Opcode::AddF64;
  SourceLoc Loc;
  RunningStat ErrorBits; ///< Error of each produced value vs its shadow.
};

struct FpDebugResult {
  /// Keyed by opcode address (pc): the only localization FpDebug offers.
  std::map<uint32_t, FpDebugOpReport> Ops;
  uint64_t Steps = 0;

  /// PCs whose max observed value error exceeds the threshold.
  std::vector<uint32_t> erroneousOps(double ThresholdBits) const;
};

FpDebugResult runFpDebug(const Program &P,
                         const std::vector<std::vector<double>> &InputSets,
                         size_t PrecBits = 128);

//===----------------------------------------------------------------------===//
// Verrou mode
//===----------------------------------------------------------------------===//

struct VerrouOutputStat {
  double Min = 0.0, Max = 0.0, Mean = 0.0;
  bool SawNaN = false;
  /// Result bits unaffected by rounding perturbation (53 = fully stable).
  double StableBits = 53.0;
};

struct VerrouResult {
  std::vector<VerrouOutputStat> Outputs;
  uint64_t Steps = 0;
};

VerrouResult runVerrou(const Program &P, const std::vector<double> &Inputs,
                       int Trials = 16, uint64_t Seed = 7);

//===----------------------------------------------------------------------===//
// BZ mode
//===----------------------------------------------------------------------===//

struct BZResult {
  /// Add/sub sites that exhibited suspicious cancellation.
  std::set<uint32_t> SuspectOps;
  uint64_t SuspectEvents = 0;
  /// Comparisons whose operands were suspiciously close (the heuristic
  /// for error flowing into a "discrete factor").
  uint64_t DiscreteFactorEvents = 0;
  uint64_t Steps = 0;
};

BZResult runBZ(const Program &P,
               const std::vector<std::vector<double>> &InputSets,
               int CancelBitsThreshold = 35);

} // namespace herbgrind

#endif // HERBGRIND_BASELINES_BASELINES_H
