//===- shadow/InfluenceSet.h - Hash-consed influence (taint) sets -*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Influence sets (Section 4.2): every shadowed float value carries the set
/// of instruction sites flagged as candidate root causes that influenced
/// it. Sets are immutable, interned (hash-consed), and unions are memoized,
/// which is what makes the taint propagation affordable: real programs pass
/// the same few sets through millions of operations.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SHADOW_INFLUENCESET_H
#define HERBGRIND_SHADOW_INFLUENCESET_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace herbgrind {

/// An immutable, interned, sorted set of instruction sites (pcs).
using InflSet = std::vector<uint32_t>;

/// The intern table and union cache for influence sets. One instance lives
/// per analysis run; pointers returned stay valid for its lifetime.
class InfluenceSets {
public:
  InfluenceSets();

  InfluenceSets(const InfluenceSets &) = delete;
  InfluenceSets &operator=(const InfluenceSets &) = delete;

  /// The empty set (shared).
  const InflSet *empty() const { return Empty; }

  const InflSet *singleton(uint32_t PC);

  /// Set union, memoized on the (pointer, pointer) pair.
  const InflSet *unionOf(const InflSet *A, const InflSet *B);

  /// A with PC added.
  const InflSet *insert(const InflSet *A, uint32_t PC);

  size_t internedSets() const { return Interned.size(); }
  size_t cachedUnions() const { return UnionCache.size(); }

private:
  const InflSet *intern(InflSet Set);

  struct VecHash {
    size_t operator()(const InflSet &V) const {
      size_t H = 0x9e3779b97f4a7c15ULL;
      for (uint32_t X : V)
        H = H * 1099511628211ULL ^ X;
      return H;
    }
  };
  struct PtrPairHash {
    size_t operator()(const std::pair<const InflSet *, const InflSet *> &P)
        const {
      return std::hash<const void *>()(P.first) * 31 ^
             std::hash<const void *>()(P.second);
    }
  };

  std::unordered_map<InflSet, std::unique_ptr<InflSet>, VecHash> Interned;
  std::unordered_map<std::pair<const InflSet *, const InflSet *>,
                     const InflSet *, PtrPairHash>
      UnionCache;
  const InflSet *Empty;
};

} // namespace herbgrind

#endif // HERBGRIND_SHADOW_INFLUENCESET_H
