//===- shadow/ShadowState.h - Shadow values and shadow storage --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow state (Sections 4.1, 5.1, 5.2): each shadowed float value pairs a
/// high-precision real, a concrete expression trace, and an influence set.
/// Shadow values are reference-counted and pool-allocated so copies through
/// temporaries, thread state, and memory share one object (Section 6
/// "Sharing"). Storage mirrors VEX's three kinds:
///
///  * shadow temporaries: typed, SIMD-aware (one shadow per lane);
///  * shadow thread state: byte-offset keyed cells with overlap
///    invalidation (registers are untyped bytes);
///  * shadow memory: a lazily-populated hash table from addresses to
///    cells -- memory is too large to shadow eagerly (Section 5.2), so a
///    location is only shadowed once a float value is stored there.
///
/// SIMD stores write one cell per lane, which is what lets client programs
/// write a vector and read a scalar back at an offset. Misaligned or
/// partially-overlapping accesses conservatively drop shadows.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SHADOW_SHADOWSTATE_H
#define HERBGRIND_SHADOW_SHADOWSTATE_H

#include "real/BigFloat.h"
#include "shadow/InfluenceSet.h"
#include "support/Pool.h"
#include "trace/TraceNode.h"

#include <array>
#include <map>
#include <unordered_map>

namespace herbgrind {

/// One shadowed scalar float value. Two flavours share this struct: the
/// full 256-bit shadow (Real/Trace/Influences populated) and the tier-0
/// predicate shadow (Trace == nullptr; only PredDelta/PredNoise are
/// meaningful, Real is whatever the pool slot last held and must not be
/// read).
struct ShadowValue {
  BigFloat Real;
  TraceNode *Trace = nullptr;          ///< One reference owned; null in
                                       ///< predicate-only values.
  const InflSet *Influences = nullptr; ///< Interned; not owned.
  double PredDelta = 0.0; ///< Tier-0 signed estimate of (real - concrete)
                          ///< (predicate values only).
  double PredNoise = 0.0; ///< Tier-0 bound on the estimate's own error;
                          ///< |real - concrete| <= |PredDelta| + PredNoise.
  ValueType Ty = ValueType::F64;       ///< F64 or F32.
  uint32_t RefCount = 0;
};

/// Owns all shadow storage for one analysis run.
class ShadowState {
public:
  ShadowState(TraceArena &Arena, InfluenceSets &Sets, uint32_t NumTemps,
              bool UsePool = true, bool ShareValues = true)
      : Arena(Arena), Sets(Sets), ValuePool(UsePool),
        ShareValues(ShareValues), Temps(NumTemps) {}

  ~ShadowState();

  ShadowState(const ShadowState &) = delete;
  ShadowState &operator=(const ShadowState &) = delete;

  /// Releases every held shadow value and clears all storage, leaving the
  /// state exactly as freshly constructed -- but keeping the value pool's
  /// slabs and the memory table's buckets, so a reset-and-rerun (the batch
  /// engine's per-run cycle within a shard) re-allocates no shadow-value
  /// storage. Note the scope: the map/unordered_map *node* allocations of
  /// shadow memory and thread state are still freed here and re-made by
  /// the next run's stores; the zero-allocation invariant the benches
  /// gate covers shadow values and arithmetic scratch, not these cells.
  void reset();

  /// Creates a shadow value; takes ownership of one reference to \p Trace.
  /// The caller receives one reference to the result.
  ShadowValue *create(BigFloat Real, TraceNode *Trace, const InflSet *Infl,
                      ValueType Ty);

  /// Creates a tier-0 predicate shadow value: no BigFloat conversion, no
  /// trace node, no influence set -- just the conservative running-error
  /// pair. The caller receives one reference.
  ShadowValue *createPredicate(double PredDelta, double PredNoise,
                               ValueType Ty);

  void retain(ShadowValue *SV);
  void release(ShadowValue *SV);

  /// Reference-or-copy, depending on the sharing optimization toggle: the
  /// returned value carries one reference owned by the caller.
  ShadowValue *share(ShadowValue *SV);

  /// \name Shadow temporaries (per-lane for SIMD).
  /// @{
  ShadowValue *tempLane(uint32_t Temp, unsigned Lane) const;
  /// Takes ownership of \p SV's reference (may be null to clear the lane).
  void setTempLane(uint32_t Temp, unsigned Lane, ShadowValue *SV);
  void clearTemp(uint32_t Temp);
  /// @}

  /// \name Batched sample lanes.
  ///
  /// A lockstep batch run shadows N sample points through one program at
  /// once; each point needs its own temp table but shares the pool, the
  /// trace arena, and the interned influence sets. beginBatch(N)
  /// provisions N-1 extra tables (batch lane 0 lives in the main table)
  /// and selectLane(L) points the temp accessors above at lane L's
  /// table. reset() clears every lane and reselects lane 0. These batch
  /// lanes are per-sample-point and orthogonal to the per-SIMD-lane
  /// index inside one temp.
  /// @{
  void beginBatch(unsigned NumLanes);
  void selectLane(unsigned Lane);
  /// @}

  /// \name Shadow thread state.
  /// @{
  ShadowValue *getThreadState(int64_t Offset, unsigned Size) const;
  /// Invalidates overlaps, then installs \p SV (takes ownership; null just
  /// invalidates).
  void putThreadState(int64_t Offset, unsigned Size, ShadowValue *SV);
  /// @}

  /// \name Shadow memory (lazy hash table).
  /// @{
  ShadowValue *getMemory(uint64_t Addr, unsigned Size) const;
  void putMemory(uint64_t Addr, unsigned Size, ShadowValue *SV);
  void invalidateMemory(uint64_t Addr, unsigned Size);
  /// @}

  size_t liveValues() const { return ValuePool.live(); }
  size_t totalValuesCreated() const { return ValuePool.totalAllocated(); }
  size_t shadowedMemoryCells() const { return Memory.size(); }

  TraceArena &arena() { return Arena; }
  InfluenceSets &sets() { return Sets; }

private:
  struct Cell {
    ShadowValue *SV = nullptr;
    unsigned Size = 0;
  };

  void invalidateThreadState(int64_t Offset, unsigned Size);
  void clearTempTable(std::vector<std::array<ShadowValue *, 4>> &Table);

  TraceArena &Arena;
  InfluenceSets &Sets;
  Pool<ShadowValue> ValuePool;
  bool ShareValues;

  std::vector<std::array<ShadowValue *, 4>> Temps;
  /// Batch lanes 1..N-1 (lane 0 lives in Temps); see beginBatch.
  std::vector<std::vector<std::array<ShadowValue *, 4>>> BatchTemps;
  /// The temp table the accessors currently address; selectLane moves it.
  std::vector<std::array<ShadowValue *, 4>> *ActiveTemps = &Temps;
  std::map<int64_t, Cell> ThreadState; ///< ordered: range scans
  std::unordered_map<uint64_t, Cell> Memory;
};

} // namespace herbgrind

#endif // HERBGRIND_SHADOW_SHADOWSTATE_H
