//===- shadow/ShadowState.cpp - Shadow values and shadow storage ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "shadow/ShadowState.h"

#include <cassert>

using namespace herbgrind;

ShadowState::~ShadowState() { reset(); }

void ShadowState::reset() {
  ActiveTemps = &Temps;
  clearTempTable(Temps);
  for (auto &Table : BatchTemps)
    clearTempTable(Table);
  for (auto &[Off, C] : ThreadState)
    if (C.SV)
      release(C.SV);
  ThreadState.clear();
  for (auto &[Addr, C] : Memory)
    if (C.SV)
      release(C.SV);
  Memory.clear();
}

ShadowValue *ShadowState::create(BigFloat Real, TraceNode *Trace,
                                 const InflSet *Infl, ValueType Ty) {
  assert(Trace && Infl && "shadow value needs trace and influences");
  assert((Ty == ValueType::F64 || Ty == ValueType::F32) &&
         "only scalar floats are shadowed");
  ShadowValue *SV = ValuePool.create();
  SV->Real = std::move(Real);
  SV->Trace = Trace; // takes over the caller's reference
  SV->Influences = Infl;
  SV->PredDelta = 0.0;
  SV->PredNoise = 0.0;
  SV->Ty = Ty;
  SV->RefCount = 1;
  return SV;
}

ShadowValue *ShadowState::createPredicate(double PredDelta, double PredNoise,
                                          ValueType Ty) {
  assert((Ty == ValueType::F64 || Ty == ValueType::F32) &&
         "only scalar floats are shadowed");
  // The pool slot's Real keeps whatever limbs it last held; predicate
  // values never read it, and skipping the BigFloat store is the point.
  ShadowValue *SV = ValuePool.create();
  SV->Trace = nullptr;
  SV->Influences = nullptr;
  SV->PredDelta = PredDelta;
  SV->PredNoise = PredNoise;
  SV->Ty = Ty;
  SV->RefCount = 1;
  return SV;
}

void ShadowState::retain(ShadowValue *SV) {
  assert(SV && SV->RefCount > 0 && "retain of dead shadow value");
  ++SV->RefCount;
}

void ShadowState::release(ShadowValue *SV) {
  assert(SV && SV->RefCount > 0 && "release of dead shadow value");
  if (--SV->RefCount > 0)
    return;
  if (SV->Trace)
    Arena.release(SV->Trace);
  ValuePool.destroy(SV);
}

ShadowValue *ShadowState::share(ShadowValue *SV) {
  assert(SV && "sharing null shadow value");
  if (ShareValues) {
    retain(SV);
    return SV;
  }
  // Sharing disabled (optimization ablation): deep-copy the shadow value.
  if (!SV->Trace)
    return createPredicate(SV->PredDelta, SV->PredNoise, SV->Ty);
  Arena.retain(SV->Trace);
  return create(SV->Real, SV->Trace, SV->Influences, SV->Ty);
}

//===----------------------------------------------------------------------===//
// Temporaries
//===----------------------------------------------------------------------===//

ShadowValue *ShadowState::tempLane(uint32_t Temp, unsigned Lane) const {
  assert(Temp < ActiveTemps->size() && Lane < 4 && "temp lane out of range");
  return (*ActiveTemps)[Temp][Lane];
}

void ShadowState::setTempLane(uint32_t Temp, unsigned Lane, ShadowValue *SV) {
  assert(Temp < ActiveTemps->size() && Lane < 4 && "temp lane out of range");
  ShadowValue *Old = (*ActiveTemps)[Temp][Lane];
  (*ActiveTemps)[Temp][Lane] = SV;
  if (Old)
    release(Old);
}

void ShadowState::clearTemp(uint32_t Temp) {
  for (unsigned Lane = 0; Lane < 4; ++Lane)
    setTempLane(Temp, Lane, nullptr);
}

void ShadowState::clearTempTable(
    std::vector<std::array<ShadowValue *, 4>> &Table) {
  for (auto &Lanes : Table)
    for (ShadowValue *&SV : Lanes) {
      if (SV)
        release(SV);
      SV = nullptr;
    }
}

void ShadowState::beginBatch(unsigned NumLanes) {
  if (NumLanes > 1 && BatchTemps.size() < NumLanes - 1)
    BatchTemps.resize(
        NumLanes - 1,
        std::vector<std::array<ShadowValue *, 4>>(Temps.size()));
  ActiveTemps = &Temps;
}

void ShadowState::selectLane(unsigned Lane) {
  assert((Lane == 0 || Lane <= BatchTemps.size()) && "lane not provisioned");
  ActiveTemps = Lane == 0 ? &Temps : &BatchTemps[Lane - 1];
}

//===----------------------------------------------------------------------===//
// Thread state
//===----------------------------------------------------------------------===//

void ShadowState::invalidateThreadState(int64_t Offset, unsigned Size) {
  // Any cell starting in [Offset - 15, Offset + Size) could overlap the
  // written range (cells are at most 16 bytes wide).
  auto It = ThreadState.lower_bound(Offset - 15);
  while (It != ThreadState.end() && It->first < Offset + Size) {
    int64_t CellEnd = It->first + It->second.Size;
    if (CellEnd > Offset) {
      if (It->second.SV)
        release(It->second.SV);
      It = ThreadState.erase(It);
    } else {
      ++It;
    }
  }
}

ShadowValue *ShadowState::getThreadState(int64_t Offset,
                                         unsigned Size) const {
  auto It = ThreadState.find(Offset);
  if (It == ThreadState.end() || It->second.Size != Size)
    return nullptr; // misaligned or size-mismatched reads see no shadow
  return It->second.SV;
}

void ShadowState::putThreadState(int64_t Offset, unsigned Size,
                                 ShadowValue *SV) {
  invalidateThreadState(Offset, Size);
  if (!SV)
    return;
  ThreadState[Offset] = Cell{SV, Size};
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

ShadowValue *ShadowState::getMemory(uint64_t Addr, unsigned Size) const {
  auto It = Memory.find(Addr);
  if (It == Memory.end() || It->second.Size != Size)
    return nullptr;
  return It->second.SV;
}

void ShadowState::invalidateMemory(uint64_t Addr, unsigned Size) {
  // Cells are at most 16 bytes wide; scan the bounded window of starts
  // that could overlap [Addr, Addr + Size).
  for (uint64_t Start = Addr >= 15 ? Addr - 15 : 0; Start < Addr + Size;
       ++Start) {
    auto It = Memory.find(Start);
    if (It == Memory.end())
      continue;
    uint64_t CellEnd = Start + It->second.Size;
    if (CellEnd <= Addr)
      continue;
    if (It->second.SV)
      release(It->second.SV);
    Memory.erase(It);
  }
}

void ShadowState::putMemory(uint64_t Addr, unsigned Size, ShadowValue *SV) {
  invalidateMemory(Addr, Size);
  if (!SV)
    return;
  Memory[Addr] = Cell{SV, Size};
}
