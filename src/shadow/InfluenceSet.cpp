//===- shadow/InfluenceSet.cpp - Hash-consed influence (taint) sets -------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "shadow/InfluenceSet.h"

#include <algorithm>
#include <cassert>

using namespace herbgrind;

InfluenceSets::InfluenceSets() { Empty = intern(InflSet()); }

const InflSet *InfluenceSets::intern(InflSet Set) {
  auto It = Interned.find(Set);
  if (It != Interned.end())
    return It->second.get();
  auto Owned = std::make_unique<InflSet>(Set);
  const InflSet *Ptr = Owned.get();
  Interned.emplace(std::move(Set), std::move(Owned));
  return Ptr;
}

const InflSet *InfluenceSets::singleton(uint32_t PC) {
  return intern(InflSet{PC});
}

const InflSet *InfluenceSets::unionOf(const InflSet *A, const InflSet *B) {
  assert(A && B && "null influence set");
  if (A == B || B->empty())
    return A;
  if (A->empty())
    return B;
  // Canonicalize the cache key order.
  if (B < A)
    std::swap(A, B);
  auto Key = std::make_pair(A, B);
  auto It = UnionCache.find(Key);
  if (It != UnionCache.end())
    return It->second;
  InflSet Merged;
  Merged.reserve(A->size() + B->size());
  std::set_union(A->begin(), A->end(), B->begin(), B->end(),
                 std::back_inserter(Merged));
  const InflSet *Result = intern(std::move(Merged));
  UnionCache.emplace(Key, Result);
  return Result;
}

const InflSet *InfluenceSets::insert(const InflSet *A, uint32_t PC) {
  if (std::binary_search(A->begin(), A->end(), PC))
    return A;
  return unionOf(A, singleton(PC));
}
