//===- support/Rng.cpp - Deterministic random number generation -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include "support/FloatBits.h"

#include <cassert>
#include <cmath>

using namespace herbgrind;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  for (uint64_t &Word : State)
    Word = splitMix64(Seed);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Raw = next();
    if (Raw >= Threshold)
      return Raw % Bound;
  }
}

double Rng::nextUnit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double Lo, double Hi) {
  return Lo + (Hi - Lo) * nextUnit();
}

double Rng::betweenOrdinals(double Lo, double Hi) {
  assert(Lo <= Hi && "empty sampling range");
  int64_t OrdLo = ordinalOfDouble(Lo);
  int64_t OrdHi = ordinalOfDouble(Hi);
  // Wide ranges overflow int64 differences; compute the span and the
  // offset addition in uint64, where wraparound is defined (and matches
  // the two's-complement result bit for bit, keeping sampling streams
  // stable).
  uint64_t Span = static_cast<uint64_t>(OrdHi) - static_cast<uint64_t>(OrdLo);
  uint64_t Offset = Span == UINT64_MAX ? next() : nextBelow(Span + 1);
  return doubleFromOrdinal(
      static_cast<int64_t>(static_cast<uint64_t>(OrdLo) + Offset));
}

double Rng::anyFiniteDouble() {
  for (;;) {
    double X = doubleFromBits(next());
    if (std::isfinite(X))
      return X;
  }
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && Num <= Den && "probability must be in [0, 1]");
  return nextBelow(Den) < Num;
}
