//===- support/Events.h - Structured NDJSON event stream --------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured live event stream: where `support/Trace` records spans
/// for post-hoc visualization and `support/Metrics` folds counters for
/// end-of-run totals, this module streams lifecycle events AS THEY HAPPEN
/// as newline-delimited JSON (`herbgrind_batch --events-out`), so an
/// external supervisor can tail a sweep's progress -- sweep begin/end,
/// per-shard queue/cache-hit/analyze/escalate/reduce transitions, improve
/// records -- without parsing stderr heartbeats.
///
/// Each line is one self-contained JSON object:
///
///   {"ts":<ns>,"seq":<n>,"event":"shard.analyzed","bench":3,"shard":0,...}
///
/// `ts` is metrics::nowNanos() (monotonic, same timebase as spans), `seq`
/// a global monotone sequence number so consumers can detect reordering
/// or truncation. Event-specific fields follow, pre-rendered by the call
/// site exactly like trace span args.
///
/// Like all telemetry, the stream observes and never steers: report bytes
/// are identical with events on or off (tested in test_telemetry.cpp).
/// When off (the default), emit() is one relaxed load. When on, each line
/// is rendered off-lock and written under one mutex with a single fwrite,
/// so concurrent workers never interleave partial lines.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_EVENTS_H
#define HERBGRIND_SUPPORT_EVENTS_H

#include <string>

namespace herbgrind {
namespace events {

/// Opens \p Path ("-" = stdout) and starts streaming. Resets the
/// sequence counter. Returns false (with \p Err set) when the file
/// cannot be opened.
bool start(const std::string &Path, std::string &Err);

/// Stops streaming and closes the sink (flushes first). Idempotent.
void stop();

/// Whether events are currently being streamed.
bool enabled();

/// Emits one event line. \p Type is the event name ("sweep.begin",
/// "shard.analyzed", ...); \p FieldsJson is an optional pre-rendered
/// fragment of additional key/value pairs WITHOUT surrounding braces
/// (e.g. "\"bench\":3,\"shard\":0"), spliced after the standard
/// ts/seq/event fields. No-op when streaming is off; call sites should
/// still guard expensive fragment rendering with enabled().
void emit(const char *Type, const std::string &FieldsJson = std::string());

} // namespace events
} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_EVENTS_H
