//===- support/Json.h - Minimal JSON reader ---------------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON reader for the result wire format. Two
/// properties matter here and drove the design:
///
///  - **Exact numeric round-trips.** Numbers keep their raw token text;
///    `asDouble()` reparses it with strtod and `asU64()` with strtoull.
///    Since every double the writers emit is printed with the shortest
///    round-tripping decimal (`formatDoubleShortest`), parse(render(x))
///    recovers x bit-for-bit.
///  - **The writers' nonfinite extension.** `formatDoubleShortest` prints
///    NaN and infinities as the bare tokens `NAN`, `INFINITY` and
///    `-INFINITY` (deterministic, grep-able); the reader accepts exactly
///    those tokens as numbers on top of RFC 8259.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_JSON_H
#define HERBGRIND_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace herbgrind {

/// One parsed JSON value (a plain owned DOM node).
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolVal = false;    ///< For Bool.
  std::string Num;         ///< For Number: the raw source token.
  std::string Str;         ///< For String: the unescaped text.
  std::vector<JsonValue> Arr; ///< For Array.
  std::vector<std::pair<std::string, JsonValue>> Obj; ///< For Object.

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Reparses the raw number token as a double (exact for tokens written
  /// with formatDoubleShortest, including NAN/INFINITY/-INFINITY).
  double asDouble() const;

  /// Reparses the raw number token as an unsigned 64-bit integer.
  uint64_t asU64() const;

  /// Reparses the raw number token as a signed 64-bit integer.
  int64_t asI64() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *field(const char *Name) const;
};

/// Outcome of parseJson: a value, or an error with its source offset.
struct JsonParseResult {
  bool Ok = false;
  JsonValue Value;
  std::string Error;
  size_t ErrorOffset = 0;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Nesting is bounded to keep hostile inputs from
/// overflowing the stack.
JsonParseResult parseJson(const std::string &Text);

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_JSON_H
