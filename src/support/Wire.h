//===- support/Wire.h - Abstract wire codec interface -----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codec abstraction behind `analysis/Serialize`: every document
/// family (shard, improve, report, batch report, telemetry) is written as
/// ONE schema traversal over the abstract `wire::Encoder` / `wire::Decoder`
/// interface, and the two backends -- byte-exact JSON (this file) and the
/// compact HGB binary envelope (`support/WireBinary.h`) -- cannot drift,
/// because there is no second copy of the schema to drift.
///
/// Encoder semantics: the traversal calls `key()` before every object
/// field value, in the exact order the JSON bytes must appear; the JSON
/// backend reproduces today's hand-rendered output byte for byte, and the
/// binary backend ignores keys entirely (field identity is positional).
/// `present()` marks an optional field (JSON: encoded by field absence;
/// binary: one presence byte) and `variantTag()` marks a sum-type branch
/// (JSON: encoded by which keys exist; binary: one varint).
///
/// Decoder semantics mirror the encoder: the JSON backend resolves `key()`
/// by name against the parsed DOM (field order independent, unknown fields
/// ignored -- exactly the old parsers' tolerance), while the binary
/// backend reads values sequentially in traversal order. All read methods
/// return false on malformed input and latch a message in `error()`.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_WIRE_H
#define HERBGRIND_SUPPORT_WIRE_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace herbgrind {
namespace wire {

/// Document family tags, embedded in the HGB header so a reader can
/// dispatch without decoding the body. Values are wire-stable: never
/// renumber, only append.
enum class Family : uint8_t {
  Shard = 1,
  Improve = 2,
  Report = 3, ///< A bare presentation-level report ({"spots":...}).
  BatchReport = 4,
  Telemetry = 5,
  Ledger = 6, ///< One run-ledger envelope (engine/RunLedger.h).
};

/// Human-readable family name (for diagnostics and conversion tools).
const char *familyName(Family F);

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

class Encoder {
public:
  virtual ~Encoder() = default;

  virtual void beginObject() = 0;
  virtual void endObject() = 0;
  /// Arrays carry their element count up front (the binary backend is
  /// length-prefixed; the JSON backend ignores \p Count).
  virtual void beginArray(uint64_t Count) = 0;
  virtual void endArray() = 0;
  /// Announces the next object field. Must precede every value inside an
  /// object, in the order the JSON output requires.
  virtual void key(const char *K) = 0;

  virtual void u64(uint64_t V) = 0;
  virtual void i64(int64_t V) = 0;
  /// Doubles are bit-preserving in both backends: shortest round-trip
  /// decimals in JSON, raw IEEE-754 bytes in binary.
  virtual void dbl(double V) = 0;
  virtual void boolean(bool V) = 0;
  virtual void str(const std::string &S) = 0;
  virtual void str(const char *S) = 0;

  /// Marks whether the optional field that follows is present. JSON
  /// encodes presence by emitting or omitting the field; binary writes
  /// one byte. The traversal still guards the field itself with `if`.
  virtual void present(bool P) = 0;
  /// Marks which branch of a sum type follows. JSON encodes the branch
  /// by which keys exist; binary writes a varint.
  virtual void variantTag(unsigned Tag) = 0;

  void u32(uint32_t V) { u64(V); }
};

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

class Decoder {
public:
  virtual ~Decoder() = default;

  virtual bool beginObject() = 0;
  virtual bool endObject() = 0;
  virtual bool beginArray(uint64_t &Count) = 0;
  /// Positions at the next array element (call exactly Count times).
  virtual bool element() = 0;
  virtual bool endArray() = 0;
  /// Positions at object field \p K. The JSON backend looks it up by
  /// name; the binary backend is positional and only records it for
  /// error messages.
  virtual bool key(const char *K) = 0;

  virtual bool u64(uint64_t &V) = 0;
  virtual bool i64(int64_t &V) = 0;
  virtual bool dbl(double &V) = 0;
  virtual bool boolean(bool &V) = 0;
  virtual bool str(std::string &S) = 0;

  /// Reports whether optional field \p Key is present (JSON: field
  /// lookup; binary: reads the presence byte).
  virtual bool present(const char *Key, bool &P) = 0;
  /// Resolves a sum type: returns the index of the first of
  /// Keys[0..NumKeys-1] present in the current object, or NumKeys for
  /// the default branch (JSON); the binary backend reads the tag varint.
  virtual bool variant(const char *const *Keys, unsigned NumKeys,
                       unsigned &Tag) = 0;

  bool u32(uint32_t &V) {
    uint64_t W;
    if (!u64(W))
      return false;
    V = static_cast<uint32_t>(W);
    return true;
  }

  /// Names the schema context for error messages ("op record", ...).
  void setContext(const char *C) { Ctx = C; }
  const char *context() const { return Ctx; }

  const std::string &error() const { return Err; }
  /// Latches \p Msg unless an earlier error already did.
  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }
  /// Replaces any latched error: for schema-level diagnostics ("unknown
  /// opcode", envelope mismatches) that outrank a generic read failure.
  bool failOver(const std::string &Msg) {
    Err = Msg;
    return false;
  }

protected:
  const char *Ctx = "document";
  std::string Err;
};

//===----------------------------------------------------------------------===//
// JSON backend
//===----------------------------------------------------------------------===//

/// Byte-exact JSON encoder: reproduces the hand-rendered wire bytes of
/// the pre-codec Serialize exactly (comma placement, shortest round-trip
/// doubles, bare NAN/INFINITY tokens, no whitespace).
class JsonEncoder : public Encoder {
public:
  void beginObject() override;
  void endObject() override;
  void beginArray(uint64_t Count) override;
  void endArray() override;
  void key(const char *K) override;
  void u64(uint64_t V) override;
  void i64(int64_t V) override;
  void dbl(double V) override;
  void boolean(bool V) override;
  void str(const std::string &S) override;
  void str(const char *S) override;
  void present(bool P) override {}
  void variantTag(unsigned Tag) override {}

  std::string take() { return std::move(Out); }
  const std::string &text() const { return Out; }

private:
  /// Emits the comma a value in array context (or at root after a
  /// sibling) requires; a value after key() never needs one.
  void preValue();

  struct Frame {
    bool IsArray;
    bool First;
  };
  std::string Out;
  std::vector<Frame> Stack;
  bool AfterKey = false;
};

/// DOM-walking JSON decoder: field order independent, unknown fields
/// ignored, numbers reparsed from their raw tokens (bit-exact doubles,
/// non-negative integer enforcement for u64).
class JsonDecoder : public Decoder {
public:
  explicit JsonDecoder(const JsonValue &Root) : Cur(&Root) {}

  bool beginObject() override;
  bool endObject() override;
  bool beginArray(uint64_t &Count) override;
  bool element() override;
  bool endArray() override;
  bool key(const char *K) override;
  bool u64(uint64_t &V) override;
  bool i64(int64_t &V) override;
  bool dbl(double &V) override;
  bool boolean(bool &V) override;
  bool str(std::string &S) override;
  bool present(const char *Key, bool &P) override;
  bool variant(const char *const *Keys, unsigned NumKeys,
               unsigned &Tag) override;

private:
  bool failField(const char *What);

  struct Frame {
    const JsonValue *Container;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  const JsonValue *Cur;
  const char *LastKey = nullptr;
};

} // namespace wire
} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_WIRE_H
