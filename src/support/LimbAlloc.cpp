//===- support/LimbAlloc.cpp - Recycled limb storage ----------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Blocks are bucketed by power-of-two capacity from 8 to 1024 limbs; each
// bucket keeps a bounded LIFO stack (hot blocks stay cache-warm, and the
// worst-case cached footprint per thread is a few hundred kilobytes).
// Requests above the largest bucket fall through to plain new/delete --
// they only occur for extreme precisions or extreme argument-reduction
// exponents, never in the steady-state shadow hot path.
//
//===----------------------------------------------------------------------===//

#include "support/LimbAlloc.h"

namespace herbgrind {
namespace limballoc {
namespace {

constexpr size_t MinCap = 8;      // smallest bucketed capacity, in limbs
constexpr size_t NumBuckets = 8;  // 8, 16, 32, 64, 128, 256, 512, 1024
constexpr size_t MaxPerBucket = 32;

/// The cache proper is a trivially-destructible, constant-initialized
/// thread_local, so it is valid to touch at ANY point of thread shutdown
/// -- in particular from the destructors of other thread_locals that own
/// spilled BigFloats (RealMath's cached constants), whose order relative
/// to a destructor here is unknowable. A separate Reaper thread_local
/// frees the cached blocks and flips Dead; releases arriving after that
/// fall through to plain delete[].
struct ThreadCache {
  uint64_t *Blocks[NumBuckets][MaxPerBucket];
  size_t Tops[NumBuckets];
  uint64_t HeapAllocs;
  uint64_t CacheHits;
  bool Dead;
};

thread_local ThreadCache TLS; // zero-initialized, no destructor

struct Reaper {
  ~Reaper() {
    for (size_t B = 0; B < NumBuckets; ++B)
      for (size_t I = 0; I < TLS.Tops[B]; ++I)
        delete[] TLS.Blocks[B][I];
    for (size_t B = 0; B < NumBuckets; ++B)
      TLS.Tops[B] = 0;
    TLS.Dead = true;
  }
};

/// Registers the reaper for this thread; called from every code path
/// that can put a block into the cache (acquire, and the caching branch
/// of release -- a thread can receive and destroy a spilled value it
/// never acquired). Registration order guarantees the reaper is
/// destroyed before any earlier-constructed thread_local whose
/// destructor might still release blocks.
void ensureReaper() {
  thread_local Reaper R;
  (void)R;
}

/// Bucket index for a capacity request; returns NumBuckets when the
/// request is too large to bucket.
size_t bucketFor(size_t Limbs) {
  size_t Cap = MinCap;
  for (size_t B = 0; B < NumBuckets; ++B, Cap *= 2)
    if (Limbs <= Cap)
      return B;
  return NumBuckets;
}

size_t bucketCap(size_t B) { return MinCap << B; }

} // namespace

uint64_t *acquire(size_t Limbs, size_t &CapOut) {
  size_t B = bucketFor(Limbs);
  if (B == NumBuckets) {
    ++TLS.HeapAllocs;
    CapOut = Limbs;
    return new uint64_t[Limbs];
  }
  CapOut = bucketCap(B);
  if (TLS.Dead) {
    ++TLS.HeapAllocs;
    return new uint64_t[CapOut];
  }
  ensureReaper();
  if (TLS.Tops[B] > 0) {
    ++TLS.CacheHits;
    return TLS.Blocks[B][--TLS.Tops[B]];
  }
  ++TLS.HeapAllocs;
  return new uint64_t[CapOut];
}

void release(uint64_t *Ptr, size_t Cap) {
  if (!Ptr)
    return;
  size_t B = bucketFor(Cap);
  // Only exact bucket capacities are cached; anything else came from the
  // fall-through path (or a foreign size) and goes straight back. So do
  // every release after the reaper ran (thread shutdown).
  if (!TLS.Dead && B < NumBuckets && bucketCap(B) == Cap &&
      TLS.Tops[B] < MaxPerBucket) {
    // A thread can cache its first block here without ever acquiring
    // (a spilled value created on another thread, destroyed on this
    // one); the reaper must still be registered or the cache leaks at
    // thread exit.
    ensureReaper();
    TLS.Blocks[B][TLS.Tops[B]++] = Ptr;
    return;
  }
  delete[] Ptr;
}

uint64_t heapAllocs() { return TLS.HeapAllocs; }
uint64_t cacheHits() { return TLS.CacheHits; }

void resetCounters() {
  TLS.HeapAllocs = 0;
  TLS.CacheHits = 0;
}

} // namespace limballoc
} // namespace herbgrind
