//===- support/Wire.cpp - JSON wire codec backend -------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Wire.h"

#include "support/Format.h"

#include <cassert>

using namespace herbgrind;
using namespace herbgrind::wire;

const char *herbgrind::wire::familyName(Family F) {
  switch (F) {
  case Family::Shard:
    return "shard";
  case Family::Improve:
    return "improve";
  case Family::Report:
    return "report";
  case Family::BatchReport:
    return "batch-report";
  case Family::Telemetry:
    return "telemetry";
  case Family::Ledger:
    return "ledger";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// JsonEncoder
//===----------------------------------------------------------------------===//

void JsonEncoder::preValue() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!Stack.empty() && Stack.back().IsArray) {
    if (!Stack.back().First)
      Out += ',';
    Stack.back().First = false;
  }
}

void JsonEncoder::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({false, true});
}

void JsonEncoder::endObject() {
  assert(!Stack.empty() && !Stack.back().IsArray);
  Stack.pop_back();
  Out += '}';
}

void JsonEncoder::beginArray(uint64_t Count) {
  (void)Count;
  preValue();
  Out += '[';
  Stack.push_back({true, true});
}

void JsonEncoder::endArray() {
  assert(!Stack.empty() && Stack.back().IsArray);
  Stack.pop_back();
  Out += ']';
}

void JsonEncoder::key(const char *K) {
  assert(!Stack.empty() && !Stack.back().IsArray);
  if (!Stack.back().First)
    Out += ',';
  Stack.back().First = false;
  Out += '"';
  Out += K; // Schema keys are plain ASCII identifiers: no escaping.
  Out += "\":";
  AfterKey = true;
}

void JsonEncoder::u64(uint64_t V) {
  preValue();
  Out += format("%llu", static_cast<unsigned long long>(V));
}

void JsonEncoder::i64(int64_t V) {
  preValue();
  Out += format("%lld", static_cast<long long>(V));
}

void JsonEncoder::dbl(double V) {
  preValue();
  Out += formatDoubleShortest(V);
}

void JsonEncoder::boolean(bool V) {
  preValue();
  Out += V ? "true" : "false";
}

void JsonEncoder::str(const std::string &S) {
  preValue();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
}

void JsonEncoder::str(const char *S) { str(std::string(S)); }

//===----------------------------------------------------------------------===//
// JsonDecoder
//===----------------------------------------------------------------------===//

bool JsonDecoder::failField(const char *What) {
  return fail(format("%s: field '%s' %s", Ctx,
                     LastKey ? LastKey : "(value)", What));
}

bool JsonDecoder::beginObject() {
  if (!Cur || !Cur->isObject())
    return fail(format("%s: not an object", Ctx));
  Stack.push_back({Cur});
  return true;
}

bool JsonDecoder::endObject() {
  assert(!Stack.empty());
  Stack.pop_back();
  return true;
}

bool JsonDecoder::beginArray(uint64_t &Count) {
  if (!Cur || !Cur->isArray())
    return failField("missing or not an array");
  Count = Cur->Arr.size();
  Stack.push_back({Cur});
  return true;
}

bool JsonDecoder::element() {
  assert(!Stack.empty() && Stack.back().Container->isArray());
  Frame &F = Stack.back();
  if (F.Next >= F.Container->Arr.size())
    return fail(format("%s: array read past its end", Ctx));
  Cur = &F.Container->Arr[F.Next++];
  return true;
}

bool JsonDecoder::endArray() {
  assert(!Stack.empty());
  Stack.pop_back();
  return true;
}

bool JsonDecoder::key(const char *K) {
  assert(!Stack.empty() && Stack.back().Container->isObject());
  LastKey = K;
  Cur = Stack.back().Container->field(K);
  // A missing field is reported by the typed read that follows, so the
  // message matches the old parsers' "missing or not a ..." wording.
  return true;
}

bool JsonDecoder::u64(uint64_t &V) {
  if (!Cur || !Cur->isNumber())
    return failField("missing or not a number");
  // strtoull would silently wrap a negative token to a huge count.
  if (!Cur->Num.empty() && Cur->Num[0] == '-')
    return failField("must be a non-negative integer");
  V = Cur->asU64();
  return true;
}

bool JsonDecoder::i64(int64_t &V) {
  if (!Cur || !Cur->isNumber())
    return failField("missing or not a number");
  V = Cur->asI64();
  return true;
}

bool JsonDecoder::dbl(double &V) {
  if (!Cur || !Cur->isNumber())
    return failField("missing or not a number");
  V = Cur->asDouble();
  return true;
}

bool JsonDecoder::boolean(bool &V) {
  if (!Cur || !Cur->isBool())
    return failField("missing or not a boolean");
  V = Cur->BoolVal;
  return true;
}

bool JsonDecoder::str(std::string &S) {
  if (!Cur || !Cur->isString())
    return failField("missing or not a string");
  S = Cur->Str;
  return true;
}

bool JsonDecoder::present(const char *Key, bool &P) {
  assert(!Stack.empty() && Stack.back().Container->isObject());
  P = Stack.back().Container->field(Key) != nullptr;
  return true;
}

bool JsonDecoder::variant(const char *const *Keys, unsigned NumKeys,
                          unsigned &Tag) {
  assert(!Stack.empty() && Stack.back().Container->isObject());
  for (unsigned I = 0; I < NumKeys; ++I)
    if (Stack.back().Container->field(Keys[I])) {
      Tag = I;
      return true;
    }
  Tag = NumKeys;
  return true;
}
