//===- support/Trace.h - Chrome trace-event span recorder -------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span tracing for sweeps: RAII `trace::Span` objects mark the extent of
/// engine runs, per-shard analyze/reduce/cache-probe phases, improver
/// records, and native kernel invocations. Recorded spans render as Chrome
/// trace-event JSON (the `{"traceEvents":[...]}` format), which
/// `herbgrind_batch --trace-out` writes and chrome://tracing or Perfetto
/// (ui.perfetto.dev) load directly.
///
/// Recording is globally gated: when tracing is off (the default), a Span
/// is two relaxed loads and no stores -- cheap enough to leave the
/// instrumentation compiled in everywhere. When on, span completion
/// appends one event to the calling thread's buffer under that buffer's
/// own (uncontended) mutex; spans here are shard- and record-grained,
/// never per-shadow-op, so this is far off the hot path.
///
/// Like all telemetry, spans observe and never steer: report bytes are
/// identical with tracing on or off (tested in test_telemetry.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_TRACE_H
#define HERBGRIND_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace herbgrind {
namespace trace {

/// One completed span ("ph":"X" in trace-event terms).
struct Event {
  std::string Name;    ///< Span name, e.g. "shard.analyze".
  const char *Cat;     ///< Category literal, e.g. "engine" (static storage).
  uint64_t StartNanos; ///< Relative to the start() timebase.
  uint64_t DurNanos;
  uint32_t Tid;   ///< Sequential per-thread id (registration order).
  std::string Args; ///< Optional pre-rendered JSON object ("" = none).
};

/// Starts recording: clears prior events and sets the timebase.
void start();

/// Stops recording; already-recorded events remain until clear().
void stop();

/// Whether spans are currently being recorded.
bool enabled();

/// Discards all recorded events.
void clear();

/// RAII span: captures the start time at construction, records one
/// complete event at destruction. Name/category may be temporaries; an
/// optional \p Args is a pre-rendered JSON object (e.g. "{\"shard\":3}")
/// attached to the event.
class Span {
public:
  Span(const char *Name, const char *Cat, std::string Args = std::string());
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  std::string Name;
  std::string ArgsJson;
  const char *Cat = nullptr;
  uint64_t StartNanos = 0;
  bool Armed = false;
};

/// Copies out every recorded event (all threads, exited ones included),
/// sorted by (StartNanos, Tid, Name) for deterministic rendering.
std::vector<Event> collect();

/// Renders all recorded events as a Chrome trace-event JSON document.
std::string renderChromeTrace();

} // namespace trace
} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_TRACE_H
