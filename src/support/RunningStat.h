//===- support/RunningStat.h - Incremental error aggregation ----*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental aggregation of a stream of numbers into count/sum/max/mean.
/// Section 6 of the paper ("Incrementalization") aggregates per-instruction
/// errors into average- and maximum- total and local errors as the analysis
/// runs; this is that aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_RUNNINGSTAT_H
#define HERBGRIND_SUPPORT_RUNNINGSTAT_H

#include <algorithm>
#include <cstdint>

namespace herbgrind {

/// Count / sum / max aggregate with O(1) update, associative merge.
class RunningStat {
public:
  void add(double X) {
    ++Count;
    Sum += X;
    Max = Count == 1 ? X : std::max(Max, X);
  }

  /// Merges another aggregate in (associative, used when superblocks are
  /// summarized independently).
  void merge(const RunningStat &Other) {
    if (Other.Count == 0)
      return;
    if (Count == 0) {
      *this = Other;
      return;
    }
    Count += Other.Count;
    Sum += Other.Sum;
    Max = std::max(Max, Other.Max);
  }

  /// Reconstructs an aggregate from its serialized parts (the shard
  /// wire format's read-back path). Inverse of (count(), sum(), max()).
  static RunningStat fromParts(uint64_t Count, double Sum, double Max) {
    RunningStat S;
    S.Count = Count;
    S.Sum = Sum;
    S.Max = Max;
    return S;
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double max() const { return Count ? Max : 0.0; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Max = 0.0;
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_RUNNINGSTAT_H
