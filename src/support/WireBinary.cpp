//===- support/WireBinary.cpp - HGB compact binary wire format ------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/WireBinary.h"

#include "support/Format.h"

#include <algorithm>
#include <cstring>

using namespace herbgrind;
using namespace herbgrind::wire;

/// Matches support/Json's parser depth bound: the decoders share one
/// stack-safety contract whatever the backend.
static constexpr unsigned MaxDepth = 512;

//===----------------------------------------------------------------------===//
// LZSS body codec
//===----------------------------------------------------------------------===//

/// Body codec tags (the byte after the version varints).
static constexpr unsigned char BodyRaw = 0;
static constexpr unsigned char BodyLzss = 1;

/// Bodies below this never try compression: the tokens cannot win and
/// raw bytes keep tiny cache entries trivially inspectable.
static constexpr size_t LzssMinBody = 64;
static constexpr size_t LzssMinMatch = 4;   ///< 3-byte token must beat bytes.
static constexpr size_t LzssMaxMatch = 259; ///< (length - 4) fits one byte.
static constexpr size_t LzssWindow = 1 << 16; ///< (offset - 1) fits 2 bytes.

static void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out += static_cast<char>((V & 0x7f) | 0x80);
    V >>= 7;
  }
  Out += static_cast<char>(V);
}

static uint32_t lzssHash(const unsigned char *P) {
  uint32_t X;
  std::memcpy(&X, P, 4);
  return (X * 2654435761u) >> 17;
}

/// Greedy LZSS over \p N body bytes: hash chains on 4-byte prefixes,
/// bounded chain walks, longest match wins (most recent candidate on
/// ties; the walk order is fixed, so output is deterministic).
static std::string lzssCompress(const unsigned char *D, size_t N) {
  constexpr uint32_t HashSize = 1u << 15;
  constexpr int MaxChain = 64;
  std::vector<int64_t> Head(HashSize, -1);
  std::vector<int64_t> Prev(N, -1);

  std::string Out;
  Out.reserve(N / 2);
  size_t CtrlPos = 0; ///< Offset of the pending control byte in Out.
  int CtrlBits = 8;   ///< Flags already used in it (8 = none pending).

  auto BeginToken = [&](bool IsMatch) {
    if (CtrlBits == 8) {
      CtrlPos = Out.size();
      Out += '\0';
      CtrlBits = 0;
    }
    if (IsMatch)
      Out[CtrlPos] |= static_cast<char>(1u << CtrlBits);
    ++CtrlBits;
  };
  auto Insert = [&](size_t I) {
    if (I + 4 > N)
      return;
    uint32_t H = lzssHash(D + I) & (HashSize - 1);
    Prev[I] = Head[H];
    Head[H] = static_cast<int64_t>(I);
  };

  size_t I = 0;
  while (I < N) {
    size_t BestLen = 0, BestPos = 0;
    if (I + LzssMinMatch <= N) {
      int64_t Cand = Head[lzssHash(D + I) & (HashSize - 1)];
      int Walk = 0;
      while (Cand >= 0 && Walk++ < MaxChain) {
        size_t C = static_cast<size_t>(Cand);
        if (I - C > LzssWindow)
          break;
        size_t Limit = std::min(N - I, LzssMaxMatch);
        size_t L = 0;
        while (L < Limit && D[C + L] == D[I + L])
          ++L;
        if (L > BestLen) {
          BestLen = L;
          BestPos = C;
          if (L == Limit)
            break;
        }
        Cand = Prev[C];
      }
    }
    if (BestLen >= LzssMinMatch) {
      BeginToken(true);
      size_t Off = I - BestPos - 1;
      Out += static_cast<char>(Off & 0xff);
      Out += static_cast<char>((Off >> 8) & 0xff);
      Out += static_cast<char>(BestLen - LzssMinMatch);
      for (size_t K = 0; K < BestLen; ++K)
        Insert(I + K);
      I += BestLen;
    } else {
      BeginToken(false);
      Out += static_cast<char>(D[I]);
      Insert(I);
      ++I;
    }
  }
  return Out;
}

/// Decompresses the LZSS stream at Data[Pos..] into exactly \p N bytes.
/// Every malformation -- overrunning input, an offset past the produced
/// prefix, producing too many or too few bytes, trailing stream bytes --
/// fails; the caches treat that as a miss.
static bool lzssDecompress(const std::string &Data, size_t Pos, uint64_t N,
                           std::string &Out, std::string &Err) {
  // A match token (3 bytes + a control bit) yields at most LzssMaxMatch
  // bytes, so a claimed size beyond that ratio cannot be honest; checking
  // up front keeps a hostile header from forcing a huge allocation.
  if (N > (Data.size() - Pos) * LzssMaxMatch) {
    Err = "HGB compressed body claims an impossible size";
    return false;
  }
  Out.clear();
  Out.reserve(N);
  unsigned Ctrl = 0, CtrlBits = 0;
  while (Out.size() < N) {
    if (CtrlBits == 0) {
      if (Pos >= Data.size()) {
        Err = "truncated HGB compressed body";
        return false;
      }
      Ctrl = static_cast<unsigned char>(Data[Pos++]);
      CtrlBits = 8;
    }
    bool IsMatch = Ctrl & 1;
    Ctrl >>= 1;
    --CtrlBits;
    if (IsMatch) {
      if (Pos + 3 > Data.size()) {
        Err = "truncated HGB compressed body";
        return false;
      }
      size_t Off = static_cast<unsigned char>(Data[Pos]) |
                   (static_cast<size_t>(
                        static_cast<unsigned char>(Data[Pos + 1]))
                    << 8);
      size_t Len =
          static_cast<unsigned char>(Data[Pos + 2]) + LzssMinMatch;
      Pos += 3;
      if (Off + 1 > Out.size() || Out.size() + Len > N) {
        Err = "malformed HGB compressed body";
        return false;
      }
      // Byte-at-a-time on purpose: overlapping matches (offset < length)
      // are legal and replicate the just-written bytes.
      size_t From = Out.size() - Off - 1;
      for (size_t K = 0; K < Len; ++K)
        Out += Out[From + K];
    } else {
      if (Pos >= Data.size()) {
        Err = "truncated HGB compressed body";
        return false;
      }
      Out += Data[Pos++];
    }
  }
  if (Pos != Data.size()) {
    Err = "trailing bytes after HGB compressed body";
    return false;
  }
  return true;
}

bool herbgrind::wire::isBinary(const std::string &Data) {
  return Data.size() >= 4 &&
         std::memcmp(Data.data(), HgbMagic, sizeof(HgbMagic)) == 0;
}

bool herbgrind::wire::sniffBinary(const std::string &Data, Family &F,
                                  int &Major, int &Minor) {
  BinaryDecoder D(Data);
  if (!D.ok())
    return false;
  F = D.family();
  Major = D.major();
  Minor = D.minor();
  return true;
}

//===----------------------------------------------------------------------===//
// BinaryEncoder
//===----------------------------------------------------------------------===//

BinaryEncoder::BinaryEncoder(Family F, int Major, int Minor) {
  Out.append(reinterpret_cast<const char *>(HgbMagic), sizeof(HgbMagic));
  varint(static_cast<uint64_t>(F));
  varint(static_cast<uint64_t>(Major));
  varint(static_cast<uint64_t>(Minor));
  HeaderLen = Out.size();
}

std::string BinaryEncoder::take() {
  const size_t BodyLen = Out.size() - HeaderLen;
  std::string Res;
  if (BodyLen >= LzssMinBody) {
    std::string Packed = lzssCompress(
        reinterpret_cast<const unsigned char *>(Out.data()) + HeaderLen,
        BodyLen);
    Res.assign(Out, 0, HeaderLen);
    Res += static_cast<char>(BodyLzss);
    appendVarint(Res, BodyLen);
    Res += Packed;
    // Compression must actually win; a raw body costs one codec byte.
    if (Res.size() < Out.size() + 1)
      return Res;
  }
  Res.assign(Out, 0, HeaderLen);
  Res += static_cast<char>(BodyRaw);
  Res.append(Out, HeaderLen, std::string::npos);
  return Res;
}

void BinaryEncoder::varint(uint64_t V) {
  while (V >= 0x80) {
    Out += static_cast<char>((V & 0x7f) | 0x80);
    V >>= 7;
  }
  Out += static_cast<char>(V);
}

void BinaryEncoder::i64(int64_t V) {
  // Zigzag: small magnitudes of either sign stay small on the wire.
  varint((static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63));
}

void BinaryEncoder::dbl(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  for (int I = 0; I < 8; ++I)
    Out += static_cast<char>((Bits >> (8 * I)) & 0xff);
}

void BinaryEncoder::str(const std::string &S) {
  auto It = Intern.find(S);
  if (It != Intern.end()) {
    varint(It->second);
    return;
  }
  varint(0);
  varint(S.size());
  Out += S;
  Intern.emplace(S, static_cast<uint32_t>(Intern.size() + 1));
}

//===----------------------------------------------------------------------===//
// BinaryDecoder
//===----------------------------------------------------------------------===//

bool BinaryDecoder::truncated() {
  return fail(format("%s: truncated HGB document", Ctx));
}

BinaryDecoder::BinaryDecoder(const std::string &D) : Data(D), Src(&D) {
  if (!isBinary(Data)) {
    fail("not an HGB document (bad magic)");
    return;
  }
  Pos = sizeof(HgbMagic);
  uint64_t F, Ma, Mi;
  if (!varint(F) || !varint(Ma) || !varint(Mi)) {
    fail("truncated HGB header");
    return;
  }
  if (F < 1 || F > 6) {
    fail(format("unknown HGB family tag %llu",
                static_cast<unsigned long long>(F)));
    return;
  }
  Fam = static_cast<Family>(F);
  Major = static_cast<int>(Ma);
  Minor = static_cast<int>(Mi);
  unsigned char Codec;
  if (!byte(Codec)) {
    fail("truncated HGB header");
    return;
  }
  if (Codec == BodyLzss) {
    uint64_t BodyLen;
    std::string DecompErr;
    if (!varint(BodyLen)) {
      fail("truncated HGB header");
      return;
    }
    if (!lzssDecompress(Data, Pos, BodyLen, Owned, DecompErr)) {
      fail(DecompErr);
      return;
    }
    Src = &Owned;
    Pos = 0;
  } else if (Codec != BodyRaw) {
    fail(format("unknown HGB body codec %u", Codec));
    return;
  }
  HeaderOk = true;
}

bool BinaryDecoder::byte(unsigned char &B) {
  if (Pos >= Src->size())
    return truncated();
  B = static_cast<unsigned char>((*Src)[Pos++]);
  return true;
}

bool BinaryDecoder::varint(uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    unsigned char B;
    if (!byte(B))
      return false;
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
  }
  return fail("varint longer than 64 bits");
}

bool BinaryDecoder::beginObject() {
  if (++Depth > MaxDepth)
    return fail("HGB document nests too deeply");
  return true;
}

bool BinaryDecoder::endObject() {
  --Depth;
  return true;
}

bool BinaryDecoder::beginArray(uint64_t &Count) {
  if (++Depth > MaxDepth)
    return fail("HGB document nests too deeply");
  return varint(Count);
}

bool BinaryDecoder::endArray() {
  --Depth;
  return true;
}

bool BinaryDecoder::i64(int64_t &V) {
  uint64_t Z;
  if (!varint(Z))
    return false;
  V = static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  return true;
}

bool BinaryDecoder::dbl(double &V) {
  if (Pos + 8 > Src->size())
    return truncated();
  uint64_t Bits = 0;
  for (int I = 0; I < 8; ++I)
    Bits |= static_cast<uint64_t>(
                static_cast<unsigned char>((*Src)[Pos + I]))
            << (8 * I);
  Pos += 8;
  std::memcpy(&V, &Bits, sizeof(V));
  return true;
}

bool BinaryDecoder::boolean(bool &V) {
  unsigned char B;
  if (!byte(B))
    return false;
  if (B > 1)
    return fail("malformed boolean byte");
  V = B != 0;
  return true;
}

bool BinaryDecoder::str(std::string &S) {
  uint64_t Ref;
  if (!varint(Ref))
    return false;
  if (Ref > 0) {
    if (Ref > Table.size())
      return fail(format("string table reference %llu out of range",
                         static_cast<unsigned long long>(Ref)));
    S = Table[Ref - 1];
    return true;
  }
  uint64_t Len;
  if (!varint(Len))
    return false;
  if (Len > Src->size() - Pos)
    return truncated();
  S.assign(*Src, Pos, Len);
  Pos += Len;
  Table.push_back(S);
  return true;
}

bool BinaryDecoder::present(const char *Key, bool &P) {
  LastKey = Key;
  unsigned char B;
  if (!byte(B))
    return false;
  if (B > 1)
    return fail("malformed presence byte");
  P = B != 0;
  return true;
}

bool BinaryDecoder::variant(const char *const *Keys, unsigned NumKeys,
                            unsigned &Tag) {
  uint64_t T;
  if (!varint(T))
    return false;
  if (T > NumKeys)
    return fail(format("variant tag %llu out of range",
                       static_cast<unsigned long long>(T)));
  Tag = static_cast<unsigned>(T);
  return true;
}
