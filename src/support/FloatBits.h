//===- support/FloatBits.h - Bit-level float utilities ----------*- C++ -*-===//
//
// Part of herbgrind-cpp, a reproduction of "Finding Root Causes of Floating
// Point Error" (PLDI 2018). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level utilities on IEEE-754 floats: bit casts, the ordinal (integer
/// lattice) encoding of doubles, ULP distances, and the bits-of-error metric
/// E(approx, exact) = log2(ulps + 1) used throughout the analysis (the same
/// metric Herbie and Herbgrind report).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_FLOATBITS_H
#define HERBGRIND_SUPPORT_FLOATBITS_H

#include <cstdint>
#include <cstring>

namespace herbgrind {

/// Reinterprets a double as its raw IEEE-754 bit pattern.
inline uint64_t bitsOfDouble(double X) {
  uint64_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits;
}

/// Reinterprets a raw IEEE-754 bit pattern as a double.
inline double doubleFromBits(uint64_t Bits) {
  double X;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

/// Reinterprets a float as its raw IEEE-754 bit pattern.
inline uint32_t bitsOfFloat(float X) {
  uint32_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits;
}

/// Reinterprets a raw IEEE-754 bit pattern as a float.
inline float floatFromBits(uint32_t Bits) {
  float X;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

/// Maps a double onto a signed integer ordinal such that the ordering of
/// ordinals matches the ordering of the doubles and adjacent representable
/// doubles have adjacent ordinals. Both zeros map to ordinal 0.
int64_t ordinalOfDouble(double X);

/// Inverse of ordinalOfDouble (ordinal 0 maps back to +0.0).
double doubleFromOrdinal(int64_t Ordinal);

/// Maps a float onto a signed integer ordinal (see ordinalOfDouble).
int32_t ordinalOfFloat(float X);

/// Inverse of ordinalOfFloat.
float floatFromOrdinal(int32_t Ordinal);

/// Number of representable doubles strictly between \p A and \p B, plus one
/// when they differ; 0 when they are equal (or both zeros). Saturates instead
/// of overflowing. NaNs are handled by bitsOfErrorDouble, not here.
uint64_t ulpsBetweenDoubles(double A, double B);

/// Number of representable floats between \p A and \p B (see
/// ulpsBetweenDoubles).
uint32_t ulpsBetweenFloats(float A, float B);

/// The bits-of-error metric for doubles: log2(ulps(Approx, Exact) + 1).
/// Two NaNs count as agreeing (0 bits); a NaN versus a non-NaN counts as
/// maximal error (64 bits). The result lies in [0, 64].
double bitsOfErrorDouble(double Approx, double Exact);

/// The bits-of-error metric for floats; the result lies in [0, 32].
double bitsOfErrorFloat(float Approx, float Exact);

/// The next representable double above \p X.
double nextDouble(double X);

/// The next representable double below \p X.
double prevDouble(double X);

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_FLOATBITS_H
