//===- support/Rng.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic xoshiro256** generator plus the float-sampling helpers
/// used by the improver and the Verrou baseline. All randomness in the repo
/// flows through this class so experiments are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_RNG_H
#define HERBGRIND_SUPPORT_RNG_H

#include <cstdint>

namespace herbgrind {

/// xoshiro256** seeded through SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed.
  void reseed(uint64_t Seed);

  /// The next raw 64-bit output.
  uint64_t next();

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform real in [0, 1).
  double nextUnit();

  /// Uniform real in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// A double sampled uniformly over the *ordinals* between Lo and Hi
  /// (inclusive). This matches Herbie's sampling strategy: it covers many
  /// orders of magnitude instead of clustering near the large end.
  double betweenOrdinals(double Lo, double Hi);

  /// A finite double sampled uniformly over all finite bit patterns.
  double anyFiniteDouble();

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

private:
  uint64_t State[4];
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_RNG_H
