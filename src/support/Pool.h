//===- support/Pool.h - Stack-backed pool allocator -------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "custom stack-backed pool allocators" of Section 6 of the paper:
/// shadow values and trace nodes are allocated and freed at a very high rate,
/// so each such type gets a pool of fixed-size slots with a free-list stack.
/// The pool can be disabled (falling back to new/delete) so the optimization
/// ablation bench can measure its effect. reset() recycles a drained pool --
/// slabs are kept and the slot cursor rewinds -- which is how the batch
/// engine reuses shard-local arenas across runs instead of rebuilding them.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_POOL_H
#define HERBGRIND_SUPPORT_POOL_H

#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace herbgrind {

/// A fixed-size-slot pool for objects of type T. Freed slots are pushed onto
/// a stack (LIFO reuse keeps hot slots in cache). Slabs grow geometrically
/// and are only released when the pool is destroyed.
template <typename T> class Pool {
public:
  explicit Pool(bool Enabled = true) : Enabled(Enabled) {}

  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  ~Pool() { checkDrained("destroyed"); }

  /// Allocates and constructs an object.
  template <typename... Args> T *create(Args &&...CtorArgs) {
    ++LiveCount;
    if (TotalAllocated < SIZE_MAX)
      ++TotalAllocated;
    if (!Enabled)
      return new T(std::forward<Args>(CtorArgs)...);
    void *Slot = takeSlot();
    return new (Slot) T(std::forward<Args>(CtorArgs)...);
  }

  /// Destroys and releases an object previously returned by create().
  void destroy(T *Object) {
    assert(Object && "destroying null object");
    assert(LiveCount > 0 && "destroy without matching create");
    --LiveCount;
    if (!Enabled) {
      delete Object;
      return;
    }
    Object->~T();
    FreeStack.push_back(Object);
  }

  /// Recycles the pool for a fresh round of allocations without releasing
  /// its slabs: the free stack empties and the slot cursor rewinds, so the
  /// next create() round reuses the already-grown slabs front to back.
  /// Requires every object to have been destroy()ed first. Safe on a pool
  /// constructed disabled (there is nothing pooled to recycle).
  void reset() {
    checkDrained("reset");
    FreeStack.clear();
    CurSlab = 0;
    NextInSlab = 0;
  }

  /// Number of currently live objects.
  size_t live() const { return LiveCount; }

  /// Number of create() calls over the pool's lifetime (reset() does not
  /// rewind this; it is the cumulative cost statistic).
  size_t totalAllocated() const { return TotalAllocated; }

  /// Whether pooled allocation is in effect (vs. plain new/delete).
  bool enabled() const { return Enabled; }

private:
  /// Enforces the pool-is-empty precondition; the assert macro cannot
  /// interpolate the count, so report it first and name the actual leak
  /// size. Aborts even in NDEBUG builds: proceeding (destroying slabs
  /// under live objects, or rewinding the cursor over them) would turn a
  /// loud leak into silent aliasing corruption.
  void checkDrained(const char *What) {
    if (LiveCount != 0) {
      std::fprintf(stderr, "Pool %s with %zu live object(s) of size %zu\n",
                   What, LiveCount, sizeof(T));
      std::abort();
    }
  }

  union Slot {
    alignas(T) unsigned char Storage[sizeof(T)];
  };

  struct Slab {
    std::unique_ptr<Slot[]> Mem;
    size_t Size = 0;
  };

  void *takeSlot() {
    if (!FreeStack.empty()) {
      void *Result = FreeStack.back();
      FreeStack.pop_back();
      return Result;
    }
    while (CurSlab < Slabs.size()) {
      if (NextInSlab < Slabs[CurSlab].Size)
        return &Slabs[CurSlab].Mem[NextInSlab++];
      ++CurSlab;
      NextInSlab = 0;
    }
    size_t NewSize = Slabs.empty() ? 64 : Slabs.back().Size * 2;
    if (NewSize > 65536)
      NewSize = 65536;
    Slabs.push_back({std::make_unique<Slot[]>(NewSize), NewSize});
    CurSlab = Slabs.size() - 1;
    NextInSlab = 1;
    return &Slabs.back().Mem[0];
  }

  bool Enabled;
  std::vector<Slab> Slabs;
  size_t CurSlab = 0;
  size_t NextInSlab = 0;
  std::vector<void *> FreeStack;
  size_t LiveCount = 0;
  size_t TotalAllocated = 0;
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_POOL_H
