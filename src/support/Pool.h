//===- support/Pool.h - Stack-backed pool allocator -------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "custom stack-backed pool allocators" of Section 6 of the paper:
/// shadow values and trace nodes are allocated and freed at a very high rate,
/// so each such type gets a pool of fixed-size slots with a free-list stack.
/// The pool can be disabled (falling back to new/delete) so the optimization
/// ablation bench can measure its effect.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_POOL_H
#define HERBGRIND_SUPPORT_POOL_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace herbgrind {

/// A fixed-size-slot pool for objects of type T. Freed slots are pushed onto
/// a stack (LIFO reuse keeps hot slots in cache). Slabs grow geometrically
/// and are only released when the pool is destroyed.
template <typename T> class Pool {
public:
  explicit Pool(bool Enabled = true) : Enabled(Enabled) {}

  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  ~Pool() {
    assert(LiveCount == 0 && "pool destroyed with live objects");
  }

  /// Allocates and constructs an object.
  template <typename... Args> T *create(Args &&...CtorArgs) {
    ++LiveCount;
    if (TotalAllocated < SIZE_MAX)
      ++TotalAllocated;
    if (!Enabled)
      return new T(std::forward<Args>(CtorArgs)...);
    void *Slot = takeSlot();
    return new (Slot) T(std::forward<Args>(CtorArgs)...);
  }

  /// Destroys and releases an object previously returned by create().
  void destroy(T *Object) {
    assert(Object && "destroying null object");
    assert(LiveCount > 0 && "destroy without matching create");
    --LiveCount;
    if (!Enabled) {
      delete Object;
      return;
    }
    Object->~T();
    FreeStack.push_back(Object);
  }

  /// Number of currently live objects.
  size_t live() const { return LiveCount; }

  /// Number of create() calls over the pool's lifetime.
  size_t totalAllocated() const { return TotalAllocated; }

  /// Whether pooled allocation is in effect (vs. plain new/delete).
  bool enabled() const { return Enabled; }

private:
  union Slot {
    alignas(T) unsigned char Storage[sizeof(T)];
  };

  void *takeSlot() {
    if (!FreeStack.empty()) {
      void *Result = FreeStack.back();
      FreeStack.pop_back();
      return Result;
    }
    if (NextInSlab == SlabSize || Slabs.empty()) {
      SlabSize = Slabs.empty() ? 64 : SlabSize * 2;
      if (SlabSize > 65536)
        SlabSize = 65536;
      Slabs.push_back(std::make_unique<Slot[]>(SlabSize));
      NextInSlab = 0;
    }
    return &Slabs.back()[NextInSlab++];
  }

  bool Enabled;
  std::vector<std::unique_ptr<Slot[]>> Slabs;
  size_t SlabSize = 0;
  size_t NextInSlab = 0;
  std::vector<void *> FreeStack;
  size_t LiveCount = 0;
  size_t TotalAllocated = 0;
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_POOL_H
