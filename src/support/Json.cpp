//===- support/Json.cpp - Minimal JSON reader -----------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdlib>

using namespace herbgrind;

double JsonValue::asDouble() const {
  if (K != Kind::Number)
    return 0.0;
  return std::strtod(Num.c_str(), nullptr);
}

uint64_t JsonValue::asU64() const {
  if (K != Kind::Number)
    return 0;
  return std::strtoull(Num.c_str(), nullptr, 10);
}

int64_t JsonValue::asI64() const {
  if (K != Kind::Number)
    return 0;
  return std::strtoll(Num.c_str(), nullptr, 10);
}

const JsonValue *JsonValue::field(const char *Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Key, Val] : Obj)
    if (Key == Name)
      return &Val;
  return nullptr;
}

namespace {

/// Recursive-descent parser over the document text.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value, 0)) {
      R.Error = Err;
      R.ErrorOffset = ErrOff;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = "trailing garbage after document";
      R.ErrorOffset = Pos;
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  // Deep enough for any real report (symbolic expressions are depth-
  // bounded by the analysis config), small enough to never smash the
  // stack on adversarial input.
  static constexpr int MaxDepth = 512;

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
  size_t ErrOff = 0;

  bool fail(const std::string &Message) {
    if (Err.empty()) {
      Err = Message;
      ErrOff = Pos;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        return;
      ++Pos;
    }
  }

  bool literal(const char *Word) {
    size_t N = 0;
    while (Word[N])
      ++N;
    if (Text.compare(Pos, N, Word) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of document");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!literal("true"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Null;
      return true;
    // The writers' nonfinite extension (see Json.h).
    case 'N':
      if (!literal("NAN"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Number;
      Out.Num = "NAN";
      return true;
    case 'I':
      if (!literal("INFINITY"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Number;
      Out.Num = "INFINITY";
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue Val;
      if (!parseValue(Val, Depth + 1))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Val;
      if (!parseValue(Val, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool hexDigit(char C, unsigned &D) {
    if (C >= '0' && C <= '9')
      D = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<unsigned>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      D = static_cast<unsigned>(C - 'A' + 10);
    else
      return false;
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  /// Reads the 4 hex digits of a \uXXXX escape (cursor already past the
  /// 'u').
  bool hexQuad(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned D;
      if (!hexDigit(Text[Pos + I], D))
        return fail("invalid \\u escape");
      Code = (Code << 4) | D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!hexQuad(Code))
          return false;
        if (Code >= 0xd800 && Code <= 0xdbff) {
          // High surrogate: a low surrogate must follow, and the pair
          // decodes to one supplementary-plane code point.
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("high surrogate without a \\u low surrogate");
          Pos += 2;
          unsigned Low;
          if (!hexQuad(Low))
            return false;
          if (Low < 0xdc00 || Low > 0xdfff)
            return fail("high surrogate followed by a non-low surrogate");
          Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
        } else if (Code >= 0xdc00 && Code <= 0xdfff) {
          return fail("unpaired low surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    // -INFINITY: the only signed word token the writers produce.
    if (Pos < Text.size() && Text[Pos] == 'I') {
      if (!literal("INFINITY"))
        return fail("invalid token");
      Out.K = JsonValue::Kind::Number;
      Out.Num = Text.substr(Start, Pos - Start);
      return true;
    }
    size_t DigitsStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos == DigitsStart)
      return fail("invalid number");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      size_t FracStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == FracStart)
        return fail("digits required after decimal point");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      size_t ExpStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == ExpStart)
        return fail("digits required in exponent");
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = Text.substr(Start, Pos - Start);
    return true;
  }
};

} // namespace

JsonParseResult herbgrind::parseJson(const std::string &Text) {
  return Parser(Text).run();
}
