//===- support/Metrics.h - Lock-cheap metrics registry ----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide telemetry registry: named counters, gauges, and timer
/// histograms that every subsystem (engine, thread pool, result cache,
/// limb allocator, batch improver, op profiler) reports into, surfaced as
/// one merged snapshot by `herbgrind_batch --metrics-out` and the
/// `--progress` heartbeat.
///
/// The design goal is a hot path cheap enough to leave always on:
///
///  * **Counters and timers are per-thread sharded.** Each thread owns a
///    slab of relaxed-atomic cells; `Counter::add` is one uncontended
///    fetch_add on the calling thread's cell, with no lock and no
///    cross-core cache-line traffic. `snapshot()` merges the slabs (plus
///    the retained totals of threads that have exited -- pool workers die
///    with their pool, their counts must not).
///
///  * **Gauges are single shared cells.** Level signals (queue depth,
///    shards-total) do not sum across threads, so a gauge is one atomic
///    value plus a high-watermark, updated wherever the level changes.
///
///  * **Registration is by name, idempotent, and cheap to cache.** Call
///    `metrics::counter("engine.shards_done")` once (a function-local
///    static is the intended idiom) and keep the returned handle; the
///    handle is a plain index, trivially copyable.
///
/// Telemetry is strictly observational: nothing here feeds analysis
/// output, so enabling any of it cannot perturb report bytes (tested in
/// test_telemetry.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_METRICS_H
#define HERBGRIND_SUPPORT_METRICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace herbgrind {
namespace metrics {

/// Monotonic wall-clock nanoseconds (steady_clock); the time base of
/// timers, spans, and the op profiler.
uint64_t nowNanos();

/// A monotonically increasing count (events, bytes, nanoseconds). Handles
/// are plain indices: copy them freely, keep them in statics.
class Counter {
public:
  Counter() = default;
  /// Adds \p N on the calling thread's shard (relaxed, uncontended).
  void add(uint64_t N = 1) const;

private:
  friend Counter counter(const char *Name);
  explicit Counter(uint32_t Cell) : Cell(Cell) {}
  uint32_t Cell = UINT32_MAX;
};

/// Registers (or finds) the counter named \p Name.
Counter counter(const char *Name);

/// A level signal (queue depth, shards in flight). One shared cell: set
/// and add are atomic; the snapshot also reports the historical maximum.
class Gauge {
public:
  Gauge() = default;
  void set(int64_t V) const;
  void add(int64_t D) const;
  void sub(int64_t D) const { add(-D); }

private:
  friend Gauge gauge(const char *Name);
  explicit Gauge(void *CellPtr) : CellPtr(CellPtr) {}
  void *CellPtr = nullptr;
};

/// Registers (or finds) the gauge named \p Name.
Gauge gauge(const char *Name);

/// Histogram bucket count: durations bucket by floor(log2(nanoseconds)),
/// clamped to the last bucket (2^31 ns ~ 2.1 s and beyond).
constexpr unsigned TimerBuckets = 32;

/// A duration histogram: count, sum, max, and log2-of-nanoseconds
/// buckets, all per-thread sharded like counters.
class Timer {
public:
  Timer() = default;
  void record(uint64_t Nanos) const;

private:
  friend Timer timer(const char *Name);
  explicit Timer(uint32_t Cell) : Cell(Cell) {}
  /// Base of a contiguous cell block: [count, sum, max, buckets...].
  uint32_t Cell = UINT32_MAX;
};

/// Registers (or finds) the timer named \p Name.
Timer timer(const char *Name);

/// RAII span timing: records the enclosing scope's duration on exit.
class ScopedTimer {
public:
  explicit ScopedTimer(Timer T) : T(T), Start(nowNanos()) {}
  ~ScopedTimer() { T.record(nowNanos() - Start); }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Timer T;
  uint64_t Start;
};

/// \name Snapshot: the merged view of every registered metric
/// @{

struct CounterSample {
  std::string Name;
  uint64_t Value = 0;
};

struct GaugeSample {
  std::string Name;
  int64_t Value = 0;
  int64_t Max = 0; ///< Historical maximum since the last resetAll().
};

struct TimerSample {
  std::string Name;
  uint64_t Count = 0;
  uint64_t SumNanos = 0;
  uint64_t MaxNanos = 0;
  std::array<uint64_t, TimerBuckets> Buckets{};
};

/// One merged, name-sorted view over all threads (live and exited).
struct Snapshot {
  std::vector<CounterSample> Counters;
  std::vector<GaugeSample> Gauges;
  std::vector<TimerSample> Timers;

  /// Convenience lookups; a missing name reads as zero / null.
  uint64_t counterValue(const std::string &Name) const;
  const GaugeSample *findGauge(const std::string &Name) const;
  const TimerSample *findTimer(const std::string &Name) const;

  /// Folds another snapshot into this one, name by name (missing names
  /// are inserted; the result stays name-sorted). This is the merge
  /// algebra that makes telemetry documents from distributed sweep
  /// slices aggregatable: counters sum; timers sum Count/SumNanos and
  /// every histogram bucket and take the max of MaxNanos; gauges treat
  /// Value and Max as additive levels (two machines' worker counts,
  /// queue depths, and shard-slice totals add -- so the summed watermark
  /// is an upper bound on the true combined peak, and slice totals like
  /// engine.shards_total recover the single-machine value exactly).
  /// The fold is associative and commutative with the empty snapshot as
  /// identity, so any merge tree over the same docs gives the same bytes.
  void mergeFrom(const Snapshot &Other);
};

/// Merges every thread's shards into one snapshot (sorted by name, so
/// rendering is deterministic given deterministic values).
Snapshot snapshot();

/// Zeroes every counter, gauge, timer, and retained exited-thread total.
/// Registration survives. Meant for process/test boundaries; concurrent
/// writers see a benign torn reset, never corruption.
void resetAll();

/// @}

} // namespace metrics
} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_METRICS_H
