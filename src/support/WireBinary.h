//===- support/WireBinary.h - HGB compact binary wire format ----*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HGB: the length-prefixed compact binary backend of the wire codec
/// (`support/Wire.h`). One HGB document is:
///
///   header:  magic 0x89 'H' 'G' 'B'  |  family varint  |  major varint
///            |  minor varint  |  codec byte
///   body:    the document's schema traversal, positionally encoded;
///            codec 0 stores it raw, codec 1 stores a varint decoded
///            length followed by an LZSS token stream (see below)
///
/// Scalar encodings: unsigned integers are LEB128 varints, signed
/// integers are zigzag varints, doubles are the 8 raw IEEE-754 bytes
/// little-endian (round-trip is trivially bit-exact, NaN payloads
/// included), booleans and optional-presence markers are one byte,
/// arrays are a count varint followed by the elements, and object
/// begin/end plus field keys occupy zero bytes (field identity is the
/// traversal position). Strings go through a streaming interned table:
/// varint 0 introduces a new string (length varint + bytes, appended to
/// the table), varint k > 0 references table[k-1] -- so the repeated
/// HG_LOC file/function and opcode names that dominate report documents
/// cost two or three bytes after first use.
///
/// Interning alone cannot shrink the long FPCore texts that dominate
/// report documents (each is unique), so the encoder additionally
/// LZSS-compresses the whole body when that wins: a control byte carries
/// eight flags (LSB first), flag 0 is a literal byte, flag 1 a match of
/// 2-byte little-endian (offset - 1) plus 1-byte (length - 4), window
/// 64 KiB, match lengths 4..259. Greedy matching with hash chains keeps
/// encode single-pass and deterministic. Small bodies (or bodies the
/// tokens would grow) stay raw under codec 0, so the format never
/// regresses.
///
/// The first magic byte is deliberately non-ASCII: a reader sniffs
/// JSON ('{') vs HGB (0x89) vs garbage from the first byte alone, which
/// is how the result cache and shard merging accept either format.
///
/// Version discipline matches the JSON envelope: readers accept any
/// minor of a known major and reject unknown majors.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_WIREBINARY_H
#define HERBGRIND_SUPPORT_WIREBINARY_H

#include "support/Wire.h"

#include <unordered_map>

namespace herbgrind {
namespace wire {

/// The 4-byte HGB magic. 0x89 cannot start a JSON document (or any
/// UTF-8 text), making format sniffing a one-byte decision.
constexpr unsigned char HgbMagic[4] = {0x89, 'H', 'G', 'B'};

/// True if \p Data starts with the HGB magic.
bool isBinary(const std::string &Data);

/// Reads the family tag from an HGB header without decoding the body.
/// Returns false if the header is malformed or truncated.
bool sniffBinary(const std::string &Data, Family &F, int &Major, int &Minor);

//===----------------------------------------------------------------------===//
// BinaryEncoder
//===----------------------------------------------------------------------===//

class BinaryEncoder : public Encoder {
public:
  /// Writes the HGB header for \p F at version \p Major.\p Minor.
  BinaryEncoder(Family F, int Major, int Minor);

  void beginObject() override {}
  void endObject() override {}
  void beginArray(uint64_t Count) override { varint(Count); }
  void endArray() override {}
  void key(const char *K) override {}
  void u64(uint64_t V) override { varint(V); }
  void i64(int64_t V) override;
  void dbl(double V) override;
  void boolean(bool V) override { Out += static_cast<char>(V ? 1 : 0); }
  void str(const std::string &S) override;
  void str(const char *S) override { str(std::string(S)); }
  void present(bool P) override { Out += static_cast<char>(P ? 1 : 0); }
  void variantTag(unsigned Tag) override { varint(Tag); }

  /// Finalizes the document: picks the body codec (LZSS when it shrinks
  /// the body, raw otherwise) and returns header + codec byte + body.
  std::string take();

private:
  void varint(uint64_t V);

  std::string Out;
  size_t HeaderLen = 0; ///< Bytes of Out occupied by the HGB header.
  std::unordered_map<std::string, uint32_t> Intern; ///< string -> ref (1-based)
};

//===----------------------------------------------------------------------===//
// BinaryDecoder
//===----------------------------------------------------------------------===//

/// Sequential HGB reader. Every read is bounds-checked; malformed or
/// truncated input fails (and the caches treat that as a miss, never an
/// error). Nesting depth is capped like the JSON parser's, so a hostile
/// document cannot recurse the decoder off the stack.
class BinaryDecoder : public Decoder {
public:
  /// Parses the header; on failure ok() is false and error() says why.
  explicit BinaryDecoder(const std::string &Data);

  bool ok() const { return HeaderOk; }
  Family family() const { return Fam; }
  int major() const { return Major; }
  int minor() const { return Minor; }
  /// True once the whole document has been consumed (trailing garbage
  /// after a decode means the document is corrupt).
  bool atEnd() const { return Pos == Src->size(); }

  bool beginObject() override;
  bool endObject() override;
  bool beginArray(uint64_t &Count) override;
  bool element() override { return true; }
  bool endArray() override;
  bool key(const char *K) override {
    LastKey = K;
    return true;
  }
  bool u64(uint64_t &V) override { return varint(V); }
  bool i64(int64_t &V) override;
  bool dbl(double &V) override;
  bool boolean(bool &V) override;
  bool str(std::string &S) override;
  bool present(const char *Key, bool &P) override;
  bool variant(const char *const *Keys, unsigned NumKeys,
               unsigned &Tag) override;

private:
  bool varint(uint64_t &V);
  bool byte(unsigned char &B);
  bool truncated();

  const std::string &Data;
  std::string Owned;              ///< Decompressed body (codec 1 only).
  const std::string *Src = nullptr; ///< What reads consume: &Data or &Owned.
  size_t Pos = 0;
  unsigned Depth = 0;
  bool HeaderOk = false;
  Family Fam = Family::Shard;
  int Major = 0, Minor = 0;
  const char *LastKey = nullptr;
  std::vector<std::string> Table; ///< Interned strings, in intern order.
};

} // namespace wire
} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_WIREBINARY_H
