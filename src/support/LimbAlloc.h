//===- support/LimbAlloc.h - Recycled limb storage --------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation substrate of the shadow hot path. Two pieces:
///
///  * `limballoc`: a per-thread, size-bucketed cache of limb blocks. Every
///    spilled mantissa and every oversized scratch buffer draws from it, so
///    steady-state shadow execution -- including the transcendental kernels,
///    which work above the inline capacity -- performs no heap allocation:
///    blocks released by one operation are reused by the next. This is the
///    "per-thread scratch workspace" of the allocation-free design; the
///    counters it exposes are how the benches prove the zero-allocation
///    claim.
///
///  * `InlineLimbs<Cap>`: a small-size-optimized limb vector. Up to \p Cap
///    limbs live inline in the object; larger sizes spill to a limballoc
///    block. BigFloat stores its mantissa in an `InlineLimbs<4>` (256 bits,
///    the default shadow precision), and the arithmetic kernels use wider
///    instantiations as stack scratch.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_LIMBALLOC_H
#define HERBGRIND_SUPPORT_LIMBALLOC_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace herbgrind {
namespace limballoc {

/// Acquires a zero-uninitialized block of at least \p Limbs limbs from the
/// calling thread's cache (or the heap on a cold miss). The actual capacity
/// granted is returned through \p CapOut and must be passed back to
/// release().
uint64_t *acquire(size_t Limbs, size_t &CapOut);

/// Returns a block to the calling thread's cache (or the heap when the
/// cache is full or the block is oversized).
void release(uint64_t *Ptr, size_t Cap);

/// \name Per-thread instrumentation counters.
/// The benches assert the zero-allocation property with these: in steady
/// state `heapAllocs()` stops moving while `cacheHits()` keeps counting.
/// @{
uint64_t heapAllocs();  ///< Blocks that hit operator new[] on this thread.
uint64_t cacheHits();   ///< Blocks served from this thread's cache.
void resetCounters();   ///< Zeroes both counters (thread-local).
/// @}

} // namespace limballoc

/// A limb vector with \p InlineCap limbs of inline storage and limballoc
/// spill. Assignment-only by design: both mutators (assignZeros,
/// assignCopy) overwrite the full new size, and capacity growth does NOT
/// preserve prior contents. Once spilled, the heap block is kept for the
/// object's lifetime so destination-passing loops reuse capacity instead
/// of reallocating.
template <unsigned InlineCap> class InlineLimbs {
public:
  InlineLimbs() = default;

  InlineLimbs(const InlineLimbs &O) { assignCopy(O.data(), O.size()); }

  InlineLimbs(InlineLimbs &&O) noexcept {
    stealFrom(O);
  }

  InlineLimbs &operator=(const InlineLimbs &O) {
    if (this != &O)
      assignCopy(O.data(), O.size());
    return *this;
  }

  InlineLimbs &operator=(InlineLimbs &&O) noexcept {
    if (this == &O)
      return *this;
    if (HeapPtr)
      limballoc::release(HeapPtr, HeapCap);
    stealFrom(O);
    return *this;
  }

  ~InlineLimbs() {
    if (HeapPtr)
      limballoc::release(HeapPtr, HeapCap);
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  uint64_t *data() { return HeapPtr ? HeapPtr : InlineBuf; }
  const uint64_t *data() const { return HeapPtr ? HeapPtr : InlineBuf; }

  uint64_t operator[](size_t I) const {
    assert(I < Count && "limb index out of range");
    return data()[I];
  }
  uint64_t &operator[](size_t I) {
    assert(I < Count && "limb index out of range");
    return data()[I];
  }

  uint64_t back() const {
    assert(Count > 0 && "back of empty limb vector");
    return data()[Count - 1];
  }

  /// Sets the size to \p N with every limb zero.
  void assignZeros(size_t N) {
    ensureCap(N);
    std::memset(data(), 0, N * sizeof(uint64_t));
    Count = static_cast<uint32_t>(N);
  }

  /// Copies \p N limbs from \p P (which must not alias this storage).
  void assignCopy(const uint64_t *P, size_t N) {
    ensureCap(N);
    if (N)
      std::memcpy(data(), P, N * sizeof(uint64_t));
    Count = static_cast<uint32_t>(N);
  }

private:
  /// Grows capacity; existing contents are NOT preserved (both assign
  /// forms overwrite the full new size).
  void ensureCap(size_t N) {
    size_t Cap = HeapPtr ? HeapCap : InlineCap;
    if (N <= Cap)
      return;
    size_t NewCap = 0;
    uint64_t *Block = limballoc::acquire(N, NewCap);
    if (HeapPtr)
      limballoc::release(HeapPtr, HeapCap);
    HeapPtr = Block;
    HeapCap = static_cast<uint32_t>(NewCap);
  }

  void stealFrom(InlineLimbs &O) {
    Count = O.Count;
    HeapPtr = O.HeapPtr;
    HeapCap = O.HeapCap;
    if (!HeapPtr && Count)
      std::memcpy(InlineBuf, O.InlineBuf, Count * sizeof(uint64_t));
    O.HeapPtr = nullptr;
    O.HeapCap = 0;
    O.Count = 0;
  }

  uint64_t InlineBuf[InlineCap];
  uint64_t *HeapPtr = nullptr;
  uint32_t Count = 0;
  uint32_t HeapCap = 0;
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_LIMBALLOC_H
