//===- support/Events.cpp - Structured NDJSON event stream ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Events.h"

#include "support/Format.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdio>
#include <mutex>

using namespace herbgrind;

namespace {

std::atomic<bool> Enabled{false};
std::mutex SinkMutex; ///< Guards Sink/OwnsSink and serializes writes.
FILE *Sink = nullptr;
bool OwnsSink = false;
std::atomic<uint64_t> Seq{0};

} // namespace

bool herbgrind::events::start(const std::string &Path, std::string &Err) {
  std::lock_guard<std::mutex> Lock(SinkMutex);
  if (Sink) {
    Err = "event stream already started";
    return false;
  }
  if (Path == "-") {
    Sink = stdout;
    OwnsSink = false;
  } else {
    Sink = std::fopen(Path.c_str(), "w");
    if (!Sink) {
      Err = format("cannot open events file '%s'", Path.c_str());
      return false;
    }
    OwnsSink = true;
  }
  Seq.store(0, std::memory_order_relaxed);
  Enabled.store(true, std::memory_order_release);
  return true;
}

void herbgrind::events::stop() {
  Enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(SinkMutex);
  if (!Sink)
    return;
  std::fflush(Sink);
  if (OwnsSink)
    std::fclose(Sink);
  Sink = nullptr;
  OwnsSink = false;
}

bool herbgrind::events::enabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void herbgrind::events::emit(const char *Type, const std::string &FieldsJson) {
  if (!enabled())
    return;
  // Render off-lock; take the sequence number inside the lock so lines
  // land in the file in seq order.
  std::string Line;
  std::lock_guard<std::mutex> Lock(SinkMutex);
  if (!Sink)
    return;
  uint64_t N = Seq.fetch_add(1, std::memory_order_relaxed);
  Line = format("{\"ts\":%llu,\"seq\":%llu,\"event\":\"%s\"",
                static_cast<unsigned long long>(metrics::nowNanos()),
                static_cast<unsigned long long>(N), Type);
  if (!FieldsJson.empty()) {
    Line += ',';
    Line += FieldsJson;
  }
  Line += "}\n";
  // One fwrite per line: concurrent emitters never interleave.
  std::fwrite(Line.data(), 1, Line.size(), Sink);
  std::fflush(Sink);
}
