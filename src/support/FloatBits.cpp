//===- support/FloatBits.cpp - Bit-level float utilities ------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/FloatBits.h"

#include <cmath>
#include <limits>

using namespace herbgrind;

static const uint64_t DoubleSignBit = 1ULL << 63;
static const uint32_t FloatSignBit = 1U << 31;

int64_t herbgrind::ordinalOfDouble(double X) {
  uint64_t Bits = bitsOfDouble(X);
  if (Bits & DoubleSignBit)
    return -static_cast<int64_t>(Bits & ~DoubleSignBit);
  return static_cast<int64_t>(Bits);
}

double herbgrind::doubleFromOrdinal(int64_t Ordinal) {
  if (Ordinal < 0)
    return doubleFromBits(static_cast<uint64_t>(-Ordinal) | DoubleSignBit);
  return doubleFromBits(static_cast<uint64_t>(Ordinal));
}

int32_t herbgrind::ordinalOfFloat(float X) {
  uint32_t Bits = bitsOfFloat(X);
  if (Bits & FloatSignBit)
    return -static_cast<int32_t>(Bits & ~FloatSignBit);
  return static_cast<int32_t>(Bits);
}

float herbgrind::floatFromOrdinal(int32_t Ordinal) {
  if (Ordinal < 0)
    return floatFromBits(static_cast<uint32_t>(-Ordinal) | FloatSignBit);
  return floatFromBits(static_cast<uint32_t>(Ordinal));
}

uint64_t herbgrind::ulpsBetweenDoubles(double A, double B) {
  int64_t OrdA = ordinalOfDouble(A);
  int64_t OrdB = ordinalOfDouble(B);
  // Compute |OrdA - OrdB| in unsigned arithmetic to avoid signed overflow
  // when the ordinals have opposite signs and large magnitude.
  uint64_t UA = static_cast<uint64_t>(OrdA);
  uint64_t UB = static_cast<uint64_t>(OrdB);
  return OrdA >= OrdB ? UA - UB : UB - UA;
}

uint32_t herbgrind::ulpsBetweenFloats(float A, float B) {
  int64_t OrdA = ordinalOfFloat(A);
  int64_t OrdB = ordinalOfFloat(B);
  int64_t Diff = OrdA >= OrdB ? OrdA - OrdB : OrdB - OrdA;
  return static_cast<uint32_t>(Diff);
}

double herbgrind::bitsOfErrorDouble(double Approx, double Exact) {
  bool ApproxNaN = std::isnan(Approx);
  bool ExactNaN = std::isnan(Exact);
  if (ApproxNaN && ExactNaN)
    return 0.0;
  if (ApproxNaN || ExactNaN)
    return 64.0;
  uint64_t Ulps = ulpsBetweenDoubles(Approx, Exact);
  // log2(Ulps + 1), computed carefully so Ulps near UINT64_MAX still works.
  return std::log2(static_cast<double>(Ulps) + 1.0);
}

double herbgrind::bitsOfErrorFloat(float Approx, float Exact) {
  bool ApproxNaN = std::isnan(Approx);
  bool ExactNaN = std::isnan(Exact);
  if (ApproxNaN && ExactNaN)
    return 0.0;
  if (ApproxNaN || ExactNaN)
    return 32.0;
  uint32_t Ulps = ulpsBetweenFloats(Approx, Exact);
  return std::log2(static_cast<double>(Ulps) + 1.0);
}

double herbgrind::nextDouble(double X) {
  if (std::isnan(X))
    return X;
  if (X == std::numeric_limits<double>::infinity())
    return X;
  return doubleFromOrdinal(ordinalOfDouble(X) + 1);
}

double herbgrind::prevDouble(double X) {
  if (std::isnan(X))
    return X;
  if (X == -std::numeric_limits<double>::infinity())
    return X;
  return doubleFromOrdinal(ordinalOfDouble(X) - 1);
}
