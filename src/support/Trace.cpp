//===- support/Trace.cpp - Chrome trace-event span recorder ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Format.h"
#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace herbgrind {
namespace trace {
namespace {

struct ThreadBuf {
  std::mutex M;
  std::vector<Event> Events;
  uint32_t Tid = 0;
};

struct Registry {
  std::mutex M;
  std::vector<ThreadBuf *> Live;
  std::vector<Event> Retired; ///< Events of threads that have exited.
  uint32_t NextTid = 0;
};

// Leaked: thread_local destructors may run arbitrarily late at process
// exit and must always find the registry alive.
Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

std::atomic<bool> Enabled{false};
std::atomic<uint64_t> TimeBase{0};

/// The calling thread's buffer; registered on first span, folded into
/// Registry::Retired at thread exit.
struct ThreadBufOwner {
  ThreadBuf *B = nullptr;

  ThreadBuf *get() {
    if (!B) {
      B = new ThreadBuf();
      Registry &R = registry();
      std::lock_guard<std::mutex> L(R.M);
      B->Tid = R.NextTid++;
      R.Live.push_back(B);
    }
    return B;
  }

  ~ThreadBufOwner() {
    if (!B)
      return;
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    {
      std::lock_guard<std::mutex> LB(B->M);
      R.Retired.insert(R.Retired.end(),
                       std::make_move_iterator(B->Events.begin()),
                       std::make_move_iterator(B->Events.end()));
    }
    R.Live.erase(std::find(R.Live.begin(), R.Live.end(), B));
    delete B;
  }
};

thread_local ThreadBufOwner TLBuf;

} // namespace

void start() {
  clear();
  TimeBase.store(metrics::nowNanos(), std::memory_order_relaxed);
  Enabled.store(true, std::memory_order_release);
}

void stop() { Enabled.store(false, std::memory_order_release); }

bool enabled() { return Enabled.load(std::memory_order_acquire); }

void clear() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  R.Retired.clear();
  for (ThreadBuf *B : R.Live) {
    std::lock_guard<std::mutex> LB(B->M);
    B->Events.clear();
  }
}

Span::Span(const char *Name, const char *Cat, std::string Args) {
  if (!enabled())
    return;
  Armed = true;
  this->Name = Name;
  this->ArgsJson = std::move(Args);
  this->Cat = Cat;
  StartNanos = metrics::nowNanos();
}

Span::~Span() {
  if (!Armed || !enabled())
    return;
  uint64_t End = metrics::nowNanos();
  uint64_t T0 = TimeBase.load(std::memory_order_relaxed);
  ThreadBuf *B = TLBuf.get();
  Event E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.StartNanos = StartNanos > T0 ? StartNanos - T0 : 0;
  E.DurNanos = End > StartNanos ? End - StartNanos : 0;
  E.Tid = B->Tid;
  E.Args = std::move(ArgsJson);
  std::lock_guard<std::mutex> L(B->M);
  B->Events.push_back(std::move(E));
}

std::vector<Event> collect() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  std::vector<Event> Out = R.Retired;
  for (ThreadBuf *B : R.Live) {
    std::lock_guard<std::mutex> LB(B->M);
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  }
  std::sort(Out.begin(), Out.end(), [](const Event &A, const Event &B) {
    if (A.StartNanos != B.StartNanos)
      return A.StartNanos < B.StartNanos;
    if (A.Tid != B.Tid)
      return A.Tid < B.Tid;
    return A.Name < B.Name;
  });
  return Out;
}

std::string renderChromeTrace() {
  std::vector<Event> Events = collect();
  std::string Out;
  Out.reserve(128 + Events.size() * 96);
  Out += "{\"traceEvents\":[";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    // Trace-event timestamps are microseconds; keep sub-microsecond
    // precision with a fractional part (Perfetto accepts doubles).
    Out += format("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
                  "\"pid\":1,\"tid\":%u",
                  jsonEscape(E.Name).c_str(), jsonEscape(E.Cat).c_str(),
                  (unsigned long long)(E.StartNanos / 1000),
                  (unsigned long long)(E.StartNanos % 1000),
                  (unsigned long long)(E.DurNanos / 1000),
                  (unsigned long long)(E.DurNanos % 1000), E.Tid);
    if (!E.Args.empty()) {
      Out += ",\"args\":";
      Out += E.Args;
    }
    Out += "}";
  }
  Out += "],\"displayTimeUnit\":\"ns\"}\n";
  return Out;
}

} // namespace trace
} // namespace herbgrind
