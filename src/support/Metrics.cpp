//===- support/Metrics.cpp - Lock-cheap metrics registry ------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Layout: the registry assigns each counter one cell index and each timer a
// contiguous block of 3 + TimerBuckets cells; every thread owns a
// fixed-capacity slab of relaxed atomics indexed by those cells. Slabs of
// live threads sit on a registry list; a thread-exit destructor folds the
// slab into a retained-totals array so worker counts survive pool teardown.
// The registry itself is a leaked singleton -- thread_local destructors may
// run arbitrarily late at process exit and must always find it alive.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <mutex>

namespace herbgrind {
namespace metrics {
namespace {

/// Upper bound on cells across all counters and timers. Each timer takes
/// 3 + TimerBuckets cells, so this comfortably fits hundreds of metrics;
/// registration asserts (and saturates to a dead cell) beyond it.
constexpr uint32_t SlabCells = 4096;

/// Index of the overflow cell: writes land there when registration runs
/// out of slab space, so handles stay valid (if meaningless) rather than
/// stray.
constexpr uint32_t DeadCell = SlabCells - 1;

struct Slab {
  std::atomic<uint64_t> Cells[SlabCells]; // zero-initialized
};

struct GaugeCell {
  std::atomic<int64_t> Value{0};
  std::atomic<int64_t> Max{0};
};

struct Registry {
  std::mutex M;
  // Name -> cell index (counters) or block base (timers). Gauges own
  // their cells directly (stable addresses in a node-based map).
  std::map<std::string, uint32_t> CounterCells;
  std::map<std::string, uint32_t> TimerCells;
  std::map<std::string, GaugeCell> Gauges;
  uint32_t NextCell = 0;
  std::vector<Slab *> LiveSlabs;
  uint64_t Retired[SlabCells] = {};

  uint32_t allocCells(uint32_t N) {
    if (NextCell + N > DeadCell) {
      assert(false && "metrics slab exhausted");
      return DeadCell;
    }
    uint32_t Base = NextCell;
    NextCell += N;
    return Base;
  }
};

Registry &registry() {
  static Registry *R = new Registry(); // leaked: see file comment
  return *R;
}

/// The calling thread's slab, registered on first touch and retired (folded
/// into Registry::Retired) when the thread exits.
struct ThreadSlab {
  Slab *S = nullptr;

  Slab *get() {
    if (!S) {
      S = new Slab();
      Registry &R = registry();
      std::lock_guard<std::mutex> L(R.M);
      R.LiveSlabs.push_back(S);
    }
    return S;
  }

  ~ThreadSlab() {
    if (!S)
      return;
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    for (uint32_t I = 0; I < SlabCells; ++I)
      R.Retired[I] += S->Cells[I].load(std::memory_order_relaxed);
    // Timer max cells combine by max, not sum: undo the += above.
    for (const auto &KV : R.TimerCells) {
      uint32_t MaxIdx = KV.second + 2;
      uint64_t V = S->Cells[MaxIdx].load(std::memory_order_relaxed);
      R.Retired[MaxIdx] = std::max(R.Retired[MaxIdx] - V, V);
    }
    R.LiveSlabs.erase(std::find(R.LiveSlabs.begin(), R.LiveSlabs.end(), S));
    delete S;
  }
};

thread_local ThreadSlab TLSlab;

std::atomic<uint64_t> &cell(uint32_t Index) {
  return TLSlab.get()->Cells[Index];
}

unsigned bucketOf(uint64_t Nanos) {
  unsigned B = 0;
  while (Nanos > 1 && B + 1 < TimerBuckets) {
    Nanos >>= 1;
    ++B;
  }
  return B;
}

} // namespace

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Counter::add(uint64_t N) const {
  if (Cell == UINT32_MAX)
    return;
  cell(Cell).fetch_add(N, std::memory_order_relaxed);
}

Counter counter(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto It = R.CounterCells.find(Name);
  if (It == R.CounterCells.end())
    It = R.CounterCells.emplace(Name, R.allocCells(1)).first;
  return Counter(It->second);
}

void Gauge::set(int64_t V) const {
  if (!CellPtr)
    return;
  auto *G = static_cast<GaugeCell *>(CellPtr);
  G->Value.store(V, std::memory_order_relaxed);
  int64_t Prev = G->Max.load(std::memory_order_relaxed);
  while (V > Prev &&
         !G->Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
    ;
}

void Gauge::add(int64_t D) const {
  if (!CellPtr)
    return;
  auto *G = static_cast<GaugeCell *>(CellPtr);
  int64_t V = G->Value.fetch_add(D, std::memory_order_relaxed) + D;
  int64_t Prev = G->Max.load(std::memory_order_relaxed);
  while (V > Prev &&
         !G->Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
    ;
}

Gauge gauge(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  return Gauge(&R.Gauges[Name]);
}

void Timer::record(uint64_t Nanos) const {
  if (Cell == UINT32_MAX)
    return;
  Slab *S = TLSlab.get();
  S->Cells[Cell].fetch_add(1, std::memory_order_relaxed);
  S->Cells[Cell + 1].fetch_add(Nanos, std::memory_order_relaxed);
  // Max: per-thread slabs are only ever written by their owner, so a
  // load/store race-free max is fine with relaxed atomics.
  std::atomic<uint64_t> &MaxCell = S->Cells[Cell + 2];
  if (Nanos > MaxCell.load(std::memory_order_relaxed))
    MaxCell.store(Nanos, std::memory_order_relaxed);
  S->Cells[Cell + 3 + bucketOf(Nanos)].fetch_add(1, std::memory_order_relaxed);
}

Timer timer(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  auto It = R.TimerCells.find(Name);
  if (It == R.TimerCells.end())
    It = R.TimerCells.emplace(Name, R.allocCells(3 + TimerBuckets)).first;
  return Timer(It->second);
}

uint64_t Snapshot::counterValue(const std::string &Name) const {
  for (const CounterSample &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return 0;
}

const GaugeSample *Snapshot::findGauge(const std::string &Name) const {
  for (const GaugeSample &G : Gauges)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const TimerSample *Snapshot::findTimer(const std::string &Name) const {
  for (const TimerSample &T : Timers)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

/// Shared shape of the three per-kind folds below: both sides are
/// name-sorted, so a single linear merge pass visits every name once and
/// keeps the output sorted without a re-sort.
template <typename Sample>
static bool samplesSorted(const std::vector<Sample> &V) {
  for (size_t I = 1; I < V.size(); ++I)
    if (V[I].Name < V[I - 1].Name)
      return false;
  return true;
}

template <typename Sample, typename FoldFn>
static void mergeSortedSamples(std::vector<Sample> &Dst,
                               std::vector<Sample> Src, FoldFn Fold) {
  // snapshot() and the telemetry renderer keep samples name-sorted, but a
  // hand-built or foreign document might not; restore the invariant
  // rather than silently producing a misordered (and misfolded) merge.
  auto ByName = [](const Sample &A, const Sample &B) { return A.Name < B.Name; };
  if (!samplesSorted(Dst))
    std::sort(Dst.begin(), Dst.end(), ByName);
  if (!samplesSorted(Src))
    std::sort(Src.begin(), Src.end(), ByName);
  std::vector<Sample> Out;
  Out.reserve(Dst.size() + Src.size());
  size_t I = 0, J = 0;
  while (I < Dst.size() || J < Src.size()) {
    if (J == Src.size() || (I < Dst.size() && Dst[I].Name < Src[J].Name)) {
      Out.push_back(std::move(Dst[I++]));
    } else if (I == Dst.size() || Src[J].Name < Dst[I].Name) {
      Out.push_back(std::move(Src[J++]));
    } else {
      Fold(Dst[I], Src[J]);
      Out.push_back(std::move(Dst[I]));
      ++I;
      ++J;
    }
  }
  Dst = std::move(Out);
}

void Snapshot::mergeFrom(const Snapshot &Other) {
  mergeSortedSamples(Counters, Other.Counters,
                     [](CounterSample &A, const CounterSample &B) {
                       A.Value += B.Value;
                     });
  mergeSortedSamples(Gauges, Other.Gauges,
                     [](GaugeSample &A, const GaugeSample &B) {
                       A.Value += B.Value;
                       A.Max += B.Max;
                     });
  mergeSortedSamples(Timers, Other.Timers,
                     [](TimerSample &A, const TimerSample &B) {
                       A.Count += B.Count;
                       A.SumNanos += B.SumNanos;
                       A.MaxNanos = std::max(A.MaxNanos, B.MaxNanos);
                       for (unsigned I = 0; I < TimerBuckets; ++I)
                         A.Buckets[I] += B.Buckets[I];
                     });
}

Snapshot snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);

  // Merge live slabs onto the retained totals of exited threads.
  std::vector<uint64_t> Sum(R.Retired, R.Retired + SlabCells);
  for (const Slab *S : R.LiveSlabs)
    for (uint32_t I = 0; I < SlabCells; ++I)
      Sum[I] += S->Cells[I].load(std::memory_order_relaxed);

  Snapshot Out;
  Out.Counters.reserve(R.CounterCells.size());
  for (const auto &KV : R.CounterCells)
    Out.Counters.push_back({KV.first, Sum[KV.second]});
  Out.Gauges.reserve(R.Gauges.size());
  for (const auto &KV : R.Gauges)
    Out.Gauges.push_back({KV.first,
                          KV.second.Value.load(std::memory_order_relaxed),
                          KV.second.Max.load(std::memory_order_relaxed)});
  Out.Timers.reserve(R.TimerCells.size());
  for (const auto &KV : R.TimerCells) {
    TimerSample T;
    T.Name = KV.first;
    uint32_t Base = KV.second;
    T.Count = Sum[Base];
    T.SumNanos = Sum[Base + 1];
    // Max across threads: the per-thread max cells all sum into Sum, which
    // is wrong for a max -- take the max over live slabs and Retired
    // directly instead.
    T.MaxNanos = R.Retired[Base + 2];
    for (const Slab *S : R.LiveSlabs)
      T.MaxNanos = std::max(
          T.MaxNanos, S->Cells[Base + 2].load(std::memory_order_relaxed));
    for (unsigned B = 0; B < TimerBuckets; ++B)
      T.Buckets[B] = Sum[Base + 3 + B];
    Out.Timers.push_back(std::move(T));
  }
  // std::map iteration is already name-sorted; keep the invariant explicit
  // against future container changes.
  std::sort(Out.Counters.begin(), Out.Counters.end(),
            [](const CounterSample &A, const CounterSample &B) {
              return A.Name < B.Name;
            });
  std::sort(Out.Gauges.begin(), Out.Gauges.end(),
            [](const GaugeSample &A, const GaugeSample &B) {
              return A.Name < B.Name;
            });
  std::sort(Out.Timers.begin(), Out.Timers.end(),
            [](const TimerSample &A, const TimerSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> L(R.M);
  for (uint32_t I = 0; I < SlabCells; ++I)
    R.Retired[I] = 0;
  for (Slab *S : R.LiveSlabs)
    for (uint32_t I = 0; I < SlabCells; ++I)
      S->Cells[I].store(0, std::memory_order_relaxed);
  for (auto &KV : R.Gauges) {
    KV.second.Value.store(0, std::memory_order_relaxed);
    KV.second.Max.store(0, std::memory_order_relaxed);
  }
}

} // namespace metrics
} // namespace herbgrind
