//===- support/SourceLoc.h - Client-program source locations ----*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A source location attached to IR statements, standing in for the DWARF
/// debug info Herbgrind reads from client binaries. Reports render these as
/// "main.cpp:24 in run(int, int)" just like the paper's sample output.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_SOURCELOC_H
#define HERBGRIND_SUPPORT_SOURCELOC_H

#include <string>

namespace herbgrind {

/// Where a client-program statement came from.
struct SourceLoc {
  std::string File;
  int Line = 0;
  std::string Function;

  SourceLoc() = default;
  SourceLoc(std::string File, int Line, std::string Function)
      : File(std::move(File)), Line(Line), Function(std::move(Function)) {}

  bool isKnown() const { return !File.empty(); }

  /// Renders as "file:line in function" (or "<unknown>" when absent).
  std::string str() const {
    if (!isKnown())
      return "<unknown>";
    std::string Result = File + ":" + std::to_string(Line);
    if (!Function.empty())
      Result += " in " + Function;
    return Result;
  }

  bool operator==(const SourceLoc &Other) const {
    return File == Other.File && Line == Other.Line &&
           Function == Other.Function;
  }
};

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_SOURCELOC_H
