//===- support/Format.h - printf-style string formatting --------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting helpers used across the library so that library
/// code never needs <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_SUPPORT_FORMAT_H
#define HERBGRIND_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace herbgrind {

/// Formats like printf into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with the shortest decimal digits that round-trip, the
/// way FPCore expressions print constants (e.g. "0.1", "2.061152e-09").
std::string formatDoubleShortest(double X);

/// Joins strings with a separator.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters).
std::string jsonEscape(const std::string &S);

} // namespace herbgrind

#endif // HERBGRIND_SUPPORT_FORMAT_H
