//===- support/Format.cpp - printf-style string formatting ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace herbgrind;

std::string herbgrind::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "invalid format string");
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string herbgrind::formatDoubleShortest(double X) {
  if (std::isnan(X))
    return "NAN";
  if (std::isinf(X))
    return X > 0 ? "INFINITY" : "-INFINITY";
  char Buf[64];
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), X);
  assert(Ec == std::errc() && "to_chars cannot fail with a 64-byte buffer");
  return std::string(Buf, Ptr);
}

std::string herbgrind::join(const std::vector<std::string> &Parts,
                            const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string herbgrind::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}
