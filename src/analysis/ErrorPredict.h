//===- analysis/ErrorPredict.h - Tier-0 cheap error predicates --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-0 layer of the tiered shadow pipeline: conservative error
/// predicates computed from the native doubles alone, with no BigFloat in
/// sight. Each shadowed value carries a running-error pair (Delta, Noise)
/// asserting real = concrete + Delta +/- Noise: Delta is a *signed*
/// estimate of the accumulated rounding error -- fed by exact 2Sum/2Prod
/// residuals for the basic arithmetic ops -- and Noise soundly bounds the
/// estimate's own error. Ops without an exact residual fall back to
/// interval/Lipschitz propagation over the op's true derivative bounds
/// (the condition-number view of PAPERS.md "Mixing Condition Numbers and
/// Oracles"; the valid-bits accounting mirrors the FpNode scheme from
/// llvmFpStabilityDetector), folding everything into Noise.
///
/// The signed estimate is what lets tier 0 clear *compensated* code:
/// Kahan summation re-injects each addition's residual, so its Delta
/// telescopes back toward zero while a pure interval bound would grow by
/// half an ulp per iteration exactly as it does for the naive loop.
///
/// The contract that makes tiering sound: for every predicate below, if
/// the full 256-bit shadow analysis would observe an erroneous spot
/// (output error above Tm, a diverging comparison, or a diverging
/// float-to-int conversion), the corresponding tier-0 predicate reports
/// *suspect*. The reverse is deliberately not promised -- false positives
/// only cost an escalation to the BigFloat tier, never a wrong report.
/// Unknown situations (poles, branch cuts, non-finite values, opcodes
/// without a derivative table entry) degrade to "suspect", keeping the
/// bound conservative rather than clever.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_ERRORPREDICT_H
#define HERBGRIND_ANALYSIS_ERRORPREDICT_H

#include "ir/Opcode.h"

#include <limits>

namespace herbgrind {
namespace errpredict {

/// Safety margin (bits) added on top of the interval-derived local-error
/// bound before it is compared against thresholds. Absorbs libm's
/// not-quite-correctly-rounded results and the slack between the Lipschitz
/// bound and the true mean-value constant. Deliberately a constant, not a
/// config knob: it is part of the soundness argument, not a tuning lever.
constexpr double kPredMarginBits = 2.0;

/// Half-ulp rounding radius at type \p Ty around the value neighbourhood
/// [C - E, C + E]: an upper bound on |fl(R) - R| for any real R in that
/// interval. Exact inputs (E == 0) round to themselves -- C is already a
/// representable -- so the radius is 0, which is what keeps chains of
/// exact ops exactly exact. Non-finite C or E yields +inf.
double halfUlpAround(double C, double E, ValueType Ty);

/// One value's tier-0 error state: real = concrete + Delta + e with
/// |e| <= Noise. Exact values are {0, 0}.
struct PredVal {
  double Delta = 0.0; ///< Signed estimate of (real - concrete).
  double Noise = 0.0; ///< Sound bound on the estimate's own error.
};

/// Collapses a (Delta, Noise) pair to the sound unsigned bound
/// |real - concrete| <= |Delta| + Noise the spot predicates consume.
/// Anything non-finite degrades to +inf (maximally suspect).
inline double predTotal(double Delta, double Noise) {
  double T = (Delta < 0.0 ? -Delta : Delta) + Noise;
  return T == T && T <= 1.7976931348623157e308
             ? T
             : std::numeric_limits<double>::infinity();
}

/// Tier-0 prediction for one scalar float op.
struct PredOp {
  /// Signed running-error estimate of (real result - concrete result).
  /// Zero whenever the op has no exact-residual row.
  double Delta = 0.0;
  /// Sound bound on the estimate's error; AbsErr = |Delta| + Noise.
  double Noise = 0.0;
  /// Sound upper bound on |real result - concrete result|; +inf when the
  /// op's behaviour over the input intervals cannot be bounded (pole,
  /// branch cut, non-finite, unknown opcode with inexact inputs).
  double AbsErr = 0.0;
  /// Predicted upper bound on the op's local error in bits, margin
  /// included: >= the bitsOfError(FloatOnExact, rounded real) the full
  /// shadow analysis would measure for this execution.
  double LocalBits = 0.0;
};

/// Predicts one scalar float operation from its concrete arguments and the
/// per-argument running-error pairs \p Args (pass {0, 0} for
/// unshadowed/exact arguments).
/// \p ConcreteResult is the concrete float result of the op.
PredOp predictScalarOp(Opcode Op, const Value *ArgConcrete,
                       const PredVal *Args, unsigned NumArgs,
                       const Value &ConcreteResult);

/// Upper bound on bitsOfError(Concrete, fl(R)) over all reals R with
/// |R - Concrete| <= AbsErr, i.e. the worst output-spot error the full
/// shadow could report for a value carrying this bound. NaN Concrete or
/// non-finite AbsErr yields the maximal error for \p Ty (64 or 32).
double predictedErrorBits(double Concrete, double AbsErr, ValueType Ty);

/// FpNode-style valid-bits accounting: significand bits of \p Concrete
/// still certain given the bound (mantissa width minus the bits the error
/// interval spans), clamped to [0, width].
double validBits(double Concrete, double AbsErr, ValueType Ty);

/// Comparison spot: could the predicate over the reals diverge from the
/// concrete predicate? True when the error intervals of the two operands
/// overlap (or any value involved is non-finite).
bool comparisonSuspect(const Value &A, const Value &B, double ErrA,
                       double ErrB);

/// Float-to-int conversion spot: could truncating the real give a
/// different integer than truncating the concrete double?
bool conversionSuspect(double Concrete, double Err);

/// Output spot: could the full shadow report more than \p ThresholdBits
/// bits of output error for a value with this bound? (NaN concretes are
/// always suspect; the margin is applied inside.)
bool outputSuspect(const Value &LaneVal, double Err, double ThresholdBits);

} // namespace errpredict
} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_ERRORPREDICT_H
