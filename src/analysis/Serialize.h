//===- analysis/Serialize.h - Result wire format ----------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire formats for analysis results: rendering AND read-back for
/// `AnalysisResult` (with its `OpRecord`/`SpotRecord` maps, symbolic
/// expressions, and input summaries) and for presentation-level `Report`s.
/// This is what makes shard results durable values: the result cache
/// persists them between sweeps, and `--emit-shard`/`--merge-shards` ship
/// them between machines.
///
/// Every document family (shard, improve, report, batch report,
/// telemetry) is expressed ONCE as a schema traversal over the abstract
/// `wire::Encoder`/`wire::Decoder` interface (`support/Wire.h`), with two
/// backends: byte-exact JSON and the compact HGB binary envelope
/// (`support/WireBinary.h`). The backends cannot drift -- there is no
/// second copy of any schema.
///
/// The contract is exact round-tripping in either format, and across
/// formats: `parse(render(x))` reconstructs `x` bit-for-bit (JSON doubles
/// are printed with shortest round-trip decimals and reparsed with
/// strtod; HGB stores the raw IEEE-754 bytes), so folding a parsed shard
/// into a sweep produces output byte-identical to folding the in-memory
/// original -- whichever format carried it.
///
/// The formats are versioned (see REPORT_SCHEMA.md). Readers accept any
/// minor version of a known major version and reject everything else --
/// a major bump means fields changed meaning, and a silently misread
/// cache entry would corrupt a merged report. The `parseX` functions
/// without a Json/Binary suffix sniff the format from the first byte
/// ('{' = JSON, 0x89 = HGB) and accept either.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_SERIALIZE_H
#define HERBGRIND_ANALYSIS_SERIALIZE_H

#include "analysis/Analysis.h"
#include "analysis/OpProfile.h"
#include "analysis/Report.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <string>

namespace herbgrind {

/// Wire format version. The major number is embedded in every shard and
/// report document (JSON envelope and HGB header alike) and checked on
/// read-back; it also feeds the engine's config hash, so a version bump
/// invalidates persistent caches.
constexpr int WireFormatMajor = 1;
/// Minor version: additive, backward-compatible changes only.
/// History: 1.1 added the optional report "improvements" section
/// (ImproveRecord) and the "herbgrind-improve" cache document.
constexpr int WireFormatMinor = 1;

/// Which wire backend a writer uses. Readers never need to be told --
/// they sniff. Deliberately NOT part of the engine config hash: both
/// encodings carry bit-identical values, so JSON-cached and HGB-cached
/// sweeps share (and warm) the same cache identity.
enum class WireEncoding {
  Json,   ///< Human-readable, byte-stable text (the default).
  Binary, ///< HGB: compact length-prefixed binary (support/WireBinary.h).
};

/// Spot kind name used in wire documents and text reports ("Output",
/// "Compare", "Conversion").
const char *spotKindName(SpotKind K);

/// Renders a source location as {"file":...,"line":...,"func":...}.
std::string renderSourceLocJson(const SourceLoc &Loc);

/// Renders a symbolic expression tree: operation nodes are
/// {"op":<mnemonic>,"site":<pc>,"kids":[...]}, leaves {"const":<v>} or
/// {"var":<idx>}.
std::string renderSymExprJson(const SymExpr &E);

/// Renders one analysis snapshot -- the value the engine shards and
/// merges -- as the wire format's "result" object.
std::string renderAnalysisResultJson(const AnalysisResult &R);

/// Parses a "result" object back; returns false and sets \p Err on
/// malformed input. On success \p Out merges byte-identically with (and
/// re-renders byte-identically to) the value it was rendered from.
bool parseAnalysisResultJson(const JsonValue &V, AnalysisResult &Out,
                             std::string &Err);

/// One shard-result document: an `AnalysisResult` plus the identity
/// needed to place it in a sweep (which benchmark, which slice of the
/// sampled inputs) and the engine config hash that guards merges of
/// incompatible shards.
struct ShardDoc {
  std::string ConfigHash; ///< engine::configHash() of the producing sweep.
  std::string Benchmark;  ///< Benchmark name (presentation only).
  uint64_t BenchIndex = 0; ///< Benchmark position in the sweep's core list.
  uint64_t ShardIndex = 0; ///< Shard number within the benchmark.
  uint64_t RunBegin = 0;   ///< First sampled-input index (inclusive).
  uint64_t RunEnd = 0;     ///< Last sampled-input index (exclusive).
  AnalysisResult Result;
};

/// Renders a complete shard document (versioned envelope + result).
std::string renderShardJson(const ShardDoc &Doc);

/// Same, from the envelope fields and a borrowed result (no ShardDoc --
/// and so no deep copy of the records -- required).
std::string renderShardJson(const std::string &ConfigHash,
                            const std::string &Benchmark, uint64_t BenchIndex,
                            uint64_t ShardIndex, uint64_t RunBegin,
                            uint64_t RunEnd, const AnalysisResult &Result);

/// HGB renders of the same shard document.
std::string renderShardBinary(const ShardDoc &Doc);
std::string renderShardBinary(const std::string &ConfigHash,
                              const std::string &Benchmark,
                              uint64_t BenchIndex, uint64_t ShardIndex,
                              uint64_t RunBegin, uint64_t RunEnd,
                              const AnalysisResult &Result);

/// Renders a shard document in the requested encoding.
std::string renderShard(const ShardDoc &Doc, WireEncoding Enc);

/// Parses a JSON shard document. Rejects wrong "format" tags and unknown
/// major versions.
bool parseShardJson(const std::string &Text, ShardDoc &Out, std::string &Err);

/// Parses a shard document in either format (sniffed from the first
/// byte). Truncated or corrupt input of either kind fails cleanly.
bool parseShard(const std::string &Text, ShardDoc &Out, std::string &Err);

/// Renders an ImproveRecord's outcome fields (everything but the pc,
/// which is positional identity and rendered by the container): the
/// shared body of the report "improvements" section and the improve
/// cache document.
std::string renderImproveOutcomeJson(const ImproveRecord &R);

/// One cached batch-improver outcome: the record plus the identities
/// that validate a cache hit (the producing sweep's config hash, the
/// improver-config hash, and the exact expression/sampling-spec text the
/// improver ran on). Stored by engine::ResultCache as
/// `<key>.improve.json` or `<key>.improve.hgb`.
struct ImproveDoc {
  std::string ConfigHash;   ///< engine::configHash() of the sweep.
  std::string ImproveHash;  ///< improve::improveConfigHash() of the pass.
  std::string ExprIdentity; ///< Printed expression the improver ran on.
  std::string SpecIdentity; ///< Canonical sampling-spec text.
  ImproveRecord Record;     ///< The outcome (PC is not persisted: the
                            ///< same expression can be blamed at many
                            ///< sites; callers re-stamp identity).
};

/// Renders a complete improve-cache document (versioned envelope).
std::string renderImproveDocJson(const ImproveDoc &Doc);

/// HGB render of the improve-cache document.
std::string renderImproveDocBinary(const ImproveDoc &Doc);

/// Renders an improve-cache document in the requested encoding.
std::string renderImproveDoc(const ImproveDoc &Doc, WireEncoding Enc);

/// Parses a JSON improve-cache document. Rejects wrong "format" tags and
/// unknown major versions.
bool parseImproveDocJson(const std::string &Text, ImproveDoc &Out,
                         std::string &Err);

/// Parses an improve-cache document in either format (sniffed).
bool parseImproveDoc(const std::string &Text, ImproveDoc &Out,
                     std::string &Err);

/// Parses a presentation-level report object ({"spots":[...]}, the value
/// of a batch document's per-benchmark "report" field). Round trip:
/// parseReport(render(r)) re-renders to the same bytes. The
/// "improvements" section is optional (absent in pre-1.1 documents).
bool parseReport(const JsonValue &V, Report &Out, std::string &Err);

/// Convenience wrapper: parses JSON text into a Report.
bool parseReportJson(const std::string &Text, Report &Out, std::string &Err);

/// HGB render of a bare presentation-level report (family tag "report").
std::string renderReportBinary(const Report &R);

/// Parses a bare report in either format (sniffed).
bool parseReportDoc(const std::string &Text, Report &Out, std::string &Err);

/// A parsed batch report document (what `herbgrind_batch --json` and
/// `BatchResult::renderJson()` emit).
struct BatchReportDoc {
  struct Entry {
    std::string Name;
    uint64_t Shards = 0;
    uint64_t Runs = 0;
    Report Rep;
  };
  std::vector<Entry> Benchmarks;
};

/// A borrowed view of one batch-report entry: lets `BatchResult` (and
/// anything else that already owns Reports) render the batch document
/// through the shared traversal without deep-copying records.
struct BatchReportEntryRef {
  const std::string *Name;
  uint64_t Shards;
  uint64_t Runs;
  const Report *Rep;
};

/// Renders a batch report document from borrowed entries.
std::string renderBatchReportJson(const std::vector<BatchReportEntryRef> &E);
std::string renderBatchReportBinary(const std::vector<BatchReportEntryRef> &E);

/// Renders a parsed batch report document back out (both formats).
std::string renderBatchReportJson(const BatchReportDoc &Doc);
std::string renderBatchReportBinary(const BatchReportDoc &Doc);

/// Parses a full JSON batch report document, checking its versioned
/// envelope (format "herbgrind-report"; unknown majors are rejected).
bool parseBatchReportJson(const std::string &Text, BatchReportDoc &Out,
                          std::string &Err);

/// Parses a batch report document in either format (sniffed).
bool parseBatchReport(const std::string &Text, BatchReportDoc &Out,
                      std::string &Err);

/// Telemetry document version (format "herbgrind-telemetry"). Versioned
/// independently of the report wire format: telemetry is observational,
/// can evolve faster, and must never force a cache-invalidating report
/// major bump. Same discipline otherwise -- readers accept any minor of a
/// known major and reject everything else.
constexpr int TelemetryFormatMajor = 1;
/// History: 1.1 added the optional "meta" provenance block (hostname,
/// ISO-8601 timestamp, merged-doc count). Minor-0 documents parse fine
/// (the block simply reads as absent) and re-render their exact bytes.
constexpr int TelemetryFormatMinor = 1;

/// Provenance for a telemetry document: which machine produced it, when,
/// and -- for merged documents -- how many process-level source docs were
/// folded in. Purely informational; the merge algebra never reads it.
struct TelemetryMeta {
  std::string Host;      ///< Producing hostname (engine::hostName()).
  std::string Timestamp; ///< ISO-8601 UTC wall-clock time of the write.
  uint64_t MergedDocs = 0; ///< Source docs folded in (0 = a live process).
};

/// One sweep's telemetry: the merged metrics snapshot plus (when
/// `--profile-ops` ran) the ranked hot-op cost profile. This is what
/// `herbgrind_batch --metrics-out` writes. Deliberately separate from the
/// report stream: reports stay byte-identical whether or not telemetry
/// was collected.
struct TelemetryDoc {
  bool HasMeta = false; ///< Present since 1.1; false round-trips old docs.
  TelemetryMeta Meta;
  metrics::Snapshot Metrics;
  std::vector<opprof::OpProfileRow> Profile; ///< Ranked (finalized) rows.
  uint64_t ProfileTotalNanos = 0; ///< Measured shadow ns (profile.shadow_ns).

  /// Folds \p Other into this document: metrics by Snapshot::mergeFrom,
  /// profile rows by (Loc, Op) with the ranking re-finalized, total
  /// nanos summed, and MergedDocs accumulated (a doc without meta counts
  /// as one process). Host/Timestamp are left untouched -- deterministic
  /// given the inputs, so cross-format merges compare byte-for-byte;
  /// writers stamp fresh provenance afterwards if they want it.
  void mergeFrom(const TelemetryDoc &Other);
};

/// Renders a complete telemetry document (versioned envelope + metrics +
/// optional profile). Deterministic given a deterministic snapshot: names
/// are sorted, rows keep their ranked order.
std::string renderTelemetryJson(const TelemetryDoc &Doc);

/// HGB render of the telemetry document.
std::string renderTelemetryBinary(const TelemetryDoc &Doc);

/// Parses a JSON telemetry document. Rejects wrong "format" tags and
/// unknown major versions. Round trip: parse(render(d)) re-renders
/// byte-identically.
bool parseTelemetryJson(const std::string &Text, TelemetryDoc &Out,
                        std::string &Err);

/// Parses a telemetry document in either format (sniffed).
bool parseTelemetry(const std::string &Text, TelemetryDoc &Out,
                    std::string &Err);

/// Parses every document text (each sniffed independently, so JSON and
/// HGB inputs mix freely) and folds them into \p Out with
/// TelemetryDoc::mergeFrom. Fails on an empty input set or any parse
/// error. The result carries meta with the summed MergedDocs count but
/// empty Host/Timestamp: byte-deterministic given the inputs; callers
/// stamp provenance before writing.
bool mergeTelemetry(const std::vector<std::string> &DocTexts,
                    TelemetryDoc &Out, std::string &Err);

/// Run-ledger document version (format "herbgrind-ledger", HGB family
/// Ledger). Versioned independently: ledger entries persist across many
/// sweeps, and their schema must be able to grow without touching the
/// report or telemetry formats.
constexpr int LedgerFormatMajor = 1;
constexpr int LedgerFormatMinor = 0;

/// One run-ledger envelope: everything needed to recognize a sweep (the
/// config hash and knobs), place it in time (host, timestamp), and judge
/// it against a baseline (stats plus the merged metrics snapshot).
/// engine/RunLedger.h owns the append-only store and the regression
/// comparison; this is just the durable value.
struct LedgerEntry {
  // Provenance.
  std::string Host;        ///< Producing hostname.
  std::string Timestamp;   ///< ISO-8601 UTC wall-clock time.
  uint64_t TimestampNanos = 0; ///< Wall-clock ns since the epoch (the
                               ///< ledger's ordering key).
  std::string Label;       ///< Free-form: "sweep", a bench section, ...
  // Configuration.
  std::string ConfigHash;  ///< engine::configHash() of the sweep.
  std::string WireFormat;  ///< "json" or "binary".
  std::string Tier;        ///< "full", "confirm", or "fast".
  uint64_t Jobs = 0;
  uint64_t Samples = 0;
  uint64_t ShardSize = 0;
  uint64_t BatchLanes = 1;
  // Sweep statistics (the regression axes and their denominators).
  uint64_t Benchmarks = 0;
  uint64_t Shards = 0;
  uint64_t Runs = 0;
  uint64_t AnalyzedShards = 0;
  uint64_t CachedShards = 0;
  uint64_t ResultCacheHits = 0;
  uint64_t ResultCacheMisses = 0;
  uint64_t LimbHeapAllocs = 0;
  uint64_t LimbCacheHits = 0;
  uint64_t Tier0Runs = 0;
  uint64_t EscalatedRuns = 0;
  uint64_t PoolTasks = 0;
  uint64_t PoolSteals = 0;
  double WallSeconds = 0.0;
  /// The sweep's merged metrics snapshot (same layout as the telemetry
  /// document's counters/gauges/timers sections).
  metrics::Snapshot Metrics;
};

/// Renders a complete ledger entry (versioned envelope). Round trip:
/// parse(render(e)) re-renders byte-identically in either format.
std::string renderLedgerEntryJson(const LedgerEntry &E);
std::string renderLedgerEntryBinary(const LedgerEntry &E);
std::string renderLedgerEntry(const LedgerEntry &E, WireEncoding Enc);

/// Parses a ledger entry in either format (sniffed). Rejects wrong
/// format tags and unknown major versions.
bool parseLedgerEntry(const std::string &Text, LedgerEntry &Out,
                      std::string &Err);

} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_SERIALIZE_H
