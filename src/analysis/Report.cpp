//===- analysis/Report.cpp - Paper-style root cause reports ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"

#include "analysis/Serialize.h"
#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace herbgrind;

std::string herbgrind::fpcoreForRecord(const OpRecord &Rec,
                                       RangeMode Ranges) {
  assert(Rec.Expr && "record without an expression");
  uint32_t NumVars = Rec.Expr->numVars();
  std::vector<std::string> Vars;
  for (uint32_t I = 0; I < NumVars; ++I)
    Vars.push_back(SymExpr::varName(I));
  std::string Out = "(FPCore (" + join(Vars, " ") + ")";
  std::string Pre = Rec.TotalInputs.preCondition(Ranges);
  if (!Pre.empty())
    Out += "\n  :pre " + Pre;
  Out += "\n  " + Rec.Expr->fpcoreBody() + ")";
  return Out;
}

static RootCauseReport buildRootCause(uint32_t PC, const OpRecord &Rec,
                                      RangeMode Ranges) {
  RootCauseReport RC;
  RC.PC = PC;
  RC.Loc = Rec.Loc;
  RC.FPCore = fpcoreForRecord(Rec, Ranges);
  RC.Body = Rec.Expr ? Rec.Expr->fpcoreBody() : "";
  RC.NumVars = Rec.Expr ? Rec.Expr->numVars() : 0;
  RC.OpCount = Rec.Expr ? Rec.Expr->opCount() : 0;
  RC.Flagged = Rec.Flagged;
  RC.MaxLocalError = Rec.LocalError.max();
  RC.AvgLocalError = Rec.LocalError.mean();
  if (!Rec.ExampleProblematic.empty()) {
    std::vector<VarBinding> Sorted = Rec.ExampleProblematic;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const VarBinding &A, const VarBinding &B) {
                return A.Idx < B.Idx;
              });
    std::vector<std::string> Parts;
    for (const VarBinding &B : Sorted)
      Parts.push_back(formatDoubleShortest(B.Value));
    RC.ExampleInput = "(" + join(Parts, ", ") + ")";
  }
  return RC;
}

static Report buildReportFromRecords(const std::map<uint32_t, OpRecord> &Ops,
                                     const std::map<uint32_t, SpotRecord> &Spots,
                                     RangeMode Ranges) {
  Report R;
  for (const auto &[PC, Spot] : Spots) {
    if (Spot.Erroneous == 0)
      continue;
    SpotReport SR;
    SR.PC = PC;
    SR.Kind = Spot.Kind;
    SR.Loc = Spot.Loc;
    SR.Executions = Spot.Executions;
    SR.Erroneous = Spot.Erroneous;
    SR.MaxErrorBits = Spot.ErrorBits.max();
    std::vector<uint32_t> Influencers(Spot.InfluencingOps.begin(),
                                      Spot.InfluencingOps.end());
    std::sort(Influencers.begin(), Influencers.end(),
              [&](uint32_t A, uint32_t B) {
                uint64_t FA = Ops.count(A) ? Ops.at(A).Flagged : 0;
                uint64_t FB = Ops.count(B) ? Ops.at(B).Flagged : 0;
                if (FA != FB)
                  return FA > FB;
                return A < B;
              });
    for (uint32_t OpPC : Influencers) {
      auto It = Ops.find(OpPC);
      if (It == Ops.end() || !It->second.Expr)
        continue;
      SR.RootCauses.push_back(buildRootCause(OpPC, It->second, Ranges));
    }
    R.Spots.push_back(std::move(SR));
  }
  return R;
}

Report herbgrind::buildReport(const Herbgrind &Analysis) {
  return buildReportFromRecords(Analysis.opRecords(), Analysis.spotRecords(),
                                Analysis.config().Ranges);
}

Report herbgrind::buildReport(const AnalysisResult &Result) {
  return buildReportFromRecords(Result.Ops, Result.Spots, Result.Ranges);
}

void Report::mergeFrom(const Report &Other) {
  for (const SpotReport &OS : Other.Spots) {
    SpotReport *Mine = nullptr;
    for (SpotReport &SR : Spots)
      if (SR.PC == OS.PC && SR.Loc == OS.Loc) {
        Mine = &SR;
        break;
      }
    if (!Mine) {
      Spots.push_back(OS);
      continue;
    }
    Mine->Executions += OS.Executions;
    Mine->Erroneous += OS.Erroneous;
    Mine->MaxErrorBits = std::max(Mine->MaxErrorBits, OS.MaxErrorBits);
    for (const RootCauseReport &RC : OS.RootCauses) {
      RootCauseReport *Have = nullptr;
      for (RootCauseReport &M : Mine->RootCauses)
        if (M.PC == RC.PC) {
          Have = &M;
          break;
        }
      if (!Have)
        Mine->RootCauses.push_back(RC);
      else if (RC.Flagged > Have->Flagged)
        *Have = RC; // keep the strongest observation of this cause
    }
    std::sort(Mine->RootCauses.begin(), Mine->RootCauses.end(),
              [](const RootCauseReport &A, const RootCauseReport &B) {
                if (A.Flagged != B.Flagged)
                  return A.Flagged > B.Flagged;
                return A.PC < B.PC;
              });
  }
  if (!Other.Improvements.empty()) {
    // Pc spaces are per-program (exactly why spots merge on (pc, loc)),
    // so cross-benchmark folds key on (pc, expression): two programs
    // blaming different expressions at the same pc keep both records.
    // A full-key collision (same expression under different recorded
    // regimes) keeps the strongest outcome -- mirroring the root-cause
    // policy above -- with field-wise tie-breaks so the benchmark fold
    // order never decides.
    auto Stronger = [](const ImproveRecord &X, const ImproveRecord &Y) {
      if (X.Improved != Y.Improved)
        return X.Improved;
      double GX = X.ErrorBefore - X.ErrorAfter;
      double GY = Y.ErrorBefore - Y.ErrorAfter;
      if (GX != GY)
        return GX > GY;
      if (X.ErrorBefore != Y.ErrorBefore)
        return X.ErrorBefore > Y.ErrorBefore;
      return X.Rewritten < Y.Rewritten;
    };
    for (const ImproveRecord &IR : Other.Improvements) {
      ImproveRecord *Have = nullptr;
      for (ImproveRecord &Mine : Improvements)
        if (Mine.PC == IR.PC && Mine.Original == IR.Original) {
          Have = &Mine;
          break;
        }
      if (!Have)
        Improvements.push_back(IR);
      else if (Stronger(IR, *Have))
        *Have = IR;
    }
    std::sort(Improvements.begin(), Improvements.end(),
              [](const ImproveRecord &A, const ImproveRecord &B) {
                if (A.PC != B.PC)
                  return A.PC < B.PC;
                return A.Original < B.Original;
              });
  }
}

// Report::renderJson lives in Serialize.cpp: the JSON shape is one
// schema traversal shared with the HGB binary backend.

std::vector<RootCauseReport> Report::allRootCauses() const {
  std::vector<RootCauseReport> All;
  std::set<uint32_t> Seen;
  for (const SpotReport &SR : Spots)
    for (const RootCauseReport &RC : SR.RootCauses)
      if (Seen.insert(RC.PC).second)
        All.push_back(RC);
  return All;
}

std::string Report::render() const {
  if (Spots.empty())
    return "No erroneous spots detected.\n";
  std::string Out;
  for (const SpotReport &SR : Spots) {
    Out += format("%s @ %s\n", spotKindName(SR.Kind), SR.Loc.str().c_str());
    if (SR.Kind == SpotKind::Output)
      Out += format("  %llu incorrect values of %llu (max error %.1f bits)\n",
                    static_cast<unsigned long long>(SR.Erroneous),
                    static_cast<unsigned long long>(SR.Executions),
                    SR.MaxErrorBits);
    else
      Out += format("  %llu divergent executions of %llu\n",
                    static_cast<unsigned long long>(SR.Erroneous),
                    static_cast<unsigned long long>(SR.Executions));
    if (SR.RootCauses.empty()) {
      Out += "  (no tracked erroneous expressions influenced this spot)\n";
      continue;
    }
    Out += "  Influenced by erroneous expressions:\n";
    for (const RootCauseReport &RC : SR.RootCauses) {
      std::string Indented = RC.FPCore;
      // Indent every line of the FPCore block.
      std::string Block = "  ";
      for (char C : Indented) {
        Block += C;
        if (C == '\n')
          Block += "  ";
      }
      Out += Block + "\n";
      if (!RC.ExampleInput.empty())
        Out += format("  Example problematic input: %s\n",
                      RC.ExampleInput.c_str());
      Out += format("  (at %s; flagged %llu times; max local error %.1f "
                    "bits)\n",
                    RC.Loc.str().c_str(),
                    static_cast<unsigned long long>(RC.Flagged),
                    RC.MaxLocalError);
    }
    Out += "\n";
  }
  if (!Improvements.empty()) {
    uint64_t Improved = 0;
    for (const ImproveRecord &IR : Improvements)
      Improved += IR.Improved ? 1 : 0;
    Out += format("Improver suggestions (%zu root causes, %llu improved):\n",
                  Improvements.size(),
                  static_cast<unsigned long long>(Improved));
    for (const ImproveRecord &IR : Improvements) {
      Out += format("  pc %u: %s   (%.1f bits mean error%s)\n", IR.PC,
                    IR.Original.c_str(), IR.ErrorBefore,
                    IR.HadSignificantError ? ", significant" : "");
      if (IR.Improved)
        Out += format("    -> %s   (%.1f bits mean error)\n",
                      IR.Rewritten.c_str(), IR.ErrorAfter);
      else
        Out += "    (no accuracy-improving rewrite in the database)\n";
    }
    Out += "\n";
  }
  return Out;
}
