//===- analysis/Analysis.cpp - The Herbgrind root-cause analysis ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "analysis/ErrorPredict.h"
#include "analysis/OpProfile.h"
#include "analysis/RealOps.h"
#include "ir/LibmLowering.h"
#include "support/FloatBits.h"
#include "support/LimbAlloc.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// Construction and the skip analysis
//===----------------------------------------------------------------------===//

/// Decides statically that a statement can never touch float shadow state,
/// so the instrumented executor can run it bare (Section 6's use of the
/// static type analysis to minimize instrumentation).
static bool computeSkippable(const Statement &S,
                             const std::vector<ValueType> &TempTypes) {
  auto TempIsInt = [&](uint32_t T) { return TempTypes[T] == ValueType::I64; };
  switch (S.Kind) {
  case StmtKind::Branch:
  case StmtKind::Jump:
  case StmtKind::Call:
  case StmtKind::Ret:
  case StmtKind::Halt:
    // Control flow carries no shadow state; divergence is detected at the
    // comparison that computed the condition.
    return true;
  case StmtKind::Const:
    return S.Literal.Ty == ValueType::I64 && TempIsInt(S.Dst);
  case StmtKind::Copy:
    return TempIsInt(S.Dst) && TempIsInt(S.Args[0]);
  case StmtKind::Op: {
    const OpInfo &Info = opInfo(S.Op);
    if (Info.IsFloatOp || Info.IsComparison)
      return false;
    // Pure integer ops on integer-typed temps.
    if (Info.ResultTy != ValueType::I64 ||
        Info.OperandTy != ValueType::I64)
      return false;
    return TempIsInt(S.Dst);
  }
  default:
    // Inputs, memory and thread-state traffic always need shadow handling
    // (stores must invalidate overlapping shadows even for integers).
    return false;
  }
}

/// A float op the generic shadowStep handles through its final "plain
/// scalar float op" branch: single-lane, no bit tricks, no lane shuffling.
/// These are the ops the batched real kernel can take over wholesale.
static bool isPlainScalarFloatOp(Opcode Op) {
  const OpInfo &Info = opInfo(Op);
  if (!Info.IsFloatOp || Info.IsComparison || Info.IsSIMD)
    return false;
  switch (Op) {
  case Opcode::I64toF64:
  case Opcode::I64BitsToF64:
  case Opcode::XorV128:
  case Opcode::AndV128:
  case Opcode::ExtractLaneF64:
  case Opcode::ExtractLaneF32:
  case Opcode::BuildV2F64:
    return false;
  default:
    return true;
  }
}

Herbgrind::Herbgrind(const Program &P, AnalysisConfig Config)
    : Prog(Config.WrapLibraryCalls ? P : lowerLibraryCalls(P)),
      Cfg(Config),
      Arena(Config.MaxExprDepth, Config.EquivDepth, Config.UsePools),
      TempTypes(inferTempTypes(Prog)) {
  assert(Prog.validate().empty() && "invalid program");
  Skippable.reserve(Prog.size());
  for (const Statement &S : Prog.statements())
    Skippable.push_back(computeSkippable(S, TempTypes));

  // Batchability (computed once, like Skippable). Lockstep needs the
  // program straight-line over temps only: every lane then visits the
  // identical statement sequence, which is what makes the per-record event
  // order -- lanes ascending at each pc -- equal to the sequential order.
  // The SoA tier additionally needs every value to be a scalar F64 moved
  // by plain float ops, so temps can live in contiguous double lanes.
  BatchableLockstep = true;
  BatchableSoA = true;
  BatchFastOp.reserve(Prog.size());
  for (const Statement &S : Prog.statements()) {
    bool FastOp = S.Kind == StmtKind::Op && isPlainScalarFloatOp(S.Op);
    BatchFastOp.push_back(FastOp);
    switch (S.Kind) {
    case StmtKind::Input:
    case StmtKind::Halt:
      break;
    case StmtKind::Const:
      if (S.Literal.Ty != ValueType::F64)
        BatchableSoA = false;
      break;
    case StmtKind::Copy:
      if (TempTypes[S.Dst] != ValueType::F64 ||
          TempTypes[S.Args[0]] != ValueType::F64)
        BatchableSoA = false;
      break;
    case StmtKind::Out:
      if (TempTypes[S.Args[0]] != ValueType::F64)
        BatchableSoA = false;
      break;
    case StmtKind::Op: {
      const OpInfo &Info = opInfo(S.Op);
      if (!FastOp || Info.ResultTy != ValueType::F64 ||
          Info.OperandTy != ValueType::F64)
        BatchableSoA = false;
      break;
    }
    default:
      // Control flow, memory, or thread-state traffic: lanes could
      // diverge or collide in the shared shadow tables.
      BatchableLockstep = false;
      BatchableSoA = false;
      break;
    }
  }
  BatchableSoA = BatchableSoA && BatchableLockstep;
  // One shadow state serves every run: runOnInput resets it in place, so
  // its value pool and memory-table buckets are reused run over run.
  Shadow = std::make_unique<ShadowState>(Arena, Sets, Prog.numTemps(),
                                         Cfg.UsePools,
                                         Cfg.SharedShadowValues);
}

void Herbgrind::reset() {
  Shadow->reset();
  Arena.resetForReuse();
  // Interned influence sets survive on purpose: they are value-interned,
  // so reuse cannot change results, only skip re-interning.
  Ops.clear();
  Spots.clear();
  LastOutputs.clear();
  LaneSuspects.clear();
  TotalSteps = 0;
  ShadowOps = 0;
  Skipped = 0;
  RunSuspect = false;
}

AnalysisStats Herbgrind::stats() const {
  AnalysisStats St;
  St.InstrumentedSteps = TotalSteps;
  St.ShadowOpsExecuted = ShadowOps;
  St.SkippedByTypeAnalysis = Skipped;
  St.TraceNodesAllocated = Arena.totalAllocated();
  St.ShadowValuesAllocated = Shadow->totalValuesCreated();
  St.InfluenceSetsInterned = Sets.internedSets();
  return St;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

static double concreteAsDouble(const Value &V) {
  return V.Ty == ValueType::F32 ? static_cast<double>(V.F32) : V.F64;
}

ShadowValue *Herbgrind::lazyShadow(uint32_t Temp, unsigned Lane,
                                   const Value &Concrete, ValueType Ty) {
  ShadowValue *SV = Shadow->tempLane(Temp, Lane);
  if (SV)
    return SV;
  // Lazy shadowing (Section 6): the first float operation touching an
  // unshadowed value makes a provenance-free shadow from its concrete bits.
  BigFloat Real = Ty == ValueType::F32
                      ? BigFloat::fromFloat(Concrete.F32, Cfg.PrecisionBits)
                      : BigFloat::fromDouble(Concrete.F64, Cfg.PrecisionBits);
  TraceNode *Leaf = Arena.leaf(concreteAsDouble(Concrete));
  SV = Shadow->create(std::move(Real), Leaf, Sets.empty(), Ty);
  Shadow->setTempLane(Temp, Lane, SV); // temp keeps the reference
  return SV;
}

double herbgrind::shadowValueErrorBits(const ShadowValue *SV,
                                       const Value &Concrete) {
  bool ConcreteNaN = Concrete.Ty == ValueType::F32 ? std::isnan(Concrete.F32)
                                                   : std::isnan(Concrete.F64);
  // The paper reports NaN values as maximal error even when the shadow
  // real is NaN too (the Gram-Schmidt case study's "64 bits of error").
  if (ConcreteNaN)
    return Concrete.Ty == ValueType::F32 ? 32.0 : 64.0;
  if (!SV)
    return 0.0;
  if (SV->Ty == ValueType::F32)
    return bitsOfErrorFloat(Concrete.F32, SV->Real.toFloat());
  return bitsOfErrorDouble(Concrete.F64, SV->Real.toDouble());
}


//===----------------------------------------------------------------------===//
// The main loop
//===----------------------------------------------------------------------===//

void Herbgrind::runOnInput(const std::vector<double> &Inputs) {
  MachineState State(Prog, Inputs);
  // Shadow state is per-run: concrete memory starts fresh, so stale shadow
  // cells from a previous run would be wrong. Resetting in place (instead
  // of rebuilding) keeps the value pool's slabs and the memory table's
  // buckets warm across the runs of a shard.
  Shadow->reset();
  RunSuspect = false;

  bool Running = true;
  while (Running && State.Steps < Cfg.MaxSteps) {
    uint32_t PC = State.PC;
    const Statement &S = Prog.stmt(PC);
    if (Cfg.UseTypeAnalysis && Skippable[PC]) {
      ++Skipped;
      Running = stepConcrete(Prog, State);
      continue;
    }
    // Capture operand concrete values before the concrete step (the
    // destination may alias an operand).
    Value Args[3];
    for (unsigned I = 0; I < S.NumArgs; ++I)
      Args[I] = State.Temps[S.Args[I]];
    Running = stepConcrete(Prog, State);
    shadowStep(S, PC, Args, State);
  }
  TotalSteps += State.Steps;
  LastOutputs = std::move(State.Outputs);
}

//===----------------------------------------------------------------------===//
// Sample-batched execution
//===----------------------------------------------------------------------===//

void Herbgrind::runOnBatch(const std::vector<double> *Inputs,
                           size_t NumLanes) {
  LaneSuspects.assign(NumLanes, 0);
  if (NumLanes == 0)
    return;
  if (NumLanes == 1 || !BatchableLockstep) {
    // Sequential fallback: the batched API's semantics *is* this loop.
    for (size_t L = 0; L < NumLanes; ++L) {
      runOnInput(Inputs[L]);
      LaneSuspects[L] = RunSuspect;
    }
    return;
  }
  if (Cfg.PredicateOnly && BatchableSoA)
    runPredicateBatchSoA(Inputs, NumLanes);
  else
    runBatchLockstep(Inputs, NumLanes);
}

void Herbgrind::runBatchLockstep(const std::vector<double> *Inputs,
                                 size_t NumLanes) {
  // One concrete machine per lane; one shared shadow state with a temp
  // table per lane. The program is straight-line (lockstepBatchable), so
  // every lane executes the identical statement sequence and each record
  // sees its lanes in ascending order -- the same per-record event
  // sequence as sequential runs, which is what keeps reports
  // byte-identical.
  std::vector<MachineState> States;
  States.reserve(NumLanes);
  for (size_t L = 0; L < NumLanes; ++L)
    States.emplace_back(Prog, Inputs[L]);
  Shadow->reset();
  Shadow->beginBatch(static_cast<unsigned>(NumLanes));
  RunSuspect = false;

  const bool Profiled = opprof::enabled();
  bool Running = true;
  while (Running && States[0].Steps < Cfg.MaxSteps) {
    uint32_t PC = States[0].PC;
    const Statement &S = Prog.stmt(PC);
    if (Cfg.UseTypeAnalysis && Skippable[PC]) {
      Skipped += NumLanes;
      for (size_t L = 0; L < NumLanes; ++L)
        Running = stepConcrete(Prog, States[L]);
      continue;
    }
    if (!Cfg.PredicateOnly && BatchFastOp[PC] && !Profiled) {
      // The amortized path: one record lookup, one batched real kernel.
      // While the profiler samples, fall through to the generic per-lane
      // path instead so cost attribution keeps covering real evaluation.
      Running = shadowFloatBatchStep(S, PC, States, NumLanes);
      continue;
    }
    for (size_t L = 0; L < NumLanes; ++L) {
      Shadow->selectLane(static_cast<unsigned>(L));
      RunSuspect = LaneSuspects[L] != 0;
      Value Args[3];
      for (unsigned I = 0; I < S.NumArgs; ++I)
        Args[I] = States[L].Temps[S.Args[I]];
      Running = stepConcrete(Prog, States[L]);
      shadowStep(S, PC, Args, States[L]);
      LaneSuspects[L] = RunSuspect;
    }
  }
  Shadow->selectLane(0);
  for (size_t L = 0; L < NumLanes; ++L)
    TotalSteps += States[L].Steps;
  RunSuspect = LaneSuspects[NumLanes - 1] != 0;
  LastOutputs = std::move(States[NumLanes - 1].Outputs);
}

bool Herbgrind::shadowFloatBatchStep(const Statement &S, uint32_t PC,
                                     std::vector<MachineState> &States,
                                     size_t NumLanes) {
  const unsigned NumArgs = S.NumArgs;
  // Capture concrete operands, then step every lane concretely (the
  // destination may alias an operand).
  BatchArgVals.resize(NumLanes * 3);
  bool Running = true;
  for (size_t L = 0; L < NumLanes; ++L) {
    for (unsigned I = 0; I < NumArgs; ++I)
      BatchArgVals[L * 3 + I] = States[L].Temps[S.Args[I]];
    Running = stepConcrete(Prog, States[L]);
  }
  ShadowOps += NumLanes;

  OpRecord &Rec = Ops[PC];
  if (Rec.Executions == 0) {
    Rec.Op = S.Op;
    Rec.Loc = S.Loc;
  }

  // Phase A: lazily shadow the operands of every lane and copy their reals
  // into one contiguous lane-major workspace.
  BatchArgSV.resize(NumLanes * 3);
  BatchReals.resize(NumLanes * 3);
  BatchResults.resize(NumLanes);
  for (size_t L = 0; L < NumLanes; ++L) {
    Shadow->selectLane(static_cast<unsigned>(L));
    for (unsigned I = 0; I < NumArgs; ++I) {
      ShadowValue *SV = lazyShadow(S.Args[I], 0, BatchArgVals[L * 3 + I],
                                   BatchArgVals[L * 3 + I].Ty);
      BatchArgSV[L * 3 + I] = SV;
      BatchReals[L * 3 + I] = SV->Real;
    }
  }

  // Phase B: the batched real kernel strides over the workspace's inline
  // limbs, one destination-passing evaluation per lane.
  evalRealOpIntoBatch(BatchResults.data(), S.Op, BatchReals.data(), 3,
                      NumArgs, NumLanes);

  // Phase C: per-lane bookkeeping on the already-computed real, lanes
  // ascending so the record sees the sequential event order.
  for (size_t L = 0; L < NumLanes; ++L) {
    Shadow->selectLane(static_cast<unsigned>(L));
    ShadowValue *Out = shadowScalarOpCoreWithReal(
        Cfg, *Shadow, Rec, S.Op, PC, &BatchArgSV[L * 3], &BatchArgVals[L * 3],
        NumArgs, States[L].Temps[S.Dst], std::move(BatchResults[L]));
    Shadow->setTempLane(S.Dst, 0, Out);
  }
  return Running;
}

void Herbgrind::runPredicateBatchSoA(const std::vector<double> *Inputs,
                                     size_t NumLanes) {
  // Tier 0 over a struct-of-arrays state: each temp is a contiguous row of
  // NumLanes doubles for the concrete value, the signed running-error
  // estimate, and its noise bound, plus a has-shadow byte. No shadow
  // values, no pools, no MachineState -- the inner lane loops walk plain
  // double arrays. Semantics (including which lanes become suspect, the
  // final lane's outputs, and every stat counter) mirror NumLanes
  // sequential predicate runs exactly.
  const size_t NumTemps = Prog.numTemps();
  SoAConc.assign(NumTemps * NumLanes, 0.0);
  SoADelta.resize(NumTemps * NumLanes);
  SoANoise.resize(NumTemps * NumLanes);
  SoAHas.assign(NumTemps * NumLanes, 0);
  auto Row = [NumLanes](std::vector<double> &V, uint32_t Temp) {
    return V.data() + size_t(Temp) * NumLanes;
  };

  std::vector<Value> Outputs; // final lane's, for lastOutputs()
  uint64_t Steps = 0;
  uint32_t PC = 0;
  bool Running = true;
  while (Running && Steps < Cfg.MaxSteps) {
    const Statement &S = Prog.stmt(PC);
    ++Steps;
    switch (S.Kind) {
    case StmtKind::Const: {
      double *C = Row(SoAConc, S.Dst);
      uint8_t *H = &SoAHas[size_t(S.Dst) * NumLanes];
      for (size_t L = 0; L < NumLanes; ++L) {
        C[L] = S.Literal.F64;
        H[L] = 0; // lazily shadowed at first use, like the scalar path
      }
      break;
    }
    case StmtKind::Input: {
      double *C = Row(SoAConc, S.Dst);
      uint8_t *H = &SoAHas[size_t(S.Dst) * NumLanes];
      for (size_t L = 0; L < NumLanes; ++L) {
        C[L] = Inputs[L][S.InputIndex];
        H[L] = 0;
      }
      break;
    }
    case StmtKind::Copy: {
      size_t Dst = size_t(S.Dst) * NumLanes;
      size_t Src = size_t(S.Args[0]) * NumLanes;
      std::copy_n(&SoAConc[Src], NumLanes, &SoAConc[Dst]);
      std::copy_n(&SoADelta[Src], NumLanes, &SoADelta[Dst]);
      std::copy_n(&SoANoise[Src], NumLanes, &SoANoise[Dst]);
      std::copy_n(&SoAHas[Src], NumLanes, &SoAHas[Dst]);
      break;
    }
    case StmtKind::Op: {
      ShadowOps += NumLanes;
      const double *AC[3];
      const double *AD[3];
      const double *AN[3];
      const uint8_t *AH[3];
      for (unsigned I = 0; I < S.NumArgs; ++I) {
        AC[I] = Row(SoAConc, S.Args[I]);
        AD[I] = Row(SoADelta, S.Args[I]);
        AN[I] = Row(SoANoise, S.Args[I]);
        AH[I] = &SoAHas[size_t(S.Args[I]) * NumLanes];
      }
      double *DC = Row(SoAConc, S.Dst);
      double *DD = Row(SoADelta, S.Dst);
      double *DN = Row(SoANoise, S.Dst);
      uint8_t *DH = &SoAHas[size_t(S.Dst) * NumLanes];
      for (size_t L = 0; L < NumLanes; ++L) {
        Value ArgV[3];
        errpredict::PredVal ArgP[3];
        for (unsigned I = 0; I < S.NumArgs; ++I) {
          ArgV[I] = Value::ofF64(AC[I][L]);
          ArgP[I] = AH[I][L] ? errpredict::PredVal{AD[I][L], AN[I][L]}
                             : errpredict::PredVal{};
        }
        // Value-based scalar evaluation: the concrete lane stays
        // bit-identical to the interpreter's by construction.
        Value R = evalScalarOp(S.Op, ArgV, S.NumArgs);
        errpredict::PredOp P =
            errpredict::predictScalarOp(S.Op, ArgV, ArgP, S.NumArgs, R);
        DC[L] = R.F64;
        DD[L] = P.Delta;
        DN[L] = P.Noise;
        DH[L] = 1;
      }
      break;
    }
    case StmtKind::Out: {
      const double *C = Row(SoAConc, S.Args[0]);
      const double *D = Row(SoADelta, S.Args[0]);
      const double *N = Row(SoANoise, S.Args[0]);
      const uint8_t *H = &SoAHas[size_t(S.Args[0]) * NumLanes];
      for (size_t L = 0; L < NumLanes; ++L) {
        if (errpredict::outputSuspect(
                Value::ofF64(C[L]),
                H[L] ? errpredict::predTotal(D[L], N[L]) : 0.0,
                Cfg.OutputErrorThreshold))
          LaneSuspects[L] = 1;
      }
      Outputs.push_back(Value::ofF64(C[NumLanes - 1]));
      break;
    }
    case StmtKind::Halt:
      // Halt is Skippable (control flow), so the scalar loop counts it as
      // skipped when the type analysis is on; mirror that per lane.
      if (Cfg.UseTypeAnalysis)
        Skipped += NumLanes;
      Running = false;
      break;
    default:
      assert(false && "non-SoA statement in SoA batch");
      Running = false;
      break;
    }
    ++PC;
  }
  TotalSteps += Steps * NumLanes;
  LastOutputs = std::move(Outputs);
  RunSuspect = LaneSuspects[NumLanes - 1] != 0;
}

//===----------------------------------------------------------------------===//
// Per-statement shadow semantics
//===----------------------------------------------------------------------===//

/// Lane geometry of a value type in untyped storage.
static void laneLayout(ValueType Ty, unsigned &NumLanes, unsigned &LaneSize,
                       ValueType &LaneTy) {
  switch (Ty) {
  case ValueType::V2F64:
    NumLanes = 2;
    LaneSize = 8;
    LaneTy = ValueType::F64;
    return;
  case ValueType::V4F32:
    NumLanes = 4;
    LaneSize = 4;
    LaneTy = ValueType::F32;
    return;
  case ValueType::F32:
    NumLanes = 1;
    LaneSize = 4;
    LaneTy = ValueType::F32;
    return;
  default:
    NumLanes = 1;
    LaneSize = 8;
    LaneTy = Ty;
    return;
  }
}

void Herbgrind::shadowStep(const Statement &S, uint32_t PC, const Value *Args,
                           MachineState &State) {
  switch (S.Kind) {
  case StmtKind::Const:
  case StmtKind::Input:
    // Lazily shadowed at first use; just make sure no stale shadow lives
    // in the destination temp.
    Shadow->clearTemp(S.Dst);
    return;

  case StmtKind::Copy: {
    // Copies share the shadow value (Section 6 "Sharing").
    ShadowValue *Lanes[4] = {nullptr, nullptr, nullptr, nullptr};
    for (unsigned L = 0; L < 4; ++L) {
      ShadowValue *SV = Shadow->tempLane(S.Args[0], L);
      Lanes[L] = SV ? Shadow->share(SV) : nullptr;
    }
    for (unsigned L = 0; L < 4; ++L)
      Shadow->setTempLane(S.Dst, L, Lanes[L]);
    return;
  }

  case StmtKind::Get:
  case StmtKind::Load: {
    unsigned NumLanes, LaneSize;
    ValueType LaneTy;
    laneLayout(S.AccessTy, NumLanes, LaneSize, LaneTy);
    Shadow->clearTemp(S.Dst);
    for (unsigned L = 0; L < NumLanes; ++L) {
      ShadowValue *SV;
      if (S.Kind == StmtKind::Get) {
        SV = Shadow->getThreadState(S.Disp + int64_t(L) * LaneSize, LaneSize);
      } else {
        uint64_t Addr = static_cast<uint64_t>(Args[0].asI64()) +
                        static_cast<uint64_t>(S.Disp) + L * LaneSize;
        SV = Shadow->getMemory(Addr, LaneSize);
      }
      if (SV && SV->Ty == LaneTy)
        Shadow->setTempLane(S.Dst, L, Shadow->share(SV));
    }
    return;
  }

  case StmtKind::Put:
  case StmtKind::Store: {
    const Value &Src = Args[S.Kind == StmtKind::Put ? 0 : 1];
    uint32_t SrcTemp = S.Args[S.Kind == StmtKind::Put ? 0 : 1];
    unsigned NumLanes, LaneSize;
    ValueType LaneTy;
    laneLayout(Src.Ty, NumLanes, LaneSize, LaneTy);
    (void)LaneTy;
    for (unsigned L = 0; L < NumLanes; ++L) {
      ShadowValue *SV = Shadow->tempLane(SrcTemp, L);
      ShadowValue *Stored = SV ? Shadow->share(SV) : nullptr;
      if (S.Kind == StmtKind::Put) {
        Shadow->putThreadState(S.Disp + int64_t(L) * LaneSize, LaneSize,
                               Stored);
      } else {
        uint64_t Addr = static_cast<uint64_t>(Args[0].asI64()) +
                        static_cast<uint64_t>(S.Disp) + L * LaneSize;
        Shadow->putMemory(Addr, LaneSize, Stored);
      }
    }
    return;
  }

  case StmtKind::Out:
    shadowOutputSpot(S, PC, Args[0]);
    return;

  case StmtKind::Branch:
  case StmtKind::Jump:
  case StmtKind::Call:
  case StmtKind::Ret:
  case StmtKind::Halt:
    return;

  case StmtKind::Op:
    break;
  }

  const OpInfo &Info = opInfo(S.Op);

  if (Info.IsComparison) {
    if (S.Op == Opcode::F64toI64)
      shadowConversionSpot(S, PC, Args, State.Temps[S.Dst]);
    else
      shadowComparisonSpot(S, PC, Args, State.Temps[S.Dst]);
    Shadow->clearTemp(S.Dst);
    return;
  }

  if (!Info.IsFloatOp) {
    // Integer op: the result carries no shadow.
    Shadow->clearTemp(S.Dst);
    return;
  }

  // Float-producing ops.
  switch (S.Op) {
  case Opcode::I64toF64:
  case Opcode::I64BitsToF64:
    // Fresh float with integer provenance: lazily shadowed at use.
    Shadow->clearTemp(S.Dst);
    return;

  case Opcode::XorV128:
  case Opcode::AndV128:
    shadowBitwiseVector(S, PC, Args, State.Temps[S.Dst]);
    return;

  case Opcode::ExtractLaneF64:
  case Opcode::ExtractLaneF32: {
    unsigned Lane = static_cast<unsigned>(Args[1].asI64());
    ShadowValue *SV = Shadow->tempLane(S.Args[0], Lane);
    Shadow->clearTemp(S.Dst);
    if (SV)
      Shadow->setTempLane(S.Dst, 0, Shadow->share(SV));
    return;
  }

  case Opcode::BuildV2F64: {
    ShadowValue *A = Shadow->tempLane(S.Args[0], 0);
    ShadowValue *B = Shadow->tempLane(S.Args[1], 0);
    Shadow->clearTemp(S.Dst);
    if (A)
      Shadow->setTempLane(S.Dst, 0, Shadow->share(A));
    if (B)
      Shadow->setTempLane(S.Dst, 1, Shadow->share(B));
    return;
  }

  default:
    break;
  }

  if (Info.IsSIMD) {
    // Lane-wise SIMD arithmetic: run the scalar shadow op per lane.
    Opcode Scalar = simdScalarOp(S.Op);
    const Value &Result = State.Temps[S.Dst];
    unsigned Lanes = Result.laneCount();
    for (unsigned L = 0; L < Lanes; ++L) {
      Value LaneArgs[2];
      Value LaneResult;
      if (Result.Ty == ValueType::V2F64) {
        for (unsigned I = 0; I < S.NumArgs; ++I)
          LaneArgs[I] = Value::ofF64(Args[I].V2F64[L]);
        LaneResult = Value::ofF64(Result.V2F64[L]);
      } else {
        for (unsigned I = 0; I < S.NumArgs; ++I)
          LaneArgs[I] = Value::ofF32(Args[I].V4F32[L]);
        LaneResult = Value::ofF32(Result.V4F32[L]);
      }
      unsigned ArgLanes[2] = {L, L};
      shadowFloatScalar(Scalar, PC, S.Loc, S.Dst, L, S.Args, ArgLanes,
                        LaneArgs, S.NumArgs, LaneResult);
    }
    return;
  }

  // Plain scalar float op (arithmetic, wrapped library call, rounding,
  // float<->float conversion).
  unsigned ArgLanes[3] = {0, 0, 0};
  shadowFloatScalar(S.Op, PC, S.Loc, S.Dst, 0, S.Args, ArgLanes, Args,
                    S.NumArgs, State.Temps[S.Dst]);
}

//===----------------------------------------------------------------------===//
// Bit-trick recognition (Section 5.3)
//===----------------------------------------------------------------------===//

void Herbgrind::shadowBitwiseVector(const Statement &S, uint32_t PC,
                                    const Value *Args, const Value &Result) {
  // gcc negates doubles by XORing the sign bit and takes absolute values by
  // ANDing it away; recognize both shapes (mask in either operand).
  const uint64_t SignMask = 1ULL << 63;
  const uint64_t AbsMask = ~SignMask;
  auto LaneBits = [](const Value &V, unsigned L) {
    return bitsOfDouble(V.V2F64[L]);
  };
  for (unsigned MaskIdx = 0; MaskIdx < 2; ++MaskIdx) {
    unsigned ValIdx = 1 - MaskIdx;
    bool IsNeg = S.Op == Opcode::XorV128 &&
                 LaneBits(Args[MaskIdx], 0) == SignMask &&
                 LaneBits(Args[MaskIdx], 1) == SignMask;
    bool IsAbs = S.Op == Opcode::AndV128 &&
                 LaneBits(Args[MaskIdx], 0) == AbsMask &&
                 LaneBits(Args[MaskIdx], 1) == AbsMask;
    if (!IsNeg && !IsAbs)
      continue;
    Opcode Recognized = IsNeg ? Opcode::NegF64 : Opcode::AbsF64;
    for (unsigned L = 0; L < 2; ++L) {
      Value LaneArg = Value::ofF64(Args[ValIdx].V2F64[L]);
      Value LaneResult = Value::ofF64(Result.V2F64[L]);
      unsigned ArgLanes[1] = {L};
      uint32_t ArgTemps[1] = {S.Args[ValIdx]};
      shadowFloatScalar(Recognized, PC, S.Loc, S.Dst, L, ArgTemps, ArgLanes,
                        &LaneArg, 1, LaneResult);
    }
    return;
  }
  // Unrecognized bit manipulation: conservatively drop shadows.
  Shadow->clearTemp(S.Dst);
}

//===----------------------------------------------------------------------===//
// The scalar float shadow op: reals, local error, influences, traces
//===----------------------------------------------------------------------===//

void Herbgrind::shadowFloatScalar(Opcode Op, uint32_t PC,
                                  const SourceLoc &Loc, uint32_t DstTemp,
                                  unsigned DstLane, const uint32_t *ArgTemps,
                                  const unsigned *ArgLanes,
                                  const Value *ArgConcrete, unsigned NumArgs,
                                  const Value &ConcreteResult) {
  ++ShadowOps;

  if (Cfg.PredicateOnly) {
    // Tier 0: no reals, no traces, no records -- just propagate the
    // conservative running-error pair. Unshadowed operands are exact.
    errpredict::PredVal ArgP[3];
    for (unsigned I = 0; I < NumArgs; ++I)
      if (ShadowValue *SV = Shadow->tempLane(ArgTemps[I], ArgLanes[I]))
        ArgP[I] = {SV->PredDelta, SV->PredNoise};
    errpredict::PredOp P = errpredict::predictScalarOp(
        Op, ArgConcrete, ArgP, NumArgs, ConcreteResult);
    Shadow->setTempLane(DstTemp, DstLane,
                        Shadow->createPredicate(P.Delta, P.Noise,
                                                opInfo(Op).ResultTy));
    return;
  }

  // Gather (or lazily create) shadow inputs: Figure 4's
  //   v = if MR[x] in R then MR[x] else M[x].
  ShadowValue *ArgSV[3] = {nullptr, nullptr, nullptr};
  for (unsigned I = 0; I < NumArgs; ++I)
    ArgSV[I] = lazyShadow(ArgTemps[I], ArgLanes[I], ArgConcrete[I],
                          ArgConcrete[I].Ty);

  OpRecord &Rec = Ops[PC];
  if (Rec.Executions == 0) {
    Rec.Op = Op;
    Rec.Loc = Loc;
  }
  ShadowValue *Out = shadowScalarOpCore(Cfg, *Shadow, Rec, Op, PC, ArgSV,
                                        ArgConcrete, NumArgs, ConcreteResult);
  Shadow->setTempLane(DstTemp, DstLane, Out);
}

ShadowValue *herbgrind::shadowScalarOpCore(
    const AnalysisConfig &Cfg, ShadowState &Shadow, OpRecord &Rec, Opcode Op,
    uint32_t PC, ShadowValue *const *ArgSV, const Value *ArgConcrete,
    unsigned NumArgs, const Value &ConcreteResult) {
  // Cost attribution (opprof, --profile-ops): bracket this execution with
  // a clock read and a limballoc counter delta. One relaxed load when the
  // profiler is off.
  const bool ProfThis = opprof::shouldSample();
  uint64_t ProfT0 = 0, ProfHeap0 = 0, ProfHits0 = 0;
  if (ProfThis) {
    ProfHeap0 = limballoc::heapAllocs();
    ProfHits0 = limballoc::cacheHits();
    ProfT0 = metrics::nowNanos();
  }

  // [[.]]_R: the op over the reals, destination-passing straight into the
  // value the result shadow will own. The argument reals are copied into a
  // contiguous array first (evalRealOpInto wants one); the batched path
  // amortizes exactly this staging across a whole lane workspace.
  BigFloat Reals[3];
  for (unsigned I = 0; I < NumArgs; ++I)
    Reals[I] = ArgSV[I]->Real;
  BigFloat RealResult;
  evalRealOpInto(RealResult, Op, Reals, NumArgs);

  ShadowValue *Result = shadowScalarOpCoreWithReal(
      Cfg, Shadow, Rec, Op, PC, ArgSV, ArgConcrete, NumArgs, ConcreteResult,
      std::move(RealResult));
  if (ProfThis)
    opprof::recordSample(Rec, metrics::nowNanos() - ProfT0,
                         limballoc::heapAllocs() - ProfHeap0,
                         limballoc::cacheHits() - ProfHits0);
  return Result;
}

ShadowValue *herbgrind::shadowScalarOpCoreWithReal(
    const AnalysisConfig &Cfg, ShadowState &Shadow, OpRecord &Rec, Opcode Op,
    uint32_t PC, ShadowValue *const *ArgSV, const Value *ArgConcrete,
    unsigned NumArgs, const Value &ConcreteResult, BigFloat &&RealResult) {
  const OpInfo &Info = opInfo(Op);
  ValueType ResultTy = Info.ResultTy;
  TraceArena &Arena = Shadow.arena();
  InfluenceSets &Sets = Shadow.sets();

  // Local error (Section 4.2): the error the op would produce even on
  // exactly-computed inputs: E( F(f_R(v)), f_F(F(v)) ).
  Value RoundedArgs[3];
  for (unsigned I = 0; I < NumArgs; ++I) {
    if (ArgConcrete[I].Ty == ValueType::F32)
      RoundedArgs[I] = Value::ofF32(ArgSV[I]->Real.toFloat());
    else
      RoundedArgs[I] = Value::ofF64(ArgSV[I]->Real.toDouble());
  }
  Value FloatOnExact = evalScalarOp(Op, RoundedArgs, NumArgs);
  double LocalErr =
      ResultTy == ValueType::F32
          ? bitsOfErrorFloat(FloatOnExact.F32, RealResult.toFloat())
          : bitsOfErrorDouble(FloatOnExact.F64, RealResult.toDouble());
  // An operation that *creates* a NaN from non-NaN inputs has maximal
  // local error (the paper reports NaNs as maximal error); mere NaN
  // propagation stays neutral so one bad op does not flag its whole
  // downstream cone.
  bool ResultIsNaN = ResultTy == ValueType::F32
                         ? std::isnan(FloatOnExact.F32)
                         : std::isnan(FloatOnExact.F64);
  if (ResultIsNaN || RealResult.isNaN()) {
    bool AnyInputNaN = false;
    for (unsigned I = 0; I < NumArgs; ++I)
      AnyInputNaN |= ArgSV[I]->Real.isNaN();
    if (!AnyInputNaN)
      LocalErr = ResultTy == ValueType::F32 ? 32.0 : 64.0;
  }
  bool Flagged = LocalErr > Cfg.LocalErrorThreshold;

  // Influence propagation, with compensating-term detection (Section 5.3):
  // an add/sub that returns one of its arguments in the reals, without
  // making its error worse, is treated as passing that argument through;
  // the other (compensating) term's influences are dropped.
  const InflSet *Infl = nullptr;
  bool IsAddSub = Op == Opcode::AddF64 || Op == Opcode::SubF64 ||
                  Op == Opcode::AddF32 || Op == Opcode::SubF32;
  if (Cfg.DetectCompensation && IsAddSub && NumArgs == 2 &&
      !RealResult.isNaN()) {
    for (unsigned Pass = 0; Pass < 2 && !Infl; ++Pass) {
      BigFloat PassReal = Pass == 1 && (Op == Opcode::SubF64 ||
                                        Op == Opcode::SubF32)
                              ? ArgSV[Pass]->Real.negated()
                              : ArgSV[Pass]->Real;
      if (ArgSV[Pass]->Real.isNaN() || !BigFloat::eq(RealResult, PassReal))
        continue;
      double OutErr = ResultTy == ValueType::F32
                          ? bitsOfErrorFloat(ConcreteResult.F32,
                                             RealResult.toFloat())
                          : bitsOfErrorDouble(ConcreteResult.F64,
                                              RealResult.toDouble());
      double ArgErr = shadowValueErrorBits(ArgSV[Pass], ArgConcrete[Pass]);
      if (OutErr <= ArgErr) {
        Infl = ArgSV[Pass]->Influences;
        ++Rec.CompensationsDetected;
      }
    }
  }
  if (!Infl) {
    Infl = Sets.empty();
    for (unsigned I = 0; I < NumArgs; ++I)
      Infl = Sets.unionOf(Infl, ArgSV[I]->Influences);
  }
  if (Flagged)
    Infl = Sets.insert(Infl, PC);

  // Concrete expression trace (Section 4.3).
  TraceNode *Kids[3];
  for (unsigned I = 0; I < NumArgs; ++I)
    Kids[I] = ArgSV[I]->Trace;
  TraceNode *Trace =
      Arena.node(Op, PC, concreteAsDouble(ConcreteResult), Kids, NumArgs);

  // Incremental record update (Section 6 "Incrementalization").
  ++Rec.Executions;
  Rec.LocalError.add(LocalErr);
  std::vector<VarBinding> Bindings;
  std::vector<Promotion> Promotions;
  if (!Rec.Expr) {
    Rec.Expr = symbolize(Arena, Trace);
  } else {
    Rec.Expr = antiUnify(Arena, Rec.Expr.get(), Trace, Rec.NextVarIdx,
                         Bindings, &Promotions);
    // A promoted constant held its value on every earlier round; credit
    // that history to the new variable before folding this round's
    // binding, so a variable's summary is exactly the multiset of values
    // its position took. That property is what makes per-shard summaries
    // merge losslessly (Executions already counts this round; Flagged
    // does not yet).
    for (const Promotion &Pr : Promotions) {
      Rec.TotalInputs.addRepeated(Pr.Idx, Pr.OldValue, Rec.Executions - 1);
      Rec.ProblematicInputs.addRepeated(Pr.Idx, Pr.OldValue, Rec.Flagged);
      // The worst flagged round (if any) predates this promotion, so the
      // new variable's position held the constant then: complete the
      // example input retroactively too.
      if (Rec.Flagged > 0)
        Rec.ExampleProblematic.push_back({Pr.Idx, Pr.OldValue});
    }
    Rec.TotalInputs.record(Bindings);
  }
  if (Flagged) {
    ++Rec.Flagged;
    Rec.ProblematicInputs.record(Bindings);
    if (LocalErr >= Rec.MaxFlaggedLocalError) {
      Rec.MaxFlaggedLocalError = LocalErr;
      if (!Bindings.empty())
        Rec.ExampleProblematic = Bindings;
    }
  }

  // The result shadow (create consumes the trace reference).
  return Shadow.create(std::move(RealResult), Trace, Infl, ResultTy);
}

//===----------------------------------------------------------------------===//
// Spots (Section 4.2)
//===----------------------------------------------------------------------===//

void herbgrind::shadowComparisonSpotCore(const AnalysisConfig &Cfg,
                                         SpotRecord &Spot, Opcode Op,
                                         ShadowValue *A, ShadowValue *B,
                                         const Value &ConcA,
                                         const Value &ConcB, bool FloatPred) {
  if (!A && !B) {
    // No shadows: the real predicate trivially agrees with the float one.
    Spot.ErrorBits.add(0.0);
    return;
  }
  ValueType Ty = ConcA.Ty;
  BigFloat TmpA, TmpB;
  auto RealOf = [&](ShadowValue *SV, const Value &V,
                    BigFloat &Tmp) -> const BigFloat & {
    if (SV)
      return SV->Real; // borrow the shadow's real; no copy on the hot path
    Tmp = Ty == ValueType::F32
              ? BigFloat::fromFloat(V.F32, Cfg.PrecisionBits)
              : BigFloat::fromDouble(V.F64, Cfg.PrecisionBits);
    return Tmp;
  };
  bool RealPred =
      evalRealPredicate(Op, RealOf(A, ConcA, TmpA), RealOf(B, ConcB, TmpB));
  // Note: Figure 4 in the paper attaches the argument influences to the
  // *agreeing* case; per the surrounding text ("cases when it diverges ...
  // are reported as errors") we attach them on divergence.
  if (RealPred != FloatPred) {
    ++Spot.Erroneous;
    Spot.ErrorBits.add(1.0);
    for (ShadowValue *SV : {A, B})
      if (SV)
        for (uint32_t OpPC : *SV->Influences)
          Spot.InfluencingOps.insert(OpPC);
  } else {
    Spot.ErrorBits.add(0.0);
  }
}

void herbgrind::shadowConversionSpotCore(SpotRecord &Spot, ShadowValue *A,
                                         int64_t IntResult) {
  if (!A) {
    Spot.ErrorBits.add(0.0);
    return;
  }
  int64_t RealInt = A->Real.toInt64Trunc();
  if (RealInt != IntResult) {
    ++Spot.Erroneous;
    Spot.ErrorBits.add(1.0);
    for (uint32_t OpPC : *A->Influences)
      Spot.InfluencingOps.insert(OpPC);
  } else {
    Spot.ErrorBits.add(0.0);
  }
}

void herbgrind::shadowOutputSpotCore(const AnalysisConfig &Cfg,
                                     SpotRecord &Spot, ShadowValue *SV,
                                     const Value &LaneVal) {
  ++Spot.Executions;
  double Err = shadowValueErrorBits(SV, LaneVal);
  Spot.ErrorBits.add(Err);
  if (Err > Cfg.OutputErrorThreshold) {
    ++Spot.Erroneous;
    if (SV)
      for (uint32_t OpPC : *SV->Influences)
        Spot.InfluencingOps.insert(OpPC);
  }
}

void Herbgrind::shadowComparisonSpot(const Statement &S, uint32_t PC,
                                     const Value *Args, const Value &Result) {
  if (Cfg.PredicateOnly) {
    ShadowValue *A = Shadow->tempLane(S.Args[0], 0);
    ShadowValue *B = Shadow->tempLane(S.Args[1], 0);
    // With no shadows the real predicate trivially agrees; otherwise ask
    // whether the operand intervals allow the predicate to flip.
    if ((A || B) &&
        errpredict::comparisonSuspect(
            Args[0], Args[1],
            A ? errpredict::predTotal(A->PredDelta, A->PredNoise) : 0.0,
            B ? errpredict::predTotal(B->PredDelta, B->PredNoise) : 0.0))
      RunSuspect = true;
    return;
  }
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Comparison;
    Spot.Loc = S.Loc;
  }
  ++Spot.Executions;
  shadowComparisonSpotCore(Cfg, Spot, S.Op, Shadow->tempLane(S.Args[0], 0),
                           Shadow->tempLane(S.Args[1], 0), Args[0], Args[1],
                           Result.asI64() != 0);
}

void Herbgrind::shadowConversionSpot(const Statement &S, uint32_t PC,
                                     const Value *Args, const Value &Result) {
  if (Cfg.PredicateOnly) {
    if (ShadowValue *A = Shadow->tempLane(S.Args[0], 0))
      if (errpredict::conversionSuspect(
              Args[0].asF64(),
              errpredict::predTotal(A->PredDelta, A->PredNoise)))
        RunSuspect = true;
    return;
  }
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Conversion;
    Spot.Loc = S.Loc;
  }
  ++Spot.Executions;
  shadowConversionSpotCore(Spot, Shadow->tempLane(S.Args[0], 0),
                           Result.asI64());
}

void Herbgrind::shadowOutputSpot(const Statement &S, uint32_t PC,
                                 const Value &Out) {
  if (Out.Ty == ValueType::I64)
    return; // integer outputs flow through conversion spots already
  if (Cfg.PredicateOnly) {
    unsigned Lanes = Out.laneCount();
    for (unsigned L = 0; L < Lanes; ++L) {
      ShadowValue *SV = Shadow->tempLane(S.Args[0], L);
      Value LaneVal = Out;
      if (Out.Ty == ValueType::V2F64)
        LaneVal = Value::ofF64(Out.V2F64[L]);
      else if (Out.Ty == ValueType::V4F32)
        LaneVal = Value::ofF32(Out.V4F32[L]);
      if (errpredict::outputSuspect(
              LaneVal,
              SV ? errpredict::predTotal(SV->PredDelta, SV->PredNoise) : 0.0,
              Cfg.OutputErrorThreshold))
        RunSuspect = true;
    }
    return;
  }
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Output;
    Spot.Loc = S.Loc;
  }

  unsigned Lanes = Out.laneCount();
  for (unsigned L = 0; L < Lanes; ++L) {
    ShadowValue *SV = Shadow->tempLane(S.Args[0], L);
    Value LaneVal = Out;
    if (Out.Ty == ValueType::V2F64)
      LaneVal = Value::ofF64(Out.V2F64[L]);
    else if (Out.Ty == ValueType::V4F32)
      LaneVal = Value::ofF32(Out.V4F32[L]);
    shadowOutputSpotCore(Cfg, Spot, SV, LaneVal);
  }
}

//===----------------------------------------------------------------------===//
// Mergeable records (the batch engine's reduction)
//===----------------------------------------------------------------------===//

void SpotRecord::mergeFrom(const SpotRecord &Other) {
  if (Other.Executions == 0)
    return;
  if (Executions == 0) {
    Kind = Other.Kind;
    Loc = Other.Loc;
  }
  Executions += Other.Executions;
  Erroneous += Other.Erroneous;
  ErrorBits.merge(Other.ErrorBits);
  InfluencingOps.insert(Other.InfluencingOps.begin(),
                        Other.InfluencingOps.end());
}

OpRecord OpRecord::clone() const {
  OpRecord R;
  R.Op = Op;
  R.Loc = Loc;
  R.Executions = Executions;
  R.Flagged = Flagged;
  R.CompensationsDetected = CompensationsDetected;
  R.LocalError = LocalError;
  R.Expr = Expr ? Expr->clone() : nullptr;
  R.NextVarIdx = NextVarIdx;
  R.TotalInputs = TotalInputs;
  R.ProblematicInputs = ProblematicInputs;
  R.MaxFlaggedLocalError = MaxFlaggedLocalError;
  R.ExampleProblematic = ExampleProblematic;
  R.ProfSamples = ProfSamples;
  R.ProfNanos = ProfNanos;
  R.ProfLimbAllocs = ProfLimbAllocs;
  R.ProfLimbHits = ProfLimbHits;
  return R;
}

void OpRecord::mergeFrom(const OpRecord &Other, uint32_t EquivDepth) {
  if (Other.Executions == 0)
    return;
  if (Executions == 0) {
    *this = Other.clone();
    return;
  }

  // Anti-unify the two accumulated expressions. B's per-variable first
  // observed values (Example is the earliest value by construction, thanks
  // to retroactive constant promotion) disambiguate merged-variable
  // numbering so it matches sequential processing.
  assert(Expr && Other.Expr && "executed records always carry expressions");
  std::vector<std::pair<bool, double>> BFirst;
  BFirst.reserve(Other.TotalInputs.Vars.size());
  for (const VarSummary &VS : Other.TotalInputs.Vars)
    BFirst.push_back({VS.Count > 0 && !VS.SawNaN, VS.Example});
  uint32_t NewNext = NextVarIdx;
  std::vector<MergedVar> Vars;
  std::unique_ptr<SymExpr> Merged = antiUnifyExprs(
      Expr.get(), Other.Expr.get(), EquivDepth, BFirst, NewNext, Vars);

  // Combine input summaries through each merged variable's provenance. A
  // constant leaf contributed its value on every one of its side's rounds;
  // a variable contributes its accumulated summary (only once per side --
  // a split variable's history stays with the index that kept it).
  InputCharacteristics NewTotal, NewProb;
  for (const MergedVar &V : Vars) {
    VarSummary T, P;
    if (V.KeptA) {
      T = TotalInputs.var(V.AVar);
      P = ProblematicInputs.var(V.AVar);
    } else if (V.A == MergedVar::Source::Const) {
      T.addRepeated(V.AConst, Executions);
      P.addRepeated(V.AConst, Flagged);
    }
    if (V.B == MergedVar::Source::Var) {
      T.merge(Other.TotalInputs.var(V.BVar));
      P.merge(Other.ProblematicInputs.var(V.BVar));
    } else if (V.B == MergedVar::Source::Const) {
      T.addRepeated(V.BConst, Other.Executions);
      P.addRepeated(V.BConst, Other.Flagged);
    }
    auto Install = [](InputCharacteristics &C, uint32_t Idx, VarSummary &S) {
      if (C.Vars.size() <= Idx)
        C.Vars.resize(Idx + 1);
      C.Vars[Idx] = S;
    };
    if (T.Count > 0)
      Install(NewTotal, V.Idx, T);
    if (P.Count > 0)
      Install(NewProb, V.Idx, P);
  }

  // The worst flagged round decides the example input; ties go to the
  // later shard exactly like the incremental `>=` comparison. Variables
  // the merge itself created from a side's constant held that constant on
  // every one of the side's rounds -- including its worst one -- so their
  // example values are appended here, mirroring the incremental path's
  // retroactive completion on promotion.
  bool TakeB = Other.Flagged > 0 &&
               (Flagged == 0 ||
                Other.MaxFlaggedLocalError >= MaxFlaggedLocalError);
  if (TakeB) {
    std::map<uint32_t, uint32_t> BMap;
    for (const MergedVar &V : Vars)
      if (V.B == MergedVar::Source::Var)
        BMap.emplace(V.BVar, V.Idx); // first claim wins
    std::vector<VarBinding> Remapped;
    for (const VarBinding &Bnd : Other.ExampleProblematic) {
      auto It = BMap.find(Bnd.Idx);
      if (It != BMap.end())
        Remapped.push_back({It->second, Bnd.Value});
    }
    for (const MergedVar &V : Vars)
      if (V.B == MergedVar::Source::Const)
        Remapped.push_back({V.Idx, V.BConst});
    ExampleProblematic = std::move(Remapped);
  } else if (Flagged > 0) {
    for (const MergedVar &V : Vars)
      if (V.A == MergedVar::Source::Const)
        ExampleProblematic.push_back({V.Idx, V.AConst});
  }

  Expr = std::move(Merged);
  NextVarIdx = NewNext;
  TotalInputs = std::move(NewTotal);
  ProblematicInputs = std::move(NewProb);
  Executions += Other.Executions;
  Flagged += Other.Flagged;
  CompensationsDetected += Other.CompensationsDetected;
  LocalError.merge(Other.LocalError);
  MaxFlaggedLocalError = std::max(MaxFlaggedLocalError,
                                  Other.MaxFlaggedLocalError);
  ProfSamples += Other.ProfSamples;
  ProfNanos += Other.ProfNanos;
  ProfLimbAllocs += Other.ProfLimbAllocs;
  ProfLimbHits += Other.ProfLimbHits;
}

AnalysisResult AnalysisResult::clone() const {
  AnalysisResult R;
  R.Ranges = Ranges;
  R.EquivDepth = EquivDepth;
  for (const auto &[PC, Rec] : Ops)
    R.Ops.emplace(PC, Rec.clone());
  R.Spots = Spots;
  return R;
}

void AnalysisResult::mergeFrom(const AnalysisResult &Other) {
  for (const auto &[PC, Rec] : Other.Ops) {
    auto It = Ops.find(PC);
    if (It == Ops.end())
      Ops.emplace(PC, Rec.clone());
    else
      It->second.mergeFrom(Rec, EquivDepth);
  }
  for (const auto &[PC, Spot] : Other.Spots) {
    auto It = Spots.find(PC);
    if (It == Spots.end())
      Spots.emplace(PC, Spot);
    else
      It->second.mergeFrom(Spot);
  }
}

AnalysisResult Herbgrind::snapshot() const {
  AnalysisResult R;
  R.Ranges = Cfg.Ranges;
  R.EquivDepth = Cfg.EquivDepth;
  for (const auto &[PC, Rec] : Ops)
    R.Ops.emplace(PC, Rec.clone());
  R.Spots = Spots;
  return R;
}

//===----------------------------------------------------------------------===//
// Result extraction
//===----------------------------------------------------------------------===//

std::vector<uint32_t> herbgrind::reportedRootCausesFromRecords(
    const std::map<uint32_t, OpRecord> &Ops,
    const std::map<uint32_t, SpotRecord> &Spots) {
  // Only operations whose influence reached an erroneous spot are reported
  // (Section 4.2 footnote 7).
  std::set<uint32_t> Reached;
  for (const auto &[PC, Spot] : Spots)
    if (Spot.Erroneous > 0)
      Reached.insert(Spot.InfluencingOps.begin(), Spot.InfluencingOps.end());
  std::vector<uint32_t> Result(Reached.begin(), Reached.end());
  std::sort(Result.begin(), Result.end(), [&](uint32_t A, uint32_t B) {
    const OpRecord &RA = Ops.at(A);
    const OpRecord &RB = Ops.at(B);
    if (RA.Flagged != RB.Flagged)
      return RA.Flagged > RB.Flagged;
    return A < B;
  });
  return Result;
}

std::vector<uint32_t> Herbgrind::reportedRootCauses() const {
  return reportedRootCausesFromRecords(Ops, Spots);
}
