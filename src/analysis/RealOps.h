//===- analysis/RealOps.h - Real-number semantics of float ops --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-number shadow semantics [[.]]_R of every float opcode
/// (Figure 4): the same operation carried out on BigFloat shadows. For
/// wrapped library calls (Section 5.3) this is what makes the shadow exact:
/// the call is interpreted as the mathematical function, not as the
/// instruction soup inside libm.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_REALOPS_H
#define HERBGRIND_ANALYSIS_REALOPS_H

#include "ir/Opcode.h"
#include "real/BigFloat.h"

namespace herbgrind {

/// Evaluates a scalar float opcode over reals into \p Dst (which may alias
/// an argument). \p Args must have the opcode's arity. Works for every
/// opcode with a float result that evalScalarOp supports (including
/// conversions, whose real semantics is the identity). This is the shadow
/// hot path's entry point: with the core ops' destination-passing forms and
/// BigFloat's inline limb storage it performs no heap allocation at the
/// default precision.
void evalRealOpInto(BigFloat &Dst, Opcode Op, const BigFloat *Args,
                    unsigned NumArgs);

/// Value-returning convenience wrapper around evalRealOpInto.
BigFloat evalRealOp(Opcode Op, const BigFloat *Args, unsigned NumArgs);

/// Batched destination-passing form: evaluates one opcode over \p NumLanes
/// independent argument tuples laid out lane-major in one contiguous
/// workspace -- lane L's arguments are Args[L * ArgStride] ..
/// Args[L * ArgStride + NumArgs - 1], its result lands in Dst[L]. Because
/// BigFloat keeps default-precision mantissas inline, the workspace array
/// IS the scratch: each lane's kernel strides over its own inline limbs
/// with no per-lane allocation or copying. Dst must not alias Args.
inline void evalRealOpIntoBatch(BigFloat *Dst, Opcode Op,
                                const BigFloat *Args, size_t ArgStride,
                                unsigned NumArgs, size_t NumLanes) {
  for (size_t L = 0; L < NumLanes; ++L)
    evalRealOpInto(Dst[L], Op, Args + L * ArgStride, NumArgs);
}

/// Evaluates a float comparison opcode over reals (IEEE NaN semantics).
bool evalRealPredicate(Opcode Op, const BigFloat &A, const BigFloat &B);

} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_REALOPS_H
