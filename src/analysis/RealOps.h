//===- analysis/RealOps.h - Real-number semantics of float ops --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-number shadow semantics [[.]]_R of every float opcode
/// (Figure 4): the same operation carried out on BigFloat shadows. For
/// wrapped library calls (Section 5.3) this is what makes the shadow exact:
/// the call is interpreted as the mathematical function, not as the
/// instruction soup inside libm.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_REALOPS_H
#define HERBGRIND_ANALYSIS_REALOPS_H

#include "ir/Opcode.h"
#include "real/BigFloat.h"

namespace herbgrind {

/// Evaluates a scalar float opcode over reals into \p Dst (which may alias
/// an argument). \p Args must have the opcode's arity. Works for every
/// opcode with a float result that evalScalarOp supports (including
/// conversions, whose real semantics is the identity). This is the shadow
/// hot path's entry point: with the core ops' destination-passing forms and
/// BigFloat's inline limb storage it performs no heap allocation at the
/// default precision.
void evalRealOpInto(BigFloat &Dst, Opcode Op, const BigFloat *Args,
                    unsigned NumArgs);

/// Value-returning convenience wrapper around evalRealOpInto.
BigFloat evalRealOp(Opcode Op, const BigFloat *Args, unsigned NumArgs);

/// Evaluates a float comparison opcode over reals (IEEE NaN semantics).
bool evalRealPredicate(Opcode Op, const BigFloat &A, const BigFloat &B);

} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_REALOPS_H
