//===- analysis/RealOps.cpp - Real-number semantics of float ops ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/RealOps.h"

#include "real/RealMath.h"

#include <cassert>

using namespace herbgrind;

void herbgrind::evalRealOpInto(BigFloat &Dst, Opcode Op, const BigFloat *Args,
                               unsigned NumArgs) {
  assert(NumArgs == opInfo(Op).Arity && "arity mismatch");
  (void)NumArgs;
  const BigFloat &A = Args[0];
  switch (Op) {
  // The core arithmetic runs destination-passing end to end: no temporary
  // shadow value is materialized anywhere on this path.
  case Opcode::AddF64:
  case Opcode::AddF32:
    BigFloat::addInto(Dst, A, Args[1]);
    return;
  case Opcode::SubF64:
  case Opcode::SubF32:
    BigFloat::subInto(Dst, A, Args[1]);
    return;
  case Opcode::MulF64:
  case Opcode::MulF32:
    BigFloat::mulInto(Dst, A, Args[1]);
    return;
  case Opcode::DivF64:
  case Opcode::DivF32:
    BigFloat::divInto(Dst, A, Args[1]);
    return;
  case Opcode::SqrtF64:
  case Opcode::SqrtF32:
    BigFloat::sqrtInto(Dst, A);
    return;
  case Opcode::NegF64:
  case Opcode::NegF32:
    Dst = A.negated();
    return;
  case Opcode::AbsF64:
  case Opcode::AbsF32:
    Dst = A.abs();
    return;
  case Opcode::MinF64:
    Dst = BigFloat::fmin(A, Args[1]);
    return;
  case Opcode::MaxF64:
    Dst = BigFloat::fmax(A, Args[1]);
    return;
  case Opcode::FmaF64:
    Dst = BigFloat::fma(A, Args[1], Args[2]);
    return;
  case Opcode::CopySignF64:
    Dst = A.copySign(Args[1]);
    return;

  // Wrapped library calls: the transcendental kernels draw their
  // temporaries from the per-thread limb cache, so these too are
  // allocation-free in steady state.
  case Opcode::ExpF64:
    Dst = realmath::exp(A);
    return;
  case Opcode::Exp2F64:
    Dst = realmath::exp2(A);
    return;
  case Opcode::Expm1F64:
    Dst = realmath::expm1(A);
    return;
  case Opcode::LogF64:
    Dst = realmath::log(A);
    return;
  case Opcode::Log2F64:
    Dst = realmath::log2(A);
    return;
  case Opcode::Log10F64:
    Dst = realmath::log10(A);
    return;
  case Opcode::Log1pF64:
    Dst = realmath::log1p(A);
    return;
  case Opcode::SinF64:
    Dst = realmath::sin(A);
    return;
  case Opcode::CosF64:
    Dst = realmath::cos(A);
    return;
  case Opcode::TanF64:
    Dst = realmath::tan(A);
    return;
  case Opcode::AsinF64:
    Dst = realmath::asin(A);
    return;
  case Opcode::AcosF64:
    Dst = realmath::acos(A);
    return;
  case Opcode::AtanF64:
    Dst = realmath::atan(A);
    return;
  case Opcode::Atan2F64:
    Dst = realmath::atan2(A, Args[1]);
    return;
  case Opcode::SinhF64:
    Dst = realmath::sinh(A);
    return;
  case Opcode::CoshF64:
    Dst = realmath::cosh(A);
    return;
  case Opcode::TanhF64:
    Dst = realmath::tanh(A);
    return;
  case Opcode::PowF64:
    Dst = realmath::pow(A, Args[1]);
    return;
  case Opcode::CbrtF64:
    Dst = realmath::cbrt(A);
    return;
  case Opcode::HypotF64:
    Dst = realmath::hypot(A, Args[1]);
    return;
  case Opcode::FmodF64:
    Dst = realmath::fmod(A, Args[1]);
    return;

  case Opcode::FloorF64:
    Dst = A.floor();
    return;
  case Opcode::CeilF64:
    Dst = A.ceil();
    return;
  case Opcode::RoundF64:
    Dst = A.roundNearest();
    return;
  case Opcode::TruncF64:
    Dst = A.trunc();
    return;

  // Conversions are the identity over the reals; any precision change is
  // pure rounding, which the local-error metric accounts for separately.
  case Opcode::F64toF32:
  case Opcode::F32toF64:
    Dst = A;
    return;

  default:
    break;
  }
  assert(false && "evalRealOpInto on an opcode without real semantics");
  Dst = BigFloat::nan();
}

BigFloat herbgrind::evalRealOp(Opcode Op, const BigFloat *Args,
                               unsigned NumArgs) {
  BigFloat R;
  evalRealOpInto(R, Op, Args, NumArgs);
  return R;
}

bool herbgrind::evalRealPredicate(Opcode Op, const BigFloat &A,
                                  const BigFloat &B) {
  switch (Op) {
  case Opcode::CmpLTF64:
  case Opcode::CmpLTF32:
    return BigFloat::lt(A, B);
  case Opcode::CmpLEF64:
    return BigFloat::le(A, B);
  case Opcode::CmpEQF64:
  case Opcode::CmpEQF32:
    return BigFloat::eq(A, B);
  case Opcode::CmpNEF64:
    return BigFloat::ne(A, B);
  case Opcode::CmpGTF64:
    return BigFloat::gt(A, B);
  case Opcode::CmpGEF64:
    return BigFloat::ge(A, B);
  default:
    break;
  }
  assert(false && "evalRealPredicate on a non-comparison opcode");
  return false;
}
