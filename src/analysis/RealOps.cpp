//===- analysis/RealOps.cpp - Real-number semantics of float ops ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/RealOps.h"

#include "real/RealMath.h"

#include <cassert>

using namespace herbgrind;

BigFloat herbgrind::evalRealOp(Opcode Op, const BigFloat *Args,
                               unsigned NumArgs) {
  assert(NumArgs == opInfo(Op).Arity && "arity mismatch");
  (void)NumArgs;
  const BigFloat &A = Args[0];
  switch (Op) {
  case Opcode::AddF64:
  case Opcode::AddF32:
    return BigFloat::add(A, Args[1]);
  case Opcode::SubF64:
  case Opcode::SubF32:
    return BigFloat::sub(A, Args[1]);
  case Opcode::MulF64:
  case Opcode::MulF32:
    return BigFloat::mul(A, Args[1]);
  case Opcode::DivF64:
  case Opcode::DivF32:
    return BigFloat::div(A, Args[1]);
  case Opcode::SqrtF64:
  case Opcode::SqrtF32:
    return BigFloat::sqrt(A);
  case Opcode::NegF64:
  case Opcode::NegF32:
    return A.negated();
  case Opcode::AbsF64:
  case Opcode::AbsF32:
    return A.abs();
  case Opcode::MinF64:
    return BigFloat::fmin(A, Args[1]);
  case Opcode::MaxF64:
    return BigFloat::fmax(A, Args[1]);
  case Opcode::FmaF64:
    return BigFloat::fma(A, Args[1], Args[2]);
  case Opcode::CopySignF64:
    return A.copySign(Args[1]);

  case Opcode::ExpF64:
    return realmath::exp(A);
  case Opcode::Exp2F64:
    return realmath::exp2(A);
  case Opcode::Expm1F64:
    return realmath::expm1(A);
  case Opcode::LogF64:
    return realmath::log(A);
  case Opcode::Log2F64:
    return realmath::log2(A);
  case Opcode::Log10F64:
    return realmath::log10(A);
  case Opcode::Log1pF64:
    return realmath::log1p(A);
  case Opcode::SinF64:
    return realmath::sin(A);
  case Opcode::CosF64:
    return realmath::cos(A);
  case Opcode::TanF64:
    return realmath::tan(A);
  case Opcode::AsinF64:
    return realmath::asin(A);
  case Opcode::AcosF64:
    return realmath::acos(A);
  case Opcode::AtanF64:
    return realmath::atan(A);
  case Opcode::Atan2F64:
    return realmath::atan2(A, Args[1]);
  case Opcode::SinhF64:
    return realmath::sinh(A);
  case Opcode::CoshF64:
    return realmath::cosh(A);
  case Opcode::TanhF64:
    return realmath::tanh(A);
  case Opcode::PowF64:
    return realmath::pow(A, Args[1]);
  case Opcode::CbrtF64:
    return realmath::cbrt(A);
  case Opcode::HypotF64:
    return realmath::hypot(A, Args[1]);
  case Opcode::FmodF64:
    return realmath::fmod(A, Args[1]);

  case Opcode::FloorF64:
    return A.floor();
  case Opcode::CeilF64:
    return A.ceil();
  case Opcode::RoundF64:
    return A.roundNearest();
  case Opcode::TruncF64:
    return A.trunc();

  // Conversions are the identity over the reals; any precision change is
  // pure rounding, which the local-error metric accounts for separately.
  case Opcode::F64toF32:
  case Opcode::F32toF64:
    return A;

  default:
    break;
  }
  assert(false && "evalRealOp on an opcode without real semantics");
  return BigFloat::nan();
}

bool herbgrind::evalRealPredicate(Opcode Op, const BigFloat &A,
                                  const BigFloat &B) {
  switch (Op) {
  case Opcode::CmpLTF64:
  case Opcode::CmpLTF32:
    return BigFloat::lt(A, B);
  case Opcode::CmpLEF64:
    return BigFloat::le(A, B);
  case Opcode::CmpEQF64:
  case Opcode::CmpEQF32:
    return BigFloat::eq(A, B);
  case Opcode::CmpNEF64:
    return BigFloat::ne(A, B);
  case Opcode::CmpGTF64:
    return BigFloat::gt(A, B);
  case Opcode::CmpGEF64:
    return BigFloat::ge(A, B);
  default:
    break;
  }
  assert(false && "evalRealPredicate on a non-comparison opcode");
  return false;
}
