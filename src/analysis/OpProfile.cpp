//===- analysis/OpProfile.cpp - Hot-op shadow-cost profiler ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/OpProfile.h"

#include "analysis/Analysis.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <algorithm>

namespace herbgrind {
namespace opprof {

std::atomic<uint32_t> SamplePeriodAtomic{0};

void enable(uint32_t SamplePeriod) {
  SamplePeriodAtomic.store(SamplePeriod == 0 ? 1 : SamplePeriod,
                           std::memory_order_relaxed);
}

void disable() { SamplePeriodAtomic.store(0, std::memory_order_relaxed); }

uint32_t samplePeriod() {
  return SamplePeriodAtomic.load(std::memory_order_relaxed);
}

bool shouldSampleSlow() {
  uint32_t P = SamplePeriodAtomic.load(std::memory_order_relaxed);
  if (P <= 1)
    return P == 1;
  thread_local uint32_t Tick = 0;
  return ++Tick % P == 0;
}

void recordSample(OpRecord &Rec, uint64_t Nanos, uint64_t LimbAllocs,
                  uint64_t LimbHits) {
  Rec.ProfSamples += 1;
  Rec.ProfNanos += Nanos;
  Rec.ProfLimbAllocs += LimbAllocs;
  Rec.ProfLimbHits += LimbHits;
  static metrics::Counter Ops = metrics::counter("profile.shadow_ops_measured");
  static metrics::Counter Ns = metrics::counter("profile.shadow_ns");
  static metrics::Counter Heap = metrics::counter("profile.limb_heap_allocs");
  static metrics::Counter Hits = metrics::counter("profile.limb_cache_hits");
  Ops.add(1);
  Ns.add(Nanos);
  Heap.add(LimbAllocs);
  Hits.add(LimbHits);
}

void accumulateOpProfile(const std::map<uint32_t, OpRecord> &Ops,
                         std::vector<OpProfileRow> &Rows) {
  for (const auto &KV : Ops) {
    const OpRecord &Rec = KV.second;
    if (Rec.Executions == 0)
      continue;
    OpProfileRow *Row = nullptr;
    for (OpProfileRow &R : Rows)
      if (R.Op == Rec.Op && R.Loc == Rec.Loc) {
        Row = &R;
        break;
      }
    if (!Row) {
      Rows.emplace_back();
      Row = &Rows.back();
      Row->Op = Rec.Op;
      Row->Loc = Rec.Loc;
    }
    Row->Executions += Rec.Executions;
    Row->Samples += Rec.ProfSamples;
    Row->Nanos += Rec.ProfNanos;
    Row->LimbAllocs += Rec.ProfLimbAllocs;
    Row->LimbHits += Rec.ProfLimbHits;
  }
}

void mergeOpProfileRows(std::vector<OpProfileRow> &Dst,
                        const std::vector<OpProfileRow> &Src) {
  for (const OpProfileRow &S : Src) {
    OpProfileRow *Row = nullptr;
    for (OpProfileRow &R : Dst)
      if (R.Op == S.Op && R.Loc == S.Loc) {
        Row = &R;
        break;
      }
    if (!Row) {
      Dst.push_back(S);
      Dst.back().Executions = 0;
      Dst.back().Samples = 0;
      Dst.back().Nanos = 0;
      Dst.back().LimbAllocs = 0;
      Dst.back().LimbHits = 0;
      Row = &Dst.back();
    }
    Row->Executions += S.Executions;
    Row->Samples += S.Samples;
    Row->Nanos += S.Nanos;
    Row->LimbAllocs += S.LimbAllocs;
    Row->LimbHits += S.LimbHits;
  }
}

void finalizeOpProfile(std::vector<OpProfileRow> &Rows) {
  std::sort(Rows.begin(), Rows.end(),
            [](const OpProfileRow &A, const OpProfileRow &B) {
              double EA = A.estNanos(), EB = B.estNanos();
              if (EA != EB)
                return EA > EB;
              if (!(A.Loc == B.Loc))
                return A.Loc.str() < B.Loc.str();
              return static_cast<unsigned>(A.Op) < static_cast<unsigned>(B.Op);
            });
}

std::string renderOpProfileTable(const std::vector<OpProfileRow> &Rows,
                                 size_t TopN, uint64_t TotalNanos) {
  std::string Out;
  Out += "hot shadow ops (by estimated wall time):\n";
  Out += format("  %-4s %-12s %-34s %12s %10s %12s %8s %10s\n", "#", "op",
                "site", "execs", "samples", "est_us", "%total", "limb a/h");
  size_t N = TopN == 0 ? Rows.size() : std::min(TopN, Rows.size());
  double CoveredNs = 0.0;
  for (size_t I = 0; I < N; ++I) {
    const OpProfileRow &R = Rows[I];
    double EstNs = R.estNanos();
    CoveredNs += EstNs;
    double Pct = TotalNanos == 0 ? 0.0 : 100.0 * EstNs / TotalNanos;
    std::string Site = R.Loc.str();
    if (Site.size() > 34)
      Site = "..." + Site.substr(Site.size() - 31);
    Out += format("  %-4zu %-12s %-34s %12llu %10llu %12.1f %7.1f%% %5llu/%llu\n",
                  I + 1, opInfo(R.Op).Name, Site.c_str(),
                  (unsigned long long)R.Executions,
                  (unsigned long long)R.Samples, EstNs / 1000.0, Pct,
                  (unsigned long long)R.LimbAllocs,
                  (unsigned long long)R.LimbHits);
  }
  if (TotalNanos > 0)
    Out += format("  top %zu rows cover %.1f%% of %.1f us measured shadow time\n",
                  N, 100.0 * CoveredNs / TotalNanos, TotalNanos / 1000.0);
  return Out;
}

} // namespace opprof
} // namespace herbgrind
