//===- analysis/ErrorPredict.cpp - Tier-0 cheap error predicates ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/ErrorPredict.h"

#include "support/FloatBits.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace herbgrind {
namespace errpredict {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double maxBitsFor(ValueType Ty) { return Ty == ValueType::F32 ? 32.0 : 64.0; }

/// The maximally-suspect prediction: unbounded error, worst-case bits.
PredOp suspectOp(ValueType Ty) {
  PredOp P;
  P.Delta = 0.0;
  P.Noise = kInf;
  P.AbsErr = kInf;
  P.LocalBits = maxBitsFor(Ty);
  return P;
}

/// The concrete scalar of an argument as a double (F32 promotes exactly).
double scalarOf(const Value &V) {
  switch (V.Ty) {
  case ValueType::F64:
    return V.F64;
  case ValueType::F32:
    return static_cast<double>(V.F32);
  case ValueType::I64:
    return static_cast<double>(V.I64);
  default:
    return std::numeric_limits<double>::quiet_NaN();
  }
}

/// One ulp of \p Ty at magnitude \p M (M >= 0, finite).
double ulpAt(double M, ValueType Ty) {
  if (Ty == ValueType::F32) {
    float F = static_cast<float>(M);
    if (std::isinf(F))
      return kInf;
    float AbsF = std::fabs(F);
    return static_cast<double>(std::nextafterf(AbsF, kInf) - AbsF);
  }
  double AbsM = std::fabs(M);
  return std::nextafter(AbsM, kInf) - AbsM;
}

/// A little POD accumulating the per-op interval analysis. Drift is the
/// propagated |real - concrete| contribution (Lipschitz x incoming error
/// bound), Spread the argument-rounding contribution (Lipschitz x half-ulp
/// radius) that only shows up in the local-error comparison, and RSlack
/// the result's own rounding slack (0 for exact ops).
struct Terms {
  double Drift = 0.0;
  double Spread = 0.0;
  double RSlack = 0.0;
  bool Unknown = false; ///< Derivative unboundable: everything is suspect.

  void addLip(double Lip, double Err, double Ulp) {
    Drift += mulNoFlush(Lip, Err);
    Spread += mulNoFlush(Lip, Ulp);
  }
  void unknown() { Unknown = true; }

private:
  /// A bound that silently underflows to zero stops being a bound; keep
  /// at least one subnormal quantum of it.
  static double mulNoFlush(double A, double B) {
    double P = A * B;
    if (P == 0.0 && A != 0.0 && B != 0.0)
      return std::numeric_limits<double>::denorm_min();
    return P;
  }
};

/// 2Sum (Knuth): the rounding error of s = fl(a + b), exact for any
/// finite a, b, s in round-to-nearest, with no ordering requirement.
double twoSumResidual(double A, double B, double S) {
  double Bv = S - A;
  double Av = S - Bv;
  return (A - Av) + (B - Bv);
}

/// Running-error refinement: for ops whose rounding residual is exactly
/// representable (2Sum for +/-, fma-based 2Prod for *, fma(q, b, -a)
/// for /), replace the interval result with a *signed* estimate
///   real = concrete + Delta, up to +-Noise
/// propagated through the op in double arithmetic. Delta carries the
/// residual with its sign, so compensated algorithms that re-inject it
/// (Kahan) see their accumulated Delta telescope back toward zero.
///
/// Crucially, the roundoff of folding Delta itself is not *estimated*
/// but measured exactly, by running 2Sum/2Prod a second level down on
/// the fold: Noise grows by exactly what the fold dropped, which for
/// compensated loops over representable data is exactly nothing. An
/// estimated slop (any fixed epsilon times the fold's magnitude) would
/// feed the Sum->Comp->Sum noise cycle and compound geometrically; the
/// exact slop keeps the cycle at zero until a fold genuinely rounds.
///
/// Soundness: each row establishes |real - (CR + DeltaOut)| <= NoiseOut
/// with NoiseOut = (NoiseIn + Slop) * (1 + 2^-44), where Slop sums the
/// exact fold residuals and the inflation covers the (nonnegative-sum)
/// rounding of the Noise expression itself. The one place a residual can
/// be *inexact* is an fma whose product sits so low that the residual's
/// bits fall below the subnormal quantum; those get a fixed few-DMin
/// floor. Double *additions* that land subnormal are exact, so 2Sum
/// needs no such guard. Any non-finite intermediate keeps the interval
/// fallback, which has already degraded appropriately.
void refineRunningError(Opcode Op, const double *C, const PredVal *Args,
                        double CR, PredOp &P) {
  constexpr double DMin = std::numeric_limits<double>::denorm_min();
  double D0 = Args[0].Delta, N0 = Args[0].Noise;
  double DeltaOut, Slop, NoiseIn;
  switch (Op) {
  case Opcode::AddF64:
  case Opcode::SubF64: {
    double D1 = Args[1].Delta, N1 = Args[1].Noise;
    double A = C[0], B = Op == Opcode::SubF64 ? -C[1] : C[1];
    if (Op == Opcode::SubF64)
      D1 = -D1;
    double R = twoSumResidual(A, B, CR);
    // Fold the three delta terms, measuring each fold's own roundoff.
    double S1 = D0 + D1;
    double E1 = twoSumResidual(D0, D1, S1);
    DeltaOut = S1 + R;
    double E2 = twoSumResidual(S1, R, DeltaOut);
    Slop = std::fabs(E1) + std::fabs(E2);
    NoiseIn = N0 + N1;
    break;
  }
  case Opcode::MulF64: {
    // 2Prod: fma(a, b, -p) is the exact residual of p = fl(a * b).
    // real0 * real1 = (a + d0 +- n0)(b + d1 +- n1)
    //              = p + r + a*d1 + b*d0 + d0*d1
    //                +- (n0*(|b| + |d1| + n1) + n1*(|a| + |d0|)).
    double D1 = Args[1].Delta, N1 = Args[1].Noise;
    double R = std::fma(C[0], C[1], -CR);
    double P0 = C[1] * D0, F0 = std::fma(C[1], D0, -P0);
    double P1 = C[0] * D1, F1 = std::fma(C[0], D1, -P1);
    double P2 = D0 * D1, F2 = std::fma(D0, D1, -P2);
    double S1 = P0 + P1;
    double E1 = twoSumResidual(P0, P1, S1);
    double S2 = S1 + P2;
    double E2 = twoSumResidual(S1, P2, S2);
    DeltaOut = S2 + R;
    double E3 = twoSumResidual(S2, R, DeltaOut);
    Slop = ((std::fabs(F0) + std::fabs(F1)) + std::fabs(F2)) +
           ((std::fabs(E1) + std::fabs(E2)) + std::fabs(E3));
    // An fma residual is exact only while the product's low-order bits
    // stay representable; near the subnormal floor (product magnitude
    // below ~2^-968 with both factors nonzero) up to half a quantum per
    // residual can be lost.
    auto Hazard = [](double Prod, double A, double B) {
      return A != 0.0 && B != 0.0 && std::fabs(Prod) < 0x1p-968;
    };
    if (Hazard(CR, C[0], C[1]) || Hazard(P0, C[1], D0) ||
        Hazard(P1, C[0], D1) || Hazard(P2, D0, D1))
      Slop += 4.0 * DMin;
    NoiseIn = N0 * ((std::fabs(C[1]) + std::fabs(D1)) + N1) +
              N1 * (std::fabs(C[0]) + std::fabs(D0));
    // The noise products can flush to zero below NoiseIn's resolution;
    // the floor costs two subnormal quanta of tightness.
    if (N0 != 0.0 || N1 != 0.0)
      NoiseIn += 2.0 * DMin;
    break;
  }
  case Opcode::DivF64: {
    // Division has an exact residual too: for q = fl(a / b), the value
    // q*b - a is representable (away from the subnormal floor), so
    // r = fma(q, b, -a) recovers it exactly and a - q*b = -r. With
    // real0 = a + d0 +- n0 and real1 = b + d1 +- n1,
    //   real0/real1 - q = (-r + d0 - q*d1 +- (n0 + |q|*n1))
    //                     / (b + d1 +- n1).
    // The numerator folds with measured residuals like the mul row; the
    // denominator's wiggle and the final division's own rounding become
    // noise terms bounded through DenLo = |b| - (|d1| + n1).
    double D1 = Args[1].Delta, N1 = Args[1].Noise;
    double W1 = std::fabs(D1) + N1;
    double DenLo = std::fabs(C[1]) - W1;
    if (!(DenLo > 0.0))
      return; // denominator interval reaches zero: keep the fallback
    auto Hazard = [](double Prod, double A, double B) {
      return A != 0.0 && B != 0.0 && std::fabs(Prod) < 0x1p-968;
    };
    // A noise product or quotient that flushes to zero stops being a
    // bound; substitute one subnormal quantum (the true value was below
    // it, so the substitute still dominates).
    auto MulNF = [](double A, double B) {
      double Q = A * B;
      return Q == 0.0 && A != 0.0 && B != 0.0 ? DMin : Q;
    };
    auto DivNF = [](double A, double B) {
      double Q = A / B;
      return Q == 0.0 && A != 0.0 ? DMin : Q;
    };
    double R = std::fma(CR, C[1], -C[0]);
    double P1 = CR * D1, F1 = std::fma(CR, D1, -P1);
    double S1 = D0 - P1;
    double E1 = twoSumResidual(D0, -P1, S1);
    double NumD = S1 - R; // the folded numerator -r + d0 - q*d1
    double E2 = twoSumResidual(S1, -R, NumD);
    double SlopNum = (std::fabs(F1) + std::fabs(E1)) + std::fabs(E2);
    if (Hazard(C[0], CR, C[1]) || Hazard(P1, CR, D1))
      SlopNum += 4.0 * DMin;
    DeltaOut = NumD / C[1];
    // The division's own rounding, measured exactly with one more fma:
    // NumD / b - DeltaOut = -RQ / b.
    double RQ = std::fma(DeltaOut, C[1], -NumD);
    double RQAbs = std::fabs(RQ);
    if (Hazard(NumD, DeltaOut, C[1]))
      RQAbs += DMin;
    double Ns = N0 + MulNF(std::fabs(CR), N1);
    // |trueDelta - DeltaOut| decomposes over
    //   Num/Den - NumD/b = (Num - NumD)/Den + NumD*(b - Den)/(Den*b)
    // plus the measured rounding of the division itself.
    double T1 = DivNF(Ns + SlopNum, DenLo);
    double T2 =
        DivNF(MulNF(std::fabs(NumD), W1), MulNF(std::fabs(C[1]), DenLo));
    NoiseIn = T1 + T2;
    Slop = DivNF(RQAbs, std::fabs(C[1]));
    // Subnormal-but-nonzero noise terms above round absolutely, not
    // relatively (the tail's relative inflation misses them); a few
    // quanta cover every such loss.
    if (Ns != 0.0 || SlopNum != 0.0 || W1 != 0.0 || RQAbs != 0.0)
      Slop += 4.0 * DMin;
    break;
  }
  case Opcode::NegF64:
    // Exact: real(-x) = -concrete - delta, noise unchanged.
    P.Delta = -D0;
    P.Noise = N0;
    P.AbsErr = predTotal(P.Delta, P.Noise);
    return;
  case Opcode::AbsF64: {
    // Only when the value's interval excludes zero is |real| a plain
    // sign-flip of the estimate; a straddling interval stays fallback.
    double Reach = std::fabs(D0) + N0;
    if (!(std::fabs(C[0]) > Reach))
      return;
    P.Delta = C[0] < 0.0 ? -D0 : D0;
    P.Noise = N0;
    P.AbsErr = predTotal(P.Delta, P.Noise);
    return;
  }
  case Opcode::F32toF64:
    // Widening is exact; the pair passes straight through.
    P.Delta = D0;
    P.Noise = N0;
    P.AbsErr = predTotal(P.Delta, P.Noise);
    return;
  default:
    return;
  }

  // (1 + 2^-44) covers the nonnegative-sum roundings of the Slop and
  // NoiseIn expressions themselves (well under 2^9 of them, each 2^-53).
  double NoiseOut = (NoiseIn + Slop) * (1.0 + 0x1p-44);
  if (!std::isfinite(DeltaOut) || !std::isfinite(NoiseOut))
    return; // keep the interval fallback, already degraded appropriately
  // Adopt unconditionally (not min-of-bounds): the refinement is sound on
  // its own and at most a slop wider than the interval bound for one op,
  // while the signed estimate it preserves is what keeps *chains* tight --
  // an interval bound that wins an op by half an ulp forfeits every later
  // cancellation.
  P.Delta = DeltaOut;
  P.Noise = NoiseOut;
  P.AbsErr = predTotal(DeltaOut, NoiseOut);
}

} // namespace

double halfUlpAround(double C, double E, ValueType Ty) {
  if (E == 0.0)
    return 0.0; // the real *is* the representable C: no rounding happens
  if (!std::isfinite(C) || !std::isfinite(E))
    return kInf;
  double M = std::fabs(C) + E;
  if (!std::isfinite(M))
    return kInf;
  double U = 0.5 * ulpAt(M, Ty);
  // Deep-subnormal flush: rounding an inexact real always costs
  // something, so never report zero.
  return U == 0.0 ? std::numeric_limits<double>::denorm_min() : U;
}

double predictedErrorBits(double Concrete, double AbsErr, ValueType Ty) {
  if (std::isnan(Concrete) || !std::isfinite(AbsErr))
    return maxBitsFor(Ty);
  if (AbsErr == 0.0)
    return 0.0;
  double Lo = Concrete - AbsErr;
  double Hi = Concrete + AbsErr;
  if (!std::isfinite(Lo) || !std::isfinite(Hi))
    return maxBitsFor(Ty);
  uint64_t Ulps;
  if (Ty == ValueType::F32) {
    float C = static_cast<float>(Concrete);
    Ulps = std::max(ulpsBetweenFloats(C, static_cast<float>(Lo)),
                    ulpsBetweenFloats(C, static_cast<float>(Hi)));
  } else {
    Ulps = std::max(ulpsBetweenDoubles(Concrete, Lo),
                    ulpsBetweenDoubles(Concrete, Hi));
  }
  return std::log2(static_cast<double>(Ulps) + 1.0);
}

double validBits(double Concrete, double AbsErr, ValueType Ty) {
  double Width = Ty == ValueType::F32 ? 24.0 : 53.0;
  double Doubt = predictedErrorBits(Concrete, AbsErr, Ty);
  return std::max(0.0, Width - Doubt);
}

PredOp predictScalarOp(Opcode Op, const Value *ArgConcrete,
                       const PredVal *Args, unsigned NumArgs,
                       const Value &ConcreteResult) {
  const OpInfo &Info = opInfo(Op);
  double CR = scalarOf(ConcreteResult);

  // Gather concrete scalars, incoming bounds, per-argument rounding radii
  // and widened radii. The interval rows below see each argument through
  // its collapsed unsigned bound E = |Delta| + Noise; only the exact-
  // residual refinement at the bottom looks at the signed split. Anything
  // non-finite in sight means the full-mode NaN rules may apply: degrade
  // to maximally suspect.
  double C[3] = {0, 0, 0}, E[3] = {0, 0, 0}, U[3] = {0, 0, 0},
         W[3] = {0, 0, 0};
  bool AnyNonFinite = !std::isfinite(CR);
  for (unsigned I = 0; I < NumArgs && I < 3; ++I) {
    C[I] = scalarOf(ArgConcrete[I]);
    E[I] = predTotal(Args[I].Delta, Args[I].Noise);
    U[I] = halfUlpAround(C[I], E[I], Info.OperandTy);
    W[I] = E[I] + U[I];
    if (!std::isfinite(C[I]) || !std::isfinite(W[I]))
      AnyNonFinite = true;
  }
  if (AnyNonFinite)
    return suspectOp(Info.ResultTy);

  Terms T;
  bool ResultRounds = true;    // most ops round their result once
  double ExtraAbsSpread = 0.0; // min/max/floor-style set-valued slack
  switch (Op) {
  case Opcode::AddF64:
  case Opcode::SubF64:
  case Opcode::AddF32:
  case Opcode::SubF32:
    T.addLip(1.0, E[0], U[0]);
    T.addLip(1.0, E[1], U[1]);
    break;
  case Opcode::NegF64:
  case Opcode::AbsF64:
  case Opcode::NegF32:
  case Opcode::AbsF32:
    T.addLip(1.0, E[0], U[0]);
    ResultRounds = false;
    break;
  case Opcode::MulF64:
  case Opcode::MulF32:
    T.addLip(std::fabs(C[1]) + W[1], E[0], U[0]);
    T.addLip(std::fabs(C[0]) + W[0], E[1], U[1]);
    break;
  case Opcode::DivF64:
  case Opcode::DivF32: {
    double DenomLo = std::fabs(C[1]) - W[1];
    if (DenomLo <= 0.0) {
      T.unknown();
      break;
    }
    T.addLip(1.0 / DenomLo, E[0], U[0]);
    // Divide twice instead of squaring (DenomLo^2 can overflow to inf and
    // zero the quotient), and keep an underflowed-but-nonzero derivative
    // from flushing the whole term away.
    double Lip1 = (std::fabs(C[0]) + W[0]) / DenomLo / DenomLo;
    if (Lip1 == 0.0 && C[0] != 0.0)
      Lip1 = std::numeric_limits<double>::denorm_min();
    T.addLip(Lip1, E[1], U[1]);
    break;
  }
  case Opcode::SqrtF64:
  case Opcode::SqrtF32: {
    if (W[0] == 0.0)
      break; // exact argument: sqrt rounds once, nothing propagates
    double Lo = C[0] - W[0];
    if (Lo <= 0.0) {
      T.unknown();
      break;
    }
    T.addLip(0.5 / std::sqrt(Lo), E[0], U[0]);
    break;
  }
  case Opcode::MinF64:
  case Opcode::MaxF64:
    // min/max are jointly 1-Lipschitz and produce one of their (already
    // representable) inputs: no result rounding, spread is the worst
    // argument's radius.
    T.Drift = std::max(E[0], E[1]);
    T.Spread = std::max(U[0], U[1]);
    ResultRounds = false;
    break;
  case Opcode::FmaF64:
    T.addLip(std::fabs(C[1]) + W[1], E[0], U[0]);
    T.addLip(std::fabs(C[0]) + W[0], E[1], U[1]);
    T.addLip(1.0, E[2], U[2]);
    break;
  case Opcode::CopySignF64:
    // Sound only when the sign donor cannot straddle zero.
    if (W[1] != 0.0 && std::fabs(C[1]) <= W[1]) {
      T.unknown();
      break;
    }
    T.addLip(1.0, E[0], U[0]);
    ResultRounds = false;
    break;

  case Opcode::ExpF64:
    T.addLip(std::exp(std::min(C[0] + W[0], 710.0)), E[0], U[0]);
    break;
  case Opcode::Exp2F64:
    T.addLip(std::exp2(std::min(C[0] + W[0], 1025.0)) * M_LN2, E[0], U[0]);
    break;
  case Opcode::Expm1F64:
    T.addLip(std::exp(std::min(C[0] + W[0], 710.0)), E[0], U[0]);
    break;
  case Opcode::LogF64: {
    double Lo = C[0] - W[0];
    if (Lo <= 0.0)
      T.unknown();
    else
      T.addLip(1.0 / Lo, E[0], U[0]);
    break;
  }
  case Opcode::Log2F64: {
    double Lo = C[0] - W[0];
    if (Lo <= 0.0)
      T.unknown();
    else
      T.addLip(1.0 / (Lo * M_LN2), E[0], U[0]);
    break;
  }
  case Opcode::Log10F64: {
    double Lo = C[0] - W[0];
    if (Lo <= 0.0)
      T.unknown();
    else
      T.addLip(1.0 / (Lo * M_LN10), E[0], U[0]);
    break;
  }
  case Opcode::Log1pF64: {
    double Lo = 1.0 + (C[0] - W[0]);
    if (Lo <= 0.0)
      T.unknown();
    else
      T.addLip(1.0 / Lo, E[0], U[0]);
    break;
  }
  case Opcode::SinF64:
  case Opcode::CosF64:
  case Opcode::AtanF64:
  case Opcode::TanhF64:
    T.addLip(1.0, E[0], U[0]);
    break;
  case Opcode::TanF64: {
    if (W[0] == 0.0)
      break;
    // tan is monotone between poles; a pole inside [lo, hi] shows up as
    // tan(lo) > tan(hi). Wide intervals can wrap a whole period, which
    // that test misses, so refuse them outright.
    double Lo = C[0] - W[0], Hi = C[0] + W[0];
    if (W[0] >= 1.0) {
      T.unknown();
      break;
    }
    double TLo = std::tan(Lo), THi = std::tan(Hi);
    if (!(TLo <= THi)) {
      T.unknown();
      break;
    }
    double MaxT2 = std::max(TLo * TLo, THi * THi);
    T.addLip(1.0 + MaxT2, E[0], U[0]);
    break;
  }
  case Opcode::AsinF64:
  case Opcode::AcosF64: {
    double M = std::fabs(C[0]) + W[0];
    if (M >= 1.0) {
      if (W[0] == 0.0 && std::fabs(C[0]) == 1.0)
        break; // exact endpoint: result is exact +-pi/2 / 0 / pi, rounded
      T.unknown();
      break;
    }
    T.addLip(1.0 / std::sqrt(1.0 - M * M), E[0], U[0]);
    break;
  }
  case Opcode::Atan2F64: {
    // atan2(y, x): |grad| <= 1/r. Bound r from below over the box, and
    // refuse boxes that can touch the branch cut (negative x axis) or the
    // origin.
    double RLo = std::hypot(C[0], C[1]) - (W[0] + W[1]);
    bool CutRisk = (C[1] - W[1]) < 0.0 && std::fabs(C[0]) <= W[0];
    if (RLo <= 0.0 || (CutRisk && (W[0] != 0.0 || W[1] != 0.0))) {
      T.unknown();
      break;
    }
    T.addLip(1.0 / RLo, E[0], U[0]);
    T.addLip(1.0 / RLo, E[1], U[1]);
    break;
  }
  case Opcode::SinhF64:
  case Opcode::CoshF64:
    T.addLip(std::cosh(std::min(std::fabs(C[0]) + W[0], 710.0)), E[0], U[0]);
    break;
  case Opcode::PowF64: {
    if (W[0] == 0.0 && W[1] == 0.0)
      break; // exact args: one rounded result
    double ALo = C[0] - W[0], AHi = C[0] + W[0];
    double BLo = C[1] - W[1], BHi = C[1] + W[1];
    if (ALo <= 0.0) {
      T.unknown();
      break;
    }
    // a^b is coordinate-wise monotone on a > 0, so the box's extreme is
    // at a corner.
    double MaxCorner = 0.0;
    for (double A : {ALo, AHi})
      for (double B : {BLo, BHi})
        MaxCorner = std::max(MaxCorner, std::pow(A, B));
    if (!std::isfinite(MaxCorner)) {
      T.unknown();
      break;
    }
    double MaxAbsB = std::max(std::fabs(BLo), std::fabs(BHi));
    double MaxAbsLogA =
        std::max(std::fabs(std::log(ALo)), std::fabs(std::log(AHi)));
    T.addLip(MaxAbsB * MaxCorner / ALo, E[0], U[0]);
    T.addLip(MaxAbsLogA * MaxCorner, E[1], U[1]);
    break;
  }
  case Opcode::CbrtF64: {
    if (W[0] == 0.0)
      break;
    double M = std::fabs(C[0]) - W[0];
    if (M <= 0.0) {
      T.unknown();
      break;
    }
    T.addLip(1.0 / (3.0 * std::cbrt(M * M)), E[0], U[0]);
    break;
  }
  case Opcode::HypotF64:
    T.addLip(1.0, E[0], U[0]);
    T.addLip(1.0, E[1], U[1]);
    break;
  case Opcode::FmodF64:
    // Exact on representables, but discontinuous: any wiggle can jump by
    // |b|.
    if (W[0] != 0.0 || W[1] != 0.0)
      T.unknown();
    else
      ResultRounds = false;
    break;

  case Opcode::FloorF64:
  case Opcode::CeilF64:
  case Opcode::RoundF64:
  case Opcode::TruncF64: {
    ResultRounds = false;
    if (W[0] == 0.0)
      break;
    auto Apply = [Op](double X) {
      switch (Op) {
      case Opcode::FloorF64:
        return std::floor(X);
      case Opcode::CeilF64:
        return std::ceil(X);
      case Opcode::RoundF64:
        return std::round(X);
      default:
        return std::trunc(X);
      }
    };
    double FLo = Apply(C[0] - W[0]), FHi = Apply(C[0] + W[0]);
    if (FLo != FHi) {
      // The interval straddles a step: both the real's and the rounded
      // argument's results live in [FLo, FHi].
      T.Drift = FHi - FLo;
      ExtraAbsSpread = FHi - FLo;
    }
    break;
  }

  case Opcode::F64toF32:
    T.addLip(1.0, E[0], U[0]);
    break;
  case Opcode::F32toF64:
    T.addLip(1.0, E[0], U[0]);
    ResultRounds = false; // every float is a double
    break;

  default:
    // No derivative table entry. Exact inputs still give an exact real
    // (modulo one result rounding); anything inexact is unboundable.
    if (W[0] != 0.0 || (NumArgs > 1 && W[1] != 0.0) ||
        (NumArgs > 2 && W[2] != 0.0))
      T.unknown();
    break;
  }

  if (T.Unknown || !std::isfinite(T.Drift) || !std::isfinite(T.Spread))
    return suspectOp(Info.ResultTy);

  // Result-rounding slack: half an ulp at the widened result magnitude for
  // correctly-rounded ops, 4 ulps of headroom for libm calls (glibc is
  // faithful at best, and cbrt in particular is documented up to ~3 ulp
  // off on some targets).
  double RSlack = 0.0;
  if (ResultRounds) {
    double Reach = std::fabs(CR) + T.Drift + T.Spread;
    if (!std::isfinite(Reach))
      return suspectOp(Info.ResultTy);
    RSlack = 0.5 * ulpAt(Reach, Info.ResultTy);
    if (Info.IsLibCall)
      RSlack *= 8.0;
    // A rounding result can hide up to half a subnormal quantum even when
    // it lands on zero (concrete underflow of a tiny exact product);
    // flushing the slack to zero would certify such values as exact.
    if (RSlack == 0.0)
      RSlack = std::numeric_limits<double>::denorm_min();
  }

  PredOp P;
  // |real result - concrete result| <= drift + the concrete's own rounding.
  P.AbsErr = T.Drift + RSlack;
  // Interval fallback: no signed estimate, everything is Noise.
  P.Delta = 0.0;
  P.Noise = P.AbsErr;
  // FloatOnExact and the rounded real both land within
  // drift + spread + 2 * rounding of the concrete result.
  double LocalReach = T.Drift + T.Spread + ExtraAbsSpread + 2.0 * RSlack;
  P.LocalBits =
      predictedErrorBits(CR, LocalReach, Info.ResultTy) + kPredMarginBits;
  refineRunningError(Op, C, Args, CR, P);
  return P;
}

bool comparisonSuspect(const Value &A, const Value &B, double ErrA,
                       double ErrB) {
  double CA = scalarOf(A), CB = scalarOf(B);
  if (!std::isfinite(CA) || !std::isfinite(CB) || !std::isfinite(ErrA) ||
      !std::isfinite(ErrB))
    return true;
  double Sum = ErrA + ErrB;
  return Sum > 0.0 && std::fabs(CA - CB) <= Sum;
}

bool conversionSuspect(double Concrete, double Err) {
  if (!std::isfinite(Concrete) || !std::isfinite(Err))
    return true;
  if (Err == 0.0)
    return false;
  // The real rounds to a double somewhere inside the (outward-nudged)
  // interval; if truncation is constant across it, the spot cannot
  // diverge. Values near the i64 boundary are always suspect.
  if (std::fabs(Concrete) + Err >= 9.2233720368547758e18)
    return true;
  double Lo = prevDouble(Concrete - Err), Hi = nextDouble(Concrete + Err);
  return std::trunc(Lo) != std::trunc(Hi);
}

bool outputSuspect(const Value &LaneVal, double Err, double ThresholdBits) {
  ValueType Ty = LaneVal.Ty == ValueType::F32 ? ValueType::F32 : ValueType::F64;
  double C = scalarOf(LaneVal);
  if (std::isnan(C))
    return true;
  double Reach = Err + halfUlpAround(C, Err, Ty);
  return predictedErrorBits(C, Reach, Ty) + kPredMarginBits > ThresholdBits;
}

} // namespace errpredict
} // namespace herbgrind
