//===- analysis/OpProfile.h - Hot-op shadow-cost profiler -------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "where the 6600x goes" profiler: an opt-in sampling mode that
/// attributes shadow-op wall time and BigFloat limb traffic to the same
/// per-site identities the analysis reports use -- an interpreter PC or an
/// interned native `(HG_LOC, opcode)` callsite, both of which resolve to
/// `(SourceLoc, Opcode)` pairs. Enabling it makes `shadowScalarOpCore`
/// bracket each (sampled) execution with a steady-clock read and a
/// limballoc counter delta, folded into the execution's `OpRecord` and the
/// global metrics counters.
///
/// The accumulated cost lives in OpRecord fields that are deliberately
/// *outside* the wire format: they are never serialized, never rendered
/// into reports, and therefore cannot perturb the byte-identity contract.
/// (The flip side: shards replayed from the result cache executed no
/// shadow ops and carry no cost, which is exactly what they cost.)
///
/// `herbgrind_batch --profile-ops` enables sampling, ranks the merged rows
/// by estimated nanoseconds, and prints the table this header renders;
/// `bench_engine_scaling` folds the top rows into BENCH_engine.json.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_OPPROFILE_H
#define HERBGRIND_ANALYSIS_OPPROFILE_H

#include "ir/Opcode.h"
#include "support/SourceLoc.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace herbgrind {

struct OpRecord;

namespace opprof {

/// Implementation detail of the inline fast path; treat as private.
extern std::atomic<uint32_t> SamplePeriodAtomic;

/// Whether profiling is on at all: one relaxed load, the only cost the
/// shadow hot path pays when the profiler is disabled (the default).
inline bool enabled() {
  return SamplePeriodAtomic.load(std::memory_order_relaxed) != 0;
}

/// Turns profiling on, measuring every \p SamplePeriod-th shadow op
/// (1 = measure every execution; estimates then equal measurements).
void enable(uint32_t SamplePeriod = 1);

/// Turns profiling off.
void disable();

/// The active sample period (0 when disabled).
uint32_t samplePeriod();

bool shouldSampleSlow();

/// Decides whether this shadow-op execution is measured (per-thread
/// round-robin against the sample period).
inline bool shouldSample() { return enabled() && shouldSampleSlow(); }

/// Folds one measured execution into \p Rec and the profile.* metrics.
void recordSample(OpRecord &Rec, uint64_t Nanos, uint64_t LimbAllocs,
                  uint64_t LimbHits);

/// One ranked row: accumulated cost of a `(SourceLoc, Opcode)` site.
struct OpProfileRow {
  Opcode Op = Opcode::AddF64;
  SourceLoc Loc;
  uint64_t Executions = 0;
  uint64_t Samples = 0;
  uint64_t Nanos = 0;      ///< Measured wall nanoseconds (sampled subset).
  uint64_t LimbAllocs = 0; ///< Limb blocks that hit operator new[].
  uint64_t LimbHits = 0;   ///< Limb blocks served from the thread cache.

  /// Measured nanoseconds scaled up to all executions (equals Nanos at
  /// sample period 1).
  double estNanos() const {
    return Samples == 0
               ? 0.0
               : static_cast<double>(Nanos) *
                     (static_cast<double>(Executions) /
                      static_cast<double>(Samples));
  }
};

/// Accumulates profile rows from one analysis' op records into \p Rows,
/// merging by `(Loc, Op)` identity; call once per benchmark report, then
/// finalize.
void accumulateOpProfile(const std::map<uint32_t, OpRecord> &Ops,
                         std::vector<OpProfileRow> &Rows);

/// Folds \p Src into \p Dst by `(Loc, Op)` identity, summing every cost
/// field -- the row-level counterpart of accumulateOpProfile, used to
/// merge telemetry documents from distributed sweep slices. Associative
/// and commutative up to row order; re-finalize after merging to restore
/// the ranking.
void mergeOpProfileRows(std::vector<OpProfileRow> &Dst,
                        const std::vector<OpProfileRow> &Src);

/// Sorts rows by descending estimated cost (ties by location then opcode,
/// so the ranking is deterministic).
void finalizeOpProfile(std::vector<OpProfileRow> &Rows);

/// Renders the ranked cost table (top \p TopN rows; 0 = all) against the
/// given total measured shadow nanoseconds (the "profile.shadow_ns"
/// counter), e.g. for the CLI's stderr summary.
std::string renderOpProfileTable(const std::vector<OpProfileRow> &Rows,
                                 size_t TopN, uint64_t TotalNanos);

} // namespace opprof
} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_OPPROFILE_H
