//===- analysis/Analysis.h - The Herbgrind root-cause analysis --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the reproduction: the instrumented executor implementing
/// the analysis of Figures 3 and 4. Every float operation is shadowed with
/// a real value, a concrete expression trace, and an influence set; spots
/// (outputs, float comparisons, float-to-int conversions) accumulate the
/// influences of the erroneous operations that reach them; operation
/// records aggregate local error, anti-unified symbolic expressions, and
/// input characteristics incrementally (Section 6).
///
/// One Herbgrind object can run its program on many inputs; records
/// accumulate across runs, which is how the FPBench driver exercises each
/// benchmark on a sweep of sampled points.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_ANALYSIS_H
#define HERBGRIND_ANALYSIS_ANALYSIS_H

#include "inputs/InputSummary.h"
#include "ir/Interpreter.h"
#include "shadow/ShadowState.h"
#include "support/RunningStat.h"
#include "trace/SymExpr.h"

#include <map>
#include <memory>
#include <set>

namespace herbgrind {

/// All the tunable knobs of the analysis; defaults follow the paper.
struct AnalysisConfig {
  /// Tl: local error (bits) above which an operation becomes a candidate
  /// root cause (Fig 5a sweeps this).
  double LocalErrorThreshold = 5.0;
  /// Tm: output error (bits) above which a spot reports its influencers.
  double OutputErrorThreshold = 5.0;
  /// Shadow-real mantissa bits (the paper defaults to 1000; we to 256).
  size_t PrecisionBits = 256;
  /// Maximum tracked expression depth (Fig 5c/d sweeps this; 1 disables
  /// symbolic expressions like FpDebug-style tools).
  uint32_t MaxExprDepth = 24;
  /// Bounded depth for anti-unification equivalence classes (Section 6.1).
  uint32_t EquivDepth = 5;
  /// Intercept math-library calls as atomic ops (Section 5.3); when false
  /// the program is first lowered so the analysis sees libm internals
  /// (Section 8.2 ablation).
  bool WrapLibraryCalls = true;
  /// Detect compensating terms and stop their influence (Section 5.3).
  bool DetectCompensation = true;
  /// Input range characteristic (Fig 5b ablation).
  RangeMode Ranges = RangeMode::SignSplit;
  /// Section 6 optimization toggles (for the ablation bench).
  bool UseTypeAnalysis = true;
  bool SharedShadowValues = true;
  bool UsePools = true;
  /// Step budget per run.
  uint64_t MaxSteps = 100'000'000;
  /// Tier-0 predicate mode (the cheap tier of the tiered pipeline): no
  /// BigFloat shadows, no traces, no records -- every float op propagates
  /// only a conservative |real - concrete| bound (analysis/ErrorPredict),
  /// and spot observations set the per-run suspect flag instead of
  /// recording anything. A suspect run must be re-analyzed in full mode;
  /// a clean run is guaranteed to contribute no erroneous spots. Not part
  /// of the engine's config hash: it never changes full-mode results,
  /// only which runs pay for them.
  bool PredicateOnly = false;
};

enum class SpotKind : uint8_t { Output, Comparison, Conversion };

/// Per-spot aggregate (Section 4.2): how often this spot executed, how
/// often it was observably wrong, and which candidate root causes flowed
/// into it when it was.
struct SpotRecord {
  SpotKind Kind = SpotKind::Output;
  SourceLoc Loc;
  uint64_t Executions = 0;
  uint64_t Erroneous = 0;
  RunningStat ErrorBits; ///< Output spots: bits; others: 0/1 divergence.
  std::set<uint32_t> InfluencingOps; ///< PCs of influencing flagged ops.

  /// Folds another shard's record for the same spot in (counters sum,
  /// error stats merge, influencer sets union).
  void mergeFrom(const SpotRecord &Other);
};

/// Per-operation aggregate: local error statistics, the anti-unified
/// symbolic expression, and input characteristics (total + problematic).
struct OpRecord {
  Opcode Op = Opcode::AddF64;
  SourceLoc Loc;
  uint64_t Executions = 0;
  uint64_t Flagged = 0; ///< Executions with local error > Tl.
  uint64_t CompensationsDetected = 0;
  RunningStat LocalError;
  std::unique_ptr<SymExpr> Expr;
  uint32_t NextVarIdx = 0;
  InputCharacteristics TotalInputs;
  InputCharacteristics ProblematicInputs;
  double MaxFlaggedLocalError = 0.0;
  std::vector<VarBinding> ExampleProblematic; ///< Bindings at worst round.

  /// \name Profiler cost attribution (opprof, --profile-ops)
  /// Accumulated only while the op profiler samples; deliberately outside
  /// the wire format -- never serialized, never rendered into reports --
  /// so enabling the profiler cannot perturb report bytes. Merged and
  /// cloned with the record like every other aggregate.
  /// @{
  uint64_t ProfSamples = 0;
  uint64_t ProfNanos = 0;
  uint64_t ProfLimbAllocs = 0;
  uint64_t ProfLimbHits = 0;
  /// @}

  /// Deep copy (the symbolic expression is owned).
  OpRecord clone() const;

  /// Folds another shard's record for the same operation site in: the
  /// symbolic expressions are anti-unified (bounded at \p EquivDepth like
  /// the incremental path), input summaries are combined through the
  /// merged variables' provenance, and counters/statistics accumulate.
  /// Merging shards in execution order reproduces what one analysis
  /// running all the rounds sequentially would have recorded -- exactly
  /// so when the two sides' expressions disagree only at leaves and no
  /// NaN reached a disagreeing leaf (a NaN first observation hides the
  /// other shard's first value, which can shift merged-variable
  /// *numbering* relative to a sequential run; aggregates stay correct,
  /// and engine output remains byte-identical across worker counts
  /// either way).
  void mergeFrom(const OpRecord &Other, uint32_t EquivDepth);
};

/// A mergeable snapshot of one analysis' accumulated records: the value
/// the batch engine shards, ships between workers, and reduces. Merging is
/// deterministic; the engine always folds shards in ascending shard order
/// so reports are reproducible at any worker count.
struct AnalysisResult {
  std::map<uint32_t, OpRecord> Ops;
  std::map<uint32_t, SpotRecord> Spots;
  RangeMode Ranges = RangeMode::SignSplit;
  uint32_t EquivDepth = 5;

  AnalysisResult clone() const;

  /// Folds \p Other (a later shard of the same program) in.
  void mergeFrom(const AnalysisResult &Other);
};

/// \name Frontend-independent shadow semantics
/// The analysis below the operand-gathering layer, shared by the
/// interpreter frontend (Herbgrind, which finds operands in shadow
/// temporaries) and the native frontend (native::Context, which finds them
/// on live native::Real values). Both frontends funnel into these cores so
/// the two execution modes cannot drift apart semantically.
/// @{

/// Bits of error between a shadowed value's real and its concrete float
/// (Section 4.2's E); NaN concretes report maximal error per the paper.
double shadowValueErrorBits(const ShadowValue *SV, const Value &Concrete);

/// One shadowed scalar float operation (Figure 4): evaluates the op over
/// the reals, measures local error, detects compensating terms, propagates
/// influences, extends the concrete trace, and folds everything into
/// \p Rec (whose Op/Loc the caller has already stamped). \p PC is the
/// operation's stable static identity (an interpreter pc or an interned
/// native callsite). Returns the result's shadow value; the caller owns
/// one reference.
ShadowValue *shadowScalarOpCore(const AnalysisConfig &Cfg, ShadowState &Shadow,
                                OpRecord &Rec, Opcode Op, uint32_t PC,
                                ShadowValue *const *ArgSV,
                                const Value *ArgConcrete, unsigned NumArgs,
                                const Value &ConcreteResult);

/// The tail of shadowScalarOpCore for callers that already evaluated the
/// op over the reals: takes ownership of \p RealResult and performs
/// everything after the real evaluation (local error, compensation,
/// influences, trace, record update). The batched hot path uses this to
/// amortize the real evaluation across a lane-major workspace
/// (evalRealOpIntoBatch) and then run the bookkeeping per lane. Argument
/// reals are read through \p ArgSV, which must still hold the values the
/// real evaluation consumed. Carries no profiler bracket: profiled
/// executions go through shadowScalarOpCore.
ShadowValue *shadowScalarOpCoreWithReal(const AnalysisConfig &Cfg,
                                        ShadowState &Shadow, OpRecord &Rec,
                                        Opcode Op, uint32_t PC,
                                        ShadowValue *const *ArgSV,
                                        const Value *ArgConcrete,
                                        unsigned NumArgs,
                                        const Value &ConcreteResult,
                                        BigFloat &&RealResult);

/// One comparison-spot observation: evaluates the predicate over the reals
/// (unshadowed arguments fall back to their concrete bits) and folds
/// agreement or divergence into \p Spot, whose Kind/Loc/Executions the
/// caller has already updated. \p FloatPred is the concrete float
/// predicate's outcome.
void shadowComparisonSpotCore(const AnalysisConfig &Cfg, SpotRecord &Spot,
                              Opcode Op, ShadowValue *A, ShadowValue *B,
                              const Value &ConcA, const Value &ConcB,
                              bool FloatPred);

/// One float-to-int conversion-spot observation (\p IntResult is the
/// concrete truncation's value). Caller updates Kind/Loc/Executions.
void shadowConversionSpotCore(SpotRecord &Spot, ShadowValue *A,
                              int64_t IntResult);

/// One scalar output-spot observation; increments Executions itself (the
/// interpreter counts SIMD outputs per lane). Caller stamps Kind/Loc.
void shadowOutputSpotCore(const AnalysisConfig &Cfg, SpotRecord &Spot,
                          ShadowValue *SV, const Value &LaneVal);

/// Candidate root causes of a record set: flagged op records whose
/// influence reached an erroneous spot, most-flagged first (Section 4.2,
/// footnote 7).
std::vector<uint32_t>
reportedRootCausesFromRecords(const std::map<uint32_t, OpRecord> &Ops,
                              const std::map<uint32_t, SpotRecord> &Spots);

/// @}

/// Cumulative cost/size statistics (Table 1 and the optimization bench).
struct AnalysisStats {
  uint64_t InstrumentedSteps = 0;
  uint64_t ShadowOpsExecuted = 0;
  uint64_t SkippedByTypeAnalysis = 0;
  size_t TraceNodesAllocated = 0;
  size_t ShadowValuesAllocated = 0;
  size_t InfluenceSetsInterned = 0;
};

/// The analysis driver: owns the (possibly lowered) program, the shadow
/// machinery, and all accumulated records.
class Herbgrind {
public:
  explicit Herbgrind(const Program &P, AnalysisConfig Config = {});

  /// Runs the program once under full instrumentation; records accumulate.
  void runOnInput(const std::vector<double> &Inputs);

  /// Runs the program on \p NumLanes sample points at once (Inputs[L] is
  /// lane L's input tuple). Accumulated records, outputs, and suspect
  /// verdicts are byte-for-byte what NumLanes sequential runOnInput calls
  /// would have produced; when the program's shape allows it, the lanes
  /// execute in lockstep so per-op record lookups, trace bookkeeping, and
  /// the real-number kernels are amortized across the batch (and tier-0
  /// predicate runs drop to a struct-of-arrays double pipeline with no
  /// shadow-value allocation at all). Per-lane tier-0 verdicts land in
  /// laneSuspects(); lastRunSuspect()/lastOutputs() describe the final
  /// lane, exactly as if it had been the last sequential run.
  void runOnBatch(const std::vector<double> *Inputs, size_t NumLanes);

  /// Per-lane tier-0 suspect verdicts of the most recent runOnBatch (all
  /// false in full mode).
  const std::vector<uint8_t> &laneSuspects() const { return LaneSuspects; }

  /// True when the program is straight-line over temps only (no control
  /// flow, no memory or thread-state traffic), so runOnBatch can run its
  /// lanes in lockstep instead of falling back to sequential runs.
  bool lockstepBatchable() const { return BatchableLockstep; }

  /// True when, additionally, every value is a scalar F64 and every op a
  /// plain scalar float op: tier-0 batches then use the vectorizable
  /// struct-of-arrays pipeline (contiguous Conc/Delta/Noise lanes).
  bool soaBatchable() const { return BatchableSoA; }

  /// Clears every accumulated record and all shadow state, returning the
  /// instance to its freshly-constructed condition while keeping its
  /// arenas' slabs, interned influence sets, and compiled program. A reset
  /// instance produces records identical to a new one's; the batch engine
  /// uses this to recycle worker-local instances across shards.
  void reset();

  /// Per-operation records accumulated so far, keyed by pc. Live views:
  /// they grow as runOnInput is called.
  const std::map<uint32_t, OpRecord> &opRecords() const { return Ops; }

  /// Per-spot records accumulated so far, keyed by pc.
  const std::map<uint32_t, SpotRecord> &spotRecords() const { return Spots; }

  /// Copies the accumulated records out as a mergeable value.
  AnalysisResult snapshot() const;

  /// Concrete outputs of the most recent run (bit-identical to the
  /// uninstrumented interpreter's, by construction).
  const std::vector<Value> &lastOutputs() const { return LastOutputs; }

  /// Tier-0 verdict of the most recent run (predicate mode only): true
  /// when some spot predicate could not rule out an erroneous observation,
  /// i.e. the run needs the full BigFloat shadow. Always false in full
  /// mode.
  bool lastRunSuspect() const { return RunSuspect; }

  /// The analyzed program (the lowered form when WrapLibraryCalls is
  /// off).
  const Program &program() const { return Prog; }

  /// The configuration this analysis was constructed with.
  const AnalysisConfig &config() const { return Cfg; }

  /// Cumulative cost/size counters across all runs so far (Table 1).
  AnalysisStats stats() const;

  /// Candidate root causes: flagged op records whose influence reached an
  /// erroneous spot, most-flagged first (Section 4.2, footnote 7: only
  /// sources whose error flows into spots are reported).
  std::vector<uint32_t> reportedRootCauses() const;

private:
  struct StepContext;
  void runBatchLockstep(const std::vector<double> *Inputs, size_t NumLanes);
  void runPredicateBatchSoA(const std::vector<double> *Inputs,
                            size_t NumLanes);
  bool shadowFloatBatchStep(const Statement &S, uint32_t PC,
                            std::vector<MachineState> &States,
                            size_t NumLanes);
  void shadowStep(const Statement &S, uint32_t PC, const Value *Args,
                  MachineState &State);
  void shadowFloatScalar(Opcode Op, uint32_t PC, const SourceLoc &Loc,
                         uint32_t DstTemp, unsigned DstLane,
                         const uint32_t *ArgTemps, const unsigned *ArgLanes,
                         const Value *ArgConcrete, unsigned NumArgs,
                         const Value &ConcreteResult);
  void shadowComparisonSpot(const Statement &S, uint32_t PC,
                            const Value *Args, const Value &Result);
  void shadowConversionSpot(const Statement &S, uint32_t PC,
                            const Value *Args, const Value &Result);
  void shadowOutputSpot(const Statement &S, uint32_t PC, const Value &Out);
  void shadowBitwiseVector(const Statement &S, uint32_t PC,
                           const Value *Args, const Value &Result);
  ShadowValue *lazyShadow(uint32_t Temp, unsigned Lane, const Value &Concrete,
                          ValueType Ty);

  Program Prog;
  AnalysisConfig Cfg;
  TraceArena Arena;
  InfluenceSets Sets;
  std::unique_ptr<ShadowState> Shadow;
  std::vector<ValueType> TempTypes;
  std::vector<bool> Skippable;
  /// Per-pc: a plain scalar float op eligible for the batched real-kernel
  /// fast path (precomputed alongside Skippable).
  std::vector<uint8_t> BatchFastOp;
  bool BatchableLockstep = false;
  bool BatchableSoA = false;
  std::map<uint32_t, OpRecord> Ops;
  std::map<uint32_t, SpotRecord> Spots;
  std::vector<Value> LastOutputs;
  std::vector<uint8_t> LaneSuspects;
  /// \name Batch scratch (sized on demand, reused batch over batch).
  /// @{
  std::vector<Value> BatchArgVals;
  std::vector<ShadowValue *> BatchArgSV;
  std::vector<BigFloat> BatchReals;   ///< Lane-major argument workspace.
  std::vector<BigFloat> BatchResults; ///< Per-lane real results.
  std::vector<double> SoAConc, SoADelta, SoANoise; ///< [Temp*Lanes+lane]
  std::vector<uint8_t> SoAHas;
  /// @}
  uint64_t TotalSteps = 0;
  uint64_t ShadowOps = 0;
  uint64_t Skipped = 0;
  bool RunSuspect = false;
};

} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_ANALYSIS_H
