//===- analysis/Serialize.cpp - Result wire format ------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Every document family below is ONE schema traversal, written against the
// abstract wire::Encoder/wire::Decoder interface. The JSON backend
// reproduces the historical hand-rendered bytes exactly; the HGB binary
// backend reads/writes the same traversal positionally. Field order in the
// encode functions IS the wire format -- both the JSON byte layout and the
// binary field sequence -- so changing it is a format change.
//
//===----------------------------------------------------------------------===//

#include "analysis/Serialize.h"

#include "support/Format.h"
#include "support/Wire.h"
#include "support/WireBinary.h"

#include <cassert>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// Small enum/value helpers shared by render and parse
//===----------------------------------------------------------------------===//

const char *herbgrind::spotKindName(SpotKind K) {
  switch (K) {
  case SpotKind::Output:
    return "Output";
  case SpotKind::Comparison:
    return "Compare";
  case SpotKind::Conversion:
    return "Conversion";
  }
  return "?";
}

static bool parseSpotKind(const std::string &Name, SpotKind &Out) {
  for (SpotKind K :
       {SpotKind::Output, SpotKind::Comparison, SpotKind::Conversion})
    if (Name == spotKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

static const char *rangeModeName(RangeMode M) {
  switch (M) {
  case RangeMode::Off:
    return "off";
  case RangeMode::Single:
    return "single";
  case RangeMode::SignSplit:
    return "sign-split";
  }
  return "?";
}

static bool parseRangeMode(const std::string &Name, RangeMode &Out) {
  for (RangeMode M : {RangeMode::Off, RangeMode::Single, RangeMode::SignSplit})
    if (Name == rangeModeName(M)) {
      Out = M;
      return true;
    }
  return false;
}

/// Opcode from its IR mnemonic (the unique "add.f64"-style name).
static bool parseOpcode(const std::string &Name, Opcode &Out) {
  for (unsigned I = 0; I < static_cast<unsigned>(Opcode::NumOpcodes); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    if (Name == opInfo(Op).Name) {
      Out = Op;
      return true;
    }
  }
  return false;
}

namespace {

/// Names the decoder's schema context ("op record", "loc", ...) for the
/// dynamic extent of one decode function, restoring the caller's on exit
/// so nested decodes don't mislabel the fields that follow them.
struct ScopedCtx {
  wire::Decoder &D;
  const char *Saved;
  ScopedCtx(wire::Decoder &Dec, const char *C) : D(Dec), Saved(Dec.context()) {
    D.setContext(C);
  }
  ~ScopedCtx() { D.setContext(Saved); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Source locations
//===----------------------------------------------------------------------===//

static void encodeSourceLoc(wire::Encoder &E, const SourceLoc &Loc) {
  E.beginObject();
  E.key("file");
  E.str(Loc.File);
  E.key("line");
  E.i64(Loc.Line);
  E.key("func");
  E.str(Loc.Function);
  E.endObject();
}

static bool decodeSourceLoc(wire::Decoder &D, SourceLoc &Out) {
  ScopedCtx C(D, "loc");
  int64_t Line = 0;
  if (!D.beginObject() || !D.key("file") || !D.str(Out.File) ||
      !D.key("line") || !D.i64(Line) || !D.key("func") ||
      !D.str(Out.Function))
    return false;
  Out.Line = static_cast<int>(Line);
  return D.endObject();
}

std::string herbgrind::renderSourceLocJson(const SourceLoc &Loc) {
  wire::JsonEncoder E;
  encodeSourceLoc(E, Loc);
  return E.take();
}

//===----------------------------------------------------------------------===//
// Running statistics
//===----------------------------------------------------------------------===//

static void encodeStat(wire::Encoder &E, const RunningStat &S) {
  E.beginObject();
  E.key("count");
  E.u64(S.count());
  E.key("sum");
  E.dbl(S.sum());
  E.key("max");
  E.dbl(S.max());
  E.endObject();
}

static bool decodeStat(wire::Decoder &D, RunningStat &Out) {
  ScopedCtx C(D, "stat");
  uint64_t Count = 0;
  double Sum = 0, Max = 0;
  if (!D.beginObject() || !D.key("count") || !D.u64(Count) || !D.key("sum") ||
      !D.dbl(Sum) || !D.key("max") || !D.dbl(Max) || !D.endObject())
    return false;
  Out = RunningStat::fromParts(Count, Sum, Max);
  return true;
}

//===----------------------------------------------------------------------===//
// Input summaries
//===----------------------------------------------------------------------===//

static void encodeVarSummary(wire::Encoder &E, const VarSummary &S) {
  E.beginObject();
  E.key("count");
  E.u64(S.Count);
  E.key("sawNaN");
  E.boolean(S.SawNaN);
  E.key("sawZero");
  E.boolean(S.SawZero);
  E.key("example");
  E.dbl(S.Example);
  auto Range = [&](const char *Key, bool Has, double Lo, double Hi) {
    E.present(Has);
    if (!Has)
      return;
    E.key(Key);
    E.beginArray(2);
    E.dbl(Lo);
    E.dbl(Hi);
    E.endArray();
  };
  Range("range", S.HasRange, S.Lo, S.Hi);
  Range("neg", S.HasNeg, S.NegLo, S.NegHi);
  Range("pos", S.HasPos, S.PosLo, S.PosHi);
  E.endObject();
}

static bool decodeVarSummary(wire::Decoder &D, VarSummary &Out) {
  ScopedCtx C(D, "varSummary");
  if (!D.beginObject() || !D.key("count") || !D.u64(Out.Count) ||
      !D.key("sawNaN") || !D.boolean(Out.SawNaN) || !D.key("sawZero") ||
      !D.boolean(Out.SawZero) || !D.key("example") || !D.dbl(Out.Example))
    return false;
  auto Range = [&](const char *Key, bool &Has, double &Lo, double &Hi) {
    if (!D.present(Key, Has))
      return false;
    if (!Has)
      return true; // absent range: the flag stays false
    uint64_t N = 0;
    if (!D.key(Key) || !D.beginArray(N))
      return false;
    if (N != 2)
      return D.failOver(
          format("varSummary: field '%s' not a [lo, hi] number pair", Key));
    return D.element() && D.dbl(Lo) && D.element() && D.dbl(Hi) &&
           D.endArray();
  };
  return Range("range", Out.HasRange, Out.Lo, Out.Hi) &&
         Range("neg", Out.HasNeg, Out.NegLo, Out.NegHi) &&
         Range("pos", Out.HasPos, Out.PosLo, Out.PosHi) && D.endObject();
}

// Defined here rather than in InputSummary.cpp so the schema exists
// exactly once, in the traversal above.
std::string VarSummary::renderJson() const {
  wire::JsonEncoder E;
  encodeVarSummary(E, *this);
  return E.take();
}

static void encodeInputs(wire::Encoder &E, const InputCharacteristics &C) {
  E.beginArray(C.Vars.size());
  for (const VarSummary &V : C.Vars)
    encodeVarSummary(E, V);
  E.endArray();
}

static bool decodeInputs(wire::Decoder &D, InputCharacteristics &Out) {
  ScopedCtx C(D, "inputs");
  uint64_t N = 0;
  if (!D.beginArray(N))
    return false;
  Out.Vars.clear();
  for (uint64_t I = 0; I < N; ++I) {
    VarSummary V;
    if (!D.element() || !decodeVarSummary(D, V))
      return false;
    Out.Vars.push_back(std::move(V));
  }
  return D.endArray();
}

//===----------------------------------------------------------------------===//
// Symbolic expressions
//===----------------------------------------------------------------------===//

static const char *const SymExprKeys[] = {"const", "var"};

static void encodeSymExpr(wire::Encoder &E, const SymExpr &Ex) {
  E.beginObject();
  switch (Ex.Kind) {
  case SymExpr::SEKind::Const:
    E.variantTag(0);
    E.key("const");
    E.dbl(Ex.ConstVal);
    break;
  case SymExpr::SEKind::Var:
    E.variantTag(1);
    E.key("var");
    E.u32(Ex.VarIdx);
    break;
  case SymExpr::SEKind::Op:
    E.variantTag(2);
    E.key("op");
    E.str(opInfo(Ex.Op).Name);
    E.key("site");
    E.u32(Ex.Site);
    E.key("kids");
    E.beginArray(Ex.Kids.size());
    for (const auto &Kid : Ex.Kids)
      encodeSymExpr(E, *Kid);
    E.endArray();
    break;
  }
  E.endObject();
}

static std::unique_ptr<SymExpr> decodeSymExpr(wire::Decoder &D) {
  ScopedCtx C(D, "expr");
  if (!D.beginObject())
    return nullptr;
  unsigned Tag = 0;
  if (!D.variant(SymExprKeys, 2, Tag))
    return nullptr;
  std::unique_ptr<SymExpr> Node;
  switch (Tag) {
  case 0: {
    double V = 0;
    if (!D.key("const") || !D.dbl(V))
      return nullptr;
    Node = SymExpr::makeConst(V);
    break;
  }
  case 1: {
    uint32_t Idx = 0;
    if (!D.key("var") || !D.u32(Idx))
      return nullptr;
    Node = SymExpr::makeVar(Idx);
    break;
  }
  default: {
    std::string OpName;
    uint32_t Site = 0;
    if (!D.key("op") || !D.str(OpName) || !D.key("site") || !D.u32(Site))
      return nullptr;
    Opcode Op;
    if (!parseOpcode(OpName, Op)) {
      D.failOver(format("expr: unknown opcode '%s'", OpName.c_str()));
      return nullptr;
    }
    Node = SymExpr::makeOp(Op, Site);
    uint64_t N = 0;
    if (!D.key("kids") || !D.beginArray(N))
      return nullptr;
    for (uint64_t I = 0; I < N; ++I) {
      if (!D.element())
        return nullptr;
      std::unique_ptr<SymExpr> Kid = decodeSymExpr(D);
      if (!Kid)
        return nullptr;
      Node->Kids.push_back(std::move(Kid));
    }
    if (!D.endArray())
      return nullptr;
    break;
  }
  }
  if (!D.endObject())
    return nullptr;
  return Node;
}

std::string herbgrind::renderSymExprJson(const SymExpr &E) {
  wire::JsonEncoder Enc;
  encodeSymExpr(Enc, E);
  return Enc.take();
}

//===----------------------------------------------------------------------===//
// Operation and spot records
//===----------------------------------------------------------------------===//

static void encodeOpRecord(wire::Encoder &E, uint32_t PC, const OpRecord &Rec) {
  E.beginObject();
  E.key("pc");
  E.u32(PC);
  E.key("op");
  E.str(opInfo(Rec.Op).Name);
  E.key("loc");
  encodeSourceLoc(E, Rec.Loc);
  E.key("executions");
  E.u64(Rec.Executions);
  E.key("flagged");
  E.u64(Rec.Flagged);
  E.key("compensations");
  E.u64(Rec.CompensationsDetected);
  E.key("localError");
  encodeStat(E, Rec.LocalError);
  E.key("maxFlaggedLocalError");
  E.dbl(Rec.MaxFlaggedLocalError);
  E.key("nextVarIdx");
  E.u32(Rec.NextVarIdx);
  E.present(Rec.Expr != nullptr);
  if (Rec.Expr) {
    E.key("expr");
    encodeSymExpr(E, *Rec.Expr);
  }
  E.key("totalInputs");
  encodeInputs(E, Rec.TotalInputs);
  E.key("problematicInputs");
  encodeInputs(E, Rec.ProblematicInputs);
  E.key("exampleProblematic");
  E.beginArray(Rec.ExampleProblematic.size());
  for (const VarBinding &B : Rec.ExampleProblematic) {
    E.beginObject();
    E.key("var");
    E.u32(B.Idx);
    E.key("value");
    E.dbl(B.Value);
    E.endObject();
  }
  E.endArray();
  E.endObject();
}

static bool decodeOpRecord(wire::Decoder &D, uint32_t &PC, OpRecord &Rec) {
  ScopedCtx C(D, "op record");
  std::string OpName;
  if (!D.beginObject() || !D.key("pc") || !D.u32(PC) || !D.key("op") ||
      !D.str(OpName))
    return false;
  if (!parseOpcode(OpName, Rec.Op))
    return D.failOver(
        format("op record: unknown opcode '%s'", OpName.c_str()));
  if (!D.key("loc") || !decodeSourceLoc(D, Rec.Loc))
    return false;
  if (!D.key("executions") || !D.u64(Rec.Executions) || !D.key("flagged") ||
      !D.u64(Rec.Flagged) || !D.key("compensations") ||
      !D.u64(Rec.CompensationsDetected))
    return false;
  if (!D.key("localError") || !decodeStat(D, Rec.LocalError))
    return false;
  if (!D.key("maxFlaggedLocalError") || !D.dbl(Rec.MaxFlaggedLocalError) ||
      !D.key("nextVarIdx") || !D.u32(Rec.NextVarIdx))
    return false;
  bool HasExpr = false;
  if (!D.present("expr", HasExpr))
    return false;
  if (HasExpr) {
    if (!D.key("expr"))
      return false;
    Rec.Expr = decodeSymExpr(D);
    if (!Rec.Expr)
      return false;
  }
  if (!D.key("totalInputs") || !decodeInputs(D, Rec.TotalInputs) ||
      !D.key("problematicInputs") || !decodeInputs(D, Rec.ProblematicInputs))
    return false;
  uint64_t N = 0;
  if (!D.key("exampleProblematic") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx BC(D, "example binding");
    VarBinding B{0, 0.0};
    if (!D.element() || !D.beginObject() || !D.key("var") || !D.u32(B.Idx) ||
        !D.key("value") || !D.dbl(B.Value) || !D.endObject())
      return false;
    Rec.ExampleProblematic.push_back(B);
  }
  return D.endArray() && D.endObject();
}

static void encodeSpotRecord(wire::Encoder &E, uint32_t PC,
                             const SpotRecord &Spot) {
  E.beginObject();
  E.key("pc");
  E.u32(PC);
  E.key("kind");
  E.str(spotKindName(Spot.Kind));
  E.key("loc");
  encodeSourceLoc(E, Spot.Loc);
  E.key("executions");
  E.u64(Spot.Executions);
  E.key("erroneous");
  E.u64(Spot.Erroneous);
  E.key("errorBits");
  encodeStat(E, Spot.ErrorBits);
  E.key("influencingOps");
  E.beginArray(Spot.InfluencingOps.size());
  for (uint32_t Op : Spot.InfluencingOps)
    E.u32(Op);
  E.endArray();
  E.endObject();
}

static bool decodeSpotRecord(wire::Decoder &D, uint32_t &PC,
                             SpotRecord &Spot) {
  ScopedCtx C(D, "spot record");
  std::string KindName;
  if (!D.beginObject() || !D.key("pc") || !D.u32(PC) || !D.key("kind") ||
      !D.str(KindName))
    return false;
  if (!parseSpotKind(KindName, Spot.Kind))
    return D.failOver(
        format("spot record: unknown kind '%s'", KindName.c_str()));
  if (!D.key("loc") || !decodeSourceLoc(D, Spot.Loc))
    return false;
  if (!D.key("executions") || !D.u64(Spot.Executions) ||
      !D.key("erroneous") || !D.u64(Spot.Erroneous))
    return false;
  if (!D.key("errorBits") || !decodeStat(D, Spot.ErrorBits))
    return false;
  uint64_t N = 0;
  if (!D.key("influencingOps") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    uint32_t Op = 0;
    if (!D.element() || !D.u32(Op))
      return false;
    Spot.InfluencingOps.insert(Op);
  }
  return D.endArray() && D.endObject();
}

//===----------------------------------------------------------------------===//
// Analysis results
//===----------------------------------------------------------------------===//

static void encodeAnalysisResult(wire::Encoder &E, const AnalysisResult &R) {
  E.beginObject();
  E.key("ranges");
  E.str(rangeModeName(R.Ranges));
  E.key("equivDepth");
  E.u32(R.EquivDepth);
  E.key("ops");
  E.beginArray(R.Ops.size());
  for (const auto &[PC, Rec] : R.Ops)
    encodeOpRecord(E, PC, Rec);
  E.endArray();
  E.key("spots");
  E.beginArray(R.Spots.size());
  for (const auto &[PC, Spot] : R.Spots)
    encodeSpotRecord(E, PC, Spot);
  E.endArray();
  E.endObject();
}

static bool decodeAnalysisResult(wire::Decoder &D, AnalysisResult &Out) {
  ScopedCtx C(D, "result");
  std::string RangesName;
  if (!D.beginObject() || !D.key("ranges") || !D.str(RangesName) ||
      !D.key("equivDepth") || !D.u32(Out.EquivDepth))
    return false;
  if (!parseRangeMode(RangesName, Out.Ranges))
    return D.failOver(
        format("result: unknown range mode '%s'", RangesName.c_str()));
  uint64_t NumOps = 0;
  if (!D.key("ops") || !D.beginArray(NumOps))
    return false;
  for (uint64_t I = 0; I < NumOps; ++I) {
    uint32_t PC = 0;
    OpRecord Rec;
    if (!D.element() || !decodeOpRecord(D, PC, Rec))
      return false;
    if (!Out.Ops.emplace(PC, std::move(Rec)).second)
      return D.failOver(format("result: duplicate op record for pc %u", PC));
  }
  if (!D.endArray())
    return false;
  uint64_t NumSpots = 0;
  if (!D.key("spots") || !D.beginArray(NumSpots))
    return false;
  for (uint64_t I = 0; I < NumSpots; ++I) {
    uint32_t PC = 0;
    SpotRecord Spot;
    if (!D.element() || !decodeSpotRecord(D, PC, Spot))
      return false;
    if (!Out.Spots.emplace(PC, std::move(Spot)).second)
      return D.failOver(
          format("result: duplicate spot record for pc %u", PC));
  }
  return D.endArray() && D.endObject();
}

std::string herbgrind::renderAnalysisResultJson(const AnalysisResult &R) {
  wire::JsonEncoder E;
  encodeAnalysisResult(E, R);
  return E.take();
}

bool herbgrind::parseAnalysisResultJson(const JsonValue &V, AnalysisResult &Out,
                                        std::string &Err) {
  wire::JsonDecoder D(V);
  if (!decodeAnalysisResult(D, Out)) {
    Err = D.error();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Envelopes: JSON {"format","version"} keys, HGB header fields
//===----------------------------------------------------------------------===//

/// Writes the JSON document envelope. The binary backend never calls
/// this: the HGB header already carries family + major + minor, and
/// duplicating them as body fields would tax every small document.
static void encodeJsonEnvelope(wire::JsonEncoder &E, const char *Fmt,
                               int Major, int Minor) {
  E.key("format");
  E.str(Fmt);
  E.key("version");
  E.beginObject();
  E.key("major");
  E.i64(Major);
  E.key("minor");
  E.i64(Minor);
  E.endObject();
}

/// Checks a JSON document's {"format","version"} envelope: the tag must
/// match and the major version must equal \p ExpectedMajor (the report
/// wire format and the telemetry document version independently). Minor
/// versions are additive, so any minor of a known major is accepted --
/// including a missing "minor" from a hypothetical older writer.
static bool decodeJsonEnvelope(wire::JsonDecoder &D, const char *Fmt,
                               int ExpectedMajor, int *MinorOut = nullptr) {
  std::string Tag;
  if (!D.key("format") || !D.str(Tag) || Tag != Fmt)
    return D.failOver(
        format("document is not a %s file (bad or missing 'format')", Fmt));
  if (!D.key("version") || !D.beginObject())
    return D.failOver("missing 'version' object");
  int64_t Major = 0;
  if (!D.key("major") || !D.i64(Major))
    return D.failOver("missing 'version.major'");
  if (Major != ExpectedMajor)
    return D.failOver(format("unsupported %s major version %lld (this "
                             "reader understands %d)",
                             Fmt, static_cast<long long>(Major),
                             ExpectedMajor));
  // Callers that decode minor-gated optional fields need the document's
  // own minor; a missing "minor" (hypothetical older writer) reads as 0.
  if (MinorOut) {
    bool HasMinor = false;
    int64_t Minor = 0;
    if (!D.present("minor", HasMinor))
      return false;
    if (HasMinor && (!D.key("minor") || !D.i64(Minor)))
      return false;
    *MinorOut = static_cast<int>(Minor);
  }
  return D.endObject();
}

/// The binary counterpart: validates the already-parsed HGB header
/// against the expected family and major version.
static bool checkBinaryHeader(wire::BinaryDecoder &D, wire::Family F,
                              const char *Fmt, int ExpectedMajor,
                              std::string &Err) {
  if (!D.ok()) {
    Err = D.error();
    return false;
  }
  if (D.family() != F) {
    Err = format("document is not a %s file (HGB family '%s')", Fmt,
                 wire::familyName(D.family()));
    return false;
  }
  if (D.major() != ExpectedMajor) {
    Err = format("unsupported %s major version %d (this reader "
                 "understands %d)",
                 Fmt, D.major(), ExpectedMajor);
    return false;
  }
  return true;
}

/// Wraps parseJson with the uniform offset-bearing error message.
static bool parseJsonText(const std::string &Text, JsonParseResult &R,
                          std::string &Err) {
  R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Shard documents
//===----------------------------------------------------------------------===//

static void encodeShardBody(wire::Encoder &E, const std::string &ConfigHash,
                            const std::string &Benchmark, uint64_t BenchIndex,
                            uint64_t ShardIndex, uint64_t RunBegin,
                            uint64_t RunEnd, const AnalysisResult &Result) {
  E.key("configHash");
  E.str(ConfigHash);
  E.key("benchmark");
  E.str(Benchmark);
  E.key("benchIndex");
  E.u64(BenchIndex);
  E.key("shardIndex");
  E.u64(ShardIndex);
  E.key("runBegin");
  E.u64(RunBegin);
  E.key("runEnd");
  E.u64(RunEnd);
  E.key("result");
  encodeAnalysisResult(E, Result);
}

static bool decodeShardBody(wire::Decoder &D, ShardDoc &Out) {
  ScopedCtx C(D, "shard");
  if (!D.key("configHash") || !D.str(Out.ConfigHash) || !D.key("benchmark") ||
      !D.str(Out.Benchmark) || !D.key("benchIndex") ||
      !D.u64(Out.BenchIndex) || !D.key("shardIndex") ||
      !D.u64(Out.ShardIndex) || !D.key("runBegin") || !D.u64(Out.RunBegin) ||
      !D.key("runEnd") || !D.u64(Out.RunEnd))
    return false;
  if (Out.RunEnd < Out.RunBegin)
    return D.failOver(
        format("shard: runEnd (%llu) precedes runBegin (%llu)",
               static_cast<unsigned long long>(Out.RunEnd),
               static_cast<unsigned long long>(Out.RunBegin)));
  return D.key("result") && decodeAnalysisResult(D, Out.Result);
}

std::string herbgrind::renderShardJson(const std::string &ConfigHash,
                                       const std::string &Benchmark,
                                       uint64_t BenchIndex,
                                       uint64_t ShardIndex, uint64_t RunBegin,
                                       uint64_t RunEnd,
                                       const AnalysisResult &Result) {
  wire::JsonEncoder E;
  E.beginObject();
  encodeJsonEnvelope(E, "herbgrind-shard", WireFormatMajor, WireFormatMinor);
  encodeShardBody(E, ConfigHash, Benchmark, BenchIndex, ShardIndex, RunBegin,
                  RunEnd, Result);
  E.endObject();
  return E.take();
}

std::string herbgrind::renderShardJson(const ShardDoc &Doc) {
  return renderShardJson(Doc.ConfigHash, Doc.Benchmark, Doc.BenchIndex,
                         Doc.ShardIndex, Doc.RunBegin, Doc.RunEnd, Doc.Result);
}

std::string herbgrind::renderShardBinary(const std::string &ConfigHash,
                                         const std::string &Benchmark,
                                         uint64_t BenchIndex,
                                         uint64_t ShardIndex,
                                         uint64_t RunBegin, uint64_t RunEnd,
                                         const AnalysisResult &Result) {
  wire::BinaryEncoder E(wire::Family::Shard, WireFormatMajor, WireFormatMinor);
  encodeShardBody(E, ConfigHash, Benchmark, BenchIndex, ShardIndex, RunBegin,
                  RunEnd, Result);
  return E.take();
}

std::string herbgrind::renderShardBinary(const ShardDoc &Doc) {
  return renderShardBinary(Doc.ConfigHash, Doc.Benchmark, Doc.BenchIndex,
                           Doc.ShardIndex, Doc.RunBegin, Doc.RunEnd,
                           Doc.Result);
}

std::string herbgrind::renderShard(const ShardDoc &Doc, WireEncoding Enc) {
  return Enc == WireEncoding::Binary ? renderShardBinary(Doc)
                                     : renderShardJson(Doc);
}

bool herbgrind::parseShardJson(const std::string &Text, ShardDoc &Out,
                               std::string &Err) {
  JsonParseResult R;
  if (!parseJsonText(Text, R, Err))
    return false;
  if (!R.Value.isObject()) {
    Err = "shard document is not an object";
    return false;
  }
  wire::JsonDecoder D(R.Value);
  if (!D.beginObject() ||
      !decodeJsonEnvelope(D, "herbgrind-shard", WireFormatMajor) ||
      !decodeShardBody(D, Out) || !D.endObject()) {
    Err = D.error();
    return false;
  }
  return true;
}

static bool parseShardBinary(const std::string &Text, ShardDoc &Out,
                             std::string &Err) {
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::Shard, "herbgrind-shard",
                         WireFormatMajor, Err))
    return false;
  if (!decodeShardBody(D, Out)) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "shard: trailing bytes after HGB document";
    return false;
  }
  return true;
}

bool herbgrind::parseShard(const std::string &Text, ShardDoc &Out,
                           std::string &Err) {
  return wire::isBinary(Text) ? parseShardBinary(Text, Out, Err)
                              : parseShardJson(Text, Out, Err);
}

//===----------------------------------------------------------------------===//
// Improver records and the improve cache document
//===----------------------------------------------------------------------===//

static void encodeImproveOutcome(wire::Encoder &E, const ImproveRecord &R) {
  E.key("original");
  E.str(R.Original);
  E.key("rewritten");
  E.str(R.Rewritten);
  E.key("errorBefore");
  E.dbl(R.ErrorBefore);
  E.key("errorAfter");
  E.dbl(R.ErrorAfter);
  E.key("significant");
  E.boolean(R.HadSignificantError);
  E.key("improved");
  E.boolean(R.Improved);
}

static bool decodeImproveOutcome(wire::Decoder &D, ImproveRecord &Out) {
  ScopedCtx C(D, "improve record");
  return D.key("original") && D.str(Out.Original) && D.key("rewritten") &&
         D.str(Out.Rewritten) && D.key("errorBefore") &&
         D.dbl(Out.ErrorBefore) && D.key("errorAfter") &&
         D.dbl(Out.ErrorAfter) && D.key("significant") &&
         D.boolean(Out.HadSignificantError) && D.key("improved") &&
         D.boolean(Out.Improved);
}

std::string herbgrind::renderImproveOutcomeJson(const ImproveRecord &R) {
  wire::JsonEncoder E;
  E.beginObject();
  encodeImproveOutcome(E, R);
  E.endObject();
  std::string S = E.take();
  // Callers splice the fragment into their own object, so strip the
  // braces the encoder needs for key bookkeeping.
  return S.substr(1, S.size() - 2);
}

static void encodeImproveDocBody(wire::Encoder &E, const ImproveDoc &Doc) {
  E.key("configHash");
  E.str(Doc.ConfigHash);
  E.key("improveHash");
  E.str(Doc.ImproveHash);
  E.key("expr");
  E.str(Doc.ExprIdentity);
  E.key("specs");
  E.str(Doc.SpecIdentity);
  E.key("record");
  E.beginObject();
  encodeImproveOutcome(E, Doc.Record);
  E.endObject();
}

static bool decodeImproveDocBody(wire::Decoder &D, ImproveDoc &Out) {
  ScopedCtx C(D, "improve");
  if (!D.key("configHash") || !D.str(Out.ConfigHash) ||
      !D.key("improveHash") || !D.str(Out.ImproveHash) || !D.key("expr") ||
      !D.str(Out.ExprIdentity) || !D.key("specs") || !D.str(Out.SpecIdentity))
    return false;
  return D.key("record") && D.beginObject() &&
         decodeImproveOutcome(D, Out.Record) && D.endObject();
}

std::string herbgrind::renderImproveDocJson(const ImproveDoc &Doc) {
  wire::JsonEncoder E;
  E.beginObject();
  encodeJsonEnvelope(E, "herbgrind-improve", WireFormatMajor, WireFormatMinor);
  encodeImproveDocBody(E, Doc);
  E.endObject();
  return E.take();
}

std::string herbgrind::renderImproveDocBinary(const ImproveDoc &Doc) {
  wire::BinaryEncoder E(wire::Family::Improve, WireFormatMajor,
                        WireFormatMinor);
  encodeImproveDocBody(E, Doc);
  return E.take();
}

std::string herbgrind::renderImproveDoc(const ImproveDoc &Doc,
                                        WireEncoding Enc) {
  return Enc == WireEncoding::Binary ? renderImproveDocBinary(Doc)
                                     : renderImproveDocJson(Doc);
}

bool herbgrind::parseImproveDocJson(const std::string &Text, ImproveDoc &Out,
                                    std::string &Err) {
  JsonParseResult R;
  if (!parseJsonText(Text, R, Err))
    return false;
  if (!R.Value.isObject()) {
    Err = "improve document is not an object";
    return false;
  }
  wire::JsonDecoder D(R.Value);
  if (!D.beginObject() ||
      !decodeJsonEnvelope(D, "herbgrind-improve", WireFormatMajor) ||
      !decodeImproveDocBody(D, Out) || !D.endObject()) {
    Err = D.error();
    return false;
  }
  return true;
}

static bool parseImproveDocBinary(const std::string &Text, ImproveDoc &Out,
                                  std::string &Err) {
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::Improve, "herbgrind-improve",
                         WireFormatMajor, Err))
    return false;
  if (!decodeImproveDocBody(D, Out)) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "improve: trailing bytes after HGB document";
    return false;
  }
  return true;
}

bool herbgrind::parseImproveDoc(const std::string &Text, ImproveDoc &Out,
                                std::string &Err) {
  return wire::isBinary(Text) ? parseImproveDocBinary(Text, Out, Err)
                              : parseImproveDocJson(Text, Out, Err);
}

//===----------------------------------------------------------------------===//
// Presentation-level reports
//===----------------------------------------------------------------------===//

static void encodeReportBody(wire::Encoder &E, const Report &R) {
  E.beginObject();
  E.key("spots");
  E.beginArray(R.Spots.size());
  for (const SpotReport &SR : R.Spots) {
    E.beginObject();
    E.key("kind");
    E.str(spotKindName(SR.Kind));
    E.key("pc");
    E.u32(SR.PC);
    E.key("loc");
    encodeSourceLoc(E, SR.Loc);
    E.key("executions");
    E.u64(SR.Executions);
    E.key("erroneous");
    E.u64(SR.Erroneous);
    E.key("maxErrorBits");
    E.dbl(SR.MaxErrorBits);
    E.key("rootCauses");
    E.beginArray(SR.RootCauses.size());
    for (const RootCauseReport &RC : SR.RootCauses) {
      E.beginObject();
      E.key("pc");
      E.u32(RC.PC);
      E.key("loc");
      encodeSourceLoc(E, RC.Loc);
      E.key("fpcore");
      E.str(RC.FPCore);
      E.key("body");
      E.str(RC.Body);
      E.key("numVars");
      E.u32(RC.NumVars);
      E.key("opCount");
      E.u64(RC.OpCount);
      E.key("flagged");
      E.u64(RC.Flagged);
      E.key("maxLocalError");
      E.dbl(RC.MaxLocalError);
      E.key("avgLocalError");
      E.dbl(RC.AvgLocalError);
      E.key("exampleInput");
      E.str(RC.ExampleInput);
      E.endObject();
    }
    E.endArray();
    E.endObject();
  }
  E.endArray();
  // The improvements section is emitted only when an improver pass ran:
  // an empty vector renders the exact pre-1.1 bytes, so reports without
  // improver results stay byte-identical to older writers'.
  E.present(!R.Improvements.empty());
  if (!R.Improvements.empty()) {
    E.key("improvements");
    E.beginArray(R.Improvements.size());
    for (const ImproveRecord &IR : R.Improvements) {
      E.beginObject();
      E.key("pc");
      E.u32(IR.PC);
      encodeImproveOutcome(E, IR);
      E.endObject();
    }
    E.endArray();
  }
  E.endObject();
}

static bool decodeReportBody(wire::Decoder &D, Report &Out) {
  ScopedCtx C(D, "report");
  if (!D.beginObject())
    return false;
  uint64_t NumSpots = 0;
  if (!D.key("spots") || !D.beginArray(NumSpots))
    return false;
  for (uint64_t I = 0; I < NumSpots; ++I) {
    ScopedCtx SC(D, "report spot");
    SpotReport SR;
    std::string KindName;
    if (!D.element() || !D.beginObject() || !D.key("kind") ||
        !D.str(KindName))
      return false;
    if (!parseSpotKind(KindName, SR.Kind))
      return D.failOver(
          format("report: unknown spot kind '%s'", KindName.c_str()));
    if (!D.key("pc") || !D.u32(SR.PC) || !D.key("loc") ||
        !decodeSourceLoc(D, SR.Loc) || !D.key("executions") ||
        !D.u64(SR.Executions) || !D.key("erroneous") ||
        !D.u64(SR.Erroneous) || !D.key("maxErrorBits") ||
        !D.dbl(SR.MaxErrorBits))
      return false;
    uint64_t NumCauses = 0;
    if (!D.key("rootCauses") || !D.beginArray(NumCauses))
      return false;
    for (uint64_t J = 0; J < NumCauses; ++J) {
      ScopedCtx CC(D, "root cause");
      RootCauseReport RC;
      uint64_t OpCount = 0;
      if (!D.element() || !D.beginObject() || !D.key("pc") || !D.u32(RC.PC) ||
          !D.key("loc") || !decodeSourceLoc(D, RC.Loc) || !D.key("fpcore") ||
          !D.str(RC.FPCore) || !D.key("body") || !D.str(RC.Body) ||
          !D.key("numVars") || !D.u32(RC.NumVars) || !D.key("opCount") ||
          !D.u64(OpCount) || !D.key("flagged") || !D.u64(RC.Flagged) ||
          !D.key("maxLocalError") || !D.dbl(RC.MaxLocalError) ||
          !D.key("avgLocalError") || !D.dbl(RC.AvgLocalError) ||
          !D.key("exampleInput") || !D.str(RC.ExampleInput) ||
          !D.endObject())
        return false;
      RC.OpCount = static_cast<unsigned>(OpCount);
      SR.RootCauses.push_back(std::move(RC));
    }
    if (!D.endArray() || !D.endObject())
      return false;
    Out.Spots.push_back(std::move(SR));
  }
  if (!D.endArray())
    return false;
  // Optional improvements section (absent from pre-1.1 writers and from
  // reports no improver pass ran over); absence round-trips to absence.
  bool HasImp = false;
  if (!D.present("improvements", HasImp))
    return false;
  if (HasImp) {
    uint64_t N = 0;
    if (!D.key("improvements") || !D.beginArray(N))
      return false;
    for (uint64_t I = 0; I < N; ++I) {
      ImproveRecord IR;
      if (!D.element() || !D.beginObject() || !D.key("pc") || !D.u32(IR.PC) ||
          !decodeImproveOutcome(D, IR) || !D.endObject())
        return false;
      Out.Improvements.push_back(std::move(IR));
    }
    if (!D.endArray())
      return false;
  }
  return D.endObject();
}

// Defined here rather than in Report.cpp so the schema exists exactly
// once, in the traversal above.
std::string Report::renderJson() const {
  wire::JsonEncoder E;
  encodeReportBody(E, *this);
  return E.take();
}

bool herbgrind::parseReport(const JsonValue &V, Report &Out,
                            std::string &Err) {
  wire::JsonDecoder D(V);
  if (!decodeReportBody(D, Out)) {
    Err = D.error();
    return false;
  }
  return true;
}

bool herbgrind::parseReportJson(const std::string &Text, Report &Out,
                                std::string &Err) {
  JsonParseResult R;
  if (!parseJsonText(Text, R, Err))
    return false;
  return parseReport(R.Value, Out, Err);
}

std::string herbgrind::renderReportBinary(const Report &R) {
  wire::BinaryEncoder E(wire::Family::Report, WireFormatMajor,
                        WireFormatMinor);
  encodeReportBody(E, R);
  return E.take();
}

bool herbgrind::parseReportDoc(const std::string &Text, Report &Out,
                               std::string &Err) {
  if (!wire::isBinary(Text))
    return parseReportJson(Text, Out, Err);
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::Report, "report", WireFormatMajor,
                         Err))
    return false;
  if (!decodeReportBody(D, Out)) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "report: trailing bytes after HGB document";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Batch report documents
//===----------------------------------------------------------------------===//

static void encodeBatchBody(wire::Encoder &E,
                            const std::vector<BatchReportEntryRef> &Entries) {
  E.key("benchmarks");
  E.beginArray(Entries.size());
  for (const BatchReportEntryRef &En : Entries) {
    E.beginObject();
    E.key("name");
    E.str(*En.Name);
    E.key("shards");
    E.u64(En.Shards);
    E.key("runs");
    E.u64(En.Runs);
    E.key("report");
    encodeReportBody(E, *En.Rep);
    E.endObject();
  }
  E.endArray();
}

static bool decodeBatchBody(wire::Decoder &D, BatchReportDoc &Out) {
  ScopedCtx C(D, "batch report");
  uint64_t N = 0;
  if (!D.key("benchmarks") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx BC(D, "benchmark entry");
    BatchReportDoc::Entry En;
    if (!D.element() || !D.beginObject() || !D.key("name") ||
        !D.str(En.Name) || !D.key("shards") || !D.u64(En.Shards) ||
        !D.key("runs") || !D.u64(En.Runs))
      return false;
    if (!D.key("report") || !decodeReportBody(D, En.Rep) || !D.endObject())
      return false;
    Out.Benchmarks.push_back(std::move(En));
  }
  return D.endArray();
}

std::string herbgrind::renderBatchReportJson(
    const std::vector<BatchReportEntryRef> &Entries) {
  wire::JsonEncoder E;
  E.beginObject();
  encodeJsonEnvelope(E, "herbgrind-report", WireFormatMajor, WireFormatMinor);
  encodeBatchBody(E, Entries);
  E.endObject();
  return E.take();
}

std::string herbgrind::renderBatchReportBinary(
    const std::vector<BatchReportEntryRef> &Entries) {
  wire::BinaryEncoder E(wire::Family::BatchReport, WireFormatMajor,
                        WireFormatMinor);
  encodeBatchBody(E, Entries);
  return E.take();
}

static std::vector<BatchReportEntryRef>
batchRefs(const BatchReportDoc &Doc) {
  std::vector<BatchReportEntryRef> Entries;
  Entries.reserve(Doc.Benchmarks.size());
  for (const BatchReportDoc::Entry &En : Doc.Benchmarks)
    Entries.push_back({&En.Name, En.Shards, En.Runs, &En.Rep});
  return Entries;
}

std::string herbgrind::renderBatchReportJson(const BatchReportDoc &Doc) {
  return renderBatchReportJson(batchRefs(Doc));
}

std::string herbgrind::renderBatchReportBinary(const BatchReportDoc &Doc) {
  return renderBatchReportBinary(batchRefs(Doc));
}

bool herbgrind::parseBatchReportJson(const std::string &Text,
                                     BatchReportDoc &Out, std::string &Err) {
  JsonParseResult R;
  if (!parseJsonText(Text, R, Err))
    return false;
  if (!R.Value.isObject()) {
    Err = "batch report document is not an object";
    return false;
  }
  wire::JsonDecoder D(R.Value);
  if (!D.beginObject() ||
      !decodeJsonEnvelope(D, "herbgrind-report", WireFormatMajor) ||
      !decodeBatchBody(D, Out) || !D.endObject()) {
    Err = D.error();
    return false;
  }
  return true;
}

bool herbgrind::parseBatchReport(const std::string &Text, BatchReportDoc &Out,
                                 std::string &Err) {
  if (!wire::isBinary(Text))
    return parseBatchReportJson(Text, Out, Err);
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::BatchReport, "herbgrind-report",
                         WireFormatMajor, Err))
    return false;
  if (!decodeBatchBody(D, Out)) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "batch report: trailing bytes after HGB document";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Telemetry documents
//===----------------------------------------------------------------------===//

/// The counters/gauges/timers sections, shared verbatim by the telemetry
/// document and the run-ledger envelope (one schema, two containers).
static void encodeMetricsSnapshot(wire::Encoder &E,
                                  const metrics::Snapshot &S) {
  E.key("counters");
  E.beginArray(S.Counters.size());
  for (const metrics::CounterSample &Cs : S.Counters) {
    E.beginObject();
    E.key("name");
    E.str(Cs.Name);
    E.key("value");
    E.u64(Cs.Value);
    E.endObject();
  }
  E.endArray();
  E.key("gauges");
  E.beginArray(S.Gauges.size());
  for (const metrics::GaugeSample &G : S.Gauges) {
    E.beginObject();
    E.key("name");
    E.str(G.Name);
    E.key("value");
    E.i64(G.Value);
    E.key("max");
    E.i64(G.Max);
    E.endObject();
  }
  E.endArray();
  E.key("timers");
  E.beginArray(S.Timers.size());
  for (const metrics::TimerSample &T : S.Timers) {
    E.beginObject();
    E.key("name");
    E.str(T.Name);
    E.key("count");
    E.u64(T.Count);
    E.key("sumNs");
    E.u64(T.SumNanos);
    E.key("maxNs");
    E.u64(T.MaxNanos);
    E.key("buckets");
    E.beginArray(metrics::TimerBuckets);
    for (unsigned B = 0; B < metrics::TimerBuckets; ++B)
      E.u64(T.Buckets[B]);
    E.endArray();
    E.endObject();
  }
  E.endArray();
}

static bool decodeMetricsSnapshot(wire::Decoder &D, metrics::Snapshot &Out) {
  uint64_t N = 0;
  if (!D.key("counters") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx CC(D, "metrics counter");
    metrics::CounterSample Cs;
    if (!D.element() || !D.beginObject() || !D.key("name") ||
        !D.str(Cs.Name) || !D.key("value") || !D.u64(Cs.Value) ||
        !D.endObject())
      return false;
    Out.Counters.push_back(std::move(Cs));
  }
  if (!D.endArray())
    return false;
  if (!D.key("gauges") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx GC(D, "metrics gauge");
    metrics::GaugeSample G;
    if (!D.element() || !D.beginObject() || !D.key("name") || !D.str(G.Name) ||
        !D.key("value") || !D.i64(G.Value) || !D.key("max") ||
        !D.i64(G.Max) || !D.endObject())
      return false;
    Out.Gauges.push_back(std::move(G));
  }
  if (!D.endArray())
    return false;
  if (!D.key("timers") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx TC(D, "metrics timer");
    metrics::TimerSample T;
    if (!D.element() || !D.beginObject() || !D.key("name") || !D.str(T.Name) ||
        !D.key("count") || !D.u64(T.Count) || !D.key("sumNs") ||
        !D.u64(T.SumNanos) || !D.key("maxNs") || !D.u64(T.MaxNanos))
      return false;
    uint64_t NumBuckets = 0;
    if (!D.key("buckets") || !D.beginArray(NumBuckets))
      return false;
    if (NumBuckets != metrics::TimerBuckets)
      return D.failOver(
          format("metrics timer '%s': expected %u buckets, got %zu",
                 T.Name.c_str(), metrics::TimerBuckets,
                 static_cast<size_t>(NumBuckets)));
    for (unsigned B = 0; B < metrics::TimerBuckets; ++B)
      if (!D.element() || !D.u64(T.Buckets[B]))
        return false;
    if (!D.endArray() || !D.endObject())
      return false;
    Out.Timers.push_back(std::move(T));
  }
  return D.endArray();
}

static void encodeTelemetryBody(wire::Encoder &E, const TelemetryDoc &Doc) {
  // The 1.1 meta block is optional so a doc parsed from a minor-0 writer
  // re-renders its exact bytes (absence round-trips to absence).
  E.present(Doc.HasMeta);
  if (Doc.HasMeta) {
    E.key("meta");
    E.beginObject();
    E.key("host");
    E.str(Doc.Meta.Host);
    E.key("timestamp");
    E.str(Doc.Meta.Timestamp);
    E.key("mergedDocs");
    E.u64(Doc.Meta.MergedDocs);
    E.endObject();
  }
  encodeMetricsSnapshot(E, Doc.Metrics);
  E.key("profile");
  E.beginObject();
  E.key("totalNs");
  E.u64(Doc.ProfileTotalNanos);
  E.key("ops");
  E.beginArray(Doc.Profile.size());
  for (const opprof::OpProfileRow &R : Doc.Profile) {
    E.beginObject();
    E.key("op");
    E.str(opInfo(R.Op).Name);
    E.key("loc");
    encodeSourceLoc(E, R.Loc);
    E.key("executions");
    E.u64(R.Executions);
    E.key("samples");
    E.u64(R.Samples);
    E.key("ns");
    E.u64(R.Nanos);
    E.key("limbAllocs");
    E.u64(R.LimbAllocs);
    E.key("limbHits");
    E.u64(R.LimbHits);
    E.endObject();
  }
  E.endArray();
  E.endObject();
}

/// \p DocMinor is the document's own minor version: a minor-0 binary doc
/// carries no meta presence byte, so the read must be version-gated (the
/// JSON backend resolves presence by name and tolerates either minor).
static bool decodeTelemetryBody(wire::Decoder &D, TelemetryDoc &Out,
                                int DocMinor) {
  ScopedCtx C(D, "telemetry");
  if (DocMinor >= 1) {
    if (!D.present("meta", Out.HasMeta))
      return false;
    if (Out.HasMeta) {
      ScopedCtx MC(D, "telemetry meta");
      if (!D.key("meta") || !D.beginObject() || !D.key("host") ||
          !D.str(Out.Meta.Host) || !D.key("timestamp") ||
          !D.str(Out.Meta.Timestamp) || !D.key("mergedDocs") ||
          !D.u64(Out.Meta.MergedDocs) || !D.endObject())
        return false;
    }
  }
  if (!decodeMetricsSnapshot(D, Out.Metrics))
    return false;
  uint64_t N = 0;
  ScopedCtx PC(D, "telemetry profile");
  if (!D.key("profile") || !D.beginObject() || !D.key("totalNs") ||
      !D.u64(Out.ProfileTotalNanos))
    return false;
  if (!D.key("ops") || !D.beginArray(N))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    ScopedCtx RC(D, "telemetry profile row");
    opprof::OpProfileRow Row;
    std::string OpName;
    if (!D.element() || !D.beginObject() || !D.key("op") || !D.str(OpName))
      return false;
    if (!parseOpcode(OpName, Row.Op))
      return D.failOver(format("telemetry profile row: unknown opcode '%s'",
                               OpName.c_str()));
    if (!D.key("loc") || !decodeSourceLoc(D, Row.Loc))
      return false;
    if (!D.key("executions") || !D.u64(Row.Executions) ||
        !D.key("samples") || !D.u64(Row.Samples) || !D.key("ns") ||
        !D.u64(Row.Nanos) || !D.key("limbAllocs") ||
        !D.u64(Row.LimbAllocs) || !D.key("limbHits") ||
        !D.u64(Row.LimbHits) || !D.endObject())
      return false;
    Out.Profile.push_back(std::move(Row));
  }
  return D.endArray() && D.endObject();
}

std::string herbgrind::renderTelemetryJson(const TelemetryDoc &Doc) {
  wire::JsonEncoder E;
  E.beginObject();
  encodeJsonEnvelope(E, "herbgrind-telemetry", TelemetryFormatMajor,
                     TelemetryFormatMinor);
  encodeTelemetryBody(E, Doc);
  E.endObject();
  return E.take();
}

std::string herbgrind::renderTelemetryBinary(const TelemetryDoc &Doc) {
  wire::BinaryEncoder E(wire::Family::Telemetry, TelemetryFormatMajor,
                        TelemetryFormatMinor);
  encodeTelemetryBody(E, Doc);
  return E.take();
}

bool herbgrind::parseTelemetryJson(const std::string &Text, TelemetryDoc &Out,
                                   std::string &Err) {
  JsonParseResult R;
  if (!parseJsonText(Text, R, Err))
    return false;
  if (!R.Value.isObject()) {
    Err = "telemetry document is not an object";
    return false;
  }
  wire::JsonDecoder D(R.Value);
  int DocMinor = 0;
  if (!D.beginObject() ||
      !decodeJsonEnvelope(D, "herbgrind-telemetry", TelemetryFormatMajor,
                          &DocMinor) ||
      !decodeTelemetryBody(D, Out, DocMinor) || !D.endObject()) {
    Err = D.error();
    return false;
  }
  return true;
}

bool herbgrind::parseTelemetry(const std::string &Text, TelemetryDoc &Out,
                               std::string &Err) {
  if (!wire::isBinary(Text))
    return parseTelemetryJson(Text, Out, Err);
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::Telemetry, "herbgrind-telemetry",
                         TelemetryFormatMajor, Err))
    return false;
  if (!decodeTelemetryBody(D, Out, D.minor())) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "telemetry: trailing bytes after HGB document";
    return false;
  }
  return true;
}

void TelemetryDoc::mergeFrom(const TelemetryDoc &Other) {
  // A doc that never passed through a merge counts as one process.
  auto LeafCount = [](const TelemetryDoc &D) {
    return D.HasMeta && D.Meta.MergedDocs > 0 ? D.Meta.MergedDocs
                                              : uint64_t(1);
  };
  Meta.MergedDocs = LeafCount(*this) + LeafCount(Other);
  HasMeta = true;
  Metrics.mergeFrom(Other.Metrics);
  opprof::mergeOpProfileRows(Profile, Other.Profile);
  opprof::finalizeOpProfile(Profile);
  ProfileTotalNanos += Other.ProfileTotalNanos;
}

bool herbgrind::mergeTelemetry(const std::vector<std::string> &DocTexts,
                               TelemetryDoc &Out, std::string &Err) {
  if (DocTexts.empty()) {
    Err = "no telemetry documents to merge";
    return false;
  }
  Out = TelemetryDoc();
  for (size_t I = 0; I < DocTexts.size(); ++I) {
    TelemetryDoc Doc;
    if (!parseTelemetry(DocTexts[I], Doc, Err)) {
      Err = format("telemetry document %zu: %s", I, Err.c_str());
      return false;
    }
    if (I == 0)
      Out = std::move(Doc);
    else
      Out.mergeFrom(Doc);
  }
  // A single-doc "merge" still marks the result as merged provenance;
  // Host/Timestamp stay empty either way so the result is deterministic
  // given the inputs (callers stamp provenance before writing).
  if (Out.HasMeta && DocTexts.size() == 1)
    Out.Meta.MergedDocs = std::max<uint64_t>(Out.Meta.MergedDocs, 1);
  if (!Out.HasMeta) {
    Out.HasMeta = true;
    Out.Meta.MergedDocs = 1;
  }
  Out.Meta.Host.clear();
  Out.Meta.Timestamp.clear();
  return true;
}

//===----------------------------------------------------------------------===//
// Run-ledger documents
//===----------------------------------------------------------------------===//

static void encodeLedgerBody(wire::Encoder &E, const LedgerEntry &L) {
  E.key("meta");
  E.beginObject();
  E.key("host");
  E.str(L.Host);
  E.key("timestamp");
  E.str(L.Timestamp);
  E.key("timestampNs");
  E.u64(L.TimestampNanos);
  E.key("label");
  E.str(L.Label);
  E.endObject();
  E.key("config");
  E.beginObject();
  E.key("hash");
  E.str(L.ConfigHash);
  E.key("wireFormat");
  E.str(L.WireFormat);
  E.key("tier");
  E.str(L.Tier);
  E.key("jobs");
  E.u64(L.Jobs);
  E.key("samples");
  E.u64(L.Samples);
  E.key("shardSize");
  E.u64(L.ShardSize);
  E.key("batchLanes");
  E.u64(L.BatchLanes);
  E.endObject();
  E.key("stats");
  E.beginObject();
  E.key("benchmarks");
  E.u64(L.Benchmarks);
  E.key("shards");
  E.u64(L.Shards);
  E.key("runs");
  E.u64(L.Runs);
  E.key("analyzedShards");
  E.u64(L.AnalyzedShards);
  E.key("cachedShards");
  E.u64(L.CachedShards);
  E.key("rcacheHits");
  E.u64(L.ResultCacheHits);
  E.key("rcacheMisses");
  E.u64(L.ResultCacheMisses);
  E.key("limbHeapAllocs");
  E.u64(L.LimbHeapAllocs);
  E.key("limbCacheHits");
  E.u64(L.LimbCacheHits);
  E.key("tier0Runs");
  E.u64(L.Tier0Runs);
  E.key("escalatedRuns");
  E.u64(L.EscalatedRuns);
  E.key("poolTasks");
  E.u64(L.PoolTasks);
  E.key("poolSteals");
  E.u64(L.PoolSteals);
  E.key("wallSeconds");
  E.dbl(L.WallSeconds);
  E.endObject();
  encodeMetricsSnapshot(E, L.Metrics);
}

static bool decodeLedgerBody(wire::Decoder &D, LedgerEntry &Out) {
  ScopedCtx C(D, "ledger");
  {
    ScopedCtx MC(D, "ledger meta");
    if (!D.key("meta") || !D.beginObject() || !D.key("host") ||
        !D.str(Out.Host) || !D.key("timestamp") || !D.str(Out.Timestamp) ||
        !D.key("timestampNs") || !D.u64(Out.TimestampNanos) ||
        !D.key("label") || !D.str(Out.Label) || !D.endObject())
      return false;
  }
  {
    ScopedCtx CC(D, "ledger config");
    if (!D.key("config") || !D.beginObject() || !D.key("hash") ||
        !D.str(Out.ConfigHash) || !D.key("wireFormat") ||
        !D.str(Out.WireFormat) || !D.key("tier") || !D.str(Out.Tier) ||
        !D.key("jobs") || !D.u64(Out.Jobs) || !D.key("samples") ||
        !D.u64(Out.Samples) || !D.key("shardSize") || !D.u64(Out.ShardSize) ||
        !D.key("batchLanes") || !D.u64(Out.BatchLanes) || !D.endObject())
      return false;
  }
  {
    ScopedCtx SC(D, "ledger stats");
    if (!D.key("stats") || !D.beginObject() || !D.key("benchmarks") ||
        !D.u64(Out.Benchmarks) || !D.key("shards") || !D.u64(Out.Shards) ||
        !D.key("runs") || !D.u64(Out.Runs) || !D.key("analyzedShards") ||
        !D.u64(Out.AnalyzedShards) || !D.key("cachedShards") ||
        !D.u64(Out.CachedShards) || !D.key("rcacheHits") ||
        !D.u64(Out.ResultCacheHits) || !D.key("rcacheMisses") ||
        !D.u64(Out.ResultCacheMisses) || !D.key("limbHeapAllocs") ||
        !D.u64(Out.LimbHeapAllocs) || !D.key("limbCacheHits") ||
        !D.u64(Out.LimbCacheHits) || !D.key("tier0Runs") ||
        !D.u64(Out.Tier0Runs) || !D.key("escalatedRuns") ||
        !D.u64(Out.EscalatedRuns) || !D.key("poolTasks") ||
        !D.u64(Out.PoolTasks) || !D.key("poolSteals") ||
        !D.u64(Out.PoolSteals) || !D.key("wallSeconds") ||
        !D.dbl(Out.WallSeconds) || !D.endObject())
      return false;
  }
  return decodeMetricsSnapshot(D, Out.Metrics);
}

std::string herbgrind::renderLedgerEntryJson(const LedgerEntry &E) {
  wire::JsonEncoder Enc;
  Enc.beginObject();
  encodeJsonEnvelope(Enc, "herbgrind-ledger", LedgerFormatMajor,
                     LedgerFormatMinor);
  encodeLedgerBody(Enc, E);
  Enc.endObject();
  return Enc.take();
}

std::string herbgrind::renderLedgerEntryBinary(const LedgerEntry &E) {
  wire::BinaryEncoder Enc(wire::Family::Ledger, LedgerFormatMajor,
                          LedgerFormatMinor);
  encodeLedgerBody(Enc, E);
  return Enc.take();
}

std::string herbgrind::renderLedgerEntry(const LedgerEntry &E,
                                         WireEncoding Enc) {
  return Enc == WireEncoding::Binary ? renderLedgerEntryBinary(E)
                                     : renderLedgerEntryJson(E);
}

bool herbgrind::parseLedgerEntry(const std::string &Text, LedgerEntry &Out,
                                 std::string &Err) {
  if (!wire::isBinary(Text)) {
    JsonParseResult R;
    if (!parseJsonText(Text, R, Err))
      return false;
    if (!R.Value.isObject()) {
      Err = "ledger document is not an object";
      return false;
    }
    wire::JsonDecoder D(R.Value);
    if (!D.beginObject() ||
        !decodeJsonEnvelope(D, "herbgrind-ledger", LedgerFormatMajor) ||
        !decodeLedgerBody(D, Out) || !D.endObject()) {
      Err = D.error();
      return false;
    }
    return true;
  }
  wire::BinaryDecoder D(Text);
  if (!checkBinaryHeader(D, wire::Family::Ledger, "herbgrind-ledger",
                         LedgerFormatMajor, Err))
    return false;
  if (!decodeLedgerBody(D, Out)) {
    Err = D.error();
    return false;
  }
  if (!D.atEnd()) {
    Err = "ledger: trailing bytes after HGB document";
    return false;
  }
  return true;
}
