//===- analysis/Serialize.cpp - Result wire format ------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "analysis/Serialize.h"

#include "support/Format.h"

#include <cassert>

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// Small enum/value helpers shared by render and parse
//===----------------------------------------------------------------------===//

const char *herbgrind::spotKindName(SpotKind K) {
  switch (K) {
  case SpotKind::Output:
    return "Output";
  case SpotKind::Comparison:
    return "Compare";
  case SpotKind::Conversion:
    return "Conversion";
  }
  return "?";
}

static bool parseSpotKind(const std::string &Name, SpotKind &Out) {
  for (SpotKind K :
       {SpotKind::Output, SpotKind::Comparison, SpotKind::Conversion})
    if (Name == spotKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

static const char *rangeModeName(RangeMode M) {
  switch (M) {
  case RangeMode::Off:
    return "off";
  case RangeMode::Single:
    return "single";
  case RangeMode::SignSplit:
    return "sign-split";
  }
  return "?";
}

static bool parseRangeMode(const std::string &Name, RangeMode &Out) {
  for (RangeMode M : {RangeMode::Off, RangeMode::Single, RangeMode::SignSplit})
    if (Name == rangeModeName(M)) {
      Out = M;
      return true;
    }
  return false;
}

/// Opcode from its IR mnemonic (the unique "add.f64"-style name).
static bool parseOpcode(const std::string &Name, Opcode &Out) {
  for (unsigned I = 0; I < static_cast<unsigned>(Opcode::NumOpcodes); ++I) {
    Opcode Op = static_cast<Opcode>(I);
    if (Name == opInfo(Op).Name) {
      Out = Op;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Typed field accessors (parse-side)
//===----------------------------------------------------------------------===//

namespace {

/// Fetches a required field of a given JSON kind, accumulating a
/// field-path error message on failure.
struct Fields {
  const JsonValue &Obj;
  std::string &Err;
  const char *Ctx;

  bool fail(const char *Name, const char *What) {
    Err = format("%s: field '%s' %s", Ctx, Name, What);
    return false;
  }

  bool u64(const char *Name, uint64_t &Out) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isNumber())
      return fail(Name, "missing or not a number");
    // strtoull would silently wrap a negative token to a huge count.
    if (!F->Num.empty() && F->Num[0] == '-')
      return fail(Name, "must be a non-negative integer");
    Out = F->asU64();
    return true;
  }

  bool u32(const char *Name, uint32_t &Out) {
    uint64_t V;
    if (!u64(Name, V))
      return false;
    Out = static_cast<uint32_t>(V);
    return true;
  }

  bool i64(const char *Name, int64_t &Out) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isNumber())
      return fail(Name, "missing or not a number");
    Out = F->asI64();
    return true;
  }

  bool dbl(const char *Name, double &Out) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isNumber())
      return fail(Name, "missing or not a number");
    Out = F->asDouble();
    return true;
  }

  bool boolean(const char *Name, bool &Out) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isBool())
      return fail(Name, "missing or not a boolean");
    Out = F->BoolVal;
    return true;
  }

  bool str(const char *Name, std::string &Out) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isString())
      return fail(Name, "missing or not a string");
    Out = F->Str;
    return true;
  }

  const JsonValue *array(const char *Name) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isArray()) {
      fail(Name, "missing or not an array");
      return nullptr;
    }
    return F;
  }

  const JsonValue *object(const char *Name) {
    const JsonValue *F = Obj.field(Name);
    if (!F || !F->isObject()) {
      fail(Name, "missing or not an object");
      return nullptr;
    }
    return F;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Source locations
//===----------------------------------------------------------------------===//

std::string herbgrind::renderSourceLocJson(const SourceLoc &Loc) {
  return format("{\"file\":\"%s\",\"line\":%d,\"func\":\"%s\"}",
                jsonEscape(Loc.File).c_str(), Loc.Line,
                jsonEscape(Loc.Function).c_str());
}

static bool parseSourceLoc(const JsonValue &V, SourceLoc &Out,
                           std::string &Err) {
  if (!V.isObject()) {
    Err = "loc: not an object";
    return false;
  }
  Fields F{V, Err, "loc"};
  uint64_t Line;
  if (!F.str("file", Out.File) || !F.u64("line", Line) ||
      !F.str("func", Out.Function))
    return false;
  Out.Line = static_cast<int>(Line);
  return true;
}

//===----------------------------------------------------------------------===//
// Running statistics
//===----------------------------------------------------------------------===//

static std::string renderStatJson(const RunningStat &S) {
  return format("{\"count\":%llu,\"sum\":%s,\"max\":%s}",
                static_cast<unsigned long long>(S.count()),
                formatDoubleShortest(S.sum()).c_str(),
                formatDoubleShortest(S.max()).c_str());
}

static bool parseStat(const JsonValue &V, RunningStat &Out, std::string &Err) {
  if (!V.isObject()) {
    Err = "stat: not an object";
    return false;
  }
  Fields F{V, Err, "stat"};
  uint64_t Count;
  double Sum, Max;
  if (!F.u64("count", Count) || !F.dbl("sum", Sum) || !F.dbl("max", Max))
    return false;
  Out = RunningStat::fromParts(Count, Sum, Max);
  return true;
}

//===----------------------------------------------------------------------===//
// Input summaries
//===----------------------------------------------------------------------===//

static bool parseVarSummary(const JsonValue &V, VarSummary &Out,
                            std::string &Err) {
  if (!V.isObject()) {
    Err = "varSummary: not an object";
    return false;
  }
  Fields F{V, Err, "varSummary"};
  if (!F.u64("count", Out.Count) || !F.boolean("sawNaN", Out.SawNaN) ||
      !F.boolean("sawZero", Out.SawZero) || !F.dbl("example", Out.Example))
    return false;
  auto Range = [&](const char *Name, bool &Has, double &Lo,
                   double &Hi) -> bool {
    const JsonValue *R = V.field(Name);
    if (!R)
      return true; // absent range: the flag stays false
    if (!R->isArray() || R->Arr.size() != 2 || !R->Arr[0].isNumber() ||
        !R->Arr[1].isNumber())
      return F.fail(Name, "not a [lo, hi] number pair");
    Has = true;
    Lo = R->Arr[0].asDouble();
    Hi = R->Arr[1].asDouble();
    return true;
  };
  return Range("range", Out.HasRange, Out.Lo, Out.Hi) &&
         Range("neg", Out.HasNeg, Out.NegLo, Out.NegHi) &&
         Range("pos", Out.HasPos, Out.PosLo, Out.PosHi);
}

static std::string renderInputsJson(const InputCharacteristics &C) {
  std::string Out = "[";
  for (size_t I = 0; I < C.Vars.size(); ++I) {
    if (I != 0)
      Out += ",";
    Out += C.Vars[I].renderJson();
  }
  Out += "]";
  return Out;
}

static bool parseInputs(const JsonValue &V, InputCharacteristics &Out,
                        std::string &Err) {
  if (!V.isArray()) {
    Err = "inputs: not an array";
    return false;
  }
  Out.Vars.resize(V.Arr.size());
  for (size_t I = 0; I < V.Arr.size(); ++I)
    if (!parseVarSummary(V.Arr[I], Out.Vars[I], Err))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Symbolic expressions
//===----------------------------------------------------------------------===//

std::string herbgrind::renderSymExprJson(const SymExpr &E) {
  switch (E.Kind) {
  case SymExpr::SEKind::Const:
    return format("{\"const\":%s}", formatDoubleShortest(E.ConstVal).c_str());
  case SymExpr::SEKind::Var:
    return format("{\"var\":%u}", E.VarIdx);
  case SymExpr::SEKind::Op: {
    std::string Out =
        format("{\"op\":\"%s\",\"site\":%u,\"kids\":[", opInfo(E.Op).Name,
               E.Site);
    for (size_t I = 0; I < E.Kids.size(); ++I) {
      if (I != 0)
        Out += ",";
      Out += renderSymExprJson(*E.Kids[I]);
    }
    Out += "]}";
    return Out;
  }
  }
  return "{}";
}

static std::unique_ptr<SymExpr> parseSymExpr(const JsonValue &V,
                                             std::string &Err) {
  if (!V.isObject()) {
    Err = "expr: node is not an object";
    return nullptr;
  }
  if (const JsonValue *C = V.field("const")) {
    if (!C->isNumber()) {
      Err = "expr: 'const' is not a number";
      return nullptr;
    }
    return SymExpr::makeConst(C->asDouble());
  }
  if (const JsonValue *X = V.field("var")) {
    if (!X->isNumber()) {
      Err = "expr: 'var' is not a number";
      return nullptr;
    }
    return SymExpr::makeVar(static_cast<uint32_t>(X->asU64()));
  }
  Fields F{V, Err, "expr"};
  std::string OpName;
  uint32_t Site;
  if (!F.str("op", OpName) || !F.u32("site", Site))
    return nullptr;
  Opcode Op;
  if (!parseOpcode(OpName, Op)) {
    Err = format("expr: unknown opcode '%s'", OpName.c_str());
    return nullptr;
  }
  const JsonValue *Kids = F.array("kids");
  if (!Kids)
    return nullptr;
  std::unique_ptr<SymExpr> Node = SymExpr::makeOp(Op, Site);
  for (const JsonValue &KidVal : Kids->Arr) {
    std::unique_ptr<SymExpr> Kid = parseSymExpr(KidVal, Err);
    if (!Kid)
      return nullptr;
    Node->Kids.push_back(std::move(Kid));
  }
  return Node;
}

//===----------------------------------------------------------------------===//
// Operation and spot records
//===----------------------------------------------------------------------===//

static std::string renderOpRecordJson(uint32_t PC, const OpRecord &Rec) {
  std::string Out = format(
      "{\"pc\":%u,\"op\":\"%s\",\"loc\":%s,\"executions\":%llu,"
      "\"flagged\":%llu,\"compensations\":%llu,\"localError\":%s,"
      "\"maxFlaggedLocalError\":%s,\"nextVarIdx\":%u",
      PC, opInfo(Rec.Op).Name, renderSourceLocJson(Rec.Loc).c_str(),
      static_cast<unsigned long long>(Rec.Executions),
      static_cast<unsigned long long>(Rec.Flagged),
      static_cast<unsigned long long>(Rec.CompensationsDetected),
      renderStatJson(Rec.LocalError).c_str(),
      formatDoubleShortest(Rec.MaxFlaggedLocalError).c_str(), Rec.NextVarIdx);
  if (Rec.Expr)
    Out += ",\"expr\":" + renderSymExprJson(*Rec.Expr);
  Out += ",\"totalInputs\":" + renderInputsJson(Rec.TotalInputs);
  Out += ",\"problematicInputs\":" + renderInputsJson(Rec.ProblematicInputs);
  Out += ",\"exampleProblematic\":[";
  for (size_t I = 0; I < Rec.ExampleProblematic.size(); ++I) {
    if (I != 0)
      Out += ",";
    Out += format(
        "{\"var\":%u,\"value\":%s}", Rec.ExampleProblematic[I].Idx,
        formatDoubleShortest(Rec.ExampleProblematic[I].Value).c_str());
  }
  Out += "]}";
  return Out;
}

static bool parseOpRecord(const JsonValue &V, uint32_t &PC, OpRecord &Rec,
                          std::string &Err) {
  if (!V.isObject()) {
    Err = "op record: not an object";
    return false;
  }
  Fields F{V, Err, "op record"};
  std::string OpName;
  if (!F.u32("pc", PC) || !F.str("op", OpName) ||
      !F.u64("executions", Rec.Executions) || !F.u64("flagged", Rec.Flagged) ||
      !F.u64("compensations", Rec.CompensationsDetected) ||
      !F.dbl("maxFlaggedLocalError", Rec.MaxFlaggedLocalError) ||
      !F.u32("nextVarIdx", Rec.NextVarIdx))
    return false;
  if (!parseOpcode(OpName, Rec.Op)) {
    Err = format("op record: unknown opcode '%s'", OpName.c_str());
    return false;
  }
  const JsonValue *Loc = F.object("loc");
  if (!Loc || !parseSourceLoc(*Loc, Rec.Loc, Err))
    return false;
  const JsonValue *Stat = F.object("localError");
  if (!Stat || !parseStat(*Stat, Rec.LocalError, Err))
    return false;
  if (const JsonValue *E = V.field("expr")) {
    Rec.Expr = parseSymExpr(*E, Err);
    if (!Rec.Expr)
      return false;
  }
  const JsonValue *Total = V.field("totalInputs");
  const JsonValue *Prob = V.field("problematicInputs");
  if (!Total || !parseInputs(*Total, Rec.TotalInputs, Err) || !Prob ||
      !parseInputs(*Prob, Rec.ProblematicInputs, Err)) {
    if (Err.empty())
      Err = "op record: missing input summaries";
    return false;
  }
  const JsonValue *Ex = F.array("exampleProblematic");
  if (!Ex)
    return false;
  for (const JsonValue &B : Ex->Arr) {
    if (!B.isObject()) {
      Err = "op record: example binding is not an object";
      return false;
    }
    Fields BF{B, Err, "example binding"};
    VarBinding Binding{0, 0.0};
    if (!BF.u32("var", Binding.Idx) || !BF.dbl("value", Binding.Value))
      return false;
    Rec.ExampleProblematic.push_back(Binding);
  }
  return true;
}

static std::string renderSpotRecordJson(uint32_t PC, const SpotRecord &Spot) {
  std::string Out = format(
      "{\"pc\":%u,\"kind\":\"%s\",\"loc\":%s,\"executions\":%llu,"
      "\"erroneous\":%llu,\"errorBits\":%s,\"influencingOps\":[",
      PC, spotKindName(Spot.Kind), renderSourceLocJson(Spot.Loc).c_str(),
      static_cast<unsigned long long>(Spot.Executions),
      static_cast<unsigned long long>(Spot.Erroneous),
      renderStatJson(Spot.ErrorBits).c_str());
  bool First = true;
  for (uint32_t Op : Spot.InfluencingOps) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("%u", Op);
  }
  Out += "]}";
  return Out;
}

static bool parseSpotRecord(const JsonValue &V, uint32_t &PC, SpotRecord &Spot,
                            std::string &Err) {
  if (!V.isObject()) {
    Err = "spot record: not an object";
    return false;
  }
  Fields F{V, Err, "spot record"};
  std::string KindName;
  if (!F.u32("pc", PC) || !F.str("kind", KindName) ||
      !F.u64("executions", Spot.Executions) ||
      !F.u64("erroneous", Spot.Erroneous))
    return false;
  if (!parseSpotKind(KindName, Spot.Kind)) {
    Err = format("spot record: unknown kind '%s'", KindName.c_str());
    return false;
  }
  const JsonValue *Loc = F.object("loc");
  if (!Loc || !parseSourceLoc(*Loc, Spot.Loc, Err))
    return false;
  const JsonValue *Stat = F.object("errorBits");
  if (!Stat || !parseStat(*Stat, Spot.ErrorBits, Err))
    return false;
  const JsonValue *Ops = F.array("influencingOps");
  if (!Ops)
    return false;
  for (const JsonValue &Op : Ops->Arr) {
    if (!Op.isNumber()) {
      Err = "spot record: influencing op is not a number";
      return false;
    }
    Spot.InfluencingOps.insert(static_cast<uint32_t>(Op.asU64()));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Analysis results
//===----------------------------------------------------------------------===//

std::string herbgrind::renderAnalysisResultJson(const AnalysisResult &R) {
  std::string Out = format("{\"ranges\":\"%s\",\"equivDepth\":%u,\"ops\":[",
                           rangeModeName(R.Ranges), R.EquivDepth);
  bool First = true;
  for (const auto &[PC, Rec] : R.Ops) {
    if (!First)
      Out += ",";
    First = false;
    Out += renderOpRecordJson(PC, Rec);
  }
  Out += "],\"spots\":[";
  First = true;
  for (const auto &[PC, Spot] : R.Spots) {
    if (!First)
      Out += ",";
    First = false;
    Out += renderSpotRecordJson(PC, Spot);
  }
  Out += "]}";
  return Out;
}

bool herbgrind::parseAnalysisResultJson(const JsonValue &V, AnalysisResult &Out,
                                        std::string &Err) {
  if (!V.isObject()) {
    Err = "result: not an object";
    return false;
  }
  Fields F{V, Err, "result"};
  std::string RangesName;
  if (!F.str("ranges", RangesName) || !F.u32("equivDepth", Out.EquivDepth))
    return false;
  if (!parseRangeMode(RangesName, Out.Ranges)) {
    Err = format("result: unknown range mode '%s'", RangesName.c_str());
    return false;
  }
  const JsonValue *Ops = F.array("ops");
  if (!Ops)
    return false;
  for (const JsonValue &RecVal : Ops->Arr) {
    uint32_t PC;
    OpRecord Rec;
    if (!parseOpRecord(RecVal, PC, Rec, Err))
      return false;
    if (!Out.Ops.emplace(PC, std::move(Rec)).second) {
      Err = format("result: duplicate op record for pc %u", PC);
      return false;
    }
  }
  const JsonValue *Spots = F.array("spots");
  if (!Spots)
    return false;
  for (const JsonValue &SpotVal : Spots->Arr) {
    uint32_t PC;
    SpotRecord Spot;
    if (!parseSpotRecord(SpotVal, PC, Spot, Err))
      return false;
    if (!Out.Spots.emplace(PC, std::move(Spot)).second) {
      Err = format("result: duplicate spot record for pc %u", PC);
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Shard documents
//===----------------------------------------------------------------------===//

/// Checks a document's {"format","version"} envelope: the tag must match
/// and the major version must equal \p ExpectedMajor (the report wire
/// format and the telemetry document version independently). Minor
/// versions are additive, so any minor of a known major is accepted.
static bool checkEnvelope(const JsonValue &V, const char *ExpectedFormat,
                          int ExpectedMajor, std::string &Err) {
  const JsonValue *Format = V.field("format");
  if (!Format || !Format->isString() || Format->Str != ExpectedFormat) {
    Err = format("document is not a %s file (bad or missing 'format')",
                 ExpectedFormat);
    return false;
  }
  const JsonValue *Version = V.field("version");
  if (!Version || !Version->isObject()) {
    Err = "missing 'version' object";
    return false;
  }
  const JsonValue *Major = Version->field("major");
  if (!Major || !Major->isNumber()) {
    Err = "missing 'version.major'";
    return false;
  }
  if (Major->asI64() != ExpectedMajor) {
    Err = format("unsupported %s major version %lld (this reader "
                 "understands %d)",
                 ExpectedFormat, static_cast<long long>(Major->asI64()),
                 ExpectedMajor);
    return false;
  }
  return true;
}

std::string herbgrind::renderShardJson(const std::string &ConfigHash,
                                       const std::string &Benchmark,
                                       uint64_t BenchIndex,
                                       uint64_t ShardIndex, uint64_t RunBegin,
                                       uint64_t RunEnd,
                                       const AnalysisResult &Result) {
  return format(
      "{\"format\":\"herbgrind-shard\","
      "\"version\":{\"major\":%d,\"minor\":%d},"
      "\"configHash\":\"%s\",\"benchmark\":\"%s\",\"benchIndex\":%llu,"
      "\"shardIndex\":%llu,\"runBegin\":%llu,\"runEnd\":%llu,"
      "\"result\":%s}",
      WireFormatMajor, WireFormatMinor, jsonEscape(ConfigHash).c_str(),
      jsonEscape(Benchmark).c_str(),
      static_cast<unsigned long long>(BenchIndex),
      static_cast<unsigned long long>(ShardIndex),
      static_cast<unsigned long long>(RunBegin),
      static_cast<unsigned long long>(RunEnd),
      renderAnalysisResultJson(Result).c_str());
}

std::string herbgrind::renderShardJson(const ShardDoc &Doc) {
  return renderShardJson(Doc.ConfigHash, Doc.Benchmark, Doc.BenchIndex,
                         Doc.ShardIndex, Doc.RunBegin, Doc.RunEnd, Doc.Result);
}

bool herbgrind::parseShardJson(const std::string &Text, ShardDoc &Out,
                               std::string &Err) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  if (!R.Value.isObject()) {
    Err = "shard document is not an object";
    return false;
  }
  if (!checkEnvelope(R.Value, "herbgrind-shard", WireFormatMajor, Err))
    return false;
  Fields F{R.Value, Err, "shard"};
  if (!F.str("configHash", Out.ConfigHash) ||
      !F.str("benchmark", Out.Benchmark) ||
      !F.u64("benchIndex", Out.BenchIndex) ||
      !F.u64("shardIndex", Out.ShardIndex) ||
      !F.u64("runBegin", Out.RunBegin) || !F.u64("runEnd", Out.RunEnd))
    return false;
  if (Out.RunEnd < Out.RunBegin) {
    Err = format("shard: runEnd (%llu) precedes runBegin (%llu)",
                 static_cast<unsigned long long>(Out.RunEnd),
                 static_cast<unsigned long long>(Out.RunBegin));
    return false;
  }
  const JsonValue *Result = F.object("result");
  return Result && parseAnalysisResultJson(*Result, Out.Result, Err);
}

//===----------------------------------------------------------------------===//
// Improver records and the improve cache document
//===----------------------------------------------------------------------===//

std::string herbgrind::renderImproveOutcomeJson(const ImproveRecord &R) {
  return format("\"original\":\"%s\",\"rewritten\":\"%s\","
                "\"errorBefore\":%s,\"errorAfter\":%s,"
                "\"significant\":%s,\"improved\":%s",
                jsonEscape(R.Original).c_str(),
                jsonEscape(R.Rewritten).c_str(),
                formatDoubleShortest(R.ErrorBefore).c_str(),
                formatDoubleShortest(R.ErrorAfter).c_str(),
                R.HadSignificantError ? "true" : "false",
                R.Improved ? "true" : "false");
}

static bool parseImproveOutcome(const JsonValue &V, ImproveRecord &Out,
                                std::string &Err) {
  Fields F{V, Err, "improve record"};
  return F.str("original", Out.Original) &&
         F.str("rewritten", Out.Rewritten) &&
         F.dbl("errorBefore", Out.ErrorBefore) &&
         F.dbl("errorAfter", Out.ErrorAfter) &&
         F.boolean("significant", Out.HadSignificantError) &&
         F.boolean("improved", Out.Improved);
}

std::string herbgrind::renderImproveDocJson(const ImproveDoc &Doc) {
  return format("{\"format\":\"herbgrind-improve\","
                "\"version\":{\"major\":%d,\"minor\":%d},"
                "\"configHash\":\"%s\",\"improveHash\":\"%s\","
                "\"expr\":\"%s\",\"specs\":\"%s\",\"record\":{%s}}",
                WireFormatMajor, WireFormatMinor,
                jsonEscape(Doc.ConfigHash).c_str(),
                jsonEscape(Doc.ImproveHash).c_str(),
                jsonEscape(Doc.ExprIdentity).c_str(),
                jsonEscape(Doc.SpecIdentity).c_str(),
                renderImproveOutcomeJson(Doc.Record).c_str());
}

bool herbgrind::parseImproveDocJson(const std::string &Text, ImproveDoc &Out,
                                    std::string &Err) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  if (!R.Value.isObject()) {
    Err = "improve document is not an object";
    return false;
  }
  if (!checkEnvelope(R.Value, "herbgrind-improve", WireFormatMajor, Err))
    return false;
  Fields F{R.Value, Err, "improve"};
  if (!F.str("configHash", Out.ConfigHash) ||
      !F.str("improveHash", Out.ImproveHash) ||
      !F.str("expr", Out.ExprIdentity) || !F.str("specs", Out.SpecIdentity))
    return false;
  const JsonValue *Rec = F.object("record");
  if (!Rec || !parseImproveOutcome(*Rec, Out.Record, Err))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Presentation-level reports
//===----------------------------------------------------------------------===//

bool herbgrind::parseReport(const JsonValue &V, Report &Out, std::string &Err) {
  if (!V.isObject()) {
    Err = "report: not an object";
    return false;
  }
  Fields F{V, Err, "report"};
  const JsonValue *Spots = F.array("spots");
  if (!Spots)
    return false;
  for (const JsonValue &SpotVal : Spots->Arr) {
    if (!SpotVal.isObject()) {
      Err = "report: spot is not an object";
      return false;
    }
    Fields SF{SpotVal, Err, "report spot"};
    SpotReport SR;
    std::string KindName;
    if (!SF.str("kind", KindName) || !SF.u32("pc", SR.PC) ||
        !SF.u64("executions", SR.Executions) ||
        !SF.u64("erroneous", SR.Erroneous) ||
        !SF.dbl("maxErrorBits", SR.MaxErrorBits))
      return false;
    if (!parseSpotKind(KindName, SR.Kind)) {
      Err = format("report: unknown spot kind '%s'", KindName.c_str());
      return false;
    }
    const JsonValue *Loc = SF.object("loc");
    if (!Loc || !parseSourceLoc(*Loc, SR.Loc, Err))
      return false;
    const JsonValue *Causes = SF.array("rootCauses");
    if (!Causes)
      return false;
    for (const JsonValue &CauseVal : Causes->Arr) {
      if (!CauseVal.isObject()) {
        Err = "report: root cause is not an object";
        return false;
      }
      Fields CF{CauseVal, Err, "root cause"};
      RootCauseReport RC;
      if (!CF.u32("pc", RC.PC) || !CF.str("fpcore", RC.FPCore) ||
          !CF.str("body", RC.Body) || !CF.u32("numVars", RC.NumVars) ||
          !CF.u64("flagged", RC.Flagged) ||
          !CF.dbl("maxLocalError", RC.MaxLocalError) ||
          !CF.dbl("avgLocalError", RC.AvgLocalError) ||
          !CF.str("exampleInput", RC.ExampleInput))
        return false;
      uint64_t OpCount;
      if (!CF.u64("opCount", OpCount))
        return false;
      RC.OpCount = static_cast<unsigned>(OpCount);
      const JsonValue *CLoc = CF.object("loc");
      if (!CLoc || !parseSourceLoc(*CLoc, RC.Loc, Err))
        return false;
      SR.RootCauses.push_back(std::move(RC));
    }
    Out.Spots.push_back(std::move(SR));
  }
  // Optional improvements section (absent from pre-1.1 writers and from
  // reports no improver pass ran over); absence round-trips to absence.
  if (const JsonValue *Imp = V.field("improvements")) {
    if (!Imp->isArray()) {
      Err = "report: 'improvements' is not an array";
      return false;
    }
    for (const JsonValue &RecVal : Imp->Arr) {
      if (!RecVal.isObject()) {
        Err = "report: improvement is not an object";
        return false;
      }
      Fields IF{RecVal, Err, "improve record"};
      ImproveRecord IR;
      if (!IF.u32("pc", IR.PC) || !parseImproveOutcome(RecVal, IR, Err))
        return false;
      Out.Improvements.push_back(std::move(IR));
    }
  }
  return true;
}

bool herbgrind::parseReportJson(const std::string &Text, Report &Out,
                                std::string &Err) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  return parseReport(R.Value, Out, Err);
}

bool herbgrind::parseBatchReportJson(const std::string &Text,
                                     BatchReportDoc &Out, std::string &Err) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  if (!R.Value.isObject()) {
    Err = "batch report document is not an object";
    return false;
  }
  if (!checkEnvelope(R.Value, "herbgrind-report", WireFormatMajor, Err))
    return false;
  Fields F{R.Value, Err, "batch report"};
  const JsonValue *Benchmarks = F.array("benchmarks");
  if (!Benchmarks)
    return false;
  for (const JsonValue &BenchVal : Benchmarks->Arr) {
    if (!BenchVal.isObject()) {
      Err = "batch report: benchmark entry is not an object";
      return false;
    }
    Fields BF{BenchVal, Err, "benchmark entry"};
    BatchReportDoc::Entry E;
    if (!BF.str("name", E.Name) || !BF.u64("shards", E.Shards) ||
        !BF.u64("runs", E.Runs))
      return false;
    const JsonValue *Rep = BF.object("report");
    if (!Rep || !parseReport(*Rep, E.Rep, Err))
      return false;
    Out.Benchmarks.push_back(std::move(E));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Telemetry documents
//===----------------------------------------------------------------------===//

std::string herbgrind::renderTelemetryJson(const TelemetryDoc &Doc) {
  std::string Out;
  Out.reserve(1024);
  Out += format("{\"format\":\"herbgrind-telemetry\","
                "\"version\":{\"major\":%d,\"minor\":%d},",
                TelemetryFormatMajor, TelemetryFormatMinor);

  Out += "\"counters\":[";
  bool First = true;
  for (const metrics::CounterSample &C : Doc.Metrics.Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"name\":\"%s\",\"value\":%llu}",
                  jsonEscape(C.Name).c_str(),
                  static_cast<unsigned long long>(C.Value));
  }
  Out += "],\"gauges\":[";
  First = true;
  for (const metrics::GaugeSample &G : Doc.Metrics.Gauges) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"name\":\"%s\",\"value\":%lld,\"max\":%lld}",
                  jsonEscape(G.Name).c_str(), static_cast<long long>(G.Value),
                  static_cast<long long>(G.Max));
  }
  Out += "],\"timers\":[";
  First = true;
  for (const metrics::TimerSample &T : Doc.Metrics.Timers) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"name\":\"%s\",\"count\":%llu,\"sumNs\":%llu,"
                  "\"maxNs\":%llu,\"buckets\":[",
                  jsonEscape(T.Name).c_str(),
                  static_cast<unsigned long long>(T.Count),
                  static_cast<unsigned long long>(T.SumNanos),
                  static_cast<unsigned long long>(T.MaxNanos));
    for (unsigned B = 0; B < metrics::TimerBuckets; ++B)
      Out += format(B ? ",%llu" : "%llu",
                    static_cast<unsigned long long>(T.Buckets[B]));
    Out += "]}";
  }
  Out += format("],\"profile\":{\"totalNs\":%llu,\"ops\":[",
                static_cast<unsigned long long>(Doc.ProfileTotalNanos));
  First = true;
  for (const opprof::OpProfileRow &R : Doc.Profile) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"op\":\"%s\",\"loc\":%s,\"executions\":%llu,"
                  "\"samples\":%llu,\"ns\":%llu,\"limbAllocs\":%llu,"
                  "\"limbHits\":%llu}",
                  opInfo(R.Op).Name, renderSourceLocJson(R.Loc).c_str(),
                  static_cast<unsigned long long>(R.Executions),
                  static_cast<unsigned long long>(R.Samples),
                  static_cast<unsigned long long>(R.Nanos),
                  static_cast<unsigned long long>(R.LimbAllocs),
                  static_cast<unsigned long long>(R.LimbHits));
  }
  Out += "]}}";
  return Out;
}

bool herbgrind::parseTelemetryJson(const std::string &Text, TelemetryDoc &Out,
                                   std::string &Err) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    Err = format("JSON parse error at offset %zu: %s", R.ErrorOffset,
                 R.Error.c_str());
    return false;
  }
  if (!R.Value.isObject()) {
    Err = "telemetry document is not an object";
    return false;
  }
  if (!checkEnvelope(R.Value, "herbgrind-telemetry", TelemetryFormatMajor,
                     Err))
    return false;
  Fields F{R.Value, Err, "telemetry"};

  const JsonValue *Counters = F.array("counters");
  if (!Counters)
    return false;
  for (const JsonValue &CV : Counters->Arr) {
    if (!CV.isObject()) {
      Err = "telemetry: counter entry is not an object";
      return false;
    }
    Fields CF{CV, Err, "telemetry counter"};
    metrics::CounterSample C;
    if (!CF.str("name", C.Name) || !CF.u64("value", C.Value))
      return false;
    Out.Metrics.Counters.push_back(std::move(C));
  }

  const JsonValue *Gauges = F.array("gauges");
  if (!Gauges)
    return false;
  for (const JsonValue &GV : Gauges->Arr) {
    if (!GV.isObject()) {
      Err = "telemetry: gauge entry is not an object";
      return false;
    }
    Fields GF{GV, Err, "telemetry gauge"};
    metrics::GaugeSample G;
    if (!GF.str("name", G.Name) || !GF.i64("value", G.Value) ||
        !GF.i64("max", G.Max))
      return false;
    Out.Metrics.Gauges.push_back(std::move(G));
  }

  const JsonValue *Timers = F.array("timers");
  if (!Timers)
    return false;
  for (const JsonValue &TV : Timers->Arr) {
    if (!TV.isObject()) {
      Err = "telemetry: timer entry is not an object";
      return false;
    }
    Fields TF{TV, Err, "telemetry timer"};
    metrics::TimerSample T;
    if (!TF.str("name", T.Name) || !TF.u64("count", T.Count) ||
        !TF.u64("sumNs", T.SumNanos) || !TF.u64("maxNs", T.MaxNanos))
      return false;
    const JsonValue *Buckets = TF.array("buckets");
    if (!Buckets)
      return false;
    if (Buckets->Arr.size() != metrics::TimerBuckets) {
      Err = format("telemetry timer '%s': expected %u buckets, got %zu",
                   T.Name.c_str(), metrics::TimerBuckets,
                   Buckets->Arr.size());
      return false;
    }
    for (unsigned B = 0; B < metrics::TimerBuckets; ++B) {
      if (!Buckets->Arr[B].isNumber()) {
        Err = "telemetry timer: bucket is not a number";
        return false;
      }
      T.Buckets[B] = Buckets->Arr[B].asU64();
    }
    Out.Metrics.Timers.push_back(std::move(T));
  }

  const JsonValue *Profile = F.object("profile");
  if (!Profile)
    return false;
  Fields PF{*Profile, Err, "telemetry profile"};
  if (!PF.u64("totalNs", Out.ProfileTotalNanos))
    return false;
  const JsonValue *Rows = PF.array("ops");
  if (!Rows)
    return false;
  for (const JsonValue &RV : Rows->Arr) {
    if (!RV.isObject()) {
      Err = "telemetry: profile row is not an object";
      return false;
    }
    Fields RF{RV, Err, "telemetry profile row"};
    opprof::OpProfileRow Row;
    std::string OpName;
    if (!RF.str("op", OpName))
      return false;
    if (!parseOpcode(OpName, Row.Op)) {
      Err = format("telemetry profile row: unknown opcode '%s'",
                   OpName.c_str());
      return false;
    }
    const JsonValue *Loc = RF.object("loc");
    if (!Loc || !parseSourceLoc(*Loc, Row.Loc, Err))
      return false;
    if (!RF.u64("executions", Row.Executions) ||
        !RF.u64("samples", Row.Samples) || !RF.u64("ns", Row.Nanos) ||
        !RF.u64("limbAllocs", Row.LimbAllocs) ||
        !RF.u64("limbHits", Row.LimbHits))
      return false;
    Out.Profile.push_back(std::move(Row));
  }
  return true;
}
