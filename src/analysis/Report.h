//===- analysis/Report.h - Paper-style root cause reports -------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the analysis results in the paper's output format: one block
/// per erroneous spot, listing the FPCore'd symbolic expressions of the
/// influencing candidate root causes with their input preconditions and an
/// example problematic input (Section 3's sample output).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ANALYSIS_REPORT_H
#define HERBGRIND_ANALYSIS_REPORT_H

#include "analysis/Analysis.h"

#include <string>

namespace herbgrind {

/// One candidate root cause ready for presentation or for feeding to the
/// improvement tool.
struct RootCauseReport {
  uint32_t PC = 0;            ///< The candidate operation's pc.
  SourceLoc Loc;              ///< Where the operation came from.
  std::string FPCore;         ///< Full "(FPCore (vars) :pre ... body)" text.
  std::string Body;           ///< Just the expression body.
  uint32_t NumVars = 0;       ///< Distinct variables in the expression.
  unsigned OpCount = 0;       ///< Operation nodes in the expression.
  uint64_t Flagged = 0;       ///< Rounds with local error above Tl.
  double MaxLocalError = 0.0; ///< Worst local error observed, in bits.
  double AvgLocalError = 0.0; ///< Mean local error across executions.
  std::string ExampleInput;   ///< "(v0, v1, ...)" of a problematic round.
};

/// One batch-improver outcome for a candidate root cause: the Section 8.1
/// judgment ("does Herbie actually fix what Herbgrind blamed?") made
/// corpus-wide. Produced by improve::batchImprove, attached to the report
/// it ran over, and carried through the versioned wire format (the
/// "improvements" section, added in wire format 1.1).
struct ImproveRecord {
  uint32_t PC = 0;          ///< Root-cause operation pc (record identity).
  std::string Original;     ///< Expression body fed to the improver.
  std::string Rewritten;    ///< Most accurate rewrite found ("" when none).
  double ErrorBefore = 0.0; ///< Mean bits of error, original expression.
  double ErrorAfter = 0.0;  ///< Mean bits of error, best version found.
  bool HadSignificantError = false; ///< Above the paper's > 5 bits bar.
  bool Improved = false;    ///< Gain reached the improver's threshold.
};

/// One erroneous spot with its root causes.
struct SpotReport {
  uint32_t PC = 0;                 ///< The spot's pc.
  SpotKind Kind = SpotKind::Output; ///< Output, comparison, or conversion.
  SourceLoc Loc;                   ///< Where the spot came from.
  uint64_t Executions = 0;         ///< Times the spot executed.
  uint64_t Erroneous = 0;          ///< Times it was observably wrong.
  double MaxErrorBits = 0.0;       ///< Worst output error, in bits.
  std::vector<RootCauseReport> RootCauses; ///< Most-flagged first.
};

/// The full report.
struct Report {
  std::vector<SpotReport> Spots;

  /// Batch-improver outcomes for this report's root causes, ascending by
  /// pc. Empty unless improve::batchImprove ran over the report; an empty
  /// vector renders exactly as the pre-1.1 format did, so reports without
  /// an improver pass stay byte-identical to older writers'.
  std::vector<ImproveRecord> Improvements;

  /// Paper-style rendering.
  std::string render() const;

  /// Deterministic JSON rendering (machine-readable batch output; no
  /// timings or other nondeterminism, so equal analyses render to equal
  /// bytes). The format is specified field-by-field in
  /// docs/REPORT_SCHEMA.md and read back by parseReportJson
  /// (analysis/Serialize.h): parse(renderJson()) re-renders to the same
  /// bytes.
  std::string renderJson() const;

  /// All distinct root causes across spots (deduplicated by pc).
  std::vector<RootCauseReport> allRootCauses() const;

  /// Folds another report in at the presentation level: spots for the same
  /// (pc, location) combine their counters and keep each root cause's
  /// strongest version; other spots append. Improver records append for
  /// (pc, expression) pairs this report has none for -- pc spaces are
  /// per-program, so unrelated expressions sharing a pc both survive --
  /// keep the strongest outcome on a full-key collision, and the merged
  /// list re-sorts by pc. This is the aggregation used
  /// for corpus-wide summaries over per-benchmark reports. For shards of
  /// one program prefer merging `AnalysisResult`s and rebuilding -- that
  /// path anti-unifies the underlying expressions and is exact.
  void mergeFrom(const Report &Other);
};

/// Builds the FPCore text for a single operation record.
std::string fpcoreForRecord(const OpRecord &Rec, RangeMode Ranges);

/// Extracts the report from a finished analysis.
Report buildReport(const Herbgrind &Analysis);

/// Builds the report from a (possibly merged) record snapshot.
Report buildReport(const AnalysisResult &Result);

} // namespace herbgrind

#endif // HERBGRIND_ANALYSIS_REPORT_H
