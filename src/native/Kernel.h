//===- native/Kernel.h - Native workloads for the batch engine --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registration hook that plugs native C++ workloads into the batch
/// engine: a Kernel names a function over native::Real values plus the
/// input ranges to sample it on, and engine::Engine sweeps it exactly like
/// an FPCore benchmark -- deterministic sharding, `--jobs` byte-identical
/// merging, ResultCache persistence, and `--improve` all apply unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_NATIVE_KERNEL_H
#define HERBGRIND_NATIVE_KERNEL_H

#include <functional>
#include <string>
#include <vector>

namespace herbgrind {
namespace native {

class Context;

/// One registered native workload.
struct Kernel {
  /// A sampling interval for one input (the fpcore::VarRange analogue;
  /// inputs are drawn ordinal-uniformly like every other benchmark's).
  struct InputRange {
    double Lo = -1e9;
    double Hi = 1e9;
  };

  /// Presentation name (report headings, CLI output).
  std::string Name;

  /// Stable cache identity. An FPCore benchmark's identity is its printed
  /// program text; C++ code cannot be printed, so the kernel author owns
  /// this string and MUST change it whenever the kernel's math changes,
  /// or ResultCache will serve stale shard results. Empty derives an
  /// identity from Name and the input ranges (fine until the body is
  /// edited -- set it explicitly for anything cached across commits).
  std::string Identity;

  /// Per-input sampling ranges; the size is the kernel's arity.
  std::vector<InputRange> Inputs;

  /// The workload: reads its sampled input tuple (also bound on the
  /// context, so Context::input(i) / Real::input(i) work), computes on
  /// Real values, and marks results with Context::output. The engine may
  /// invoke Fn concurrently from several workers -- different shards of
  /// the SAME kernel included (work stealing rebalances a benchmark's
  /// shards) -- each call with its own Context; Fn must not touch
  /// mutable state outside the Context it is handed, or `--jobs` output
  /// turns nondeterministic.
  std::function<void(Context &, const double *Inputs, size_t N)> Fn;

  /// The effective cache identity ("native:" prefixed so it can never
  /// collide with FPCore program text).
  std::string identity() const;
};

/// The bundled demo kernels (the native counterpart of fpcore::corpus()):
/// small real-C++ numerics with known root causes, used by the CLI's
/// `--native` sweep, the tests, and the scaling bench.
const std::vector<Kernel> &demoKernels();

} // namespace native
} // namespace herbgrind

#endif // HERBGRIND_NATIVE_KERNEL_H
