//===- native/Kernel.cpp - Native workloads for the batch engine ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "native/Kernel.h"

#include "native/Context.h"
#include "support/Format.h"

using namespace herbgrind;
using namespace herbgrind::native;

std::string Kernel::identity() const {
  if (!Identity.empty())
    return "native:" + Identity;
  std::string Id = "native:" + Name;
  for (const InputRange &R : Inputs)
    Id += format("|[%s,%s]", formatDoubleShortest(R.Lo).c_str(),
                 formatDoubleShortest(R.Hi).c_str());
  return Id;
}

//===----------------------------------------------------------------------===//
// Demo kernels
//===----------------------------------------------------------------------===//
// Ordinary C++ numerics written against native::Real -- each would read
// identically with `double` -- with HG_LOC marking the lines the analysis
// should blame individually.

namespace {

/// (x + 1) - x: the canonical catastrophic cancellation (the quickstart
/// bug), now as plain C++ instead of hand-built IR.
void cancelKernel(Context &C, const double *In, size_t N) {
  (void)In;
  (void)N;
  Real X = C.input(0);
  HG_LOC(C);
  Real Sum = X + 1.0;
  HG_LOC(C);
  Real Diff = Sum - X;
  HG_LOC(C);
  C.output(Diff);
}

/// The quadratic formula's smaller root (-b + sqrt(b^2 - 4ac)) / 2a on a
/// stiff regime (b^2 >> 4ac): sqrt(b^2 - 4ac) lands next to b and the
/// addition cancels catastrophically -- the textbook case Herbie rewrites
/// as 2c / (-b - sqrt(b^2 - 4ac)).
void quadraticKernel(Context &C, const double *In, size_t N) {
  (void)In;
  (void)N;
  Real A = C.input(0), B = C.input(1), Cc = C.input(2);
  HG_LOC(C);
  Real Disc = B * B - 4.0 * A * Cc;
  HG_LOC(C);
  Real Root = (-B + sqrt(Disc)) / (2.0 * A);
  HG_LOC(C);
  C.output(Root);
}

/// A "run for X seconds" accumulation loop stepping by an unrepresentable
/// 0.1 (the Patriot-bug mechanism): the comparison spot diverges when the
/// drifted accumulator crosses the bound a step early or late, and the
/// loop demonstrates dynamic executions merging into one static record.
void stepLoopKernel(Context &C, const double *In, size_t N) {
  (void)In;
  (void)N;
  Real Bound = C.input(0);
  Real T = 0.0;
  Real Steps = 0.0;
  // A loop condition is evaluated under whatever location the body's tail
  // left current; the for-header idiom re-stamps it each trip so the
  // comparison spot keeps one static identity.
  for (HG_LOC(C); T < Bound; HG_LOC(C)) {
    HG_LOC(C);
    T += 0.1;
    HG_LOC(C);
    Steps += 1.0;
  }
  // One HG_LOC per output: spots key on location too, and these two
  // values must not share one record.
  HG_LOC(C);
  C.output(T);
  HG_LOC(C);
  C.output(Steps);
}

} // namespace

const std::vector<Kernel> &herbgrind::native::demoKernels() {
  static const std::vector<Kernel> Kernels = [] {
    std::vector<Kernel> Ks;
    Ks.push_back({"native cancellation",
                  "cancel-v1",
                  {{1.0, 1e18}},
                  cancelKernel});
    Ks.push_back({"native quadratic root",
                  "quadratic-v1",
                  {{1.0, 10.0}, {100.0, 1e6}, {1.0, 10.0}},
                  quadraticKernel});
    Ks.push_back({"native step loop",
                  "step-loop-v1",
                  {{1.0, 30.0}},
                  stepLoopKernel});
    return Ks;
  }();
  return Kernels;
}
