//===- native/Context.cpp - Native-execution analysis context -------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "native/Context.h"

#include "analysis/ErrorPredict.h"
#include "native/Kernel.h"
#include "support/Format.h"
#include "support/Trace.h"

#include <cassert>
#include <cstring>

using namespace herbgrind;
using namespace herbgrind::native;

//===----------------------------------------------------------------------===//
// Construction and activation
//===----------------------------------------------------------------------===//

/// The activation list: an intrusive stack of entries embedded in the
/// objects that create them (context construction, run() frames), so a
/// context destroyed at ANY depth -- the engine replaces worker contexts
/// in place; a kernel may drop one mid-run -- just unlinks its entries
/// and active() can never dangle, whatever the destruction order. The
/// thread-local head is a raw pointer, i.e. trivially destructible:
/// worker threads destroy their thread_local analyzer contexts during
/// TLS teardown, after any nontrivial thread_local here would already be
/// gone. No storage, no allocation, no depth limit.
thread_local Context::ActivationLink *Context::ActiveHead = nullptr;

/// The location of unmarked code (and of every context until its first
/// HG_LOC / setLoc); a static so it can key the slot cache like the
/// macro's per-callsite statics.
static const SourceLoc UnknownLoc;

Context *Context::active() {
  // Entries whose context died before their frame popped carry null.
  for (ActivationLink *L = ActiveHead; L; L = L->Next)
    if (L->Ctx)
      return L->Ctx;
  return nullptr;
}

void Context::pushLink(ActivationLink &L) {
  L.Next = ActiveHead;
  ActiveHead = &L;
}

void Context::unlink(ActivationLink &L) {
  for (ActivationLink **P = &ActiveHead; *P; P = &(*P)->Next)
    if (*P == &L) {
      *P = L.Next;
      return;
    }
}

Context::Activation::Activation(Context &C) {
  Link.Ctx = &C;
  pushLink(Link);
}

Context::Activation::~Activation() { unlink(Link); }

Context::Context(AnalysisConfig Config)
    : Cfg(Config),
      Arena(Config.MaxExprDepth, Config.EquivDepth, Config.UsePools) {
  Shadow = std::make_unique<ShadowState>(Arena, Sets, /*NumTemps=*/0,
                                         Cfg.UsePools,
                                         Cfg.SharedShadowValues);
  CurLoc = &UnknownLoc;
  Slots = slotsFor(&UnknownLoc);
  // Construction activates: `native::Context C;` at the top of a scope is
  // all standalone code needs for Real's operators to find their context.
  SelfLink.Ctx = this;
  pushLink(SelfLink);
}

Context::~Context() {
  unlink(SelfLink);
  // Activation frames for this context that are still on the list (the
  // context died inside its own run()) keep their embedded entries;
  // clearing their Ctx makes active() skip them until the frame unlinks
  // itself.
  for (ActivationLink *L = ActiveHead; L; L = L->Next)
    if (L->Ctx == this)
      L->Ctx = nullptr;
  assert(Shadow->liveValues() == 0 &&
         "native::Real values outlived their Context");
}

void Context::reset() {
  assert(Shadow->liveValues() == 0 &&
         "native::Real values alive across Context::reset()");
  Shadow->reset();
  Arena.resetForReuse();
  // Interned influence sets and the site tables survive on purpose: sets
  // are value-interned and site ids are content-derived, so reuse cannot
  // change results, only skip re-interning. The *current location* must
  // not survive: a fresh context stamps pre-HG_LOC operations with the
  // unknown location, and a reset one has to do exactly the same or its
  // records would key differently (breaking --jobs byte-identity).
  CurLoc = &UnknownLoc;
  Slots = slotsFor(&UnknownLoc);
  Inputs = nullptr; // a fresh context has no bound tuple; neither may we
  NumInputs = 0;
  Ops.clear();
  Spots.clear();
  ShadowOps = 0;
  SpotOps = 0;
  RunSuspect = false;
}

ContextStats Context::stats() const {
  ContextStats St;
  St.ShadowOpsExecuted = ShadowOps;
  St.SpotsExecuted = SpotOps;
  St.InternedSites = SiteKeys.size();
  St.SiteCollisions = Collisions;
  St.TraceNodesAllocated = Arena.totalAllocated();
  St.ShadowValuesAllocated = Shadow->totalValuesCreated();
  St.InfluenceSetsInterned = Sets.internedSets();
  return St;
}

//===----------------------------------------------------------------------===//
// Op identity: content-hashed (location, opcode) interning
//===----------------------------------------------------------------------===//

uint32_t *Context::slotsFor(const void *Key) {
  auto [It, Inserted] = StaticSlotCache.try_emplace(Key);
  if (Inserted)
    It->second.fill(UINT32_MAX);
  // unordered_map never moves its nodes, so the pointer stays valid.
  return It->second.data();
}

void Context::setLoc(SourceLoc Loc) {
  if (CurLoc == &OwnLoc && Loc == OwnLoc)
    return;
  OwnLoc = std::move(Loc);
  CurLoc = &OwnLoc;
  OwnSlots.fill(UINT32_MAX);
  Slots = OwnSlots.data();
}

void Context::stampLoc(const SourceLoc &StaticLoc) {
  if (CurLoc == &StaticLoc)
    return; // re-stamping the same line (every loop trip): free
  CurLoc = &StaticLoc;
  Slots = slotsFor(&StaticLoc);
}

/// 32-bit FNV-1a; the id space record maps and reports key on.
static uint32_t fnv1a32(const char *S, size_t N, uint32_t H) {
  for (size_t I = 0; I < N; ++I) {
    H ^= static_cast<unsigned char>(S[I]);
    H *= 0x01000193u;
  }
  return H;
}

uint32_t Context::internSite(const char *Tag, uint32_t &Slot) {
  if (Slot != UINT32_MAX)
    return Slot;
  // Hash the canonical key "file\x1Fline\x1Ffunction\x1Ftag". Content
  // addressing is the whole point: the id depends on nothing but the
  // source identity, so every worker, process, and cached shard document
  // numbers the same operation identically.
  char LineBuf[16];
  int LineLen = std::snprintf(LineBuf, sizeof(LineBuf), "%d", CurLoc->Line);
  uint32_t H = 0x811c9dc5u;
  H = fnv1a32(CurLoc->File.data(), CurLoc->File.size(), H);
  H = fnv1a32("\x1f", 1, H);
  H = fnv1a32(LineBuf, static_cast<size_t>(LineLen), H);
  H = fnv1a32("\x1f", 1, H);
  H = fnv1a32(CurLoc->Function.data(), CurLoc->Function.size(), H);
  H = fnv1a32("\x1f", 1, H);
  H = fnv1a32(Tag, std::strlen(Tag), H);

  std::string Key = CurLoc->File + "\x1f" + LineBuf + "\x1f" +
                    CurLoc->Function + "\x1f" + Tag;
  auto It = SiteKeys.find(H);
  if (It == SiteKeys.end()) {
    SiteKeys.emplace(H, std::move(Key));
  } else if (It->second != Key) {
    // Two sites share one record: coarser, still sound. Count each
    // distinct colliding site once, however often it re-interns.
    if (CollidedKeys.insert(std::move(Key)).second)
      ++Collisions;
  }
  Slot = H;
  return H;
}

uint32_t Context::opSite(Opcode Op) {
  return internSite(opInfo(Op).Name, Slots[static_cast<unsigned>(Op)]);
}

uint32_t Context::outputSite() {
  return internSite("out", Slots[static_cast<unsigned>(Opcode::NumOpcodes)]);
}

//===----------------------------------------------------------------------===//
// Shadow plumbing
//===----------------------------------------------------------------------===//

void Context::retainShadow(ShadowValue *SV) { Shadow->retain(SV); }
void Context::releaseShadow(ShadowValue *SV) { Shadow->release(SV); }

ShadowValue *Context::shadowOf(const Real &R, ShadowValue *&Ephemeral) {
  Ephemeral = nullptr;
  if (R.SV && R.Ctx == this)
    return R.SV;
  // Lazy shadowing (Section 6): a value with no recorded float provenance
  // becomes a leaf made from its concrete bits.
  ShadowValue *SV =
      Shadow->create(BigFloat::fromDouble(R.Val, Cfg.PrecisionBits),
                     Arena.leaf(R.Val), Sets.empty(), ValueType::F64);
  if (!R.Ctx) {
    // Install on the Real so later uses share one leaf, exactly like the
    // interpreter installing a lazy shadow on its temporary.
    R.SV = SV;
    R.Ctx = this;
    return SV;
  }
  // The Real belongs to another context: leave it alone and use a
  // this-context shadow of its concrete double for just this operation.
  Ephemeral = SV;
  return SV;
}

//===----------------------------------------------------------------------===//
// Inputs, outputs, kernels
//===----------------------------------------------------------------------===//

void Context::bindInputs(const double *Vals, size_t N) {
  Inputs = Vals;
  NumInputs = N;
}

Real Context::input(size_t I) {
  assert(Inputs && I < NumInputs && "input index out of the bound tuple");
  return input(I, Inputs[I]);
}

Real Context::input(size_t I, double V) {
  (void)I;
  Real R;
  R.Val = V;
  R.Ctx = this;
  R.SV = Cfg.PredicateOnly
             ? Shadow->createPredicate(0.0, 0.0, ValueType::F64)
             : Shadow->create(BigFloat::fromDouble(V, Cfg.PrecisionBits),
                              Arena.leaf(V), Sets.empty(), ValueType::F64);
  return R;
}

double Context::output(const Real &R) {
  ++SpotOps;
  if (Cfg.PredicateOnly) {
    double E = (R.SV && R.Ctx == this)
                   ? errpredict::predTotal(R.SV->PredDelta, R.SV->PredNoise)
                   : 0.0;
    if (errpredict::outputSuspect(Value::ofF64(R.Val), E,
                                  Cfg.OutputErrorThreshold))
      RunSuspect = true;
    return R.Val;
  }
  uint32_t PC = outputSite();
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Output;
    Spot.Loc = *CurLoc;
  }
  ShadowValue *SV = (R.SV && R.Ctx == this) ? R.SV : nullptr;
  shadowOutputSpotCore(Cfg, Spot, SV, Value::ofF64(R.Val));
  return R.Val;
}

void Context::run(const Kernel &K, const double *Vals, size_t N) {
  trace::Span InvokeSpan("kernel.invoke", "native",
                         trace::enabled()
                             ? format("{\"kernel\":\"%s\"}",
                                      jsonEscape(K.Name).c_str())
                             : std::string());
  Activation Act(*this);
  RunSuspect = false; // each invocation gets its own tier-0 verdict
  // Every invocation starts from the unknown location: a kernel op that
  // runs before the kernel's first HG_LOC must key identically on every
  // invocation, not under whatever location the previous invocation's
  // tail left current (record ids must not depend on how runs are
  // batched into shards).
  CurLoc = &UnknownLoc;
  Slots = slotsFor(&UnknownLoc);
  // RAII unbind: the tuple pointer must not outlive the invocation even
  // when the kernel function throws (a stale non-null pointer would
  // defeat input()'s unbound assert and read freed memory later).
  struct BindGuard {
    Context &C;
    ~BindGuard() { C.bindInputs(nullptr, 0); }
  } Guard{*this};
  bindInputs(Vals, N);
  K.Fn(*this, Vals, N);
}

void Context::run(const Kernel &K, const std::vector<double> &Vals) {
  run(K, Vals.data(), Vals.size());
}

void Context::runBatch(const Kernel &K, const std::vector<double> *Tuples,
                       size_t NumLanes, std::vector<uint8_t> *Suspects) {
  // One span, one activation frame, one unknown-location slot lookup for
  // the whole batch; everything that decides record *content* -- the
  // per-lane location reset, the per-lane suspect flag, the per-lane
  // input binding -- still happens per invocation, which is what keeps a
  // batched sweep's report byte-identical to a scalar one's.
  trace::Span InvokeSpan("kernel.invoke_batch", "native",
                         trace::enabled()
                             ? format("{\"kernel\":\"%s\",\"lanes\":%zu}",
                                      jsonEscape(K.Name).c_str(), NumLanes)
                             : std::string());
  Activation Act(*this);
  uint32_t *UnknownSlots = slotsFor(&UnknownLoc);
  struct BindGuard {
    Context &C;
    ~BindGuard() { C.bindInputs(nullptr, 0); }
  } Guard{*this};
  if (Suspects)
    Suspects->assign(NumLanes, 0);
  for (size_t L = 0; L < NumLanes; ++L) {
    RunSuspect = false; // each invocation gets its own tier-0 verdict
    CurLoc = &UnknownLoc;
    Slots = UnknownSlots;
    bindInputs(Tuples[L].data(), Tuples[L].size());
    K.Fn(*this, Tuples[L].data(), Tuples[L].size());
    if (Suspects)
      (*Suspects)[L] = RunSuspect;
  }
}

//===----------------------------------------------------------------------===//
// The shadowed operations (Real's operators funnel here)
//===----------------------------------------------------------------------===//

Real Context::applyOp(Opcode Op, const Real *const *Args, unsigned N) {
  ++ShadowOps;
  if (Cfg.PredicateOnly) {
    // Tier 0: concrete evaluation plus bound propagation; no reals, no
    // site interning, no records. Operands without a this-context shadow
    // are exact (their concrete bits are their real).
    Value ArgVals[3];
    errpredict::PredVal ArgP[3];
    for (unsigned I = 0; I < N; ++I) {
      ArgVals[I] = Value::ofF64(Args[I]->Val);
      if (Args[I]->SV && Args[I]->Ctx == this)
        ArgP[I] = {Args[I]->SV->PredDelta, Args[I]->SV->PredNoise};
    }
    Value Concrete = evalScalarOp(Op, ArgVals, N);
    errpredict::PredOp P =
        errpredict::predictScalarOp(Op, ArgVals, ArgP, N, Concrete);
    Real R;
    R.Val = Concrete.F64;
    R.SV = Shadow->createPredicate(P.Delta, P.Noise, ValueType::F64);
    R.Ctx = this;
    return R;
  }
  Value ArgVals[3];
  ShadowValue *ArgSV[3] = {nullptr, nullptr, nullptr};
  ShadowValue *Ephemeral[3] = {nullptr, nullptr, nullptr};
  for (unsigned I = 0; I < N; ++I) {
    ArgVals[I] = Value::ofF64(Args[I]->Val);
    ArgSV[I] = shadowOf(*Args[I], Ephemeral[I]);
  }
  // The concrete result: evalScalarOp *is* the native double semantics
  // (shared with the interpreter so the two frontends agree bit-for-bit).
  Value Concrete = evalScalarOp(Op, ArgVals, N);

  uint32_t PC = opSite(Op);
  OpRecord &Rec = Ops[PC];
  if (Rec.Executions == 0) {
    Rec.Op = Op;
    Rec.Loc = *CurLoc;
  }
  ShadowValue *Out = shadowScalarOpCore(Cfg, *Shadow, Rec, Op, PC, ArgSV,
                                        ArgVals, N, Concrete);
  for (unsigned I = 0; I < N; ++I)
    if (Ephemeral[I])
      Shadow->release(Ephemeral[I]);

  Real R;
  R.Val = Concrete.F64;
  R.SV = Out;
  R.Ctx = this;
  return R;
}

bool Context::applyComparison(Opcode Op, const Real &A, const Real &B) {
  ++SpotOps;
  Value ArgVals[2] = {Value::ofF64(A.Val), Value::ofF64(B.Val)};
  bool FloatPred = evalScalarOp(Op, ArgVals, 2).asI64() != 0;

  if (Cfg.PredicateOnly) {
    ShadowValue *SA = (A.SV && A.Ctx == this) ? A.SV : nullptr;
    ShadowValue *SB = (B.SV && B.Ctx == this) ? B.SV : nullptr;
    if ((SA || SB) &&
        errpredict::comparisonSuspect(
            ArgVals[0], ArgVals[1],
            SA ? errpredict::predTotal(SA->PredDelta, SA->PredNoise) : 0.0,
            SB ? errpredict::predTotal(SB->PredDelta, SB->PredNoise) : 0.0))
      RunSuspect = true;
    return FloatPred;
  }

  uint32_t PC = opSite(Op);
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Comparison;
    Spot.Loc = *CurLoc;
  }
  ++Spot.Executions;
  // Comparisons read shadows but never create them (matching the
  // interpreter): an unshadowed operand falls back to its concrete bits
  // inside the core.
  ShadowValue *SA = (A.SV && A.Ctx == this) ? A.SV : nullptr;
  ShadowValue *SB = (B.SV && B.Ctx == this) ? B.SV : nullptr;
  shadowComparisonSpotCore(Cfg, Spot, Op, SA, SB, ArgVals[0], ArgVals[1],
                           FloatPred);
  return FloatPred;
}

int64_t Context::applyConversion(const Real &A) {
  ++SpotOps;
  Value AV = Value::ofF64(A.Val);
  int64_t IntResult = evalScalarOp(Opcode::F64toI64, &AV, 1).asI64();

  if (Cfg.PredicateOnly) {
    if (A.SV && A.Ctx == this &&
        errpredict::conversionSuspect(
            A.Val, errpredict::predTotal(A.SV->PredDelta, A.SV->PredNoise)))
      RunSuspect = true;
    return IntResult;
  }

  uint32_t PC = opSite(Opcode::F64toI64);
  SpotRecord &Spot = Spots[PC];
  if (Spot.Executions == 0) {
    Spot.Kind = SpotKind::Conversion;
    Spot.Loc = *CurLoc;
  }
  ++Spot.Executions;
  ShadowValue *SA = (A.SV && A.Ctx == this) ? A.SV : nullptr;
  shadowConversionSpotCore(Spot, SA, IntResult);
  return IntResult;
}

//===----------------------------------------------------------------------===//
// Static dispatch (Real's operators)
//===----------------------------------------------------------------------===//

Context *Context::ofOperands(const Real *const *Args, unsigned N) {
  for (unsigned I = 0; I < N; ++I)
    if (Args[I]->Ctx)
      return Args[I]->Ctx;
  return active();
}

Real Context::unaryOp(Opcode Op, const Real &A) {
  const Real *Args[1] = {&A};
  if (Context *C = ofOperands(Args, 1))
    return C->applyOp(Op, Args, 1);
  Value V = Value::ofF64(A.value());
  return Real(evalScalarOp(Op, &V, 1).F64);
}

Real Context::binaryOp(Opcode Op, const Real &A, const Real &B) {
  const Real *Args[2] = {&A, &B};
  if (Context *C = ofOperands(Args, 2))
    return C->applyOp(Op, Args, 2);
  Value V[2] = {Value::ofF64(A.value()), Value::ofF64(B.value())};
  return Real(evalScalarOp(Op, V, 2).F64);
}

Real Context::ternaryOp(Opcode Op, const Real &A, const Real &B,
                        const Real &C) {
  const Real *Args[3] = {&A, &B, &C};
  if (Context *Ctx = ofOperands(Args, 3))
    return Ctx->applyOp(Op, Args, 3);
  Value V[3] = {Value::ofF64(A.value()), Value::ofF64(B.value()),
                Value::ofF64(C.value())};
  return Real(evalScalarOp(Op, V, 3).F64);
}

bool Context::comparisonOp(Opcode Op, const Real &A, const Real &B) {
  const Real *Args[2] = {&A, &B};
  if (Context *C = ofOperands(Args, 2))
    return C->applyComparison(Op, A, B);
  Value V[2] = {Value::ofF64(A.value()), Value::ofF64(B.value())};
  return evalScalarOp(Op, V, 2).asI64() != 0;
}

int64_t Context::conversionOp(const Real &A) {
  const Real *Args[1] = {&A};
  if (Context *C = ofOperands(Args, 1))
    return C->applyConversion(A);
  Value V = Value::ofF64(A.value());
  return evalScalarOp(Opcode::F64toI64, &V, 1).asI64();
}

//===----------------------------------------------------------------------===//
// Results
//===----------------------------------------------------------------------===//

AnalysisResult Context::snapshot() const {
  AnalysisResult R;
  R.Ranges = Cfg.Ranges;
  R.EquivDepth = Cfg.EquivDepth;
  for (const auto &[PC, Rec] : Ops)
    R.Ops.emplace(PC, Rec.clone());
  R.Spots = Spots;
  return R;
}

Report herbgrind::native::buildReport(const Context &C) {
  return herbgrind::buildReport(C.snapshot());
}
