//===- native/Context.h - Native-execution analysis context ----*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native instrumentation frontend's analysis driver. Where Herbgrind
/// interprets an ir::Program under instrumentation, a native::Context
/// shadows *actual C++ code*: arithmetic on native::Real values executes
/// as ordinary doubles while every operation drives the same shadow
/// machinery -- high-precision reals, concrete expression traces,
/// influence sets -- and folds into the same OpRecord/SpotRecord maps, so
/// buildReport produces the identical paper-style report from a native run
/// and the batch engine shards/merges/caches native kernels exactly like
/// FPCore benchmarks.
///
/// Stable static op identity without a pc: the context interns (source
/// location, opcode) callsites to a 32-bit content hash of the location
/// and opcode name. Dynamic executions of one source operation -- loop
/// iterations included -- merge into one record exactly like interpreter
/// ops at one pc, and because the id is derived from content rather than
/// encounter order it is identical across workers, processes and cached
/// shard documents, which is what keeps `--jobs N` sweeps byte-identical
/// and ResultCache entries portable. (Two sites hashing to the same id
/// would share one record -- anti-unification keeps that sound, merely
/// coarser -- and are counted in stats().SiteCollisions; with FNV-1a over
/// the full location string this is vanishingly rare.)
///
/// Source locations come from the HG_LOC macro (see Real.h): overloaded
/// operators cannot take default std::source_location-style arguments, so
/// the context carries a "current location" that HG_LOC stamps. Unmarked
/// code still analyzes correctly -- everything merges per opcode under the
/// unknown location -- marking just refines the blame granularity.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_NATIVE_CONTEXT_H
#define HERBGRIND_NATIVE_CONTEXT_H

#include "analysis/Analysis.h"
#include "analysis/Report.h"
#include "native/Real.h"

#include <array>
#include <unordered_map>
#include <unordered_set>

namespace herbgrind {
namespace native {

struct Kernel;

/// Cost/size counters of one native context (the AnalysisStats analogue).
struct ContextStats {
  uint64_t ShadowOpsExecuted = 0;
  uint64_t SpotsExecuted = 0;
  uint64_t InternedSites = 0;
  uint64_t SiteCollisions = 0; ///< Distinct sites sharing a hashed id.
  size_t TraceNodesAllocated = 0;
  size_t ShadowValuesAllocated = 0;
  size_t InfluenceSetsInterned = 0;
};

/// The native frontend's analysis driver: owns the shadow machinery and
/// the accumulated records for one instrumented execution context.
/// Records accumulate across kernel invocations, which is how the batch
/// engine runs a shard of sampled inputs through one context.
///
/// A context is single-threaded, and every Real it shadows must die
/// before the context does (Reals hold references into its pools). The
/// most recently constructed live context is the thread's *active*
/// context (Context::active()), which is what Real operations fall back
/// to when no operand is shadowed yet.
class Context {
public:
  /// The analysis configuration is shared with the interpreter frontend.
  /// Native execution always wraps library calls (sin/cos/... are atomic
  /// ops by construction -- there is no client libm code to lower), so
  /// WrapLibraryCalls is ignored; MaxSteps and UseTypeAnalysis likewise
  /// (native code has no interpreter steps to bound or skip).
  explicit Context(AnalysisConfig Config = {});
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// The innermost live context on this thread (nullptr outside any).
  static Context *active();

  /// \name Source locations (op identity)
  /// @{

  /// Sets the location stamped on subsequently recorded operations and
  /// spots (by value: for programmatic locations and tests).
  void setLoc(SourceLoc Loc);

  /// The HG_LOC fast path: \p StaticLoc must have static storage
  /// duration (the macro's per-callsite static). Pointer identity makes
  /// re-stamping a line free, and interned site ids are cached per
  /// callsite, so marked loops never rebuild location strings.
  void stampLoc(const SourceLoc &StaticLoc);

  const SourceLoc &loc() const { return *CurLoc; }
  /// @}

  /// \name Inputs and outputs (spots)
  /// @{

  /// Binds the current input tuple; Real::input / input(I) read it. The
  /// pointer must stay valid until rebound (the engine binds each sampled
  /// tuple for the duration of one kernel invocation).
  void bindInputs(const double *Vals, size_t N);

  /// A shadowed input value: bound input \p I (asserts when unbound).
  Real input(size_t I);

  /// A shadowed input value carrying \p V (standalone use, no binding).
  Real input(size_t I, double V);

  /// Records an output spot for \p R at the current location and returns
  /// its concrete double (Section 4.2: outputs are where error becomes
  /// observable).
  double output(const Real &R);
  /// @}

  /// Runs \p K once on one input tuple: binds the inputs, activates this
  /// context, and invokes the kernel function. Records accumulate.
  void run(const Kernel &K, const double *Vals, size_t N);
  void run(const Kernel &K, const std::vector<double> &Vals);

  /// Runs \p K once per lane on \p NumLanes input tuples, amortizing the
  /// per-invocation scaffolding (trace span, activation frame, the
  /// unknown-location slot lookup) across the batch. Records accumulate
  /// exactly as NumLanes run() calls would have left them -- each lane
  /// still starts from the unknown location so record ids cannot depend
  /// on batching. When \p Suspects is non-null it receives the per-lane
  /// tier-0 verdicts (all false in full mode); lastRunSuspect() reports
  /// the final lane's.
  void runBatch(const Kernel &K, const std::vector<double> *Tuples,
                size_t NumLanes, std::vector<uint8_t> *Suspects = nullptr);

  /// \name Results (the Herbgrind-class contract)
  /// @{
  const std::map<uint32_t, OpRecord> &opRecords() const { return Ops; }
  const std::map<uint32_t, SpotRecord> &spotRecords() const { return Spots; }

  /// Copies the accumulated records out as a mergeable value (shardable,
  /// serializable, cacheable -- the engine's unit of reduction).
  AnalysisResult snapshot() const;

  /// Candidate root causes, most-flagged first (Section 4.2 footnote 7).
  std::vector<uint32_t> reportedRootCauses() const {
    return reportedRootCausesFromRecords(Ops, Spots);
  }

  const AnalysisConfig &config() const { return Cfg; }
  ContextStats stats() const;

  /// Tier-0 verdict of the most recent run() (predicate mode only): true
  /// when some spot predicate could not rule out an erroneous observation.
  /// Always false in full mode.
  bool lastRunSuspect() const { return RunSuspect; }
  /// @}

  /// \name Op dispatch backing Real's operators
  /// The context is chosen from the operands (first shadowed one wins),
  /// falling back to active(); with no context anywhere the op evaluates
  /// concretely, unshadowed. User code normally writes `a + b`, not these.
  /// @{
  static Real unaryOp(Opcode Op, const Real &A);
  static Real binaryOp(Opcode Op, const Real &A, const Real &B);
  static Real ternaryOp(Opcode Op, const Real &A, const Real &B,
                        const Real &C);
  static bool comparisonOp(Opcode Op, const Real &A, const Real &B);
  static int64_t conversionOp(const Real &A);
  /// @}

  /// Clears every accumulated record and rewinds the arenas in place
  /// (slabs, interned influence sets, and the site-intern table survive),
  /// returning the context to its freshly-constructed condition. Every
  /// Real shadowed by this context must already have died; the batch
  /// engine uses this to recycle worker-local contexts across shards, and
  /// a reset context produces records identical to a new one's.
  void reset();

private:
  friend class Real;

  /// One entry of the thread's activation list. Entries are embedded in
  /// the objects that create them (contexts, run() frames), so the list
  /// needs no storage of its own: the thread-local head stays a trivially
  /// destructible raw pointer (safe under TLS teardown) and there is no
  /// depth limit.
  struct ActivationLink {
    Context *Ctx = nullptr;
    ActivationLink *Next = nullptr;
  };

  /// RAII activation used by run(); the constructor also activates.
  struct Activation {
    explicit Activation(Context &C);
    ~Activation();
    ActivationLink Link;
  };

  static void pushLink(ActivationLink &L);
  static void unlink(ActivationLink &L);

  /// Head of this thread's activation list (a raw pointer on purpose:
  /// trivially destructible, so TLS teardown order cannot dangle it).
  static thread_local ActivationLink *ActiveHead;

  /// Interns (current location, tag) to the stable 32-bit site id;
  /// \p Slot caches the answer for the current location's slot array.
  uint32_t internSite(const char *Tag, uint32_t &Slot);
  uint32_t opSite(Opcode Op);
  uint32_t outputSite();

  /// The cached site-id slot array for a location key (one array per
  /// HG_LOC callsite, persisted across reset -- ids are content-derived).
  uint32_t *slotsFor(const void *Key);

  /// The context an operation should record under: the first operand
  /// bound to one wins, else the thread's active context, else nullptr
  /// (pure constant math stays unshadowed).
  static Context *ofOperands(const Real *const *Args, unsigned N);

  /// The operand's shadow value under this context. Installs a lazy leaf
  /// shadow on the Real when it belongs here (or is still unshadowed);
  /// for a Real bound to a *different* context the shadow is ephemeral --
  /// returned in \p Ephemeral for the caller to release -- and carries
  /// only the concrete bits.
  ShadowValue *shadowOf(const Real &R, ShadowValue *&Ephemeral);

  /// One scalar float op: Real.cpp's operators funnel here.
  Real applyOp(Opcode Op, const Real *const *Args, unsigned N);
  /// One float comparison: records a comparison spot, returns the float
  /// predicate.
  bool applyComparison(Opcode Op, const Real &A, const Real &B);
  /// One float-to-int truncation: records a conversion spot.
  int64_t applyConversion(const Real &A);

  void retainShadow(ShadowValue *SV);
  void releaseShadow(ShadowValue *SV);

  AnalysisConfig Cfg;
  TraceArena Arena;
  InfluenceSets Sets;
  std::unique_ptr<ShadowState> Shadow;
  const double *Inputs = nullptr;
  size_t NumInputs = 0;
  std::map<uint32_t, OpRecord> Ops;
  std::map<uint32_t, SpotRecord> Spots;
  uint64_t ShadowOps = 0;
  uint64_t SpotOps = 0;
  uint64_t Collisions = 0;
  bool RunSuspect = false;

  /// Interned-site table: hashed id -> canonical key string, for
  /// collision accounting. Content-derived ids survive reset().
  std::unordered_map<uint32_t, std::string> SiteKeys;
  /// Colliding site keys already counted in Collisions (each distinct
  /// site counts once, however often it re-interns).
  std::unordered_set<std::string> CollidedKeys;

  /// Per-opcode site-id slots (+1 for the output spot's "out" tag;
  /// float-to-int conversions key through their own opcode's slot).
  static constexpr unsigned NumSiteSlots =
      static_cast<unsigned>(Opcode::NumOpcodes) + 1;
  using SiteSlots = std::array<uint32_t, NumSiteSlots>;

  /// The current location (never null: points at the unknown-location
  /// sentinel, an HG_LOC static, or OwnLoc) and its slot array.
  const SourceLoc *CurLoc;
  uint32_t *Slots;
  /// Storage behind setLoc-by-value locations, with its own (flushed per
  /// setLoc) slot array.
  SourceLoc OwnLoc;
  SiteSlots OwnSlots;
  /// Slot arrays for static location keys, persisted across reset so a
  /// marked loop's sites intern exactly once per context lifetime.
  std::unordered_map<const void *, SiteSlots> StaticSlotCache;
  /// This context's construction-time activation entry.
  ActivationLink SelfLink;
};

/// Extracts the paper-style report from a native run (the exact analogue
/// of buildReport(const Herbgrind &)).
Report buildReport(const Context &C);

} // namespace native
} // namespace herbgrind

#endif // HERBGRIND_NATIVE_CONTEXT_H
