//===- native/Real.cpp - Drop-in shadowed double --------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "native/Real.h"

#include "native/Context.h"

#include <cassert>

using namespace herbgrind;
using namespace herbgrind::native;

//===----------------------------------------------------------------------===//
// Value semantics (shadow references follow the copies, Section 6 sharing)
//===----------------------------------------------------------------------===//

Real::Real(const Real &O) : Val(O.Val), SV(O.SV), Ctx(O.Ctx) {
  if (SV)
    Ctx->retainShadow(SV);
}

Real::Real(Real &&O) noexcept : Val(O.Val), SV(O.SV), Ctx(O.Ctx) {
  O.SV = nullptr;
  O.Ctx = nullptr;
}

Real &Real::operator=(const Real &O) {
  if (this == &O)
    return *this;
  if (O.SV)
    O.Ctx->retainShadow(O.SV);
  if (SV)
    Ctx->releaseShadow(SV);
  Val = O.Val;
  SV = O.SV;
  Ctx = O.Ctx;
  return *this;
}

Real &Real::operator=(Real &&O) noexcept {
  if (this == &O)
    return *this;
  if (SV)
    Ctx->releaseShadow(SV);
  Val = O.Val;
  SV = O.SV;
  Ctx = O.Ctx;
  O.SV = nullptr;
  O.Ctx = nullptr;
  return *this;
}

Real::~Real() {
  if (SV)
    Ctx->releaseShadow(SV);
}

Real Real::input(unsigned Index) {
  Context *C = Context::active();
  assert(C && "Real::input needs an active native::Context");
  return C->input(Index);
}

int64_t Real::toInt64() const { return Context::conversionOp(*this); }

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

Real herbgrind::native::operator+(const Real &A, const Real &B) {
  return Context::binaryOp(Opcode::AddF64, A, B);
}
Real herbgrind::native::operator-(const Real &A, const Real &B) {
  return Context::binaryOp(Opcode::SubF64, A, B);
}
Real herbgrind::native::operator*(const Real &A, const Real &B) {
  return Context::binaryOp(Opcode::MulF64, A, B);
}
Real herbgrind::native::operator/(const Real &A, const Real &B) {
  return Context::binaryOp(Opcode::DivF64, A, B);
}

Real Real::operator-() const { return Context::unaryOp(Opcode::NegF64, *this); }

Real &Real::operator+=(const Real &O) { return *this = *this + O; }
Real &Real::operator-=(const Real &O) { return *this = *this - O; }
Real &Real::operator*=(const Real &O) { return *this = *this * O; }
Real &Real::operator/=(const Real &O) { return *this = *this / O; }

bool herbgrind::native::operator<(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpLTF64, A, B);
}
bool herbgrind::native::operator<=(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpLEF64, A, B);
}
bool herbgrind::native::operator>(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpGTF64, A, B);
}
bool herbgrind::native::operator>=(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpGEF64, A, B);
}
bool herbgrind::native::operator==(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpEQF64, A, B);
}
bool herbgrind::native::operator!=(const Real &A, const Real &B) {
  return Context::comparisonOp(Opcode::CmpNEF64, A, B);
}

//===----------------------------------------------------------------------===//
// Math functions
//===----------------------------------------------------------------------===//

#define HG_NATIVE_UNARY(Name, Op)                                            \
  Real herbgrind::native::Name(const Real &X) {                              \
    return Context::unaryOp(Opcode::Op, X);                                  \
  }
#define HG_NATIVE_BINARY(Name, Op)                                           \
  Real herbgrind::native::Name(const Real &A, const Real &B) {               \
    return Context::binaryOp(Opcode::Op, A, B);                              \
  }

HG_NATIVE_UNARY(sqrt, SqrtF64)
HG_NATIVE_UNARY(fabs, AbsF64)
HG_NATIVE_UNARY(abs, AbsF64)
HG_NATIVE_BINARY(fmin, MinF64)
HG_NATIVE_BINARY(fmax, MaxF64)
HG_NATIVE_BINARY(copysign, CopySignF64)
HG_NATIVE_UNARY(exp, ExpF64)
HG_NATIVE_UNARY(exp2, Exp2F64)
HG_NATIVE_UNARY(expm1, Expm1F64)
HG_NATIVE_UNARY(log, LogF64)
HG_NATIVE_UNARY(log2, Log2F64)
HG_NATIVE_UNARY(log10, Log10F64)
HG_NATIVE_UNARY(log1p, Log1pF64)
HG_NATIVE_UNARY(sin, SinF64)
HG_NATIVE_UNARY(cos, CosF64)
HG_NATIVE_UNARY(tan, TanF64)
HG_NATIVE_UNARY(asin, AsinF64)
HG_NATIVE_UNARY(acos, AcosF64)
HG_NATIVE_UNARY(atan, AtanF64)
HG_NATIVE_BINARY(atan2, Atan2F64)
HG_NATIVE_UNARY(sinh, SinhF64)
HG_NATIVE_UNARY(cosh, CoshF64)
HG_NATIVE_UNARY(tanh, TanhF64)
HG_NATIVE_BINARY(pow, PowF64)
HG_NATIVE_UNARY(cbrt, CbrtF64)
HG_NATIVE_BINARY(hypot, HypotF64)
HG_NATIVE_BINARY(fmod, FmodF64)
HG_NATIVE_UNARY(floor, FloorF64)
HG_NATIVE_UNARY(ceil, CeilF64)
HG_NATIVE_UNARY(round, RoundF64)
HG_NATIVE_UNARY(trunc, TruncF64)

Real herbgrind::native::fma(const Real &A, const Real &B, const Real &C) {
  return Context::ternaryOp(Opcode::FmaF64, A, B, C);
}

#undef HG_NATIVE_UNARY
#undef HG_NATIVE_BINARY
