//===- native/Real.h - Drop-in shadowed double for real C++ code -*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// native::Real: a drop-in numeric type that makes ordinary C++ code
/// analyzable by the Herbgrind machinery. Change `double` to
/// `herbgrind::native::Real` and every `+ - * /`, comparison, and math
/// call executes natively (bit-identical to the double program) while
/// also driving the high-precision shadow, the expression traces, and the
/// influence sets of the active native::Context -- the role the paper's
/// Valgrind/VEX instrumentation plays for binaries, delivered as a
/// header-only operator-overloading frontend instead:
///
/// \code
///   native::Context C;
///   Real x = C.input(0, 1e16);
///   HG_LOC(C);
///   Real y = (x + 1.0) - x;      // shadowed add + sub, recorded
///   C.output(y);                  // an output spot
///   puts(buildReport(C).render().c_str());
/// \endcode
///
/// Operations look for their context on the operands first, then fall
/// back to Context::active() (constants have none until first use); with
/// no context anywhere the math still runs, just unshadowed. Overloaded
/// operators cannot capture std::source_location-style defaults, so op
/// identity comes from the context's current location: drop HG_LOC(ctx)
/// on the lines you want blamed individually (unmarked operations merge
/// per opcode under the unknown location). A Real belongs to the context
/// that first shadowed it; under a different context only its concrete
/// double carries over.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_NATIVE_REAL_H
#define HERBGRIND_NATIVE_REAL_H

#include "support/SourceLoc.h"

#include <cstddef>
#include <cstdint>

namespace herbgrind {

struct ShadowValue;

namespace native {

class Context;

/// The drop-in shadowed double.
class Real {
public:
  Real() = default;
  /// Implicit on purpose: `x + 1.0` and `Real y = 0.0` are the drop-in
  /// story. The constant stays unshadowed until an operation touches it.
  Real(double V) : Val(V) {}

  Real(const Real &O);
  Real(Real &&O) noexcept;
  Real &operator=(const Real &O);
  Real &operator=(Real &&O) noexcept;
  ~Real();

  /// The concrete double (bit-identical to the uninstrumented program's).
  double value() const { return Val; }
  bool shadowed() const { return SV != nullptr; }

  /// Bound input \p Index of the active context (Context::bindInputs);
  /// the shadowed leaf the analysis roots traces and summaries at.
  static Real input(unsigned Index);

  Real &operator+=(const Real &O);
  Real &operator-=(const Real &O);
  Real &operator*=(const Real &O);
  Real &operator/=(const Real &O);
  Real operator-() const;
  Real operator+() const { return *this; }

  /// Truncating float-to-int conversion: a spot (Section 4.2).
  int64_t toInt64() const;

private:
  friend class Context;
  double Val = 0.0;
  /// Lazily installed leaf shadow (mutable: first use under a context
  /// shadows a const operand in place, exactly like the interpreter's
  /// lazy shadowing of temporaries).
  mutable ShadowValue *SV = nullptr;
  mutable Context *Ctx = nullptr;
};

/// \name Arithmetic (mixed Real/double forms come via the implicit ctor)
/// @{
Real operator+(const Real &A, const Real &B);
Real operator-(const Real &A, const Real &B);
Real operator*(const Real &A, const Real &B);
Real operator/(const Real &A, const Real &B);
/// @}

/// \name Comparisons: the float-to-discrete boundary, i.e. spots
/// @{
bool operator<(const Real &A, const Real &B);
bool operator<=(const Real &A, const Real &B);
bool operator>(const Real &A, const Real &B);
bool operator>=(const Real &A, const Real &B);
bool operator==(const Real &A, const Real &B);
bool operator!=(const Real &A, const Real &B);
/// @}

/// \name Math functions (mirroring ir/Opcode's scalar f64 coverage).
/// Library calls are wrapped ops (Section 5.3): the shadow computes the
/// mathematical function exactly, the concrete side calls libm.
/// @{
Real sqrt(const Real &X);
Real fabs(const Real &X);
Real abs(const Real &X);
Real fmin(const Real &A, const Real &B);
Real fmax(const Real &A, const Real &B);
Real fma(const Real &A, const Real &B, const Real &C);
Real copysign(const Real &A, const Real &B);
Real exp(const Real &X);
Real exp2(const Real &X);
Real expm1(const Real &X);
Real log(const Real &X);
Real log2(const Real &X);
Real log10(const Real &X);
Real log1p(const Real &X);
Real sin(const Real &X);
Real cos(const Real &X);
Real tan(const Real &X);
Real asin(const Real &X);
Real acos(const Real &X);
Real atan(const Real &X);
Real atan2(const Real &A, const Real &B);
Real sinh(const Real &X);
Real cosh(const Real &X);
Real tanh(const Real &X);
Real pow(const Real &A, const Real &B);
Real cbrt(const Real &X);
Real hypot(const Real &A, const Real &B);
Real fmod(const Real &A, const Real &B);
Real floor(const Real &X);
Real ceil(const Real &X);
Real round(const Real &X);
Real trunc(const Real &X);
/// @}

} // namespace native
} // namespace herbgrind

/// Stamps the current source line as the location of the native
/// operations recorded after it (the op-identity key; see Context.h).
/// The C++17 stand-in for std::source_location capture, which overloaded
/// operators could not perform even in C++20. Each expansion owns one
/// static SourceLoc, so re-stamping a line (every loop iteration) is a
/// pointer compare -- no strings are built on the hot path -- and the
/// context caches interned site ids per callsite. Usable wherever an
/// expression is (the `for (HG_LOC(C); cond; HG_LOC(C))` loop idiom).
#define HG_LOC(Ctx)                                                          \
  ([](::herbgrind::native::Context &HgCtx_, const char *HgFunc_) {           \
    static const ::herbgrind::SourceLoc HgLoc_(__FILE__, __LINE__,           \
                                               HgFunc_);                     \
    HgCtx_.stampLoc(HgLoc_);                                                 \
  }((Ctx), __func__))

#endif // HERBGRIND_NATIVE_REAL_H
