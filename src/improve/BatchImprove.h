//===- improve/BatchImprove.h - Corpus-wide repair pass ---------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch repair pass: the paper's Section 8.1 loop -- feed every
/// candidate root cause to the improver and judge whether a rewrite
/// actually helps -- run over a whole batch sweep's merged records
/// instead of one expression at a time. It consumes a BatchResult
/// (live from an Engine sweep, or rebuilt offline from emitted shard
/// documents by engine::mergeShards), converts each qualifying
/// root-cause record's symbolic expression to FPCore, runs improveExpr
/// under the record's recorded input characteristics, and attaches the
/// outcomes to each benchmark's report as its `Improvements` section
/// (wire format 1.1).
///
/// Determinism: outcomes are keyed and ordered by record identity
/// (benchmark order, then ascending root-cause pc) and every record's
/// improver run is seeded from the improver config alone, so the output
/// is byte-identical across worker counts and between live-sweep and
/// merged-shard-document inputs of the same configuration.
///
/// Persistence: with an engine::ResultCache, every outcome is stored as
/// an improve document keyed by the expression, its sampling specs, and
/// the improver-config hash (on top of the cache's sweep config hash),
/// so a repeated `--improve` pass re-runs nothing.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IMPROVE_BATCHIMPROVE_H
#define HERBGRIND_IMPROVE_BATCHIMPROVE_H

#include "engine/Engine.h"
#include "improve/Improve.h"

#include <string>

namespace herbgrind {
namespace engine {
class ResultCache;
}

namespace improve {

/// Batch repair configuration.
struct BatchImproveConfig {
  /// Per-record improver knobs (sample count, precision, seed, rounds).
  ImproveConfig Improve;
  /// Worker threads; 0 means hardware concurrency.
  unsigned Jobs = 0;
};

/// Canonical hash of every improver knob that can change an outcome.
/// Folded into the result-cache entry key (next to the engine config
/// hash), so changed improver settings invalidate cached improve
/// records instead of silently reusing them.
std::string improveConfigHash(const ImproveConfig &Cfg);

/// Canonical one-line rendering of sampling specs; part of the cache
/// entry identity (the same expression blamed under different recorded
/// input regimes must not share an entry).
std::string specIdentity(const std::vector<SampleSpec> &Specs);

/// Aggregate batch-repair statistics (informational; never part of the
/// deterministic report output).
struct BatchImproveStats {
  uint64_t Benchmarks = 0;      ///< Benchmarks with at least one candidate.
  uint64_t Candidates = 0;      ///< Root-cause records improved over.
  uint64_t Significant = 0;     ///< Candidates above the significance bar.
  uint64_t Improved = 0;        ///< Candidates the rewrite database beat.
  uint64_t AnalyzedRecords = 0; ///< Improver runs executed this pass.
  uint64_t CachedRecords = 0;   ///< Outcomes satisfied by the cache.
  double WallSeconds = 0.0;
};

/// Runs the improver over every root cause of every benchmark's merged
/// records and attaches the outcomes to the per-benchmark reports
/// (Report::Improvements, ascending by pc). Records qualify when they
/// appear as a root cause of an erroneous spot and carry a symbolic
/// expression -- exactly the records the report presents. \p Cache, when
/// non-null, persists outcomes across passes (see improveConfigHash).
BatchImproveStats batchImprove(engine::BatchResult &Batch,
                               const BatchImproveConfig &Cfg = {},
                               engine::ResultCache *Cache = nullptr);

} // namespace improve
} // namespace herbgrind

#endif // HERBGRIND_IMPROVE_BATCHIMPROVE_H
