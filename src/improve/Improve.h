//===- improve/Improve.h - The mini-Herbie expression improver --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact reimplementation of the role Herbie plays in the paper's
/// evaluation (Section 8.1): given an expression and input ranges, sample
/// points, measure mean bits of rounding error against the BigFloat ground
/// truth, and search a database of accuracy-improving rewrites (including
/// the paper's flagship ones: rationalizing sqrt subtractions, expm1/log1p,
/// trigonometric product forms) plus sign-based regime splitting. It is
/// used both as the Section 8.1 "oracle" (improving whole benchmarks
/// extracted from source) and as the judge of Herbgrind's candidate root
/// causes.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IMPROVE_IMPROVE_H
#define HERBGRIND_IMPROVE_IMPROVE_H

#include "fpcore/Eval.h"
#include "fpcore/FPCore.h"
#include "support/Rng.h"
#include "trace/SymExpr.h"

namespace herbgrind {

struct InputCharacteristics;
enum class RangeMode : uint8_t;

namespace improve {

/// Per-variable sampling specification: one or more intervals (sign-split
/// characteristics give two). Intervals are sampled ordinal-uniformly, so
/// wide spans cover every binade instead of clustering at the magnitude
/// of the endpoints; an inverted interval (Lo > Hi) is treated as its
/// normalized [Hi, Lo] form by the sampler.
struct SampleSpec {
  std::vector<std::pair<double, double>> Intervals;

  static SampleSpec interval(double Lo, double Hi) {
    SampleSpec S;
    S.Intervals.push_back({Lo, Hi});
    return S;
  }
  /// The whole finite double line [-DBL_MAX, DBL_MAX]. Ordinal-uniform
  /// sampling makes this meaningful (every exponent is equally likely,
  /// Herbie's sampler); it is the fallback when no range characteristic
  /// is available (RangeMode::Off, or a variable with no recorded range).
  static SampleSpec wholeLine();
};

struct ImproveConfig {
  int SampleCount = 256;
  size_t PrecBits = 256;
  uint64_t Seed = 0xbeef;
  /// Minimum mean-bits improvement to count as "improvable".
  double MinImprovementBits = 1.0;
  /// Error (bits) above which an expression "has significant error"
  /// (the paper's > 5 bits criterion).
  double SignificantErrorBits = 5.0;
  int MaxRounds = 3;
};

/// Samples points for the given variables (ordinal-uniform within each
/// interval, like Herbie's sampler). Inverted intervals are normalized,
/// never collapsed to a single endpoint; an interval with a NaN
/// endpoint degrades to the whole finite line.
std::vector<fpcore::DoubleEnv>
samplePoints(const std::vector<std::string> &Params,
             const std::vector<SampleSpec> &Specs, int Count, Rng &R);

/// Mean bits of error of E over the sample points. Invalid points --
/// a per-point error that is NaN or infinite -- saturate to the doubles'
/// maximum of 64 bits (Herbie's convention) instead of poisoning the
/// mean, so a partial domain cannot make every rewrite look like "no
/// improvement".
double meanErrorBits(const fpcore::Expr &E,
                     const std::vector<fpcore::DoubleEnv> &Points,
                     size_t PrecBits);

/// Structural equality of expressions, including let/while binder
/// initializers and while-loop updates (exposed for tests).
bool sameExpr(const fpcore::Expr &A, const fpcore::Expr &B);

struct ImproveResult {
  fpcore::ExprPtr Best;       ///< The most accurate version found.
  double ErrorBefore = 0.0;   ///< Mean bits, original.
  double ErrorAfter = 0.0;    ///< Mean bits, best.
  bool HadSignificantError = false;
  bool Improved = false;      ///< Improvement >= MinImprovementBits.
};

/// The improver: rewrites + regime splitting, greedy over MaxRounds.
ImproveResult improveExpr(const fpcore::Expr &E,
                          const std::vector<std::string> &Params,
                          const std::vector<SampleSpec> &Specs,
                          const ImproveConfig &Cfg = {});

/// All single-step rewrite candidates of E (exposed for tests).
std::vector<fpcore::ExprPtr> rewriteCandidates(const fpcore::Expr &E);

/// Converts a Herbgrind symbolic expression to an FPCore expression
/// (float-to-float casts become the identity).
fpcore::ExprPtr fromSymExpr(const SymExpr &S);

/// Builds sampling specs from an operation record's input characteristics
/// under the given range mode (RangeMode::Off ignores the ranges, which is
/// what makes the Fig 5b ablation bite).
std::vector<SampleSpec>
specsFromCharacteristics(const InputCharacteristics &Chars, uint32_t NumVars,
                         RangeMode Mode);

} // namespace improve
} // namespace herbgrind

#endif // HERBGRIND_IMPROVE_IMPROVE_H
