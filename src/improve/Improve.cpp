//===- improve/Improve.cpp - The mini-Herbie expression improver ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "improve/Improve.h"

#include "inputs/InputSummary.h"
#include "support/FloatBits.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

using namespace herbgrind;
using namespace herbgrind::improve;
using fpcore::Expr;
using fpcore::ExprPtr;

//===----------------------------------------------------------------------===//
// Sampling and error measurement
//===----------------------------------------------------------------------===//

SampleSpec improve::SampleSpec::wholeLine() {
  return interval(-std::numeric_limits<double>::max(),
                  std::numeric_limits<double>::max());
}

std::vector<fpcore::DoubleEnv>
improve::samplePoints(const std::vector<std::string> &Params,
                      const std::vector<SampleSpec> &Specs, int Count,
                      Rng &R) {
  assert(Params.size() == Specs.size() && "spec per parameter");
  std::vector<fpcore::DoubleEnv> Points;
  Points.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I) {
    fpcore::DoubleEnv Env;
    for (size_t P = 0; P < Params.size(); ++P) {
      const SampleSpec &Spec = Specs[P];
      assert(!Spec.Intervals.empty() && "empty sample spec");
      auto [Lo, Hi] = Spec.Intervals[R.nextBelow(Spec.Intervals.size())];
      if (std::isnan(Lo) || std::isnan(Hi)) {
        // An unsampleable interval (NaN endpoint) degrades to the
        // whole-line default: NaN sample values would make every
        // candidate's float and real evaluations agree (NaN == NaN at
        // zero bits of error), hiding all error on that variable.
        Lo = -std::numeric_limits<double>::max();
        Hi = std::numeric_limits<double>::max();
      } else if (Lo > Hi) {
        // An inverted interval means swapped endpoints, not the
        // degenerate point Lo; collapsing it would sample one constant
        // and likewise hide all error on that variable.
        std::swap(Lo, Hi);
      }
      Env[Params[P]] = R.betweenOrdinals(Lo, Hi);
    }
    Points.push_back(std::move(Env));
  }
  return Points;
}

double improve::meanErrorBits(const Expr &E,
                              const std::vector<fpcore::DoubleEnv> &Points,
                              size_t PrecBits) {
  if (Points.empty())
    return 0.0;
  double Sum = 0.0;
  for (const fpcore::DoubleEnv &P : Points) {
    double Bits = fpcore::pointErrorBits(E, P, PrecBits);
    // An invalid point must saturate, not poison: one NaN in the sum
    // would make the mean NaN, and every candidate would then compare
    // as "no improvement". 64 bits is the doubles' maximum (Herbie's
    // convention for points a candidate cannot evaluate).
    if (!std::isfinite(Bits))
      Bits = 64.0;
    Sum += Bits;
  }
  return Sum / static_cast<double>(Points.size());
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

bool improve::sameExpr(const Expr &A, const Expr &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Expr::Kind::Num:
    return bitsOfDouble(A.Num) == bitsOfDouble(B.Num);
  case Expr::Kind::Var:
  case Expr::Kind::Const:
    return A.Name == B.Name;
  default:
    break;
  }
  // Binder lists must agree in full -- names, initializer counts, update
  // counts, and sequencing -- before any element is compared; indexing
  // B's vectors over A's sizes would read out of bounds on let/while
  // forms with differing arities.
  if (A.Name != B.Name || A.Args.size() != B.Args.size() ||
      A.Binds != B.Binds || A.Inits.size() != B.Inits.size() ||
      A.Updates.size() != B.Updates.size() || A.Sequential != B.Sequential)
    return false;
  for (size_t I = 0; I < A.Args.size(); ++I)
    if (!sameExpr(*A.Args[I], *B.Args[I]))
      return false;
  for (size_t I = 0; I < A.Inits.size(); ++I)
    if (!sameExpr(*A.Inits[I], *B.Inits[I]))
      return false;
  for (size_t I = 0; I < A.Updates.size(); ++I)
    if (!sameExpr(*A.Updates[I], *B.Updates[I]))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// The rewrite database
//===----------------------------------------------------------------------===//

namespace {

bool isOp(const Expr &E, const char *Name, size_t Arity) {
  return E.K == Expr::Kind::Op && E.Name == Name && E.Args.size() == Arity;
}

bool isNum(const Expr &E, double V) {
  return E.K == Expr::Kind::Num && E.Num == V;
}

ExprPtr op1(const char *N, ExprPtr A) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(A));
  return Expr::op(N, std::move(Args));
}

ExprPtr op2(const char *N, ExprPtr A, ExprPtr B) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(A));
  Args.push_back(std::move(B));
  return Expr::op(N, std::move(Args));
}

/// Emits every known accuracy rewrite of the node E (not recursive).
void nodeRewrites(const Expr &E, std::vector<ExprPtr> &Out) {
  if (E.K != Expr::Kind::Op)
    return;
  auto C = [&](size_t I) { return E.Args[I]->clone(); };

  // Normalization: (+ (- a) b) == (- b a) so the subtraction rules fire.
  if (isOp(E, "+", 2) && isOp(*E.Args[0], "-", 1))
    Out.push_back(op2("-", C(1), E.Args[0]->Args[0]->clone()));

  if (isOp(E, "-", 2)) {
    const Expr &A = *E.Args[0];
    const Expr &B = *E.Args[1];
    // (- (+ a b) a) -> b and (- (+ a b) b) -> a.
    if (isOp(A, "+", 2)) {
      if (sameExpr(*A.Args[0], B))
        Out.push_back(A.Args[1]->clone());
      if (sameExpr(*A.Args[1], B))
        Out.push_back(A.Args[0]->clone());
    }
    // Rationalize: (- a b) -> (/ (- (* a a) (* b b)) (+ a b)).
    Out.push_back(op2("/",
                      op2("-", op2("*", C(0), C(0)), op2("*", C(1), C(1))),
                      op2("+", C(0), C(1))));
    // (- (sqrt a) (sqrt b)) -> (/ (- a b) (+ (sqrt a) (sqrt b))).
    if (isOp(A, "sqrt", 1) && isOp(B, "sqrt", 1))
      Out.push_back(op2("/",
                        op2("-", A.Args[0]->clone(), B.Args[0]->clone()),
                        op2("+", C(0), C(1))));
    // (- (sqrt s) b) -> (/ (- s (* b b)) (+ (sqrt s) b)): keeps the
    // radicand intact so a later structural cancellation can fire (the
    // plotter fix needs exactly this: s = x^2 + y^2, b = x).
    if (isOp(A, "sqrt", 1))
      Out.push_back(op2("/",
                        op2("-", A.Args[0]->clone(), op2("*", C(1), C(1))),
                        op2("+", C(0), C(1))));
    if (isOp(B, "sqrt", 1))
      Out.push_back(op2("/",
                        op2("-", op2("*", C(0), C(0)), B.Args[0]->clone()),
                        op2("+", C(0), C(1))));
    // (- (exp x) 1) -> (expm1 x).
    if (isOp(A, "exp", 1) && isNum(B, 1.0))
      Out.push_back(op1("expm1", A.Args[0]->clone()));
    // (- (exp a) (exp b)) -> (* (exp b) (expm1 (- a b))).
    if (isOp(A, "exp", 1) && isOp(B, "exp", 1))
      Out.push_back(op2("*", B.clone(),
                        op1("expm1", op2("-", A.Args[0]->clone(),
                                         B.Args[0]->clone()))));
    // (- (log a) (log b)) -> (log (/ a b)).
    if (isOp(A, "log", 1) && isOp(B, "log", 1))
      Out.push_back(op1("log", op2("/", A.Args[0]->clone(),
                                   B.Args[0]->clone())));
    // (- 1 (cos x)) -> 2 sin^2(x/2).
    if (isNum(A, 1.0) && isOp(B, "cos", 1)) {
      ExprPtr Half = op2("/", B.Args[0]->clone(), Expr::num(2.0));
      Out.push_back(op2("*", Expr::num(2.0),
                        op2("*", op1("sin", Half->clone()),
                            op1("sin", Half->clone()))));
    }
    // (- 1 (* (cos x) (cos x))) -> (* (sin x) (sin x)).
    if (isNum(A, 1.0) && isOp(B, "*", 2) && isOp(*B.Args[0], "cos", 1) &&
        sameExpr(*B.Args[0], *B.Args[1]))
      Out.push_back(op2("*", op1("sin", B.Args[0]->Args[0]->clone()),
                        op1("sin", B.Args[0]->Args[0]->clone())));
    // (- 1 (* (tanh x) (tanh x))) -> 1 / cosh^2(x).
    if (isNum(A, 1.0) && isOp(B, "*", 2) && isOp(*B.Args[0], "tanh", 1) &&
        sameExpr(*B.Args[0], *B.Args[1])) {
      ExprPtr Cosh = op1("cosh", B.Args[0]->Args[0]->clone());
      Out.push_back(op2("/", Expr::num(1.0),
                        op2("*", Cosh->clone(), Cosh->clone())));
    }
    // (- (cos a) (cos b)) -> -2 sin((a+b)/2) sin((a-b)/2).
    if (isOp(A, "cos", 1) && isOp(B, "cos", 1)) {
      ExprPtr S = op2("/", op2("+", A.Args[0]->clone(), B.Args[0]->clone()),
                      Expr::num(2.0));
      ExprPtr D = op2("/", op2("-", A.Args[0]->clone(), B.Args[0]->clone()),
                      Expr::num(2.0));
      Out.push_back(op2("*", Expr::num(-2.0),
                        op2("*", op1("sin", std::move(S)),
                            op1("sin", std::move(D)))));
    }
    // (- (sin a) (sin b)) -> 2 cos((a+b)/2) sin((a-b)/2).
    if (isOp(A, "sin", 1) && isOp(B, "sin", 1)) {
      ExprPtr S = op2("/", op2("+", A.Args[0]->clone(), B.Args[0]->clone()),
                      Expr::num(2.0));
      ExprPtr D = op2("/", op2("-", A.Args[0]->clone(), B.Args[0]->clone()),
                      Expr::num(2.0));
      Out.push_back(op2("*", Expr::num(2.0),
                        op2("*", op1("cos", std::move(S)),
                            op1("sin", std::move(D)))));
    }
    // (- (tan a) (tan b)) -> sin(a-b) / (cos a cos b).
    if (isOp(A, "tan", 1) && isOp(B, "tan", 1))
      Out.push_back(
          op2("/",
              op1("sin", op2("-", A.Args[0]->clone(), B.Args[0]->clone())),
              op2("*", op1("cos", A.Args[0]->clone()),
                  op1("cos", B.Args[0]->clone()))));
    // (- (atan a) (atan b)) -> atan((a-b) / (1 + a b)).
    if (isOp(A, "atan", 1) && isOp(B, "atan", 1))
      Out.push_back(op1(
          "atan",
          op2("/", op2("-", A.Args[0]->clone(), B.Args[0]->clone()),
              op2("+", Expr::num(1.0),
                  op2("*", A.Args[0]->clone(), B.Args[0]->clone())))));
    // (- (/ 1 a) (/ 1 b)) -> (/ (- b a) (* a b)).
    if (isOp(A, "/", 2) && isNum(*A.Args[0], 1.0) && isOp(B, "/", 2) &&
        isNum(*B.Args[0], 1.0))
      Out.push_back(op2("/",
                        op2("-", B.Args[1]->clone(), A.Args[1]->clone()),
                        op2("*", A.Args[1]->clone(), B.Args[1]->clone())));
    // Generic fraction difference: (- (/ a b) (/ c d)).
    if (isOp(A, "/", 2) && isOp(B, "/", 2))
      Out.push_back(
          op2("/",
              op2("-", op2("*", A.Args[0]->clone(), B.Args[1]->clone()),
                  op2("*", B.Args[0]->clone(), A.Args[1]->clone())),
              op2("*", A.Args[1]->clone(), B.Args[1]->clone())));
  }

  // (log (+ 1 x)) / (log (+ x 1)) -> (log1p x).
  if (isOp(E, "log", 1) && isOp(*E.Args[0], "+", 2)) {
    const Expr &Sum = *E.Args[0];
    if (isNum(*Sum.Args[0], 1.0))
      Out.push_back(op1("log1p", Sum.Args[1]->clone()));
    if (isNum(*Sum.Args[1], 1.0))
      Out.push_back(op1("log1p", Sum.Args[0]->clone()));
  }
  // (log (/ a b)) -> (- (log a) (log b)) [helps when a/b ~ 1 is exact].
  // (sqrt (+ (* x x) (* y y))) -> (hypot x y).
  if (isOp(E, "sqrt", 1) && isOp(*E.Args[0], "+", 2)) {
    const Expr &Sum = *E.Args[0];
    if (isOp(*Sum.Args[0], "*", 2) && isOp(*Sum.Args[1], "*", 2) &&
        sameExpr(*Sum.Args[0]->Args[0], *Sum.Args[0]->Args[1]) &&
        sameExpr(*Sum.Args[1]->Args[0], *Sum.Args[1]->Args[1]))
      Out.push_back(op2("hypot", Sum.Args[0]->Args[0]->clone(),
                        Sum.Args[1]->Args[0]->clone()));
  }
  // (pow (+ 1 t) n) -> (exp (* n (log1p t))).
  if (isOp(E, "pow", 2) && isOp(*E.Args[0], "+", 2)) {
    const Expr &Base = *E.Args[0];
    const Expr *T = nullptr;
    if (isNum(*Base.Args[0], 1.0))
      T = Base.Args[1].get();
    else if (isNum(*Base.Args[1], 1.0))
      T = Base.Args[0].get();
    if (T)
      Out.push_back(op1("exp", op2("*", E.Args[1]->clone(),
                                   op1("log1p", T->clone()))));
  }
  // (/ (- 1 (cos x)) (sin x)) -> (/ (sin x) (+ 1 (cos x))).
  if (isOp(E, "/", 2) && isOp(*E.Args[0], "-", 2) &&
      isNum(*E.Args[0]->Args[0], 1.0) && isOp(*E.Args[0]->Args[1], "cos", 1)
      && isOp(*E.Args[1], "sin", 1) &&
      sameExpr(*E.Args[0]->Args[1]->Args[0], *E.Args[1]->Args[0]))
    Out.push_back(op2("/", E.Args[1]->clone(),
                      op2("+", Expr::num(1.0), E.Args[0]->Args[1]->clone())));
  // (/ (- (exp x) 1) x) -> (/ (expm1 x) x) is covered by the expm1 rule
  // recursing into the numerator.
}

/// Applies F to every subexpression position, collecting whole-tree
/// variants with that position replaced by each rewrite.
void collectRewrites(const Expr &Root, std::vector<ExprPtr> &Out) {
  // Recursive walker that rebuilds the root with one position replaced.
  std::function<void(const Expr &, const std::function<ExprPtr(ExprPtr)> &)>
      Walk = [&](const Expr &E,
                 const std::function<ExprPtr(ExprPtr)> &Rebuild) {
        std::vector<ExprPtr> Local;
        nodeRewrites(E, Local);
        for (ExprPtr &Candidate : Local)
          Out.push_back(Rebuild(std::move(Candidate)));
        // Recurse into operator/if arguments (lets and whiles are kept
        // opaque: Herbgrind's extracted fragments never contain them).
        if (E.K != Expr::Kind::Op && E.K != Expr::Kind::If)
          return;
        for (size_t I = 0; I < E.Args.size(); ++I) {
          auto RebuildChild = [&, I](ExprPtr NewChild) {
            ExprPtr Copy = E.clone();
            Copy->Args[I] = std::move(NewChild);
            return Rebuild(std::move(Copy));
          };
          Walk(*E.Args[I], RebuildChild);
        }
      };
  Walk(Root, [](ExprPtr E) { return E; });
}

} // namespace

std::vector<ExprPtr> improve::rewriteCandidates(const Expr &E) {
  std::vector<ExprPtr> Out;
  collectRewrites(E, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// The search
//===----------------------------------------------------------------------===//

ImproveResult improve::improveExpr(const Expr &E,
                                   const std::vector<std::string> &Params,
                                   const std::vector<SampleSpec> &Specs,
                                   const ImproveConfig &Cfg) {
  Rng R(Cfg.Seed);
  std::vector<fpcore::DoubleEnv> Points =
      samplePoints(Params, Specs, Cfg.SampleCount, R);

  ImproveResult Result;
  Result.ErrorBefore = meanErrorBits(E, Points, Cfg.PrecBits);
  Result.HadSignificantError = Result.ErrorBefore > Cfg.SignificantErrorBits;

  ExprPtr Best = E.clone();
  double BestErr = Result.ErrorBefore;

  for (int Round = 0; Round < Cfg.MaxRounds; ++Round) {
    std::vector<ExprPtr> Candidates = rewriteCandidates(*Best);
    // Regime splitting: for each variable, try switching between the
    // original and each candidate on the variable's sign (the paper's
    // plotter fix has exactly this shape).
    size_t PlainCount = Candidates.size();
    for (size_t I = 0; I < PlainCount; ++I) {
      for (const std::string &P : Params) {
        std::vector<ExprPtr> IfArgs;
        IfArgs.push_back(op2("<=", Expr::var(P), Expr::num(0.0)));
        auto If = std::make_unique<Expr>();
        If->K = Expr::Kind::If;
        If->Args.push_back(std::move(IfArgs[0]));
        If->Args.push_back(Best->clone());
        If->Args.push_back(Candidates[I]->clone());
        Candidates.push_back(std::move(If));
      }
    }

    bool ImprovedThisRound = false;
    for (ExprPtr &Candidate : Candidates) {
      double Err = meanErrorBits(*Candidate, Points, Cfg.PrecBits);
      if (Err < BestErr - 1e-9) {
        BestErr = Err;
        Best = std::move(Candidate);
        ImprovedThisRound = true;
      }
    }
    if (!ImprovedThisRound)
      break;
  }

  Result.ErrorAfter = BestErr;
  Result.Improved =
      Result.ErrorBefore - Result.ErrorAfter >= Cfg.MinImprovementBits;
  Result.Best = std::move(Best);
  return Result;
}

//===----------------------------------------------------------------------===//
// Bridging from Herbgrind records
//===----------------------------------------------------------------------===//

ExprPtr improve::fromSymExpr(const SymExpr &S) {
  switch (S.Kind) {
  case SymExpr::SEKind::Var:
    return Expr::var(SymExpr::varName(S.VarIdx));
  case SymExpr::SEKind::Const:
    return Expr::num(S.ConstVal);
  case SymExpr::SEKind::Op:
    break;
  }
  // Float-to-float casts are the identity over the reals.
  if (S.Op == Opcode::F64toF32 || S.Op == Opcode::F32toF64)
    return fromSymExpr(*S.Kids[0]);
  const OpInfo &Info = opInfo(S.Op);
  assert(Info.FPCoreName && "symbolic expression with unprintable op");
  std::vector<ExprPtr> Args;
  for (const auto &Kid : S.Kids)
    Args.push_back(fromSymExpr(*Kid));
  return Expr::op(Info.FPCoreName, std::move(Args));
}

/// Appends [Lo, Hi] to \p S normalized: endpoints swapped into order and
/// NaN endpoints dropped (a summary carrying NaN bounds describes no
/// sampleable range). Returns false when the interval was dropped.
static bool pushInterval(SampleSpec &S, double Lo, double Hi) {
  if (std::isnan(Lo) || std::isnan(Hi))
    return false;
  if (Lo > Hi)
    std::swap(Lo, Hi);
  S.Intervals.push_back({Lo, Hi});
  return true;
}

std::vector<SampleSpec>
improve::specsFromCharacteristics(const InputCharacteristics &Chars,
                                  uint32_t NumVars, RangeMode Mode) {
  std::vector<SampleSpec> Specs;
  for (uint32_t I = 0; I < NumVars; ++I) {
    if (Mode == RangeMode::Off || I >= Chars.Vars.size() ||
        !Chars.Vars[I].HasRange) {
      Specs.push_back(SampleSpec::wholeLine());
      continue;
    }
    const VarSummary &V = Chars.Vars[I];
    if (Mode == RangeMode::Single) {
      SampleSpec S;
      if (!pushInterval(S, V.Lo, V.Hi))
        S = SampleSpec::wholeLine();
      Specs.push_back(std::move(S));
      continue;
    }
    SampleSpec S;
    bool Dropped = false;
    if (V.HasNeg)
      Dropped |= !pushInterval(S, V.NegLo, V.NegHi);
    if (V.HasPos)
      Dropped |= !pushInterval(S, V.PosLo, V.PosHi);
    if (V.SawZero)
      S.Intervals.push_back({0.0, 0.0});
    // Nothing sampleable left: if a NaN-bounded subrange was dropped,
    // degrade to the whole line (like Single mode) -- falling back to
    // the point {0, 0} would collapse every sample to one constant and
    // hide all error on the variable.
    if (S.Intervals.empty())
      S = Dropped ? SampleSpec::wholeLine() : SampleSpec::interval(0.0, 0.0);
    Specs.push_back(std::move(S));
  }
  return Specs;
}
