//===- improve/BatchImprove.cpp - Corpus-wide repair pass -----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "improve/BatchImprove.h"

#include "engine/ResultCache.h"
#include "engine/ThreadPool.h"
#include "inputs/InputSummary.h"
#include "support/Events.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <set>

using namespace herbgrind;
using namespace herbgrind::improve;

std::string improve::improveConfigHash(const ImproveConfig &Cfg) {
  // A canonical description of every knob that can change an outcome;
  // doubles print shortest-round-trip so distinct values never collapse.
  // It doubles as the validation string stored in improve documents, so
  // readability beats opacity.
  return format("improve-v1|samples=%d|prec=%zu|seed=%llu|minImp=%s|sig=%s|"
                "rounds=%d",
                Cfg.SampleCount, Cfg.PrecBits,
                static_cast<unsigned long long>(Cfg.Seed),
                formatDoubleShortest(Cfg.MinImprovementBits).c_str(),
                formatDoubleShortest(Cfg.SignificantErrorBits).c_str(),
                Cfg.MaxRounds);
}

std::string improve::specIdentity(const std::vector<SampleSpec> &Specs) {
  std::string Out;
  for (const SampleSpec &S : Specs) {
    if (!Out.empty())
      Out += ";";
    for (const auto &[Lo, Hi] : S.Intervals)
      Out += format("[%s,%s]", formatDoubleShortest(Lo).c_str(),
                    formatDoubleShortest(Hi).c_str());
  }
  return Out;
}

namespace {

/// One unit of parallel work: improve one root-cause record. Slot is the
/// record's position in its benchmark's (pc-ascending) result vector, so
/// completion order never matters.
struct RepairTask {
  size_t Bench = 0;
  uint32_t PC = 0;
  size_t Slot = 0;
};

} // namespace

BatchImproveStats improve::batchImprove(engine::BatchResult &Batch,
                                        const BatchImproveConfig &Cfg,
                                        engine::ResultCache *Cache) {
  auto Start = std::chrono::steady_clock::now();
  BatchImproveStats Stats;

  static metrics::Counter MAnalyzed =
      metrics::counter("improve.records_analyzed");
  static metrics::Counter MCached = metrics::counter("improve.records_cached");
  static metrics::Timer TRecord = metrics::timer("improve.record_ns");
  static metrics::Timer TBatch = metrics::timer("improve.batch_ns");
  metrics::ScopedTimer BatchTimer(TBatch);
  trace::Span BatchSpan("improve.batch", "improve");

  // Phase 1 (serial, cheap): enumerate the qualifying records -- every
  // distinct root cause the report presents whose merged OpRecord still
  // carries a symbolic expression -- in deterministic identity order
  // (benchmark order, ascending pc).
  std::vector<RepairTask> Tasks;
  std::vector<std::vector<ImproveRecord>> Results(Batch.Benchmarks.size());
  for (size_t B = 0; B < Batch.Benchmarks.size(); ++B) {
    const engine::BenchmarkResult &BR = Batch.Benchmarks[B];
    std::set<uint32_t> PCs;
    for (const RootCauseReport &RC : BR.Rep.allRootCauses()) {
      auto It = BR.Records.Ops.find(RC.PC);
      if (It != BR.Records.Ops.end() && It->second.Expr)
        PCs.insert(RC.PC);
    }
    Results[B].resize(PCs.size());
    size_t Slot = 0;
    for (uint32_t PC : PCs)
      Tasks.push_back({B, PC, Slot++});
    if (!PCs.empty())
      ++Stats.Benchmarks;
  }
  Stats.Candidates = Tasks.size();

  // Phase 2 (parallel): each record's improver run is independent and
  // fully determined by (expression, specs, improver config), so workers
  // just fill their task's slot; no reduction order to maintain.
  std::atomic<uint64_t> Analyzed{0}, Cached{0};
  {
    unsigned Jobs = Cfg.Jobs;
    if (Jobs == 0) {
      Jobs = std::thread::hardware_concurrency();
      if (Jobs == 0)
        Jobs = 1;
    }
    Jobs = std::min(Jobs, 256u);
    std::string ImproveHash = improveConfigHash(Cfg.Improve);
    engine::ThreadPool Pool(Jobs);
    for (const RepairTask &T : Tasks) {
      Pool.submit([&Batch, &Results, &Cfg, &ImproveHash, &Analyzed, &Cached,
                   Cache, T] {
        const engine::BenchmarkResult &BR = Batch.Benchmarks[T.Bench];
        trace::Span RecordSpan(
            "improve.record", "improve",
            trace::enabled()
                ? format("{\"bench\":%zu,\"pc\":%u}", T.Bench, T.PC)
                : std::string());
        metrics::ScopedTimer RecordTimer(TRecord);
        const OpRecord &Rec = BR.Records.Ops.at(T.PC);
        fpcore::ExprPtr Frag = fromSymExpr(*Rec.Expr);
        uint32_t NumVars = Rec.Expr->numVars();
        // Sample from the problematic-input characteristics when the
        // analysis recorded any (Section 4.4): that focuses the improver
        // on the regime that actually misbehaves.
        const InputCharacteristics &Chars = Rec.ProblematicInputs.Vars.empty()
                                                ? Rec.TotalInputs
                                                : Rec.ProblematicInputs;
        std::vector<SampleSpec> Specs =
            specsFromCharacteristics(Chars, NumVars, BR.Records.Ranges);

        std::string Printed = Frag->print();
        ImproveRecord IR;
        engine::ResultCache::ImproveKey Key;
        if (Cache) {
          Key.ExprIdentity = Printed;
          Key.SpecIdentity = specIdentity(Specs);
          Key.ImproveHash = ImproveHash;
        }
        if (Cache && Cache->lookupImprove(Key, IR)) {
          ++Cached;
          MCached.add(1);
        } else {
          std::vector<std::string> Params;
          for (uint32_t V = 0; V < NumVars; ++V)
            Params.push_back(SymExpr::varName(V));
          ImproveResult Fix =
              improveExpr(*Frag, Params, Specs, Cfg.Improve);
          IR.Original = std::move(Printed);
          IR.Rewritten = Fix.Improved && Fix.Best ? Fix.Best->print() : "";
          IR.ErrorBefore = Fix.ErrorBefore;
          IR.ErrorAfter = Fix.ErrorAfter;
          IR.HadSignificantError = Fix.HadSignificantError;
          IR.Improved = Fix.Improved;
          ++Analyzed;
          MAnalyzed.add(1);
          if (Cache)
            Cache->storeImprove(Key, IR);
        }
        IR.PC = T.PC; // identity is the caller's, never the cache's
        if (events::enabled())
          events::emit("improve.record_done",
                       format("\"bench\":%zu,\"pc\":%u,\"improved\":%s",
                              T.Bench, T.PC, IR.Improved ? "true" : "false"));
        Results[T.Bench][T.Slot] = std::move(IR);
      });
    }
    Pool.waitAll();
    engine::ThreadPool::PoolStats PS = Pool.stats();
    metrics::counter("pool.tasks_submitted").add(PS.Submitted);
    metrics::counter("pool.tasks_executed").add(PS.Executed);
    metrics::counter("pool.steals").add(PS.Steals);
    metrics::gauge("pool.max_queue_depth")
        .set(static_cast<int64_t>(PS.MaxQueueDepth));
  }

  // Phase 3 (serial, cheap): attach the outcomes -- already in ascending
  // pc order by construction -- and collect statistics.
  for (size_t B = 0; B < Batch.Benchmarks.size(); ++B) {
    for (const ImproveRecord &IR : Results[B]) {
      Stats.Significant += IR.HadSignificantError ? 1 : 0;
      Stats.Improved += IR.Improved ? 1 : 0;
    }
    Batch.Benchmarks[B].Rep.Improvements = std::move(Results[B]);
  }
  Stats.AnalyzedRecords = Analyzed.load();
  Stats.CachedRecords = Cached.load();
  Stats.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Stats;
}
