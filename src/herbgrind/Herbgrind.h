//===- herbgrind/Herbgrind.h - Public umbrella header -----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public API of herbgrind-cpp in one include:
///
/// \code
///   ProgramBuilder B;
///   auto X = B.input(0);
///   auto One = B.constF64(1.0);
///   auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, One), X);
///   B.out(T);
///   B.halt();
///   Program P = B.finish();
///
///   Herbgrind HG(P);
///   HG.runOnInput({1e16});
///   Report R = buildReport(HG);
///   puts(R.render().c_str());
/// \endcode
///
/// See DESIGN.md for the system inventory and the paper mapping.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_HERBGRIND_H
#define HERBGRIND_HERBGRIND_H

#include "analysis/Analysis.h"
#include "analysis/Report.h"
#include "ir/Interpreter.h"
#include "ir/LibmLowering.h"
#include "ir/Program.h"

#endif // HERBGRIND_HERBGRIND_H
