//===- herbgrind/Herbgrind.h - Public umbrella header -----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public API of herbgrind-cpp in one include.
///
/// The native frontend: analyze actual C++ code by swapping `double` for
/// the drop-in type,
///
/// \code
///   native::Context C;
///   native::Real X = C.input(0, 1e16);
///   HG_LOC(C);
///   native::Real T = (X + 1.0) - X;
///   C.output(T);
///   puts(buildReport(C).render().c_str());
/// \endcode
///
/// or build the abstract-machine IR directly (quickstart.cpp walks
/// through this form):
///
/// \code
///   ProgramBuilder B;
///   auto X = B.input(0);
///   auto One = B.constF64(1.0);
///   auto T = B.op(Opcode::SubF64, B.op(Opcode::AddF64, X, One), X);
///   B.out(T);
///   B.halt();
///   Program P = B.finish();
///
///   Herbgrind HG(P);
///   HG.runOnInput({1e16});
///   Report R = buildReport(HG);
///   puts(R.render().c_str());
/// \endcode
///
/// Batch workflows (engine sweeps, wire-format serialization, result
/// caching, the corpus-wide improver) are included too -- this header is
/// the whole public surface. See docs/ARCHITECTURE.md for the system
/// inventory and the paper mapping.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_HERBGRIND_H
#define HERBGRIND_HERBGRIND_H

#include "analysis/Analysis.h"
#include "analysis/OpProfile.h"
#include "analysis/Report.h"
#include "analysis/Serialize.h"
#include "engine/Engine.h"
#include "engine/ResultCache.h"
#include "fpcore/Corpus.h"
#include "improve/BatchImprove.h"
#include "improve/Improve.h"
#include "ir/Interpreter.h"
#include "ir/LibmLowering.h"
#include "ir/Program.h"
#include "native/Context.h"
#include "native/Kernel.h"
#include "native/Real.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#endif // HERBGRIND_HERBGRIND_H
