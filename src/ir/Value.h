//===- ir/Value.h - Runtime values of the abstract machine ------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged runtime values for the abstract float machine: scalar doubles,
/// floats and 64-bit integers, plus 128-bit SIMD vectors (2 x f64 or
/// 4 x f32), mirroring the VEX value universe the paper's implementation
/// sits on (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_VALUE_H
#define HERBGRIND_IR_VALUE_H

#include "support/FloatBits.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

namespace herbgrind {

/// The type of a runtime value (and of temporaries, when the static type
/// analysis can pin one down).
enum class ValueType : uint8_t {
  Unknown, ///< No information (bottom of the type lattice).
  I64,
  F64,
  F32,
  V2F64, ///< 128-bit vector of two doubles.
  V4F32, ///< 128-bit vector of four floats.
  Conflict, ///< Different types at different times (top of the lattice).
};

const char *valueTypeName(ValueType Ty);

/// A tagged machine value.
struct Value {
  ValueType Ty = ValueType::Unknown;
  union {
    int64_t I64;
    double F64;
    float F32;
    double V2F64[2];
    float V4F32[4];
    uint8_t Bytes[16];
  };

  Value() : I64(0) {}

  static Value ofI64(int64_t X) {
    Value V;
    V.Ty = ValueType::I64;
    V.I64 = X;
    return V;
  }
  static Value ofF64(double X) {
    Value V;
    V.Ty = ValueType::F64;
    V.F64 = X;
    return V;
  }
  static Value ofF32(float X) {
    Value V;
    V.Ty = ValueType::F32;
    V.F32 = X;
    return V;
  }
  static Value ofV2F64(double A, double B) {
    Value V;
    V.Ty = ValueType::V2F64;
    V.V2F64[0] = A;
    V.V2F64[1] = B;
    return V;
  }
  static Value ofV4F32(float A, float B, float C, float D) {
    Value V;
    V.Ty = ValueType::V4F32;
    V.V4F32[0] = A;
    V.V4F32[1] = B;
    V.V4F32[2] = C;
    V.V4F32[3] = D;
    return V;
  }

  int64_t asI64() const {
    assert(Ty == ValueType::I64 && "value is not an i64");
    return I64;
  }
  double asF64() const {
    assert(Ty == ValueType::F64 && "value is not an f64");
    return F64;
  }
  float asF32() const {
    assert(Ty == ValueType::F32 && "value is not an f32");
    return F32;
  }

  /// Number of bytes this value occupies in untyped storage.
  unsigned byteSize() const {
    switch (Ty) {
    case ValueType::F32:
      return 4;
    case ValueType::I64:
    case ValueType::F64:
      return 8;
    case ValueType::V2F64:
    case ValueType::V4F32:
      return 16;
    case ValueType::Unknown:
    case ValueType::Conflict:
      break;
    }
    assert(false && "sizeless value type");
    return 0;
  }

  /// Number of scalar lanes (1 for scalars).
  unsigned laneCount() const {
    switch (Ty) {
    case ValueType::V2F64:
      return 2;
    case ValueType::V4F32:
      return 4;
    default:
      return 1;
    }
  }

  std::string str() const;
};

/// Joins two lattice types: Unknown is identity, mismatches go to Conflict.
inline ValueType joinTypes(ValueType A, ValueType B) {
  if (A == ValueType::Unknown)
    return B;
  if (B == ValueType::Unknown)
    return A;
  if (A == B)
    return A;
  return ValueType::Conflict;
}

} // namespace herbgrind

#endif // HERBGRIND_IR_VALUE_H
