//===- ir/LibmLowering.h - Inline libm internals into IR --------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate for the Section 8.2 "library wrapping" ablation. With
/// wrapping ON, the analysis intercepts library-call opcodes (exp, log,
/// sin, ...) as atomic operations with exact shadow-real semantics. With
/// wrapping OFF, this pass first rewrites each library call into the kind
/// of bit-twiddling implementation a real libm contains: Cody-Waite style
/// argument reduction with rounding-trick magic constants (the paper's
/// leaked 6.755399e15), exponent-field surgery through integer ops, and
/// polynomial kernels. The analysis then sees hundreds of primitive ops
/// per call, mis-measures the "exact" value of precision-specific tricks,
/// and reports enormous symbolic expressions -- exactly the failure mode
/// the paper's ablation documents.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_LIBMLOWERING_H
#define HERBGRIND_IR_LIBMLOWERING_H

#include "ir/Program.h"

namespace herbgrind {

/// True if lowerLibraryCalls knows how to inline this opcode. (asin, acos,
/// atan, atan2 and fmod stay wrapped even in unwrapped mode; real tools hit
/// the same limits for functions whose kernels branch heavily.)
bool canLowerLibCall(Opcode Op);

/// Rewrites every lowerable library-call statement into its inline
/// implementation; other statements are preserved (temp ids stay valid,
/// control-flow targets are re-mapped).
Program lowerLibraryCalls(const Program &P);

} // namespace herbgrind

#endif // HERBGRIND_IR_LIBMLOWERING_H
