//===- ir/Opcode.h - Operations of the abstract machine ---------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operation vocabulary of the abstract float machine: hardware-style
/// scalar and SIMD float arithmetic, libm-style library calls (which the
/// analysis can either wrap as atomic ops or lower into their bit-level
/// implementations, Section 5.3 / 8.2), comparisons, conversions, and the
/// integer/bitwise ops client programs use for loop counters and float bit
/// tricks.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_OPCODE_H
#define HERBGRIND_IR_OPCODE_H

#include "ir/Value.h"

#include <cstdint>

namespace herbgrind {

enum class Opcode : uint8_t {
  // Scalar f64 arithmetic (hardware instructions).
  AddF64,
  SubF64,
  MulF64,
  DivF64,
  SqrtF64,
  NegF64,
  AbsF64,
  MinF64,
  MaxF64,
  FmaF64,
  CopySignF64,

  // Scalar f32 arithmetic.
  AddF32,
  SubF32,
  MulF32,
  DivF32,
  SqrtF32,
  NegF32,
  AbsF32,

  // Library calls on f64 (wrappable, Section 5.3).
  ExpF64,
  Exp2F64,
  Expm1F64,
  LogF64,
  Log2F64,
  Log10F64,
  Log1pF64,
  SinF64,
  CosF64,
  TanF64,
  AsinF64,
  AcosF64,
  AtanF64,
  Atan2F64,
  SinhF64,
  CoshF64,
  TanhF64,
  PowF64,
  CbrtF64,
  HypotF64,
  FmodF64,

  // Exact f64 roundings (hardware-ish, never erroneous by themselves).
  FloorF64,
  CeilF64,
  RoundF64,
  TruncF64,

  // Comparisons: f64/f32 inputs, i64 {0,1} result. These are the
  // float-to-discrete boundary, i.e. spots (Section 4.2).
  CmpLTF64,
  CmpLEF64,
  CmpEQF64,
  CmpNEF64,
  CmpGTF64,
  CmpGEF64,
  CmpLTF32,
  CmpEQF32,

  // Conversions.
  F64toF32,
  F32toF64,
  F64toI64, ///< Truncating conversion: a spot (Section 4.2).
  I64toF64,
  F64BitsToI64, ///< Reinterpret, used by bit-trick code.
  I64BitsToF64,

  // Integer / bitwise.
  AddI64,
  SubI64,
  MulI64,
  AndI64,
  OrI64,
  XorI64,
  ShlI64,
  ShrI64, ///< Logical shift right.
  SarI64, ///< Arithmetic shift right.
  NotI64,
  NegI64,
  CmpLTI64,
  CmpLEI64,
  CmpEQI64,
  CmpNEI64,

  // SIMD packed f64 (SSE-style, 2 lanes).
  AddV2F64,
  SubV2F64,
  MulV2F64,
  DivV2F64,
  SqrtV2F64,
  // SIMD packed f32 (4 lanes).
  AddV4F32,
  SubV4F32,
  MulV4F32,
  DivV4F32,

  // Bitwise ops on 128-bit vectors: gcc-style sign-flip / abs masks
  // (Section 5.3 "bitwise operations").
  XorV128,
  AndV128,

  // Lane shuffles.
  ExtractLaneF64, ///< (vector, lane-const-i64) -> f64
  ExtractLaneF32,
  BuildV2F64, ///< (f64, f64) -> vector

  NumOpcodes
};

/// Static metadata about an opcode.
struct OpInfo {
  const char *Name;       ///< IR mnemonic, e.g. "add.f64".
  const char *FPCoreName; ///< Operator name in FPCore output, or nullptr.
  uint8_t Arity;
  ValueType ResultTy;
  ValueType OperandTy; ///< Uniform operand type (exceptions documented).
  bool IsFloatOp;      ///< Produces a float result the analysis shadows.
  bool IsLibCall;      ///< Wrappable library call (Section 5.3).
  bool IsComparison;   ///< Float-to-discrete boundary: a spot.
  bool IsSIMD;
};

/// Metadata accessor (constant-time table lookup).
const OpInfo &opInfo(Opcode Op);

/// Scalar evaluation of a pure scalar float/int op on machine values.
/// SIMD ops are evaluated per-lane by the interpreter, using the scalar
/// opcode from simdScalarOp().
Value evalScalarOp(Opcode Op, const Value *Args, unsigned NumArgs);

/// For a SIMD opcode, the scalar opcode applied per lane.
Opcode simdScalarOp(Opcode Op);

} // namespace herbgrind

#endif // HERBGRIND_IR_OPCODE_H
