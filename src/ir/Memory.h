//===- ir/Memory.h - Untyped byte-addressed machine memory ------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract machine's memory: a sparse, untyped array of bytes (like a
/// real process address space seen through Valgrind). Client programs store
/// floats, integers and SIMD vectors here; shadowing is handled separately
/// (and lazily) by the analysis layer, as in Section 5.2.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_MEMORY_H
#define HERBGRIND_IR_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace herbgrind {

/// Sparse byte memory backed by 4 KiB pages. Reads of never-written bytes
/// return zero, like fresh anonymous pages.
class ByteMemory {
public:
  static const uint64_t PageSize = 4096;

  void read(uint64_t Addr, void *Out, unsigned Size) const {
    uint8_t *Dst = static_cast<uint8_t *>(Out);
    for (unsigned I = 0; I < Size;) {
      uint64_t PageIdx = (Addr + I) / PageSize;
      uint64_t Off = (Addr + I) % PageSize;
      unsigned Chunk = static_cast<unsigned>(
          std::min<uint64_t>(Size - I, PageSize - Off));
      auto It = Pages.find(PageIdx);
      if (It == Pages.end())
        std::memset(Dst + I, 0, Chunk);
      else
        std::memcpy(Dst + I, It->second->data() + Off, Chunk);
      I += Chunk;
    }
  }

  void write(uint64_t Addr, const void *In, unsigned Size) {
    const uint8_t *Src = static_cast<const uint8_t *>(In);
    for (unsigned I = 0; I < Size;) {
      uint64_t PageIdx = (Addr + I) / PageSize;
      uint64_t Off = (Addr + I) % PageSize;
      unsigned Chunk = static_cast<unsigned>(
          std::min<uint64_t>(Size - I, PageSize - Off));
      Page &P = pageFor(PageIdx);
      std::memcpy(P.data() + Off, Src + I, Chunk);
      I += Chunk;
    }
  }

  void clear() { Pages.clear(); }

private:
  using Page = std::array<uint8_t, PageSize>;

  Page &pageFor(uint64_t PageIdx) {
    std::unique_ptr<Page> &Slot = Pages[PageIdx];
    if (!Slot) {
      Slot = std::make_unique<Page>();
      Slot->fill(0);
    }
    return *Slot;
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
};

} // namespace herbgrind

#endif // HERBGRIND_IR_MEMORY_H
