//===- ir/LibmLowering.cpp - Inline libm internals into IR ----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The inline kernels below follow the classic fdlibm/musl shapes: the
// round-to-int trick through the magic constant 1.5*2^52 = 6755399441055744
// (the 6.755399e15 the paper observes leaking into expressions), Cody-Waite
// split-constant argument reduction, exponent-field surgery through integer
// bit operations, and Horner polynomial kernels. Accuracy is 1-2 ulps for
// arguments of moderate magnitude, like a real libm fast path; the point is
// to present realistic instruction soup to the analysis when wrapping is
// disabled.
//
//===----------------------------------------------------------------------===//

#include "ir/LibmLowering.h"

#include <cassert>
#include <initializer_list>

using namespace herbgrind;

namespace {

using Temp = ProgramBuilder::Temp;

/// The round-to-nearest-integer bit trick constant: 1.5 * 2^52.
const double MagicRound = 6755399441055744.0;
const double InvLn2 = 1.4426950408889634;
const double Ln2Hi = 6.93147180369123816490e-01;
const double Ln2Lo = 1.90821492927058770002e-10;
const double TwoOverPi = 6.36619772367581382433e-01;
const double PiO2Hi = 1.57079632673412561417e+00;
const double PiO2Mid = 6.07710050650619224932e-11;
const double PiO2Lo = 2.02226624879595063154e-21;
const int64_t BitsOfSqrtHalf = 0x3FE6A09E667F3BCDLL;
const int64_t Mask52 = (1LL << 52) - 1;

/// Emits the machinery for one lowered call; shares small helpers.
class Lowerer {
public:
  Lowerer(ProgramBuilder &B) : B(B) {}

  Temp f(double C) { return B.constF64(C); }
  Temp i(int64_t C) { return B.constI64(C); }
  Temp add(Temp A, Temp C) { return B.op(Opcode::AddF64, A, C); }
  Temp sub(Temp A, Temp C) { return B.op(Opcode::SubF64, A, C); }
  Temp mul(Temp A, Temp C) { return B.op(Opcode::MulF64, A, C); }
  Temp div(Temp A, Temp C) { return B.op(Opcode::DivF64, A, C); }
  Temp neg(Temp A) { return B.op(Opcode::NegF64, A); }

  /// k = round-to-nearest(X * Scale) as a double, via the magic-add trick.
  Temp roundScaled(Temp X, double Scale) {
    Temp Magic = f(MagicRound);
    Temp T = add(mul(X, f(Scale)), Magic);
    return sub(T, Magic);
  }

  /// Horner evaluation: Coeffs are highest-degree first; result is
  /// Coeffs[0]*X^(n-1) + ... + Coeffs[n-1].
  Temp horner(Temp X, std::initializer_list<double> Coeffs) {
    auto It = Coeffs.begin();
    Temp Acc = f(*It++);
    for (; It != Coeffs.end(); ++It)
      Acc = add(mul(Acc, X), f(*It));
    return Acc;
  }

  /// exp(X) for moderate |X|: reduction + degree-14 kernel + 2^k scaling.
  Temp expCore(Temp X) {
    Temp K = roundScaled(X, InvLn2);
    Temp Hi = sub(X, mul(K, f(Ln2Hi)));
    Temp R = sub(Hi, mul(K, f(Ln2Lo)));
    Temp P = horner(R, {1.0 / 87178291200.0, 1.0 / 6227020800.0,
                        1.0 / 479001600.0, 1.0 / 39916800.0, 1.0 / 3628800.0,
                        1.0 / 362880.0, 1.0 / 40320.0, 1.0 / 5040.0,
                        1.0 / 720.0, 1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5,
                        1.0, 1.0});
    // Scale by 2^k assembled directly in the exponent field.
    Temp KI = B.op(Opcode::F64toI64, K);
    Temp Bits = B.op(Opcode::ShlI64, B.op(Opcode::AddI64, KI, i(1023)),
                     i(52));
    Temp TwoK = B.op(Opcode::I64BitsToF64, Bits);
    return mul(P, TwoK);
  }

  /// log(X) for normal positive X: exponent surgery + atanh kernel.
  Temp logCore(Temp X) {
    Temp Bits = B.op(Opcode::F64BitsToI64, X);
    Temp Adj = B.op(Opcode::SubI64, Bits, i(BitsOfSqrtHalf));
    Temp E = B.op(Opcode::SarI64, Adj, i(52));
    Temp MBits = B.op(Opcode::AddI64, B.op(Opcode::AndI64, Adj, i(Mask52)),
                      i(BitsOfSqrtHalf));
    Temp M = B.op(Opcode::I64BitsToF64, MBits); // in [sqrt(1/2), sqrt(2))
    Temp F = sub(M, f(1.0));
    Temp S = div(F, add(f(2.0), F));
    Temp Z = mul(S, S);
    // ln(M) = S * (2 + z*(2/3 + z*(2/5 + ...))).
    Temp Poly = horner(Z, {2.0 / 21.0, 2.0 / 19.0, 2.0 / 17.0, 2.0 / 15.0,
                           2.0 / 13.0, 2.0 / 11.0, 2.0 / 9.0, 2.0 / 7.0,
                           2.0 / 5.0, 2.0 / 3.0, 2.0});
    Temp LnM = mul(S, Poly);
    Temp EF = B.op(Opcode::I64toF64, E);
    return add(mul(EF, f(Ln2Hi)), add(LnM, mul(EF, f(Ln2Lo))));
  }

  struct SinCos {
    Temp SinR, CosR, Quadrant;
  };

  /// Cody-Waite reduction (valid for moderate |X|) plus both kernels.
  SinCos sinCosCore(Temp X) {
    Temp K = roundScaled(X, TwoOverPi);
    Temp R0 = sub(X, mul(K, f(PiO2Hi)));
    Temp R1 = sub(R0, mul(K, f(PiO2Mid)));
    Temp R = sub(R1, mul(K, f(PiO2Lo)));
    Temp R2 = mul(R, R);
    // sin(r) = r + r^3 * P(r^2).
    Temp SinPoly =
        horner(R2, {1.0 / 1307674368000.0, -1.0 / 6227020800.0,
                    1.0 / 39916800.0, -1.0 / 362880.0, 1.0 / 5040.0,
                    -1.0 / 120.0, 1.0 / 6.0});
    Temp SinR = sub(mul(R, f(1.0)),
                    mul(mul(R, R2), SinPoly)); // r - r*r2*P (P has +1/6 sign)
    // Fix sign convention: sin(r) = r - r^3/6 + r^5/120 - ...; our P(r^2)
    // above alternates starting at +1/6 for the r^3 term, so subtracting
    // r*r2*P yields the right series.
    Temp CosPoly = horner(
        R2, {1.0 / 87178291200.0, -1.0 / 479001600.0, 1.0 / 3628800.0,
             -1.0 / 40320.0, 1.0 / 720.0, -1.0 / 24.0, 0.5});
    Temp CosR = sub(f(1.0), mul(R2, CosPoly));
    Temp KI = B.op(Opcode::F64toI64, K);
    Temp Q = B.op(Opcode::AndI64, KI, i(3));
    return {SinR, CosR, Q};
  }

  /// Four-way quadrant dispatch writing into Dst.
  void selectQuadrant(Temp Q, Temp Dst, Temp V0, Temp V1, Temp V2, Temp V3) {
    ProgramBuilder::Label L1 = B.newLabel();
    ProgramBuilder::Label L2 = B.newLabel();
    ProgramBuilder::Label L3 = B.newLabel();
    ProgramBuilder::Label End = B.newLabel();
    B.branchIf(B.op(Opcode::CmpEQI64, Q, i(1)), L1);
    B.branchIf(B.op(Opcode::CmpEQI64, Q, i(2)), L2);
    B.branchIf(B.op(Opcode::CmpEQI64, Q, i(3)), L3);
    B.copyTo(Dst, V0);
    B.jump(End);
    B.bind(L1);
    B.copyTo(Dst, V1);
    B.jump(End);
    B.bind(L2);
    B.copyTo(Dst, V2);
    B.jump(End);
    B.bind(L3);
    B.copyTo(Dst, V3);
    B.bind(End);
  }

  ProgramBuilder &B;
};

} // namespace

bool herbgrind::canLowerLibCall(Opcode Op) {
  switch (Op) {
  case Opcode::ExpF64:
  case Opcode::Exp2F64:
  case Opcode::Expm1F64:
  case Opcode::LogF64:
  case Opcode::Log2F64:
  case Opcode::Log10F64:
  case Opcode::Log1pF64:
  case Opcode::SinF64:
  case Opcode::CosF64:
  case Opcode::TanF64:
  case Opcode::SinhF64:
  case Opcode::CoshF64:
  case Opcode::TanhF64:
  case Opcode::PowF64:
  case Opcode::CbrtF64:
  case Opcode::HypotF64:
    return true;
  default:
    return false;
  }
}

/// Emits the inline implementation of one library call, leaving the result
/// in S.Dst.
static void lowerOneCall(ProgramBuilder &B, const Statement &S) {
  Lowerer L(B);
  Temp X = S.Args[0];
  Temp Result = 0;
  switch (S.Op) {
  case Opcode::ExpF64:
    Result = L.expCore(X);
    break;
  case Opcode::Exp2F64:
    Result = L.expCore(L.mul(X, L.f(6.93147180559945286227e-01)));
    break;
  case Opcode::Expm1F64:
    Result = L.sub(L.expCore(X), L.f(1.0));
    break;
  case Opcode::LogF64:
    Result = L.logCore(X);
    break;
  case Opcode::Log2F64:
    Result = L.mul(L.logCore(X), L.f(InvLn2));
    break;
  case Opcode::Log10F64:
    Result = L.mul(L.logCore(X), L.f(4.34294481903251816668e-01));
    break;
  case Opcode::Log1pF64:
    Result = L.logCore(L.add(L.f(1.0), X));
    break;
  case Opcode::SinF64: {
    Lowerer::SinCos SC = L.sinCosCore(X);
    Result = B.newTemp();
    L.selectQuadrant(SC.Quadrant, Result, SC.SinR, SC.CosR, L.neg(SC.SinR),
                     L.neg(SC.CosR));
    break;
  }
  case Opcode::CosF64: {
    Lowerer::SinCos SC = L.sinCosCore(X);
    Result = B.newTemp();
    L.selectQuadrant(SC.Quadrant, Result, SC.CosR, L.neg(SC.SinR),
                     L.neg(SC.CosR), SC.SinR);
    break;
  }
  case Opcode::TanF64: {
    Lowerer::SinCos SC = L.sinCosCore(X);
    Result = B.newTemp();
    Temp TanR = L.div(SC.SinR, SC.CosR);
    Temp NegCot = L.neg(L.div(SC.CosR, SC.SinR));
    L.selectQuadrant(SC.Quadrant, Result, TanR, NegCot, TanR, NegCot);
    break;
  }
  case Opcode::SinhF64: {
    Temp E = L.expCore(X);
    Result = L.mul(L.sub(E, L.div(L.f(1.0), E)), L.f(0.5));
    break;
  }
  case Opcode::CoshF64: {
    Temp E = L.expCore(X);
    Result = L.mul(L.add(E, L.div(L.f(1.0), E)), L.f(0.5));
    break;
  }
  case Opcode::TanhF64: {
    Temp E2 = L.expCore(L.mul(X, L.f(2.0)));
    Result = L.div(L.sub(E2, L.f(1.0)), L.add(E2, L.f(1.0)));
    break;
  }
  case Opcode::PowF64:
    Result = L.expCore(L.mul(S.Args[1], L.logCore(X)));
    break;
  case Opcode::CbrtF64: {
    Temp Ax = B.op(Opcode::AbsF64, X);
    Temp T = L.expCore(L.mul(L.logCore(Ax), L.f(1.0 / 3.0)));
    Result = B.op(Opcode::CopySignF64, T, X);
    break;
  }
  case Opcode::HypotF64: {
    Temp Y = S.Args[1];
    Result = B.op(Opcode::SqrtF64, L.add(L.mul(X, X), L.mul(Y, Y)));
    break;
  }
  default:
    assert(false && "lowerOneCall on an unlowerable opcode");
  }
  B.copyTo(S.Dst, Result);
}

Program herbgrind::lowerLibraryCalls(const Program &P) {
  ProgramBuilder B;
  B.reserveTemps(P.numTemps());
  B.reserveInputs(P.numInputs());

  std::vector<ProgramBuilder::Label> PCLabels;
  PCLabels.reserve(P.size());
  for (uint32_t PC = 0; PC < P.size(); ++PC)
    PCLabels.push_back(B.newLabel());

  for (uint32_t PC = 0; PC < P.size(); ++PC) {
    B.bind(PCLabels[PC]);
    const Statement &S = P.stmt(PC);
    B.setLoc(S.Loc);
    if (S.Kind == StmtKind::Op && opInfo(S.Op).IsLibCall &&
        canLowerLibCall(S.Op)) {
      lowerOneCall(B, S);
      continue;
    }
    switch (S.Kind) {
    case StmtKind::Branch:
    case StmtKind::Jump:
    case StmtKind::Call:
      B.emitRawControl(S, PCLabels[S.Target]);
      break;
    default:
      B.emitRaw(S);
      break;
    }
  }
  return B.finish();
}
