//===- ir/Program.h - Programs for the abstract float machine ---*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program representation of the abstract float machine (the paper's
/// Figure 2, extended with the VEX storage model of Section 5.2): a flat
/// statement list addressed by program counter, with temporaries, raw-byte
/// thread state, untyped byte-addressed memory, calls, conditional branches
/// and output statements. ProgramBuilder is the IRBuilder-style construction
/// API used by the FPCore compiler, the examples, and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_PROGRAM_H
#define HERBGRIND_IR_PROGRAM_H

#include "ir/Opcode.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <string>
#include <vector>

namespace herbgrind {

enum class StmtKind : uint8_t {
  Const,  ///< Dst <- Literal
  Op,     ///< Dst <- Op(Args...)
  Copy,   ///< Dst <- Args[0] (temps are mutable registers, not SSA)
  Input,  ///< Dst <- program input #InputIndex (an f64)
  Get,    ///< Dst <- thread-state bytes at Disp (type AccessTy)
  Put,    ///< thread-state bytes at Disp <- Args[0]
  Load,   ///< Dst <- memory[Args[0] + Disp] (type AccessTy)
  Store,  ///< memory[Args[0] + Disp] <- Args[1]
  Branch, ///< if Args[0] != 0 goto Target
  Jump,   ///< goto Target
  Call,   ///< push pc+1, goto Target
  Ret,    ///< pop return pc
  Out,    ///< output Args[0] (a spot, Section 4.2)
  Halt,   ///< stop execution
};

/// One statement of the abstract machine.
struct Statement {
  StmtKind Kind = StmtKind::Halt;
  Opcode Op = Opcode::AddF64;  ///< Valid when Kind == Op.
  uint32_t Dst = 0;            ///< Destination temp (when the kind has one).
  uint32_t Args[3] = {0, 0, 0};
  uint8_t NumArgs = 0;
  Value Literal;                              ///< For Const.
  int64_t Disp = 0;                           ///< Load/Store/Get/Put offset.
  uint32_t Target = 0;                        ///< Branch/Jump/Call target pc.
  ValueType AccessTy = ValueType::Unknown;    ///< Load/Get access type.
  uint32_t InputIndex = 0;                    ///< For Input.
  SourceLoc Loc;

  bool hasDst() const {
    return Kind == StmtKind::Const || Kind == StmtKind::Op ||
           Kind == StmtKind::Copy || Kind == StmtKind::Input ||
           Kind == StmtKind::Get || Kind == StmtKind::Load;
  }
};

/// A complete program: a statement vector plus its temp universe.
class Program {
public:
  const std::vector<Statement> &statements() const { return Stmts; }
  const Statement &stmt(uint32_t PC) const {
    assert(PC < Stmts.size() && "pc out of range");
    return Stmts[PC];
  }
  uint32_t size() const { return static_cast<uint32_t>(Stmts.size()); }
  uint32_t numTemps() const { return NumTemps; }
  uint32_t numInputs() const { return NumInputs; }

  /// Human-readable listing (for tests and debugging).
  std::string print() const;

  /// Structural checks: temps in range, targets in range, arities match.
  /// Returns an empty string on success, else a diagnostic.
  std::string validate() const;

private:
  friend class ProgramBuilder;
  friend class LibmLowering;
  std::vector<Statement> Stmts;
  uint32_t NumTemps = 0;
  uint32_t NumInputs = 0;
};

/// IRBuilder-style program construction with forward-referencing labels.
class ProgramBuilder {
public:
  using Temp = uint32_t;
  using Label = uint32_t;

  /// Sets the source location attached to subsequently emitted statements.
  void setLoc(SourceLoc Loc) { CurLoc = std::move(Loc); }

  Temp newTemp() { return P.NumTemps++; }

  Temp constF64(double X) { return emitConst(Value::ofF64(X)); }
  Temp constF32(float X) { return emitConst(Value::ofF32(X)); }
  Temp constI64(int64_t X) { return emitConst(Value::ofI64(X)); }

  /// Reads program input \p Index (an f64).
  Temp input(unsigned Index);

  Temp op(Opcode O, Temp A);
  Temp op(Opcode O, Temp A, Temp B);
  Temp op(Opcode O, Temp A, Temp B, Temp C);

  /// Assigns an existing temp (temps are mutable; loops rebind them).
  void copyTo(Temp Dst, Temp Src);

  /// Pre-allocates temp ids [0, Count) (used when rebuilding a program
  /// whose existing temp numbering must stay valid).
  void reserveTemps(uint32_t Count) {
    if (P.NumTemps < Count)
      P.NumTemps = Count;
  }

  /// Declares that inputs [0, Count) exist even if not all are read.
  void reserveInputs(uint32_t Count) {
    if (P.NumInputs < Count)
      P.NumInputs = Count;
  }

  Temp get(int64_t Offset, ValueType Ty);
  void put(int64_t Offset, Temp Src);
  Temp load(Temp Addr, int64_t Disp, ValueType Ty);
  void store(Temp Addr, int64_t Disp, Temp Src);

  Label newLabel();
  /// Binds \p L to the next emitted statement.
  void bind(Label L);
  void branchIf(Temp Cond, Label L);
  void jump(Label L);
  void call(Label L);
  void ret();

  void out(Temp Src);
  void halt();

  /// Appends a pre-built non-control statement verbatim (temp ids must be
  /// valid in this builder's universe).
  void emitRaw(const Statement &S);

  /// Appends a pre-built control statement, resolving its target via \p L.
  void emitRawControl(const Statement &S, Label L);

  /// Number of statements emitted so far (the pc of the next statement).
  uint32_t nextPC() const { return static_cast<uint32_t>(P.Stmts.size()); }

  /// Patches labels and returns the finished program.
  Program finish();

private:
  Temp emitConst(Value V);
  Statement &emit(StmtKind Kind);

  Program P;
  SourceLoc CurLoc;
  std::vector<uint32_t> LabelTargets;
  std::vector<std::pair<uint32_t, Label>> Fixups; ///< (stmt pc, label)
  bool Finished = false;
};

/// Infers a static type for every temp by joining the types of all its
/// definitions (the "static superblock type analysis" of Section 6 that
/// lets the instrumented executor skip shadow work for known-integer
/// temps). Conflicting definitions yield ValueType::Conflict.
std::vector<ValueType> inferTempTypes(const Program &P);

} // namespace herbgrind

#endif // HERBGRIND_IR_PROGRAM_H
