//===- ir/Program.cpp - Programs for the abstract float machine -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "support/Format.h"

using namespace herbgrind;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string stmtStr(const Statement &S, uint32_t PC) {
  std::string Body;
  switch (S.Kind) {
  case StmtKind::Const:
    Body = format("t%u = const %s", S.Dst, S.Literal.str().c_str());
    break;
  case StmtKind::Op: {
    const OpInfo &Info = opInfo(S.Op);
    std::vector<std::string> Args;
    for (unsigned I = 0; I < S.NumArgs; ++I)
      Args.push_back(format("t%u", S.Args[I]));
    Body = format("t%u = %s %s", S.Dst, Info.Name, join(Args, ", ").c_str());
    break;
  }
  case StmtKind::Copy:
    Body = format("t%u = t%u", S.Dst, S.Args[0]);
    break;
  case StmtKind::Input:
    Body = format("t%u = input #%u", S.Dst, S.InputIndex);
    break;
  case StmtKind::Get:
    Body = format("t%u = get ts[%lld] : %s", S.Dst,
                  static_cast<long long>(S.Disp), valueTypeName(S.AccessTy));
    break;
  case StmtKind::Put:
    Body = format("put ts[%lld] = t%u", static_cast<long long>(S.Disp),
                  S.Args[0]);
    break;
  case StmtKind::Load:
    Body = format("t%u = load [t%u + %lld] : %s", S.Dst, S.Args[0],
                  static_cast<long long>(S.Disp), valueTypeName(S.AccessTy));
    break;
  case StmtKind::Store:
    Body = format("store [t%u + %lld] = t%u", S.Args[0],
                  static_cast<long long>(S.Disp), S.Args[1]);
    break;
  case StmtKind::Branch:
    Body = format("if t%u goto %u", S.Args[0], S.Target);
    break;
  case StmtKind::Jump:
    Body = format("goto %u", S.Target);
    break;
  case StmtKind::Call:
    Body = format("call %u", S.Target);
    break;
  case StmtKind::Ret:
    Body = "ret";
    break;
  case StmtKind::Out:
    Body = format("out t%u", S.Args[0]);
    break;
  case StmtKind::Halt:
    Body = "halt";
    break;
  }
  std::string Line = format("%4u: %s", PC, Body.c_str());
  if (S.Loc.isKnown())
    Line += "    ; " + S.Loc.str();
  return Line;
}

std::string Program::print() const {
  std::string Out;
  for (uint32_t PC = 0; PC < size(); ++PC) {
    Out += stmtStr(Stmts[PC], PC);
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

std::string Program::validate() const {
  for (uint32_t PC = 0; PC < size(); ++PC) {
    const Statement &S = Stmts[PC];
    auto Err = [&](const std::string &Msg) {
      return format("statement %u: %s", PC, Msg.c_str());
    };
    if (S.hasDst() && S.Dst >= NumTemps)
      return Err("destination temp out of range");
    for (unsigned I = 0; I < S.NumArgs; ++I)
      if (S.Args[I] >= NumTemps)
        return Err("argument temp out of range");
    switch (S.Kind) {
    case StmtKind::Op:
      if (S.NumArgs != opInfo(S.Op).Arity)
        return Err(format("arity mismatch for %s", opInfo(S.Op).Name));
      break;
    case StmtKind::Branch:
    case StmtKind::Jump:
    case StmtKind::Call:
      if (S.Target >= size())
        return Err("control target out of range");
      break;
    case StmtKind::Load:
    case StmtKind::Get:
      if (S.AccessTy == ValueType::Unknown ||
          S.AccessTy == ValueType::Conflict)
        return Err("load/get without a concrete access type");
      break;
    case StmtKind::Input:
      if (S.InputIndex >= NumInputs)
        return Err("input index out of range");
      break;
    default:
      break;
    }
  }
  if (Stmts.empty() || (Stmts.back().Kind != StmtKind::Halt &&
                        Stmts.back().Kind != StmtKind::Jump &&
                        Stmts.back().Kind != StmtKind::Ret))
    return "program does not end in halt/jump/ret";
  return "";
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

Statement &ProgramBuilder::emit(StmtKind Kind) {
  assert(!Finished && "builder already finished");
  P.Stmts.emplace_back();
  Statement &S = P.Stmts.back();
  S.Kind = Kind;
  S.Loc = CurLoc;
  return S;
}

ProgramBuilder::Temp ProgramBuilder::emitConst(Value V) {
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Const);
  S.Dst = Dst;
  S.Literal = V;
  return Dst;
}

ProgramBuilder::Temp ProgramBuilder::input(unsigned Index) {
  if (Index >= P.NumInputs)
    P.NumInputs = Index + 1;
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Input);
  S.Dst = Dst;
  S.InputIndex = Index;
  return Dst;
}

ProgramBuilder::Temp ProgramBuilder::op(Opcode O, Temp A) {
  assert(opInfo(O).Arity == 1 && "unary emit of non-unary op");
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Op);
  S.Op = O;
  S.Dst = Dst;
  S.Args[0] = A;
  S.NumArgs = 1;
  return Dst;
}

ProgramBuilder::Temp ProgramBuilder::op(Opcode O, Temp A, Temp B) {
  assert(opInfo(O).Arity == 2 && "binary emit of non-binary op");
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Op);
  S.Op = O;
  S.Dst = Dst;
  S.Args[0] = A;
  S.Args[1] = B;
  S.NumArgs = 2;
  return Dst;
}

ProgramBuilder::Temp ProgramBuilder::op(Opcode O, Temp A, Temp B, Temp C) {
  assert(opInfo(O).Arity == 3 && "ternary emit of non-ternary op");
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Op);
  S.Op = O;
  S.Dst = Dst;
  S.Args[0] = A;
  S.Args[1] = B;
  S.Args[2] = C;
  S.NumArgs = 3;
  return Dst;
}

void ProgramBuilder::copyTo(Temp Dst, Temp Src) {
  Statement &S = emit(StmtKind::Copy);
  S.Dst = Dst;
  S.Args[0] = Src;
  S.NumArgs = 1;
}

ProgramBuilder::Temp ProgramBuilder::get(int64_t Offset, ValueType Ty) {
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Get);
  S.Dst = Dst;
  S.Disp = Offset;
  S.AccessTy = Ty;
  return Dst;
}

void ProgramBuilder::put(int64_t Offset, Temp Src) {
  Statement &S = emit(StmtKind::Put);
  S.Disp = Offset;
  S.Args[0] = Src;
  S.NumArgs = 1;
}

ProgramBuilder::Temp ProgramBuilder::load(Temp Addr, int64_t Disp,
                                          ValueType Ty) {
  Temp Dst = newTemp();
  Statement &S = emit(StmtKind::Load);
  S.Dst = Dst;
  S.Args[0] = Addr;
  S.NumArgs = 1;
  S.Disp = Disp;
  S.AccessTy = Ty;
  return Dst;
}

void ProgramBuilder::store(Temp Addr, int64_t Disp, Temp Src) {
  Statement &S = emit(StmtKind::Store);
  S.Args[0] = Addr;
  S.Args[1] = Src;
  S.NumArgs = 2;
  S.Disp = Disp;
}

ProgramBuilder::Label ProgramBuilder::newLabel() {
  LabelTargets.push_back(UINT32_MAX);
  return static_cast<Label>(LabelTargets.size() - 1);
}

void ProgramBuilder::bind(Label L) {
  assert(L < LabelTargets.size() && "unknown label");
  assert(LabelTargets[L] == UINT32_MAX && "label bound twice");
  LabelTargets[L] = nextPC();
}

void ProgramBuilder::branchIf(Temp Cond, Label L) {
  Fixups.emplace_back(nextPC(), L);
  Statement &S = emit(StmtKind::Branch);
  S.Args[0] = Cond;
  S.NumArgs = 1;
}

void ProgramBuilder::jump(Label L) {
  Fixups.emplace_back(nextPC(), L);
  emit(StmtKind::Jump);
}

void ProgramBuilder::call(Label L) {
  Fixups.emplace_back(nextPC(), L);
  emit(StmtKind::Call);
}

void ProgramBuilder::ret() { emit(StmtKind::Ret); }

void ProgramBuilder::out(Temp Src) {
  Statement &S = emit(StmtKind::Out);
  S.Args[0] = Src;
  S.NumArgs = 1;
}

void ProgramBuilder::halt() { emit(StmtKind::Halt); }

void ProgramBuilder::emitRaw(const Statement &S) {
  assert(S.Kind != StmtKind::Branch && S.Kind != StmtKind::Jump &&
         S.Kind != StmtKind::Call && "control statements need a label");
  assert(!Finished && "builder already finished");
  P.Stmts.push_back(S);
}

void ProgramBuilder::emitRawControl(const Statement &S, Label L) {
  assert(!Finished && "builder already finished");
  Fixups.emplace_back(nextPC(), L);
  P.Stmts.push_back(S);
}

Program ProgramBuilder::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;
  for (auto [PC, L] : Fixups) {
    assert(LabelTargets[L] != UINT32_MAX && "unbound label at finish");
    P.Stmts[PC].Target = LabelTargets[L];
  }
  return std::move(P);
}

//===----------------------------------------------------------------------===//
// Static type analysis (Section 6)
//===----------------------------------------------------------------------===//

std::vector<ValueType> herbgrind::inferTempTypes(const Program &P) {
  std::vector<ValueType> Types(P.numTemps(), ValueType::Unknown);
  // Fixpoint over definitions; Copy propagates its source's type, so chains
  // of copies may need several rounds (the lattice has height 2, and each
  // temp only climbs, so this terminates quickly).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Statement &S : P.statements()) {
      if (!S.hasDst())
        continue;
      ValueType DefTy = ValueType::Unknown;
      switch (S.Kind) {
      case StmtKind::Const:
        DefTy = S.Literal.Ty;
        break;
      case StmtKind::Op:
        DefTy = opInfo(S.Op).ResultTy;
        break;
      case StmtKind::Copy:
        DefTy = Types[S.Args[0]];
        break;
      case StmtKind::Input:
        DefTy = ValueType::F64;
        break;
      case StmtKind::Get:
      case StmtKind::Load:
        DefTy = S.AccessTy;
        break;
      default:
        break;
      }
      ValueType Joined = joinTypes(Types[S.Dst], DefTy);
      if (Joined != Types[S.Dst]) {
        Types[S.Dst] = Joined;
        Changed = true;
      }
    }
  }
  return Types;
}
