//===- ir/Opcode.cpp - Opcode metadata and scalar evaluation --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>

using namespace herbgrind;

const char *herbgrind::valueTypeName(ValueType Ty) {
  switch (Ty) {
  case ValueType::Unknown:
    return "unknown";
  case ValueType::I64:
    return "i64";
  case ValueType::F64:
    return "f64";
  case ValueType::F32:
    return "f32";
  case ValueType::V2F64:
    return "v2f64";
  case ValueType::V4F32:
    return "v4f32";
  case ValueType::Conflict:
    return "conflict";
  }
  return "?";
}

std::string Value::str() const {
  switch (Ty) {
  case ValueType::I64:
    return format("%lld:i64", static_cast<long long>(I64));
  case ValueType::F64:
    return formatDoubleShortest(F64) + ":f64";
  case ValueType::F32:
    return formatDoubleShortest(F32) + ":f32";
  case ValueType::V2F64:
    return "{" + formatDoubleShortest(V2F64[0]) + ", " +
           formatDoubleShortest(V2F64[1]) + "}:v2f64";
  case ValueType::V4F32:
    return "{" + formatDoubleShortest(V4F32[0]) + ", " +
           formatDoubleShortest(V4F32[1]) + ", " +
           formatDoubleShortest(V4F32[2]) + ", " +
           formatDoubleShortest(V4F32[3]) + "}:v4f32";
  case ValueType::Unknown:
    return "<unknown>";
  case ValueType::Conflict:
    return "<conflict>";
  }
  return "?";
}

namespace {
using VT = ValueType;

struct OpTableEntry {
  Opcode Op;
  OpInfo Info;
};
} // namespace

// Flags: IsFloatOp, IsLibCall, IsComparison, IsSIMD.
static const OpTableEntry OpTable[] = {
    {Opcode::AddF64, {"add.f64", "+", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::SubF64, {"sub.f64", "-", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::MulF64, {"mul.f64", "*", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::DivF64, {"div.f64", "/", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::SqrtF64, {"sqrt.f64", "sqrt", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::NegF64, {"neg.f64", "-", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::AbsF64, {"abs.f64", "fabs", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::MinF64, {"min.f64", "fmin", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::MaxF64, {"max.f64", "fmax", 2, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::FmaF64, {"fma.f64", "fma", 3, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::CopySignF64,
     {"copysign.f64", "copysign", 2, VT::F64, VT::F64, 1, 0, 0, 0}},

    {Opcode::AddF32, {"add.f32", "+", 2, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::SubF32, {"sub.f32", "-", 2, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::MulF32, {"mul.f32", "*", 2, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::DivF32, {"div.f32", "/", 2, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::SqrtF32, {"sqrt.f32", "sqrt", 1, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::NegF32, {"neg.f32", "-", 1, VT::F32, VT::F32, 1, 0, 0, 0}},
    {Opcode::AbsF32, {"abs.f32", "fabs", 1, VT::F32, VT::F32, 1, 0, 0, 0}},

    {Opcode::ExpF64, {"exp.f64", "exp", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Exp2F64, {"exp2.f64", "exp2", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Expm1F64,
     {"expm1.f64", "expm1", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::LogF64, {"log.f64", "log", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Log2F64, {"log2.f64", "log2", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Log10F64,
     {"log10.f64", "log10", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Log1pF64,
     {"log1p.f64", "log1p", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::SinF64, {"sin.f64", "sin", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::CosF64, {"cos.f64", "cos", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::TanF64, {"tan.f64", "tan", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::AsinF64, {"asin.f64", "asin", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::AcosF64, {"acos.f64", "acos", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::AtanF64, {"atan.f64", "atan", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::Atan2F64,
     {"atan2.f64", "atan2", 2, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::SinhF64, {"sinh.f64", "sinh", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::CoshF64, {"cosh.f64", "cosh", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::TanhF64, {"tanh.f64", "tanh", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::PowF64, {"pow.f64", "pow", 2, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::CbrtF64, {"cbrt.f64", "cbrt", 1, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::HypotF64,
     {"hypot.f64", "hypot", 2, VT::F64, VT::F64, 1, 1, 0, 0}},
    {Opcode::FmodF64, {"fmod.f64", "fmod", 2, VT::F64, VT::F64, 1, 1, 0, 0}},

    {Opcode::FloorF64,
     {"floor.f64", "floor", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::CeilF64, {"ceil.f64", "ceil", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::RoundF64,
     {"round.f64", "round", 1, VT::F64, VT::F64, 1, 0, 0, 0}},
    {Opcode::TruncF64,
     {"trunc.f64", "trunc", 1, VT::F64, VT::F64, 1, 0, 0, 0}},

    {Opcode::CmpLTF64, {"cmplt.f64", "<", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpLEF64, {"cmple.f64", "<=", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpEQF64, {"cmpeq.f64", "==", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpNEF64, {"cmpne.f64", "!=", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpGTF64, {"cmpgt.f64", ">", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpGEF64, {"cmpge.f64", ">=", 2, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::CmpLTF32, {"cmplt.f32", "<", 2, VT::I64, VT::F32, 0, 0, 1, 0}},
    {Opcode::CmpEQF32, {"cmpeq.f32", "==", 2, VT::I64, VT::F32, 0, 0, 1, 0}},

    {Opcode::F64toF32,
     {"cvt.f64.f32", "cast", 1, VT::F32, VT::F64, 1, 0, 0, 0}},
    {Opcode::F32toF64,
     {"cvt.f32.f64", "cast", 1, VT::F64, VT::F32, 1, 0, 0, 0}},
    {Opcode::F64toI64,
     {"cvt.f64.i64", nullptr, 1, VT::I64, VT::F64, 0, 0, 1, 0}},
    {Opcode::I64toF64,
     {"cvt.i64.f64", nullptr, 1, VT::F64, VT::I64, 1, 0, 0, 0}},
    {Opcode::F64BitsToI64,
     {"bits.f64.i64", nullptr, 1, VT::I64, VT::F64, 0, 0, 0, 0}},
    {Opcode::I64BitsToF64,
     {"bits.i64.f64", nullptr, 1, VT::F64, VT::I64, 1, 0, 0, 0}},

    {Opcode::AddI64, {"add.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::SubI64, {"sub.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::MulI64, {"mul.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::AndI64, {"and.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::OrI64, {"or.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::XorI64, {"xor.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::ShlI64, {"shl.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::ShrI64, {"shr.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::SarI64, {"sar.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::NotI64, {"not.i64", nullptr, 1, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::NegI64, {"neg.i64", nullptr, 1, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::CmpLTI64,
     {"cmplt.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::CmpLEI64,
     {"cmple.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::CmpEQI64,
     {"cmpeq.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},
    {Opcode::CmpNEI64,
     {"cmpne.i64", nullptr, 2, VT::I64, VT::I64, 0, 0, 0, 0}},

    {Opcode::AddV2F64, {"add.v2f64", "+", 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::SubV2F64, {"sub.v2f64", "-", 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::MulV2F64, {"mul.v2f64", "*", 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::DivV2F64, {"div.v2f64", "/", 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::SqrtV2F64,
     {"sqrt.v2f64", "sqrt", 1, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::AddV4F32, {"add.v4f32", "+", 2, VT::V4F32, VT::V4F32, 1, 0, 0, 1}},
    {Opcode::SubV4F32, {"sub.v4f32", "-", 2, VT::V4F32, VT::V4F32, 1, 0, 0, 1}},
    {Opcode::MulV4F32, {"mul.v4f32", "*", 2, VT::V4F32, VT::V4F32, 1, 0, 0, 1}},
    {Opcode::DivV4F32, {"div.v4f32", "/", 2, VT::V4F32, VT::V4F32, 1, 0, 0, 1}},

    {Opcode::XorV128, {"xor.v128", nullptr, 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::AndV128, {"and.v128", nullptr, 2, VT::V2F64, VT::V2F64, 1, 0, 0, 1}},

    {Opcode::ExtractLaneF64,
     {"extract.f64", nullptr, 2, VT::F64, VT::V2F64, 1, 0, 0, 1}},
    {Opcode::ExtractLaneF32,
     {"extract.f32", nullptr, 2, VT::F32, VT::V4F32, 1, 0, 0, 1}},
    {Opcode::BuildV2F64,
     {"build.v2f64", nullptr, 2, VT::V2F64, VT::F64, 1, 0, 0, 1}},
};

const OpInfo &herbgrind::opInfo(Opcode Op) {
  static OpInfo Table[static_cast<unsigned>(Opcode::NumOpcodes)];
  static bool Built = [] {
    for (const OpTableEntry &E : OpTable)
      Table[static_cast<unsigned>(E.Op)] = E.Info;
    return true;
  }();
  (void)Built;
  const OpInfo &Info = Table[static_cast<unsigned>(Op)];
  assert(Info.Name && "missing opcode table entry");
  return Info;
}

Opcode herbgrind::simdScalarOp(Opcode Op) {
  switch (Op) {
  case Opcode::AddV2F64:
    return Opcode::AddF64;
  case Opcode::SubV2F64:
    return Opcode::SubF64;
  case Opcode::MulV2F64:
    return Opcode::MulF64;
  case Opcode::DivV2F64:
    return Opcode::DivF64;
  case Opcode::SqrtV2F64:
    return Opcode::SqrtF64;
  case Opcode::AddV4F32:
    return Opcode::AddF32;
  case Opcode::SubV4F32:
    return Opcode::SubF32;
  case Opcode::MulV4F32:
    return Opcode::MulF32;
  case Opcode::DivV4F32:
    return Opcode::DivF32;
  default:
    assert(false && "not a lane-wise SIMD op");
    return Op;
  }
}

Value herbgrind::evalScalarOp(Opcode Op, const Value *Args, unsigned NumArgs) {
  assert(NumArgs == opInfo(Op).Arity && "arity mismatch");
  (void)NumArgs;
  auto A = [&](unsigned I) { return Args[I].asF64(); };
  auto AF = [&](unsigned I) { return Args[I].asF32(); };
  auto AI = [&](unsigned I) { return Args[I].asI64(); };
  switch (Op) {
  case Opcode::AddF64:
    return Value::ofF64(A(0) + A(1));
  case Opcode::SubF64:
    return Value::ofF64(A(0) - A(1));
  case Opcode::MulF64:
    return Value::ofF64(A(0) * A(1));
  case Opcode::DivF64:
    return Value::ofF64(A(0) / A(1));
  case Opcode::SqrtF64:
    return Value::ofF64(std::sqrt(A(0)));
  case Opcode::NegF64:
    return Value::ofF64(-A(0));
  case Opcode::AbsF64:
    return Value::ofF64(std::fabs(A(0)));
  case Opcode::MinF64:
    return Value::ofF64(std::fmin(A(0), A(1)));
  case Opcode::MaxF64:
    return Value::ofF64(std::fmax(A(0), A(1)));
  case Opcode::FmaF64:
    return Value::ofF64(std::fma(A(0), A(1), A(2)));
  case Opcode::CopySignF64:
    return Value::ofF64(std::copysign(A(0), A(1)));

  case Opcode::AddF32:
    return Value::ofF32(AF(0) + AF(1));
  case Opcode::SubF32:
    return Value::ofF32(AF(0) - AF(1));
  case Opcode::MulF32:
    return Value::ofF32(AF(0) * AF(1));
  case Opcode::DivF32:
    return Value::ofF32(AF(0) / AF(1));
  case Opcode::SqrtF32:
    return Value::ofF32(std::sqrt(AF(0)));
  case Opcode::NegF32:
    return Value::ofF32(-AF(0));
  case Opcode::AbsF32:
    return Value::ofF32(std::fabs(AF(0)));

  case Opcode::ExpF64:
    return Value::ofF64(std::exp(A(0)));
  case Opcode::Exp2F64:
    return Value::ofF64(std::exp2(A(0)));
  case Opcode::Expm1F64:
    return Value::ofF64(std::expm1(A(0)));
  case Opcode::LogF64:
    return Value::ofF64(std::log(A(0)));
  case Opcode::Log2F64:
    return Value::ofF64(std::log2(A(0)));
  case Opcode::Log10F64:
    return Value::ofF64(std::log10(A(0)));
  case Opcode::Log1pF64:
    return Value::ofF64(std::log1p(A(0)));
  case Opcode::SinF64:
    return Value::ofF64(std::sin(A(0)));
  case Opcode::CosF64:
    return Value::ofF64(std::cos(A(0)));
  case Opcode::TanF64:
    return Value::ofF64(std::tan(A(0)));
  case Opcode::AsinF64:
    return Value::ofF64(std::asin(A(0)));
  case Opcode::AcosF64:
    return Value::ofF64(std::acos(A(0)));
  case Opcode::AtanF64:
    return Value::ofF64(std::atan(A(0)));
  case Opcode::Atan2F64:
    return Value::ofF64(std::atan2(A(0), A(1)));
  case Opcode::SinhF64:
    return Value::ofF64(std::sinh(A(0)));
  case Opcode::CoshF64:
    return Value::ofF64(std::cosh(A(0)));
  case Opcode::TanhF64:
    return Value::ofF64(std::tanh(A(0)));
  case Opcode::PowF64:
    return Value::ofF64(std::pow(A(0), A(1)));
  case Opcode::CbrtF64:
    return Value::ofF64(std::cbrt(A(0)));
  case Opcode::HypotF64:
    return Value::ofF64(std::hypot(A(0), A(1)));
  case Opcode::FmodF64:
    return Value::ofF64(std::fmod(A(0), A(1)));

  case Opcode::FloorF64:
    return Value::ofF64(std::floor(A(0)));
  case Opcode::CeilF64:
    return Value::ofF64(std::ceil(A(0)));
  case Opcode::RoundF64:
    return Value::ofF64(std::round(A(0)));
  case Opcode::TruncF64:
    return Value::ofF64(std::trunc(A(0)));

  case Opcode::CmpLTF64:
    return Value::ofI64(A(0) < A(1));
  case Opcode::CmpLEF64:
    return Value::ofI64(A(0) <= A(1));
  case Opcode::CmpEQF64:
    return Value::ofI64(A(0) == A(1));
  case Opcode::CmpNEF64:
    return Value::ofI64(A(0) != A(1));
  case Opcode::CmpGTF64:
    return Value::ofI64(A(0) > A(1));
  case Opcode::CmpGEF64:
    return Value::ofI64(A(0) >= A(1));
  case Opcode::CmpLTF32:
    return Value::ofI64(AF(0) < AF(1));
  case Opcode::CmpEQF32:
    return Value::ofI64(AF(0) == AF(1));

  case Opcode::F64toF32:
    return Value::ofF32(static_cast<float>(A(0)));
  case Opcode::F32toF64:
    return Value::ofF64(static_cast<double>(AF(0)));
  case Opcode::F64toI64: {
    double X = A(0);
    // Well-defined saturating semantics (x86 would give the indefinite
    // value; saturation keeps the abstract machine deterministic).
    if (std::isnan(X))
      return Value::ofI64(0);
    if (X >= 9.2233720368547758e18)
      return Value::ofI64(INT64_MAX);
    if (X <= -9.2233720368547758e18)
      return Value::ofI64(INT64_MIN);
    return Value::ofI64(static_cast<int64_t>(X));
  }
  case Opcode::I64toF64:
    return Value::ofF64(static_cast<double>(AI(0)));
  case Opcode::F64BitsToI64:
    return Value::ofI64(static_cast<int64_t>(bitsOfDouble(A(0))));
  case Opcode::I64BitsToF64:
    return Value::ofF64(doubleFromBits(static_cast<uint64_t>(AI(0))));

  case Opcode::AddI64:
    return Value::ofI64(static_cast<int64_t>(static_cast<uint64_t>(AI(0)) +
                                             static_cast<uint64_t>(AI(1))));
  case Opcode::SubI64:
    return Value::ofI64(static_cast<int64_t>(static_cast<uint64_t>(AI(0)) -
                                             static_cast<uint64_t>(AI(1))));
  case Opcode::MulI64:
    return Value::ofI64(static_cast<int64_t>(static_cast<uint64_t>(AI(0)) *
                                             static_cast<uint64_t>(AI(1))));
  case Opcode::AndI64:
    return Value::ofI64(AI(0) & AI(1));
  case Opcode::OrI64:
    return Value::ofI64(AI(0) | AI(1));
  case Opcode::XorI64:
    return Value::ofI64(AI(0) ^ AI(1));
  case Opcode::ShlI64:
    return Value::ofI64(static_cast<int64_t>(static_cast<uint64_t>(AI(0))
                                             << (AI(1) & 63)));
  case Opcode::ShrI64:
    return Value::ofI64(
        static_cast<int64_t>(static_cast<uint64_t>(AI(0)) >> (AI(1) & 63)));
  case Opcode::SarI64:
    return Value::ofI64(AI(0) >> (AI(1) & 63));
  case Opcode::NotI64:
    return Value::ofI64(~AI(0));
  case Opcode::NegI64:
    return Value::ofI64(-AI(0));
  case Opcode::CmpLTI64:
    return Value::ofI64(AI(0) < AI(1));
  case Opcode::CmpLEI64:
    return Value::ofI64(AI(0) <= AI(1));
  case Opcode::CmpEQI64:
    return Value::ofI64(AI(0) == AI(1));
  case Opcode::CmpNEI64:
    return Value::ofI64(AI(0) != AI(1));

  default:
    break;
  }
  assert(false && "evalScalarOp on a non-scalar opcode");
  return Value();
}
