//===- ir/Interpreter.h - Uninstrumented reference interpreter --*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uninstrumented executor for abstract-machine programs. It defines
/// the concrete (client) semantics that the analysis layer shadows, serves
/// as the "native execution" baseline for the Table 1 overhead bench, and
/// is differential-tested against the instrumented executor.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_IR_INTERPRETER_H
#define HERBGRIND_IR_INTERPRETER_H

#include "ir/Memory.h"
#include "ir/Program.h"

#include <vector>

namespace herbgrind {

/// The concrete state of a running abstract machine.
struct MachineState {
  std::vector<Value> Temps;
  std::vector<uint8_t> ThreadState;
  ByteMemory Memory;
  std::vector<uint32_t> CallStack;
  std::vector<double> Inputs;
  std::vector<Value> Outputs;
  uint32_t PC = 0;
  uint64_t Steps = 0;

  explicit MachineState(const Program &P, std::vector<double> ProgramInputs,
                        size_t ThreadStateBytes = 1024)
      : Temps(P.numTemps()), ThreadState(ThreadStateBytes, 0),
        Inputs(std::move(ProgramInputs)) {}
};

/// Executes a single statement's concrete semantics, updating PC. Returns
/// false when the machine halts. Shared between the reference interpreter
/// and the instrumented analysis executor so their concrete semantics can
/// never diverge.
bool stepConcrete(const Program &P, MachineState &State);

/// Concrete evaluation of any Op statement, including SIMD and lane ops.
Value evalOpConcrete(Opcode Op, const Value *Args, unsigned NumArgs);

/// Runs a program to completion (or the step limit).
struct RunResult {
  std::vector<Value> Outputs;
  uint64_t Steps = 0;
  bool HitStepLimit = false;
};

RunResult interpret(const Program &P, const std::vector<double> &Inputs,
                    uint64_t MaxSteps = 100'000'000);

} // namespace herbgrind

#endif // HERBGRIND_IR_INTERPRETER_H
