//===- ir/Interpreter.cpp - Uninstrumented reference interpreter ----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include <cassert>

using namespace herbgrind;

/// Serializes a value's bytes into untyped storage (little-endian, exactly
/// what the union already holds on the platforms we target).
static void valueToBytes(const Value &V, uint8_t *Out) {
  std::memcpy(Out, V.Bytes, V.byteSize());
}

static Value valueFromBytes(ValueType Ty, const uint8_t *In) {
  Value V;
  V.Ty = Ty;
  switch (Ty) {
  case ValueType::F32:
    std::memcpy(V.Bytes, In, 4);
    break;
  case ValueType::F64:
  case ValueType::I64:
    std::memcpy(V.Bytes, In, 8);
    break;
  case ValueType::V2F64:
  case ValueType::V4F32:
    std::memcpy(V.Bytes, In, 16);
    break;
  case ValueType::Unknown:
  case ValueType::Conflict:
    assert(false && "untyped memory access");
  }
  return V;
}

Value herbgrind::evalOpConcrete(Opcode Op, const Value *Args,
                                unsigned NumArgs) {
  const OpInfo &Info = opInfo(Op);
  if (!Info.IsSIMD)
    return evalScalarOp(Op, Args, NumArgs);

  switch (Op) {
  case Opcode::XorV128:
  case Opcode::AndV128: {
    Value R = Args[0];
    for (unsigned B = 0; B < 16; ++B) {
      if (Op == Opcode::XorV128)
        R.Bytes[B] ^= Args[1].Bytes[B];
      else
        R.Bytes[B] &= Args[1].Bytes[B];
    }
    return R;
  }
  case Opcode::ExtractLaneF64: {
    unsigned Lane = static_cast<unsigned>(Args[1].asI64());
    assert(Lane < 2 && "lane out of range");
    return Value::ofF64(Args[0].V2F64[Lane]);
  }
  case Opcode::ExtractLaneF32: {
    unsigned Lane = static_cast<unsigned>(Args[1].asI64());
    assert(Lane < 4 && "lane out of range");
    return Value::ofF32(Args[0].V4F32[Lane]);
  }
  case Opcode::BuildV2F64:
    return Value::ofV2F64(Args[0].asF64(), Args[1].asF64());
  default:
    break;
  }

  // Lane-wise SIMD arithmetic.
  Opcode Scalar = simdScalarOp(Op);
  Value R;
  R.Ty = Info.ResultTy;
  unsigned Lanes = Args[0].laneCount();
  for (unsigned L = 0; L < Lanes; ++L) {
    Value LaneArgs[2];
    for (unsigned I = 0; I < NumArgs; ++I) {
      if (Args[I].Ty == ValueType::V2F64)
        LaneArgs[I] = Value::ofF64(Args[I].V2F64[L]);
      else
        LaneArgs[I] = Value::ofF32(Args[I].V4F32[L]);
    }
    Value LaneResult = evalScalarOp(Scalar, LaneArgs, NumArgs);
    if (R.Ty == ValueType::V2F64)
      R.V2F64[L] = LaneResult.asF64();
    else
      R.V4F32[L] = LaneResult.asF32();
  }
  return R;
}

bool herbgrind::stepConcrete(const Program &P, MachineState &State) {
  const Statement &S = P.stmt(State.PC);
  ++State.Steps;
  switch (S.Kind) {
  case StmtKind::Const:
    State.Temps[S.Dst] = S.Literal;
    break;
  case StmtKind::Op: {
    Value Args[3];
    for (unsigned I = 0; I < S.NumArgs; ++I)
      Args[I] = State.Temps[S.Args[I]];
    State.Temps[S.Dst] = evalOpConcrete(S.Op, Args, S.NumArgs);
    break;
  }
  case StmtKind::Copy:
    State.Temps[S.Dst] = State.Temps[S.Args[0]];
    break;
  case StmtKind::Input:
    assert(S.InputIndex < State.Inputs.size() && "missing program input");
    State.Temps[S.Dst] = Value::ofF64(State.Inputs[S.InputIndex]);
    break;
  case StmtKind::Get: {
    assert(S.Disp >= 0 && "negative thread-state offset");
    Value V;
    V.Ty = S.AccessTy;
    unsigned Size = V.byteSize();
    assert(static_cast<size_t>(S.Disp) + Size <= State.ThreadState.size() &&
           "thread-state access out of range");
    State.Temps[S.Dst] =
        valueFromBytes(S.AccessTy, State.ThreadState.data() + S.Disp);
    break;
  }
  case StmtKind::Put: {
    const Value &V = State.Temps[S.Args[0]];
    assert(S.Disp >= 0 &&
           static_cast<size_t>(S.Disp) + V.byteSize() <=
               State.ThreadState.size() &&
           "thread-state access out of range");
    valueToBytes(V, State.ThreadState.data() + S.Disp);
    break;
  }
  case StmtKind::Load: {
    uint64_t Addr = static_cast<uint64_t>(State.Temps[S.Args[0]].asI64()) +
                    static_cast<uint64_t>(S.Disp);
    Value V;
    V.Ty = S.AccessTy;
    uint8_t Buf[16];
    State.Memory.read(Addr, Buf, V.byteSize());
    State.Temps[S.Dst] = valueFromBytes(S.AccessTy, Buf);
    break;
  }
  case StmtKind::Store: {
    uint64_t Addr = static_cast<uint64_t>(State.Temps[S.Args[0]].asI64()) +
                    static_cast<uint64_t>(S.Disp);
    const Value &V = State.Temps[S.Args[1]];
    uint8_t Buf[16];
    valueToBytes(V, Buf);
    State.Memory.write(Addr, Buf, V.byteSize());
    break;
  }
  case StmtKind::Branch:
    if (State.Temps[S.Args[0]].asI64() != 0) {
      State.PC = S.Target;
      return true;
    }
    break;
  case StmtKind::Jump:
    State.PC = S.Target;
    return true;
  case StmtKind::Call:
    State.CallStack.push_back(State.PC + 1);
    State.PC = S.Target;
    return true;
  case StmtKind::Ret:
    assert(!State.CallStack.empty() && "ret with empty call stack");
    State.PC = State.CallStack.back();
    State.CallStack.pop_back();
    return true;
  case StmtKind::Out:
    State.Outputs.push_back(State.Temps[S.Args[0]]);
    break;
  case StmtKind::Halt:
    return false;
  }
  ++State.PC;
  return State.PC < P.size();
}

RunResult herbgrind::interpret(const Program &P,
                               const std::vector<double> &Inputs,
                               uint64_t MaxSteps) {
  MachineState State(P, Inputs);
  RunResult Result;
  while (stepConcrete(P, State)) {
    if (State.Steps >= MaxSteps) {
      Result.HitStepLimit = true;
      break;
    }
  }
  Result.Outputs = std::move(State.Outputs);
  Result.Steps = State.Steps;
  return Result;
}
