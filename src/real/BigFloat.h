//===- real/BigFloat.h - Arbitrary-precision binary floats ------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch arbitrary-precision binary floating-point number, standing
/// in for the MPFR shadow values of the paper (Section 5.1). A finite value
/// is (-1)^sign * frac * 2^Exp where frac is a little-endian limb vector
/// interpreted as a fraction in [1/2, 1) (the top bit of the top limb is
/// always set). Precision is a per-value property, always a whole number of
/// 64-bit limbs; the paper's default is 1000 bits, ours is 256 (configurable
/// via setDefaultPrecisionBits, swept in the tests).
///
/// Storage is small-size-optimized: up to four limbs (256 bits, the default
/// precision) live inline in the object, so the shadow hot path never heap-
/// allocates per value; wider precisions spill to a per-thread recycled
/// block cache (support/LimbAlloc.h). Every binary operation also has a
/// destination-passing variant (`addInto(Dst, A, B)` etc.); these are
/// alias-safe (Dst may be A and/or B) and reuse Dst's spilled capacity,
/// which is what makes the transcendental series loops in RealMath.cpp
/// allocation-free in steady state.
///
/// Core operations (add, sub, mul, div, sqrt, conversions to double/float)
/// are correctly rounded to the result precision under round-to-nearest-even.
/// Transcendental functions live in real/RealMath.h and are faithful at the
/// working precision, which is far more accuracy than the 53-bit comparisons
/// the analysis performs ever need.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_REAL_BIGFLOAT_H
#define HERBGRIND_REAL_BIGFLOAT_H

#include "support/LimbAlloc.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace herbgrind {

/// An arbitrary-precision binary float with IEEE-style specials.
class BigFloat {
public:
  enum class Kind : uint8_t { Zero, Finite, Inf, NaN };

  /// Limbs stored inline in the object (256 bits, the default precision).
  static constexpr unsigned InlineLimbCount = 4;

  /// Constructs +0 at the default precision.
  BigFloat() = default;

  /// \name Constructors for special values and conversions.
  /// @{
  static BigFloat zero(bool Negative = false);
  static BigFloat inf(bool Negative = false);
  static BigFloat nan();

  /// Converts a double exactly (any precision >= 53 bits represents every
  /// finite double exactly; the minimum one limb does too).
  static BigFloat fromDouble(double X, size_t PrecBits = 0);

  /// Converts a float exactly.
  static BigFloat fromFloat(float X, size_t PrecBits = 0);

  /// Converts an integer exactly (rounding if PrecBits < 64 is impossible
  /// since the minimum precision is one limb).
  static BigFloat fromInt64(int64_t X, size_t PrecBits = 0);
  static BigFloat fromUInt64(uint64_t X, size_t PrecBits = 0);

  /// Builds (-1)^Negative * Mant * 2^Exp2 exactly.
  static BigFloat fromMantissaExp(bool Negative, uint64_t Mant, int64_t Exp2,
                                  size_t PrecBits = 0);
  /// @}

  /// \name Observers.
  /// @{
  Kind kind() const { return K; }
  bool isZero() const { return K == Kind::Zero; }
  bool isFinite() const { return K == Kind::Zero || K == Kind::Finite; }
  bool isInf() const { return K == Kind::Inf; }
  bool isNaN() const { return K == Kind::NaN; }
  bool isNegative() const { return Neg; }

  /// Precision in bits (multiple of 64). Meaningful for every kind; specials
  /// remember a precision so results inherit a sensible one.
  size_t precisionBits() const { return LimbCountHint * 64; }

  /// For finite nonzero values, the binary exponent E such that
  /// |value| lies in [2^(E-1), 2^E).
  int64_t exponent() const;

  /// True if the value is a (mathematical) integer.
  bool isInteger() const;

  /// True if the value is an odd integer (used by pow's sign rules).
  bool isOddInteger() const;
  /// @}

  /// \name Rounding conversions.
  /// @{
  /// Correctly rounded (nearest-even) conversion to double, including
  /// subnormal and overflow handling.
  double toDouble() const;

  /// Correctly rounded conversion to float.
  float toFloat() const;

  /// Truncates toward zero and saturates to the int64 range. NaN maps to 0,
  /// mirroring a well-defined flavor of the x86 conversion the IR uses.
  int64_t toInt64Trunc() const;

  /// Re-rounds this value to a new precision (nearest-even).
  BigFloat withPrecision(size_t PrecBits) const;
  /// @}

  /// \name Sign manipulations (exact).
  /// @{
  BigFloat negated() const;
  BigFloat abs() const;
  BigFloat copySign(const BigFloat &SignSource) const;
  /// @}

  /// \name Arithmetic. Results are correctly rounded to the larger operand
  /// precision. Special values follow IEEE-754 semantics.
  ///
  /// The `*Into` forms write the result into \p Dst, which may alias either
  /// operand; they reuse Dst's storage and are the allocation-free spelling
  /// used by the shadow hot path. The value-returning forms are thin
  /// wrappers.
  /// @{
  static void addInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B);
  static void subInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B);
  static void mulInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B);
  static void divInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B);
  static void sqrtInto(BigFloat &Dst, const BigFloat &X);

  static BigFloat add(const BigFloat &A, const BigFloat &B);
  static BigFloat sub(const BigFloat &A, const BigFloat &B);
  static BigFloat mul(const BigFloat &A, const BigFloat &B);
  static BigFloat div(const BigFloat &A, const BigFloat &B);
  static BigFloat sqrt(const BigFloat &X);

  /// Exact product at the sum of the operand precisions (no rounding).
  static BigFloat mulExact(const BigFloat &A, const BigFloat &B);

  /// Fused multiply-add: A*B + C with a single rounding.
  static BigFloat fma(const BigFloat &A, const BigFloat &B, const BigFloat &C);

  /// Exact scaling by 2^Shift.
  static BigFloat scalb(const BigFloat &X, int64_t Shift);

  static BigFloat fmin(const BigFloat &A, const BigFloat &B);
  static BigFloat fmax(const BigFloat &A, const BigFloat &B);
  /// @}

  /// \name Integer roundings (exact).
  /// @{
  BigFloat floor() const;
  BigFloat ceil() const;
  BigFloat trunc() const;
  /// Rounds to nearest integer, ties away from zero (like std::round).
  BigFloat roundNearest() const;
  /// Rounds to nearest integer, ties to even (like rint in RNE mode).
  BigFloat roundNearestEven() const;
  /// @}

  /// \name Comparisons.
  /// @{
  /// Three-way comparison of finite-or-infinite values: -1, 0, or +1.
  /// Neither argument may be NaN.
  static int cmp(const BigFloat &A, const BigFloat &B);

  /// IEEE predicates: any comparison with NaN is false (ne is true).
  static bool lt(const BigFloat &A, const BigFloat &B);
  static bool le(const BigFloat &A, const BigFloat &B);
  static bool gt(const BigFloat &A, const BigFloat &B);
  static bool ge(const BigFloat &A, const BigFloat &B);
  static bool eq(const BigFloat &A, const BigFloat &B);
  static bool ne(const BigFloat &A, const BigFloat &B);
  /// @}

  /// Hex-ish representation for debugging: "-0x.ab12...p+12[256]".
  std::string debugStr() const;

  /// \name Default precision configuration.
  /// @{
  static size_t defaultPrecisionBits();
  static void setDefaultPrecisionBits(size_t Bits);
  /// @}

  /// Rounds PrecBits up to a whole number of limbs (minimum one).
  static size_t limbsForPrecision(size_t PrecBits);

private:
  friend class BigFloatBuilder;

  Kind K = Kind::Zero;
  bool Neg = false;
  /// Exponent: value = frac * 2^Exp with frac in [1/2, 1). Only for Finite.
  int64_t Exp = 0;
  /// Little-endian mantissa limbs; top bit of the top limb set when Finite.
  /// Inline up to InlineLimbCount limbs; spills to the per-thread limb
  /// cache above that.
  InlineLimbs<InlineLimbCount> Limbs;
  /// Precision carried by specials (and equal to Limbs.size() when Finite).
  uint32_t LimbCountHint = 1;
};

/// Internal constructor/rounding toolkit shared with RealMath.cpp. Public
/// API users never need this. Mantissas are raw little-endian limb buffers;
/// the `Into` entry points require that \p Mant does not alias \p Dst's
/// storage (every caller rounds out of a scratch buffer).
class BigFloatBuilder {
public:
  /// Builds a finite value by rounding an extended mantissa to TargetLimbs
  /// into \p Dst. \p Mant is little-endian with its top bit set
  /// (normalized); \p Sticky accounts for any nonzero bits below Mant; the
  /// value being rounded is (-1)^Neg * frac(Mant) * 2^Exp.
  static void makeRoundedInto(BigFloat &Dst, bool Neg, int64_t Exp,
                              const uint64_t *Mant, size_t MantLimbs,
                              bool Sticky, size_t TargetLimbs);

  /// Normalizes a possibly-denormalized extended mantissa in place (shifts
  /// out leading zero bits, adjusting Exp), then rounds into \p Dst. Writes
  /// zero if Mant is all zeros and Sticky is clear; asserts if Mant is zero
  /// but Sticky set.
  static void normalizeAndRoundInto(BigFloat &Dst, bool Neg, int64_t Exp,
                                    uint64_t *Mant, size_t MantLimbs,
                                    bool Sticky, size_t TargetLimbs);

  /// Direct access for RealMath: mantissa limbs of a finite value.
  static const uint64_t *limbs(const BigFloat &X) { return X.Limbs.data(); }
  static size_t limbCount(const BigFloat &X) { return X.Limbs.size(); }
  static int64_t rawExp(const BigFloat &X) { return X.Exp; }
};

} // namespace herbgrind

#endif // HERBGRIND_REAL_BIGFLOAT_H
