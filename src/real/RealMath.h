//===- real/RealMath.h - Transcendental functions on BigFloat ---*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transcendental functions over BigFloat, the part of the MPFR substitute
/// that lets the shadow-real execution evaluate libm-style operations
/// exactly (Section 5.3 "library wrapping"). Each function computes at the
/// input precision plus guard bits and returns a result faithful at the
/// input precision; special values follow C99/IEEE conventions so the
/// shadow semantics match what the client binary's libm would have meant.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_REAL_REALMATH_H
#define HERBGRIND_REAL_REALMATH_H

#include "real/BigFloat.h"

namespace herbgrind {
namespace realmath {

/// \name Cached constants at (at least) the requested precision.
/// @{
BigFloat pi(size_t PrecBits);
BigFloat ln2(size_t PrecBits);
BigFloat ln10(size_t PrecBits);
BigFloat eulerE(size_t PrecBits);
/// @}

/// \name Exponentials and logarithms.
/// @{
BigFloat exp(const BigFloat &X);
BigFloat exp2(const BigFloat &X);
BigFloat expm1(const BigFloat &X);
BigFloat log(const BigFloat &X);
BigFloat log2(const BigFloat &X);
BigFloat log10(const BigFloat &X);
BigFloat log1p(const BigFloat &X);
/// @}

/// \name Trigonometry.
/// @{
BigFloat sin(const BigFloat &X);
BigFloat cos(const BigFloat &X);
BigFloat tan(const BigFloat &X);
BigFloat asin(const BigFloat &X);
BigFloat acos(const BigFloat &X);
BigFloat atan(const BigFloat &X);
BigFloat atan2(const BigFloat &Y, const BigFloat &X);
/// @}

/// \name Hyperbolics.
/// @{
BigFloat sinh(const BigFloat &X);
BigFloat cosh(const BigFloat &X);
BigFloat tanh(const BigFloat &X);
/// @}

/// \name Powers and roots.
/// @{
BigFloat pow(const BigFloat &X, const BigFloat &Y);
BigFloat cbrt(const BigFloat &X);
BigFloat hypot(const BigFloat &X, const BigFloat &Y);
/// @}

/// \name Remainders.
/// @{
BigFloat fmod(const BigFloat &X, const BigFloat &Y);
BigFloat remainder(const BigFloat &X, const BigFloat &Y);
/// @}

} // namespace realmath
} // namespace herbgrind

#endif // HERBGRIND_REAL_REALMATH_H
