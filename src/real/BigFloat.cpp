//===- real/BigFloat.cpp - Arbitrary-precision binary floats --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Representation: a finite value is (-1)^Neg * frac * 2^Exp where frac is a
// little-endian limb vector read as a fraction in [1/2, 1) (the top bit of
// the top limb is always set). All rounding is round-to-nearest-even and is
// performed by BigFloatBuilder::makeRoundedInto from an extended mantissa
// plus a sticky flag summarizing any nonzero bits below it.
//
// The limb kernels below are mpn-style: they operate on raw limb pointers,
// and every intermediate mantissa lives in a fixed-capacity stack scratch
// buffer (Scratch, 16 limbs inline -- enough for every operation at the
// default 256-bit precision and for the 384-bit transcendental working
// precision). Wider precisions spill the scratch to the per-thread limb
// cache, so even they do not reach the heap in steady state.
//
//===----------------------------------------------------------------------===//

#include "real/BigFloat.h"

#include "support/FloatBits.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace herbgrind;

static size_t GlobalDefaultPrecisionBits = 256;

size_t BigFloat::defaultPrecisionBits() { return GlobalDefaultPrecisionBits; }

void BigFloat::setDefaultPrecisionBits(size_t Bits) {
  assert(Bits >= 64 && "precision must be at least one limb");
  GlobalDefaultPrecisionBits = Bits;
}

size_t BigFloat::limbsForPrecision(size_t PrecBits) {
  if (PrecBits == 0)
    PrecBits = GlobalDefaultPrecisionBits;
  return std::max<size_t>(1, (PrecBits + 63) / 64);
}

//===----------------------------------------------------------------------===//
// Raw limb kernels (little-endian).
//===----------------------------------------------------------------------===//

namespace {
/// Stack scratch for intermediate mantissas; covers every buffer the core
/// operations need at <= 6-limb (384-bit) working precision.
using Scratch = InlineLimbs<16>;
} // namespace

static int leadingZeros64(uint64_t X) {
  assert(X != 0 && "clz of zero is undefined");
  return __builtin_clzll(X);
}

static bool vecIsZero(const uint64_t *V, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (V[I] != 0)
      return false;
  return true;
}

/// Compares equal-length magnitude vectors: -1, 0, +1.
static int cmpVec(const uint64_t *A, const uint64_t *B, size_t N) {
  for (size_t I = N; I-- > 0;) {
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  }
  return 0;
}

/// A += B (equal lengths); returns the carry out.
static uint64_t addVecInPlace(uint64_t *A, const uint64_t *B, size_t N) {
  unsigned __int128 Carry = 0;
  for (size_t I = 0; I < N; ++I) {
    unsigned __int128 Sum = (unsigned __int128)A[I] + B[I] + Carry;
    A[I] = static_cast<uint64_t>(Sum);
    Carry = Sum >> 64;
  }
  return static_cast<uint64_t>(Carry);
}

/// A -= B (equal lengths, requires A >= B).
static void subVecInPlace(uint64_t *A, const uint64_t *B, size_t N) {
  unsigned __int128 Borrow = 0;
  for (size_t I = 0; I < N; ++I) {
    unsigned __int128 Diff = (unsigned __int128)A[I] - B[I] - Borrow;
    A[I] = static_cast<uint64_t>(Diff);
    Borrow = (Diff >> 64) & 1;
  }
  assert(Borrow == 0 && "subVecInPlace requires A >= B");
  (void)Borrow;
}

/// Subtracts 1 from A (requires A != 0).
static void decrementVec(uint64_t *A, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    if (A[I]-- != 0)
      return;
  }
  assert(false && "decrementVec underflow");
}

/// Adds 1 at bit position Pos (must not overflow the vector).
static void addBitAt(uint64_t *A, size_t N, size_t Pos) {
  size_t LimbIdx = Pos / 64;
  assert(LimbIdx < N && "addBitAt position out of range");
  uint64_t Old = A[LimbIdx];
  A[LimbIdx] += 1ULL << (Pos % 64);
  bool Carry = A[LimbIdx] < Old;
  for (size_t I = LimbIdx + 1; Carry && I < N; ++I) {
    ++A[I];
    Carry = A[I] == 0;
  }
  assert(!Carry && "addBitAt overflowed the vector");
}

/// Reads bit Pos of A (0 = least significant).
static bool getBit(const uint64_t *A, size_t N, size_t Pos) {
  size_t LimbIdx = Pos / 64;
  if (LimbIdx >= N)
    return false;
  return (A[LimbIdx] >> (Pos % 64)) & 1;
}

/// Shifts A right by Shift bits in place; ORs dropped nonzero bits into
/// Sticky.
static void shiftRightVec(uint64_t *A, size_t N, size_t Shift, bool &Sticky) {
  size_t LimbShift = Shift / 64;
  size_t BitShift = Shift % 64;
  if (LimbShift >= N) {
    if (!vecIsZero(A, N))
      Sticky = true;
    std::memset(A, 0, N * sizeof(uint64_t));
    return;
  }
  for (size_t I = 0; I < LimbShift; ++I)
    if (A[I] != 0)
      Sticky = true;
  if (BitShift == 0) {
    for (size_t I = 0; I + LimbShift < N; ++I)
      A[I] = A[I + LimbShift];
  } else {
    if ((A[LimbShift] & ((1ULL << BitShift) - 1)) != 0)
      Sticky = true;
    for (size_t I = 0; I + LimbShift < N; ++I) {
      uint64_t Low = A[I + LimbShift] >> BitShift;
      uint64_t High = I + LimbShift + 1 < N
                          ? A[I + LimbShift + 1] << (64 - BitShift)
                          : 0;
      A[I] = Low | High;
    }
  }
  std::memset(A + (N - LimbShift), 0, LimbShift * sizeof(uint64_t));
}

/// Shifts A left by Shift bits in place (bits shifted past the top are
/// dropped; callers guarantee they are zero).
static void shiftLeftVec(uint64_t *A, size_t N, size_t Shift) {
  size_t LimbShift = Shift / 64;
  size_t BitShift = Shift % 64;
  if (LimbShift >= N) {
    std::memset(A, 0, N * sizeof(uint64_t));
    return;
  }
  if (BitShift == 0) {
    for (size_t I = N; I-- > LimbShift;)
      A[I] = A[I - LimbShift];
  } else {
    for (size_t I = N; I-- > LimbShift;) {
      uint64_t High = A[I - LimbShift] << BitShift;
      uint64_t Low = I - LimbShift > 0
                         ? A[I - LimbShift - 1] >> (64 - BitShift)
                         : 0;
      A[I] = High | Low;
    }
  }
  std::memset(A, 0, LimbShift * sizeof(uint64_t));
}

/// Schoolbook multiplication into R (NA + NB limbs, zeroed by the caller).
/// R must not alias A or B; A and B may alias each other.
static void mulVec(uint64_t *R, const uint64_t *A, size_t NA,
                   const uint64_t *B, size_t NB) {
  for (size_t I = 0; I < NA; ++I) {
    if (A[I] == 0)
      continue;
    unsigned __int128 Carry = 0;
    for (size_t J = 0; J < NB; ++J) {
      unsigned __int128 Cur = (unsigned __int128)A[I] * B[J] + R[I + J] + Carry;
      R[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    R[I + NB] += static_cast<uint64_t>(Carry);
  }
}

/// Knuth algorithm D: divides U (NU limbs) by V (NV limbs, normalized: top
/// bit of V[NV-1] set, NU >= NV >= 1). Writes the quotient's NU - NV + 1
/// limbs to Q and leaves the remainder in U (its top limbs zeroed).
/// \p RScratch must hold NU + 1 limbs; Q and RScratch must not alias U or V.
static void divmodVec(uint64_t *U, size_t NU, const uint64_t *V, size_t NV,
                      uint64_t *Q, uint64_t *RScratch) {
  assert(NV >= 1 && NU >= NV && "divmodVec size mismatch");
  assert((V[NV - 1] >> 63) == 1 && "divisor must be normalized");

  if (NV == 1) {
    unsigned __int128 Rem = 0;
    for (size_t I = NU; I-- > 0;) {
      unsigned __int128 Cur = (Rem << 64) | U[I];
      Q[I] = static_cast<uint64_t>(Cur / V[0]);
      Rem = Cur % V[0];
    }
    std::memset(U, 0, NU * sizeof(uint64_t));
    U[0] = static_cast<uint64_t>(Rem);
    return;
  }

  // Work on a copy of U with one extra high limb.
  uint64_t *R = RScratch;
  std::memcpy(R, U, NU * sizeof(uint64_t));
  R[NU] = 0;

  for (size_t JP1 = NU - NV + 1; JP1-- > 0;) {
    size_t J = JP1;
    unsigned __int128 Num =
        ((unsigned __int128)R[J + NV] << 64) | R[J + NV - 1];
    unsigned __int128 QHat = Num / V[NV - 1];
    unsigned __int128 RHat = Num % V[NV - 1];
    // Correct QHat down until it is a valid 64-bit digit estimate.
    while (QHat >> 64 ||
           QHat * V[NV - 2] > ((RHat << 64) | R[J + NV - 2])) {
      --QHat;
      RHat += V[NV - 1];
      if (RHat >> 64)
        break;
    }
    // Multiply-subtract QHat * V from R[J .. J+NV].
    uint64_t QDigit = static_cast<uint64_t>(QHat);
    unsigned __int128 Borrow = 0;
    unsigned __int128 Carry = 0;
    for (size_t I = 0; I < NV; ++I) {
      unsigned __int128 Prod = (unsigned __int128)QDigit * V[I] + Carry;
      Carry = Prod >> 64;
      unsigned __int128 Diff =
          (unsigned __int128)R[J + I] - (uint64_t)Prod - Borrow;
      R[J + I] = static_cast<uint64_t>(Diff);
      Borrow = (Diff >> 64) & 1;
    }
    unsigned __int128 Diff = (unsigned __int128)R[J + NV] - Carry - Borrow;
    R[J + NV] = static_cast<uint64_t>(Diff);
    bool WentNegative = (Diff >> 64) & 1;
    if (WentNegative) {
      // QHat was one too large; add V back.
      --QDigit;
      unsigned __int128 AddCarry = 0;
      for (size_t I = 0; I < NV; ++I) {
        unsigned __int128 Sum = (unsigned __int128)R[J + I] + V[I] + AddCarry;
        R[J + I] = static_cast<uint64_t>(Sum);
        AddCarry = Sum >> 64;
      }
      R[J + NV] += static_cast<uint64_t>(AddCarry);
    }
    Q[J] = QDigit;
  }

  // Remainder is R[0 .. NV-1].
  for (size_t I = 0; I < NU; ++I)
    U[I] = I < NV ? R[I] : 0;
}

//===----------------------------------------------------------------------===//
// Rounding construction.
//===----------------------------------------------------------------------===//

void BigFloatBuilder::makeRoundedInto(BigFloat &Dst, bool Neg, int64_t Exp,
                                      const uint64_t *Mant, size_t MantLimbs,
                                      bool Sticky, size_t TargetLimbs) {
  assert(MantLimbs > 0 && (Mant[MantLimbs - 1] >> 63) == 1 &&
         "makeRoundedInto requires a normalized mantissa");
  Dst.K = BigFloat::Kind::Finite;
  Dst.Neg = Neg;
  Dst.Exp = Exp;
  Dst.LimbCountHint = static_cast<uint32_t>(TargetLimbs);

  if (MantLimbs <= TargetLimbs) {
    // Exact (apart from Sticky bits strictly below the round position, which
    // round to nothing because the round bit itself is zero).
    Dst.Limbs.assignZeros(TargetLimbs);
    std::memcpy(Dst.Limbs.data() + (TargetLimbs - MantLimbs), Mant,
                MantLimbs * sizeof(uint64_t));
    return;
  }

  size_t Drop = MantLimbs - TargetLimbs;
  bool RoundBit = (Mant[Drop - 1] >> 63) & 1;
  bool StickyLocal = Sticky || (Mant[Drop - 1] & ~(1ULL << 63)) != 0;
  for (size_t I = 0; I + 1 < Drop && !StickyLocal; ++I)
    StickyLocal = Mant[I] != 0;

  Dst.Limbs.assignCopy(Mant + Drop, TargetLimbs);
  uint64_t *L = Dst.Limbs.data();
  bool LowBit = L[0] & 1;
  if (RoundBit && (StickyLocal || LowBit)) {
    // Increment; on carry-out the mantissa becomes exactly 2^(64*Target),
    // i.e. frac 1/2 at Exp+1.
    uint64_t Carry = 1;
    for (size_t I = 0; I < TargetLimbs && Carry; ++I) {
      L[I] += Carry;
      Carry = L[I] == 0 ? 1 : 0;
    }
    if (Carry) {
      std::memset(L, 0, TargetLimbs * sizeof(uint64_t));
      L[TargetLimbs - 1] = 1ULL << 63;
      ++Dst.Exp;
    }
  }
  assert((Dst.Limbs.back() >> 63) == 1 && "rounding lost normalization");
}

void BigFloatBuilder::normalizeAndRoundInto(BigFloat &Dst, bool Neg,
                                            int64_t Exp, uint64_t *Mant,
                                            size_t MantLimbs, bool Sticky,
                                            size_t TargetLimbs) {
  size_t TopIdx = MantLimbs;
  while (TopIdx > 0 && Mant[TopIdx - 1] == 0)
    --TopIdx;
  if (TopIdx == 0) {
    assert(!Sticky && "cannot normalize a pure-sticky value");
    Dst = BigFloat::zero(false);
    return;
  }
  size_t Shift = (MantLimbs - TopIdx) * 64 +
                 static_cast<size_t>(leadingZeros64(Mant[TopIdx - 1]));
  // When Sticky bits exist below the buffer, the left shift must not move
  // the round position past them; callers size their buffers to guarantee
  // this (see BigFloat.cpp commentary on add/div/sqrt).
  assert(!Sticky || MantLimbs > TargetLimbs);
  assert(!Sticky || Shift <= 64 * (MantLimbs - TargetLimbs));
  if (Shift > 0)
    shiftLeftVec(Mant, MantLimbs, Shift);
  makeRoundedInto(Dst, Neg, Exp - static_cast<int64_t>(Shift), Mant,
                  MantLimbs, Sticky, TargetLimbs);
}

//===----------------------------------------------------------------------===//
// Constructors and conversions.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::zero(bool Negative) {
  BigFloat R;
  R.K = Kind::Zero;
  R.Neg = Negative;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::inf(bool Negative) {
  BigFloat R;
  R.K = Kind::Inf;
  R.Neg = Negative;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::nan() {
  BigFloat R;
  R.K = Kind::NaN;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::fromMantissaExp(bool Negative, uint64_t Mant, int64_t Exp2,
                                   size_t PrecBits) {
  size_t N = limbsForPrecision(PrecBits);
  if (Mant == 0) {
    BigFloat R = zero(Negative);
    R.LimbCountHint = static_cast<uint32_t>(N);
    return R;
  }
  int Lz = leadingZeros64(Mant);
  BigFloat R;
  R.K = Kind::Finite;
  R.Neg = Negative;
  R.Exp = Exp2 + 64 - Lz;
  R.Limbs.assignZeros(N);
  R.Limbs[N - 1] = Mant << Lz;
  R.LimbCountHint = static_cast<uint32_t>(N);
  return R;
}

BigFloat BigFloat::fromDouble(double X, size_t PrecBits) {
  if (std::isnan(X))
    return nan();
  if (std::isinf(X))
    return inf(X < 0);
  uint64_t Bits = bitsOfDouble(X);
  bool Negative = Bits >> 63;
  uint64_t ExpField = (Bits >> 52) & 0x7ff;
  uint64_t MantField = Bits & ((1ULL << 52) - 1);
  if (ExpField == 0) {
    // Subnormal (or zero): value = MantField * 2^-1074.
    if (MantField == 0) {
      BigFloat R = zero(Negative);
      R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(PrecBits));
      return R;
    }
    return fromMantissaExp(Negative, MantField, -1074, PrecBits);
  }
  // Normal: value = (2^52 + MantField) * 2^(ExpField - 1075).
  return fromMantissaExp(Negative, (1ULL << 52) | MantField,
                         static_cast<int64_t>(ExpField) - 1075, PrecBits);
}

BigFloat BigFloat::fromFloat(float X, size_t PrecBits) {
  if (std::isnan(X))
    return nan();
  if (std::isinf(X))
    return inf(X < 0);
  uint32_t Bits = bitsOfFloat(X);
  bool Negative = Bits >> 31;
  uint32_t ExpField = (Bits >> 23) & 0xff;
  uint32_t MantField = Bits & ((1U << 23) - 1);
  if (ExpField == 0) {
    if (MantField == 0) {
      BigFloat R = zero(Negative);
      R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(PrecBits));
      return R;
    }
    return fromMantissaExp(Negative, MantField, -149, PrecBits);
  }
  return fromMantissaExp(Negative, (1U << 23) | MantField,
                         static_cast<int64_t>(ExpField) - 150, PrecBits);
}

BigFloat BigFloat::fromInt64(int64_t X, size_t PrecBits) {
  if (X >= 0)
    return fromMantissaExp(false, static_cast<uint64_t>(X), 0, PrecBits);
  // -INT64_MIN overflows; negate in unsigned arithmetic.
  return fromMantissaExp(true, ~static_cast<uint64_t>(X) + 1, 0, PrecBits);
}

BigFloat BigFloat::fromUInt64(uint64_t X, size_t PrecBits) {
  return fromMantissaExp(false, X, 0, PrecBits);
}

namespace {
/// IEEE destination format parameters for rounding conversions.
struct IEEEFormat {
  int MantBits;      ///< Including the implicit bit (53 for double).
  int64_t MaxExp;    ///< Values with Exp > MaxExp after rounding overflow.
  int64_t MinNormal; ///< Smallest Exp that is still a normal number.
  int64_t SubOffset; ///< -log2(smallest subnormal) (1074 for double).
  int ExpBias;       ///< Exponent bias (1023 for double).
};
} // namespace

static const IEEEFormat DoubleFormat = {53, 1024, -1021, 1074, 1023};
static const IEEEFormat FloatFormat = {24, 128, -125, 149, 127};

/// Extracts the top KeepBits bits of a normalized mantissa as an integer,
/// rounding to nearest-even with the remaining bits (plus StickyIn).
/// The result may be 2^KeepBits (carry), which callers must handle.
static uint64_t roundTopBits(const uint64_t *Limbs, size_t N, int KeepBits,
                             bool StickyIn) {
  assert(KeepBits >= 0 && KeepBits <= 63 && "roundTopBits range");
  // The kept bits, round bit, and the top of the sticky region all live in
  // the top two limbs; gather them into one 128-bit window.
  unsigned __int128 Window = (unsigned __int128)Limbs[N - 1] << 64;
  if (N >= 2)
    Window |= Limbs[N - 2];
  uint64_t Kept =
      KeepBits == 0 ? 0 : static_cast<uint64_t>(Window >> (128 - KeepBits));
  bool RoundBit = (Window >> (127 - KeepBits)) & 1;
  bool Sticky = StickyIn;
  unsigned __int128 BelowMask =
      (((unsigned __int128)1) << (127 - KeepBits)) - 1;
  if (Window & BelowMask)
    Sticky = true;
  for (size_t I = 0; I + 2 < N && !Sticky; ++I)
    Sticky = Limbs[I] != 0;
  if (RoundBit && (Sticky || (Kept & 1)))
    ++Kept;
  return Kept;
}

/// Shared double/float conversion.
static uint64_t roundToIEEEBits(const BigFloat &X, const IEEEFormat &Fmt) {
  uint64_t SignBit = X.isNegative() ? 1ULL << (Fmt.MantBits == 53 ? 63 : 31)
                                    : 0;
  const uint64_t *Limbs = BigFloatBuilder::limbs(X);
  size_t N = BigFloatBuilder::limbCount(X);
  int64_t Exp = BigFloatBuilder::rawExp(X);
  uint64_t InfBits =
      Fmt.MantBits == 53 ? 0x7ffULL << 52 : static_cast<uint64_t>(0xff) << 23;
  int FieldBits = Fmt.MantBits - 1;

  if (Exp > Fmt.MaxExp)
    return SignBit | InfBits;

  if (Exp >= Fmt.MinNormal) {
    uint64_t M = roundTopBits(Limbs, N, Fmt.MantBits, false);
    if (M >> Fmt.MantBits) {
      // Carried to the next binade.
      M >>= 1;
      ++Exp;
      if (Exp > Fmt.MaxExp)
        return SignBit | InfBits;
    }
    uint64_t Biased = static_cast<uint64_t>(Exp - 1 + Fmt.ExpBias);
    uint64_t Field = M & ((1ULL << FieldBits) - 1);
    return SignBit | (Biased << FieldBits) | Field;
  }

  // Subnormal (or rounds to zero).
  int64_t KeepBits64 = Exp + Fmt.SubOffset;
  if (KeepBits64 < 0)
    return SignBit; // magnitude below half the smallest subnormal
  int KeepBits = static_cast<int>(std::min<int64_t>(KeepBits64, 63));
  uint64_t K = roundTopBits(Limbs, N, KeepBits, false);
  // K may equal 2^KeepBits, which is the next subnormal (or the smallest
  // normal when KeepBits == FieldBits); the bit pattern works out in both
  // cases because the subnormal field and exponent field are adjacent.
  return SignBit | K;
}

double BigFloat::toDouble() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? -0.0 : 0.0;
  case Kind::Inf:
    return Neg ? -HUGE_VAL : HUGE_VAL;
  case Kind::NaN:
    return std::nan("");
  case Kind::Finite:
    return doubleFromBits(roundToIEEEBits(*this, DoubleFormat));
  }
  assert(false && "unknown kind");
  return 0.0;
}

float BigFloat::toFloat() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? -0.0f : 0.0f;
  case Kind::Inf:
    return Neg ? -HUGE_VALF : HUGE_VALF;
  case Kind::NaN:
    return std::nanf("");
  case Kind::Finite:
    return floatFromBits(
        static_cast<uint32_t>(roundToIEEEBits(*this, FloatFormat)));
  }
  assert(false && "unknown kind");
  return 0.0f;
}

int64_t BigFloat::toInt64Trunc() const {
  switch (K) {
  case Kind::Zero:
    return 0;
  case Kind::NaN:
    return 0;
  case Kind::Inf:
    return Neg ? INT64_MIN : INT64_MAX;
  case Kind::Finite:
    break;
  }
  if (Exp <= 0)
    return 0;
  if (Exp > 64)
    return Neg ? INT64_MIN : INT64_MAX;
  // Integer part = top Exp bits of the mantissa.
  uint64_t Mag;
  if (Exp == 64) {
    Mag = Limbs.back();
  } else {
    Mag = Limbs.back() >> (64 - Exp);
  }
  if (!Neg)
    return Mag > static_cast<uint64_t>(INT64_MAX)
               ? INT64_MAX
               : static_cast<int64_t>(Mag);
  if (Mag > (1ULL << 63))
    return INT64_MIN;
  return -static_cast<int64_t>(Mag - 1) - 1;
}

BigFloat BigFloat::withPrecision(size_t PrecBits) const {
  size_t N = limbsForPrecision(PrecBits);
  BigFloat R = *this;
  R.LimbCountHint = static_cast<uint32_t>(N);
  if (K != Kind::Finite)
    return R;
  if (N == Limbs.size())
    return R;
  if (N > Limbs.size()) {
    R.Limbs.assignZeros(N);
    std::memcpy(R.Limbs.data() + (N - Limbs.size()), Limbs.data(),
                Limbs.size() * sizeof(uint64_t));
    return R;
  }
  BigFloatBuilder::makeRoundedInto(R, Neg, Exp, Limbs.data(), Limbs.size(),
                                   false, N);
  return R;
}

//===----------------------------------------------------------------------===//
// Observers.
//===----------------------------------------------------------------------===//

int64_t BigFloat::exponent() const {
  assert(K == Kind::Finite && "exponent of a non-finite/zero value");
  return Exp;
}

bool BigFloat::isInteger() const {
  switch (K) {
  case Kind::Zero:
    return true;
  case Kind::Inf:
  case Kind::NaN:
    return false;
  case Kind::Finite:
    break;
  }
  if (Exp <= 0)
    return false;
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp >= TotalBits)
    return true;
  // Fractional bits are the low (TotalBits - Exp) bits.
  size_t FracBits = static_cast<size_t>(TotalBits - Exp);
  for (size_t Pos = 0; Pos < FracBits; ++Pos)
    if (getBit(Limbs.data(), Limbs.size(), Pos))
      return false;
  return true;
}

bool BigFloat::isOddInteger() const {
  if (!isInteger() || K == Kind::Zero)
    return false;
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp > TotalBits)
    return false; // huge => divisible by large powers of two
  // The units bit of the integer part sits at position TotalBits - Exp.
  return getBit(Limbs.data(), Limbs.size(),
                static_cast<size_t>(TotalBits - Exp));
}

//===----------------------------------------------------------------------===//
// Sign manipulation.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::negated() const {
  BigFloat R = *this;
  if (K != Kind::NaN)
    R.Neg = !R.Neg;
  return R;
}

BigFloat BigFloat::abs() const {
  BigFloat R = *this;
  R.Neg = false;
  return R;
}

BigFloat BigFloat::copySign(const BigFloat &SignSource) const {
  BigFloat R = *this;
  R.Neg = SignSource.Neg;
  return R;
}

//===----------------------------------------------------------------------===//
// Comparison.
//===----------------------------------------------------------------------===//

/// Magnitude comparison of two finite nonzero values (signs ignored).
static int cmpFiniteMagnitudes(const BigFloat &A, const BigFloat &B) {
  int64_t EA = BigFloatBuilder::rawExp(A);
  int64_t EB = BigFloatBuilder::rawExp(B);
  if (EA != EB)
    return EA < EB ? -1 : 1;
  // Compare mantissas, treating missing low limbs as zero.
  const uint64_t *LA = BigFloatBuilder::limbs(A);
  const uint64_t *LB = BigFloatBuilder::limbs(B);
  size_t NA = BigFloatBuilder::limbCount(A);
  size_t NB = BigFloatBuilder::limbCount(B);
  size_t N = std::max(NA, NB);
  for (size_t I = N; I-- > 0;) {
    uint64_t VA = I >= N - NA ? LA[I - (N - NA)] : 0;
    uint64_t VB = I >= N - NB ? LB[I - (N - NB)] : 0;
    if (VA != VB)
      return VA < VB ? -1 : 1;
  }
  return 0;
}

int BigFloat::cmp(const BigFloat &A, const BigFloat &B) {
  assert(!A.isNaN() && !B.isNaN() && "cmp of NaN");
  bool AZero = A.isZero();
  bool BZero = B.isZero();
  if (AZero && BZero)
    return 0;
  if (AZero)
    return B.Neg ? 1 : -1;
  if (BZero)
    return A.Neg ? -1 : 1;
  if (A.Neg != B.Neg)
    return A.Neg ? -1 : 1;
  int SignFactor = A.Neg ? -1 : 1;
  if (A.isInf() || B.isInf()) {
    if (A.isInf() && B.isInf())
      return 0;
    return A.isInf() ? SignFactor : -SignFactor;
  }
  return SignFactor * cmpFiniteMagnitudes(A, B);
}

bool BigFloat::lt(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) < 0;
}

bool BigFloat::le(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) <= 0;
}

bool BigFloat::gt(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) > 0;
}

bool BigFloat::ge(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) >= 0;
}

bool BigFloat::eq(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) == 0;
}

bool BigFloat::ne(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return true;
  return cmp(A, B) != 0;
}

//===----------------------------------------------------------------------===//
// Arithmetic.
//===----------------------------------------------------------------------===//

/// Result precision rule: the larger of the operand precisions.
static size_t resultLimbs(const BigFloat &A, const BigFloat &B) {
  return std::max(BigFloat::limbsForPrecision(A.precisionBits()),
                  BigFloat::limbsForPrecision(B.precisionBits()));
}

/// Magnitude |A| + |B| with the given result sign (both finite nonzero).
/// Reads both operands into scratch before writing Dst, so Dst may alias.
static void addMagnitudesInto(BigFloat &Dst, const BigFloat &A,
                              const BigFloat &B, bool Neg, size_t Target) {
  const uint64_t *MHi = BigFloatBuilder::limbs(A);
  const uint64_t *MLo = BigFloatBuilder::limbs(B);
  size_t NHi = BigFloatBuilder::limbCount(A);
  size_t NLo = BigFloatBuilder::limbCount(B);
  int64_t EHi = BigFloatBuilder::rawExp(A);
  int64_t ELo = BigFloatBuilder::rawExp(B);
  if (EHi < ELo) {
    std::swap(MHi, MLo);
    std::swap(NHi, NLo);
    std::swap(EHi, ELo);
  }
  size_t W = Target + 2;
  assert(NHi <= Target && NLo <= Target &&
         "operand precision exceeds result precision");

  // Place Hi's mantissa at the top of a W-limb buffer.
  Scratch Buf;
  Buf.assignZeros(W);
  std::memcpy(Buf.data() + (W - NHi), MHi, NHi * sizeof(uint64_t));
  // Place Lo at the top too, then shift it down into alignment.
  Scratch LoBuf;
  LoBuf.assignZeros(W);
  std::memcpy(LoBuf.data() + (W - NLo), MLo, NLo * sizeof(uint64_t));
  bool Sticky = false;
  uint64_t Diff = static_cast<uint64_t>(EHi - ELo);
  if (Diff >= W * 64) {
    std::memset(LoBuf.data(), 0, W * sizeof(uint64_t));
    Sticky = true;
  } else {
    shiftRightVec(LoBuf.data(), W, static_cast<size_t>(Diff), Sticky);
  }

  uint64_t Carry = addVecInPlace(Buf.data(), LoBuf.data(), W);
  int64_t Exp = EHi;
  if (Carry) {
    shiftRightVec(Buf.data(), W, 1, Sticky);
    Buf[W - 1] |= 1ULL << 63;
    ++Exp;
  }
  BigFloatBuilder::normalizeAndRoundInto(Dst, Neg, Exp, Buf.data(), W, Sticky,
                                         Target);
}

/// Magnitude |A| - |B| with |A| > |B| (the caller pre-orders operands and
/// peels off the exactly-equal case). Sign Neg applies to the |A| >= |B|
/// orientation. Alias-safe like addMagnitudesInto.
static void subMagnitudesInto(BigFloat &Dst, const BigFloat &A,
                              const BigFloat &B, bool Neg, size_t Target) {
  const uint64_t *MA = BigFloatBuilder::limbs(A);
  const uint64_t *MB = BigFloatBuilder::limbs(B);
  size_t NA = BigFloatBuilder::limbCount(A);
  size_t NB = BigFloatBuilder::limbCount(B);
  int64_t EA = BigFloatBuilder::rawExp(A);
  int64_t EB = BigFloatBuilder::rawExp(B);
  assert(EA >= EB && "subMagnitudesInto requires pre-ordered operands");
  size_t W = Target + 2;
  Scratch Buf;
  Buf.assignZeros(W);
  std::memcpy(Buf.data() + (W - NA), MA, NA * sizeof(uint64_t));
  Scratch LoBuf;
  LoBuf.assignZeros(W);
  std::memcpy(LoBuf.data() + (W - NB), MB, NB * sizeof(uint64_t));
  bool Sticky = false;
  uint64_t Diff = static_cast<uint64_t>(EA - EB);
  if (Diff >= W * 64) {
    std::memset(LoBuf.data(), 0, W * sizeof(uint64_t));
    Sticky = true;
  } else {
    shiftRightVec(LoBuf.data(), W, static_cast<size_t>(Diff), Sticky);
  }

  // Equal buffers imply exactly equal values (Sticky requires an exponent
  // gap >= 1, which forces LoBuf's top bit clear while Buf's is set), and
  // the caller already peeled off the exactly-equal case.
  assert(cmpVec(Buf.data(), LoBuf.data(), W) > 0 &&
         "subMagnitudesInto operands not pre-ordered");
  subVecInPlace(Buf.data(), LoBuf.data(), W);
  if (Sticky) {
    // The dropped bits of B make the true result slightly smaller than Buf;
    // represent that as (Buf - 1ulp) + sticky.
    assert(!vecIsZero(Buf.data(), W) &&
           "sticky subtraction cannot cancel to zero");
    decrementVec(Buf.data(), W);
    if (vecIsZero(Buf.data(), W)) {
      // Result is strictly between 0 and one buffer ulp: impossible, since
      // Sticky requires an exponent gap much larger than the buffer.
      assert(false && "sticky cancellation to zero");
    }
  }
  BigFloatBuilder::normalizeAndRoundInto(Dst, Neg, EA, Buf.data(), W, Sticky,
                                         Target);
}

void BigFloat::addInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN()) {
    Dst = nan();
    return;
  }
  if (A.isInf() || B.isInf()) {
    if (A.isInf() && B.isInf())
      Dst = A.Neg == B.Neg ? A : nan();
    else
      Dst = A.isInf() ? A : B;
    return;
  }
  if (A.isZero() && B.isZero()) {
    Dst = zero(A.Neg && B.Neg);
    return;
  }
  if (A.isZero()) {
    Dst = B.withPrecision(Target * 64);
    return;
  }
  if (B.isZero()) {
    Dst = A.withPrecision(Target * 64);
    return;
  }

  if (A.Neg == B.Neg) {
    addMagnitudesInto(Dst, A, B, A.Neg, Target);
    return;
  }

  // Opposite signs: compute |larger| - |smaller| with the larger's sign.
  int MagCmp = cmpFiniteMagnitudes(A, B);
  if (MagCmp == 0) {
    Dst = zero(false);
    return;
  }
  const BigFloat *Big = &A;
  const BigFloat *Small = &B;
  if (MagCmp < 0)
    std::swap(Big, Small);
  subMagnitudesInto(Dst, *Big, *Small, Big->Neg, Target);
}

void BigFloat::subInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B) {
  addInto(Dst, A, B.negated());
}

void BigFloat::mulInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN()) {
    Dst = nan();
    return;
  }
  bool Neg = A.Neg != B.Neg;
  if (A.isInf() || B.isInf()) {
    Dst = A.isZero() || B.isZero() ? nan() : inf(Neg);
    return;
  }
  if (A.isZero() || B.isZero()) {
    Dst = zero(Neg);
    return;
  }

  size_t NA = A.Limbs.size();
  size_t NB = B.Limbs.size();
  Scratch Prod;
  Prod.assignZeros(NA + NB);
  mulVec(Prod.data(), A.Limbs.data(), NA, B.Limbs.data(), NB);
  BigFloatBuilder::normalizeAndRoundInto(Dst, Neg, A.Exp + B.Exp, Prod.data(),
                                         NA + NB, false, Target);
}

BigFloat BigFloat::mulExact(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return nan();
  bool Neg = A.Neg != B.Neg;
  if (A.isInf() || B.isInf()) {
    if (A.isZero() || B.isZero())
      return nan();
    return inf(Neg);
  }
  if (A.isZero() || B.isZero())
    return zero(Neg);
  size_t NA = A.Limbs.size();
  size_t NB = B.Limbs.size();
  Scratch Prod;
  Prod.assignZeros(NA + NB);
  mulVec(Prod.data(), A.Limbs.data(), NA, B.Limbs.data(), NB);
  BigFloat R;
  BigFloatBuilder::normalizeAndRoundInto(R, Neg, A.Exp + B.Exp, Prod.data(),
                                         NA + NB, false, NA + NB);
  return R;
}

void BigFloat::divInto(BigFloat &Dst, const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN()) {
    Dst = nan();
    return;
  }
  bool Neg = A.Neg != B.Neg;
  if (A.isInf()) {
    Dst = B.isInf() ? nan() : inf(Neg);
    return;
  }
  if (B.isInf()) {
    Dst = zero(Neg);
    return;
  }
  if (B.isZero()) {
    Dst = A.isZero() ? nan() : inf(Neg);
    return;
  }
  if (A.isZero()) {
    Dst = zero(Neg);
    return;
  }

  int64_t ExpA = A.Exp, ExpB = B.Exp;
  // Extend the divisor's mantissa to Target limbs.
  size_t N = Target;
  Scratch MB;
  MB.assignZeros(N);
  std::memcpy(MB.data() + (N - B.Limbs.size()), B.Limbs.data(),
              B.Limbs.size() * sizeof(uint64_t));

  // U = MA * 2^(64*(N+1)); quotient has N+2 limbs, top limb in {0, 1}.
  size_t NU = 2 * N + 1;
  Scratch U;
  U.assignZeros(NU);
  std::memcpy(U.data() + (N + 1) + (N - A.Limbs.size()), A.Limbs.data(),
              A.Limbs.size() * sizeof(uint64_t));
  size_t QN = NU - N + 1; // == N + 2
  Scratch Q;
  Q.assignZeros(QN);
  Scratch RS;
  RS.assignZeros(NU + 1);
  divmodVec(U.data(), NU, MB.data(), N, Q.data(), RS.data());
  bool Sticky = !vecIsZero(U.data(), NU);
  BigFloatBuilder::normalizeAndRoundInto(Dst, Neg, ExpA - ExpB + 64, Q.data(),
                                         QN, Sticky, Target);
}

void BigFloat::sqrtInto(BigFloat &Dst, const BigFloat &X) {
  if (X.isNaN()) {
    Dst = nan();
    return;
  }
  if (X.isZero()) {
    Dst = X;
    return;
  }
  if (X.Neg) {
    Dst = nan();
    return;
  }
  if (X.isInf()) {
    Dst = inf(false);
    return;
  }

  size_t N = X.Limbs.size();
  // Normalize to an even exponent: value = F * 2^E with E even and
  // F in [1/4, 1).
  int64_t E = X.Exp;
  Scratch F; // one extra low guard limb for the odd-exponent shift
  F.assignZeros(N + 1);
  std::memcpy(F.data() + 1, X.Limbs.data(), N * sizeof(uint64_t));
  if (E & 1) {
    bool Dummy = false;
    shiftRightVec(F.data(), N + 1, 1, Dummy);
    assert(!Dummy && "guard limb absorbed the shift");
    E += 1;
  }

  // Integer square root of Num = F * 2^(64*(N+1)) interpreted as an integer
  // of 2*(N+1) limbs. Result S = floor(sqrt(F')) has N+1 limbs with the top
  // bit set, i.e. exactly the mantissa-plus-guard-limb we want.
  size_t NI = N + 1;
  Scratch Num;
  Num.assignZeros(2 * NI);
  std::memcpy(Num.data() + NI, F.data(), NI * sizeof(uint64_t));

  // Classic bit-pair integer square root.
  Scratch Rem;
  Rem.assignZeros(2 * NI);
  Scratch Root;
  Root.assignZeros(2 * NI);
  Scratch Trial;
  Trial.assignZeros(2 * NI);
  for (size_t I = NI * 64; I-- > 0;) {
    // Rem = Rem*4 + next two bits of Num.
    shiftLeftVec(Rem.data(), 2 * NI, 2);
    if (getBit(Num.data(), 2 * NI, 2 * I + 1))
      addBitAt(Rem.data(), 2 * NI, 1);
    if (getBit(Num.data(), 2 * NI, 2 * I))
      addBitAt(Rem.data(), 2 * NI, 0);
    // Trial = Root*4 + 1 (Root currently holds the partial root shifted so
    // its low bit is at position 0).
    std::memcpy(Trial.data(), Root.data(), 2 * NI * sizeof(uint64_t));
    shiftLeftVec(Trial.data(), 2 * NI, 2);
    addBitAt(Trial.data(), 2 * NI, 0);
    shiftLeftVec(Root.data(), 2 * NI, 1);
    if (cmpVec(Rem.data(), Trial.data(), 2 * NI) >= 0) {
      subVecInPlace(Rem.data(), Trial.data(), 2 * NI);
      addBitAt(Root.data(), 2 * NI, 0);
    }
  }
  bool Sticky = !vecIsZero(Rem.data(), 2 * NI);
  assert((Root[NI - 1] >> 63) == 1 && "isqrt result not normalized");
  BigFloatBuilder::normalizeAndRoundInto(Dst, false, E / 2, Root.data(), NI,
                                         Sticky, N);
}

BigFloat BigFloat::add(const BigFloat &A, const BigFloat &B) {
  BigFloat R;
  addInto(R, A, B);
  return R;
}

BigFloat BigFloat::sub(const BigFloat &A, const BigFloat &B) {
  BigFloat R;
  subInto(R, A, B);
  return R;
}

BigFloat BigFloat::mul(const BigFloat &A, const BigFloat &B) {
  BigFloat R;
  mulInto(R, A, B);
  return R;
}

BigFloat BigFloat::div(const BigFloat &A, const BigFloat &B) {
  BigFloat R;
  divInto(R, A, B);
  return R;
}

BigFloat BigFloat::sqrt(const BigFloat &X) {
  BigFloat R;
  sqrtInto(R, X);
  return R;
}

BigFloat BigFloat::fma(const BigFloat &A, const BigFloat &B,
                       const BigFloat &C) {
  size_t Target = std::max(resultLimbs(A, B), limbsForPrecision(
                                                  C.precisionBits()));
  BigFloat P = mulExact(A, B);
  // Add at a precision wide enough to keep the exact product's bits in play,
  // then round once to the target.
  BigFloat CWide = C.withPrecision(P.precisionBits() + 128);
  BigFloat PWide = P.withPrecision(P.precisionBits() + 128);
  BigFloat Sum = add(PWide, CWide);
  return Sum.withPrecision(Target * 64);
}

BigFloat BigFloat::scalb(const BigFloat &X, int64_t Shift) {
  if (!X.isFinite() || X.isZero())
    return X;
  BigFloat R = X;
  R.Exp += Shift;
  return R;
}

BigFloat BigFloat::fmin(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN())
    return B;
  if (B.isNaN())
    return A;
  return cmp(A, B) <= 0 ? A : B;
}

BigFloat BigFloat::fmax(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN())
    return B;
  if (B.isNaN())
    return A;
  return cmp(A, B) >= 0 ? A : B;
}

//===----------------------------------------------------------------------===//
// Integer roundings.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::trunc() const {
  if (K != Kind::Finite)
    return *this;
  if (Exp <= 0)
    return zero(Neg);
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp >= TotalBits)
    return *this;
  BigFloat R = *this;
  size_t FracBits = static_cast<size_t>(TotalBits - Exp);
  size_t FullLimbs = FracBits / 64;
  size_t PartialBits = FracBits % 64;
  for (size_t I = 0; I < FullLimbs; ++I)
    R.Limbs[I] = 0;
  if (PartialBits)
    R.Limbs[FullLimbs] &= ~((1ULL << PartialBits) - 1);
  if (vecIsZero(R.Limbs.data(), R.Limbs.size()))
    return zero(Neg);
  return R;
}

/// True if this value has any fractional bits (i.e. trunc() != *this).
static bool hasFraction(const BigFloat &X) {
  return X.isFinite() && !X.isZero() && !X.isInteger();
}

BigFloat BigFloat::floor() const {
  if (K != Kind::Finite)
    return K == Kind::Zero ? zero(false) : *this;
  BigFloat T = trunc();
  if (!hasFraction(*this))
    return T;
  if (!Neg)
    return T;
  return sub(T, fromInt64(1, precisionBits()));
}

BigFloat BigFloat::ceil() const {
  if (K != Kind::Finite)
    return K == Kind::Zero ? zero(false) : *this;
  BigFloat T = trunc();
  if (!hasFraction(*this))
    return T;
  if (Neg)
    return T;
  return add(T, fromInt64(1, precisionBits()));
}

/// Fraction comparison helper: -1 if |frac| < 1/2, 0 if == 1/2, +1 if > 1/2.
static int cmpFractionToHalf(const BigFloat &X) {
  assert(hasFraction(X) && "no fraction to compare");
  const uint64_t *Limbs = BigFloatBuilder::limbs(X);
  size_t N = BigFloatBuilder::limbCount(X);
  int64_t Exp = BigFloatBuilder::rawExp(X);
  int64_t TotalBits = static_cast<int64_t>(N) * 64;
  if (Exp <= 0) {
    // |X| < 1: fraction is |X| itself. |X| >= 1/2 iff Exp == 0.
    if (Exp < 0)
      return -1;
    // Exp == 0: |X| in [1/2, 1); equal to 1/2 iff only the top bit is set.
    for (size_t Pos = 0; Pos < static_cast<size_t>(TotalBits) - 1; ++Pos)
      if (getBit(Limbs, N, Pos))
        return 1;
    return 0;
  }
  // The first fractional bit sits at position TotalBits - Exp - 1.
  size_t HalfPos = static_cast<size_t>(TotalBits - Exp - 1);
  if (!getBit(Limbs, N, HalfPos))
    return -1;
  for (size_t Pos = 0; Pos < HalfPos; ++Pos)
    if (getBit(Limbs, N, Pos))
      return 1;
  return 0;
}

BigFloat BigFloat::roundNearest() const {
  if (K != Kind::Finite)
    return *this;
  if (!hasFraction(*this))
    return trunc();
  BigFloat T = trunc();
  if (cmpFractionToHalf(*this) >= 0) {
    BigFloat One = fromInt64(Neg ? -1 : 1, precisionBits());
    return add(T, One);
  }
  if (T.isZero())
    return zero(Neg);
  return T;
}

BigFloat BigFloat::roundNearestEven() const {
  if (K != Kind::Finite)
    return *this;
  if (!hasFraction(*this))
    return trunc();
  BigFloat T = trunc();
  int HalfCmp = cmpFractionToHalf(*this);
  bool RoundAway;
  if (HalfCmp > 0) {
    RoundAway = true;
  } else if (HalfCmp < 0) {
    RoundAway = false;
  } else {
    RoundAway = T.isOddInteger();
  }
  if (RoundAway) {
    BigFloat One = fromInt64(Neg ? -1 : 1, precisionBits());
    return add(T, One);
  }
  if (T.isZero())
    return zero(Neg);
  return T;
}

//===----------------------------------------------------------------------===//
// Debug printing.
//===----------------------------------------------------------------------===//

std::string BigFloat::debugStr() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? "-0" : "+0";
  case Kind::Inf:
    return Neg ? "-inf" : "+inf";
  case Kind::NaN:
    return "nan";
  case Kind::Finite:
    break;
  }
  std::string S = Neg ? "-0x." : "+0x.";
  for (size_t I = Limbs.size(); I-- > 0;)
    S += format("%016llx", static_cast<unsigned long long>(Limbs[I]));
  S += format("p%+lld[%zu]", static_cast<long long>(Exp), precisionBits());
  return S;
}
