//===- real/BigFloat.cpp - Arbitrary-precision binary floats --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Representation: a finite value is (-1)^Neg * frac * 2^Exp where frac is a
// little-endian limb vector read as a fraction in [1/2, 1) (the top bit of
// the top limb is always set). All rounding is round-to-nearest-even and is
// performed by BigFloatBuilder::makeRounded from an extended mantissa plus a
// sticky flag summarizing any nonzero bits below the extended mantissa.
//
//===----------------------------------------------------------------------===//

#include "real/BigFloat.h"

#include "support/FloatBits.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace herbgrind;

static size_t GlobalDefaultPrecisionBits = 256;

size_t BigFloat::defaultPrecisionBits() { return GlobalDefaultPrecisionBits; }

void BigFloat::setDefaultPrecisionBits(size_t Bits) {
  assert(Bits >= 64 && "precision must be at least one limb");
  GlobalDefaultPrecisionBits = Bits;
}

size_t BigFloat::limbsForPrecision(size_t PrecBits) {
  if (PrecBits == 0)
    PrecBits = GlobalDefaultPrecisionBits;
  return std::max<size_t>(1, (PrecBits + 63) / 64);
}

//===----------------------------------------------------------------------===//
// Limb-vector helpers (little-endian).
//===----------------------------------------------------------------------===//

namespace {
using LimbVec = std::vector<uint64_t>;
} // namespace

static int leadingZeros64(uint64_t X) {
  assert(X != 0 && "clz of zero is undefined");
  return __builtin_clzll(X);
}

static bool vecIsZero(const LimbVec &V) {
  for (uint64_t Limb : V)
    if (Limb != 0)
      return false;
  return true;
}

/// Compares equal-length magnitude vectors: -1, 0, +1.
static int cmpVec(const LimbVec &A, const LimbVec &B) {
  assert(A.size() == B.size() && "cmpVec requires equal lengths");
  for (size_t I = A.size(); I-- > 0;) {
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  }
  return 0;
}

/// A += B (equal lengths); returns the carry out.
static uint64_t addVecInPlace(LimbVec &A, const LimbVec &B) {
  assert(A.size() == B.size() && "addVecInPlace requires equal lengths");
  unsigned __int128 Carry = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    unsigned __int128 Sum = (unsigned __int128)A[I] + B[I] + Carry;
    A[I] = static_cast<uint64_t>(Sum);
    Carry = Sum >> 64;
  }
  return static_cast<uint64_t>(Carry);
}

/// A -= B (equal lengths, requires A >= B).
static void subVecInPlace(LimbVec &A, const LimbVec &B) {
  assert(A.size() == B.size() && "subVecInPlace requires equal lengths");
  unsigned __int128 Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    unsigned __int128 Diff = (unsigned __int128)A[I] - B[I] - Borrow;
    A[I] = static_cast<uint64_t>(Diff);
    Borrow = (Diff >> 64) & 1;
  }
  assert(Borrow == 0 && "subVecInPlace requires A >= B");
}

/// Subtracts 1 from A (requires A != 0).
static void decrementVec(LimbVec &A) {
  for (uint64_t &Limb : A) {
    if (Limb-- != 0)
      return;
  }
  assert(false && "decrementVec underflow");
}

/// Adds 1 at bit position Pos (must not overflow the vector).
static void addBitAt(LimbVec &A, size_t Pos) {
  size_t LimbIdx = Pos / 64;
  assert(LimbIdx < A.size() && "addBitAt position out of range");
  uint64_t Old = A[LimbIdx];
  A[LimbIdx] += 1ULL << (Pos % 64);
  bool Carry = A[LimbIdx] < Old;
  for (size_t I = LimbIdx + 1; Carry && I < A.size(); ++I) {
    ++A[I];
    Carry = A[I] == 0;
  }
  assert(!Carry && "addBitAt overflowed the vector");
}

/// Reads bit Pos of A (0 = least significant).
static bool getBit(const LimbVec &A, size_t Pos) {
  size_t LimbIdx = Pos / 64;
  if (LimbIdx >= A.size())
    return false;
  return (A[LimbIdx] >> (Pos % 64)) & 1;
}

/// Shifts A right by Shift bits in place; ORs dropped nonzero bits into
/// Sticky.
static void shiftRightVec(LimbVec &A, size_t Shift, bool &Sticky) {
  size_t N = A.size();
  size_t LimbShift = Shift / 64;
  size_t BitShift = Shift % 64;
  if (LimbShift >= N) {
    if (!vecIsZero(A))
      Sticky = true;
    std::fill(A.begin(), A.end(), 0);
    return;
  }
  for (size_t I = 0; I < LimbShift; ++I)
    if (A[I] != 0)
      Sticky = true;
  if (BitShift == 0) {
    for (size_t I = 0; I + LimbShift < N; ++I)
      A[I] = A[I + LimbShift];
  } else {
    if ((A[LimbShift] & ((1ULL << BitShift) - 1)) != 0)
      Sticky = true;
    for (size_t I = 0; I + LimbShift < N; ++I) {
      uint64_t Low = A[I + LimbShift] >> BitShift;
      uint64_t High = I + LimbShift + 1 < N
                          ? A[I + LimbShift + 1] << (64 - BitShift)
                          : 0;
      A[I] = Low | High;
    }
  }
  std::fill(A.end() - LimbShift, A.end(), 0);
}

/// Shifts A left by Shift bits in place (bits shifted past the top are
/// dropped; callers guarantee they are zero).
static void shiftLeftVec(LimbVec &A, size_t Shift) {
  size_t N = A.size();
  size_t LimbShift = Shift / 64;
  size_t BitShift = Shift % 64;
  if (LimbShift >= N) {
    std::fill(A.begin(), A.end(), 0);
    return;
  }
  if (BitShift == 0) {
    for (size_t I = N; I-- > LimbShift;)
      A[I] = A[I - LimbShift];
  } else {
    for (size_t I = N; I-- > LimbShift;) {
      uint64_t High = A[I - LimbShift] << BitShift;
      uint64_t Low = I - LimbShift > 0
                         ? A[I - LimbShift - 1] >> (64 - BitShift)
                         : 0;
      A[I] = High | Low;
    }
  }
  std::fill(A.begin(), A.begin() + LimbShift, 0);
}

/// Schoolbook multiplication; result has A.size() + B.size() limbs.
static LimbVec mulVec(const LimbVec &A, const LimbVec &B) {
  LimbVec R(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I] == 0)
      continue;
    unsigned __int128 Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      unsigned __int128 Cur =
          (unsigned __int128)A[I] * B[J] + R[I + J] + Carry;
      R[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    R[I + B.size()] += static_cast<uint64_t>(Carry);
  }
  return R;
}

/// Knuth algorithm D: divides U by V (V normalized: top bit of V.back() is
/// set, V.size() >= 1, U.size() >= V.size()). Returns the quotient; the
/// remainder is left in U (its top limbs zeroed).
static LimbVec divmodVec(LimbVec &U, const LimbVec &V) {
  size_t NU = U.size();
  size_t NV = V.size();
  assert(NV >= 1 && NU >= NV && "divmodVec size mismatch");
  assert((V.back() >> 63) == 1 && "divisor must be normalized");

  if (NV == 1) {
    LimbVec Q(NU, 0);
    unsigned __int128 Rem = 0;
    for (size_t I = NU; I-- > 0;) {
      unsigned __int128 Cur = (Rem << 64) | U[I];
      Q[I] = static_cast<uint64_t>(Cur / V[0]);
      Rem = Cur % V[0];
    }
    std::fill(U.begin(), U.end(), 0);
    U[0] = static_cast<uint64_t>(Rem);
    return Q;
  }

  // Work on a copy of U with one extra high limb.
  LimbVec R(U.begin(), U.end());
  R.push_back(0);
  LimbVec Q(NU - NV + 1, 0);

  for (size_t JP1 = NU - NV + 1; JP1-- > 0;) {
    size_t J = JP1;
    unsigned __int128 Num =
        ((unsigned __int128)R[J + NV] << 64) | R[J + NV - 1];
    unsigned __int128 QHat = Num / V[NV - 1];
    unsigned __int128 RHat = Num % V[NV - 1];
    // Correct QHat down until it is a valid 64-bit digit estimate.
    while (QHat >> 64 ||
           QHat * V[NV - 2] > ((RHat << 64) | R[J + NV - 2])) {
      --QHat;
      RHat += V[NV - 1];
      if (RHat >> 64)
        break;
    }
    // Multiply-subtract QHat * V from R[J .. J+NV].
    uint64_t QDigit = static_cast<uint64_t>(QHat);
    unsigned __int128 Borrow = 0;
    unsigned __int128 Carry = 0;
    for (size_t I = 0; I < NV; ++I) {
      unsigned __int128 Prod = (unsigned __int128)QDigit * V[I] + Carry;
      Carry = Prod >> 64;
      unsigned __int128 Diff =
          (unsigned __int128)R[J + I] - (uint64_t)Prod - Borrow;
      R[J + I] = static_cast<uint64_t>(Diff);
      Borrow = (Diff >> 64) & 1;
    }
    unsigned __int128 Diff = (unsigned __int128)R[J + NV] - Carry - Borrow;
    R[J + NV] = static_cast<uint64_t>(Diff);
    bool WentNegative = (Diff >> 64) & 1;
    if (WentNegative) {
      // QHat was one too large; add V back.
      --QDigit;
      unsigned __int128 AddCarry = 0;
      for (size_t I = 0; I < NV; ++I) {
        unsigned __int128 Sum =
            (unsigned __int128)R[J + I] + V[I] + AddCarry;
        R[J + I] = static_cast<uint64_t>(Sum);
        AddCarry = Sum >> 64;
      }
      R[J + NV] += static_cast<uint64_t>(AddCarry);
    }
    Q[J] = QDigit;
  }

  // Remainder is R[0 .. NV-1].
  for (size_t I = 0; I < NU; ++I)
    U[I] = I < NV ? R[I] : 0;
  return Q;
}

//===----------------------------------------------------------------------===//
// Rounding construction.
//===----------------------------------------------------------------------===//

BigFloat BigFloatBuilder::makeRounded(bool Neg, int64_t Exp,
                                      const std::vector<uint64_t> &Mant,
                                      bool Sticky, size_t TargetLimbs) {
  assert(!Mant.empty() && (Mant.back() >> 63) == 1 &&
         "makeRounded requires a normalized mantissa");
  BigFloat Result;
  Result.K = BigFloat::Kind::Finite;
  Result.Neg = Neg;
  Result.Exp = Exp;
  Result.LimbCountHint = static_cast<uint32_t>(TargetLimbs);

  if (Mant.size() <= TargetLimbs) {
    // Exact (apart from Sticky bits strictly below the round position, which
    // round to nothing because the round bit itself is zero).
    Result.Limbs.assign(TargetLimbs, 0);
    std::copy(Mant.begin(), Mant.end(),
              Result.Limbs.end() - static_cast<ptrdiff_t>(Mant.size()));
    return Result;
  }

  size_t Drop = Mant.size() - TargetLimbs;
  bool RoundBit = (Mant[Drop - 1] >> 63) & 1;
  bool StickyLocal = Sticky || (Mant[Drop - 1] & ~(1ULL << 63)) != 0;
  for (size_t I = 0; I + 1 < Drop && !StickyLocal; ++I)
    StickyLocal = Mant[I] != 0;

  Result.Limbs.assign(Mant.begin() + static_cast<ptrdiff_t>(Drop),
                      Mant.end());
  bool LowBit = Result.Limbs[0] & 1;
  if (RoundBit && (StickyLocal || LowBit)) {
    // Increment; on carry-out the mantissa becomes exactly 2^(64*Target),
    // i.e. frac 1/2 at Exp+1.
    uint64_t Carry = 1;
    for (size_t I = 0; I < Result.Limbs.size() && Carry; ++I) {
      Result.Limbs[I] += Carry;
      Carry = Result.Limbs[I] == 0 ? 1 : 0;
    }
    if (Carry) {
      std::fill(Result.Limbs.begin(), Result.Limbs.end(), 0);
      Result.Limbs.back() = 1ULL << 63;
      ++Result.Exp;
    }
  }
  assert((Result.Limbs.back() >> 63) == 1 && "rounding lost normalization");
  return Result;
}

BigFloat BigFloatBuilder::normalizeAndRound(bool Neg, int64_t Exp,
                                            std::vector<uint64_t> Mant,
                                            bool Sticky, size_t TargetLimbs) {
  size_t TopIdx = Mant.size();
  while (TopIdx > 0 && Mant[TopIdx - 1] == 0)
    --TopIdx;
  if (TopIdx == 0) {
    assert(!Sticky && "cannot normalize a pure-sticky value");
    return BigFloat::zero(false);
  }
  size_t Shift = (Mant.size() - TopIdx) * 64 +
                 static_cast<size_t>(leadingZeros64(Mant[TopIdx - 1]));
  // When Sticky bits exist below the buffer, the left shift must not move
  // the round position past them; callers size their buffers to guarantee
  // this (see BigFloat.cpp commentary on add/div/sqrt).
  assert(!Sticky || Mant.size() > TargetLimbs);
  assert(!Sticky || Shift <= 64 * (Mant.size() - TargetLimbs));
  if (Shift > 0)
    shiftLeftVec(Mant, Shift);
  return makeRounded(Neg, Exp - static_cast<int64_t>(Shift), Mant, Sticky,
                     TargetLimbs);
}

//===----------------------------------------------------------------------===//
// Constructors and conversions.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::zero(bool Negative) {
  BigFloat R;
  R.K = Kind::Zero;
  R.Neg = Negative;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::inf(bool Negative) {
  BigFloat R;
  R.K = Kind::Inf;
  R.Neg = Negative;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::nan() {
  BigFloat R;
  R.K = Kind::NaN;
  R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(0));
  return R;
}

BigFloat BigFloat::fromMantissaExp(bool Negative, uint64_t Mant, int64_t Exp2,
                                   size_t PrecBits) {
  size_t N = limbsForPrecision(PrecBits);
  if (Mant == 0) {
    BigFloat R = zero(Negative);
    R.LimbCountHint = static_cast<uint32_t>(N);
    return R;
  }
  int Lz = leadingZeros64(Mant);
  BigFloat R;
  R.K = Kind::Finite;
  R.Neg = Negative;
  R.Exp = Exp2 + 64 - Lz;
  R.Limbs.assign(N, 0);
  R.Limbs.back() = Mant << Lz;
  R.LimbCountHint = static_cast<uint32_t>(N);
  return R;
}

BigFloat BigFloat::fromDouble(double X, size_t PrecBits) {
  if (std::isnan(X))
    return nan();
  if (std::isinf(X))
    return inf(X < 0);
  uint64_t Bits = bitsOfDouble(X);
  bool Negative = Bits >> 63;
  uint64_t ExpField = (Bits >> 52) & 0x7ff;
  uint64_t MantField = Bits & ((1ULL << 52) - 1);
  if (ExpField == 0) {
    // Subnormal (or zero): value = MantField * 2^-1074.
    if (MantField == 0) {
      BigFloat R = zero(Negative);
      R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(PrecBits));
      return R;
    }
    return fromMantissaExp(Negative, MantField, -1074, PrecBits);
  }
  // Normal: value = (2^52 + MantField) * 2^(ExpField - 1075).
  return fromMantissaExp(Negative, (1ULL << 52) | MantField,
                         static_cast<int64_t>(ExpField) - 1075, PrecBits);
}

BigFloat BigFloat::fromFloat(float X, size_t PrecBits) {
  if (std::isnan(X))
    return nan();
  if (std::isinf(X))
    return inf(X < 0);
  uint32_t Bits = bitsOfFloat(X);
  bool Negative = Bits >> 31;
  uint32_t ExpField = (Bits >> 23) & 0xff;
  uint32_t MantField = Bits & ((1U << 23) - 1);
  if (ExpField == 0) {
    if (MantField == 0) {
      BigFloat R = zero(Negative);
      R.LimbCountHint = static_cast<uint32_t>(limbsForPrecision(PrecBits));
      return R;
    }
    return fromMantissaExp(Negative, MantField, -149, PrecBits);
  }
  return fromMantissaExp(Negative, (1U << 23) | MantField,
                         static_cast<int64_t>(ExpField) - 150, PrecBits);
}

BigFloat BigFloat::fromInt64(int64_t X, size_t PrecBits) {
  if (X >= 0)
    return fromMantissaExp(false, static_cast<uint64_t>(X), 0, PrecBits);
  // -INT64_MIN overflows; negate in unsigned arithmetic.
  return fromMantissaExp(true, ~static_cast<uint64_t>(X) + 1, 0, PrecBits);
}

BigFloat BigFloat::fromUInt64(uint64_t X, size_t PrecBits) {
  return fromMantissaExp(false, X, 0, PrecBits);
}

namespace {
/// IEEE destination format parameters for rounding conversions.
struct IEEEFormat {
  int MantBits;      ///< Including the implicit bit (53 for double).
  int64_t MaxExp;    ///< Values with Exp > MaxExp after rounding overflow.
  int64_t MinNormal; ///< Smallest Exp that is still a normal number.
  int64_t SubOffset; ///< -log2(smallest subnormal) (1074 for double).
  int ExpBias;       ///< Exponent bias (1023 for double).
};
} // namespace

static const IEEEFormat DoubleFormat = {53, 1024, -1021, 1074, 1023};
static const IEEEFormat FloatFormat = {24, 128, -125, 149, 127};

/// Extracts the top KeepBits bits of a normalized mantissa as an integer,
/// rounding to nearest-even with the remaining bits (plus StickyIn).
/// The result may be 2^KeepBits (carry), which callers must handle.
static uint64_t roundTopBits(const LimbVec &Limbs, int KeepBits,
                             bool StickyIn) {
  assert(KeepBits >= 0 && KeepBits <= 63 && "roundTopBits range");
  size_t N = Limbs.size();
  // The kept bits, round bit, and the top of the sticky region all live in
  // the top two limbs; gather them into one 128-bit window.
  unsigned __int128 Window = (unsigned __int128)Limbs[N - 1] << 64;
  if (N >= 2)
    Window |= Limbs[N - 2];
  uint64_t Kept =
      KeepBits == 0 ? 0 : static_cast<uint64_t>(Window >> (128 - KeepBits));
  bool RoundBit = (Window >> (127 - KeepBits)) & 1;
  bool Sticky = StickyIn;
  unsigned __int128 BelowMask =
      (((unsigned __int128)1) << (127 - KeepBits)) - 1;
  if (Window & BelowMask)
    Sticky = true;
  for (size_t I = 0; I + 2 < N && !Sticky; ++I)
    Sticky = Limbs[I] != 0;
  if (RoundBit && (Sticky || (Kept & 1)))
    ++Kept;
  return Kept;
}

/// Shared double/float conversion.
static uint64_t roundToIEEEBits(const BigFloat &X, const IEEEFormat &Fmt) {
  uint64_t SignBit = X.isNegative() ? 1ULL << (Fmt.MantBits == 53 ? 63 : 31)
                                    : 0;
  const LimbVec &Limbs = BigFloatBuilder::limbs(X);
  int64_t Exp = BigFloatBuilder::rawExp(X);
  uint64_t InfBits =
      Fmt.MantBits == 53 ? 0x7ffULL << 52 : static_cast<uint64_t>(0xff) << 23;
  int FieldBits = Fmt.MantBits - 1;

  if (Exp > Fmt.MaxExp)
    return SignBit | InfBits;

  if (Exp >= Fmt.MinNormal) {
    uint64_t M = roundTopBits(Limbs, Fmt.MantBits, false);
    if (M >> Fmt.MantBits) {
      // Carried to the next binade.
      M >>= 1;
      ++Exp;
      if (Exp > Fmt.MaxExp)
        return SignBit | InfBits;
    }
    uint64_t Biased = static_cast<uint64_t>(Exp - 1 + Fmt.ExpBias);
    uint64_t Field = M & ((1ULL << FieldBits) - 1);
    return SignBit | (Biased << FieldBits) | Field;
  }

  // Subnormal (or rounds to zero).
  int64_t KeepBits64 = Exp + Fmt.SubOffset;
  if (KeepBits64 < 0)
    return SignBit; // magnitude below half the smallest subnormal
  int KeepBits = static_cast<int>(std::min<int64_t>(KeepBits64, 63));
  uint64_t K = roundTopBits(Limbs, KeepBits, false);
  // K may equal 2^KeepBits, which is the next subnormal (or the smallest
  // normal when KeepBits == FieldBits); the bit pattern works out in both
  // cases because the subnormal field and exponent field are adjacent.
  return SignBit | K;
}

double BigFloat::toDouble() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? -0.0 : 0.0;
  case Kind::Inf:
    return Neg ? -HUGE_VAL : HUGE_VAL;
  case Kind::NaN:
    return std::nan("");
  case Kind::Finite:
    return doubleFromBits(roundToIEEEBits(*this, DoubleFormat));
  }
  assert(false && "unknown kind");
  return 0.0;
}

float BigFloat::toFloat() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? -0.0f : 0.0f;
  case Kind::Inf:
    return Neg ? -HUGE_VALF : HUGE_VALF;
  case Kind::NaN:
    return std::nanf("");
  case Kind::Finite:
    return floatFromBits(
        static_cast<uint32_t>(roundToIEEEBits(*this, FloatFormat)));
  }
  assert(false && "unknown kind");
  return 0.0f;
}

int64_t BigFloat::toInt64Trunc() const {
  switch (K) {
  case Kind::Zero:
    return 0;
  case Kind::NaN:
    return 0;
  case Kind::Inf:
    return Neg ? INT64_MIN : INT64_MAX;
  case Kind::Finite:
    break;
  }
  if (Exp <= 0)
    return 0;
  if (Exp > 64)
    return Neg ? INT64_MIN : INT64_MAX;
  // Integer part = top Exp bits of the mantissa.
  uint64_t Mag;
  if (Exp == 64) {
    Mag = Limbs.back();
  } else {
    Mag = Limbs.back() >> (64 - Exp);
  }
  if (!Neg)
    return Mag > static_cast<uint64_t>(INT64_MAX)
               ? INT64_MAX
               : static_cast<int64_t>(Mag);
  if (Mag > (1ULL << 63))
    return INT64_MIN;
  return -static_cast<int64_t>(Mag - 1) - 1;
}

BigFloat BigFloat::withPrecision(size_t PrecBits) const {
  size_t N = limbsForPrecision(PrecBits);
  BigFloat R = *this;
  R.LimbCountHint = static_cast<uint32_t>(N);
  if (K != Kind::Finite)
    return R;
  if (N == Limbs.size())
    return R;
  if (N > Limbs.size()) {
    LimbVec NewLimbs(N, 0);
    std::copy(Limbs.begin(), Limbs.end(),
              NewLimbs.end() - static_cast<ptrdiff_t>(Limbs.size()));
    R.Limbs = std::move(NewLimbs);
    return R;
  }
  return BigFloatBuilder::makeRounded(Neg, Exp, Limbs, false, N);
}

//===----------------------------------------------------------------------===//
// Observers.
//===----------------------------------------------------------------------===//

int64_t BigFloat::exponent() const {
  assert(K == Kind::Finite && "exponent of a non-finite/zero value");
  return Exp;
}

bool BigFloat::isInteger() const {
  switch (K) {
  case Kind::Zero:
    return true;
  case Kind::Inf:
  case Kind::NaN:
    return false;
  case Kind::Finite:
    break;
  }
  if (Exp <= 0)
    return false;
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp >= TotalBits)
    return true;
  // Fractional bits are the low (TotalBits - Exp) bits.
  size_t FracBits = static_cast<size_t>(TotalBits - Exp);
  for (size_t Pos = 0; Pos < FracBits; ++Pos)
    if (getBit(Limbs, Pos))
      return false;
  return true;
}

bool BigFloat::isOddInteger() const {
  if (!isInteger() || K == Kind::Zero)
    return false;
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp > TotalBits)
    return false; // huge => divisible by large powers of two
  // The units bit of the integer part sits at position TotalBits - Exp.
  return getBit(Limbs, static_cast<size_t>(TotalBits - Exp));
}

//===----------------------------------------------------------------------===//
// Sign manipulation.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::negated() const {
  BigFloat R = *this;
  if (K != Kind::NaN)
    R.Neg = !R.Neg;
  return R;
}

BigFloat BigFloat::abs() const {
  BigFloat R = *this;
  R.Neg = false;
  return R;
}

BigFloat BigFloat::copySign(const BigFloat &SignSource) const {
  BigFloat R = *this;
  R.Neg = SignSource.Neg;
  return R;
}

//===----------------------------------------------------------------------===//
// Comparison.
//===----------------------------------------------------------------------===//

int BigFloat::cmp(const BigFloat &A, const BigFloat &B) {
  assert(!A.isNaN() && !B.isNaN() && "cmp of NaN");
  bool AZero = A.isZero();
  bool BZero = B.isZero();
  if (AZero && BZero)
    return 0;
  if (AZero)
    return B.Neg ? 1 : -1;
  if (BZero)
    return A.Neg ? -1 : 1;
  if (A.Neg != B.Neg)
    return A.Neg ? -1 : 1;
  int SignFactor = A.Neg ? -1 : 1;
  if (A.isInf() || B.isInf()) {
    if (A.isInf() && B.isInf())
      return 0;
    return A.isInf() ? SignFactor : -SignFactor;
  }
  if (A.Exp != B.Exp)
    return A.Exp < B.Exp ? -SignFactor : SignFactor;
  // Compare mantissas, treating missing low limbs as zero.
  size_t NA = A.Limbs.size();
  size_t NB = B.Limbs.size();
  size_t N = std::max(NA, NB);
  for (size_t I = N; I-- > 0;) {
    uint64_t LA = I >= N - NA ? A.Limbs[I - (N - NA)] : 0;
    uint64_t LB = I >= N - NB ? B.Limbs[I - (N - NB)] : 0;
    if (LA != LB)
      return LA < LB ? -SignFactor : SignFactor;
  }
  return 0;
}

bool BigFloat::lt(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) < 0;
}

bool BigFloat::le(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) <= 0;
}

bool BigFloat::gt(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) > 0;
}

bool BigFloat::ge(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) >= 0;
}

bool BigFloat::eq(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return false;
  return cmp(A, B) == 0;
}

bool BigFloat::ne(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return true;
  return cmp(A, B) != 0;
}

//===----------------------------------------------------------------------===//
// Arithmetic.
//===----------------------------------------------------------------------===//

/// Result precision rule: the larger of the operand precisions.
static size_t resultLimbs(const BigFloat &A, const BigFloat &B) {
  return std::max(BigFloat::limbsForPrecision(A.precisionBits()),
                  BigFloat::limbsForPrecision(B.precisionBits()));
}

/// Magnitude |A| + |B| with the given result sign (both finite nonzero).
static BigFloat addMagnitudes(const BigFloat &A, const BigFloat &B, bool Neg,
                              size_t Target) {
  const LimbVec &MA = BigFloatBuilder::limbs(A);
  const LimbVec &MB = BigFloatBuilder::limbs(B);
  int64_t EA = BigFloatBuilder::rawExp(A);
  int64_t EB = BigFloatBuilder::rawExp(B);
  const LimbVec *Hi = &MA;
  const LimbVec *Lo = &MB;
  int64_t EHi = EA;
  int64_t ELo = EB;
  if (EA < EB) {
    std::swap(Hi, Lo);
    std::swap(EHi, ELo);
  }
  size_t W = Target + 2;
  assert(Hi->size() <= Target && Lo->size() <= Target &&
         "operand precision exceeds result precision");

  // Place Hi's mantissa at the top of a W-limb buffer.
  LimbVec Buf(W, 0);
  std::copy(Hi->begin(), Hi->end(),
            Buf.end() - static_cast<ptrdiff_t>(Hi->size()));
  // Place Lo at the top too, then shift it down into alignment.
  LimbVec LoBuf(W, 0);
  std::copy(Lo->begin(), Lo->end(),
            LoBuf.end() - static_cast<ptrdiff_t>(Lo->size()));
  bool Sticky = false;
  uint64_t Diff = static_cast<uint64_t>(EHi - ELo);
  if (Diff >= W * 64) {
    std::fill(LoBuf.begin(), LoBuf.end(), 0);
    Sticky = true;
  } else {
    shiftRightVec(LoBuf, static_cast<size_t>(Diff), Sticky);
  }

  uint64_t Carry = addVecInPlace(Buf, LoBuf);
  int64_t Exp = EHi;
  if (Carry) {
    shiftRightVec(Buf, 1, Sticky);
    Buf.back() |= 1ULL << 63;
    ++Exp;
  }
  return BigFloatBuilder::normalizeAndRound(Neg, Exp, std::move(Buf), Sticky,
                                            Target);
}

/// Magnitude |A| - |B| requiring |A| > |B| strictly at the buffer level is
/// not assumed: handles |A| == |B| by returning +0. Sign Neg applies to the
/// |A| >= |B| orientation; the caller pre-orders operands.
static BigFloat subMagnitudes(const BigFloat &A, const BigFloat &B, bool Neg,
                              size_t Target) {
  const LimbVec &MA = BigFloatBuilder::limbs(A);
  const LimbVec &MB = BigFloatBuilder::limbs(B);
  int64_t EA = BigFloatBuilder::rawExp(A);
  int64_t EB = BigFloatBuilder::rawExp(B);
  assert(EA >= EB && "subMagnitudes requires pre-ordered operands");
  size_t W = Target + 2;
  LimbVec Buf(W, 0);
  std::copy(MA.begin(), MA.end(),
            Buf.end() - static_cast<ptrdiff_t>(MA.size()));
  LimbVec LoBuf(W, 0);
  std::copy(MB.begin(), MB.end(),
            LoBuf.end() - static_cast<ptrdiff_t>(MB.size()));
  bool Sticky = false;
  uint64_t Diff = static_cast<uint64_t>(EA - EB);
  if (Diff >= W * 64) {
    std::fill(LoBuf.begin(), LoBuf.end(), 0);
    Sticky = true;
  } else {
    shiftRightVec(LoBuf, static_cast<size_t>(Diff), Sticky);
  }

  // Equal buffers imply exactly equal values (Sticky requires an exponent
  // gap >= 1, which forces LoBuf's top bit clear while Buf's is set), and
  // the caller already peeled off the exactly-equal case.
  assert(cmpVec(Buf, LoBuf) > 0 && "subMagnitudes operands not pre-ordered");
  subVecInPlace(Buf, LoBuf);
  if (Sticky) {
    // The dropped bits of B make the true result slightly smaller than Buf;
    // represent that as (Buf - 1ulp) + sticky.
    assert(!vecIsZero(Buf) && "sticky subtraction cannot cancel to zero");
    decrementVec(Buf);
    if (vecIsZero(Buf)) {
      // Result is strictly between 0 and one buffer ulp: impossible, since
      // Sticky requires an exponent gap much larger than the buffer.
      assert(false && "sticky cancellation to zero");
    }
  }
  return BigFloatBuilder::normalizeAndRound(Neg, EA, std::move(Buf), Sticky,
                                            Target);
}

BigFloat BigFloat::add(const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN())
    return nan();
  if (A.isInf() || B.isInf()) {
    if (A.isInf() && B.isInf())
      return A.Neg == B.Neg ? A : nan();
    return A.isInf() ? A : B;
  }
  if (A.isZero() && B.isZero())
    return zero(A.Neg && B.Neg);
  if (A.isZero())
    return B.withPrecision(Target * 64);
  if (B.isZero())
    return A.withPrecision(Target * 64);

  if (A.Neg == B.Neg)
    return addMagnitudes(A, B, A.Neg, Target);

  // Opposite signs: compute |larger| - |smaller| with the larger's sign.
  const BigFloat *Big = &A;
  const BigFloat *Small = &B;
  int MagCmp = cmp(A.abs(), B.abs());
  if (MagCmp == 0)
    return zero(false);
  if (MagCmp < 0)
    std::swap(Big, Small);
  return subMagnitudes(*Big, *Small, Big->Neg, Target);
}

BigFloat BigFloat::sub(const BigFloat &A, const BigFloat &B) {
  return add(A, B.negated());
}

BigFloat BigFloat::mul(const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN())
    return nan();
  bool Neg = A.Neg != B.Neg;
  if (A.isInf() || B.isInf()) {
    if (A.isZero() || B.isZero())
      return nan();
    return inf(Neg);
  }
  if (A.isZero() || B.isZero())
    return zero(Neg);

  LimbVec MA = A.Limbs;
  LimbVec MB = B.Limbs;
  LimbVec Prod = mulVec(MA, MB);
  return BigFloatBuilder::normalizeAndRound(Neg, A.Exp + B.Exp,
                                            std::move(Prod), false, Target);
}

BigFloat BigFloat::mulExact(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN() || B.isNaN())
    return nan();
  bool Neg = A.Neg != B.Neg;
  if (A.isInf() || B.isInf()) {
    if (A.isZero() || B.isZero())
      return nan();
    return inf(Neg);
  }
  if (A.isZero() || B.isZero())
    return zero(Neg);
  LimbVec Prod = mulVec(A.Limbs, B.Limbs);
  size_t Target = A.Limbs.size() + B.Limbs.size();
  return BigFloatBuilder::normalizeAndRound(Neg, A.Exp + B.Exp,
                                            std::move(Prod), false, Target);
}

BigFloat BigFloat::div(const BigFloat &A, const BigFloat &B) {
  size_t Target = resultLimbs(A, B);
  if (A.isNaN() || B.isNaN())
    return nan();
  bool Neg = A.Neg != B.Neg;
  if (A.isInf()) {
    if (B.isInf())
      return nan();
    return inf(Neg);
  }
  if (B.isInf())
    return zero(Neg);
  if (B.isZero())
    return A.isZero() ? nan() : inf(Neg);
  if (A.isZero())
    return zero(Neg);

  // Extend both mantissas to Target limbs.
  size_t N = Target;
  LimbVec MA(N, 0);
  std::copy(A.Limbs.begin(), A.Limbs.end(),
            MA.end() - static_cast<ptrdiff_t>(A.Limbs.size()));
  LimbVec MB(N, 0);
  std::copy(B.Limbs.begin(), B.Limbs.end(),
            MB.end() - static_cast<ptrdiff_t>(B.Limbs.size()));

  // U = MA * 2^(64*(N+1)); quotient has N+2 limbs, top limb in {0, 1}.
  LimbVec U(2 * N + 1, 0);
  std::copy(MA.begin(), MA.end(), U.begin() + static_cast<ptrdiff_t>(N + 1));
  LimbVec Q = divmodVec(U, MB);
  bool Sticky = !vecIsZero(U);
  assert(Q.size() == N + 2 && "unexpected quotient width");
  return BigFloatBuilder::normalizeAndRound(
      Neg, A.Exp - B.Exp + 64, std::move(Q), Sticky, Target);
}

BigFloat BigFloat::sqrt(const BigFloat &X) {
  if (X.isNaN())
    return nan();
  if (X.isZero())
    return X;
  if (X.Neg)
    return nan();
  if (X.isInf())
    return inf(false);

  size_t N = X.Limbs.size();
  // Normalize to an even exponent: value = F * 2^E with E even and
  // F in [1/4, 1).
  int64_t E = X.Exp;
  LimbVec F(N + 1, 0); // one extra low guard limb for the odd-exponent shift
  std::copy(X.Limbs.begin(), X.Limbs.end(), F.begin() + 1);
  if (E & 1) {
    bool Dummy = false;
    shiftRightVec(F, 1, Dummy);
    assert(!Dummy && "guard limb absorbed the shift");
    E += 1;
  }

  // Integer square root of Num = F * 2^(64*(N+1)) interpreted as an integer
  // of 2*(N+1) limbs. Result S = floor(sqrt(F') ) has N+1 limbs with the top
  // bit set, i.e. exactly the mantissa-plus-guard-limb we want.
  size_t NI = N + 1;
  LimbVec Num(2 * NI, 0);
  std::copy(F.begin(), F.end(), Num.begin() + static_cast<ptrdiff_t>(NI));

  // Classic bit-pair integer square root.
  LimbVec Rem(2 * NI, 0);
  LimbVec Root(2 * NI, 0);
  for (size_t I = NI * 64; I-- > 0;) {
    // Rem = Rem*4 + next two bits of Num.
    shiftLeftVec(Rem, 2);
    if (getBit(Num, 2 * I + 1))
      addBitAt(Rem, 1);
    if (getBit(Num, 2 * I))
      addBitAt(Rem, 0);
    // Trial = Root*4 + 1 (Root currently holds the partial root shifted so
    // its low bit is at position 0).
    LimbVec Trial = Root;
    shiftLeftVec(Trial, 2);
    addBitAt(Trial, 0);
    shiftLeftVec(Root, 1);
    if (cmpVec(Rem, Trial) >= 0) {
      subVecInPlace(Rem, Trial);
      addBitAt(Root, 0);
    }
  }
  bool Sticky = !vecIsZero(Rem);
  Root.resize(NI);
  assert((Root.back() >> 63) == 1 && "isqrt result not normalized");
  return BigFloatBuilder::normalizeAndRound(false, E / 2, std::move(Root),
                                            Sticky, N);
}

BigFloat BigFloat::fma(const BigFloat &A, const BigFloat &B,
                       const BigFloat &C) {
  size_t Target = std::max(resultLimbs(A, B), limbsForPrecision(
                                                  C.precisionBits()));
  BigFloat P = mulExact(A, B);
  // Add at a precision wide enough to keep the exact product's bits in play,
  // then round once to the target.
  BigFloat CWide = C.withPrecision(P.precisionBits() + 128);
  BigFloat PWide = P.withPrecision(P.precisionBits() + 128);
  BigFloat Sum = add(PWide, CWide);
  return Sum.withPrecision(Target * 64);
}

BigFloat BigFloat::scalb(const BigFloat &X, int64_t Shift) {
  if (!X.isFinite() || X.isZero())
    return X;
  BigFloat R = X;
  R.Exp += Shift;
  return R;
}

BigFloat BigFloat::fmin(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN())
    return B;
  if (B.isNaN())
    return A;
  return cmp(A, B) <= 0 ? A : B;
}

BigFloat BigFloat::fmax(const BigFloat &A, const BigFloat &B) {
  if (A.isNaN())
    return B;
  if (B.isNaN())
    return A;
  return cmp(A, B) >= 0 ? A : B;
}

//===----------------------------------------------------------------------===//
// Integer roundings.
//===----------------------------------------------------------------------===//

BigFloat BigFloat::trunc() const {
  if (K != Kind::Finite)
    return *this;
  if (Exp <= 0)
    return zero(Neg);
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp >= TotalBits)
    return *this;
  BigFloat R = *this;
  size_t FracBits = static_cast<size_t>(TotalBits - Exp);
  size_t FullLimbs = FracBits / 64;
  size_t PartialBits = FracBits % 64;
  for (size_t I = 0; I < FullLimbs; ++I)
    R.Limbs[I] = 0;
  if (PartialBits)
    R.Limbs[FullLimbs] &= ~((1ULL << PartialBits) - 1);
  if (vecIsZero(R.Limbs))
    return zero(Neg);
  return R;
}

/// True if this value has any fractional bits (i.e. trunc() != *this).
static bool hasFraction(const BigFloat &X) {
  return X.isFinite() && !X.isZero() && !X.isInteger();
}

BigFloat BigFloat::floor() const {
  if (K != Kind::Finite)
    return K == Kind::Zero ? zero(false) : *this;
  BigFloat T = trunc();
  if (!hasFraction(*this))
    return T;
  if (!Neg)
    return T;
  return sub(T, fromInt64(1, precisionBits()));
}

BigFloat BigFloat::ceil() const {
  if (K != Kind::Finite)
    return K == Kind::Zero ? zero(false) : *this;
  BigFloat T = trunc();
  if (!hasFraction(*this))
    return T;
  if (Neg)
    return T;
  return add(T, fromInt64(1, precisionBits()));
}

/// Fraction comparison helper: -1 if |frac| < 1/2, 0 if == 1/2, +1 if > 1/2.
static int cmpFractionToHalf(const BigFloat &X) {
  assert(hasFraction(X) && "no fraction to compare");
  const LimbVec &Limbs = BigFloatBuilder::limbs(X);
  int64_t Exp = BigFloatBuilder::rawExp(X);
  int64_t TotalBits = static_cast<int64_t>(Limbs.size()) * 64;
  if (Exp <= 0) {
    // |X| < 1: fraction is |X| itself. |X| >= 1/2 iff Exp == 0.
    if (Exp < 0)
      return -1;
    // Exp == 0: |X| in [1/2, 1); equal to 1/2 iff only the top bit is set.
    for (size_t Pos = 0; Pos < static_cast<size_t>(TotalBits) - 1; ++Pos)
      if (getBit(Limbs, Pos))
        return 1;
    return 0;
  }
  // The first fractional bit sits at position TotalBits - Exp - 1.
  size_t HalfPos = static_cast<size_t>(TotalBits - Exp - 1);
  if (!getBit(Limbs, HalfPos))
    return -1;
  for (size_t Pos = 0; Pos < HalfPos; ++Pos)
    if (getBit(Limbs, Pos))
      return 1;
  return 0;
}

BigFloat BigFloat::roundNearest() const {
  if (K != Kind::Finite)
    return *this;
  if (!hasFraction(*this))
    return trunc();
  BigFloat T = trunc();
  if (cmpFractionToHalf(*this) >= 0) {
    BigFloat One = fromInt64(Neg ? -1 : 1, precisionBits());
    return add(T, One);
  }
  if (T.isZero())
    return zero(Neg);
  return T;
}

BigFloat BigFloat::roundNearestEven() const {
  if (K != Kind::Finite)
    return *this;
  if (!hasFraction(*this))
    return trunc();
  BigFloat T = trunc();
  int HalfCmp = cmpFractionToHalf(*this);
  bool RoundAway;
  if (HalfCmp > 0) {
    RoundAway = true;
  } else if (HalfCmp < 0) {
    RoundAway = false;
  } else {
    RoundAway = T.isOddInteger();
  }
  if (RoundAway) {
    BigFloat One = fromInt64(Neg ? -1 : 1, precisionBits());
    return add(T, One);
  }
  if (T.isZero())
    return zero(Neg);
  return T;
}

//===----------------------------------------------------------------------===//
// Debug printing.
//===----------------------------------------------------------------------===//

std::string BigFloat::debugStr() const {
  switch (K) {
  case Kind::Zero:
    return Neg ? "-0" : "+0";
  case Kind::Inf:
    return Neg ? "-inf" : "+inf";
  case Kind::NaN:
    return "nan";
  case Kind::Finite:
    break;
  }
  std::string S = Neg ? "-0x." : "+0x.";
  for (size_t I = Limbs.size(); I-- > 0;)
    S += format("%016llx", static_cast<unsigned long long>(Limbs[I]));
  S += format("p%+lld[%zu]", static_cast<long long>(Exp), precisionBits());
  return S;
}
