//===- real/RealMath.cpp - Transcendental functions on BigFloat -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Strategy: every function widens its operands to a working precision
// (input precision + guard bits), reduces the argument into a small range,
// sums a rapidly converging series, and rounds back down. Constants (pi,
// ln2) are computed by Machin-style small-denominator series and cached at
// the largest precision requested so far.
//
//===----------------------------------------------------------------------===//

#include "real/RealMath.h"

#include <cassert>
#include <cstdlib>

using namespace herbgrind;
using realmath::pi;
using realmath::ln2;

/// Guard bits added to the working precision of every function.
static const size_t GuardBits = 128;

//===----------------------------------------------------------------------===//
// Small helpers.
//===----------------------------------------------------------------------===//

/// Divides a finite nonzero BigFloat by a small positive integer with a
/// single limb pass (the workhorse of all the series below). Alias-safe
/// destination-passing: \p Dst may be \p X; the quotient is built in stack
/// scratch before Dst is written, so steady-state series loops never
/// allocate.
static void divBySmallInto(BigFloat &Dst, const BigFloat &X, uint64_t D) {
  assert(D > 0 && "division by zero");
  if (!X.isFinite() || X.isZero()) {
    Dst = X;
    return;
  }
  const uint64_t *M = BigFloatBuilder::limbs(X);
  size_t N = BigFloatBuilder::limbCount(X);
  bool NegX = X.isNegative();
  int64_t ExpX = BigFloatBuilder::rawExp(X);
  InlineLimbs<16> Q;
  Q.assignZeros(N + 1);
  unsigned __int128 Rem = 0;
  for (size_t I = N; I-- > 0;) {
    unsigned __int128 Cur = (Rem << 64) | M[I];
    Q[I + 1] = static_cast<uint64_t>(Cur / D);
    Rem = Cur % D;
  }
  unsigned __int128 Cur = Rem << 64;
  Q[0] = static_cast<uint64_t>(Cur / D);
  bool Sticky = (Cur % D) != 0;
  BigFloatBuilder::normalizeAndRoundInto(Dst, NegX, ExpX, Q.data(), N + 1,
                                         Sticky, N);
}

static BigFloat divBySmall(const BigFloat &X, uint64_t D) {
  BigFloat R;
  divBySmallInto(R, X, D);
  return R;
}

/// True when adding Term to a sum of magnitude ~Ref can no longer change
/// the top WorkBits bits.
static bool negligible(const BigFloat &Term, const BigFloat &Ref,
                       size_t WorkBits) {
  if (Term.isZero())
    return true;
  if (Ref.isZero())
    return false;
  return Term.exponent() <
         Ref.exponent() - static_cast<int64_t>(WorkBits) - 16;
}

static size_t workPrec(const BigFloat &X) {
  return X.precisionBits() + GuardBits;
}

static BigFloat widened(const BigFloat &X, size_t WP) {
  return X.withPrecision(WP);
}

static BigFloat one(size_t WP) { return BigFloat::fromInt64(1, WP); }

//===----------------------------------------------------------------------===//
// Constants.
//===----------------------------------------------------------------------===//

/// atan(1/M) for a small integer M via the Gregory series; all divisions
/// are by small integers. Converges log2(M^2) bits per term.
static BigFloat atanReciprocal(uint64_t M, size_t PrecBits) {
  size_t WP = PrecBits + GuardBits;
  uint64_t MSquared = M * M; // callers keep M <= ~2^31
  BigFloat Pow = divBySmall(one(WP), M);
  BigFloat Sum = Pow;
  BigFloat Ref = Sum;
  BigFloat Term;
  bool Negate = true;
  for (uint64_t K = 1;; ++K, Negate = !Negate) {
    divBySmallInto(Pow, Pow, MSquared);
    divBySmallInto(Term, Pow, 2 * K + 1);
    if (negligible(Term, Ref, WP))
      break;
    BigFloat::addInto(Sum, Sum, Negate ? Term.negated() : Term);
  }
  return Sum;
}

BigFloat realmath::pi(size_t PrecBits) {
  // thread_local: batch-engine workers evaluate shadow reals concurrently,
  // and a shared mutable cache would race.
  thread_local BigFloat Cached;
  thread_local size_t CachedPrec = 0;
  if (CachedPrec < PrecBits) {
    size_t P = PrecBits + 64;
    // Machin: pi = 16*atan(1/5) - 4*atan(1/239).
    BigFloat A = BigFloat::scalb(atanReciprocal(5, P), 4);
    BigFloat B = BigFloat::scalb(atanReciprocal(239, P), 2);
    Cached = BigFloat::sub(A, B);
    CachedPrec = P;
  }
  return Cached.withPrecision(PrecBits);
}

BigFloat realmath::ln2(size_t PrecBits) {
  // thread_local: batch-engine workers evaluate shadow reals concurrently,
  // and a shared mutable cache would race.
  thread_local BigFloat Cached;
  thread_local size_t CachedPrec = 0;
  if (CachedPrec < PrecBits) {
    size_t P = PrecBits + 64;
    size_t WP = P + GuardBits;
    // ln2 = 2*atanh(1/3) = 2 * sum 1/((2k+1) 3^(2k+1)).
    BigFloat Pow = divBySmall(one(WP), 3);
    BigFloat Sum = Pow;
    BigFloat Term;
    for (uint64_t K = 1;; ++K) {
      divBySmallInto(Pow, Pow, 9);
      divBySmallInto(Term, Pow, 2 * K + 1);
      if (negligible(Term, Sum, WP))
        break;
      BigFloat::addInto(Sum, Sum, Term);
    }
    Cached = BigFloat::scalb(Sum, 1).withPrecision(P);
    CachedPrec = P;
  }
  return Cached.withPrecision(PrecBits);
}

BigFloat realmath::ln10(size_t PrecBits) {
  // thread_local: batch-engine workers evaluate shadow reals concurrently,
  // and a shared mutable cache would race.
  thread_local BigFloat Cached;
  thread_local size_t CachedPrec = 0;
  if (CachedPrec < PrecBits) {
    size_t P = PrecBits + 64;
    Cached = realmath::log(BigFloat::fromInt64(10, P + GuardBits))
                 .withPrecision(P);
    CachedPrec = P;
  }
  return Cached.withPrecision(PrecBits);
}

BigFloat realmath::eulerE(size_t PrecBits) {
  // thread_local: batch-engine workers evaluate shadow reals concurrently,
  // and a shared mutable cache would race.
  thread_local BigFloat Cached;
  thread_local size_t CachedPrec = 0;
  if (CachedPrec < PrecBits) {
    size_t P = PrecBits + 64;
    Cached = realmath::exp(one(P + GuardBits)).withPrecision(P);
    CachedPrec = P;
  }
  return Cached.withPrecision(PrecBits);
}

//===----------------------------------------------------------------------===//
// Exponentials.
//===----------------------------------------------------------------------===//

BigFloat realmath::exp(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isInf())
    return X.isNegative() ? BigFloat::zero(false) : BigFloat::inf(false);
  if (X.isZero())
    return one(Prec);
  // Saturate absurd magnitudes: any |X| >= 2^50 overflows/underflows every
  // IEEE format the analysis rounds into.
  if (X.exponent() > 50)
    return X.isNegative() ? BigFloat::zero(false) : BigFloat::inf(false);

  // Range-reduce: X = K*ln2 + R with |R| <= ln2/2, exp(X) = 2^K * exp(R).
  // ln2 must carry extra bits to absorb |K| <= 2^51.
  size_t WP2 = WP + 64;
  BigFloat XW = widened(X, WP2);
  BigFloat Ln2 = ln2(WP2);
  BigFloat K = BigFloat::div(XW, Ln2).roundNearest();
  int64_t KInt = K.toInt64Trunc();
  BigFloat R = BigFloat::sub(XW, BigFloat::mul(K, Ln2)).withPrecision(WP);

  BigFloat Sum = one(WP);
  BigFloat Term = one(WP);
  for (uint64_t I = 1;; ++I) {
    BigFloat::mulInto(Term, Term, R);
    divBySmallInto(Term, Term, I);
    if (negligible(Term, Sum, WP))
      break;
    BigFloat::addInto(Sum, Sum, Term);
  }
  return BigFloat::scalb(Sum, KInt).withPrecision(Prec);
}

BigFloat realmath::expm1(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isInf())
    return X.isNegative() ? BigFloat::fromInt64(-1, Prec)
                          : BigFloat::inf(false);
  if (X.isZero())
    return X; // preserves the signed zero, like libm
  if (X.exponent() <= -1) {
    // |X| < 1/2: direct series sum_{k>=1} X^k / k! avoids cancellation.
    BigFloat R = widened(X, WP);
    BigFloat Sum = R;
    BigFloat Term = R;
    for (uint64_t I = 2;; ++I) {
      BigFloat::mulInto(Term, Term, R);
      divBySmallInto(Term, Term, I);
      if (negligible(Term, Sum, WP))
        break;
      BigFloat::addInto(Sum, Sum, Term);
    }
    return Sum.withPrecision(Prec);
  }
  BigFloat E = realmath::exp(widened(X, WP));
  return BigFloat::sub(E, one(WP)).withPrecision(Prec);
}

BigFloat realmath::exp2(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isInf())
    return X.isNegative() ? BigFloat::zero(false) : BigFloat::inf(false);
  if (X.isZero())
    return one(Prec);
  if (X.exponent() > 50)
    return X.isNegative() ? BigFloat::zero(false) : BigFloat::inf(false);
  // 2^X = 2^floor(X) * exp(frac * ln2); exact when X is an integer.
  BigFloat K = X.floor();
  BigFloat Frac = BigFloat::sub(X, K);
  int64_t KInt = K.toInt64Trunc();
  size_t WP = workPrec(X);
  BigFloat E = Frac.isZero()
                   ? one(WP)
                   : realmath::exp(BigFloat::mul(widened(Frac, WP), ln2(WP)));
  return BigFloat::scalb(E, KInt).withPrecision(Prec);
}

//===----------------------------------------------------------------------===//
// Logarithms.
//===----------------------------------------------------------------------===//

/// 2*atanh(T) via the odd series; |T| must be well below 1.
static BigFloat atanhTimes2(const BigFloat &T, size_t WP) {
  if (T.isZero())
    return T;
  BigFloat T2 = BigFloat::mul(T, T);
  BigFloat Pow = T;
  BigFloat Sum = T;
  BigFloat Term;
  for (uint64_t K = 1;; ++K) {
    BigFloat::mulInto(Pow, Pow, T2);
    divBySmallInto(Term, Pow, 2 * K + 1);
    if (negligible(Term, Sum, WP))
      break;
    BigFloat::addInto(Sum, Sum, Term);
  }
  return BigFloat::scalb(Sum, 1);
}

BigFloat realmath::log(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isZero())
    return BigFloat::inf(true);
  if (X.isNegative())
    return BigFloat::nan();
  if (X.isInf())
    return BigFloat::inf(false);

  // X = M * 2^K with M in (sqrt(1/2), sqrt(2)).
  int64_t K = X.exponent();
  BigFloat M = BigFloat::scalb(widened(X, WP), -K);
  if (M.toDouble() < 0.70710678118654752) {
    M = BigFloat::scalb(M, 1);
    K -= 1;
  }
  // ln M = 2*atanh((M-1)/(M+1)).
  BigFloat T = BigFloat::div(BigFloat::sub(M, one(WP)),
                             BigFloat::add(M, one(WP)));
  BigFloat LnM = atanhTimes2(T, WP);
  BigFloat Result =
      BigFloat::add(LnM, BigFloat::mul(BigFloat::fromInt64(K, WP), ln2(WP)));
  return Result.withPrecision(Prec);
}

BigFloat realmath::log1p(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isZero())
    return X;
  if (X.isInf())
    return X.isNegative() ? BigFloat::nan() : BigFloat::inf(false);
  BigFloat One = one(WP);
  int MinusOneCmp = BigFloat::cmp(X, One.negated());
  if (MinusOneCmp == 0)
    return BigFloat::inf(true);
  if (MinusOneCmp < 0)
    return BigFloat::nan();
  if (X.exponent() <= -1) {
    // |X| < 1/2: log1p(X) = 2*atanh(X / (2 + X)), no cancellation.
    BigFloat XW = widened(X, WP);
    BigFloat T = BigFloat::div(XW, BigFloat::add(BigFloat::fromInt64(2, WP),
                                                 XW));
    return atanhTimes2(T, WP).withPrecision(Prec);
  }
  return realmath::log(BigFloat::add(widened(X, WP), One))
      .withPrecision(Prec);
}

BigFloat realmath::log2(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  BigFloat L = realmath::log(widened(X, WP));
  if (!L.isFinite())
    return L;
  return BigFloat::div(L, ln2(WP)).withPrecision(Prec);
}

BigFloat realmath::log10(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  BigFloat L = realmath::log(widened(X, WP));
  if (!L.isFinite())
    return L;
  return BigFloat::div(L, ln10(WP)).withPrecision(Prec);
}

//===----------------------------------------------------------------------===//
// Trigonometry.
//===----------------------------------------------------------------------===//

namespace {
/// Result of circular argument reduction: X = (Quadrant + 4k)*(pi/2) + R
/// with |R| <= pi/4 (plus rounding slack).
struct CircularReduction {
  BigFloat R;
  int Quadrant;
};
} // namespace

/// Reducing an argument of exponent E costs ~E bits of pi (time and
/// memory both). Past ~1M bits that is unpayable -- and pointless for a
/// shadow: such magnitudes only arise from intermediates like
/// exp(exp(x)) whose rounded double is already +/-inf, so the trig
/// functions return NaN instead, matching what the concrete program
/// computes from the overflowed value.
static bool circularReductionFeasible(const BigFloat &X) {
  return X.exponent() <= (int64_t{1} << 20);
}

static CircularReduction reduceCircular(const BigFloat &X, size_t WP) {
  assert(X.isFinite() && !X.isZero() && "reduce of non-finite");
  if (X.exponent() <= -1) {
    // |X| < 1/2 < pi/4: already reduced.
    return {widened(X, WP), 0};
  }
  // Payne-Hanek in spirit: carry enough extra bits of pi to absorb the
  // argument's magnitude.
  size_t ExtP = WP + static_cast<size_t>(std::max<int64_t>(0, X.exponent())) +
                64;
  BigFloat PiHalf = BigFloat::scalb(pi(ExtP), -1);
  BigFloat XE = widened(X, ExtP);
  BigFloat K = BigFloat::div(XE, PiHalf).roundNearest();
  BigFloat R = BigFloat::sub(XE, BigFloat::mul(K, PiHalf));
  // Quadrant = K mod 4 (mathematical modulus).
  BigFloat KDiv4 = BigFloat::scalb(K, -2).floor();
  BigFloat KMod4 = BigFloat::sub(K, BigFloat::scalb(KDiv4, 2));
  int Quadrant = static_cast<int>(KMod4.toInt64Trunc()) & 3;
  return {R.withPrecision(WP), Quadrant};
}

/// sin on the reduced range |R| <= pi/4 + slack.
static BigFloat sinTaylor(const BigFloat &R, size_t WP) {
  if (R.isZero())
    return R;
  BigFloat R2 = BigFloat::mul(R, R).negated();
  BigFloat Term = R;
  BigFloat Sum = R;
  for (uint64_t K = 1;; ++K) {
    BigFloat::mulInto(Term, Term, R2);
    divBySmallInto(Term, Term, (2 * K) * (2 * K + 1));
    if (negligible(Term, Sum, WP))
      break;
    BigFloat::addInto(Sum, Sum, Term);
  }
  return Sum;
}

/// cos on the reduced range.
static BigFloat cosTaylor(const BigFloat &R, size_t WP) {
  BigFloat One = one(WP);
  if (R.isZero())
    return One;
  BigFloat R2 = BigFloat::mul(R, R).negated();
  BigFloat Term = One;
  BigFloat Sum = One;
  for (uint64_t K = 1;; ++K) {
    BigFloat::mulInto(Term, Term, R2);
    divBySmallInto(Term, Term, (2 * K - 1) * (2 * K));
    if (negligible(Term, Sum, WP))
      break;
    BigFloat::addInto(Sum, Sum, Term);
  }
  return Sum;
}

BigFloat realmath::sin(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN() || X.isInf())
    return BigFloat::nan();
  if (X.isZero())
    return X;
  if (!circularReductionFeasible(X))
    return BigFloat::nan();
  CircularReduction CR = reduceCircular(X, WP);
  BigFloat V;
  switch (CR.Quadrant) {
  case 0:
    V = sinTaylor(CR.R, WP);
    break;
  case 1:
    V = cosTaylor(CR.R, WP);
    break;
  case 2:
    V = sinTaylor(CR.R, WP).negated();
    break;
  default:
    V = cosTaylor(CR.R, WP).negated();
    break;
  }
  return V.withPrecision(Prec);
}

BigFloat realmath::cos(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN() || X.isInf())
    return BigFloat::nan();
  if (X.isZero())
    return one(Prec);
  if (!circularReductionFeasible(X))
    return BigFloat::nan();
  CircularReduction CR = reduceCircular(X, WP);
  BigFloat V;
  switch (CR.Quadrant) {
  case 0:
    V = cosTaylor(CR.R, WP);
    break;
  case 1:
    V = sinTaylor(CR.R, WP).negated();
    break;
  case 2:
    V = cosTaylor(CR.R, WP).negated();
    break;
  default:
    V = sinTaylor(CR.R, WP);
    break;
  }
  return V.withPrecision(Prec);
}

BigFloat realmath::tan(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN() || X.isInf())
    return BigFloat::nan();
  if (X.isZero())
    return X;
  if (!circularReductionFeasible(X))
    return BigFloat::nan();
  CircularReduction CR = reduceCircular(X, WP);
  BigFloat S = sinTaylor(CR.R, WP);
  BigFloat C = cosTaylor(CR.R, WP);
  BigFloat V = (CR.Quadrant & 1) ? BigFloat::div(C, S).negated()
                                 : BigFloat::div(S, C);
  return V.withPrecision(Prec);
}

BigFloat realmath::atan(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isZero())
    return X;
  if (X.isInf()) {
    BigFloat PiHalf = BigFloat::scalb(pi(Prec), -1);
    return X.isNegative() ? PiHalf.negated() : PiHalf;
  }
  bool Negate = X.isNegative();
  BigFloat A = widened(X.abs(), WP);
  bool Reciprocal = false;
  if (A.exponent() > 0 && BigFloat::cmp(A, one(WP)) > 0) {
    A = BigFloat::div(one(WP), A);
    Reciprocal = true;
  }
  // Halve with atan(a) = 2*atan(a / (1 + sqrt(1 + a^2))) until a < 1/8.
  int Halvings = 0;
  while (!A.isZero() && A.exponent() > -3) {
    BigFloat Sq = BigFloat::sqrt(
        BigFloat::add(one(WP), BigFloat::mul(A, A)));
    A = BigFloat::div(A, BigFloat::add(one(WP), Sq));
    ++Halvings;
  }
  // Gregory series.
  BigFloat Sum = A;
  if (!A.isZero()) {
    BigFloat A2 = BigFloat::mul(A, A).negated();
    BigFloat Pow = A;
    BigFloat Term;
    for (uint64_t K = 1;; ++K) {
      BigFloat::mulInto(Pow, Pow, A2);
      divBySmallInto(Term, Pow, 2 * K + 1);
      if (negligible(Term, Sum, WP))
        break;
      BigFloat::addInto(Sum, Sum, Term);
    }
  }
  BigFloat V = BigFloat::scalb(Sum, Halvings);
  if (Reciprocal)
    V = BigFloat::sub(BigFloat::scalb(pi(WP), -1), V);
  if (Negate)
    V = V.negated();
  return V.withPrecision(Prec);
}

BigFloat realmath::atan2(const BigFloat &Y, const BigFloat &X) {
  size_t Prec = std::max(Y.precisionBits(), X.precisionBits());
  size_t WP = Prec + GuardBits;
  if (Y.isNaN() || X.isNaN())
    return BigFloat::nan();
  bool YNeg = Y.isNegative();
  auto Signed = [&](const BigFloat &V) {
    return YNeg ? V.negated() : V;
  };
  BigFloat Pi = pi(Prec);
  BigFloat PiHalf = BigFloat::scalb(pi(Prec), -1);
  if (Y.isZero()) {
    // C99: the sign of the zero selects the branch.
    if (X.isZero())
      return X.isNegative() ? Signed(Pi) : Signed(BigFloat::zero(YNeg));
    if (X.isNegative())
      return Signed(Pi);
    return BigFloat::zero(YNeg);
  }
  if (X.isZero())
    return Signed(PiHalf);
  if (X.isInf() && Y.isInf()) {
    BigFloat PiQuarter = BigFloat::scalb(pi(Prec), -2);
    if (X.isNegative())
      return Signed(BigFloat::sub(Pi, PiQuarter)); // ±3pi/4
    return Signed(PiQuarter);
  }
  if (X.isInf())
    return X.isNegative() ? Signed(Pi) : BigFloat::zero(YNeg);
  if (Y.isInf())
    return Signed(PiHalf);

  BigFloat Base =
      realmath::atan(BigFloat::div(widened(Y.abs(), WP), widened(X.abs(), WP)));
  BigFloat V = X.isNegative() ? BigFloat::sub(pi(WP), Base) : Base;
  return Signed(V).withPrecision(Prec);
}

BigFloat realmath::asin(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isZero())
    return X;
  BigFloat AbsX = X.abs();
  BigFloat One = one(WP);
  int Cmp = X.isInf() ? 1 : BigFloat::cmp(widened(AbsX, WP), One);
  if (Cmp > 0)
    return BigFloat::nan();
  if (Cmp == 0) {
    BigFloat PiHalf = BigFloat::scalb(pi(Prec), -1);
    return X.isNegative() ? PiHalf.negated() : PiHalf;
  }
  BigFloat XW = widened(X, WP);
  BigFloat Denom = BigFloat::sqrt(BigFloat::sub(One, BigFloat::mul(XW, XW)));
  return realmath::atan(BigFloat::div(XW, Denom)).withPrecision(Prec);
}

BigFloat realmath::acos(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  BigFloat One = one(WP);
  BigFloat XW = widened(X, WP);
  if (X.isInf() || BigFloat::cmp(XW.abs(), One) > 0)
    return BigFloat::nan();
  // acos(x) = atan2(sqrt(1 - x^2), x): no cancellation anywhere.
  BigFloat S = BigFloat::sqrt(BigFloat::sub(One, BigFloat::mul(XW, XW)));
  return realmath::atan2(S, XW).withPrecision(Prec);
}

//===----------------------------------------------------------------------===//
// Hyperbolics.
//===----------------------------------------------------------------------===//

BigFloat realmath::sinh(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (!X.isFinite() || X.isZero())
    return X; // NaN, ±inf, ±0 all map to themselves
  if (X.exponent() <= -1) {
    // |X| < 1/2: odd series avoids the exp(x) - exp(-x) cancellation.
    BigFloat R = widened(X, WP);
    BigFloat R2 = BigFloat::mul(R, R);
    BigFloat Term = R;
    BigFloat Sum = R;
    for (uint64_t K = 1;; ++K) {
      BigFloat::mulInto(Term, Term, R2);
      divBySmallInto(Term, Term, (2 * K) * (2 * K + 1));
      if (negligible(Term, Sum, WP))
        break;
      BigFloat::addInto(Sum, Sum, Term);
    }
    return Sum.withPrecision(Prec);
  }
  BigFloat E = realmath::exp(widened(X, WP));
  BigFloat V = BigFloat::sub(E, BigFloat::div(one(WP), E));
  return BigFloat::scalb(V, -1).withPrecision(Prec);
}

BigFloat realmath::cosh(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN())
    return BigFloat::nan();
  if (X.isInf())
    return BigFloat::inf(false);
  if (X.isZero())
    return one(Prec);
  BigFloat E = realmath::exp(widened(X, WP));
  if (E.isInf() || E.isZero())
    return BigFloat::inf(false);
  BigFloat V = BigFloat::add(E, BigFloat::div(one(WP), E));
  return BigFloat::scalb(V, -1).withPrecision(Prec);
}

BigFloat realmath::tanh(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (X.isNaN() || X.isZero())
    return X;
  if (X.isInf())
    return BigFloat::fromInt64(X.isNegative() ? -1 : 1, Prec);
  // tanh(|x|) = -expm1(-2|x|) / (2 + expm1(-2|x|)), then restore the sign.
  BigFloat A = widened(X.abs(), WP);
  BigFloat T = realmath::expm1(BigFloat::scalb(A, 1).negated());
  BigFloat V = BigFloat::div(T.negated(),
                             BigFloat::add(BigFloat::fromInt64(2, WP), T));
  if (X.isNegative())
    V = V.negated();
  return V.withPrecision(Prec);
}

//===----------------------------------------------------------------------===//
// Powers and roots.
//===----------------------------------------------------------------------===//

/// Integer power by squaring at working precision.
static BigFloat powInt(const BigFloat &X, int64_t N, size_t WP) {
  if (N == 0)
    return one(WP);
  bool Invert = N < 0;
  uint64_t E = Invert ? -static_cast<uint64_t>(N) : static_cast<uint64_t>(N);
  BigFloat Base = widened(X, WP);
  BigFloat Acc = one(WP);
  while (E) {
    if (E & 1)
      BigFloat::mulInto(Acc, Acc, Base);
    BigFloat::mulInto(Base, Base, Base);
    E >>= 1;
  }
  return Invert ? BigFloat::div(one(WP), Acc) : Acc;
}

BigFloat realmath::pow(const BigFloat &X, const BigFloat &Y) {
  size_t Prec = std::max(X.precisionBits(), Y.precisionBits());
  size_t WP = Prec + GuardBits;
  // C99 pow special-value ladder.
  if (Y.isZero())
    return one(Prec);
  if (!X.isNaN() && !X.isZero() && X.isFinite() && !X.isNegative() &&
      X.exponent() == 1 && BigFloat::cmp(X, one(WP)) == 0)
    return one(Prec); // pow(+1, anything) = 1
  if (X.isNaN() || Y.isNaN())
    return BigFloat::nan();
  bool YIsInt = Y.isInteger();
  bool YIsOdd = Y.isOddInteger();
  if (Y.isInf()) {
    int MagCmp = X.isInf() ? 1 : BigFloat::cmp(X.abs(), one(WP));
    if (MagCmp == 0)
      return one(Prec); // pow(-1, ±inf) = 1 as well
    bool GrowsToInf = (MagCmp > 0) == !Y.isNegative();
    return GrowsToInf ? BigFloat::inf(false) : BigFloat::zero(false);
  }
  if (X.isZero()) {
    bool ResultNeg = YIsOdd && X.isNegative();
    if (Y.isNegative())
      return BigFloat::inf(ResultNeg);
    return BigFloat::zero(ResultNeg);
  }
  if (X.isInf()) {
    bool ResultNeg = YIsOdd && X.isNegative();
    if (Y.isNegative())
      return BigFloat::zero(ResultNeg);
    return BigFloat::inf(ResultNeg);
  }
  if (X.isNegative() && !YIsInt)
    return BigFloat::nan();

  // Small integer exponents: exact-ish squaring (also covers negative X).
  if (YIsInt && Y.exponent() <= 32) {
    int64_t N = Y.toInt64Trunc();
    return powInt(X, N, WP).withPrecision(Prec);
  }

  // General case on |X|: exp(Y * log X), widening with the magnitude of the
  // intermediate product so the final result keeps full precision.
  BigFloat T0 = BigFloat::mul(widened(Y, WP), realmath::log(widened(X.abs(),
                                                                    WP)));
  size_t ExtP = WP;
  if (!T0.isZero() && T0.isFinite() && T0.exponent() > 0)
    ExtP += static_cast<size_t>(T0.exponent()) + 64;
  BigFloat T = ExtP == WP
                   ? T0
                   : BigFloat::mul(widened(Y, ExtP),
                                   realmath::log(widened(X.abs(), ExtP)));
  BigFloat V = realmath::exp(T);
  if (X.isNegative() && YIsOdd)
    V = V.negated();
  return V.withPrecision(Prec);
}

BigFloat realmath::cbrt(const BigFloat &X) {
  size_t Prec = X.precisionBits();
  size_t WP = workPrec(X);
  if (!X.isFinite() || X.isZero())
    return X;
  BigFloat A = widened(X.abs(), WP);
  BigFloat V = realmath::exp(divBySmall(realmath::log(A), 3));
  if (X.isNegative())
    V = V.negated();
  return V.withPrecision(Prec);
}

BigFloat realmath::hypot(const BigFloat &X, const BigFloat &Y) {
  size_t Prec = std::max(X.precisionBits(), Y.precisionBits());
  size_t WP = Prec + GuardBits;
  if (X.isInf() || Y.isInf())
    return BigFloat::inf(false); // even when the other operand is NaN
  if (X.isNaN() || Y.isNaN())
    return BigFloat::nan();
  BigFloat XW = widened(X, WP);
  BigFloat YW = widened(Y, WP);
  BigFloat S = BigFloat::add(BigFloat::mul(XW, XW), BigFloat::mul(YW, YW));
  return BigFloat::sqrt(S).withPrecision(Prec);
}

//===----------------------------------------------------------------------===//
// Remainders.
//===----------------------------------------------------------------------===//

/// Shared fmod/remainder core: X - Q*Y where Q is an integer chosen by
/// \p RoundQ. Computed at enough precision to make the subtraction exact.
template <typename RoundFn>
static BigFloat moduloImpl(const BigFloat &X, const BigFloat &Y,
                           RoundFn RoundQ) {
  size_t Prec = std::max(X.precisionBits(), Y.precisionBits());
  if (X.isNaN() || Y.isNaN() || X.isInf() || Y.isZero())
    return BigFloat::nan();
  if (X.isZero() || Y.isInf())
    return X.withPrecision(Prec);

  int64_t ExpGap = X.exponent() - Y.exponent();
  size_t ExtP =
      Prec + GuardBits + static_cast<size_t>(std::max<int64_t>(0, ExpGap)) +
      64;
  BigFloat XW = X.withPrecision(ExtP);
  BigFloat YW = Y.withPrecision(ExtP);
  BigFloat Q = RoundQ(BigFloat::div(XW, YW));
  BigFloat R = BigFloat::sub(XW, BigFloat::mul(Q, YW));
  return R.withPrecision(Prec);
}

BigFloat realmath::fmod(const BigFloat &X, const BigFloat &Y) {
  BigFloat R = moduloImpl(X, Y, [](const BigFloat &Q) { return Q.trunc(); });
  if (R.isZero() && !R.isNaN())
    return BigFloat::zero(X.isNegative());
  return R;
}

BigFloat realmath::remainder(const BigFloat &X, const BigFloat &Y) {
  return moduloImpl(X, Y,
                    [](const BigFloat &Q) { return Q.roundNearestEven(); });
}
