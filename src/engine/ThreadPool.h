//===- engine/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch engine's worker pool. Each worker owns a deque: it pushes and
/// pops its own work at the back and steals from other workers' fronts
/// when it runs dry, so uneven shard costs (benchmarks vary by orders of
/// magnitude in shadow-op count) balance automatically. Determinism is the
/// caller's job: the engine tags every shard with its index and reduces in
/// index order, so it never depends on completion order.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ENGINE_THREADPOOL_H
#define HERBGRIND_ENGINE_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace herbgrind {
namespace engine {

class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers) {
    if (Workers == 0)
      Workers = 1;
    Queues.resize(Workers);
    Threads.reserve(Workers);
    for (unsigned I = 0; I < Workers; ++I)
      Threads.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WorkReady.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues one task. Tasks are distributed round-robin across worker
  /// queues; idle workers steal, so placement only affects locality.
  void submit(std::function<void()> Task) {
    // 64-bit: a 32-bit size_t counter would wrap after 4G submissions,
    // skewing round-robin placement mid-sweep.
    submitTo(static_cast<size_t>(
                 NextQueue.fetch_add(1, std::memory_order_relaxed) %
                 Queues.size()),
             std::move(Task));
  }

  /// Enqueues one task with a placement hint (taken modulo the worker
  /// count). Work stealing still rebalances, so the hint is purely a
  /// locality lever -- the engine uses it to keep one benchmark's shards
  /// on one worker, which is what lets the worker-local analyzer reuse
  /// its arenas across them.
  void submitTo(size_t QueueHint, std::function<void()> Task) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      std::deque<std::function<void()>> &Q = Queues[QueueHint % Queues.size()];
      Q.push_back(std::move(Task));
      ++Pending;
      ++Counters.Submitted;
      if (Q.size() > Counters.MaxQueueDepth)
        Counters.MaxQueueDepth = Q.size();
    }
    WorkReady.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void waitAll() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
  }

  /// Pool utilization counters (telemetry; see docs/TELEMETRY.md).
  struct PoolStats {
    uint64_t Submitted = 0;     ///< Tasks enqueued.
    uint64_t Executed = 0;      ///< Tasks completed.
    uint64_t Steals = 0;        ///< Tasks taken from another worker's queue.
    uint64_t MaxQueueDepth = 0; ///< Deepest any single queue ever got.
  };

  PoolStats stats() {
    std::unique_lock<std::mutex> Lock(Mutex);
    return Counters;
  }

private:
  void workerLoop(unsigned Me) {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkReady.wait(Lock, [&] { return Stopping || anyQueued(); });
        if (Stopping && !anyQueued())
          return;
        // Own work first (back: most recently queued, cache-warm), then
        // steal the oldest task from the fullest other queue.
        if (!Queues[Me].empty()) {
          Task = std::move(Queues[Me].back());
          Queues[Me].pop_back();
        } else {
          size_t Victim = Me, Best = 0;
          for (size_t Q = 0; Q < Queues.size(); ++Q)
            if (Queues[Q].size() > Best) {
              Best = Queues[Q].size();
              Victim = Q;
            }
          Task = std::move(Queues[Victim].front());
          Queues[Victim].pop_front();
          if (Victim != Me)
            ++Counters.Steals;
        }
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        --Pending;
        ++Counters.Executed;
        if (Pending == 0)
          AllDone.notify_all();
      }
    }
  }

  bool anyQueued() const {
    for (const auto &Q : Queues)
      if (!Q.empty())
        return true;
    return false;
  }

  std::vector<std::deque<std::function<void()>>> Queues;
  std::vector<std::thread> Threads;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  size_t Pending = 0;
  PoolStats Counters; ///< Guarded by Mutex, like the queues it describes.
  std::atomic<uint64_t> NextQueue{0};
  bool Stopping = false;
};

} // namespace engine
} // namespace herbgrind

#endif // HERBGRIND_ENGINE_THREADPOOL_H
