//===- engine/Engine.h - Parallel batch analysis ----------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel batch-analysis engine: shards a corpus sweep (benchmark x
/// sampled-input batches) across a work-stealing pool of worker-local
/// Herbgrind instances and reduces the per-shard records with the
/// AnalysisResult merge machinery. Everything is deterministic by
/// construction -- inputs are sampled up front from per-benchmark seeds,
/// shard boundaries depend only on the configuration, and each benchmark's
/// shards are folded in ascending shard order -- so a run with N workers
/// produces a report byte-identical to a run with one.
///
/// The reduction is *streaming*: a finished shard folds into its
/// benchmark's accumulator as soon as every earlier shard has (out-of-
/// order completions wait in a small pending buffer), so reduce overlaps
/// analyze and peak memory stays proportional to the out-of-order window
/// rather than the total shard count.
///
/// Results are durable values. With a cache directory configured, every
/// shard's records persist as a wire-format document keyed by FPCore
/// identity + sampling seed + sample range + config hash, and a repeated
/// sweep analyzes only new or invalidated shards (see ResultCache.h).
/// With an emit directory configured, the same documents are written for
/// off-machine merging; `mergeShards` folds them back into a BatchResult
/// byte-identical to a single-machine sweep's.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ENGINE_ENGINE_H
#define HERBGRIND_ENGINE_ENGINE_H

#include "analysis/Analysis.h"
#include "analysis/Report.h"
#include "analysis/Serialize.h"
#include "fpcore/Compile.h"

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace herbgrind {

namespace native {
struct Kernel;
}

namespace engine {

class ResultCache;

/// How much shadowing a sweep performs (docs/ARCHITECTURE.md, "Tiered
/// shadowing").
enum class TierMode {
  /// Every run carries the full 256-bit shadow. The baseline.
  Full,
  /// Per-run escalation: every sampled input first executes under the
  /// cheap tier-0 error predicates (native doubles, no BigFloat); only
  /// runs whose spot predicates cannot rule out an erroneous observation
  /// re-execute under the full shadow. Reports contain only escalated
  /// runs, so root causes are a subset of Full's (predicate soundness
  /// makes the *erroneous* set complete, but Executions/Flagged counts
  /// differ); cached shards live under a distinct "tier=fast" hash so
  /// they never alias Full entries.
  Fast,
  /// Per-benchmark confirmation (the default tiered mode): a parallel
  /// tier-0 pass sweeps every shard first, then benchmarks with at least
  /// one suspect run re-run under the full shadow. Predicate soundness
  /// (a full-mode erroneous spot implies a tier-0 suspect run) makes the
  /// final report byte-identical to Full's; confirmed shards store
  /// genuine full records, so Confirm shares Full's cache hash and the
  /// two modes warm each other's caches. Clean benchmarks fold empty
  /// records (their Full report is empty too) and are never cached.
  Confirm,
};

/// Batch-run configuration.
struct EngineConfig {
  /// Worker threads; 0 means hardware concurrency.
  unsigned Jobs = 0;
  /// Sampled input tuples per benchmark.
  int SamplesPerBenchmark = 64;
  /// Input tuples per shard (the parallel grain).
  int ShardSize = 16;
  /// Base seed; each benchmark derives an independent stream from it, so
  /// sampling does not depend on sharding or worker count.
  uint64_t Seed = 0xcafe;
  /// Per-shard analysis configuration.
  AnalysisConfig Analysis;
  /// Shadowing tier (see TierMode). Part of the config hash only for
  /// Fast (whose records genuinely differ); Confirm shares Full's hash.
  TierMode Tier = TierMode::Full;
  /// Persistent shard-result cache directory; empty disables caching.
  /// Cached shards skip analysis entirely and fold into the sweep through
  /// the same in-order reduction, byte-identically.
  std::string CacheDir;
  /// Size cap for CacheDir in bytes; when nonzero, the sweep ends with an
  /// LRU-by-mtime garbage collection pass that prunes the directory down
  /// to the cap (see engine::gcCacheDir). 0 leaves the cache unbounded.
  /// Never part of the config hash: pruning changes what is cached, not
  /// what any shard's records contain.
  uint64_t CacheMaxBytes = 0;
  /// When non-empty, every shard's result is also written here as a wire
  /// format document (shard-b<bench>-s<shard>.json) for off-machine
  /// merging with mergeShards / `herbgrind_batch --merge-shards`.
  std::string EmitShardDir;
  /// Half-open per-benchmark shard-index range to execute; the default
  /// covers every shard. Shard boundaries are laid out over the full
  /// sample count regardless, so two machines running disjoint ranges of
  /// the same configuration produce shards that merge into exactly the
  /// full sweep's report.
  size_t ShardBegin = 0;
  size_t ShardEnd = std::numeric_limits<size_t>::max();
  /// Sample points each batched analyzer call processes at once (the SoA
  /// hot path; docs/ARCHITECTURE.md, "Batched evaluation"). 1 runs the
  /// scalar point-at-a-time loops unchanged. Purely a scheduling knob --
  /// reports are byte-identical at every lane count, so like Jobs it is
  /// deliberately absent from the config hash and batched sweeps share
  /// scalar sweeps' caches.
  unsigned BatchLanes = 1;
  /// Wire encoding for documents this sweep WRITES (cache stores and
  /// emitted shards): JSON or compact HGB binary. Readers always sniff,
  /// so a sweep consumes either format regardless. Deliberately absent
  /// from the config hash -- both encodings carry bit-identical records,
  /// so JSON-cached and binary-cached sweeps warm each other.
  WireEncoding WireFormat = WireEncoding::Json;
};

/// One benchmark's merged outcome.
struct BenchmarkResult {
  std::string Name;
  AnalysisResult Records; ///< Shard records merged in shard order.
  Report Rep;             ///< Built from the merged records.
  uint64_t Shards = 0;    ///< Shards folded in (executed ones only).
  uint64_t Runs = 0;      ///< Sampled inputs analyzed or loaded from cache.
};

/// Aggregate run statistics (informational; never part of deterministic
/// output).
struct EngineStats {
  uint64_t Benchmarks = 0;
  uint64_t Shards = 0;         ///< Shards folded (analyzed + cached).
  uint64_t Runs = 0;
  uint64_t AnalyzedShards = 0; ///< Shards actually executed this sweep.
  uint64_t CachedShards = 0;   ///< Shards satisfied by the result cache.
  uint64_t EmitFailures = 0;   ///< EmitShardDir documents that failed to
                               ///< write (callers should treat > 0 as an
                               ///< error: the emitted set is incomplete).
  uint64_t CacheHits = 0;      ///< Compiled-program cache hits.
  uint64_t CacheMisses = 0;    ///< Compiled-program cache misses.
  uint64_t CachePrunedEntries = 0; ///< Result-cache entries GC'd post-run.
  uint64_t CachePrunedBytes = 0;   ///< Bytes the post-run GC reclaimed.
  uint64_t ResultCacheHits = 0;    ///< Shard result-cache lookup hits.
  uint64_t ResultCacheMisses = 0;  ///< Shard result-cache lookup misses.
  uint64_t ResultCacheStoreFailures = 0; ///< Shard documents that failed
                                         ///< to persist (cache only; the
                                         ///< sweep's results are intact).
  uint64_t LimbHeapAllocs = 0; ///< Limb blocks that hit operator new[]
                               ///< during shard analysis (all workers).
  uint64_t LimbCacheHits = 0;  ///< Limb blocks served from thread caches
                               ///< during shard analysis (all workers).
  uint64_t Tier0Runs = 0; ///< Runs executed under tier-0 predicates.
  uint64_t Tier0Ops = 0;  ///< Shadow ops executed at tier 0.
  uint64_t EscalatedRuns = 0; ///< Runs re-executed under the full shadow
                              ///< because of a tier-0 suspect verdict.
  uint64_t ConfirmedBenchmarks = 0; ///< Confirm mode: benchmarks whose
                                    ///< tier-0 verdict forced the full
                                    ///< confirmation pass.
  uint64_t PoolTasks = 0;         ///< Thread-pool tasks executed.
  uint64_t PoolSteals = 0;        ///< Tasks taken from another worker.
  uint64_t PoolMaxQueueDepth = 0; ///< Deepest any worker queue ever got.
  /// Non-empty when a configured post-run cache GC failed: the cap was
  /// NOT enforced this sweep. Callers should surface this to the
  /// operator (the CLI prints it to stderr).
  std::string CacheGcError;
  double WallSeconds = 0.0;
};

/// The full batch outcome.
struct BatchResult {
  std::vector<BenchmarkResult> Benchmarks; ///< In submission order.
  EngineStats Stats;

  /// Corpus-wide report: per-benchmark reports folded together.
  Report merged() const;

  /// Deterministic JSON: a versioned envelope (REPORT_SCHEMA.md) around
  /// the per-benchmark reports. Byte-identical across worker counts,
  /// repeated runs, warm/cold caches, and single- vs multi-machine
  /// sweeps of the same configuration.
  std::string renderJson() const;

  /// The same document in the requested encoding (the HGB binary render
  /// carries bit-identical values; hgb2json recovers the exact JSON
  /// bytes).
  std::string renderWire(WireEncoding Enc) const;
};

/// The batch driver. One engine owns a compiled-program cache, so
/// repeated runs (e.g. a jobs sweep in the scaling bench) recompile
/// nothing; with EngineConfig::CacheDir set it also owns a persistent
/// shard-result cache shared across processes and machines.
class Engine {
public:
  explicit Engine(EngineConfig Cfg = {});
  ~Engine();

  /// Analyzes every core, sharded and in parallel.
  BatchResult run(const std::vector<fpcore::Core> &Cores);

  /// Analyzes every registered native kernel: real C++ code instrumented
  /// through native::Real is swept exactly like an FPCore benchmark
  /// (deterministic sharding, byte-identical merging at any worker
  /// count, shard-result caching keyed by Kernel::identity()).
  BatchResult run(const std::vector<native::Kernel> &Kernels);

  /// One combined sweep over FPCore cores followed by native kernels
  /// (benchmark indices cover the concatenation, in that order).
  BatchResult run(const std::vector<fpcore::Core> &Cores,
                  const std::vector<native::Kernel> &Kernels);

  /// Analyzes the whole bundled corpus (skipping any core the compiler
  /// does not support).
  BatchResult runCorpus();

  const EngineConfig &config() const { return Cfg; }

  /// The persistent shard-result cache, or nullptr when CacheDir is
  /// empty. The non-const form exists for follow-on passes (the batch
  /// improver) that store their own entries in the same directory.
  const ResultCache *resultCache() const { return RC.get(); }
  ResultCache *resultCache() { return RC.get(); }

private:
  EngineConfig Cfg;
  fpcore::ProgramCache Cache;
  std::unique_ptr<ResultCache> RC;
};

/// Folds shard wire-format documents (from `--emit-shard` runs, possibly
/// on different machines, or straight from a cache directory) back into a
/// BatchResult. Documents are grouped by benchmark index and folded in
/// ascending shard order -- the same deterministic reduction the engine
/// uses -- so merging a sweep's complete shard set reproduces that
/// sweep's report byte-identically.
///
/// Fails (returns false, sets \p Err) on an empty input, mismatched
/// config hashes, inconsistent benchmark identities, or duplicate shards.
/// Gaps in shard coverage are permitted -- a partial merge is a correct
/// report over the shards present -- but are described in \p Warnings
/// when provided.
bool mergeShards(std::vector<ShardDoc> Docs, BatchResult &Out,
                 std::string &Err, std::string *Warnings = nullptr);

} // namespace engine
} // namespace herbgrind

#endif // HERBGRIND_ENGINE_ENGINE_H
