//===- engine/Engine.h - Parallel batch analysis ----------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel batch-analysis engine: shards a corpus sweep (benchmark x
/// sampled-input batches) across a work-stealing pool of worker-local
/// Herbgrind instances and reduces the per-shard records with the
/// AnalysisResult merge machinery. Everything is deterministic by
/// construction -- inputs are sampled up front from per-benchmark seeds,
/// shard boundaries depend only on the configuration, and shards are
/// merged in ascending shard order -- so a run with N workers produces a
/// report byte-identical to a run with one.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ENGINE_ENGINE_H
#define HERBGRIND_ENGINE_ENGINE_H

#include "analysis/Analysis.h"
#include "analysis/Report.h"
#include "fpcore/Compile.h"

#include <string>
#include <vector>

namespace herbgrind {
namespace engine {

/// Batch-run configuration.
struct EngineConfig {
  /// Worker threads; 0 means hardware concurrency.
  unsigned Jobs = 0;
  /// Sampled input tuples per benchmark.
  int SamplesPerBenchmark = 64;
  /// Input tuples per shard (the parallel grain).
  int ShardSize = 16;
  /// Base seed; each benchmark derives an independent stream from it, so
  /// sampling does not depend on sharding or worker count.
  uint64_t Seed = 0xcafe;
  /// Per-shard analysis configuration.
  AnalysisConfig Analysis;
};

/// One benchmark's merged outcome.
struct BenchmarkResult {
  std::string Name;
  AnalysisResult Records; ///< Shard records merged in shard order.
  Report Rep;             ///< Built from the merged records.
  uint64_t Shards = 0;
  uint64_t Runs = 0;
};

/// Aggregate run statistics (informational; never part of deterministic
/// output).
struct EngineStats {
  uint64_t Benchmarks = 0;
  uint64_t Shards = 0;
  uint64_t Runs = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  double WallSeconds = 0.0;
};

/// The full batch outcome.
struct BatchResult {
  std::vector<BenchmarkResult> Benchmarks; ///< In submission order.
  EngineStats Stats;

  /// Corpus-wide report: per-benchmark reports folded together.
  Report merged() const;

  /// Deterministic JSON: configuration echo plus per-benchmark reports.
  /// Byte-identical across worker counts and repeated runs.
  std::string renderJson() const;
};

/// The batch driver. One engine owns a compiled-program cache, so
/// repeated runs (e.g. a jobs sweep in the scaling bench) recompile
/// nothing.
class Engine {
public:
  explicit Engine(EngineConfig Cfg = {});

  /// Analyzes every core, sharded and in parallel.
  BatchResult run(const std::vector<fpcore::Core> &Cores);

  /// Analyzes the whole bundled corpus (skipping any core the compiler
  /// does not support).
  BatchResult runCorpus();

  const EngineConfig &config() const { return Cfg; }

private:
  EngineConfig Cfg;
  fpcore::ProgramCache Cache;
};

} // namespace engine
} // namespace herbgrind

#endif // HERBGRIND_ENGINE_ENGINE_H
