//===- engine/RunLedger.h - Persistent sweep run ledger ---------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run ledger: an append-only directory of one durable envelope per
/// sweep (`analysis/Serialize`'s LedgerEntry -- config hash, wire format,
/// tier/cache/pool stats, wall time, and the sweep's merged metrics
/// snapshot, stamped with host and timestamp). Where the telemetry
/// document answers "what did this process do", the ledger answers "how
/// has this configuration behaved over time": `herbgrind_batch ledger
/// list|show|compare` browses it, and `ledgerCompare` flags regressions
/// (wall time, cache hit rate, escalation fraction, steady-state heap
/// allocs) against a chosen baseline entry with configurable thresholds.
///
/// Entries are one file each (`entry-<wallclock ns>-<pid>.json|.hgb`),
/// written atomically, so concurrent sweeps on a shared directory never
/// interleave and "append" needs no locking. Readers sniff the encoding
/// per entry; a directory can mix JSON and HGB freely.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ENGINE_RUNLEDGER_H
#define HERBGRIND_ENGINE_RUNLEDGER_H

#include "analysis/Serialize.h"
#include "engine/Engine.h"

#include <string>
#include <vector>

namespace herbgrind {
namespace engine {

/// This machine's hostname ("unknown" if the platform won't say).
std::string hostName();

/// Wall-clock nanoseconds since the Unix epoch (the ledger ordering key;
/// metrics::nowNanos() is monotonic and unsuitable for cross-run order).
uint64_t wallClockNanos();

/// \p UnixSeconds rendered as ISO-8601 UTC ("2026-08-08T12:34:56Z").
std::string isoTimestampUtc(uint64_t UnixSeconds);

/// Builds a ledger entry from a finished sweep: config knobs and stats
/// from the engine, provenance (host/timestamp) from this machine, and
/// the process's merged metrics snapshot. \p Label distinguishes entries
/// sharing a directory ("sweep", a bench section name, ...).
LedgerEntry makeLedgerEntry(const EngineConfig &Cfg, const EngineStats &Stats,
                            const std::string &Label);

/// Appends \p Entry to the ledger directory \p Dir (created if missing)
/// as one atomically-written file in \p Enc. On success \p PathOut names
/// the entry file.
bool ledgerAppend(const std::string &Dir, const LedgerEntry &Entry,
                  WireEncoding Enc, std::string &PathOut, std::string &Err);

/// Loads every entry in \p Dir, oldest first (by recorded wall-clock
/// timestamp, then filename). \p Paths parallels \p Out. An unparseable
/// file fails the whole list -- a ledger with corrupt entries should be
/// loud, not quietly shorter.
bool ledgerList(const std::string &Dir, std::vector<LedgerEntry> &Out,
                std::vector<std::string> &Paths, std::string &Err);

/// Regression thresholds for ledgerCompare. Fractions are relative to
/// the baseline value; rate deltas are absolute (a hit *rate* lives in
/// [0, 1] already).
struct LedgerThresholds {
  /// Wall time may grow by this fraction before it flags (0.25 = +25%).
  double WallFrac = 0.25;
  /// Result-cache hit rate may drop by this much, absolute (0.10 = ten
  /// percentage points). Only judged when the baseline did lookups.
  double CacheHitDrop = 0.10;
  /// Escalation fraction (escalated runs / runs) may rise by this much,
  /// absolute. Only judged when both entries ran a tiered sweep.
  double EscalationRise = 0.10;
  /// Steady-state limb heap allocations may grow by this fraction...
  double HeapFrac = 0.10;
  /// ...plus this absolute slack, so a 0-alloc baseline tolerates noise
  /// without flagging the first stray allocation.
  uint64_t HeapSlack = 256;
};

/// One flagged regression: the metric, both values, and the limit the
/// current value crossed.
struct LedgerRegression {
  std::string Metric; ///< "wall_seconds", "cache_hit_rate",
                      ///< "escalation_fraction", or "limb_heap_allocs".
  double Baseline = 0.0;
  double Current = 0.0;
  double Limit = 0.0; ///< The threshold-derived bound that was crossed.
};

/// Judges \p Current against \p Baseline. Returns every regression the
/// thresholds flag (empty = no regression). Comparing entries with
/// different config hashes is allowed -- the caller decides whether that
/// comparison means anything -- but see LedgerEntry::ConfigHash.
std::vector<LedgerRegression>
ledgerCompare(const LedgerEntry &Baseline, const LedgerEntry &Current,
              const LedgerThresholds &T = {});

} // namespace engine
} // namespace herbgrind

#endif // HERBGRIND_ENGINE_RUNLEDGER_H
