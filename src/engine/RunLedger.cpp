//===- engine/RunLedger.cpp - Persistent sweep run ledger -----------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "engine/RunLedger.h"

#include "engine/ResultCache.h"
#include "support/Format.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <system_error>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace herbgrind;
using namespace herbgrind::engine;

namespace fs = std::filesystem;

std::string herbgrind::engine::hostName() {
#if defined(_WIN32)
  const char *Env = std::getenv("COMPUTERNAME");
  return Env && *Env ? Env : "unknown";
#else
  char Buf[256] = {};
  if (gethostname(Buf, sizeof(Buf) - 1) == 0 && Buf[0])
    return Buf;
  return "unknown";
#endif
}

uint64_t herbgrind::engine::wallClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string herbgrind::engine::isoTimestampUtc(uint64_t UnixSeconds) {
  std::time_t T = static_cast<std::time_t>(UnixSeconds);
  std::tm Tm = {};
#if defined(_WIN32)
  gmtime_s(&Tm, &T);
#else
  gmtime_r(&T, &Tm);
#endif
  return format("%04d-%02d-%02dT%02d:%02d:%02dZ", Tm.tm_year + 1900,
                Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour, Tm.tm_min, Tm.tm_sec);
}

static const char *tierName(TierMode T) {
  switch (T) {
  case TierMode::Full:
    return "full";
  case TierMode::Fast:
    return "fast";
  case TierMode::Confirm:
    return "confirm";
  }
  return "?";
}

LedgerEntry herbgrind::engine::makeLedgerEntry(const EngineConfig &Cfg,
                                               const EngineStats &Stats,
                                               const std::string &Label) {
  LedgerEntry E;
  E.Host = hostName();
  E.TimestampNanos = wallClockNanos();
  E.Timestamp = isoTimestampUtc(E.TimestampNanos / 1000000000ull);
  E.Label = Label;
  E.ConfigHash = configHash(Cfg);
  E.WireFormat = Cfg.WireFormat == WireEncoding::Binary ? "binary" : "json";
  E.Tier = tierName(Cfg.Tier);
  E.Jobs = Cfg.Jobs;
  E.Samples = static_cast<uint64_t>(Cfg.SamplesPerBenchmark);
  E.ShardSize = static_cast<uint64_t>(Cfg.ShardSize);
  E.BatchLanes = Cfg.BatchLanes;
  E.Benchmarks = Stats.Benchmarks;
  E.Shards = Stats.Shards;
  E.Runs = Stats.Runs;
  E.AnalyzedShards = Stats.AnalyzedShards;
  E.CachedShards = Stats.CachedShards;
  E.ResultCacheHits = Stats.ResultCacheHits;
  E.ResultCacheMisses = Stats.ResultCacheMisses;
  E.LimbHeapAllocs = Stats.LimbHeapAllocs;
  E.LimbCacheHits = Stats.LimbCacheHits;
  E.Tier0Runs = Stats.Tier0Runs;
  E.EscalatedRuns = Stats.EscalatedRuns;
  E.PoolTasks = Stats.PoolTasks;
  E.PoolSteals = Stats.PoolSteals;
  E.WallSeconds = Stats.WallSeconds;
  E.Metrics = metrics::snapshot();
  return E;
}

bool herbgrind::engine::ledgerAppend(const std::string &Dir,
                                     const LedgerEntry &Entry,
                                     WireEncoding Enc, std::string &PathOut,
                                     std::string &Err) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    Err = format("cannot create ledger directory '%s': %s", Dir.c_str(),
                 EC.message().c_str());
    return false;
  }
#if defined(_WIN32)
  unsigned long Pid = static_cast<unsigned long>(_getpid());
#else
  unsigned long Pid = static_cast<unsigned long>(getpid());
#endif
  // Wall-clock ns + pid keeps concurrent sweeps on a shared directory
  // from colliding without any locking.
  std::string Name =
      format("entry-%llu-%lu.%s",
             static_cast<unsigned long long>(Entry.TimestampNanos), Pid,
             Enc == WireEncoding::Binary ? "hgb" : "json");
  std::string Path = (fs::path(Dir) / Name).string();
  std::string Data = renderLedgerEntry(Entry, Enc);
  if (Enc == WireEncoding::Json)
    Data += '\n';
  if (!writeFileAtomic(Path, Data)) {
    Err = format("cannot write ledger entry '%s'", Path.c_str());
    return false;
  }
  PathOut = Path;
  return true;
}

bool herbgrind::engine::ledgerList(const std::string &Dir,
                                   std::vector<LedgerEntry> &Out,
                                   std::vector<std::string> &Paths,
                                   std::string &Err) {
  Out.clear();
  Paths.clear();
  std::error_code EC;
  if (!fs::is_directory(Dir, EC)) {
    Err = format("ledger directory '%s' does not exist", Dir.c_str());
    return false;
  }
  struct Loaded {
    LedgerEntry Entry;
    std::string Path;
    std::string Name;
  };
  std::vector<Loaded> All;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    std::string Name = It->path().filename().string();
    if (Name.rfind("entry-", 0) != 0)
      continue;
    std::string Ext = It->path().extension().string();
    if (Ext != ".json" && Ext != ".hgb")
      continue;
    std::string Text;
    if (!readFile(It->path().string(), Text)) {
      Err = format("cannot read ledger entry '%s'", It->path().string().c_str());
      return false;
    }
    Loaded L;
    if (!parseLedgerEntry(Text, L.Entry, Err)) {
      Err = format("%s: %s", It->path().string().c_str(), Err.c_str());
      return false;
    }
    L.Path = It->path().string();
    L.Name = std::move(Name);
    All.push_back(std::move(L));
  }
  if (EC) {
    Err = format("cannot scan ledger directory '%s': %s", Dir.c_str(),
                 EC.message().c_str());
    return false;
  }
  std::sort(All.begin(), All.end(), [](const Loaded &A, const Loaded &B) {
    if (A.Entry.TimestampNanos != B.Entry.TimestampNanos)
      return A.Entry.TimestampNanos < B.Entry.TimestampNanos;
    return A.Name < B.Name;
  });
  for (Loaded &L : All) {
    Out.push_back(std::move(L.Entry));
    Paths.push_back(std::move(L.Path));
  }
  return true;
}

std::vector<LedgerRegression>
herbgrind::engine::ledgerCompare(const LedgerEntry &Baseline,
                                 const LedgerEntry &Current,
                                 const LedgerThresholds &T) {
  std::vector<LedgerRegression> Regressions;
  auto Flag = [&](const char *Metric, double Base, double Cur, double Limit) {
    Regressions.push_back({Metric, Base, Cur, Limit});
  };

  // Wall time: relative growth over the baseline.
  {
    double Limit = Baseline.WallSeconds * (1.0 + T.WallFrac);
    if (Baseline.WallSeconds > 0.0 && Current.WallSeconds > Limit)
      Flag("wall_seconds", Baseline.WallSeconds, Current.WallSeconds, Limit);
  }

  // Result-cache hit rate: absolute drop, judged only when the baseline
  // actually did lookups (a cold baseline has no rate to regress from).
  {
    uint64_t BaseLookups = Baseline.ResultCacheHits + Baseline.ResultCacheMisses;
    uint64_t CurLookups = Current.ResultCacheHits + Current.ResultCacheMisses;
    if (BaseLookups > 0 && CurLookups > 0) {
      double BaseRate = double(Baseline.ResultCacheHits) / double(BaseLookups);
      double CurRate = double(Current.ResultCacheHits) / double(CurLookups);
      double Limit = BaseRate - T.CacheHitDrop;
      if (CurRate < Limit)
        Flag("cache_hit_rate", BaseRate, CurRate, Limit);
    }
  }

  // Escalation fraction: absolute rise, judged only when both sweeps ran
  // tiered (a full-shadow sweep has no escalations by construction).
  {
    if (Baseline.Tier0Runs > 0 && Current.Tier0Runs > 0 &&
        Baseline.Runs > 0 && Current.Runs > 0) {
      double BaseFrac = double(Baseline.EscalatedRuns) / double(Baseline.Runs);
      double CurFrac = double(Current.EscalatedRuns) / double(Current.Runs);
      double Limit = BaseFrac + T.EscalationRise;
      if (CurFrac > Limit)
        Flag("escalation_fraction", BaseFrac, CurFrac, Limit);
    }
  }

  // Limb heap allocations: relative growth plus absolute slack, so a
  // zero-alloc baseline tolerates noise.
  {
    double Limit =
        double(Baseline.LimbHeapAllocs) * (1.0 + T.HeapFrac) + double(T.HeapSlack);
    if (double(Current.LimbHeapAllocs) > Limit)
      Flag("limb_heap_allocs", double(Baseline.LimbHeapAllocs),
           double(Current.LimbHeapAllocs), Limit);
  }

  return Regressions;
}
