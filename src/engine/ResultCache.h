//===- engine/ResultCache.h - Persistent shard-result cache -----*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent shard-result cache: per-(benchmark, seed, sample-range,
/// config) `AnalysisResult`s stored as shard wire-format documents in a
/// cache directory, so a repeated sweep analyzes only new or invalidated
/// shards and merges cached + fresh results through the same in-order
/// deterministic fold.
///
/// Keying mirrors `fpcore::ProgramCache`: a benchmark is identified by its
/// printed FPCore text (canonical for parsed cores), combined with the
/// shard's derived sampling seed, its sample range, and a hash of every
/// configuration knob that can change analysis output (including the wire
/// format's major version, so a format bump invalidates stale entries).
/// Entries are validated on read -- a corrupt, truncated, or foreign file
/// is a miss, never an error -- and written atomically (temp file +
/// rename), so concurrent sweeps sharing a directory are safe.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_ENGINE_RESULTCACHE_H
#define HERBGRIND_ENGINE_RESULTCACHE_H

#include "analysis/Serialize.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace herbgrind {
namespace engine {

struct EngineConfig;

/// Hashes every `EngineConfig` knob that influences analysis output
/// (thresholds, precision, depths, sampling seed and counts, the wire
/// format major version; NOT the worker count or shard-range selection,
/// which never change result values). Shards merge only when their
/// config hashes match.
std::string configHash(const EngineConfig &Cfg);

/// Writes a file atomically: the content lands under a temporary name in
/// the target directory and is renamed into place, so concurrent writers
/// of the same (deterministic) entry race benignly. Returns false on IO
/// failure.
bool writeFileAtomic(const std::string &Path, const std::string &Data);

/// Reads a whole file; returns false when it does not exist or cannot be
/// read.
bool readFile(const std::string &Path, std::string &Out);

/// Outcome of a cache garbage collection pass.
struct CacheGcStats {
  uint64_t Entries = 0;       ///< Cache entries found before pruning.
  uint64_t Bytes = 0;         ///< Their total size in bytes.
  uint64_t PrunedEntries = 0; ///< Entries deleted by this pass.
  uint64_t PrunedBytes = 0;   ///< Bytes reclaimed by this pass.
};

/// Prunes a cache directory's entries (`*.shard.json` / `*.shard.hgb`
/// shard results and `*.improve.json` / `*.improve.hgb` improver
/// outcomes) down to at most
/// \p MaxBytes, deleting least-recently-used entries first (mtime order;
/// caches with touch-on-hit enabled refresh entries on lookup, so hot
/// shards survive). MaxBytes 0 empties the cache. Tolerates concurrent writers: entries that vanish
/// mid-scan are skipped. Returns false only when the directory itself
/// cannot be read.
bool gcCacheDir(const std::string &Dir, uint64_t MaxBytes, CacheGcStats &Stats,
                std::string &Err);

/// The persistent cache. One instance serves all of an engine's workers
/// concurrently; the only shared mutable state is the hit/miss counters.
class ResultCache {
public:
  /// Opens (creating if needed) \p Dir for a sweep whose configuration
  /// hashes to \p ConfigHash. Every entry this cache touches is bound to
  /// that hash.
  ResultCache(std::string Dir, std::string ConfigHash);

  /// Identity of one shard's work, sufficient to reproduce it.
  struct ShardKey {
    std::string CoreIdentity; ///< Printed FPCore (ProgramCache's key).
    uint64_t DerivedSeed = 0; ///< Per-benchmark sampling seed.
    uint64_t BenchIndex = 0;  ///< Position in the sweep's core list.
    uint64_t ShardIndex = 0;  ///< Shard number within the benchmark.
    uint64_t RunBegin = 0;    ///< Sample range (inclusive begin).
    uint64_t RunEnd = 0;      ///< Sample range (exclusive end).
  };

  /// Looks a shard up; on a hit fills \p Out with a result that folds
  /// byte-identically to a fresh analysis. Any validation failure
  /// (missing file, parse error, version or config-hash mismatch, wrong
  /// sample range) is a miss. Both the JSON and the HGB entry file are
  /// consulted (format sniffed from content, whatever the extension
  /// claims), so sweeps configured for different encodings warm each
  /// other.
  bool lookup(const ShardKey &Key, AnalysisResult &Out);

  /// Persists a freshly analyzed shard. IO failures are counted but
  /// otherwise ignored -- the cache is an accelerator, never a
  /// correctness dependency.
  void store(const ShardKey &Key, const std::string &BenchName,
             const AnalysisResult &Result);

  /// The entry file a store() would write for a key under the configured
  /// encoding (deterministic; exposed for tests and debugging). lookup()
  /// additionally consults the other encoding's file.
  std::string entryPath(const ShardKey &Key) const;

  /// Identity of one batch-improver outcome: the exact expression and
  /// sampling specs the improver ran on plus the improver-config hash
  /// (improve::improveConfigHash). The sweep config hash this cache was
  /// opened with is folded in implicitly, so entries never leak across
  /// sweep configurations.
  struct ImproveKey {
    std::string ExprIdentity; ///< Printed FPCore expression fragment.
    std::string SpecIdentity; ///< improve::specIdentity() of the specs.
    std::string ImproveHash;  ///< Canonical improver-config string.
  };

  /// Looks an improver outcome up; on a hit fills \p Out with the cached
  /// record (its PC field is meaningless -- callers re-stamp identity).
  /// Any validation failure (missing file, parse error, version or
  /// config/improve-hash mismatch, different expression or specs) is a
  /// miss.
  bool lookupImprove(const ImproveKey &Key, ImproveRecord &Out);

  /// Persists one improver outcome. IO failures are counted but
  /// otherwise ignored, like store().
  void storeImprove(const ImproveKey &Key, const ImproveRecord &Rec);

  /// The entry file for an improver outcome (deterministic; exposed for
  /// tests and debugging).
  std::string improveEntryPath(const ImproveKey &Key) const;

  /// Prunes this cache's directory to \p MaxBytes (LRU by mtime); see
  /// gcCacheDir.
  bool gc(uint64_t MaxBytes, CacheGcStats &Stats, std::string &Err) const {
    return gcCacheDir(Dir, MaxBytes, Stats, Err);
  }

  /// Enables refreshing an entry's mtime on every hit so LRU pruning sees
  /// true recency. Off by default: without a size cap the extra metadata
  /// write per hit buys nothing and perturbs mtimes that rsync-shared
  /// caches compare. When left off, gcCacheDir's LRU order degrades to
  /// FIFO-by-store-time, which is still a correct pruning order.
  void setTouchOnHit(bool Enabled) { TouchOnHit = Enabled; }

  /// Selects the encoding store()/storeImprove() write (JSON by
  /// default). Purely a writer-side knob: lookups sniff and accept
  /// either format regardless.
  void setWireEncoding(WireEncoding E) { Enc = E; }
  WireEncoding wireEncoding() const { return Enc; }

  const std::string &directory() const { return Dir; }
  const std::string &configHash() const { return Hash; }
  uint64_t hits() const { return Hits.load(); }
  uint64_t misses() const { return Misses.load(); }
  uint64_t storeFailures() const { return StoreFailures.load(); }

private:
  /// The suffix-free entry paths the per-encoding files hang off.
  std::string entryBase(const ShardKey &Key) const;
  std::string improveEntryBase(const ImproveKey &Key) const;

  std::string Dir;
  std::string Hash;
  bool TouchOnHit = false;
  WireEncoding Enc = WireEncoding::Json;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> StoreFailures{0};
};

} // namespace engine
} // namespace herbgrind

#endif // HERBGRIND_ENGINE_RESULTCACHE_H
