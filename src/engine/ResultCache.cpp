//===- engine/ResultCache.cpp - Persistent shard-result cache -------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "engine/ResultCache.h"

#include "engine/Engine.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

static uint64_t fnv1a64(const std::string &S, uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string herbgrind::engine::configHash(const EngineConfig &Cfg) {
  const AnalysisConfig &A = Cfg.Analysis;
  // A canonical description of everything that can change a shard's
  // records. Doubles print shortest-round-trip, so distinct values never
  // collapse. Jobs / BatchLanes / cache and emit directories / shard-range
  // selection are deliberately absent: they affect scheduling, not values
  // (batched execution is byte-identical to scalar, so batched and scalar
  // sweeps warm each other's caches).
  std::string Canon = format(
      "herbgrind-wire-v%d|samples=%d|shardSize=%d|seed=%llu|Tl=%s|Tm=%s|"
      "prec=%zu|maxDepth=%u|equivDepth=%u|wrapLibm=%d|comp=%d|ranges=%d|"
      "typeAnalysis=%d|sharedShadow=%d|pools=%d|maxSteps=%llu",
      WireFormatMajor, Cfg.SamplesPerBenchmark, Cfg.ShardSize,
      static_cast<unsigned long long>(Cfg.Seed),
      formatDoubleShortest(A.LocalErrorThreshold).c_str(),
      formatDoubleShortest(A.OutputErrorThreshold).c_str(), A.PrecisionBits,
      A.MaxExprDepth, A.EquivDepth, A.WrapLibraryCalls ? 1 : 0,
      A.DetectCompensation ? 1 : 0, static_cast<int>(A.Ranges),
      A.UseTypeAnalysis ? 1 : 0, A.SharedShadowValues ? 1 : 0,
      A.UsePools ? 1 : 0, static_cast<unsigned long long>(A.MaxSteps));
  // The fast tier's records cover escalated runs only, so they must
  // never alias a full sweep's. Confirm-tier records ARE full records
  // (suspect benchmarks replay under the full shadow; clean ones skip
  // the cache entirely), so Confirm deliberately shares Full's hash --
  // appending nothing also keeps every pre-tier cache entry valid.
  if (Cfg.Tier == TierMode::Fast)
    Canon += "|tier=fast";
  return format("%016llx",
                static_cast<unsigned long long>(fnv1a64(Canon)));
}

//===----------------------------------------------------------------------===//
// File IO
//===----------------------------------------------------------------------===//

bool herbgrind::engine::writeFileAtomic(const std::string &Path,
                                        const std::string &Data) {
  // The temp name only needs to be unique per writer; deterministic
  // content makes same-entry races benign either way.
  std::string Tmp =
      Path + format(".tmp.%llx",
                    static_cast<unsigned long long>(
                        std::hash<std::thread::id>{}(std::this_thread::get_id())));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Data;
    if (!Out)
      return false;
  }
  std::error_code Ec;
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  return true;
}

bool herbgrind::engine::readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::stringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return false;
  Out = Buf.str();
  return true;
}

//===----------------------------------------------------------------------===//
// The cache
//===----------------------------------------------------------------------===//

ResultCache::ResultCache(std::string Directory, std::string ConfigHash)
    : Dir(std::move(Directory)), Hash(std::move(ConfigHash)) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  // A failed mkdir degrades to an always-miss, never-store cache; the
  // sweep still runs correctly.
}

static const char *shardSuffix(WireEncoding E) {
  return E == WireEncoding::Binary ? ".shard.hgb" : ".shard.json";
}

static const char *improveSuffix(WireEncoding E) {
  return E == WireEncoding::Binary ? ".improve.hgb" : ".improve.json";
}

static WireEncoding otherEncoding(WireEncoding E) {
  return E == WireEncoding::Binary ? WireEncoding::Json
                                   : WireEncoding::Binary;
}

std::string ResultCache::entryBase(const ShardKey &Key) const {
  uint64_t H = fnv1a64(Hash);
  H = fnv1a64(Key.CoreIdentity, H);
  H = fnv1a64(format("|seed=%llu|bench=%llu|shard=%llu|range=%llu:%llu",
                     static_cast<unsigned long long>(Key.DerivedSeed),
                     static_cast<unsigned long long>(Key.BenchIndex),
                     static_cast<unsigned long long>(Key.ShardIndex),
                     static_cast<unsigned long long>(Key.RunBegin),
                     static_cast<unsigned long long>(Key.RunEnd)),
              H);
  return Dir + "/" + format("%016llx", static_cast<unsigned long long>(H));
}

std::string ResultCache::entryPath(const ShardKey &Key) const {
  return entryBase(Key) + shardSuffix(Enc);
}

bool ResultCache::lookup(const ShardKey &Key, AnalysisResult &Out) {
  // The configured encoding's file first, then the other's: both carry
  // bit-identical records under the same key (WireFormat is absent from
  // the config hash), so a JSON-warmed cache satisfies a binary sweep
  // and vice versa. parseShard sniffs content, so a mislabeled file
  // still reads.
  const std::string Base = entryBase(Key);
  for (WireEncoding E : {Enc, otherEncoding(Enc)}) {
    std::string Path = Base + shardSuffix(E);
    std::string Text;
    if (!readFile(Path, Text))
      continue;
    ShardDoc Doc;
    std::string Err;
    if (!parseShard(Text, Doc, Err) || Doc.ConfigHash != Hash ||
        Doc.ShardIndex != Key.ShardIndex || Doc.RunBegin != Key.RunBegin ||
        Doc.RunEnd != Key.RunEnd)
      // Corrupt or foreign entry: treat as absent; a fresh store will
      // overwrite it.
      continue;
    Out = std::move(Doc.Result);
    ++Hits;
    if (TouchOnHit) {
      // Refresh the entry so LRU-by-mtime pruning (gcCacheDir) keeps hot
      // shards.
      std::error_code Ec;
      std::filesystem::last_write_time(
          Path, std::filesystem::file_time_type::clock::now(), Ec);
    }
    return true;
  }
  ++Misses;
  return false;
}

void ResultCache::store(const ShardKey &Key, const std::string &BenchName,
                        const AnalysisResult &Result) {
  std::string Text =
      Enc == WireEncoding::Binary
          ? renderShardBinary(Hash, BenchName, Key.BenchIndex, Key.ShardIndex,
                              Key.RunBegin, Key.RunEnd, Result)
          : renderShardJson(Hash, BenchName, Key.BenchIndex, Key.ShardIndex,
                            Key.RunBegin, Key.RunEnd, Result);
  if (!writeFileAtomic(entryPath(Key), Text))
    ++StoreFailures;
}

//===----------------------------------------------------------------------===//
// Improver outcomes
//===----------------------------------------------------------------------===//

std::string ResultCache::improveEntryBase(const ImproveKey &Key) const {
  uint64_t H = fnv1a64(Hash);
  H = fnv1a64(Key.ImproveHash, H);
  H = fnv1a64("|expr=", H);
  H = fnv1a64(Key.ExprIdentity, H);
  H = fnv1a64("|specs=", H);
  H = fnv1a64(Key.SpecIdentity, H);
  return Dir + "/" + format("%016llx", static_cast<unsigned long long>(H));
}

std::string ResultCache::improveEntryPath(const ImproveKey &Key) const {
  return improveEntryBase(Key) + improveSuffix(Enc);
}

bool ResultCache::lookupImprove(const ImproveKey &Key, ImproveRecord &Out) {
  const std::string Base = improveEntryBase(Key);
  for (WireEncoding E : {Enc, otherEncoding(Enc)}) {
    std::string Path = Base + improveSuffix(E);
    std::string Text;
    if (!readFile(Path, Text))
      continue;
    ImproveDoc Doc;
    std::string Err;
    // Full identity validation, not just the filename hash: a colliding
    // or foreign entry must read as absent, never as a wrong outcome.
    if (!parseImproveDoc(Text, Doc, Err) || Doc.ConfigHash != Hash ||
        Doc.ImproveHash != Key.ImproveHash ||
        Doc.ExprIdentity != Key.ExprIdentity ||
        Doc.SpecIdentity != Key.SpecIdentity)
      continue;
    Out = std::move(Doc.Record);
    ++Hits;
    if (TouchOnHit) {
      std::error_code Ec;
      std::filesystem::last_write_time(
          Path, std::filesystem::file_time_type::clock::now(), Ec);
    }
    return true;
  }
  ++Misses;
  return false;
}

void ResultCache::storeImprove(const ImproveKey &Key,
                               const ImproveRecord &Rec) {
  ImproveDoc Doc;
  Doc.ConfigHash = Hash;
  Doc.ImproveHash = Key.ImproveHash;
  Doc.ExprIdentity = Key.ExprIdentity;
  Doc.SpecIdentity = Key.SpecIdentity;
  Doc.Record = Rec;
  if (!writeFileAtomic(improveEntryPath(Key),
                       renderImproveDoc(Doc, Enc)))
    ++StoreFailures;
}

//===----------------------------------------------------------------------===//
// Garbage collection
//===----------------------------------------------------------------------===//

bool herbgrind::engine::gcCacheDir(const std::string &Dir, uint64_t MaxBytes,
                                   CacheGcStats &Stats, std::string &Err) {
  namespace fs = std::filesystem;
  struct Entry {
    fs::path Path;
    fs::file_time_type MTime;
    uint64_t Size;
  };
  std::vector<Entry> Entries;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec), End;
  if (Ec) {
    Err = format("cannot read cache directory %s: %s", Dir.c_str(),
                 Ec.message().c_str());
    return false;
  }
  // Every entry kind the cache writes -- both document families in both
  // wire encodings -- is subject to the cap.
  const std::string Suffixes[] = {".shard.json", ".shard.hgb",
                                  ".improve.json", ".improve.hgb"};
  auto IsEntry = [&](const std::string &Name) {
    for (const std::string &Suffix : Suffixes)
      if (Name.size() >= Suffix.size() &&
          Name.compare(Name.size() - Suffix.size(), Suffix.size(),
                       Suffix) == 0)
        return true;
    return false;
  };
  for (; !Ec && It != End; It.increment(Ec)) {
    const fs::path &P = It->path();
    std::string Name = P.filename().string();
    if (!IsEntry(Name))
      continue;
    std::error_code SizeEc, TimeEc;
    uint64_t Size = fs::file_size(P, SizeEc);
    fs::file_time_type MTime = fs::last_write_time(P, TimeEc);
    if (SizeEc || TimeEc)
      continue; // vanished under a concurrent writer: skip
    Entries.push_back({P, MTime, Size});
    ++Stats.Entries;
    Stats.Bytes += Size;
  }
  if (Ec) {
    Err = format("cannot read cache directory %s: %s", Dir.c_str(),
                 Ec.message().c_str());
    return false;
  }

  if (Stats.Bytes <= MaxBytes)
    return true;

  // Oldest first; prune until the survivors fit the cap.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.MTime < B.MTime; });
  uint64_t Remaining = Stats.Bytes;
  for (const Entry &E : Entries) {
    if (Remaining <= MaxBytes)
      break;
    std::error_code RmEc;
    if (!fs::remove(E.Path, RmEc) || RmEc)
      continue; // already gone or busy: fine either way
    Remaining -= E.Size;
    ++Stats.PrunedEntries;
    Stats.PrunedBytes += E.Size;
  }
  return true;
}
