//===- engine/Engine.cpp - Parallel batch analysis ------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "engine/ResultCache.h"
#include "engine/ThreadPool.h"
#include "fpcore/Corpus.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Deterministic input sampling
//===----------------------------------------------------------------------===//

/// SplitMix64 step: derives an independent per-benchmark seed so sampling
/// never depends on worker count or sharding.
static uint64_t deriveSeed(uint64_t Base, uint64_t Index) {
  uint64_t Z = Base + (Index + 1) * 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static std::vector<std::vector<double>>
sampleBenchmarkInputs(const fpcore::Core &C, int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<fpcore::VarRange> Ranges = fpcore::sampleRanges(C);
  std::vector<std::vector<double>> Sets;
  Sets.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I) {
    std::vector<double> In;
    In.reserve(Ranges.size());
    for (const fpcore::VarRange &VR : Ranges)
      In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

//===----------------------------------------------------------------------===//
// The batch driver
//===----------------------------------------------------------------------===//

Engine::Engine(EngineConfig Config) : Cfg(Config) {
  if (Cfg.Jobs == 0) {
    Cfg.Jobs = std::thread::hardware_concurrency();
    if (Cfg.Jobs == 0)
      Cfg.Jobs = 1;
  }
  // Oversubscription is allowed (useful for testing the pool), but a
  // wild value must not translate into thousands of threads.
  Cfg.Jobs = std::min(Cfg.Jobs, 256u);
  if (Cfg.SamplesPerBenchmark < 1)
    Cfg.SamplesPerBenchmark = 1;
  if (Cfg.ShardSize < 1)
    Cfg.ShardSize = 1;
  if (Cfg.ShardEnd < Cfg.ShardBegin)
    Cfg.ShardEnd = Cfg.ShardBegin;
  if (!Cfg.CacheDir.empty()) {
    RC = std::make_unique<ResultCache>(Cfg.CacheDir, configHash(Cfg));
    // True LRU recency only matters when something will prune by it.
    RC->setTouchOnHit(Cfg.CacheMaxBytes > 0);
  }
}

Engine::~Engine() = default;

namespace {

/// One unit of parallel work: a contiguous slice of one benchmark's
/// sampled inputs, analyzed by a worker-local Herbgrind instance.
struct Shard {
  size_t Bench = 0;
  size_t Index = 0; ///< Shard number within the benchmark (merge order).
  size_t Begin = 0;
  size_t End = 0;
};

/// Per-benchmark streaming-reduction state: shards fold into the
/// BenchmarkResult the moment every earlier shard has; later arrivals
/// wait in Pending. The fold order is ascending shard index whatever the
/// completion order, so the reduction stays deterministic while it
/// overlaps analysis.
struct BenchFold {
  std::mutex M;
  size_t NextIndex = 0; ///< Next shard index the accumulator expects.
  std::map<size_t, AnalysisResult> Pending; ///< Out-of-order completions.
};

} // namespace

/// Monotonic id per Engine::run call; guards the worker-local analyzer
/// cache against ever comparing a recycled Program address across runs.
static std::atomic<uint64_t> GlobalRunCounter{0};

BatchResult Engine::run(const std::vector<fpcore::Core> &Cores) {
  auto Start = std::chrono::steady_clock::now();
  const uint64_t RunId = GlobalRunCounter.fetch_add(1) + 1;
  size_t CacheHits0 = Cache.hits(), CacheMisses0 = Cache.misses();
  // Core identities (printed FPCores) feed only cache keys; emit-only
  // runs stamp documents with the config hash alone, computed once.
  bool NeedIdentity = RC != nullptr;
  std::string CfgHash;
  if (RC)
    CfgHash = RC->configHash();
  else if (!Cfg.EmitShardDir.empty())
    CfgHash = configHash(Cfg);
  if (!Cfg.EmitShardDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Cfg.EmitShardDir, Ec);
  }

  // Phase 1 (serial, cheap): sample every benchmark's inputs up front and
  // lay out the shard list. Both depend only on the configuration: the
  // layout covers the full sample range even when only a shard-index
  // slice of it executes, so distributed slices stay merge-compatible.
  std::vector<std::vector<std::vector<double>>> Inputs(Cores.size());
  std::vector<uint64_t> Seeds(Cores.size());
  std::vector<std::string> Identities(Cores.size());
  std::vector<Shard> Shards;
  for (size_t B = 0; B < Cores.size(); ++B) {
    Seeds[B] = deriveSeed(Cfg.Seed, B);
    Inputs[B] = sampleBenchmarkInputs(Cores[B], Cfg.SamplesPerBenchmark,
                                      Seeds[B]);
    if (NeedIdentity)
      Identities[B] = Cores[B].print();
    size_t N = Inputs[B].size();
    size_t Step = static_cast<size_t>(Cfg.ShardSize);
    for (size_t Lo = 0, Idx = 0; Lo < N; Lo += Step, ++Idx)
      if (Idx >= Cfg.ShardBegin && Idx < Cfg.ShardEnd)
        Shards.push_back({B, Idx, Lo, std::min(Lo + Step, N)});
  }

  BatchResult Out;
  Out.Benchmarks.resize(Cores.size());
  std::vector<BenchFold> Folds(Cores.size());
  for (size_t B = 0; B < Cores.size(); ++B) {
    Out.Benchmarks[B].Name = Cores[B].Name;
    Out.Benchmarks[B].Records.Ranges = Cfg.Analysis.Ranges;
    Out.Benchmarks[B].Records.EquivDepth = Cfg.Analysis.EquivDepth;
    // Executed shard indices per benchmark are a contiguous slice, so the
    // streaming fold starts at the slice's first index.
    Folds[B].NextIndex = Cfg.ShardBegin;
  }

  // Phase 2 (parallel): every shard is satisfied from the result cache or
  // analyzed by its own Herbgrind instance, then folded into its
  // benchmark's accumulator in ascending shard order. The fold happens on
  // whichever worker completes the gap shard, overlapping reduce with
  // analyze; only out-of-order completions buffer.
  std::atomic<uint64_t> Analyzed{0}, Cached{0}, EmitFailed{0};
  {
    ThreadPool Pool(Cfg.Jobs);
    for (size_t S = 0; S < Shards.size(); ++S) {
      // Benchmark-affine placement: a benchmark's shards land on one
      // worker (stealing still rebalances), so the worker-local analyzer
      // below actually gets reused across them at any jobs count.
      Pool.submitTo(Shards[S].Bench, [this, S, RunId, &Shards, &Cores,
                                      &Inputs, &Seeds, &Identities, &Folds,
                                      &Out, &Analyzed, &Cached, &EmitFailed,
                                      &CfgHash] {
        const Shard &Sh = Shards[S];
        ResultCache::ShardKey Key;
        if (RC) {
          Key.CoreIdentity = Identities[Sh.Bench];
          Key.DerivedSeed = Seeds[Sh.Bench];
          Key.BenchIndex = Sh.Bench;
          Key.ShardIndex = Sh.Index;
          Key.RunBegin = Sh.Begin;
          Key.RunEnd = Sh.End;
        }

        AnalysisResult Result;
        bool FromCache = RC && RC->lookup(Key, Result);
        if (FromCache) {
          ++Cached;
        } else {
          // Worker-local analyzer reuse: consecutive shards of the same
          // benchmark on this worker recycle one Herbgrind instance --
          // its trace arena, shadow-value pool, interned influence sets,
          // and per-thread limb scratch all stay warm -- instead of
          // rebuilding the arenas per shard. reset() restores the exact
          // fresh-instance records contract, so reports stay byte-
          // identical at any worker count (the selftest checks this).
          // The Program-address identity is only meaningful within one
          // run() (ProgramCache never evicts during it); the RunId in
          // the key makes a recycled Program address harmless even if
          // worker threads ever outlive a run.
          struct WorkerAnalyzer {
            uint64_t Run = 0;
            const Program *Prog = nullptr;
            std::unique_ptr<Herbgrind> HG;
          };
          thread_local WorkerAnalyzer WA;
          const Program &P = Cache.get(Cores[Sh.Bench]);
          if (WA.Run == RunId && WA.Prog == &P && WA.HG) {
            WA.HG->reset();
          } else {
            WA.HG = std::make_unique<Herbgrind>(P, Cfg.Analysis);
            WA.Run = RunId;
            WA.Prog = &P;
          }
          for (size_t I = Sh.Begin; I < Sh.End; ++I)
            WA.HG->runOnInput(Inputs[Sh.Bench][I]);
          Result = WA.HG->snapshot();
          ++Analyzed;
          if (RC)
            RC->store(Key, Cores[Sh.Bench].Name, Result);
        }
        if (!Cfg.EmitShardDir.empty()) {
          std::string Name = format("shard-b%05llu-s%05llu.json",
                                    static_cast<unsigned long long>(Sh.Bench),
                                    static_cast<unsigned long long>(Sh.Index));
          if (!writeFileAtomic(Cfg.EmitShardDir + "/" + Name,
                               renderShardJson(CfgHash, Cores[Sh.Bench].Name,
                                               Sh.Bench, Sh.Index, Sh.Begin,
                                               Sh.End, Result)))
            ++EmitFailed;
        }

        // Streaming in-order fold. The arriving shard parks in Pending,
        // then everything contiguous from NextIndex folds in; shard sizes
        // are recovered from the layout (End - Begin == ShardSize except
        // for the tail shard).
        BenchFold &Fold = Folds[Sh.Bench];
        BenchmarkResult &BR = Out.Benchmarks[Sh.Bench];
        size_t Step = static_cast<size_t>(Cfg.ShardSize);
        size_t Total = Inputs[Sh.Bench].size();
        std::lock_guard<std::mutex> Lock(Fold.M);
        Fold.Pending.emplace(Sh.Index, std::move(Result));
        for (auto It = Fold.Pending.find(Fold.NextIndex);
             It != Fold.Pending.end();
             It = Fold.Pending.find(Fold.NextIndex)) {
          if (BR.Shards == 0)
            BR.Records = std::move(It->second);
          else
            BR.Records.mergeFrom(It->second);
          ++BR.Shards;
          size_t Lo = Fold.NextIndex * Step;
          BR.Runs += std::min(Lo + Step, Total) - Lo;
          Fold.Pending.erase(It);
          ++Fold.NextIndex;
        }
      });
    }
    Pool.waitAll();
  }

  // Phase 3 (serial, cheap): build the per-benchmark reports from the
  // merged records and collect the statistics.
  for (BenchmarkResult &BR : Out.Benchmarks) {
    BR.Rep = buildReport(BR.Records);
    Out.Stats.Shards += BR.Shards;
    Out.Stats.Runs += BR.Runs;
  }
  Out.Stats.Benchmarks = Cores.size();
  Out.Stats.AnalyzedShards = Analyzed.load();
  Out.Stats.CachedShards = Cached.load();
  Out.Stats.EmitFailures = EmitFailed.load();
  Out.Stats.CacheHits = Cache.hits() - CacheHits0;
  Out.Stats.CacheMisses = Cache.misses() - CacheMisses0;
  if (RC && Cfg.CacheMaxBytes > 0) {
    // Post-run LRU pruning keeps the result cache under its cap; a
    // failure never fails the sweep (the cache is an accelerator, not
    // load-bearing) but is reported so an unenforced cap is visible.
    CacheGcStats Gc;
    std::string GcErr;
    if (RC->gc(Cfg.CacheMaxBytes, Gc, GcErr)) {
      Out.Stats.CachePrunedEntries = Gc.PrunedEntries;
      Out.Stats.CachePrunedBytes = Gc.PrunedBytes;
    } else {
      Out.Stats.CacheGcError = std::move(GcErr);
    }
  }
  Out.Stats.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

BatchResult Engine::runCorpus() {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus())
    if (fpcore::isCompilable(C))
      Cores.push_back(C.clone());
  return run(Cores);
}

//===----------------------------------------------------------------------===//
// Batch output
//===----------------------------------------------------------------------===//

Report BatchResult::merged() const {
  Report R;
  for (const BenchmarkResult &BR : Benchmarks)
    R.mergeFrom(BR.Rep);
  return R;
}

std::string BatchResult::renderJson() const {
  std::string Out = format("{\"format\":\"herbgrind-report\","
                           "\"version\":{\"major\":%d,\"minor\":%d},"
                           "\"benchmarks\":[",
                           WireFormatMajor, WireFormatMinor);
  bool First = true;
  for (const BenchmarkResult &BR : Benchmarks) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"name\":\"%s\",\"shards\":%llu,\"runs\":%llu,"
                  "\"report\":%s}",
                  jsonEscape(BR.Name).c_str(),
                  static_cast<unsigned long long>(BR.Shards),
                  static_cast<unsigned long long>(BR.Runs),
                  BR.Rep.renderJson().c_str());
  }
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Merging emitted shard documents (the distributed workflow)
//===----------------------------------------------------------------------===//

bool herbgrind::engine::mergeShards(std::vector<ShardDoc> Docs,
                                    BatchResult &Out, std::string &Err,
                                    std::string *Warnings) {
  if (Docs.empty()) {
    Err = "no shard documents to merge";
    return false;
  }
  for (const ShardDoc &D : Docs)
    if (D.ConfigHash != Docs.front().ConfigHash) {
      Err = format("config hash mismatch: shard %llu of '%s' has %s, "
                   "expected %s (shards from different sweep "
                   "configurations cannot merge)",
                   static_cast<unsigned long long>(D.ShardIndex),
                   D.Benchmark.c_str(), D.ConfigHash.c_str(),
                   Docs.front().ConfigHash.c_str());
      return false;
    }

  std::stable_sort(Docs.begin(), Docs.end(),
                   [](const ShardDoc &A, const ShardDoc &B) {
                     if (A.BenchIndex != B.BenchIndex)
                       return A.BenchIndex < B.BenchIndex;
                     return A.ShardIndex < B.ShardIndex;
                   });

  for (size_t I = 0; I + 1 < Docs.size(); ++I) {
    const ShardDoc &A = Docs[I], &B = Docs[I + 1];
    if (A.BenchIndex != B.BenchIndex)
      continue;
    if (A.Benchmark != B.Benchmark) {
      Err = format("benchmark index %llu names both '%s' and '%s'",
                   static_cast<unsigned long long>(A.BenchIndex),
                   A.Benchmark.c_str(), B.Benchmark.c_str());
      return false;
    }
    if (A.ShardIndex == B.ShardIndex) {
      Err = format("duplicate shard %llu for benchmark '%s'",
                   static_cast<unsigned long long>(A.ShardIndex),
                   A.Benchmark.c_str());
      return false;
    }
    if (Warnings && B.RunBegin != A.RunEnd)
      *Warnings += format("gap in '%s' between shard %llu (runs end %llu) "
                          "and shard %llu (runs begin %llu); merging the "
                          "shards present\n",
                          A.Benchmark.c_str(),
                          static_cast<unsigned long long>(A.ShardIndex),
                          static_cast<unsigned long long>(A.RunEnd),
                          static_cast<unsigned long long>(B.ShardIndex),
                          static_cast<unsigned long long>(B.RunBegin));
  }

  for (size_t I = 0; I < Docs.size();) {
    size_t J = I;
    while (J < Docs.size() && Docs[J].BenchIndex == Docs[I].BenchIndex)
      ++J;
    // The pairwise pass above cannot see a missing *leading* shard.
    if (Warnings && Docs[I].RunBegin != 0)
      *Warnings += format("'%s' starts at shard %llu (runs begin %llu), "
                          "not at the beginning of the sweep; merging the "
                          "shards present\n",
                          Docs[I].Benchmark.c_str(),
                          static_cast<unsigned long long>(Docs[I].ShardIndex),
                          static_cast<unsigned long long>(Docs[I].RunBegin));
    BenchmarkResult BR;
    BR.Name = Docs[I].Benchmark;
    for (size_t K = I; K < J; ++K) {
      if (K == I)
        BR.Records = std::move(Docs[K].Result);
      else
        BR.Records.mergeFrom(Docs[K].Result);
      ++BR.Shards;
      BR.Runs += Docs[K].RunEnd - Docs[K].RunBegin;
    }
    BR.Rep = buildReport(BR.Records);
    Out.Stats.Shards += BR.Shards;
    Out.Stats.Runs += BR.Runs;
    Out.Benchmarks.push_back(std::move(BR));
    I = J;
  }
  Out.Stats.Benchmarks = Out.Benchmarks.size();
  return true;
}
