//===- engine/Engine.cpp - Parallel batch analysis ------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "engine/ResultCache.h"
#include "engine/ThreadPool.h"
#include "fpcore/Corpus.h"
#include "native/Context.h"
#include "native/Kernel.h"
#include "support/Events.h"
#include "support/Format.h"
#include "support/LimbAlloc.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Deterministic input sampling
//===----------------------------------------------------------------------===//

/// SplitMix64 step: derives an independent per-benchmark seed so sampling
/// never depends on worker count or sharding.
static uint64_t deriveSeed(uint64_t Base, uint64_t Index) {
  uint64_t Z = Base + (Index + 1) * 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static std::vector<std::vector<double>>
sampleSourceInputs(const std::vector<std::pair<double, double>> &Ranges,
                   int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::vector<double>> Sets;
  Sets.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I) {
    std::vector<double> In;
    In.reserve(Ranges.size());
    for (const auto &[Lo, Hi] : Ranges)
      In.push_back(R.betweenOrdinals(Lo, Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

namespace {

/// What a tier-0 (predicate-only) pass over one shard observed: the
/// suspect verdict that drives escalation, plus cost counters.
struct Tier0Outcome {
  bool Suspect = false;
  uint64_t Runs = 0;
  uint64_t Ops = 0; ///< Shadow ops the predicate analyzer executed.
};

/// One fast-tier shard: full-shadow records for the escalated runs only,
/// plus the tier accounting.
struct FastOutcome {
  AnalysisResult Result;
  uint64_t Tier0Runs = 0;
  uint64_t Tier0Ops = 0;
  uint64_t EscalatedRuns = 0;
};

/// One benchmark the generic sweep driver can run, whatever frontend it
/// executes under: everything the driver needs is a name, a cache
/// identity, sampling ranges, and a way to analyze a slice of sampled
/// inputs into mergeable records. The FPCore path wraps a compiled
/// program in a worker-local Herbgrind; the native path wraps a
/// registered Kernel in a worker-local native::Context.
struct SweepSource {
  std::string Name;
  std::vector<std::pair<double, double>> Ranges;
  /// Cache/wire identity; computed lazily (FPCore printing is not free)
  /// and only when a result cache or emit directory needs it.
  std::function<std::string()> MakeIdentity;
  /// Analyzes sampled inputs [Begin, End); must be callable concurrently
  /// with itself -- across sources AND across shards of one source
  /// (work stealing rebalances affine queues). Worker-local analyzer
  /// state (thread_local) is the only mutable state it may keep.
  std::function<AnalysisResult(
      uint64_t RunId, const std::vector<std::vector<double>> &Inputs,
      size_t Begin, size_t End)>
      AnalyzeShard;
  /// Tier-0 sweep of the same slice: runs the frontend in predicate-only
  /// mode (no BigFloat, no traces, no records) and reports whether any
  /// run was suspect. Same concurrency contract as AnalyzeShard; uses a
  /// separate worker-local analyzer so the two never alias.
  std::function<Tier0Outcome(
      uint64_t RunId, const std::vector<std::vector<double>> &Inputs,
      size_t Begin, size_t End)>
      Tier0Shard;
  /// Fast-tier analysis of the slice: every run executes at tier 0
  /// first, and only suspect runs replay under the full shadow, whose
  /// records are the result.
  std::function<FastOutcome(
      uint64_t RunId, const std::vector<std::vector<double>> &Inputs,
      size_t Begin, size_t End)>
      FastShard;
};

} // namespace

//===----------------------------------------------------------------------===//
// The batch driver
//===----------------------------------------------------------------------===//

Engine::Engine(EngineConfig Config) : Cfg(Config) {
  if (Cfg.Jobs == 0) {
    Cfg.Jobs = std::thread::hardware_concurrency();
    if (Cfg.Jobs == 0)
      Cfg.Jobs = 1;
  }
  // Oversubscription is allowed (useful for testing the pool), but a
  // wild value must not translate into thousands of threads.
  Cfg.Jobs = std::min(Cfg.Jobs, 256u);
  if (Cfg.SamplesPerBenchmark < 1)
    Cfg.SamplesPerBenchmark = 1;
  if (Cfg.ShardSize < 1)
    Cfg.ShardSize = 1;
  if (Cfg.ShardEnd < Cfg.ShardBegin)
    Cfg.ShardEnd = Cfg.ShardBegin;
  if (Cfg.BatchLanes < 1)
    Cfg.BatchLanes = 1;
  if (!Cfg.CacheDir.empty()) {
    RC = std::make_unique<ResultCache>(Cfg.CacheDir, configHash(Cfg));
    // True LRU recency only matters when something will prune by it.
    RC->setTouchOnHit(Cfg.CacheMaxBytes > 0);
    RC->setWireEncoding(Cfg.WireFormat);
  }
}

Engine::~Engine() = default;

namespace {

/// One unit of parallel work: a contiguous slice of one benchmark's
/// sampled inputs, analyzed by a worker-local Herbgrind instance.
struct Shard {
  size_t Bench = 0;
  size_t Index = 0; ///< Shard number within the benchmark (merge order).
  size_t Begin = 0;
  size_t End = 0;
};

/// Per-benchmark streaming-reduction state: shards fold into the
/// BenchmarkResult the moment every earlier shard has; later arrivals
/// wait in Pending. The fold order is ascending shard index whatever the
/// completion order, so the reduction stays deterministic while it
/// overlaps analysis.
struct BenchFold {
  std::mutex M;
  size_t NextIndex = 0; ///< Next shard index the accumulator expects.
  std::map<size_t, AnalysisResult> Pending; ///< Out-of-order completions.
};

} // namespace

/// Monotonic id per Engine::run call; guards the worker-local analyzer
/// cache against ever comparing a recycled Program address across runs.
static std::atomic<uint64_t> GlobalRunCounter{0};

/// The frontend-agnostic sweep driver: everything the engine promises --
/// deterministic sharding and sampling, result-cache satisfaction,
/// emit-shard documents, streaming in-order reduction, post-run cache GC
/// -- lives here once, shared by the FPCore and native entry points.
static BatchResult runSweepImpl(const EngineConfig &Cfg, ResultCache *RC,
                                const std::vector<SweepSource> &Sources) {
  auto Start = std::chrono::steady_clock::now();
  const uint64_t RunId = GlobalRunCounter.fetch_add(1) + 1;

  // Telemetry handles (registration is idempotent; see docs/TELEMETRY.md
  // for the metric taxonomy). All of it observes -- nothing below feeds
  // back into analysis or report content.
  static metrics::Counter MShardsDone = metrics::counter("engine.shards_done");
  static metrics::Counter MShardsAnalyzed =
      metrics::counter("engine.shards_analyzed");
  static metrics::Counter MShardsCached =
      metrics::counter("engine.shards_cached");
  static metrics::Counter MRuns = metrics::counter("engine.runs");
  static metrics::Counter MLimbHeap = metrics::counter("limb.heap_allocs");
  static metrics::Counter MLimbHits = metrics::counter("limb.cache_hits");
  static metrics::Counter MTier0Runs = metrics::counter("tier0.runs");
  static metrics::Counter MTier0Ops = metrics::counter("tier0.ops");
  static metrics::Counter MTierEscalations =
      metrics::counter("tier.escalations");
  static metrics::Counter MTierConfirmations =
      metrics::counter("tier.confirmations");
  static metrics::Timer TProbe = metrics::timer("engine.shard_cache_probe_ns");
  static metrics::Timer TAnalyze = metrics::timer("engine.shard_analyze_ns");
  static metrics::Timer TReduce = metrics::timer("engine.shard_reduce_ns");
  static metrics::Timer TRun = metrics::timer("engine.run_ns");
  metrics::ScopedTimer RunTimer(TRun);
  trace::Span RunSpan("engine.run", "engine");
  // Source identities (printed FPCores, kernel identity strings) feed
  // only cache keys; emit-only runs stamp documents with the config hash
  // alone, computed once.
  bool NeedIdentity = RC != nullptr;
  std::string CfgHash;
  if (RC)
    CfgHash = RC->configHash();
  else if (!Cfg.EmitShardDir.empty())
    CfgHash = configHash(Cfg);
  if (!Cfg.EmitShardDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Cfg.EmitShardDir, Ec);
  }

  // Phase 1 (serial, cheap): sample every benchmark's inputs up front and
  // lay out the shard list. Both depend only on the configuration: the
  // layout covers the full sample range even when only a shard-index
  // slice of it executes, so distributed slices stay merge-compatible.
  std::vector<std::vector<std::vector<double>>> Inputs(Sources.size());
  std::vector<uint64_t> Seeds(Sources.size());
  std::vector<std::string> Identities(Sources.size());
  std::vector<Shard> Shards;
  for (size_t B = 0; B < Sources.size(); ++B) {
    Seeds[B] = deriveSeed(Cfg.Seed, B);
    Inputs[B] = sampleSourceInputs(Sources[B].Ranges,
                                   Cfg.SamplesPerBenchmark, Seeds[B]);
    if (NeedIdentity)
      Identities[B] = Sources[B].MakeIdentity();
    size_t N = Inputs[B].size();
    size_t Step = static_cast<size_t>(Cfg.ShardSize);
    for (size_t Lo = 0, Idx = 0; Lo < N; Lo += Step, ++Idx)
      if (Idx >= Cfg.ShardBegin && Idx < Cfg.ShardEnd)
        Shards.push_back({B, Idx, Lo, std::min(Lo + Step, N)});
  }

  metrics::gauge("engine.benchmarks").set(static_cast<int64_t>(Sources.size()));
  metrics::gauge("engine.shards_total").set(static_cast<int64_t>(Shards.size()));

  if (events::enabled()) {
    size_t SliceRuns = 0;
    for (const Shard &Sh : Shards)
      SliceRuns += Sh.End - Sh.Begin;
    events::emit(
        "sweep.begin",
        format("\"benchmarks\":%zu,\"shards\":%zu,\"runs\":%zu,\"jobs\":%u,"
               "\"tier\":\"%s\"",
               Sources.size(), Shards.size(), SliceRuns, Cfg.Jobs,
               Cfg.Tier == TierMode::Full      ? "full"
               : Cfg.Tier == TierMode::Fast    ? "fast"
                                               : "confirm"));
  }

  BatchResult Out;
  Out.Benchmarks.resize(Sources.size());
  std::vector<BenchFold> Folds(Sources.size());
  for (size_t B = 0; B < Sources.size(); ++B) {
    Out.Benchmarks[B].Name = Sources[B].Name;
    Out.Benchmarks[B].Records.Ranges = Cfg.Analysis.Ranges;
    Out.Benchmarks[B].Records.EquivDepth = Cfg.Analysis.EquivDepth;
    // Executed shard indices per benchmark are a contiguous slice, so the
    // streaming fold starts at the slice's first index.
    Folds[B].NextIndex = Cfg.ShardBegin;
  }

  // Phase 2a (parallel, Confirm tier only): a predicate-only sweep over
  // every shard decides per benchmark whether the full shadow is needed
  // at all. The tier-0 pass is pure native-double arithmetic -- no
  // BigFloat, no traces -- so running it over the whole layout costs a
  // small fraction of one full shard. Predicate soundness (an erroneous
  // full-mode spot implies a suspect tier-0 run) is what lets a clean
  // verdict skip phase 2b for the benchmark without changing the report.
  std::vector<char> BenchSuspect(Sources.size(),
                                 Cfg.Tier != TierMode::Confirm ? 1 : 0);
  std::atomic<uint64_t> Tier0Runs{0}, Tier0Ops{0}, EscalatedRuns{0};
  uint64_t PoolTasks = 0, PoolSteals = 0, PoolMaxDepth = 0;
  if (Cfg.Tier == TierMode::Confirm) {
    trace::Span Tier0Span("engine.tier0", "engine");
    std::vector<std::atomic<char>> SuspectFlags(Sources.size());
    for (auto &F : SuspectFlags)
      F.store(0, std::memory_order_relaxed);
    ThreadPool Pool(Cfg.Jobs);
    for (size_t S = 0; S < Shards.size(); ++S)
      Pool.submitTo(Shards[S].Bench, [S, RunId, &Shards, &Sources, &Inputs,
                                      &SuspectFlags, &Tier0Runs, &Tier0Ops] {
        const Shard &Sh = Shards[S];
        // A benchmark already marked suspect needs no further verdicts;
        // the remaining tier-0 shards are skipped, not run for show.
        if (SuspectFlags[Sh.Bench].load(std::memory_order_relaxed))
          return;
        Tier0Outcome O =
            Sources[Sh.Bench].Tier0Shard(RunId, Inputs[Sh.Bench], Sh.Begin,
                                         Sh.End);
        Tier0Runs += O.Runs;
        Tier0Ops += O.Ops;
        if (O.Suspect)
          SuspectFlags[Sh.Bench].store(1, std::memory_order_relaxed);
      });
    Pool.waitAll();
    ThreadPool::PoolStats PS = Pool.stats();
    PoolTasks += PS.Executed;
    PoolSteals += PS.Steals;
    PoolMaxDepth = std::max<uint64_t>(PoolMaxDepth, PS.MaxQueueDepth);
    for (size_t B = 0; B < Sources.size(); ++B)
      BenchSuspect[B] = SuspectFlags[B].load(std::memory_order_relaxed);
  }

  // Phase 2 (parallel): every shard is satisfied from the result cache or
  // analyzed by its source's frontend, then folded into its benchmark's
  // accumulator in ascending shard order. The fold happens on whichever
  // worker completes the gap shard, overlapping reduce with analyze; only
  // out-of-order completions buffer. In Confirm tier, benchmarks cleared
  // by phase 2a fold empty records -- their full-shadow report is empty
  // too, so the rendered output is unchanged -- and skip the cache in
  // both directions (an empty record set must never masquerade as a full
  // one under the shared hash).
  std::atomic<uint64_t> Analyzed{0}, Cached{0}, EmitFailed{0};
  std::atomic<uint64_t> LimbHeap{0}, LimbHits{0};
  const uint64_t RcHits0 = RC ? RC->hits() : 0;
  const uint64_t RcMisses0 = RC ? RC->misses() : 0;
  const uint64_t RcStoreFail0 = RC ? RC->storeFailures() : 0;
  {
    ThreadPool Pool(Cfg.Jobs);
    for (size_t S = 0; S < Shards.size(); ++S) {
      if (events::enabled())
        events::emit("shard.queued",
                     format("\"bench\":%zu,\"shard\":%zu,\"runs\":%zu",
                            Shards[S].Bench, Shards[S].Index,
                            Shards[S].End - Shards[S].Begin));
      // Benchmark-affine placement: a benchmark's shards land on one
      // worker (stealing still rebalances), so the worker-local analyzer
      // inside AnalyzeShard actually gets reused across them at any jobs
      // count.
      Pool.submitTo(Shards[S].Bench, [RC, &Cfg, S, RunId, &Shards, &Sources,
                                      &Inputs, &Seeds, &Identities, &Folds,
                                      &Out, &Analyzed, &Cached, &EmitFailed,
                                      &LimbHeap, &LimbHits, &CfgHash,
                                      &BenchSuspect, &Tier0Runs, &Tier0Ops,
                                      &EscalatedRuns] {
        const Shard &Sh = Shards[S];
        // Confirm tier, benchmark cleared by phase 2a: no probe, no
        // analysis, no store -- fold an empty shard so the layout's
        // shard/run accounting (and the emitted document set) stays
        // complete.
        const bool Cleared = !BenchSuspect[Sh.Bench];
        std::string SpanArgs =
            trace::enabled()
                ? format("{\"bench\":%zu,\"shard\":%zu,\"runs\":%zu}",
                         Sh.Bench, Sh.Index, Sh.End - Sh.Begin)
                : std::string();
        std::string EvArgs =
            events::enabled()
                ? format("\"bench\":%zu,\"shard\":%zu,\"runs\":%zu", Sh.Bench,
                         Sh.Index, Sh.End - Sh.Begin)
                : std::string();
        ResultCache::ShardKey Key;
        if (RC && !Cleared) {
          Key.CoreIdentity = Identities[Sh.Bench];
          Key.DerivedSeed = Seeds[Sh.Bench];
          Key.BenchIndex = Sh.Bench;
          Key.ShardIndex = Sh.Index;
          Key.RunBegin = Sh.Begin;
          Key.RunEnd = Sh.End;
        }

        AnalysisResult Result;
        bool FromCache = false;
        if (RC && !Cleared) {
          trace::Span ProbeSpan("shard.cache_probe", "engine", SpanArgs);
          metrics::ScopedTimer ProbeTimer(TProbe);
          FromCache = RC->lookup(Key, Result);
        }
        if (Cleared) {
          // Nothing to do: Result stays empty.
        } else if (FromCache) {
          ++Cached;
          MShardsCached.add(1);
          if (events::enabled())
            events::emit("shard.cache_hit", EvArgs);
        } else {
          // Limb-traffic deltas bracket the analysis on this worker
          // thread (the counters are thread-local), so the sum over
          // shards is the sweep's total allocator activity.
          uint64_t Heap0 = limballoc::heapAllocs();
          uint64_t Hits0 = limballoc::cacheHits();
          {
            trace::Span AnalyzeSpan("shard.analyze", "engine", SpanArgs);
            metrics::ScopedTimer AnalyzeTimer(TAnalyze);
            if (Cfg.Tier == TierMode::Fast) {
              FastOutcome FO = Sources[Sh.Bench].FastShard(
                  RunId, Inputs[Sh.Bench], Sh.Begin, Sh.End);
              Result = std::move(FO.Result);
              Tier0Runs += FO.Tier0Runs;
              Tier0Ops += FO.Tier0Ops;
              EscalatedRuns += FO.EscalatedRuns;
              MTier0Runs.add(FO.Tier0Runs);
              MTier0Ops.add(FO.Tier0Ops);
              MTierEscalations.add(FO.EscalatedRuns);
              if (FO.EscalatedRuns > 0 && events::enabled())
                events::emit(
                    "shard.escalated",
                    EvArgs + format(",\"escalated\":%llu",
                                    static_cast<unsigned long long>(
                                        FO.EscalatedRuns)));
            } else {
              Result = Sources[Sh.Bench].AnalyzeShard(RunId, Inputs[Sh.Bench],
                                                      Sh.Begin, Sh.End);
              if (Cfg.Tier == TierMode::Confirm) {
                // Every run of a suspect benchmark replays under the full
                // shadow: that is the escalation cost of this tier.
                EscalatedRuns += Sh.End - Sh.Begin;
                MTierEscalations.add(Sh.End - Sh.Begin);
                if (events::enabled())
                  events::emit("shard.escalated",
                               EvArgs +
                                   format(",\"escalated\":%zu",
                                          Sh.End - Sh.Begin));
              }
            }
          }
          uint64_t HeapD = limballoc::heapAllocs() - Heap0;
          uint64_t HitsD = limballoc::cacheHits() - Hits0;
          LimbHeap += HeapD;
          LimbHits += HitsD;
          MLimbHeap.add(HeapD);
          MLimbHits.add(HitsD);
          ++Analyzed;
          MShardsAnalyzed.add(1);
          if (events::enabled())
            events::emit("shard.analyzed", EvArgs);
          if (RC)
            RC->store(Key, Sources[Sh.Bench].Name, Result);
        }
        MShardsDone.add(1);
        MRuns.add(Sh.End - Sh.Begin);
        if (!Cfg.EmitShardDir.empty()) {
          const bool Bin = Cfg.WireFormat == WireEncoding::Binary;
          std::string Name = format(Bin ? "shard-b%05llu-s%05llu.hgb"
                                        : "shard-b%05llu-s%05llu.json",
                                    static_cast<unsigned long long>(Sh.Bench),
                                    static_cast<unsigned long long>(Sh.Index));
          std::string Doc =
              Bin ? renderShardBinary(CfgHash, Sources[Sh.Bench].Name,
                                      Sh.Bench, Sh.Index, Sh.Begin, Sh.End,
                                      Result)
                  : renderShardJson(CfgHash, Sources[Sh.Bench].Name, Sh.Bench,
                                    Sh.Index, Sh.Begin, Sh.End, Result);
          if (!writeFileAtomic(Cfg.EmitShardDir + "/" + Name, Doc))
            ++EmitFailed;
        }

        // Streaming in-order fold. The arriving shard parks in Pending,
        // then everything contiguous from NextIndex folds in; shard sizes
        // are recovered from the layout (End - Begin == ShardSize except
        // for the tail shard).
        BenchFold &Fold = Folds[Sh.Bench];
        BenchmarkResult &BR = Out.Benchmarks[Sh.Bench];
        size_t Step = static_cast<size_t>(Cfg.ShardSize);
        size_t Total = Inputs[Sh.Bench].size();
        trace::Span ReduceSpan("shard.reduce", "engine", SpanArgs);
        metrics::ScopedTimer ReduceTimer(TReduce);
        std::lock_guard<std::mutex> Lock(Fold.M);
        Fold.Pending.emplace(Sh.Index, std::move(Result));
        for (auto It = Fold.Pending.find(Fold.NextIndex);
             It != Fold.Pending.end();
             It = Fold.Pending.find(Fold.NextIndex)) {
          if (BR.Shards == 0)
            BR.Records = std::move(It->second);
          else
            BR.Records.mergeFrom(It->second);
          ++BR.Shards;
          size_t Lo = Fold.NextIndex * Step;
          BR.Runs += std::min(Lo + Step, Total) - Lo;
          Fold.Pending.erase(It);
          if (events::enabled())
            events::emit("shard.reduced",
                         format("\"bench\":%zu,\"shard\":%zu", Sh.Bench,
                                Fold.NextIndex));
          ++Fold.NextIndex;
        }
      });
    }
    Pool.waitAll();
    ThreadPool::PoolStats PS = Pool.stats();
    PoolTasks += PS.Executed;
    PoolSteals += PS.Steals;
    PoolMaxDepth = std::max<uint64_t>(PoolMaxDepth, PS.MaxQueueDepth);
    Out.Stats.PoolTasks = PoolTasks;
    Out.Stats.PoolSteals = PoolSteals;
    Out.Stats.PoolMaxQueueDepth = PoolMaxDepth;
    metrics::counter("pool.tasks_submitted").add(PS.Submitted);
    metrics::counter("pool.tasks_executed").add(PS.Executed);
    metrics::counter("pool.steals").add(PS.Steals);
    metrics::gauge("pool.max_queue_depth")
        .set(static_cast<int64_t>(PS.MaxQueueDepth));
    metrics::gauge("pool.workers").set(static_cast<int64_t>(Pool.workers()));
  }

  // Phase 3 (serial, cheap): build the per-benchmark reports from the
  // merged records and collect the statistics.
  for (BenchmarkResult &BR : Out.Benchmarks) {
    BR.Rep = buildReport(BR.Records);
    Out.Stats.Shards += BR.Shards;
    Out.Stats.Runs += BR.Runs;
  }
  Out.Stats.Benchmarks = Sources.size();
  Out.Stats.AnalyzedShards = Analyzed.load();
  Out.Stats.CachedShards = Cached.load();
  Out.Stats.EmitFailures = EmitFailed.load();
  Out.Stats.LimbHeapAllocs = LimbHeap.load();
  Out.Stats.LimbCacheHits = LimbHits.load();
  Out.Stats.Tier0Runs = Tier0Runs.load();
  Out.Stats.Tier0Ops = Tier0Ops.load();
  Out.Stats.EscalatedRuns = EscalatedRuns.load();
  if (Cfg.Tier == TierMode::Confirm) {
    for (size_t B = 0; B < Sources.size(); ++B)
      if (BenchSuspect[B])
        ++Out.Stats.ConfirmedBenchmarks;
    MTierConfirmations.add(Out.Stats.ConfirmedBenchmarks);
    MTier0Runs.add(Out.Stats.Tier0Runs);
    MTier0Ops.add(Out.Stats.Tier0Ops);
  }
  if (RC) {
    Out.Stats.ResultCacheHits = RC->hits() - RcHits0;
    Out.Stats.ResultCacheMisses = RC->misses() - RcMisses0;
    Out.Stats.ResultCacheStoreFailures = RC->storeFailures() - RcStoreFail0;
    metrics::counter("rcache.hits").add(Out.Stats.ResultCacheHits);
    metrics::counter("rcache.misses").add(Out.Stats.ResultCacheMisses);
    metrics::counter("rcache.store_failures")
        .add(Out.Stats.ResultCacheStoreFailures);
  }
  if (RC && Cfg.CacheMaxBytes > 0) {
    // Post-run LRU pruning keeps the result cache under its cap; a
    // failure never fails the sweep (the cache is an accelerator, not
    // load-bearing) but is reported so an unenforced cap is visible.
    CacheGcStats Gc;
    std::string GcErr;
    if (RC->gc(Cfg.CacheMaxBytes, Gc, GcErr)) {
      Out.Stats.CachePrunedEntries = Gc.PrunedEntries;
      Out.Stats.CachePrunedBytes = Gc.PrunedBytes;
    } else {
      Out.Stats.CacheGcError = std::move(GcErr);
    }
  }
  Out.Stats.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (events::enabled())
    events::emit(
        "sweep.end",
        format("\"benchmarks\":%llu,\"shards\":%llu,\"runs\":%llu,"
               "\"analyzed\":%llu,\"cached\":%llu,\"escalated\":%llu,"
               "\"wallSeconds\":%s",
               static_cast<unsigned long long>(Out.Stats.Benchmarks),
               static_cast<unsigned long long>(Out.Stats.Shards),
               static_cast<unsigned long long>(Out.Stats.Runs),
               static_cast<unsigned long long>(Out.Stats.AnalyzedShards),
               static_cast<unsigned long long>(Out.Stats.CachedShards),
               static_cast<unsigned long long>(Out.Stats.EscalatedRuns),
               formatDoubleShortest(Out.Stats.WallSeconds).c_str()));
  return Out;
}

//===----------------------------------------------------------------------===//
// Frontend entry points
//===----------------------------------------------------------------------===//

/// Worker-local analyzer reuse shared by both frontends: consecutive
/// shards of the same benchmark on one worker recycle one analyzer -- its
/// trace arena, shadow-value pool, interned influence sets, and
/// per-thread limb scratch all stay warm -- instead of rebuilding the
/// arenas per shard. reset() restores the exact fresh-instance records
/// contract, so reports stay byte-identical at any worker count (the
/// selftest checks this). \p Key is the benchmark's address identity,
/// only meaningful within one run() (ProgramCache never evicts during
/// it, and caller-owned kernel vectors outlive it); the RunId in the
/// cache makes a recycled address harmless even if worker threads ever
/// outlive a run. One thread_local cache exists per analyzer type.
template <typename Analyzer, typename MakeFn, typename RunOneFn,
          typename RunBatchFn>
static AnalysisResult
analyzeShardWorkerLocal(uint64_t RunId, const void *Key, MakeFn Make,
                        RunOneFn RunOne, RunBatchFn RunBatch, unsigned Lanes,
                        const std::vector<std::vector<double>> &Inputs,
                        size_t Begin, size_t End) {
  struct Worker {
    uint64_t Run = 0;
    const void *Key = nullptr;
    std::unique_ptr<Analyzer> A;
  };
  thread_local Worker W;
  if (W.Run == RunId && W.Key == Key && W.A) {
    W.A->reset();
  } else {
    W.A = Make();
    W.Run = RunId;
    W.Key = Key;
  }
  if (Lanes <= 1) {
    for (size_t I = Begin; I < End; ++I)
      RunOne(*W.A, Inputs[I]);
  } else {
    // Batched hot path: the frontend guarantees records byte-identical
    // to the scalar loop at every lane count (the per-lane verdicts are
    // irrelevant here -- full analysis records everything).
    std::vector<uint8_t> Suspects;
    for (size_t I = Begin; I < End; I += Lanes)
      RunBatch(*W.A, &Inputs[I], std::min<size_t>(Lanes, End - I), Suspects);
  }
  return W.A->snapshot();
}

/// Tier-0 sibling of analyzeShardWorkerLocal: a worker-local
/// predicate-only analyzer sweeps the slice and reports the suspect
/// verdict. Each call site instantiates its own thread_local cache (the
/// Make/RunOne lambda types are part of the template identity), so a
/// tier-0 analyzer can never be mistaken for a full one even under the
/// same (RunId, Key).
template <typename Analyzer, typename MakeFn, typename RunOneFn,
          typename RunBatchFn>
static Tier0Outcome
tier0ShardWorkerLocal(uint64_t RunId, const void *Key, MakeFn Make,
                      RunOneFn RunOne, RunBatchFn RunBatch, unsigned Lanes,
                      const std::vector<std::vector<double>> &Inputs,
                      size_t Begin, size_t End) {
  struct Worker {
    uint64_t Run = 0;
    const void *Key = nullptr;
    std::unique_ptr<Analyzer> A;
  };
  thread_local Worker W;
  if (W.Run == RunId && W.Key == Key && W.A) {
    W.A->reset();
  } else {
    W.A = Make();
    W.Run = RunId;
    W.Key = Key;
  }
  Tier0Outcome Out;
  uint64_t Ops0 = W.A->stats().ShadowOpsExecuted;
  if (Lanes <= 1) {
    for (size_t I = Begin; I < End; ++I) {
      RunOne(*W.A, Inputs[I]);
      ++Out.Runs;
      if (W.A->lastRunSuspect()) {
        Out.Suspect = true;
        break; // One suspect run settles the shard's verdict.
      }
    }
  } else {
    // Batched: verdicts scan in lane order and Runs counts scanned lanes,
    // so the suspect verdict and run accounting match the scalar loop's
    // early break exactly. The batch may have *executed* lanes past the
    // first suspect one -- Ops is informational and may exceed scalar's.
    std::vector<uint8_t> Suspects;
    for (size_t I = Begin; I < End && !Out.Suspect; I += Lanes) {
      size_t N = std::min<size_t>(Lanes, End - I);
      RunBatch(*W.A, &Inputs[I], N, Suspects);
      for (size_t L = 0; L < N; ++L) {
        ++Out.Runs;
        if (Suspects[L]) {
          Out.Suspect = true;
          break;
        }
      }
    }
  }
  Out.Ops = W.A->stats().ShadowOpsExecuted - Ops0;
  return Out;
}

/// Fast-tier sibling: one worker-local *pair* of analyzers -- tier-0
/// predicates and the full shadow -- sweeps the slice; every run executes
/// at tier 0 and only suspect runs replay under the full shadow. The
/// escalation decision is per-run deterministic, and escalated runs
/// accumulate in sampling order, so fast-tier sweeps stay byte-identical
/// across worker counts like everything else in the engine.
template <typename Analyzer, typename MakeT0Fn, typename MakeFullFn,
          typename RunOneFn, typename RunBatchFn>
static FastOutcome
fastShardWorkerLocal(uint64_t RunId, const void *Key, MakeT0Fn MakeT0,
                     MakeFullFn MakeFull, RunOneFn RunOne, RunBatchFn RunBatch,
                     unsigned Lanes,
                     const std::vector<std::vector<double>> &Inputs,
                     size_t Begin, size_t End) {
  struct Worker {
    uint64_t Run = 0;
    const void *Key = nullptr;
    std::unique_ptr<Analyzer> T0;
    std::unique_ptr<Analyzer> Full;
  };
  thread_local Worker W;
  if (W.Run == RunId && W.Key == Key && W.T0 && W.Full) {
    W.T0->reset();
    W.Full->reset();
  } else {
    W.T0 = MakeT0();
    W.Full = MakeFull();
    W.Run = RunId;
    W.Key = Key;
  }
  FastOutcome Out;
  uint64_t Ops0 = W.T0->stats().ShadowOpsExecuted;
  if (Lanes <= 1) {
    for (size_t I = Begin; I < End; ++I) {
      RunOne(*W.T0, Inputs[I]);
      ++Out.Tier0Runs;
      if (W.T0->lastRunSuspect()) {
        RunOne(*W.Full, Inputs[I]);
        ++Out.EscalatedRuns;
      }
    }
  } else {
    // Batched: tier 0 sweeps whole batches, then suspect lanes escalate
    // scalar in ascending lane order. Per-lane verdicts are independent
    // of batching, so the full analyzer sees exactly the scalar loop's
    // escalation sequence and its records stay byte-identical.
    std::vector<uint8_t> Suspects;
    for (size_t I = Begin; I < End; I += Lanes) {
      size_t N = std::min<size_t>(Lanes, End - I);
      RunBatch(*W.T0, &Inputs[I], N, Suspects);
      Out.Tier0Runs += N;
      for (size_t L = 0; L < N; ++L)
        if (Suspects[L]) {
          RunOne(*W.Full, Inputs[I + L]);
          ++Out.EscalatedRuns;
        }
    }
  }
  Out.Tier0Ops = W.T0->stats().ShadowOpsExecuted - Ops0;
  Out.Result = W.Full->snapshot();
  return Out;
}

/// Wraps one FPCore core as a sweep source: analysis runs a worker-local
/// Herbgrind instance over the compiled program.
static SweepSource coreSource(const fpcore::Core &C,
                              fpcore::ProgramCache &Cache,
                              const AnalysisConfig &ACfg, unsigned Lanes) {
  SweepSource Src;
  Src.Name = C.Name;
  std::vector<std::pair<double, double>> Ranges;
  for (const fpcore::VarRange &VR : fpcore::sampleRanges(C))
    Ranges.push_back({VR.Lo, VR.Hi});
  Src.Ranges = std::move(Ranges);
  Src.MakeIdentity = [&C] { return C.print(); };
  auto RunOne = [](Herbgrind &HG, const std::vector<double> &In) {
    HG.runOnInput(In);
  };
  auto RunBatch = [](Herbgrind &HG, const std::vector<double> *Tuples,
                     size_t N, std::vector<uint8_t> &Suspects) {
    HG.runOnBatch(Tuples, N);
    Suspects = HG.laneSuspects();
  };
  Src.AnalyzeShard = [&C, &Cache, &ACfg, RunOne, RunBatch, Lanes](
                         uint64_t RunId,
                         const std::vector<std::vector<double>> &Inputs,
                         size_t Begin, size_t End) {
    const Program &P = Cache.get(C);
    return analyzeShardWorkerLocal<Herbgrind>(
        RunId, &P, [&] { return std::make_unique<Herbgrind>(P, ACfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  AnalysisConfig PCfg = ACfg;
  PCfg.PredicateOnly = true;
  Src.Tier0Shard = [&C, &Cache, PCfg, RunOne, RunBatch, Lanes](
                       uint64_t RunId,
                       const std::vector<std::vector<double>> &Inputs,
                       size_t Begin, size_t End) {
    const Program &P = Cache.get(C);
    return tier0ShardWorkerLocal<Herbgrind>(
        RunId, &P, [&] { return std::make_unique<Herbgrind>(P, PCfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  Src.FastShard = [&C, &Cache, &ACfg, PCfg, RunOne, RunBatch, Lanes](
                      uint64_t RunId,
                      const std::vector<std::vector<double>> &Inputs,
                      size_t Begin, size_t End) {
    const Program &P = Cache.get(C);
    return fastShardWorkerLocal<Herbgrind>(
        RunId, &P, [&] { return std::make_unique<Herbgrind>(P, PCfg); },
        [&] { return std::make_unique<Herbgrind>(P, ACfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  return Src;
}

/// Wraps one native kernel as a sweep source: analysis runs the kernel's
/// actual C++ code under a worker-local native::Context. The context's
/// content-hashed op identities are what keep this mergeable and cacheable
/// exactly like the interpreter path.
static SweepSource kernelSource(const native::Kernel &K,
                                const AnalysisConfig &ACfg, unsigned Lanes) {
  SweepSource Src;
  Src.Name = K.Name;
  for (const native::Kernel::InputRange &R : K.Inputs)
    Src.Ranges.push_back({R.Lo, R.Hi});
  Src.MakeIdentity = [&K] { return K.identity(); };
  auto RunOne = [&K](native::Context &C, const std::vector<double> &In) {
    C.run(K, In);
  };
  auto RunBatch = [&K](native::Context &C, const std::vector<double> *Tuples,
                       size_t N, std::vector<uint8_t> &Suspects) {
    C.runBatch(K, Tuples, N, &Suspects);
  };
  Src.AnalyzeShard = [&ACfg, RunOne, RunBatch, Lanes, &K](
                         uint64_t RunId,
                         const std::vector<std::vector<double>> &Inputs,
                         size_t Begin, size_t End) {
    return analyzeShardWorkerLocal<native::Context>(
        RunId, &K, [&] { return std::make_unique<native::Context>(ACfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  AnalysisConfig PCfg = ACfg;
  PCfg.PredicateOnly = true;
  Src.Tier0Shard = [PCfg, RunOne, RunBatch, Lanes, &K](
                       uint64_t RunId,
                       const std::vector<std::vector<double>> &Inputs,
                       size_t Begin, size_t End) {
    return tier0ShardWorkerLocal<native::Context>(
        RunId, &K, [&] { return std::make_unique<native::Context>(PCfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  Src.FastShard = [&ACfg, PCfg, RunOne, RunBatch, Lanes, &K](
                      uint64_t RunId,
                      const std::vector<std::vector<double>> &Inputs,
                      size_t Begin, size_t End) {
    return fastShardWorkerLocal<native::Context>(
        RunId, &K, [&] { return std::make_unique<native::Context>(PCfg); },
        [&] { return std::make_unique<native::Context>(ACfg); },
        RunOne, RunBatch, Lanes, Inputs, Begin, End);
  };
  return Src;
}

BatchResult Engine::run(const std::vector<fpcore::Core> &Cores) {
  return run(Cores, {});
}

BatchResult Engine::run(const std::vector<native::Kernel> &Kernels) {
  return run({}, Kernels);
}

BatchResult Engine::run(const std::vector<fpcore::Core> &Cores,
                        const std::vector<native::Kernel> &Kernels) {
  size_t CacheHits0 = Cache.hits(), CacheMisses0 = Cache.misses();
  std::vector<SweepSource> Sources;
  Sources.reserve(Cores.size() + Kernels.size());
  for (const fpcore::Core &C : Cores)
    Sources.push_back(coreSource(C, Cache, Cfg.Analysis, Cfg.BatchLanes));
  for (const native::Kernel &K : Kernels)
    Sources.push_back(kernelSource(K, Cfg.Analysis, Cfg.BatchLanes));
  BatchResult Out = runSweepImpl(Cfg, RC.get(), Sources);
  Out.Stats.CacheHits = Cache.hits() - CacheHits0;
  Out.Stats.CacheMisses = Cache.misses() - CacheMisses0;
  return Out;
}

BatchResult Engine::runCorpus() { return run(fpcore::compilableCorpus()); }

//===----------------------------------------------------------------------===//
// Batch output
//===----------------------------------------------------------------------===//

Report BatchResult::merged() const {
  Report R;
  for (const BenchmarkResult &BR : Benchmarks)
    R.mergeFrom(BR.Rep);
  return R;
}

std::string BatchResult::renderJson() const {
  return renderWire(WireEncoding::Json);
}

std::string BatchResult::renderWire(WireEncoding Enc) const {
  std::vector<BatchReportEntryRef> Entries;
  Entries.reserve(Benchmarks.size());
  for (const BenchmarkResult &BR : Benchmarks)
    Entries.push_back({&BR.Name, BR.Shards, BR.Runs, &BR.Rep});
  return Enc == WireEncoding::Binary ? renderBatchReportBinary(Entries)
                                     : renderBatchReportJson(Entries);
}

//===----------------------------------------------------------------------===//
// Merging emitted shard documents (the distributed workflow)
//===----------------------------------------------------------------------===//

bool herbgrind::engine::mergeShards(std::vector<ShardDoc> Docs,
                                    BatchResult &Out, std::string &Err,
                                    std::string *Warnings) {
  if (Docs.empty()) {
    Err = "no shard documents to merge";
    return false;
  }
  for (const ShardDoc &D : Docs)
    if (D.ConfigHash != Docs.front().ConfigHash) {
      Err = format("config hash mismatch: shard %llu of '%s' has %s, "
                   "expected %s (shards from different sweep "
                   "configurations cannot merge)",
                   static_cast<unsigned long long>(D.ShardIndex),
                   D.Benchmark.c_str(), D.ConfigHash.c_str(),
                   Docs.front().ConfigHash.c_str());
      return false;
    }

  std::stable_sort(Docs.begin(), Docs.end(),
                   [](const ShardDoc &A, const ShardDoc &B) {
                     if (A.BenchIndex != B.BenchIndex)
                       return A.BenchIndex < B.BenchIndex;
                     return A.ShardIndex < B.ShardIndex;
                   });

  for (size_t I = 0; I + 1 < Docs.size(); ++I) {
    const ShardDoc &A = Docs[I], &B = Docs[I + 1];
    if (A.BenchIndex != B.BenchIndex)
      continue;
    if (A.Benchmark != B.Benchmark) {
      Err = format("benchmark index %llu names both '%s' and '%s'",
                   static_cast<unsigned long long>(A.BenchIndex),
                   A.Benchmark.c_str(), B.Benchmark.c_str());
      return false;
    }
    if (A.ShardIndex == B.ShardIndex) {
      Err = format("duplicate shard %llu for benchmark '%s'",
                   static_cast<unsigned long long>(A.ShardIndex),
                   A.Benchmark.c_str());
      return false;
    }
    if (Warnings && B.RunBegin != A.RunEnd)
      *Warnings += format("gap in '%s' between shard %llu (runs end %llu) "
                          "and shard %llu (runs begin %llu); merging the "
                          "shards present\n",
                          A.Benchmark.c_str(),
                          static_cast<unsigned long long>(A.ShardIndex),
                          static_cast<unsigned long long>(A.RunEnd),
                          static_cast<unsigned long long>(B.ShardIndex),
                          static_cast<unsigned long long>(B.RunBegin));
  }

  for (size_t I = 0; I < Docs.size();) {
    size_t J = I;
    while (J < Docs.size() && Docs[J].BenchIndex == Docs[I].BenchIndex)
      ++J;
    // The pairwise pass above cannot see a missing *leading* shard.
    if (Warnings && Docs[I].RunBegin != 0)
      *Warnings += format("'%s' starts at shard %llu (runs begin %llu), "
                          "not at the beginning of the sweep; merging the "
                          "shards present\n",
                          Docs[I].Benchmark.c_str(),
                          static_cast<unsigned long long>(Docs[I].ShardIndex),
                          static_cast<unsigned long long>(Docs[I].RunBegin));
    BenchmarkResult BR;
    BR.Name = Docs[I].Benchmark;
    for (size_t K = I; K < J; ++K) {
      if (K == I)
        BR.Records = std::move(Docs[K].Result);
      else
        BR.Records.mergeFrom(Docs[K].Result);
      ++BR.Shards;
      BR.Runs += Docs[K].RunEnd - Docs[K].RunBegin;
    }
    BR.Rep = buildReport(BR.Records);
    Out.Stats.Shards += BR.Shards;
    Out.Stats.Runs += BR.Runs;
    Out.Benchmarks.push_back(std::move(BR));
    I = J;
  }
  Out.Stats.Benchmarks = Out.Benchmarks.size();
  return true;
}
