//===- engine/Engine.cpp - Parallel batch analysis ------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "engine/ThreadPool.h"
#include "fpcore/Corpus.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace herbgrind;
using namespace herbgrind::engine;

//===----------------------------------------------------------------------===//
// Deterministic input sampling
//===----------------------------------------------------------------------===//

/// SplitMix64 step: derives an independent per-benchmark seed so sampling
/// never depends on worker count or sharding.
static uint64_t deriveSeed(uint64_t Base, uint64_t Index) {
  uint64_t Z = Base + (Index + 1) * 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static std::vector<std::vector<double>>
sampleBenchmarkInputs(const fpcore::Core &C, int Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<fpcore::VarRange> Ranges = fpcore::sampleRanges(C);
  std::vector<std::vector<double>> Sets;
  Sets.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I) {
    std::vector<double> In;
    In.reserve(Ranges.size());
    for (const fpcore::VarRange &VR : Ranges)
      In.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(In));
  }
  return Sets;
}

//===----------------------------------------------------------------------===//
// The batch driver
//===----------------------------------------------------------------------===//

Engine::Engine(EngineConfig Config) : Cfg(Config) {
  if (Cfg.Jobs == 0) {
    Cfg.Jobs = std::thread::hardware_concurrency();
    if (Cfg.Jobs == 0)
      Cfg.Jobs = 1;
  }
  // Oversubscription is allowed (useful for testing the pool), but a
  // wild value must not translate into thousands of threads.
  Cfg.Jobs = std::min(Cfg.Jobs, 256u);
  if (Cfg.SamplesPerBenchmark < 1)
    Cfg.SamplesPerBenchmark = 1;
  if (Cfg.ShardSize < 1)
    Cfg.ShardSize = 1;
}

namespace {

/// One unit of parallel work: a contiguous slice of one benchmark's
/// sampled inputs, analyzed by a worker-local Herbgrind instance.
struct Shard {
  size_t Bench = 0;
  size_t Index = 0; ///< Shard number within the benchmark (merge order).
  size_t Begin = 0;
  size_t End = 0;
};

} // namespace

BatchResult Engine::run(const std::vector<fpcore::Core> &Cores) {
  auto Start = std::chrono::steady_clock::now();
  size_t CacheHits0 = Cache.hits(), CacheMisses0 = Cache.misses();

  // Phase 1 (serial, cheap): sample every benchmark's inputs up front and
  // lay out the shard list. Both depend only on the configuration.
  std::vector<std::vector<std::vector<double>>> Inputs(Cores.size());
  std::vector<Shard> Shards;
  for (size_t B = 0; B < Cores.size(); ++B) {
    Inputs[B] = sampleBenchmarkInputs(Cores[B], Cfg.SamplesPerBenchmark,
                                      deriveSeed(Cfg.Seed, B));
    size_t N = Inputs[B].size();
    size_t Step = static_cast<size_t>(Cfg.ShardSize);
    for (size_t Lo = 0, Idx = 0; Lo < N; Lo += Step, ++Idx)
      Shards.push_back({B, Idx, Lo, std::min(Lo + Step, N)});
  }

  // Phase 2 (parallel): every shard runs in its own Herbgrind instance;
  // results land in a pre-sized table, so completion order is not
  // observable.
  std::vector<AnalysisResult> ShardResults(Shards.size());
  {
    ThreadPool Pool(Cfg.Jobs);
    for (size_t S = 0; S < Shards.size(); ++S) {
      Pool.submit([this, S, &Shards, &Cores, &Inputs, &ShardResults] {
        const Shard &Sh = Shards[S];
        const Program &P = Cache.get(Cores[Sh.Bench]);
        Herbgrind HG(P, Cfg.Analysis);
        for (size_t I = Sh.Begin; I < Sh.End; ++I)
          HG.runOnInput(Inputs[Sh.Bench][I]);
        ShardResults[S] = HG.snapshot();
      });
    }
    Pool.waitAll();
  }

  // Phase 3 (serial, deterministic): reduce each benchmark's shards in
  // ascending shard order -- the same fold at any worker count.
  BatchResult Out;
  Out.Benchmarks.resize(Cores.size());
  for (size_t B = 0; B < Cores.size(); ++B) {
    Out.Benchmarks[B].Name = Cores[B].Name;
    Out.Benchmarks[B].Records.Ranges = Cfg.Analysis.Ranges;
    Out.Benchmarks[B].Records.EquivDepth = Cfg.Analysis.EquivDepth;
  }
  for (size_t S = 0; S < Shards.size(); ++S) {
    BenchmarkResult &BR = Out.Benchmarks[Shards[S].Bench];
    if (BR.Shards == 0)
      BR.Records = std::move(ShardResults[S]);
    else
      BR.Records.mergeFrom(ShardResults[S]);
    ++BR.Shards;
    BR.Runs += Shards[S].End - Shards[S].Begin;
  }
  for (BenchmarkResult &BR : Out.Benchmarks) {
    BR.Rep = buildReport(BR.Records);
    Out.Stats.Shards += BR.Shards;
    Out.Stats.Runs += BR.Runs;
  }
  Out.Stats.Benchmarks = Cores.size();
  Out.Stats.CacheHits = Cache.hits() - CacheHits0;
  Out.Stats.CacheMisses = Cache.misses() - CacheMisses0;
  Out.Stats.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

BatchResult Engine::runCorpus() {
  std::vector<fpcore::Core> Cores;
  for (const fpcore::Core &C : fpcore::corpus())
    if (fpcore::isCompilable(C))
      Cores.push_back(C.clone());
  return run(Cores);
}

//===----------------------------------------------------------------------===//
// Batch output
//===----------------------------------------------------------------------===//

Report BatchResult::merged() const {
  Report R;
  for (const BenchmarkResult &BR : Benchmarks)
    R.mergeFrom(BR.Rep);
  return R;
}

std::string BatchResult::renderJson() const {
  std::string Out = "{\"benchmarks\":[";
  bool First = true;
  for (const BenchmarkResult &BR : Benchmarks) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("{\"name\":\"%s\",\"shards\":%llu,\"runs\":%llu,"
                  "\"report\":%s}",
                  jsonEscape(BR.Name).c_str(),
                  static_cast<unsigned long long>(BR.Shards),
                  static_cast<unsigned long long>(BR.Runs),
                  BR.Rep.renderJson().c_str());
  }
  Out += "]}";
  return Out;
}
