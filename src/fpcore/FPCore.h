//===- fpcore/FPCore.h - FPCore AST, parser, printer ------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FPCore benchmark format (the FPBench standard the paper evaluates
/// on, Section 8): a small S-expression language of floating-point
/// programs with preconditions, conditionals, lets and while loops. This
/// header defines the AST, the parser, and the printer; Compile.h lowers
/// cores onto the abstract machine and Eval.h interprets expressions
/// directly in double or real arithmetic (for the improver).
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_FPCORE_FPCORE_H
#define HERBGRIND_FPCORE_FPCORE_H

#include <memory>
#include <string>
#include <vector>

namespace herbgrind {
namespace fpcore {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One FPCore expression node.
struct Expr {
  enum class Kind : uint8_t {
    Num,   ///< Literal (stored as the closest double).
    Const, ///< Named constant: PI, E, INFINITY, NAN, TRUE, FALSE.
    Var,
    Op,    ///< Operator/function application, including boolean ops.
    If,    ///< (if c t e): Args = {c, t, e}.
    Let,   ///< (let ([x e] ...) body): Binds/Inits + Args[0] = body.
    While, ///< (while cond ([x init update] ...) body).
  };

  Kind K = Kind::Num;
  double Num = 0.0;
  std::string Name; ///< Var/Const name, or operator symbol for Op.
  std::vector<ExprPtr> Args;
  std::vector<std::string> Binds; ///< Let/While bound names.
  std::vector<ExprPtr> Inits;     ///< Let/While initial values.
  std::vector<ExprPtr> Updates;   ///< While update expressions.
  bool Sequential = false;        ///< let* / while*.

  static ExprPtr num(double X);
  static ExprPtr var(std::string Name);
  static ExprPtr op(std::string Name, std::vector<ExprPtr> Args);

  ExprPtr clone() const;
  std::string print() const;

  /// Number of operator applications in the tree.
  unsigned opCount() const;

  /// Collects free variable names in first-use order into \p Out.
  void freeVars(std::vector<std::string> &Out) const;
};

/// A full FPCore: (FPCore (args...) :name ... :pre ... body).
struct Core {
  std::string Name;
  std::vector<std::string> Params;
  ExprPtr Pre; ///< May be null.
  ExprPtr Body;

  std::string print() const;
  Core clone() const;
};

/// Parse result: either a core or a diagnostic.
struct ParseResult {
  bool Ok = false;
  Core Value;
  std::string Error;
};

/// Parses one (FPCore ...) form.
ParseResult parse(const std::string &Text);

/// Parses a bare expression (used by tests and the improver).
ExprPtr parseExpr(const std::string &Text, std::string &Error);

/// A per-variable sampling interval extracted from a precondition.
struct VarRange {
  double Lo = -1e9;
  double Hi = 1e9;
};

/// Extracts simple per-variable ranges from a :pre conjunction of
/// comparisons like (<= 0 x 1), (< x 10), (>= x 0). Variables without
/// usable constraints get the default range.
std::vector<VarRange> sampleRanges(const Core &C);

} // namespace fpcore
} // namespace herbgrind

#endif // HERBGRIND_FPCORE_FPCORE_H
