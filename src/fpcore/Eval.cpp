//===- fpcore/Eval.cpp - Direct FPCore evaluation --------------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "fpcore/Eval.h"

#include "real/RealMath.h"
#include "support/FloatBits.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace herbgrind;
using namespace herbgrind::fpcore;

//===----------------------------------------------------------------------===//
// Double evaluation
//===----------------------------------------------------------------------===//

static bool evalBoolDouble(const Expr &E, const DoubleEnv &Env,
                           uint64_t MaxLoopIters);

/// Applies operator \p N to \p Arity pre-evaluated operand values. The
/// one dispatch shared by evalDouble and evalDoubleBatch, so the scalar
/// and batched paths cannot drift apart numerically. Every operator
/// consumes each operand exactly once in argument order, so strict
/// pre-evaluation matches the recursive evaluation bit for bit.
static double applyDoubleOp(const std::string &N, const double *V,
                            size_t Arity) {
  if (N == "+" && Arity >= 2) {
    double Acc = V[0];
    for (size_t I = 1; I < Arity; ++I)
      Acc += V[I];
    return Acc;
  }
  if (N == "-" && Arity == 1)
    return -V[0];
  if (N == "-" && Arity >= 2) {
    double Acc = V[0];
    for (size_t I = 1; I < Arity; ++I)
      Acc -= V[I];
    return Acc;
  }
  if (N == "*" && Arity >= 2) {
    double Acc = V[0];
    for (size_t I = 1; I < Arity; ++I)
      Acc *= V[I];
    return Acc;
  }
  if (N == "/")
    return V[0] / V[1];
  if (N == "sqrt")
    return std::sqrt(V[0]);
  if (N == "fabs")
    return std::fabs(V[0]);
  if (N == "fmin")
    return std::fmin(V[0], V[1]);
  if (N == "fmax")
    return std::fmax(V[0], V[1]);
  if (N == "fma")
    return std::fma(V[0], V[1], V[2]);
  if (N == "copysign")
    return std::copysign(V[0], V[1]);
  if (N == "exp")
    return std::exp(V[0]);
  if (N == "exp2")
    return std::exp2(V[0]);
  if (N == "expm1")
    return std::expm1(V[0]);
  if (N == "log")
    return std::log(V[0]);
  if (N == "log2")
    return std::log2(V[0]);
  if (N == "log10")
    return std::log10(V[0]);
  if (N == "log1p")
    return std::log1p(V[0]);
  if (N == "sin")
    return std::sin(V[0]);
  if (N == "cos")
    return std::cos(V[0]);
  if (N == "tan")
    return std::tan(V[0]);
  if (N == "asin")
    return std::asin(V[0]);
  if (N == "acos")
    return std::acos(V[0]);
  if (N == "atan")
    return std::atan(V[0]);
  if (N == "atan2")
    return std::atan2(V[0], V[1]);
  if (N == "sinh")
    return std::sinh(V[0]);
  if (N == "cosh")
    return std::cosh(V[0]);
  if (N == "tanh")
    return std::tanh(V[0]);
  if (N == "pow")
    return std::pow(V[0], V[1]);
  if (N == "cbrt")
    return std::cbrt(V[0]);
  if (N == "hypot")
    return std::hypot(V[0], V[1]);
  if (N == "fmod")
    return std::fmod(V[0], V[1]);
  if (N == "floor")
    return std::floor(V[0]);
  if (N == "ceil")
    return std::ceil(V[0]);
  if (N == "round")
    return std::round(V[0]);
  if (N == "trunc")
    return std::trunc(V[0]);
  assert(false && "unsupported operator in double evaluation");
  return std::nan("");
}

double fpcore::evalDouble(const Expr &E, const DoubleEnv &Env,
                          uint64_t MaxLoopIters) {
  switch (E.K) {
  case Expr::Kind::Num:
    return E.Num;
  case Expr::Kind::Const:
    if (E.Name == "PI")
      return M_PI;
    if (E.Name == "E")
      return M_E;
    if (E.Name == "LN2")
      return M_LN2;
    if (E.Name == "LOG2E")
      return M_LOG2E;
    if (E.Name == "INFINITY")
      return HUGE_VAL;
    return std::nan("");
  case Expr::Kind::Var: {
    auto It = Env.find(E.Name);
    assert(It != Env.end() && "unbound variable");
    return It->second;
  }
  case Expr::Kind::If:
    return evalBoolDouble(*E.Args[0], Env, MaxLoopIters)
               ? evalDouble(*E.Args[1], Env, MaxLoopIters)
               : evalDouble(*E.Args[2], Env, MaxLoopIters);
  case Expr::Kind::Let: {
    DoubleEnv Inner = Env;
    if (E.Sequential) {
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = evalDouble(*E.Inits[I], Inner, MaxLoopIters);
    } else {
      std::vector<double> Vals;
      for (const ExprPtr &Init : E.Inits)
        Vals.push_back(evalDouble(*Init, Env, MaxLoopIters));
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = Vals[I];
    }
    return evalDouble(*E.Args[0], Inner, MaxLoopIters);
  }
  case Expr::Kind::While: {
    DoubleEnv Inner = Env;
    if (E.Sequential) {
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = evalDouble(*E.Inits[I], Inner, MaxLoopIters);
    } else {
      std::vector<double> Vals;
      for (const ExprPtr &Init : E.Inits)
        Vals.push_back(evalDouble(*Init, Env, MaxLoopIters));
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = Vals[I];
    }
    uint64_t Iters = 0;
    while (evalBoolDouble(*E.Args[0], Inner, MaxLoopIters)) {
      if (++Iters > MaxLoopIters)
        return std::nan("");
      if (E.Sequential) {
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] = evalDouble(*E.Updates[I], Inner, MaxLoopIters);
      } else {
        std::vector<double> News;
        for (const ExprPtr &U : E.Updates)
          News.push_back(evalDouble(*U, Inner, MaxLoopIters));
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] = News[I];
      }
    }
    return evalDouble(*E.Args[1], Inner, MaxLoopIters);
  }
  case Expr::Kind::Op:
    break;
  }

  double Vals[8];
  std::vector<double> Heap;
  size_t Arity = E.Args.size();
  double *V = Vals;
  if (Arity > 8) {
    Heap.resize(Arity);
    V = Heap.data();
  }
  for (size_t I = 0; I < Arity; ++I)
    V[I] = evalDouble(*E.Args[I], Env, MaxLoopIters);
  return applyDoubleOp(E.Name, V, Arity);
}

void fpcore::evalDoubleBatch(const Expr &E, const DoubleEnv *Envs,
                             size_t NumLanes, double *Out,
                             uint64_t MaxLoopIters) {
  if (NumLanes == 0)
    return;
  switch (E.K) {
  case Expr::Kind::Num:
  case Expr::Kind::Const: {
    // Lane-invariant leaves (no variable reads): evaluate once against
    // the first environment and broadcast.
    std::fill_n(Out, NumLanes, evalDouble(E, Envs[0], MaxLoopIters));
    return;
  }
  case Expr::Kind::Var:
    for (size_t L = 0; L < NumLanes; ++L) {
      auto It = Envs[L].find(E.Name);
      assert(It != Envs[L].end() && "unbound variable");
      Out[L] = It->second;
    }
    return;
  case Expr::Kind::If:
  case Expr::Kind::Let:
  case Expr::Kind::While:
    // Control flow and bindings can diverge per lane; run the whole
    // subtree scalar per lane (bit-identical by construction -- it is
    // exactly the code path evalDouble takes).
    for (size_t L = 0; L < NumLanes; ++L)
      Out[L] = evalDouble(E, Envs[L], MaxLoopIters);
    return;
  case Expr::Kind::Op:
    break;
  }

  // One contiguous argument matrix per Op node -- argument I's lanes at
  // Scratch[I * NumLanes ..] -- then one gather + dispatch per lane.
  size_t Arity = E.Args.size();
  std::vector<double> Scratch(Arity * NumLanes);
  for (size_t I = 0; I < Arity; ++I)
    evalDoubleBatch(*E.Args[I], Envs, NumLanes, Scratch.data() + I * NumLanes,
                    MaxLoopIters);
  std::vector<double> V(Arity);
  for (size_t L = 0; L < NumLanes; ++L) {
    for (size_t I = 0; I < Arity; ++I)
      V[I] = Scratch[I * NumLanes + L];
    Out[L] = applyDoubleOp(E.Name, V.data(), Arity);
  }
}

static bool evalBoolDouble(const Expr &E, const DoubleEnv &Env,
                           uint64_t MaxLoopIters) {
  if (E.K == Expr::Kind::Const)
    return E.Name == "TRUE";
  assert(E.K == Expr::Kind::Op && "boolean context needs an operator");
  const std::string &N = E.Name;
  if (N == "and") {
    for (const ExprPtr &Arg : E.Args)
      if (!evalBoolDouble(*Arg, Env, MaxLoopIters))
        return false;
    return true;
  }
  if (N == "or") {
    for (const ExprPtr &Arg : E.Args)
      if (evalBoolDouble(*Arg, Env, MaxLoopIters))
        return true;
    return false;
  }
  if (N == "not")
    return !evalBoolDouble(*E.Args[0], Env, MaxLoopIters);
  // Chained comparison.
  std::vector<double> Vals;
  for (const ExprPtr &Arg : E.Args)
    Vals.push_back(evalDouble(*Arg, Env, MaxLoopIters));
  for (size_t I = 0; I + 1 < Vals.size(); ++I) {
    double L = Vals[I], R = Vals[I + 1];
    bool Ok = N == "<"    ? L < R
              : N == "<=" ? L <= R
              : N == ">"  ? L > R
              : N == ">=" ? L >= R
              : N == "==" ? L == R
              : N == "!=" ? L != R
                          : false;
    if (!Ok)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Real evaluation
//===----------------------------------------------------------------------===//

static bool evalBoolReal(const Expr &E, const RealEnv &Env, size_t Prec,
                         uint64_t MaxLoopIters);

BigFloat fpcore::evalReal(const Expr &E, const RealEnv &Env, size_t PrecBits,
                          uint64_t MaxLoopIters) {
  switch (E.K) {
  case Expr::Kind::Num:
    return BigFloat::fromDouble(E.Num, PrecBits);
  case Expr::Kind::Const:
    if (E.Name == "PI")
      return realmath::pi(PrecBits);
    if (E.Name == "E")
      return realmath::eulerE(PrecBits);
    if (E.Name == "LN2")
      return realmath::ln2(PrecBits);
    if (E.Name == "LOG2E")
      return BigFloat::div(BigFloat::fromInt64(1, PrecBits),
                           realmath::ln2(PrecBits));
    if (E.Name == "INFINITY")
      return BigFloat::inf(false);
    return BigFloat::nan();
  case Expr::Kind::Var: {
    auto It = Env.find(E.Name);
    assert(It != Env.end() && "unbound variable");
    return It->second.withPrecision(PrecBits);
  }
  case Expr::Kind::If:
    return evalBoolReal(*E.Args[0], Env, PrecBits, MaxLoopIters)
               ? evalReal(*E.Args[1], Env, PrecBits, MaxLoopIters)
               : evalReal(*E.Args[2], Env, PrecBits, MaxLoopIters);
  case Expr::Kind::Let: {
    RealEnv Inner = Env;
    if (E.Sequential) {
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] =
            evalReal(*E.Inits[I], Inner, PrecBits, MaxLoopIters);
    } else {
      std::vector<BigFloat> Vals;
      for (const ExprPtr &Init : E.Inits)
        Vals.push_back(evalReal(*Init, Env, PrecBits, MaxLoopIters));
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = Vals[I];
    }
    return evalReal(*E.Args[0], Inner, PrecBits, MaxLoopIters);
  }
  case Expr::Kind::While: {
    RealEnv Inner = Env;
    if (E.Sequential) {
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] =
            evalReal(*E.Inits[I], Inner, PrecBits, MaxLoopIters);
    } else {
      std::vector<BigFloat> Vals;
      for (const ExprPtr &Init : E.Inits)
        Vals.push_back(evalReal(*Init, Env, PrecBits, MaxLoopIters));
      for (size_t I = 0; I < E.Binds.size(); ++I)
        Inner[E.Binds[I]] = Vals[I];
    }
    uint64_t Iters = 0;
    while (evalBoolReal(*E.Args[0], Inner, PrecBits, MaxLoopIters)) {
      if (++Iters > MaxLoopIters)
        return BigFloat::nan();
      if (E.Sequential) {
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] =
              evalReal(*E.Updates[I], Inner, PrecBits, MaxLoopIters);
      } else {
        std::vector<BigFloat> News;
        for (const ExprPtr &U : E.Updates)
          News.push_back(evalReal(*U, Inner, PrecBits, MaxLoopIters));
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] = News[I];
      }
    }
    return evalReal(*E.Args[1], Inner, PrecBits, MaxLoopIters);
  }
  case Expr::Kind::Op:
    break;
  }

  auto A = [&](size_t I) {
    return evalReal(*E.Args[I], Env, PrecBits, MaxLoopIters);
  };
  const std::string &N = E.Name;
  size_t Arity = E.Args.size();
  if (N == "+" && Arity >= 2) {
    BigFloat Acc = A(0);
    for (size_t I = 1; I < Arity; ++I)
      BigFloat::addInto(Acc, Acc, A(I));
    return Acc;
  }
  if (N == "-" && Arity == 1)
    return A(0).negated();
  if (N == "-" && Arity >= 2) {
    BigFloat Acc = A(0);
    for (size_t I = 1; I < Arity; ++I)
      BigFloat::subInto(Acc, Acc, A(I));
    return Acc;
  }
  if (N == "*" && Arity >= 2) {
    BigFloat Acc = A(0);
    for (size_t I = 1; I < Arity; ++I)
      BigFloat::mulInto(Acc, Acc, A(I));
    return Acc;
  }
  if (N == "/")
    return BigFloat::div(A(0), A(1));
  if (N == "sqrt")
    return BigFloat::sqrt(A(0));
  if (N == "fabs")
    return A(0).abs();
  if (N == "fmin")
    return BigFloat::fmin(A(0), A(1));
  if (N == "fmax")
    return BigFloat::fmax(A(0), A(1));
  if (N == "fma")
    return BigFloat::fma(A(0), A(1), A(2));
  if (N == "copysign")
    return A(0).copySign(A(1));
  if (N == "exp")
    return realmath::exp(A(0));
  if (N == "exp2")
    return realmath::exp2(A(0));
  if (N == "expm1")
    return realmath::expm1(A(0));
  if (N == "log")
    return realmath::log(A(0));
  if (N == "log2")
    return realmath::log2(A(0));
  if (N == "log10")
    return realmath::log10(A(0));
  if (N == "log1p")
    return realmath::log1p(A(0));
  if (N == "sin")
    return realmath::sin(A(0));
  if (N == "cos")
    return realmath::cos(A(0));
  if (N == "tan")
    return realmath::tan(A(0));
  if (N == "asin")
    return realmath::asin(A(0));
  if (N == "acos")
    return realmath::acos(A(0));
  if (N == "atan")
    return realmath::atan(A(0));
  if (N == "atan2")
    return realmath::atan2(A(0), A(1));
  if (N == "sinh")
    return realmath::sinh(A(0));
  if (N == "cosh")
    return realmath::cosh(A(0));
  if (N == "tanh")
    return realmath::tanh(A(0));
  if (N == "pow")
    return realmath::pow(A(0), A(1));
  if (N == "cbrt")
    return realmath::cbrt(A(0));
  if (N == "hypot")
    return realmath::hypot(A(0), A(1));
  if (N == "fmod")
    return realmath::fmod(A(0), A(1));
  if (N == "floor")
    return A(0).floor();
  if (N == "ceil")
    return A(0).ceil();
  if (N == "round")
    return A(0).roundNearest();
  if (N == "trunc")
    return A(0).trunc();
  assert(false && "unsupported operator in real evaluation");
  return BigFloat::nan();
}

static bool evalBoolReal(const Expr &E, const RealEnv &Env, size_t Prec,
                         uint64_t MaxLoopIters) {
  if (E.K == Expr::Kind::Const)
    return E.Name == "TRUE";
  assert(E.K == Expr::Kind::Op && "boolean context needs an operator");
  const std::string &N = E.Name;
  if (N == "and") {
    for (const ExprPtr &Arg : E.Args)
      if (!evalBoolReal(*Arg, Env, Prec, MaxLoopIters))
        return false;
    return true;
  }
  if (N == "or") {
    for (const ExprPtr &Arg : E.Args)
      if (evalBoolReal(*Arg, Env, Prec, MaxLoopIters))
        return true;
    return false;
  }
  if (N == "not")
    return !evalBoolReal(*E.Args[0], Env, Prec, MaxLoopIters);
  std::vector<BigFloat> Vals;
  for (const ExprPtr &Arg : E.Args)
    Vals.push_back(evalReal(*Arg, Env, Prec, MaxLoopIters));
  for (size_t I = 0; I + 1 < Vals.size(); ++I) {
    const BigFloat &L = Vals[I];
    const BigFloat &R = Vals[I + 1];
    bool Ok = N == "<"    ? BigFloat::lt(L, R)
              : N == "<=" ? BigFloat::le(L, R)
              : N == ">"  ? BigFloat::gt(L, R)
              : N == ">=" ? BigFloat::ge(L, R)
              : N == "==" ? BigFloat::eq(L, R)
              : N == "!=" ? BigFloat::ne(L, R)
                          : false;
    if (!Ok)
      return false;
  }
  return true;
}

double fpcore::pointErrorBits(const Expr &E, const DoubleEnv &Point,
                              size_t PrecBits) {
  double F = evalDouble(E, Point);
  RealEnv RE;
  for (const auto &[Name, V] : Point)
    RE.emplace(Name, BigFloat::fromDouble(V, PrecBits));
  BigFloat R = evalReal(E, RE, PrecBits);
  double RD = R.toDouble();
  bool FNaN = std::isnan(F);
  bool RNaN = std::isnan(RD);
  if (FNaN && RNaN)
    return 0.0;
  if (FNaN || RNaN)
    return 64.0;
  return bitsOfErrorDouble(F, RD);
}
