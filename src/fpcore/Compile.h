//===- fpcore/Compile.h - FPCore -> abstract machine compiler ---*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles FPCore cores to abstract-machine programs (the role the
/// FPCore-to-C compiler plus gcc play in the paper's methodology,
/// Section 8.1). Parameters become program inputs, the body's value is
/// emitted through an Out statement, and while loops lower to branches
/// over mutable temps. Each emitted operation gets a source location of
/// the form "<benchmark>.fpcore:<n>" so reports stay readable.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_FPCORE_COMPILE_H
#define HERBGRIND_FPCORE_COMPILE_H

#include "fpcore/FPCore.h"
#include "ir/Program.h"

#include <map>
#include <memory>
#include <mutex>

namespace herbgrind {
namespace fpcore {

/// Compiles a core; the result is validated. Unsupported operators fail
/// the surrounding parse step, so this asserts on well-formed input only.
Program compile(const Core &C);

/// True if every operator in the core is supported by the compiler.
bool isCompilable(const Core &C, std::string *WhyNot = nullptr);

/// A thread-safe compiled-program cache keyed by FPCore identity (the
/// printed core, which is canonical for parsed cores). Batch-engine
/// workers analyzing many shards of the same benchmark compile it once
/// and share the result; compiled programs are immutable, so concurrent
/// readers need no further synchronization. Cached references stay valid
/// for the cache's lifetime.
class ProgramCache {
public:
  const Program &get(const Core &C);

  size_t hits() const;
  size_t misses() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Program>> Programs;
  size_t Hits = 0;
  size_t Misses = 0;
};

} // namespace fpcore
} // namespace herbgrind

#endif // HERBGRIND_FPCORE_COMPILE_H
