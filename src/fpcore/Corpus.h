//===- fpcore/Corpus.h - The embedded FPBench-style corpus ------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 86-benchmark FPCore corpus driving every Section 8 experiment. The
/// benchmarks mirror the FPBench suite the paper uses: the Hamming "NMSE"
/// problems, the Rosa/Daisy verification kernels, Herbie's examples, and a
/// few loop-bearing control benchmarks. Each entry carries a :pre
/// precondition which the experiment drivers turn into sampling ranges.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_FPCORE_CORPUS_H
#define HERBGRIND_FPCORE_CORPUS_H

#include "fpcore/FPCore.h"

#include <vector>

namespace herbgrind {
namespace fpcore {

/// The raw FPCore sources.
const std::vector<std::string> &corpusSources();

/// The parsed corpus (parsed once, cached). Every entry parses and
/// compiles; the test suite enforces this.
const std::vector<Core> &corpus();

/// Fresh clones of every compilable corpus benchmark: the default sweep
/// selection shared by Engine::runCorpus and the batch CLI.
std::vector<Core> compilableCorpus();

} // namespace fpcore
} // namespace herbgrind

#endif // HERBGRIND_FPCORE_CORPUS_H
