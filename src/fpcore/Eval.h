//===- fpcore/Eval.h - Direct FPCore evaluation -----------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct evaluation of FPCore expressions in double arithmetic and in
/// high-precision real arithmetic. This pair is what the improver (the
/// mini-Herbie of Section 8.1) uses to estimate the rounding error of an
/// expression: sample points, evaluate both ways, compare in bits.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_FPCORE_EVAL_H
#define HERBGRIND_FPCORE_EVAL_H

#include "fpcore/FPCore.h"
#include "real/BigFloat.h"

#include <map>

namespace herbgrind {
namespace fpcore {

using DoubleEnv = std::map<std::string, double>;
using RealEnv = std::map<std::string, BigFloat>;

/// Evaluates in doubles (the "float" semantics). While loops are bounded
/// by \p MaxLoopIters; exceeding it yields NaN.
double evalDouble(const Expr &E, const DoubleEnv &Env,
                  uint64_t MaxLoopIters = 1'000'000);

/// Evaluates \p E over \p NumLanes sample environments at once, writing
/// lane L's result to Out[L]. Results are bit-identical to NumLanes
/// sequential evalDouble calls: arithmetic nodes evaluate lane-by-lane
/// over contiguous per-node scratch (one operator dispatch per node
/// instead of one per node per point), while If/Let/While subtrees --
/// whose control flow or bindings can diverge per lane -- fall back to
/// scalar evaluation of that subtree per lane.
void evalDoubleBatch(const Expr &E, const DoubleEnv *Envs, size_t NumLanes,
                     double *Out, uint64_t MaxLoopIters = 1'000'000);

/// Evaluates over BigFloat reals at \p PrecBits.
BigFloat evalReal(const Expr &E, const RealEnv &Env, size_t PrecBits = 256,
                  uint64_t MaxLoopIters = 1'000'000);

/// Bits of error of the double evaluation against the real evaluation at
/// one point (64 when the double result is NaN but the real is not).
double pointErrorBits(const Expr &E, const DoubleEnv &Point,
                      size_t PrecBits = 256);

} // namespace fpcore
} // namespace herbgrind

#endif // HERBGRIND_FPCORE_EVAL_H
