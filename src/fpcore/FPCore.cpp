//===- fpcore/FPCore.cpp - FPCore AST, parser, printer --------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "fpcore/FPCore.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace herbgrind;
using namespace herbgrind::fpcore;

//===----------------------------------------------------------------------===//
// AST
//===----------------------------------------------------------------------===//

ExprPtr Expr::num(double X) {
  auto E = std::make_unique<Expr>();
  E->K = Kind::Num;
  E->Num = X;
  return E;
}

ExprPtr Expr::var(std::string Name) {
  auto E = std::make_unique<Expr>();
  E->K = Kind::Var;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::op(std::string Name, std::vector<ExprPtr> Args) {
  auto E = std::make_unique<Expr>();
  E->K = Kind::Op;
  E->Name = std::move(Name);
  E->Args = std::move(Args);
  return E;
}

ExprPtr Expr::clone() const {
  auto E = std::make_unique<Expr>();
  E->K = K;
  E->Num = Num;
  E->Name = Name;
  E->Binds = Binds;
  E->Sequential = Sequential;
  for (const ExprPtr &A : Args)
    E->Args.push_back(A->clone());
  for (const ExprPtr &A : Inits)
    E->Inits.push_back(A->clone());
  for (const ExprPtr &A : Updates)
    E->Updates.push_back(A->clone());
  return E;
}

unsigned Expr::opCount() const {
  unsigned N = K == Kind::Op ? 1 : 0;
  for (const ExprPtr &A : Args)
    N += A->opCount();
  for (const ExprPtr &A : Inits)
    N += A->opCount();
  for (const ExprPtr &A : Updates)
    N += A->opCount();
  return N;
}

void Expr::freeVars(std::vector<std::string> &Out) const {
  auto Add = [&Out](const std::string &Name) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
  };
  switch (K) {
  case Kind::Var:
    Add(Name);
    return;
  case Kind::Num:
  case Kind::Const:
    return;
  case Kind::Op:
  case Kind::If:
    for (const ExprPtr &A : Args)
      A->freeVars(Out);
    return;
  case Kind::Let:
  case Kind::While: {
    for (const ExprPtr &A : Inits)
      A->freeVars(Out);
    // Bound names shadow; collect body/update vars then drop bound ones.
    std::vector<std::string> Inner;
    for (const ExprPtr &A : Updates)
      A->freeVars(Inner);
    for (const ExprPtr &A : Args)
      A->freeVars(Inner);
    for (const std::string &V : Inner)
      if (std::find(Binds.begin(), Binds.end(), V) == Binds.end())
        Add(V);
    return;
  }
  }
}

std::string Expr::print() const {
  switch (K) {
  case Kind::Num:
    return formatDoubleShortest(Num);
  case Kind::Const:
  case Kind::Var:
    return Name;
  case Kind::Op: {
    std::string S = "(" + Name;
    for (const ExprPtr &A : Args)
      S += " " + A->print();
    return S + ")";
  }
  case Kind::If:
    return "(if " + Args[0]->print() + " " + Args[1]->print() + " " +
           Args[2]->print() + ")";
  case Kind::Let: {
    std::string S = Sequential ? "(let* (" : "(let (";
    for (size_t I = 0; I < Binds.size(); ++I) {
      if (I)
        S += " ";
      S += "[" + Binds[I] + " " + Inits[I]->print() + "]";
    }
    return S + ") " + Args[0]->print() + ")";
  }
  case Kind::While: {
    std::string S = Sequential ? "(while* " : "(while ";
    S += Args[0]->print() + " (";
    for (size_t I = 0; I < Binds.size(); ++I) {
      if (I)
        S += " ";
      S += "[" + Binds[I] + " " + Inits[I]->print() + " " +
           Updates[I]->print() + "]";
    }
    return S + ") " + Args[1]->print() + ")";
  }
  }
  return "?";
}

std::string Core::print() const {
  std::string S = "(FPCore (" + join(Params, " ") + ")";
  if (!Name.empty())
    S += "\n  :name \"" + Name + "\"";
  if (Pre)
    S += "\n  :pre " + Pre->print();
  return S + "\n  " + Body->print() + ")";
}

Core Core::clone() const {
  Core C;
  C.Name = Name;
  C.Params = Params;
  C.Pre = Pre ? Pre->clone() : nullptr;
  C.Body = Body->clone();
  return C;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Minimal S-expression tokenizer/recursive-descent parser.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::string Error;

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  /// Reads one token: "(", ")", "[", "]", or an atom.
  std::string next() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return "";
    }
    char C = Text[Pos];
    if (C == '(' || C == ')' || C == '[' || C == ']') {
      ++Pos;
      return std::string(1, C);
    }
    if (C == '"') {
      size_t Start = ++Pos;
      while (Pos < Text.size() && Text[Pos] != '"')
        ++Pos;
      std::string S = Text.substr(Start, Pos - Start);
      if (Pos < Text.size())
        ++Pos;
      return "\"" + S + "\"";
    }
    size_t Start = Pos;
    while (Pos < Text.size() && !isspace(Text[Pos]) && Text[Pos] != '(' &&
           Text[Pos] != ')' && Text[Pos] != '[' && Text[Pos] != ']')
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  std::string peek() {
    size_t Save = Pos;
    std::string T = next();
    Pos = Save;
    return T;
  }

  bool expect(const std::string &Tok) {
    std::string Got = next();
    if (Got != Tok) {
      fail("expected '" + Tok + "', got '" + Got + "'");
      return false;
    }
    return true;
  }

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  ExprPtr parseExpr();

private:
  void skipSpace() {
    while (Pos < Text.size()) {
      if (isspace(Text[Pos])) {
        ++Pos;
      } else if (Text[Pos] == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

bool isNumber(const std::string &Tok, double &Out) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  if (End == Tok.c_str() + Tok.size())
    return true;
  // FPCore rationals: "1/3".
  size_t Slash = Tok.find('/');
  if (Slash != std::string::npos && Slash > 0) {
    char *E1 = nullptr;
    char *E2 = nullptr;
    // The numerator string must outlive E1, which points into its buffer.
    std::string Num = Tok.substr(0, Slash);
    double N = std::strtod(Num.c_str(), &E1);
    std::string Den = Tok.substr(Slash + 1);
    double D = std::strtod(Den.c_str(), &E2);
    if (E1 == Num.c_str() + Num.size() && E2 == Den.c_str() + Den.size() &&
        D != 0) {
      Out = N / D;
      return true;
    }
  }
  return false;
}

bool isConstName(const std::string &Tok) {
  return Tok == "PI" || Tok == "E" || Tok == "INFINITY" || Tok == "NAN" ||
         Tok == "TRUE" || Tok == "FALSE" || Tok == "LN2" || Tok == "LOG2E";
}

ExprPtr Parser::parseExpr() {
  std::string Tok = next();
  if (!Error.empty())
    return nullptr;
  double Num;
  if (isNumber(Tok, Num))
    return Expr::num(Num);
  if (Tok != "(") {
    if (Tok == ")" || Tok == "[" || Tok == "]") {
      fail("unexpected '" + Tok + "'");
      return nullptr;
    }
    if (isConstName(Tok)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Const;
      E->Name = Tok;
      return E;
    }
    return Expr::var(Tok);
  }

  std::string Head = next();
  if (Head == "if") {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::If;
    E->Args.push_back(parseExpr());
    E->Args.push_back(parseExpr());
    E->Args.push_back(parseExpr());
    if (!expect(")"))
      return nullptr;
    return E;
  }
  if (Head == "let" || Head == "let*") {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Let;
    E->Sequential = Head == "let*";
    if (!expect("("))
      return nullptr;
    while (peek() == "[") {
      expect("[");
      E->Binds.push_back(next());
      E->Inits.push_back(parseExpr());
      if (!expect("]"))
        return nullptr;
    }
    if (!expect(")"))
      return nullptr;
    E->Args.push_back(parseExpr()); // body
    if (!expect(")"))
      return nullptr;
    return E;
  }
  if (Head == "while" || Head == "while*") {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::While;
    E->Sequential = Head == "while*";
    E->Args.push_back(parseExpr()); // condition
    if (!expect("("))
      return nullptr;
    while (peek() == "[") {
      expect("[");
      E->Binds.push_back(next());
      E->Inits.push_back(parseExpr());
      E->Updates.push_back(parseExpr());
      if (!expect("]"))
        return nullptr;
    }
    if (!expect(")"))
      return nullptr;
    E->Args.push_back(parseExpr()); // body
    if (!expect(")"))
      return nullptr;
    return E;
  }

  // Plain operator application.
  auto E = std::make_unique<Expr>();
  E->K = Expr::Kind::Op;
  E->Name = Head;
  while (Error.empty() && peek() != ")")
    E->Args.push_back(parseExpr());
  if (!expect(")"))
    return nullptr;
  return E;
}

} // namespace

ParseResult fpcore::parse(const std::string &Text) {
  ParseResult R;
  Parser P(Text);
  if (!P.expect("(") || P.next() != "FPCore") {
    R.Error = P.Error.empty() ? "not an FPCore form" : P.Error;
    return R;
  }
  if (!P.expect("(")) {
    R.Error = P.Error;
    return R;
  }
  while (P.peek() != ")" && P.Error.empty())
    R.Value.Params.push_back(P.next());
  P.expect(")");
  // Properties, then the body.
  while (P.Error.empty()) {
    std::string Tok = P.peek();
    if (Tok == ":name") {
      P.next();
      std::string Name = P.next();
      if (Name.size() >= 2 && Name.front() == '"')
        Name = Name.substr(1, Name.size() - 2);
      R.Value.Name = Name;
    } else if (Tok == ":pre") {
      P.next();
      R.Value.Pre = P.parseExpr();
    } else if (!Tok.empty() && Tok[0] == ':') {
      // Unknown property: skip its single-expression value.
      P.next();
      P.parseExpr();
    } else {
      break;
    }
  }
  R.Value.Body = P.parseExpr();
  P.expect(")");
  if (!P.Error.empty()) {
    R.Error = P.Error;
    return R;
  }
  if (!R.Value.Body) {
    R.Error = "missing body";
    return R;
  }
  R.Ok = true;
  return R;
}

ExprPtr fpcore::parseExpr(const std::string &Text, std::string &Error) {
  Parser P(Text);
  ExprPtr E = P.parseExpr();
  Error = P.Error;
  return Error.empty() ? std::move(E) : nullptr;
}

//===----------------------------------------------------------------------===//
// Precondition ranges
//===----------------------------------------------------------------------===//

/// Folds one comparison clause into the range table.
static void foldClause(const Expr &E,
                       const std::vector<std::string> &Params,
                       std::vector<VarRange> &Ranges) {
  auto IndexOf = [&](const Expr &V) -> int {
    if (V.K != Expr::Kind::Var)
      return -1;
    for (size_t I = 0; I < Params.size(); ++I)
      if (Params[I] == V.Name)
        return static_cast<int>(I);
    return -1;
  };
  auto NumOf = [](const Expr &V, double &Out) {
    if (V.K == Expr::Kind::Num) {
      Out = V.Num;
      return true;
    }
    if (V.K == Expr::Kind::Const && V.Name == "PI") {
      Out = 3.141592653589793;
      return true;
    }
    // (- c) for a literal c.
    if (V.K == Expr::Kind::Op && V.Name == "-" && V.Args.size() == 1 &&
        V.Args[0]->K == Expr::Kind::Num) {
      Out = -V.Args[0]->Num;
      return true;
    }
    return false;
  };

  if (E.K != Expr::Kind::Op)
    return;
  if (E.Name == "and") {
    for (const ExprPtr &A : E.Args)
      foldClause(*A, Params, Ranges);
    return;
  }
  bool Le = E.Name == "<=" || E.Name == "<";
  bool Ge = E.Name == ">=" || E.Name == ">";
  if (!Le && !Ge)
    return;
  // Chained comparisons: (<= a b c ...): fold each adjacent pair.
  for (size_t I = 0; I + 1 < E.Args.size(); ++I) {
    const Expr &L = *E.Args[I];
    const Expr &R = *E.Args[I + 1];
    double Bound;
    int Var;
    if ((Var = IndexOf(R)) >= 0 && NumOf(L, Bound)) {
      // bound <= x  (or bound >= x).
      if (Le)
        Ranges[Var].Lo = std::max(Ranges[Var].Lo, Bound);
      else
        Ranges[Var].Hi = std::min(Ranges[Var].Hi, Bound);
    } else if ((Var = IndexOf(L)) >= 0 && NumOf(R, Bound)) {
      if (Le)
        Ranges[Var].Hi = std::min(Ranges[Var].Hi, Bound);
      else
        Ranges[Var].Lo = std::max(Ranges[Var].Lo, Bound);
    }
  }
}

std::vector<VarRange> fpcore::sampleRanges(const Core &C) {
  std::vector<VarRange> Ranges(C.Params.size());
  if (C.Pre)
    foldClause(*C.Pre, C.Params, Ranges);
  for (VarRange &R : Ranges)
    if (R.Lo > R.Hi)
      std::swap(R.Lo, R.Hi);
  return Ranges;
}
