//===- fpcore/Corpus.cpp - The embedded FPBench-style corpus --------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "fpcore/Corpus.h"

#include "fpcore/Compile.h"

#include <cassert>

using namespace herbgrind;
using namespace herbgrind::fpcore;

// Benchmarks 1-30: Hamming "Numerical Methods for Scientists and
// Engineers" NMSE problems and examples (the backbone of the FPBench
// general suite). 31-50: Rosa/Daisy verification kernels. 51-70: Herbie
// and FPBench miscellanea. 71-80: textbook cancellation kernels. 81-86:
// loop-bearing control benchmarks.
static const char *CorpusSources[] = {
    // --- Hamming NMSE -----------------------------------------------------
    R"((FPCore (x) :name "NMSE example 3.1" :pre (<= 0 x 1e9)
        (- (sqrt (+ x 1)) (sqrt x))))",
    R"((FPCore (x eps) :name "NMSE example 3.3"
        :pre (and (<= 0.1 x 10) (<= 1e-14 eps 1e-8))
        (- (sin (+ x eps)) (sin x))))",
    R"((FPCore (x) :name "NMSE example 3.4" :pre (<= 1e-9 x 1)
        (/ (- 1 (cos x)) (sin x))))",
    R"((FPCore (N) :name "NMSE example 3.5" :pre (<= 1 N 1e6)
        (- (atan (+ N 1)) (atan N))))",
    R"((FPCore (x) :name "NMSE example 3.6" :pre (<= 0.5 x 1e8)
        (- (/ 1 (sqrt x)) (/ 1 (sqrt (+ x 1))))))",
    R"((FPCore (x) :name "NMSE example 3.7" :pre (<= -1e-5 x 1e-5)
        (- (exp x) 1)))",
    R"((FPCore (N) :name "NMSE example 3.8" :pre (<= 1 N 1e6)
        (- (- (* (+ N 1) (log (+ N 1))) (* N (log N))) 1)))",
    R"((FPCore (x) :name "NMSE example 3.9" :pre (<= 1e-9 x 1e-3)
        (- (/ 1 x) (/ (cos x) (sin x)))))",
    R"((FPCore (x) :name "NMSE example 3.10" :pre (<= -0.1 x 0.1)
        (/ (log (- 1 x)) (log (+ 1 x)))))",
    R"((FPCore (x) :name "NMSE problem 3.3.1" :pre (<= 1 x 1e8)
        (- (/ 1 (+ x 1)) (/ 1 x))))",
    R"((FPCore (x eps) :name "NMSE problem 3.3.2"
        :pre (and (<= 0.1 x 1) (<= 1e-14 eps 1e-9))
        (- (tan (+ x eps)) (tan x))))",
    R"((FPCore (x) :name "NMSE problem 3.3.3" :pre (<= 2 x 1e6)
        (+ (- (/ 1 (+ x 1)) (/ 2 x)) (/ 1 (- x 1)))))",
    R"((FPCore (x) :name "NMSE problem 3.3.4" :pre (<= 1 x 1e9)
        (- (cbrt (+ x 1)) (cbrt x))))",
    R"((FPCore (x eps) :name "NMSE problem 3.3.5"
        :pre (and (<= 0.1 x 3) (<= 1e-14 eps 1e-9))
        (- (cos (+ x eps)) (cos x))))",
    R"((FPCore (N) :name "NMSE problem 3.3.6" :pre (<= 2 N 1e8)
        (- (log (+ N 1)) (log N))))",
    R"((FPCore (x) :name "NMSE problem 3.3.7" :pre (<= -1e-5 x 1e-5)
        (+ (- (exp x) 2) (exp (- x)))))",
    R"((FPCore (a b c) :name "NMSE p42, positive"
        :pre (and (<= 1 a 10) (<= 1e6 b 1e8) (<= 1 c 10))
        (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a))))",
    R"((FPCore (a b c) :name "NMSE p42, negative"
        :pre (and (<= 1 a 10) (<= 1e6 b 1e8) (<= 1 c 10))
        (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a))))",
    R"((FPCore (a b2 c) :name "NMSE problem 3.2.1, positive"
        :pre (and (<= 1 a 5) (<= 1e5 b2 1e7) (<= 1 c 5))
        (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a)))",
    R"((FPCore (a b2 c) :name "NMSE problem 3.2.1, negative"
        :pre (and (<= 1 a 5) (<= 1e5 b2 1e7) (<= 1 c 5))
        (/ (- (- b2) (sqrt (- (* b2 b2) (* a c)))) a)))",
    R"((FPCore (x) :name "NMSE problem 3.4.1" :pre (<= 1e-9 x 0.5)
        (/ (- 1 (cos x)) (* x x))))",
    R"((FPCore (a b eps) :name "NMSE problem 3.4.2"
        :pre (and (<= 1 a 5) (<= 1 b 5) (<= 1e-14 eps 1e-9))
        (/ (* eps (- (exp (* (+ a b) eps)) 1))
           (* (- (exp (* a eps)) 1) (- (exp (* b eps)) 1)))))",
    R"((FPCore (x) :name "NMSE problem 3.4.3" :pre (<= 1e-9 x 0.5)
        (log (/ (- 1 x) (+ 1 x)))))",
    R"((FPCore (x) :name "NMSE problem 3.4.4" :pre (<= 1e-9 x 0.7)
        (sqrt (/ (- (exp (* 2 x)) 1) (- (exp x) 1)))))",
    R"((FPCore (x) :name "NMSE problem 3.4.5" :pre (<= 1e-3 x 0.5)
        (/ (- x (sin x)) (- x (tan x)))))",
    R"((FPCore (x n) :name "NMSE problem 3.4.6"
        :pre (and (<= 1 x 1e6) (<= 2 n 30))
        (- (pow (+ x 1) (/ 1 n)) (pow x (/ 1 n)))))",
    R"((FPCore (x) :name "NMSE section 3.5" :pre (<= -1e-6 x 1e-6)
        (- (exp x) 1)))",
    R"((FPCore (x) :name "NMSE section 3.11" :pre (<= 1e-9 x 1e-5)
        (/ (exp x) (- (exp x) 1))))",
    R"((FPCore (x) :name "NMSE problem 3.1-inverse" :pre (<= 1 x 1e9)
        (- (sqrt x) (sqrt (- x 1)))))",
    R"((FPCore (N) :name "NMSE log-diff-scaled" :pre (<= 10 N 1e8)
        (* N (- (log (+ N 1)) (log N)))))",

    // --- Rosa / Daisy kernels ----------------------------------------------
    R"((FPCore (u v T) :name "doppler1"
        :pre (and (<= -100 u 100) (<= 20 v 20000) (<= -30 T 50))
        (let ([t1 (+ 331.4 (* 0.6 T))])
          (/ (* (- t1) v) (* (+ t1 u) (+ t1 u))))))",
    R"((FPCore (u v T) :name "doppler2"
        :pre (and (<= -125 u 125) (<= 15 v 25000) (<= -40 T 60))
        (let ([t1 (+ 331.4 (* 0.6 T))])
          (/ (* (- t1) v) (* (+ t1 u) (+ t1 u))))))",
    R"((FPCore (u v T) :name "doppler3"
        :pre (and (<= -30 u 120) (<= 320 v 20300) (<= -50 T 30))
        (let ([t1 (+ 331.4 (* 0.6 T))])
          (/ (* (- t1) v) (* (+ t1 u) (+ t1 u))))))",
    R"((FPCore (x1 x2 x3) :name "rigidBody1"
        :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
        (- (- (- (* (- x1) x2) (* 2 (* x2 x3))) x1) x3)))",
    R"((FPCore (x1 x2 x3) :name "rigidBody2"
        :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
        (- (+ (- (+ (* 2 (* (* x1 x2) x3)) (* 3 (* x3 x3)))
                 (* (* (* x2 x1) x2) x3))
              (* 3 (* x3 x3)))
           x2)))",
    R"((FPCore (x1 x2) :name "jetEngine"
        :pre (and (<= -5 x1 5) (<= -20 x2 5))
        (let ([t (- (+ (* 3 (* x1 x1)) (* 2 x2)) x1)]
              [d (+ (* x1 x1) 1)])
          (let ([s (/ t d)])
            (+ x1
               (+ (* (* (* 2 x1) s) (- s 3))
                  (+ (* (* x1 x1) (- (* 4 s) 6))
                     (* d (+ (+ (* (* 3 (* x1 x1)) s) (* (* x1 x1) x1))
                             (+ x1 (* 3 s)))))))))))",
    R"((FPCore (v w r) :name "turbine1"
        :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
        (- (- (+ 3 (/ 2 (* r r)))
              (/ (* (* 0.125 (- 3 (* 2 v))) (* (* (* w w) r) r)) (- 1 v)))
           4.5)))",
    R"((FPCore (v w r) :name "turbine2"
        :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
        (- (- (* 6 v) (/ (* (* 0.5 v) (* (* (* w w) r) r)) (- 1 v))) 2.5)))",
    R"((FPCore (v w r) :name "turbine3"
        :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
        (- (- (- 3 (/ 2 (* r r)))
              (/ (* (* 0.125 (+ 1 (* 2 v))) (* (* (* w w) r) r)) (- 1 v)))
           0.5)))",
    R"((FPCore (x) :name "verhulst" :pre (<= 0.1 x 0.3)
        (/ (* 4 x) (+ 1 (/ x 1.11)))))",
    R"((FPCore (x) :name "predatorPrey" :pre (<= 0.1 x 0.3)
        (/ (* 4 (* x x)) (+ 1 (* (/ x 1.11) (/ x 1.11))))))",
    R"((FPCore (v) :name "carbonGas" :pre (<= 0.1 v 0.5)
        (- (* (+ 35000000 (* 0.401 (* (/ 1000 v) (/ 1000 v))))
              (- v (* 1000 0.0000427)))
           (* 1.3806503e-23 (* 1000 300)))))",
    R"((FPCore (x) :name "sqroot" :pre (<= 0 x 1)
        (- (+ (- (+ 1 (* 0.5 x)) (* (* 0.125 x) x))
              (* (* (* 0.0625 x) x) x))
           (* (* (* (* 0.0390625 x) x) x) x))))",
    R"((FPCore (x) :name "sine" :pre (<= -1.57079632679 x 1.57079632679)
        (+ (- x (/ (* (* x x) x) 6))
           (- (/ (* (* (* (* x x) x) x) x) 120)
              (/ (* (* (* (* (* (* x x) x) x) x) x) x) 5040)))))",
    R"((FPCore (x) :name "sineOrder3" :pre (<= -2 x 2)
        (- (* 0.954929658551372 x)
           (* 0.12900613773279798 (* (* x x) x)))))",
    R"((FPCore (x1 x2 x3 x4 x5 x6) :name "kepler0"
        :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36)
                  (<= 4 x4 6.36) (<= 4 x5 6.36) (<= 4 x6 6.36))
        (+ (- (+ (* x2 x5) (* x3 x6)) (* x2 x3))
           (- (* x1 (+ (+ (- (- (+ (- x1) x2) x4) x5) x3) x6))
              (* x5 x6)))))",
    R"((FPCore (x1 x2 x3 x4) :name "kepler1"
        :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36)
                  (<= 4 x4 6.36))
        (- (- (+ (- (* (* x1 x4) (+ (+ (- (- x1) x2) x3) x4))
                    (* x2 (+ (- (- x1 x3) x4) x2)))
                 (* x3 (+ (- (+ x1 x2) x3) x4)))
              (* (* x2 x3) x4))
           (* x1 x3))))",
    R"((FPCore (x1 x2 x3 x4 x5 x6) :name "kepler2"
        :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36)
                  (<= 4 x4 6.36) (<= 4 x5 6.36) (<= 4 x6 6.36))
        (- (- (- (+ (- (* (* x1 x4) (+ (+ (+ (- (- x1) x2) x3) x4) (- x5 x6)))
                       (* (* x2 x5) (+ (+ (- (- x1 x2) x3) x4) (- x5 x6))))
                    (* (* x3 x6) (+ (+ (- (+ x1 x2) x3) (- x4 x5)) x6)))
                 (* (* (* x2 x3) x4) 1))
              (* (* x1 x3) x5))
           (* (* x1 x2) x6))))",
    R"((FPCore (x1 x2) :name "himmilbeau"
        :pre (and (<= -5 x1 5) (<= -5 x2 5))
        (let ([a (- (+ (* x1 x1) x2) 11)] [b (- (+ x1 (* x2 x2)) 7)])
          (+ (* a a) (* b b)))))",
    R"((FPCore (x) :name "bspline3" :pre (<= 0 x 1)
        (/ (* (- (* (* x x) x)) 1) 6)))",

    // --- Herbie / FPBench miscellanea --------------------------------------
    R"((FPCore (x) :name "logexp" :pre (<= -8 x 8)
        (log (+ 1 (exp x)))))",
    R"((FPCore (x r theta phi) :name "sphere"
        :pre (and (<= -10 x 10) (<= 0 r 10) (<= -1.5707 theta 1.5707)
                  (<= -3.14159 phi 3.14159))
        (+ x (* (* r (sin theta)) (cos phi)))))",
    R"((FPCore (lat1 lat2 dLon) :name "azimuth"
        :pre (and (<= 0.1 lat1 1.4) (<= 0.1 lat2 1.4) (<= 0.01 dLon 3))
        (atan2 (* (sin dLon) (cos lat2))
               (- (* (cos lat1) (sin lat2))
                  (* (* (sin lat1) (cos lat2)) (cos dLon))))))",
    R"((FPCore (x) :name "expq2" :pre (<= -1e-7 x 1e-7)
        (/ (- (exp x) 1) x)))",
    R"((FPCore (a x) :name "expax" :pre (and (<= 0.1 a 10) (<= -1e-8 x 1e-8))
        (/ (- (exp (* a x)) 1) x)))",
    R"((FPCore (x) :name "invcot" :pre (<= 1e-8 x 1e-3)
        (- (/ 1 x) (/ 1 (tan x)))))",
    R"((FPCore (x) :name "2cos" :pre (and (<= 0.001 x 3))
        (- (* 2 (cos x)) 2)))",
    R"((FPCore (x y) :name "x2-y2"
        :pre (and (<= 1e6 x 1e8) (<= 1e6 y 1e8))
        (- (* x x) (* y y))))",
    R"((FPCore (x) :name "quadratic-u-shape" :pre (<= -2e-8 x 2e-8)
        (/ (- 1 (cos x)) (* x x))))",
    R"((FPCore (a b c) :name "triangle-area-heron"
        :pre (and (<= 1 a 10) (<= 1 b 10) (<= 1e-6 c 0.1))
        (let ([s (/ (+ (+ a b) c) 2)])
          (sqrt (* (* (* s (- s a)) (- s b)) (- s c))))))",
    R"((FPCore (x) :name "asinh-naive" :pre (<= -1e8 x -1)
        (log (+ x (sqrt (+ (* x x) 1))))))",
    R"((FPCore (x) :name "acosh-naive" :pre (<= 1 x 1.001)
        (log (+ x (sqrt (- (* x x) 1))))))",
    R"((FPCore (x) :name "sinh-naive" :pre (<= -1e-8 x 1e-8)
        (/ (- (exp x) (exp (- x))) 2)))",
    R"((FPCore (x) :name "tanh-naive" :pre (<= -1e-9 x 1e-9)
        (/ (- (exp (* 2 x)) 1) (+ (exp (* 2 x)) 1))))",
    R"((FPCore (x y) :name "hypot-naive"
        :pre (and (<= 1e150 x 1e160) (<= 1e150 y 1e160))
        (sqrt (+ (* x x) (* y y)))))",
    R"((FPCore (x y) :name "two-sample-variance"
        :pre (and (<= 1e7 x 1e8) (<= 1e7 y 1e8))
        (let ([m (/ (+ x y) 2)])
          (/ (+ (* (- x m) (- x m)) (* (- y m) (- y m))) 2))))",
    R"((FPCore (x y) :name "one-pass-variance"
        :pre (and (<= 1e7 x 1e8) (<= 1e7 y 1e8))
        (- (/ (+ (* x x) (* y y)) 2)
           (* (/ (+ x y) 2) (/ (+ x y) 2)))))",
    R"((FPCore (x) :name "sin-squared-identity" :pre (<= 1e-9 x 1e-4)
        (- 1 (* (cos x) (cos x)))))",
    R"((FPCore (x) :name "x-sin-x" :pre (<= -1e-4 x 1e-4)
        (- x (sin x))))",
    R"((FPCore (n) :name "compound-e" :pre (<= 1e6 n 1e9)
        (pow (+ 1 (/ 1 n)) n)))",
    R"((FPCore (x eps) :name "log-diff"
        :pre (and (<= 1 x 100) (<= 1e-13 eps 1e-9))
        (- (log (+ x eps)) (log x))))",
    R"((FPCore (x0 x1 y0 y1) :name "slope"
        :pre (and (<= 1 x0 1e7) (<= 1 y0 1e7)
                  (<= 1e-9 x1 1e-6) (<= 1e-9 y1 1e-6))
        (/ (- (+ y0 y1) y0) (- (+ x0 x1) x0))))",
    R"((FPCore (x) :name "sec4-example" :pre (<= 1.00000001 x 1.6)
        (let ([t (/ x (- x 1))]) (- (/ 1 (- t 1)) (/ 1 t)))))",
    R"((FPCore (x) :name "exp-minus-cosh" :pre (<= 10 x 300)
        (- (exp x) (cosh x))))",
    R"((FPCore (x) :name "logq" :pre (<= 1e-7 x 1)
        (/ (log (+ 1 x)) x)))",
    R"((FPCore (a b) :name "fraction-sub"
        :pre (and (<= 1e7 a 1e9) (<= 1e-3 b 1))
        (- (/ (+ a b) a) 1)))",
    R"((FPCore (x) :name "cos-near-pi-half"
        :pre (<= 1.5707963 x 1.5707964)
        (/ (cos x) (- x 1.5707963267948966))))",
    R"((FPCore (r n) :name "compound-interest"
        :pre (and (<= 0.01 r 0.1) (<= 1e7 n 1e9))
        (* 100 (- (pow (+ 1 (/ r n)) n) 1))))",
    R"((FPCore (x) :name "mixed-cos2" :pre (<= 1e-9 x 1e-6)
        (/ (- 1 (* (cos x) (cos x))) (* x x))))",
    R"((FPCore (a b) :name "sum-product-diff"
        :pre (and (<= 1e7 a 1e8) (<= 1e7 b 1e8))
        (- (* (+ a b) (+ a b)) (+ (+ (* a a) (* 2 (* a b))) (* b b)))))",
    R"((FPCore (x) :name "plotter-csqrt-re" :pre (<= 1e-12 x 0.25)
        (- (sqrt (+ (* x x) (* 1e-18 1e-18))) x)))",

    // --- textbook cancellation kernels -------------------------------------
    R"((FPCore (x) :name "x+1-x" :pre (<= 1e14 x 1e18)
        (- (+ x 1) x)))",
    R"((FPCore (x y) :name "ab-cancellation"
        :pre (and (<= 1e15 x 1e16) (<= 0.1 y 10))
        (* (- (+ x y) x) (/ 1 y))))",
    R"((FPCore (z) :name "baz-pi" :pre (<= 112.9999999 z 113.0000001)
        (let ([t (/ 1 (- z 113))]) (- (+ t PI) t))))",
    R"((FPCore (a b) :name "midpoint-drift"
        :pre (and (<= 1e8 a 1e9) (<= 1e8 b 1e9))
        (- (/ (+ a b) 2) (+ a (/ (- b a) 2)))))",
    R"((FPCore (x) :name "pythag-identity" :pre (<= 0.1 x 1.5)
        (- (+ (* (sin x) (sin x)) (* (cos x) (cos x))) 1)))",
    R"((FPCore (x h) :name "finite-difference"
        :pre (and (<= 1 x 10) (<= 1e-12 h 1e-8))
        (/ (- (* (+ x h) (+ x h)) (* x x)) h)))",
    R"((FPCore (x) :name "exprsqrt-chain" :pre (<= 1e7 x 1e9)
        (- (sqrt (+ (* x x) x)) x)))",
    R"((FPCore (x) :name "one-minus-tanh-sq" :pre (<= 1e-8 x 1e-4)
        (- 1 (* (tanh x) (tanh x)))))",
    R"((FPCore (a b) :name "det2x2-sliver"
        :pre (and (<= 1e7 a 1e8) (<= 0.999999999 b 1.000000001))
        (- (* a b) a)))",
    R"((FPCore (x) :name "expm1-over-sinh" :pre (<= 1e-10 x 1e-6)
        (/ (- (exp x) 1) (/ (- (exp x) (exp (- x))) 2))))",

    // --- loop-bearing control benchmarks ------------------------------------
    R"((FPCore (m kp ki kd) :name "pid"
        :pre (and (<= -10 m 10) (<= 0.1 kp 10) (<= 0.01 ki 1)
                  (<= 0.01 kd 1))
        (while* (< t 20)
          ([i 0 (+ i (* (* ki 0.2) (- 5 m2)))]
           [m2 m (+ m2 (* 0.01 (+ (+ (* kp (- 5 m2)) i)
                                  (* (/ kd 0.2) (- (- 5 m2) e0)))))]
           [e0 0 (- 5 m2)]
           [t 0 (+ t 0.2)])
          m2)))",
    R"((FPCore (n) :name "harmonic-sum" :pre (<= 10 n 2000)
        (while (<= i n) ([s 0 (+ s (/ 1 i))] [i 1 (+ i 1)]) s)))",
    R"((FPCore (x0 n) :name "euler-oscillator"
        :pre (and (<= 0.1 x0 1) (<= 10 n 500))
        (while (< i n)
          ([x x0 (+ x (* 0.01 v))]
           [v 1 (- v (* 0.01 x))]
           [i 0 (+ i 1)])
          x)))",
    R"((FPCore (n) :name "increment-by-tenth" :pre (<= 10 n 1000)
        (while (< t n) ([t 0 (+ t 0.1)] [c 0 (+ c 1)]) c)))",
    R"((FPCore (a r n) :name "geometric-sum"
        :pre (and (<= 1 a 10) (<= 0.5 r 0.999) (<= 10 n 500))
        (while (< i n) ([s 0 (+ s (* a (pow r i)))] [i 0 (+ i 1)]) s)))",
    R"((FPCore (x n) :name "arclength-segments"
        :pre (and (<= 0.1 x 3) (<= 4 n 64))
        (while (< i n)
          ([s 0 (+ s (sqrt (+ (* (/ x n) (/ x n))
                              (* (- (sin (/ (* (+ i 1) x) n))
                                    (sin (/ (* i x) n)))
                                 (- (sin (/ (* (+ i 1) x) n))
                                    (sin (/ (* i x) n)))))))]
           [i 0 (+ i 1)])
          s)))",
};

const std::vector<std::string> &fpcore::corpusSources() {
  static const std::vector<std::string> Sources(std::begin(CorpusSources),
                                                std::end(CorpusSources));
  return Sources;
}

std::vector<Core> fpcore::compilableCorpus() {
  std::vector<Core> Cores;
  for (const Core &C : corpus())
    if (isCompilable(C))
      Cores.push_back(C.clone());
  return Cores;
}

const std::vector<Core> &fpcore::corpus() {
  static const std::vector<Core> Parsed = [] {
    std::vector<Core> Cores;
    for (const std::string &Src : corpusSources()) {
      ParseResult R = parse(Src);
      assert(R.Ok && "corpus entry failed to parse");
      Cores.push_back(std::move(R.Value));
    }
    return Cores;
  }();
  return Parsed;
}
