//===- fpcore/Compile.cpp - FPCore -> abstract machine compiler -----------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "fpcore/Compile.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace herbgrind;
using namespace herbgrind::fpcore;

namespace {

/// Scalar f64 operator table.
struct OpMapEntry {
  const char *Name;
  unsigned Arity;
  Opcode Op;
};

const OpMapEntry FloatOps[] = {
    {"+", 2, Opcode::AddF64},        {"-", 2, Opcode::SubF64},
    {"*", 2, Opcode::MulF64},        {"/", 2, Opcode::DivF64},
    {"-", 1, Opcode::NegF64},        {"sqrt", 1, Opcode::SqrtF64},
    {"fabs", 1, Opcode::AbsF64},     {"fmin", 2, Opcode::MinF64},
    {"fmax", 2, Opcode::MaxF64},     {"fma", 3, Opcode::FmaF64},
    {"copysign", 2, Opcode::CopySignF64},
    {"exp", 1, Opcode::ExpF64},      {"exp2", 1, Opcode::Exp2F64},
    {"expm1", 1, Opcode::Expm1F64},  {"log", 1, Opcode::LogF64},
    {"log2", 1, Opcode::Log2F64},    {"log10", 1, Opcode::Log10F64},
    {"log1p", 1, Opcode::Log1pF64},  {"sin", 1, Opcode::SinF64},
    {"cos", 1, Opcode::CosF64},      {"tan", 1, Opcode::TanF64},
    {"asin", 1, Opcode::AsinF64},    {"acos", 1, Opcode::AcosF64},
    {"atan", 1, Opcode::AtanF64},    {"atan2", 2, Opcode::Atan2F64},
    {"sinh", 1, Opcode::SinhF64},    {"cosh", 1, Opcode::CoshF64},
    {"tanh", 1, Opcode::TanhF64},    {"pow", 2, Opcode::PowF64},
    {"cbrt", 1, Opcode::CbrtF64},    {"hypot", 2, Opcode::HypotF64},
    {"fmod", 2, Opcode::FmodF64},    {"floor", 1, Opcode::FloorF64},
    {"ceil", 1, Opcode::CeilF64},    {"round", 1, Opcode::RoundF64},
    {"trunc", 1, Opcode::TruncF64},
};

const OpMapEntry CompareOps[] = {
    {"<", 2, Opcode::CmpLTF64},  {"<=", 2, Opcode::CmpLEF64},
    {">", 2, Opcode::CmpGTF64},  {">=", 2, Opcode::CmpGEF64},
    {"==", 2, Opcode::CmpEQF64}, {"!=", 2, Opcode::CmpNEF64},
};

const OpMapEntry *findOp(const OpMapEntry *Table, size_t N,
                         const std::string &Name, unsigned Arity) {
  for (size_t I = 0; I < N; ++I)
    if (Name == Table[I].Name && Arity == Table[I].Arity)
      return &Table[I];
  return nullptr;
}

class Compiler {
public:
  explicit Compiler(const Core &C) : C(C) {
    File = (C.Name.empty() ? std::string("anonymous") : C.Name) + ".fpcore";
  }

  Program run() {
    std::map<std::string, ProgramBuilder::Temp> Env;
    for (size_t I = 0; I < C.Params.size(); ++I)
      Env[C.Params[I]] = B.input(static_cast<unsigned>(I));
    ProgramBuilder::Temp Result = value(*C.Body, Env);
    B.out(Result);
    B.halt();
    Program P = B.finish();
    assert(P.validate().empty() && "compiler produced an invalid program");
    return P;
  }

private:
  using Temp = ProgramBuilder::Temp;
  using Env = std::map<std::string, Temp>;

  void tickLoc() {
    B.setLoc(SourceLoc(File, ++Line, C.Name));
  }

  /// Compiles a float-valued expression.
  Temp value(const Expr &E, Env &Scope) {
    switch (E.K) {
    case Expr::Kind::Num:
      return B.constF64(E.Num);
    case Expr::Kind::Const:
      return B.constF64(constValue(E.Name));
    case Expr::Kind::Var: {
      auto It = Scope.find(E.Name);
      assert(It != Scope.end() && "unbound variable");
      return It->second;
    }
    case Expr::Kind::Op: {
      if (const OpMapEntry *M =
              findOp(FloatOps, std::size(FloatOps), E.Name,
                     static_cast<unsigned>(E.Args.size()))) {
        Temp Args[3];
        for (size_t I = 0; I < E.Args.size(); ++I)
          Args[I] = value(*E.Args[I], Scope);
        tickLoc();
        switch (M->Arity) {
        case 1:
          return B.op(M->Op, Args[0]);
        case 2:
          return B.op(M->Op, Args[0], Args[1]);
        default:
          return B.op(M->Op, Args[0], Args[1], Args[2]);
        }
      }
      // Variadic +/-/*: left fold.
      if ((E.Name == "+" || E.Name == "*" || E.Name == "-") &&
          E.Args.size() > 2) {
        Opcode Op = E.Name == "+"   ? Opcode::AddF64
                    : E.Name == "*" ? Opcode::MulF64
                                    : Opcode::SubF64;
        Temp Acc = value(*E.Args[0], Scope);
        for (size_t I = 1; I < E.Args.size(); ++I) {
          Temp Next = value(*E.Args[I], Scope);
          tickLoc();
          Acc = B.op(Op, Acc, Next);
        }
        return Acc;
      }
      assert(false && "unsupported float operator");
      return 0;
    }
    case Expr::Kind::If: {
      Temp Cond = boolean(*E.Args[0], Scope);
      Temp Result = B.newTemp();
      auto Else = B.newLabel();
      auto End = B.newLabel();
      tickLoc();
      Temp Not = B.op(Opcode::XorI64, Cond, B.constI64(1));
      B.branchIf(Not, Else);
      B.copyTo(Result, value(*E.Args[1], Scope));
      B.jump(End);
      B.bind(Else);
      B.copyTo(Result, value(*E.Args[2], Scope));
      B.bind(End);
      return Result;
    }
    case Expr::Kind::Let: {
      Env Inner = Scope;
      if (E.Sequential) {
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] = value(*E.Inits[I], Inner);
      } else {
        std::vector<Temp> Vals;
        for (const ExprPtr &Init : E.Inits)
          Vals.push_back(value(*Init, Scope));
        for (size_t I = 0; I < E.Binds.size(); ++I)
          Inner[E.Binds[I]] = Vals[I];
      }
      return value(*E.Args[0], Inner);
    }
    case Expr::Kind::While: {
      // Loop variables live in dedicated mutable temps.
      Env Inner = Scope;
      std::vector<Temp> Vars;
      if (E.Sequential) {
        for (size_t I = 0; I < E.Binds.size(); ++I) {
          Temp V = B.newTemp();
          B.copyTo(V, value(*E.Inits[I], Inner));
          Inner[E.Binds[I]] = V;
          Vars.push_back(V);
        }
      } else {
        std::vector<Temp> Vals;
        for (const ExprPtr &Init : E.Inits)
          Vals.push_back(value(*Init, Scope));
        for (size_t I = 0; I < E.Binds.size(); ++I) {
          Temp V = B.newTemp();
          B.copyTo(V, Vals[I]);
          Inner[E.Binds[I]] = V;
          Vars.push_back(V);
        }
      }
      auto Head = B.newLabel();
      auto Exit = B.newLabel();
      B.bind(Head);
      Temp Cond = boolean(*E.Args[0], Inner);
      tickLoc();
      Temp Not = B.op(Opcode::XorI64, Cond, B.constI64(1));
      B.branchIf(Not, Exit);
      if (E.Sequential) {
        for (size_t I = 0; I < E.Binds.size(); ++I)
          B.copyTo(Vars[I], value(*E.Updates[I], Inner));
      } else {
        std::vector<Temp> News;
        for (const ExprPtr &U : E.Updates)
          News.push_back(value(*U, Inner));
        for (size_t I = 0; I < E.Binds.size(); ++I)
          B.copyTo(Vars[I], News[I]);
      }
      B.jump(Head);
      B.bind(Exit);
      return value(*E.Args[1], Inner);
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  /// Compiles a boolean-valued expression to an i64 temp holding 0/1.
  Temp boolean(const Expr &E, Env &Scope) {
    if (E.K == Expr::Kind::Const) {
      if (E.Name == "TRUE")
        return B.constI64(1);
      if (E.Name == "FALSE")
        return B.constI64(0);
    }
    assert(E.K == Expr::Kind::Op && "boolean context needs an operator");
    if (E.Name == "and" || E.Name == "or") {
      Temp Acc = boolean(*E.Args[0], Scope);
      for (size_t I = 1; I < E.Args.size(); ++I) {
        Temp Next = boolean(*E.Args[I], Scope);
        Acc = B.op(E.Name == "and" ? Opcode::AndI64 : Opcode::OrI64, Acc,
                   Next);
      }
      return Acc;
    }
    if (E.Name == "not")
      return B.op(Opcode::XorI64, boolean(*E.Args[0], Scope), B.constI64(1));
    const OpMapEntry *M = findOp(CompareOps, std::size(CompareOps), E.Name, 2);
    assert(M && "unsupported boolean operator");
    // Chained comparisons: (< a b c) == (and (< a b) (< b c)).
    std::vector<Temp> Args;
    for (const ExprPtr &A : E.Args)
      Args.push_back(value(*A, Scope));
    tickLoc();
    Temp Acc = B.op(M->Op, Args[0], Args[1]);
    for (size_t I = 1; I + 1 < Args.size(); ++I) {
      Temp Next = B.op(M->Op, Args[I], Args[I + 1]);
      Acc = B.op(Opcode::AndI64, Acc, Next);
    }
    return Acc;
  }

  static double constValue(const std::string &Name) {
    if (Name == "PI")
      return M_PI;
    if (Name == "E")
      return M_E;
    if (Name == "LN2")
      return M_LN2;
    if (Name == "LOG2E")
      return M_LOG2E;
    if (Name == "INFINITY")
      return HUGE_VAL;
    if (Name == "NAN")
      return std::nan("");
    assert(false && "unknown constant");
    return 0.0;
  }

  const Core &C;
  ProgramBuilder B;
  std::string File;
  int Line = 0;
};

/// Recursive operator-support check shared by isCompilable.
bool exprSupported(const Expr &E, bool BoolContext, std::string *WhyNot) {
  auto No = [&](const std::string &Why) {
    if (WhyNot)
      *WhyNot = Why;
    return false;
  };
  switch (E.K) {
  case Expr::Kind::Num:
  case Expr::Kind::Var:
    return true;
  case Expr::Kind::Const:
    if (E.Name == "TRUE" || E.Name == "FALSE")
      return true;
    if (E.Name == "PI" || E.Name == "E" || E.Name == "LN2" ||
        E.Name == "LOG2E" || E.Name == "INFINITY" || E.Name == "NAN")
      return true;
    return No("unknown constant " + E.Name);
  case Expr::Kind::If:
    return exprSupported(*E.Args[0], true, WhyNot) &&
           exprSupported(*E.Args[1], false, WhyNot) &&
           exprSupported(*E.Args[2], false, WhyNot);
  case Expr::Kind::Let:
  case Expr::Kind::While: {
    for (const ExprPtr &I : E.Inits)
      if (!exprSupported(*I, false, WhyNot))
        return false;
    for (const ExprPtr &U : E.Updates)
      if (!exprSupported(*U, false, WhyNot))
        return false;
    if (E.K == Expr::Kind::While &&
        !exprSupported(*E.Args[0], true, WhyNot))
      return false;
    return exprSupported(*E.Args.back(), false, WhyNot);
  }
  case Expr::Kind::Op:
    break;
  }
  unsigned Arity = static_cast<unsigned>(E.Args.size());
  bool Known;
  if (BoolContext || E.Name == "and" || E.Name == "or" || E.Name == "not" ||
      findOp(CompareOps, std::size(CompareOps), E.Name, 2)) {
    Known = E.Name == "and" || E.Name == "or" || E.Name == "not" ||
            findOp(CompareOps, std::size(CompareOps), E.Name, 2);
    if (!Known)
      return No("unsupported boolean operator " + E.Name);
    bool ArgsBool = E.Name == "and" || E.Name == "or" || E.Name == "not";
    for (const ExprPtr &A : E.Args)
      if (!exprSupported(*A, ArgsBool, WhyNot))
        return false;
    return true;
  }
  Known = findOp(FloatOps, std::size(FloatOps), E.Name, Arity) ||
          ((E.Name == "+" || E.Name == "-" || E.Name == "*") && Arity > 2);
  if (!Known)
    return No("unsupported operator " + E.Name + "/" +
              std::to_string(Arity));
  for (const ExprPtr &A : E.Args)
    if (!exprSupported(*A, false, WhyNot))
      return false;
  return true;
}

} // namespace

bool fpcore::isCompilable(const Core &C, std::string *WhyNot) {
  return exprSupported(*C.Body, false, WhyNot) &&
         (!C.Pre || true); // preconditions are not compiled
}

Program fpcore::compile(const Core &C) {
  assert(isCompilable(C) && "core uses unsupported operators");
  Compiler Comp(C);
  return Comp.run();
}

//===----------------------------------------------------------------------===//
// The compiled-program cache
//===----------------------------------------------------------------------===//

const Program &ProgramCache::get(const Core &C) {
  std::string Key = C.print();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Programs.find(Key);
    if (It != Programs.end()) {
      ++Hits;
      return *It->second;
    }
  }
  // Compile outside the lock so a slow compilation never blocks other
  // workers' lookups; on a lost race the duplicate is discarded.
  auto P = std::make_unique<Program>(compile(C));
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Programs.find(Key);
  if (It != Programs.end()) {
    ++Hits;
    return *It->second;
  }
  ++Misses;
  return *Programs.emplace(std::move(Key), std::move(P)).first->second;
}

size_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

size_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}
