//===- inputs/InputSummary.h - Input characteristics ------------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input-characteristics system (Section 4.4): for every variable of
/// every symbolic expression, an incremental summary of the values that
/// variable took. The paper ships three kinds -- a representative example,
/// a single range per variable, and sign-split ranges -- and keeps each
/// both for *all* inputs and for the *problematic* inputs (those that
/// caused high local error). The Fig 5b ablation sweeps RangeMode.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_INPUTS_INPUTSUMMARY_H
#define HERBGRIND_INPUTS_INPUTSUMMARY_H

#include <cstdint>
#include <string>
#include <vector>

namespace herbgrind {

/// Which range characteristic to compute and report (Fig 5b).
enum class RangeMode : uint8_t {
  Off,      ///< No ranges; only example inputs.
  Single,   ///< One [lo, hi] interval per variable.
  SignSplit ///< Separate intervals for negative and positive values.
};

/// Incremental summary of one symbolic variable's observed values. All
/// three paper characteristics are folded in O(1) per observation, as the
/// incrementality requirement (Section 4.4, footnote 9) demands.
struct VarSummary {
  uint64_t Count = 0;
  bool SawNaN = false;
  bool SawZero = false;
  double Example = 0.0; ///< First observed value (representative input).
  double Lo = 0.0, Hi = 0.0;
  double NegLo = 0.0, NegHi = 0.0; ///< Negative-sign subrange.
  double PosLo = 0.0, PosHi = 0.0; ///< Positive-sign subrange.
  bool HasRange = false, HasNeg = false, HasPos = false;

  void add(double V);

  /// Folds \p N identical observations of \p V in O(1) (equivalent to
  /// calling add(V) N times). Shard merging uses this to credit a
  /// constant-leaf's history to the variable it merged into.
  void addRepeated(double V, uint64_t N);

  /// Associative merge (incrementalization requires it; tested for).
  void merge(const VarSummary &Other);

  /// Renders the FPCore precondition clause for this variable, e.g.
  /// "(<= -2.061152e-09 x 0.24975)".
  std::string preClause(RangeMode Mode, const std::string &Name) const;

  /// Renders the summary for the shard wire format (REPORT_SCHEMA.md):
  /// counters and flags always, each populated range as a two-element
  /// [lo, hi] array whose *presence* encodes the HasRange/HasNeg/HasPos
  /// flag. Doubles print shortest-round-trip, so parsing recovers the
  /// summary bit-for-bit.
  std::string renderJson() const;
};

struct VarBinding; // from trace/SymExpr.h

/// Summaries for all variables of one symbolic expression, indexed by
/// variable number.
struct InputCharacteristics {
  std::vector<VarSummary> Vars;

  /// Folds one round of (variable, value) bindings.
  void record(const std::vector<VarBinding> &Bindings);

  /// Folds \p N identical observations of \p V into variable \p Idx.
  void addRepeated(uint32_t Idx, double V, uint64_t N);

  /// The summary for variable \p Idx, or an empty summary when the
  /// variable has no recorded observations.
  const VarSummary &var(uint32_t Idx) const;

  /// Renders the "(and ...)" precondition body, or "" when empty/off.
  std::string preCondition(RangeMode Mode) const;
};

} // namespace herbgrind

#endif // HERBGRIND_INPUTS_INPUTSUMMARY_H
