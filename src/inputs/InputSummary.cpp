//===- inputs/InputSummary.cpp - Input characteristics --------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "inputs/InputSummary.h"

#include "support/Format.h"
#include "trace/SymExpr.h"

#include <algorithm>
#include <cmath>

using namespace herbgrind;

void VarSummary::add(double V) {
  ++Count;
  if (std::isnan(V)) {
    SawNaN = true;
    return;
  }
  if (Count == 1 || (SawNaN && !HasRange && !SawZero))
    Example = V;
  if (V == 0.0)
    SawZero = true;
  if (!HasRange) {
    Lo = Hi = V;
    HasRange = true;
  } else {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  if (V < 0.0) {
    if (!HasNeg) {
      NegLo = NegHi = V;
      HasNeg = true;
    } else {
      NegLo = std::min(NegLo, V);
      NegHi = std::max(NegHi, V);
    }
  } else if (V > 0.0) {
    if (!HasPos) {
      PosLo = PosHi = V;
      HasPos = true;
    } else {
      PosLo = std::min(PosLo, V);
      PosHi = std::max(PosHi, V);
    }
  }
}

void VarSummary::addRepeated(double V, uint64_t N) {
  if (N == 0)
    return;
  // add() owns all the flag/range logic; repetition only affects Count.
  add(V);
  Count += N - 1;
}

void VarSummary::merge(const VarSummary &O) {
  if (O.Count == 0)
    return;
  if (Count == 0) {
    *this = O;
    return;
  }
  Count += O.Count;
  SawNaN |= O.SawNaN;
  SawZero |= O.SawZero;
  if (O.HasRange) {
    if (!HasRange) {
      Lo = O.Lo;
      Hi = O.Hi;
      HasRange = true;
    } else {
      Lo = std::min(Lo, O.Lo);
      Hi = std::max(Hi, O.Hi);
    }
  }
  if (O.HasNeg) {
    if (!HasNeg) {
      NegLo = O.NegLo;
      NegHi = O.NegHi;
      HasNeg = true;
    } else {
      NegLo = std::min(NegLo, O.NegLo);
      NegHi = std::max(NegHi, O.NegHi);
    }
  }
  if (O.HasPos) {
    if (!HasPos) {
      PosLo = O.PosLo;
      PosHi = O.PosHi;
      HasPos = true;
    } else {
      PosLo = std::min(PosLo, O.PosLo);
      PosHi = std::max(PosHi, O.PosHi);
    }
  }
}

std::string VarSummary::preClause(RangeMode Mode,
                                  const std::string &Name) const {
  if (Mode == RangeMode::Off || !HasRange)
    return "";
  if (Mode == RangeMode::Single)
    return format("(<= %s %s %s)", formatDoubleShortest(Lo).c_str(),
                  Name.c_str(), formatDoubleShortest(Hi).c_str());
  // Sign-split: one clause per populated sign (zero folds into either).
  std::vector<std::string> Parts;
  if (HasNeg)
    Parts.push_back(format("(<= %s %s %s)",
                           formatDoubleShortest(NegLo).c_str(), Name.c_str(),
                           formatDoubleShortest(NegHi).c_str()));
  if (SawZero)
    Parts.push_back(format("(== %s 0)", Name.c_str()));
  if (HasPos)
    Parts.push_back(format("(<= %s %s %s)",
                           formatDoubleShortest(PosLo).c_str(), Name.c_str(),
                           formatDoubleShortest(PosHi).c_str()));
  if (Parts.empty())
    return "";
  if (Parts.size() == 1)
    return Parts[0];
  return "(or " + join(Parts, " ") + ")";
}

// VarSummary::renderJson lives in analysis/Serialize.cpp: the JSON shape
// is one schema traversal shared with the HGB binary backend.

void InputCharacteristics::record(const std::vector<VarBinding> &Bindings) {
  for (const VarBinding &B : Bindings) {
    if (Vars.size() <= B.Idx)
      Vars.resize(B.Idx + 1);
    Vars[B.Idx].add(B.Value);
  }
}

void InputCharacteristics::addRepeated(uint32_t Idx, double V, uint64_t N) {
  if (N == 0)
    return;
  if (Vars.size() <= Idx)
    Vars.resize(Idx + 1);
  Vars[Idx].addRepeated(V, N);
}

const VarSummary &InputCharacteristics::var(uint32_t Idx) const {
  static const VarSummary Empty;
  if (Idx < Vars.size())
    return Vars[Idx];
  return Empty;
}

std::string InputCharacteristics::preCondition(RangeMode Mode) const {
  if (Mode == RangeMode::Off)
    return "";
  std::vector<std::string> Clauses;
  for (size_t I = 0; I < Vars.size(); ++I) {
    std::string C =
        Vars[I].preClause(Mode, SymExpr::varName(static_cast<uint32_t>(I)));
    if (!C.empty())
      Clauses.push_back(C);
  }
  if (Clauses.empty())
    return "";
  if (Clauses.size() == 1)
    return Clauses[0];
  return "(and " + join(Clauses, " ") + ")";
}
