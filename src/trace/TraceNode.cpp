//===- trace/TraceNode.cpp - Concrete expression traces -------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceNode.h"

#include "support/FloatBits.h"
#include "support/Format.h"

#include <cassert>

using namespace herbgrind;

std::string TraceNode::str() const {
  if (Kind == TNKind::Leaf)
    return formatDoubleShortest(Value);
  std::string S = "(";
  const OpInfo &Info = opInfo(Op);
  S += Info.FPCoreName ? Info.FPCoreName : Info.Name;
  for (unsigned I = 0; I < NumKids; ++I) {
    S += ' ';
    S += Kids[I]->str();
  }
  S += ')';
  return S;
}

TraceArena::~TraceArena() { dropTrimCache(); }

void TraceArena::resetForReuse() {
  dropTrimCache();
  NodePool.reset();
}

void TraceArena::dropTrimCache() {
  // Release the references the trim cache holds -- on the result AND on
  // the key node (retained so a dead key's pool slot cannot be recycled
  // into a new node that would alias a stale cache entry). Everything
  // else must already have been released by the analysis.
  for (auto &[Key, Node] : TrimCache) {
    release(const_cast<TraceNode *>(Key.N));
    release(Node);
  }
  TrimCache.clear();
}

TraceNode *TraceArena::leaf(double Value) {
  TraceNode *N = NodePool.create();
  N->Kind = TraceNode::TNKind::Leaf;
  N->Value = Value;
  N->Depth = 1;
  N->RefCount = 1;
  return N;
}

TraceNode *TraceArena::node(Opcode Op, uint32_t Site, double Value,
                            TraceNode *const *Kids, unsigned NumKids) {
  assert(NumKids <= 3 && "too many children");
  if (MaxDepth <= 1) {
    // Depth 1: no structure at all beyond the producing op itself; the
    // paper's "effectively disables symbolic expression tracking" setting
    // keeps the op node but all children become value leaves.
    TraceNode *N = NodePool.create();
    N->Kind = TraceNode::TNKind::Op;
    N->Op = Op;
    N->Site = Site;
    N->Value = Value;
    N->NumKids = static_cast<uint8_t>(NumKids);
    N->Depth = NumKids ? 2 : 1;
    N->RefCount = 1;
    for (unsigned I = 0; I < NumKids; ++I) {
      N->Kids[I] = leaf(Kids[I]->Value);
    }
    return N;
  }

  TraceNode *N = NodePool.create();
  N->Kind = TraceNode::TNKind::Op;
  N->Op = Op;
  N->Site = Site;
  N->Value = Value;
  N->NumKids = static_cast<uint8_t>(NumKids);
  N->RefCount = 1;
  uint32_t Depth = 1;
  for (unsigned I = 0; I < NumKids; ++I) {
    TraceNode *Kid = Kids[I];
    if (Kid->Depth > MaxDepth - 1)
      Kid = trim(Kid, MaxDepth - 1); // borrowed from the trim cache
    retain(Kid);
    N->Kids[I] = Kid;
    Depth = std::max(Depth, Kid->Depth + 1);
  }
  N->Depth = Depth;
  return N;
}

TraceNode *TraceArena::trim(TraceNode *N, uint32_t ToDepth) {
  assert(ToDepth >= 1 && "cannot trim below depth 1");
  if (N->Depth <= ToDepth)
    return N;
  TrimKey Key{N, ToDepth};
  auto It = TrimCache.find(Key);
  if (It != TrimCache.end())
    return It->second;

  TraceNode *Result;
  if (ToDepth == 1 || N->Kind == TraceNode::TNKind::Leaf) {
    Result = leaf(N->Value);
  } else {
    Result = NodePool.create();
    Result->Kind = TraceNode::TNKind::Op;
    Result->Op = N->Op;
    Result->Site = N->Site;
    Result->Value = N->Value;
    Result->NumKids = N->NumKids;
    Result->RefCount = 1;
    uint32_t Depth = 1;
    for (unsigned I = 0; I < N->NumKids; ++I) {
      TraceNode *Kid = trim(N->Kids[I], ToDepth - 1);
      retain(Kid);
      Result->Kids[I] = Kid;
      Depth = std::max(Depth, Kid->Depth + 1);
    }
    Result->Depth = Depth;
  }
  // The cache keeps the single reference created above (callers borrow)
  // and retains the key node: entries are looked up by address, so the
  // key must stay alive or its recycled slot could alias a fresh node.
  retain(N);
  TrimCache.emplace(Key, Result);
  return Result;
}

void TraceArena::retain(TraceNode *N) {
  assert(N && N->RefCount > 0 && "retaining a dead node");
  ++N->RefCount;
}

void TraceArena::release(TraceNode *N) {
  assert(N && "releasing null");
  // Iterative release to keep deep chains off the C++ stack.
  std::vector<TraceNode *> Work;
  Work.push_back(N);
  while (!Work.empty()) {
    TraceNode *Cur = Work.back();
    Work.pop_back();
    assert(Cur->RefCount > 0 && "double release");
    if (--Cur->RefCount > 0)
      continue;
    for (unsigned I = 0; I < Cur->NumKids; ++I)
      Work.push_back(Cur->Kids[I]);
    NodePool.destroy(Cur);
  }
}

//===----------------------------------------------------------------------===//
// Bounded-depth fingerprints and equivalence (Section 6.1)
//===----------------------------------------------------------------------===//

static uint64_t hashMix(uint64_t H, uint64_t X) {
  H ^= X + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

uint64_t TraceArena::fingerprintRec(TraceNode *N, uint32_t DepthLeft) {
  uint64_t H = N->Kind == TraceNode::TNKind::Leaf
                   ? hashMix(0x1eaf, bitsOfDouble(N->Value))
                   : hashMix(0x0b5, static_cast<uint64_t>(N->Op));
  if (N->Kind == TraceNode::TNKind::Op) {
    if (DepthLeft == 0) {
      // Below the bounded depth, only the carried value distinguishes.
      H = hashMix(H, bitsOfDouble(N->Value));
      return H;
    }
    for (unsigned I = 0; I < N->NumKids; ++I)
      H = hashMix(H, fingerprintRec(N->Kids[I], DepthLeft - 1));
  }
  return H;
}

uint64_t TraceArena::fingerprint(TraceNode *N) {
  if (N->FPValid)
    return N->CachedFP;
  N->CachedFP = fingerprintRec(N, EquivDepth);
  N->FPValid = true;
  return N->CachedFP;
}

bool TraceArena::equivalentRec(TraceNode *A, TraceNode *B,
                               uint32_t DepthLeft) {
  if (A == B)
    return true;
  if (A->Kind != B->Kind)
    return false;
  if (A->Kind == TraceNode::TNKind::Leaf)
    return bitsOfDouble(A->Value) == bitsOfDouble(B->Value);
  if (A->Op != B->Op || A->NumKids != B->NumKids)
    return false;
  if (DepthLeft == 0)
    return bitsOfDouble(A->Value) == bitsOfDouble(B->Value);
  for (unsigned I = 0; I < A->NumKids; ++I)
    if (!equivalentRec(A->Kids[I], B->Kids[I], DepthLeft - 1))
      return false;
  return true;
}

bool TraceArena::equivalent(TraceNode *A, TraceNode *B) {
  if (fingerprint(A) != fingerprint(B))
    return false;
  return equivalentRec(A, B, EquivDepth);
}
