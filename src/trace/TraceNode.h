//===- trace/TraceNode.h - Concrete expression traces -----------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete expression traces (Section 4.3): every shadowed float value
/// carries a DAG recording the float operations that built it. Nodes are
/// reference-counted and pool-allocated (Section 6 "Sharing"), shared
/// across copies through temporaries, thread state, and memory, and
/// depth-bounded (Section 6.1) so that long-running programs do not
/// accumulate unbounded history. Function boundaries and heap traffic are
/// deliberately *not* recorded: copying a value shares its trace node, so
/// the trace abstracts over them exactly as the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_TRACE_TRACENODE_H
#define HERBGRIND_TRACE_TRACENODE_H

#include "ir/Opcode.h"
#include "support/Pool.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace herbgrind {

/// One node of a concrete expression trace. Leaves are values with no
/// recorded float provenance: program inputs, literals, values loaded from
/// unshadowed memory, integer-to-float conversions, or subtrees truncated
/// by the depth bound.
struct TraceNode {
  enum class TNKind : uint8_t { Op, Leaf };

  TNKind Kind = TNKind::Leaf;
  Opcode Op = Opcode::AddF64; ///< Valid when Kind == Op.
  uint8_t NumKids = 0;
  uint32_t RefCount = 0;
  uint32_t Depth = 1; ///< Longest path to a leaf, counting this node.
  uint32_t Site = UINT32_MAX; ///< Producing pc (UINT32_MAX for leaves).
  double Value = 0.0; ///< The concrete double this node carried.
  TraceNode *Kids[3] = {nullptr, nullptr, nullptr};

  /// Cached bounded-depth structural fingerprint (see TraceArena::
  /// fingerprint); FPValid marks whether the cache is populated.
  uint64_t CachedFP = 0;
  bool FPValid = false;

  std::string str() const;
};

/// Owns trace nodes: pool allocation, reference counting, depth-bounded
/// construction, memoized trimming, and bounded-depth fingerprints for the
/// anti-unification equivalence classes (Section 6.1).
class TraceArena {
public:
  /// \p MaxDepth bounds trace depth (Fig 5c/d sweep knob); \p EquivDepth
  /// bounds the equivalence fingerprint; \p UsePool toggles the Section 6
  /// pool-allocator optimization for the ablation bench.
  explicit TraceArena(uint32_t MaxDepth = 64, uint32_t EquivDepth = 5,
                      bool UsePool = true)
      : NodePool(UsePool), MaxDepth(MaxDepth ? MaxDepth : 1),
        EquivDepth(EquivDepth) {}

  ~TraceArena();

  TraceArena(const TraceArena &) = delete;
  TraceArena &operator=(const TraceArena &) = delete;

  /// Creates (or reuses) a provenance-free leaf carrying \p Value.
  /// The caller receives one reference.
  TraceNode *leaf(double Value);

  /// Creates an op node; kids deeper than MaxDepth-1 are trimmed (their
  /// top levels preserved, lower levels replaced by value leaves). Takes no
  /// ownership of the kid references passed in (it retains its own); the
  /// caller receives one reference to the result.
  TraceNode *node(Opcode Op, uint32_t Site, double Value, TraceNode *const *Kids,
                  unsigned NumKids);

  void retain(TraceNode *N);
  void release(TraceNode *N);

  /// Recycles the arena for a fresh analysis round: drops the trim cache
  /// (and the references it holds) and rewinds the node pool's slabs. Every
  /// node outside the trim cache must already have been released. This is
  /// what lets the batch engine reuse a shard-local arena across shards
  /// instead of rebuilding it.
  void resetForReuse();

  /// Structural fingerprint of a subtree to EquivDepth levels, used to
  /// decide which subtrees anti-unification may map to the same variable.
  uint64_t fingerprint(TraceNode *N);

  /// Structural equality to EquivDepth levels (guards against fingerprint
  /// collisions).
  bool equivalent(TraceNode *A, TraceNode *B);

  size_t liveNodes() const { return NodePool.live(); }
  size_t totalAllocated() const { return NodePool.totalAllocated(); }
  uint32_t maxDepth() const { return MaxDepth; }
  uint32_t equivDepth() const { return EquivDepth; }

private:
  TraceNode *trim(TraceNode *N, uint32_t ToDepth);
  void dropTrimCache();
  uint64_t fingerprintRec(TraceNode *N, uint32_t DepthLeft);
  bool equivalentRec(TraceNode *A, TraceNode *B, uint32_t DepthLeft);

  Pool<TraceNode> NodePool;
  uint32_t MaxDepth;
  uint32_t EquivDepth;

  struct TrimKey {
    const TraceNode *N;
    uint32_t Depth;
    bool operator==(const TrimKey &O) const {
      return N == O.N && Depth == O.Depth;
    }
  };
  struct TrimKeyHash {
    size_t operator()(const TrimKey &K) const {
      return std::hash<const void *>()(K.N) * 31 + K.Depth;
    }
  };
  std::unordered_map<TrimKey, TraceNode *, TrimKeyHash> TrimCache;
};

} // namespace herbgrind

#endif // HERBGRIND_TRACE_TRACENODE_H
