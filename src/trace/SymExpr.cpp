//===- trace/SymExpr.cpp - Symbolic expressions & anti-unification --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "trace/SymExpr.h"

#include "support/FloatBits.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace herbgrind;

std::unique_ptr<SymExpr> SymExpr::makeOp(Opcode Op, uint32_t Site) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Op;
  E->Op = Op;
  E->Site = Site;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::makeConst(double V) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Const;
  E->ConstVal = V;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::makeVar(uint32_t Idx) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Var;
  E->VarIdx = Idx;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::clone() const {
  auto E = std::make_unique<SymExpr>();
  E->Kind = Kind;
  E->Op = Op;
  E->ConstVal = ConstVal;
  E->VarIdx = VarIdx;
  E->Site = Site;
  for (const auto &Kid : Kids)
    E->Kids.push_back(Kid->clone());
  return E;
}

unsigned SymExpr::opCount() const {
  if (Kind != SEKind::Op)
    return 0;
  unsigned N = 1;
  for (const auto &Kid : Kids)
    N += Kid->opCount();
  return N;
}

uint32_t SymExpr::numVars() const {
  if (Kind == SEKind::Var)
    return VarIdx + 1;
  uint32_t N = 0;
  for (const auto &Kid : Kids)
    N = std::max(N, Kid->numVars());
  return N;
}

std::string SymExpr::varName(uint32_t Idx) {
  static const char *Names[] = {"x", "y", "z", "w"};
  if (Idx < 4)
    return Names[Idx];
  return format("v%u", Idx);
}

std::string SymExpr::fpcoreBody() const {
  switch (Kind) {
  case SEKind::Var:
    return varName(VarIdx);
  case SEKind::Const:
    return formatDoubleShortest(ConstVal);
  case SEKind::Op: {
    const OpInfo &Info = opInfo(Op);
    std::string S = "(";
    S += Info.FPCoreName ? Info.FPCoreName : Info.Name;
    for (const auto &Kid : Kids) {
      S += ' ';
      S += Kid->fpcoreBody();
    }
    S += ')';
    return S;
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Anti-unification
//===----------------------------------------------------------------------===//

static std::unique_ptr<SymExpr> symbolizeRec(TraceNode *Trace) {
  if (Trace->Kind == TraceNode::TNKind::Leaf)
    return SymExpr::makeConst(Trace->Value);
  auto E = SymExpr::makeOp(Trace->Op, Trace->Site);
  for (unsigned I = 0; I < Trace->NumKids; ++I)
    E->Kids.push_back(symbolizeRec(Trace->Kids[I]));
  return E;
}

std::unique_ptr<SymExpr> herbgrind::symbolize(TraceArena & /*Arena*/,
                                              TraceNode *Trace) {
  // First observation: mirror the trace; leaves start out as constants and
  // only become variables once a later execution disagrees with them.
  return symbolizeRec(Trace);
}

namespace {

/// Bounded-depth structural fingerprint of a symbolic subtree.
uint64_t symFingerprint(const SymExpr *E, uint32_t DepthLeft) {
  auto Mix = [](uint64_t H, uint64_t X) {
    H ^= X + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    return H;
  };
  switch (E->Kind) {
  case SymExpr::SEKind::Var:
    return Mix(0x7a1, E->VarIdx);
  case SymExpr::SEKind::Const:
    return Mix(0xc0, bitsOfDouble(E->ConstVal));
  case SymExpr::SEKind::Op: {
    uint64_t H = Mix(0x09, static_cast<uint64_t>(E->Op));
    if (DepthLeft == 0)
      return H;
    for (const auto &Kid : E->Kids)
      H = Mix(H, symFingerprint(Kid.get(), DepthLeft - 1));
    return H;
  }
  }
  return 0;
}

struct PairKey {
  uint64_t SymFP, ConcFP;
  bool operator==(const PairKey &O) const {
    return SymFP == O.SymFP && ConcFP == O.ConcFP;
  }
};
struct PairKeyHash {
  size_t operator()(const PairKey &K) const {
    return K.SymFP * 0x9e3779b97f4a7c15ULL ^ K.ConcFP;
  }
};

/// Shared state of one anti-unification round.
struct Generalizer {
  TraceArena &Arena;
  uint32_t &NextVarIdx;
  std::vector<VarBinding> &Bindings;
  std::vector<Promotion> *Promotions;
  std::unordered_map<PairKey, uint32_t, PairKeyHash> VarForPair;
  std::unordered_set<uint32_t> ReusedThisRound;

  std::unique_ptr<SymExpr> makeVariable(const SymExpr *S, TraceNode *T) {
    PairKey Key{symFingerprint(S, Arena.equivDepth()),
                Arena.fingerprint(T)};
    auto It = VarForPair.find(Key);
    uint32_t Idx;
    if (It != VarForPair.end()) {
      Idx = It->second;
    } else {
      // Keep the old variable index alive when this is the first concrete
      // class paired with it this round, so summaries stay attached.
      if (S->Kind == SymExpr::SEKind::Var &&
          !ReusedThisRound.count(S->VarIdx)) {
        Idx = S->VarIdx;
      } else {
        Idx = NextVarIdx++;
      }
      ReusedThisRound.insert(Idx);
      VarForPair.emplace(Key, Idx);
      Bindings.push_back({Idx, T->Value});
      // A constant held this value on every earlier round; report the
      // promotion so summaries can credit that history to the variable.
      if (Promotions && S->Kind == SymExpr::SEKind::Const)
        Promotions->push_back({Idx, S->ConstVal});
    }
    return SymExpr::makeVar(Idx);
  }

  std::unique_ptr<SymExpr> gen(const SymExpr *S, TraceNode *T) {
    if (S->Kind == SymExpr::SEKind::Op &&
        T->Kind == TraceNode::TNKind::Op && S->Op == T->Op &&
        S->Kids.size() == T->NumKids) {
      auto E = SymExpr::makeOp(S->Op, T->Site);
      for (unsigned I = 0; I < T->NumKids; ++I)
        E->Kids.push_back(gen(S->Kids[I].get(), T->Kids[I]));
      return E;
    }
    if (S->Kind == SymExpr::SEKind::Const &&
        T->Kind == TraceNode::TNKind::Leaf &&
        bitsOfDouble(S->ConstVal) == bitsOfDouble(T->Value))
      return SymExpr::makeConst(S->ConstVal);
    if (S->Kind == SymExpr::SEKind::Var &&
        T->Kind == TraceNode::TNKind::Leaf) {
      // Plain variable-versus-leaf: the common fast path.
      return makeVariable(S, T);
    }
    return makeVariable(S, T);
  }
};

} // namespace

std::unique_ptr<SymExpr>
herbgrind::antiUnify(TraceArena &Arena, const SymExpr *Expr, TraceNode *Trace,
                     uint32_t &NextVarIdx, std::vector<VarBinding> &Bindings,
                     std::vector<Promotion> *Promotions) {
  Bindings.clear();
  if (Promotions)
    Promotions->clear();
  Generalizer G{Arena, NextVarIdx, Bindings, Promotions, {}, {}};
  return G.gen(Expr, Trace);
}

//===----------------------------------------------------------------------===//
// Anti-unification of two accumulated expressions (shard merging)
//===----------------------------------------------------------------------===//

namespace {

/// One generalization site of the A/B alignment: a unique (A-subtree,
/// B-subtree) equivalence-class pair that becomes one merged variable.
struct MergeSite {
  PairKey Key;
  const SymExpr *SA;
  const SymExpr *SB;
  uint32_t AssignedIdx = 0;
  bool Assigned = false;
  bool BTime = false; ///< Created when B generalized (vs on B's 1st round).
};

/// Shared state of one expression-vs-expression merge.
struct ExprMerger {
  uint32_t EquivDepth;
  const std::vector<std::pair<bool, double>> &BFirstValues;
  std::vector<MergeSite> Sites; ///< In first-visit traversal order.
  std::unordered_map<PairKey, size_t, PairKeyHash> SiteForPair;

  bool aligned(const SymExpr *SA, const SymExpr *SB) const {
    if (SA->Kind == SymExpr::SEKind::Op && SB->Kind == SymExpr::SEKind::Op)
      return SA->Op == SB->Op && SA->Kids.size() == SB->Kids.size();
    if (SA->Kind == SymExpr::SEKind::Const &&
        SB->Kind == SymExpr::SEKind::Const)
      return bitsOfDouble(SA->ConstVal) == bitsOfDouble(SB->ConstVal);
    return false;
  }

  void collect(const SymExpr *SA, const SymExpr *SB) {
    if (aligned(SA, SB) && SA->Kind == SymExpr::SEKind::Op) {
      for (size_t I = 0; I < SA->Kids.size(); ++I)
        collect(SA->Kids[I].get(), SB->Kids[I].get());
      return;
    }
    if (aligned(SA, SB))
      return; // equal constants stay concrete
    PairKey Key{symFingerprint(SA, EquivDepth), symFingerprint(SB, EquivDepth)};
    if (SiteForPair.count(Key))
      return;
    SiteForPair.emplace(Key, Sites.size());
    Sites.push_back({Key, SA, SB, 0, false, false});
  }

  /// Would sequential processing have generalized this site on B's very
  /// first round (making its index precede every variable B itself
  /// created), or only when B generalized it?
  bool isBTime(const MergeSite &S) const {
    if (S.SB->Kind != SymExpr::SEKind::Var)
      return false; // B ended concrete: the sides simply disagree -> round 1
    if (S.SA->Kind == SymExpr::SEKind::Const) {
      uint32_t J = S.SB->VarIdx;
      if (J < BFirstValues.size() && BFirstValues[J].first &&
          bitsOfDouble(BFirstValues[J].second) !=
              bitsOfDouble(S.SA->ConstVal))
        return false; // disagreed already on B's first observation
      return true;
    }
    if (S.SA->Kind == SymExpr::SEKind::Op)
      return false; // structural mismatch surfaces immediately
    return true;    // A variable splitting against a B variable
  }

  void assignIndices(uint32_t &NextVarIdx, std::vector<MergedVar> &Vars) {
    // Pass 1: A-side variables keep their index (first claim wins, exactly
    // like ReusedThisRound on the incremental path).
    std::unordered_set<uint32_t> ClaimedA;
    for (MergeSite &S : Sites)
      if (S.SA->Kind == SymExpr::SEKind::Var &&
          ClaimedA.insert(S.SA->VarIdx).second) {
        S.AssignedIdx = S.SA->VarIdx;
        S.Assigned = true;
      }
    // Pass 2: new variables. Sites that sequential processing would have
    // generalized on B's first round come first in traversal order; sites
    // created only when B generalized follow in B's creation order (B's
    // variable indices are monotone in creation time).
    std::vector<size_t> Fresh;
    for (size_t I = 0; I < Sites.size(); ++I)
      if (!Sites[I].Assigned) {
        Sites[I].BTime = isBTime(Sites[I]);
        Fresh.push_back(I);
      }
    std::stable_sort(Fresh.begin(), Fresh.end(), [&](size_t X, size_t Y) {
      const MergeSite &SX = Sites[X], &SY = Sites[Y];
      if (SX.BTime != SY.BTime)
        return !SX.BTime; // first-round sites precede B-created sites
      if (SX.BTime && SX.SB->VarIdx != SY.SB->VarIdx)
        return SX.SB->VarIdx < SY.SB->VarIdx;
      return false; // stable: traversal order breaks ties
    });
    for (size_t I : Fresh) {
      Sites[I].AssignedIdx = NextVarIdx++;
      Sites[I].Assigned = true;
    }
    // Report provenance.
    for (const MergeSite &S : Sites) {
      MergedVar V;
      V.Idx = S.AssignedIdx;
      auto Classify = [](const SymExpr *E, MergedVar::Source &Src,
                         uint32_t &Var, double &Const) {
        switch (E->Kind) {
        case SymExpr::SEKind::Var:
          Src = MergedVar::Source::Var;
          Var = E->VarIdx;
          break;
        case SymExpr::SEKind::Const:
          Src = MergedVar::Source::Const;
          Const = E->ConstVal;
          break;
        case SymExpr::SEKind::Op:
          Src = MergedVar::Source::Subtree;
          break;
        }
      };
      Classify(S.SA, V.A, V.AVar, V.AConst);
      Classify(S.SB, V.B, V.BVar, V.BConst);
      V.KeptA = V.A == MergedVar::Source::Var && V.Idx == V.AVar;
      Vars.push_back(V);
    }
  }

  std::unique_ptr<SymExpr> rebuild(const SymExpr *SA, const SymExpr *SB) {
    if (aligned(SA, SB) && SA->Kind == SymExpr::SEKind::Op) {
      auto E = SymExpr::makeOp(SA->Op, SA->Site);
      for (size_t I = 0; I < SA->Kids.size(); ++I)
        E->Kids.push_back(rebuild(SA->Kids[I].get(), SB->Kids[I].get()));
      return E;
    }
    if (aligned(SA, SB))
      return SymExpr::makeConst(SA->ConstVal);
    PairKey Key{symFingerprint(SA, EquivDepth), symFingerprint(SB, EquivDepth)};
    return SymExpr::makeVar(Sites[SiteForPair.at(Key)].AssignedIdx);
  }
};

} // namespace

std::unique_ptr<SymExpr> herbgrind::antiUnifyExprs(
    const SymExpr *A, const SymExpr *B, uint32_t EquivDepth,
    const std::vector<std::pair<bool, double>> &BFirstValues,
    uint32_t &NextVarIdx, std::vector<MergedVar> &Vars) {
  Vars.clear();
  ExprMerger M{EquivDepth, BFirstValues, {}, {}};
  M.collect(A, B);
  M.assignIndices(NextVarIdx, Vars);
  return M.rebuild(A, B);
}
