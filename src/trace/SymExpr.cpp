//===- trace/SymExpr.cpp - Symbolic expressions & anti-unification --------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "trace/SymExpr.h"

#include "support/FloatBits.h"
#include "support/Format.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace herbgrind;

std::unique_ptr<SymExpr> SymExpr::makeOp(Opcode Op, uint32_t Site) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Op;
  E->Op = Op;
  E->Site = Site;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::makeConst(double V) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Const;
  E->ConstVal = V;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::makeVar(uint32_t Idx) {
  auto E = std::make_unique<SymExpr>();
  E->Kind = SEKind::Var;
  E->VarIdx = Idx;
  return E;
}

std::unique_ptr<SymExpr> SymExpr::clone() const {
  auto E = std::make_unique<SymExpr>();
  E->Kind = Kind;
  E->Op = Op;
  E->ConstVal = ConstVal;
  E->VarIdx = VarIdx;
  E->Site = Site;
  for (const auto &Kid : Kids)
    E->Kids.push_back(Kid->clone());
  return E;
}

unsigned SymExpr::opCount() const {
  if (Kind != SEKind::Op)
    return 0;
  unsigned N = 1;
  for (const auto &Kid : Kids)
    N += Kid->opCount();
  return N;
}

uint32_t SymExpr::numVars() const {
  if (Kind == SEKind::Var)
    return VarIdx + 1;
  uint32_t N = 0;
  for (const auto &Kid : Kids)
    N = std::max(N, Kid->numVars());
  return N;
}

std::string SymExpr::varName(uint32_t Idx) {
  static const char *Names[] = {"x", "y", "z", "w"};
  if (Idx < 4)
    return Names[Idx];
  return format("v%u", Idx);
}

std::string SymExpr::fpcoreBody() const {
  switch (Kind) {
  case SEKind::Var:
    return varName(VarIdx);
  case SEKind::Const:
    return formatDoubleShortest(ConstVal);
  case SEKind::Op: {
    const OpInfo &Info = opInfo(Op);
    std::string S = "(";
    S += Info.FPCoreName ? Info.FPCoreName : Info.Name;
    for (const auto &Kid : Kids) {
      S += ' ';
      S += Kid->fpcoreBody();
    }
    S += ')';
    return S;
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Anti-unification
//===----------------------------------------------------------------------===//

static std::unique_ptr<SymExpr> symbolizeRec(TraceNode *Trace) {
  if (Trace->Kind == TraceNode::TNKind::Leaf)
    return SymExpr::makeConst(Trace->Value);
  auto E = SymExpr::makeOp(Trace->Op, Trace->Site);
  for (unsigned I = 0; I < Trace->NumKids; ++I)
    E->Kids.push_back(symbolizeRec(Trace->Kids[I]));
  return E;
}

std::unique_ptr<SymExpr> herbgrind::symbolize(TraceArena & /*Arena*/,
                                              TraceNode *Trace) {
  // First observation: mirror the trace; leaves start out as constants and
  // only become variables once a later execution disagrees with them.
  return symbolizeRec(Trace);
}

namespace {

/// Bounded-depth structural fingerprint of a symbolic subtree.
uint64_t symFingerprint(const SymExpr *E, uint32_t DepthLeft) {
  auto Mix = [](uint64_t H, uint64_t X) {
    H ^= X + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    return H;
  };
  switch (E->Kind) {
  case SymExpr::SEKind::Var:
    return Mix(0x7a1, E->VarIdx);
  case SymExpr::SEKind::Const:
    return Mix(0xc0, bitsOfDouble(E->ConstVal));
  case SymExpr::SEKind::Op: {
    uint64_t H = Mix(0x09, static_cast<uint64_t>(E->Op));
    if (DepthLeft == 0)
      return H;
    for (const auto &Kid : E->Kids)
      H = Mix(H, symFingerprint(Kid.get(), DepthLeft - 1));
    return H;
  }
  }
  return 0;
}

struct PairKey {
  uint64_t SymFP, ConcFP;
  bool operator==(const PairKey &O) const {
    return SymFP == O.SymFP && ConcFP == O.ConcFP;
  }
};
struct PairKeyHash {
  size_t operator()(const PairKey &K) const {
    return K.SymFP * 0x9e3779b97f4a7c15ULL ^ K.ConcFP;
  }
};

/// Shared state of one anti-unification round.
struct Generalizer {
  TraceArena &Arena;
  uint32_t &NextVarIdx;
  std::vector<VarBinding> &Bindings;
  std::unordered_map<PairKey, uint32_t, PairKeyHash> VarForPair;
  std::unordered_set<uint32_t> ReusedThisRound;

  std::unique_ptr<SymExpr> makeVariable(const SymExpr *S, TraceNode *T) {
    PairKey Key{symFingerprint(S, Arena.equivDepth()),
                Arena.fingerprint(T)};
    auto It = VarForPair.find(Key);
    uint32_t Idx;
    if (It != VarForPair.end()) {
      Idx = It->second;
    } else {
      // Keep the old variable index alive when this is the first concrete
      // class paired with it this round, so summaries stay attached.
      if (S->Kind == SymExpr::SEKind::Var &&
          !ReusedThisRound.count(S->VarIdx)) {
        Idx = S->VarIdx;
      } else {
        Idx = NextVarIdx++;
      }
      ReusedThisRound.insert(Idx);
      VarForPair.emplace(Key, Idx);
      Bindings.push_back({Idx, T->Value});
    }
    return SymExpr::makeVar(Idx);
  }

  std::unique_ptr<SymExpr> gen(const SymExpr *S, TraceNode *T) {
    if (S->Kind == SymExpr::SEKind::Op &&
        T->Kind == TraceNode::TNKind::Op && S->Op == T->Op &&
        S->Kids.size() == T->NumKids) {
      auto E = SymExpr::makeOp(S->Op, T->Site);
      for (unsigned I = 0; I < T->NumKids; ++I)
        E->Kids.push_back(gen(S->Kids[I].get(), T->Kids[I]));
      return E;
    }
    if (S->Kind == SymExpr::SEKind::Const &&
        T->Kind == TraceNode::TNKind::Leaf &&
        bitsOfDouble(S->ConstVal) == bitsOfDouble(T->Value))
      return SymExpr::makeConst(S->ConstVal);
    if (S->Kind == SymExpr::SEKind::Var &&
        T->Kind == TraceNode::TNKind::Leaf) {
      // Plain variable-versus-leaf: the common fast path.
      return makeVariable(S, T);
    }
    return makeVariable(S, T);
  }
};

} // namespace

std::unique_ptr<SymExpr>
herbgrind::antiUnify(TraceArena &Arena, const SymExpr *Expr, TraceNode *Trace,
                     uint32_t &NextVarIdx, std::vector<VarBinding> &Bindings) {
  Bindings.clear();
  Generalizer G{Arena, NextVarIdx, Bindings, {}, {}};
  return G.gen(Expr, Trace);
}
