//===- trace/SymExpr.h - Symbolic expressions & anti-unification -*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic expressions (Section 4.3): the abstraction of all concrete
/// traces observed at one operation site, computed by incremental Plotkin
/// anti-unification (most specific generalization). Variables stand in for
/// subtrees that differ across executions; subtrees that are equivalent (to
/// the Section 6.1 bounded depth) on every execution share one variable,
/// which is what lets the input-characteristics system attach a single
/// summary per variable.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_TRACE_SYMEXPR_H
#define HERBGRIND_TRACE_SYMEXPR_H

#include "trace/TraceNode.h"

#include <memory>
#include <string>
#include <vector>

namespace herbgrind {

/// A symbolic expression tree. Plain owned trees (no sharing): one lives on
/// each operation record and is rebuilt by generalization.
struct SymExpr {
  enum class SEKind : uint8_t { Op, Const, Var };

  SEKind Kind;
  Opcode Op = Opcode::AddF64;  ///< For Op nodes.
  double ConstVal = 0.0;       ///< For Const leaves.
  uint32_t VarIdx = 0;         ///< For Var leaves.
  uint32_t Site = UINT32_MAX;  ///< Producing pc of the op (reporting).
  std::vector<std::unique_ptr<SymExpr>> Kids;

  static std::unique_ptr<SymExpr> makeOp(Opcode Op, uint32_t Site);
  static std::unique_ptr<SymExpr> makeConst(double V);
  static std::unique_ptr<SymExpr> makeVar(uint32_t Idx);

  std::unique_ptr<SymExpr> clone() const;

  /// Number of operation nodes (the paper's "expressions of N operations").
  unsigned opCount() const;

  /// Highest variable index + 1 (0 when fully concrete).
  uint32_t numVars() const;

  /// Renders the body in FPCore syntax, e.g.
  /// "(- (sqrt (+ (* x0 x0) (* x1 x1))) x0)".
  std::string fpcoreBody() const;

  /// Variable name used in printed output ("x0", "x1", ...).
  static std::string varName(uint32_t Idx);
};

/// The concrete value bound to one variable during one generalization
/// round.
struct VarBinding {
  uint32_t Idx;
  double Value;
};

/// Builds the initial symbolic expression for the first concrete trace seen
/// at a site: the trace is mirrored with leaves as constants; they only
/// become variables once a later execution disagrees with them.
std::unique_ptr<SymExpr> symbolize(TraceArena &Arena, TraceNode *Trace);

/// Incremental anti-unification: most specific generalization of the
/// accumulated \p Expr and a new concrete \p Trace. \p Bindings receives
/// the (variable, concrete value) pairs of this round. Variable indices
/// are kept stable where possible so input summaries can accumulate
/// across rounds; \p NextVarIdx persists on the operation record.
std::unique_ptr<SymExpr> antiUnify(TraceArena &Arena, const SymExpr *Expr,
                                   TraceNode *Trace, uint32_t &NextVarIdx,
                                   std::vector<VarBinding> &Bindings);

} // namespace herbgrind

#endif // HERBGRIND_TRACE_SYMEXPR_H
