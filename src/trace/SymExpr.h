//===- trace/SymExpr.h - Symbolic expressions & anti-unification -*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic expressions (Section 4.3): the abstraction of all concrete
/// traces observed at one operation site, computed by incremental Plotkin
/// anti-unification (most specific generalization). Variables stand in for
/// subtrees that differ across executions; subtrees that are equivalent (to
/// the Section 6.1 bounded depth) on every execution share one variable,
/// which is what lets the input-characteristics system attach a single
/// summary per variable.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_TRACE_SYMEXPR_H
#define HERBGRIND_TRACE_SYMEXPR_H

#include "trace/TraceNode.h"

#include <memory>
#include <string>
#include <vector>

namespace herbgrind {

/// A symbolic expression tree. Plain owned trees (no sharing): one lives on
/// each operation record and is rebuilt by generalization.
struct SymExpr {
  enum class SEKind : uint8_t { Op, Const, Var };

  SEKind Kind;
  Opcode Op = Opcode::AddF64;  ///< For Op nodes.
  double ConstVal = 0.0;       ///< For Const leaves.
  uint32_t VarIdx = 0;         ///< For Var leaves.
  uint32_t Site = UINT32_MAX;  ///< Producing pc of the op (reporting).
  std::vector<std::unique_ptr<SymExpr>> Kids;

  static std::unique_ptr<SymExpr> makeOp(Opcode Op, uint32_t Site);
  static std::unique_ptr<SymExpr> makeConst(double V);
  static std::unique_ptr<SymExpr> makeVar(uint32_t Idx);

  std::unique_ptr<SymExpr> clone() const;

  /// Number of operation nodes (the paper's "expressions of N operations").
  unsigned opCount() const;

  /// Highest variable index + 1 (0 when fully concrete).
  uint32_t numVars() const;

  /// Renders the body in FPCore syntax, e.g.
  /// "(- (sqrt (+ (* x0 x0) (* x1 x1))) x0)".
  std::string fpcoreBody() const;

  /// Variable name used in printed output ("x0", "x1", ...).
  static std::string varName(uint32_t Idx);
};

/// The concrete value bound to one variable during one generalization
/// round.
struct VarBinding {
  uint32_t Idx;
  double Value;
};

/// A constant leaf that one anti-unification round promoted to a variable.
/// The constant's value was, by construction, observed on *every* earlier
/// round, so the caller can retroactively credit it to the new variable's
/// input summary; that is what makes per-shard summaries exactly mergeable
/// (the batch engine relies on it).
struct Promotion {
  uint32_t Idx;    ///< The variable the constant became.
  double OldValue; ///< The constant's value.
};

/// Builds the initial symbolic expression for the first concrete trace seen
/// at a site: the trace is mirrored with leaves as constants; they only
/// become variables once a later execution disagrees with them.
std::unique_ptr<SymExpr> symbolize(TraceArena &Arena, TraceNode *Trace);

/// Incremental anti-unification: most specific generalization of the
/// accumulated \p Expr and a new concrete \p Trace. \p Bindings receives
/// the (variable, concrete value) pairs of this round. Variable indices
/// are kept stable where possible so input summaries can accumulate
/// across rounds; \p NextVarIdx persists on the operation record. When
/// \p Promotions is non-null it receives the constant leaves this round
/// turned into variables (see Promotion).
std::unique_ptr<SymExpr> antiUnify(TraceArena &Arena, const SymExpr *Expr,
                                   TraceNode *Trace, uint32_t &NextVarIdx,
                                   std::vector<VarBinding> &Bindings,
                                   std::vector<Promotion> *Promotions = nullptr);

//===----------------------------------------------------------------------===//
// Merging two accumulated symbolic expressions (the batch engine)
//===----------------------------------------------------------------------===//

/// Provenance of one variable of a merged symbolic expression: which
/// subtree each input expression had at the variable's position(s). Record
/// merging uses this to combine the two sides' input summaries.
struct MergedVar {
  enum class Source : uint8_t {
    Var,    ///< The side already had a variable there.
    Const,  ///< The side had a constant leaf (same value on all its rounds).
    Subtree ///< The side had an operation subtree (no value history).
  };
  uint32_t Idx = 0; ///< Variable index in the merged expression.
  Source A = Source::Const;
  Source B = Source::Const;
  uint32_t AVar = 0;   ///< Valid when A == Source::Var.
  uint32_t BVar = 0;   ///< Valid when B == Source::Var.
  double AConst = 0.0; ///< Valid when A == Source::Const.
  double BConst = 0.0; ///< Valid when B == Source::Const.
  bool KeptA = false;  ///< Idx was inherited from the A side's variable.
};

/// Plotkin anti-unification of two accumulated symbolic expressions: the
/// most specific generalization of \p A (the earlier shard) and \p B (the
/// later shard), with subtree equivalence bounded at \p EquivDepth exactly
/// like the incremental path. Variable indices from \p A are kept where
/// possible; new variables are numbered from \p NextVarIdx in the order
/// sequential processing of B's rounds after A's would have created them
/// (\p BFirstValues -- per-B-variable {known, first observed value} --
/// disambiguates whether a constant-vs-variable position generalized on
/// B's first round or only when B itself generalized it). \p Vars receives
/// the provenance of every merged variable.
std::unique_ptr<SymExpr>
antiUnifyExprs(const SymExpr *A, const SymExpr *B, uint32_t EquivDepth,
               const std::vector<std::pair<bool, double>> &BFirstValues,
               uint32_t &NextVarIdx, std::vector<MergedVar> &Vars);

} // namespace herbgrind

#endif // HERBGRIND_TRACE_SYMEXPR_H
