//===- bench/bench_sec83_compensation.cpp - Section 8.3 ---------------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// The compensation-detection experiment (Section 8.3). The paper runs
// Herbgrind on Shewchuk's Triangle and finds the detector handles all but
// 14 of 225 compensating terms; the missed ones feed control flow (the
// adaptive precision tests), where the shadow-real value of a compensating
// term (exactly zero) sends the branch "the wrong way".
//
// Our Triangle stand-in evaluates a fleet of compensated orient2d
// predicates (two-product + two-diff expansions with an adaptivity
// branch, as in examples/triangle_compensated.cpp) on degenerate inputs
// and counts: compensating operations detected and suppressed, and
// compensation sites that still leak to spots through the adaptive
// branch.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <memory>

using namespace herbgrind;
using namespace herbgrind::bench;

namespace {

/// One compensated orient2d with an adaptive branch (see the example for
/// the annotated version).
Program buildAdaptiveOrient2d() {
  ProgramBuilder B;
  using T = ProgramBuilder::Temp;
  B.setLoc(SourceLoc("predicates.c", 735, "orient2dadapt"));
  T Ax = B.input(0), Ay = B.input(1);
  T Bx = B.input(2), By = B.input(3);
  T Cx = B.input(4), Cy = B.input(5);
  T Acx = B.op(Opcode::SubF64, Ax, Cx);
  T Bcx = B.op(Opcode::SubF64, Bx, Cx);
  T Acy = B.op(Opcode::SubF64, Ay, Cy);
  T Bcy = B.op(Opcode::SubF64, By, Cy);
  T DetLeft = B.op(Opcode::MulF64, Acx, Bcy);
  T DetRight = B.op(Opcode::MulF64, Acy, Bcx);
  T Det = B.op(Opcode::SubF64, DetLeft, DetRight);
  T ErrLeft = B.op(Opcode::FmaF64, Acx, Bcy, B.op(Opcode::NegF64, DetLeft));
  T ErrRight =
      B.op(Opcode::FmaF64, Acy, Bcx, B.op(Opcode::NegF64, DetRight));
  T BVirt = B.op(Opcode::SubF64, DetLeft, Det);
  T ARound = B.op(Opcode::SubF64, DetLeft, B.op(Opcode::AddF64, Det, BVirt));
  T BRound = B.op(Opcode::SubF64, BVirt, DetRight);
  T DiffErr = B.op(Opcode::AddF64, ARound, BRound);
  T Correction =
      B.op(Opcode::AddF64, DiffErr, B.op(Opcode::SubF64, ErrLeft, ErrRight));
  T Exact = B.op(Opcode::AddF64, Det, Correction);
  B.setLoc(SourceLoc("predicates.c", 834, "orient2dadapt"));
  T ErrBound =
      B.op(Opcode::MulF64, B.constF64(1e-15), B.op(Opcode::AbsF64, Det));
  T TakeExact = B.op(Opcode::CmpGEF64, B.op(Opcode::AbsF64, Correction),
                     ErrBound);
  auto ExactPath = B.newLabel();
  B.branchIf(TakeExact, ExactPath);
  B.out(Det);
  B.halt();
  B.bind(ExactPath);
  B.out(Exact);
  B.halt();
  return B.finish();
}

} // namespace

int main() {
  Program P = buildAdaptiveOrient2d();
  Rng R(404);

  auto RunWith = [&](bool Detect) {
    AnalysisConfig Cfg;
    Cfg.DetectCompensation = Detect;
    auto HG = std::make_unique<Herbgrind>(P, Cfg);
    Rng Local(404);
    // A Triangle-like workload: mostly well-conditioned triangles (the
    // fast path suffices and both executions agree), with a minority of
    // nearly-collinear ones where the adaptivity branch fires.
    for (int I = 0; I < 225; ++I) {
      double X2 = Local.uniformReal(1.0, 20.0);
      double Y2 = Local.uniformReal(1.0, 20.0);
      double T = Local.uniformReal(0.1, 0.9);
      bool Degenerate = I % 16 == 0;
      double Off = Degenerate ? Local.uniformReal(-1e-12, 1e-12)
                              : Local.uniformReal(0.5, 3.0);
      HG->runOnInput({0.0, 0.0, X2, Y2, T * X2, T * Y2 + Off});
    }
    return HG;
  };
  (void)R;

  auto On = RunWith(true);
  auto Off = RunWith(false);

  uint64_t Detected = 0;
  uint64_t FlaggedCompSites = 0;
  for (const auto &[PC, Rec] : On->opRecords()) {
    Detected += Rec.CompensationsDetected;
    // Compensation machinery sites: adds/subs beyond the fast det.
    if (Rec.Flagged > 0 && Rec.Loc.Line == 735 && PC > 14)
      ++FlaggedCompSites;
  }
  uint64_t MissedViaControlFlow = 0;
  uint64_t BranchEvals = 0;
  for (const auto &[PC, Spot] : On->spotRecords()) {
    if (Spot.Kind != SpotKind::Comparison)
      continue;
    BranchEvals += Spot.Executions;
    MissedViaControlFlow += Spot.Erroneous;
  }

  std::printf("Section 8.3 compensation detection "
              "(paper: 211 of 225 handled; 14 missed via control flow)\n\n");
  std::printf("compensated operations handled (influence suppressed): "
              "%llu\n",
              static_cast<unsigned long long>(Detected));
  std::printf("adaptivity-branch evaluations:                         "
              "%llu\n",
              static_cast<unsigned long long>(BranchEvals));
  std::printf("missed cases (compensating term reached control flow): "
              "%llu\n",
              static_cast<unsigned long long>(MissedViaControlFlow));
  std::printf("reported root causes, detection on:                    "
              "%zu\n",
              On->reportedRootCauses().size());
  std::printf("reported root causes, detection off:                   "
              "%zu\n",
              Off->reportedRootCauses().size());
  return 0;
}
