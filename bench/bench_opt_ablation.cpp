//===- bench/bench_opt_ablation.cpp - Section 6 optimizations ---------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Ablation of the Section 6 engineering: the static type analysis (skip
// instrumentation of known-integer statements), shadow-value sharing
// (reference counting instead of copying on every move), and the
// stack-backed pool allocators. Each toggle must leave results identical
// (asserted in tests/test_analysis.cpp); this bench measures what each
// one buys in wall-clock on the corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace herbgrind;
using namespace herbgrind::bench;

int main() {
  struct Config {
    const char *Name;
    bool TypeAnalysis, Sharing, Pools;
  };
  const Config Configs[] = {
      {"all optimizations", true, true, true},
      {"no type analysis", false, true, true},
      {"no shadow sharing", true, false, true},
      {"no pool allocators", true, true, false},
      {"none", false, false, false},
  };
  std::printf("Section 6 optimization ablation (loop benchmarks dominate "
              "shadow traffic)\n\n%-22s %12s %16s\n", "configuration",
              "runtime (s)", "vs optimized");
  double Baseline = 0.0;
  for (const Config &Cfg : Configs) {
    double Elapsed = timeIt([&] {
      for (const fpcore::Core &C : fpcore::corpus()) {
        AnalysisConfig ACfg;
        ACfg.UseTypeAnalysis = Cfg.TypeAnalysis;
        ACfg.SharedShadowValues = Cfg.Sharing;
        ACfg.UsePools = Cfg.Pools;
        analyzeCore(C, /*Samples=*/8, ACfg);
      }
    });
    if (Baseline == 0.0)
      Baseline = Elapsed;
    std::printf("%-22s %12.2f %15.2fx\n", Cfg.Name, Elapsed,
                Elapsed / Baseline);
  }
  return 0;
}
