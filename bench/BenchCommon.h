//===- bench/BenchCommon.h - Shared experiment driver bits ------*- C++ -*-===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the per-table/per-figure benchmark harnesses: corpus
/// input sampling, analysis driving, and wall-clock timing.
///
//===----------------------------------------------------------------------===//

#ifndef HERBGRIND_BENCH_BENCHCOMMON_H
#define HERBGRIND_BENCH_BENCHCOMMON_H

#include "fpcore/Compile.h"
#include "fpcore/Corpus.h"
#include "herbgrind/Herbgrind.h"
#include "improve/Improve.h"
#include "support/Rng.h"

#include <chrono>
#include <memory>
#include <cstdio>
#include <vector>

namespace herbgrind {
namespace bench {

/// Samples \p Count input tuples for a core from its :pre ranges.
inline std::vector<std::vector<double>>
sampleInputs(const fpcore::Core &C, int Count, uint64_t Seed = 0xabcd) {
  Rng R(Seed);
  std::vector<fpcore::VarRange> Ranges = fpcore::sampleRanges(C);
  std::vector<std::vector<double>> Sets;
  Sets.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I) {
    std::vector<double> Inputs;
    for (const fpcore::VarRange &VR : Ranges)
      Inputs.push_back(R.betweenOrdinals(VR.Lo, VR.Hi));
    Sets.push_back(std::move(Inputs));
  }
  return Sets;
}

/// Runs a full Herbgrind analysis of one core over sampled inputs.
/// (Herbgrind pins its arenas, so it lives behind a unique_ptr.)
inline std::unique_ptr<Herbgrind> analyzeCore(const fpcore::Core &C,
                                              int Samples,
                                              AnalysisConfig Cfg = {}) {
  Program P = fpcore::compile(C);
  auto HG = std::make_unique<Herbgrind>(P, Cfg);
  for (const std::vector<double> &In : sampleInputs(C, Samples))
    HG->runOnInput(In);
  return HG;
}

/// Wall-clock helper (seconds).
template <typename Fn> double timeIt(Fn &&F) {
  auto Start = std::chrono::steady_clock::now();
  F();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// The improver sampling specs derived from a core's own :pre ranges.
inline std::vector<improve::SampleSpec>
specsFromPre(const fpcore::Core &C) {
  std::vector<improve::SampleSpec> Specs;
  for (const fpcore::VarRange &VR : fpcore::sampleRanges(C))
    Specs.push_back(improve::SampleSpec::interval(VR.Lo, VR.Hi));
  return Specs;
}

/// True if the core's body is loop-free (the improver only judges pure
/// expressions, like Herbie).
inline bool isStraightLine(const fpcore::Expr &E) {
  if (E.K == fpcore::Expr::Kind::While)
    return false;
  for (const auto &A : E.Args)
    if (!isStraightLine(*A))
      return false;
  for (const auto &A : E.Inits)
    if (!isStraightLine(*A))
      return false;
  return true;
}

} // namespace bench
} // namespace herbgrind

#endif // HERBGRIND_BENCH_BENCHCOMMON_H
