//===- bench/bench_microbench.cpp - google-benchmark primitives -------------===//
//
// Part of herbgrind-cpp. MIT license; see LICENSE.
//
// Microbenchmarks of the analysis primitives whose costs the paper's
// Section 6 engineering targets: shadow-real arithmetic at several
// precisions, trace-node construction with sharing, anti-unification, and
// the instrumented-vs-native execution gap on a small kernel.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "real/RealMath.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace herbgrind;

static void BM_BigFloatAdd(benchmark::State &State) {
  size_t Prec = static_cast<size_t>(State.range(0));
  BigFloat A = BigFloat::fromDouble(1.234567e10, Prec);
  BigFloat B = BigFloat::fromDouble(-9.8765e-7, Prec);
  for (auto _ : State)
    benchmark::DoNotOptimize(BigFloat::add(A, B));
}
BENCHMARK(BM_BigFloatAdd)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

static void BM_BigFloatMul(benchmark::State &State) {
  size_t Prec = static_cast<size_t>(State.range(0));
  BigFloat A = BigFloat::fromDouble(1.234567e10, Prec);
  BigFloat B = BigFloat::fromDouble(-9.8765e-7, Prec);
  for (auto _ : State)
    benchmark::DoNotOptimize(BigFloat::mul(A, B));
}
BENCHMARK(BM_BigFloatMul)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

static void BM_BigFloatDiv(benchmark::State &State) {
  size_t Prec = static_cast<size_t>(State.range(0));
  BigFloat A = BigFloat::fromDouble(1.234567e10, Prec);
  BigFloat B = BigFloat::fromDouble(-9.8765e-7, Prec);
  for (auto _ : State)
    benchmark::DoNotOptimize(BigFloat::div(A, B));
}
BENCHMARK(BM_BigFloatDiv)->Arg(256)->Arg(1024);

static void BM_RealExp(benchmark::State &State) {
  BigFloat X = BigFloat::fromDouble(1.5, 256);
  for (auto _ : State)
    benchmark::DoNotOptimize(realmath::exp(X));
}
BENCHMARK(BM_RealExp);

static void BM_RealSinLargeArg(benchmark::State &State) {
  BigFloat X = BigFloat::fromDouble(1e300, 256);
  for (auto _ : State)
    benchmark::DoNotOptimize(realmath::sin(X));
}
BENCHMARK(BM_RealSinLargeArg);

static void BM_ToDouble(benchmark::State &State) {
  BigFloat X = realmath::pi(256);
  for (auto _ : State)
    benchmark::DoNotOptimize(X.toDouble());
}
BENCHMARK(BM_ToDouble);

static void BM_TraceNodeChurn(benchmark::State &State) {
  TraceArena Arena(24, 5, State.range(0));
  for (auto _ : State) {
    TraceNode *A = Arena.leaf(1.0);
    TraceNode *B = Arena.leaf(2.0);
    TraceNode *Kids[2] = {A, B};
    TraceNode *N = Arena.node(Opcode::AddF64, 1, 3.0, Kids, 2);
    Arena.release(A);
    Arena.release(B);
    Arena.release(N);
  }
}
BENCHMARK(BM_TraceNodeChurn)->Arg(1)->Arg(0); // pools on / off

static void BM_AntiUnify(benchmark::State &State) {
  TraceArena Arena(24, 5, true);
  // (x + 1) * sqrt(x): a representative small trace.
  auto MakeTrace = [&](double X) {
    TraceNode *L = Arena.leaf(X);
    TraceNode *One = Arena.leaf(1.0);
    TraceNode *AddKids[2] = {L, One};
    TraceNode *Add = Arena.node(Opcode::AddF64, 1, X + 1, AddKids, 2);
    TraceNode *SqKids[1] = {L};
    TraceNode *Sq = Arena.node(Opcode::SqrtF64, 2, std::sqrt(X), SqKids, 1);
    TraceNode *MulKids[2] = {Add, Sq};
    TraceNode *Mul =
        Arena.node(Opcode::MulF64, 3, (X + 1) * std::sqrt(X), MulKids, 2);
    Arena.release(L);
    Arena.release(One);
    Arena.release(Add);
    Arena.release(Sq);
    return Mul;
  };
  TraceNode *T0 = MakeTrace(2.0);
  auto Expr = symbolize(Arena, T0);
  uint32_t NextVar = 0;
  std::vector<VarBinding> Bindings;
  double X = 3.0;
  std::vector<TraceNode *> Traces;
  for (auto _ : State) {
    TraceNode *T = MakeTrace(X);
    X += 1.0;
    Expr = antiUnify(Arena, Expr.get(), T, NextVar, Bindings);
    Traces.push_back(T);
  }
  for (TraceNode *T : Traces)
    Arena.release(T);
  Arena.release(T0);
}
BENCHMARK(BM_AntiUnify);

static void BM_NativeInterp(benchmark::State &State) {
  const fpcore::Core &C = fpcore::corpus()[0];
  Program P = fpcore::compile(C);
  for (auto _ : State)
    benchmark::DoNotOptimize(interpret(P, {1e8}));
}
BENCHMARK(BM_NativeInterp);

static void BM_InstrumentedRun(benchmark::State &State) {
  const fpcore::Core &C = fpcore::corpus()[0];
  Program P = fpcore::compile(C);
  Herbgrind HG(P);
  for (auto _ : State) {
    HG.runOnInput({1e8});
    benchmark::DoNotOptimize(HG.lastOutputs());
  }
}
BENCHMARK(BM_InstrumentedRun);

BENCHMARK_MAIN();
